package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags error values that are silently discarded: a call
// whose error result is ignored as a bare statement, or blanked with
// _ in an assignment that keeps other results. The engine's exec/plan
// paths return errors for every malformed plan or value-kind
// mismatch, and the cmd/ tools do file I/O; swallowing either class
// turns wrong answers into silent ones. An assignment that blanks
// every result (`_ = f()`) remains the explicit, greppable opt-out.
// Worker-pool paths add a third drop site: `go f()` detaches the call
// entirely, so an error-returning f loses its error with no
// assignment to grep for. Goroutine bodies must be funcs that return
// nothing (collect errors via channels or per-worker slots, as the
// engine's morsel executor does). `defer f()` is the same drop with a
// delay: the deferred call's error vanishes at scope exit — defer a
// func literal that checks it instead (deferred Close is exempt; the
// sync-before-close discipline is syncerr's domain). Finally,
// `_ = errors.Join(...)` pierces the usual blank-assign opt-out:
// Join's only purpose is to carry the errors being blanked, so
// discarding its result is always a collected-then-lost bug.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error returns (bare call statements, _ for the error " +
		"position while keeping other results, `go f()` or `defer f()` on an " +
		"error-returning f, or a blanked errors.Join result); " +
		"use `_ = f()` to discard explicitly",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, ok := x.X.(*ast.CallExpr)
				if !ok || !callReturnsError(pass, call, errType) || errdropExempt(pass, call) {
					break
				}
				pass.Reportf(x.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly",
					calleeLabel(call))
			case *ast.AssignStmt:
				checkBlankedErrors(pass, x, errType)
			case *ast.GoStmt:
				if callReturnsError(pass, x.Call, errType) && !errdropExempt(pass, x.Call) {
					pass.Reportf(x.Pos(), "go %s discards the callee's error result; wrap it in a func that routes the error to a channel or error slot",
						calleeLabel(x.Call))
				}
			case *ast.DeferStmt:
				if callReturnsError(pass, x.Call, errType) && !errdropExempt(pass, x.Call) &&
					!deferCloseIdiom(x.Call) {
					pass.Reportf(x.Pos(), "defer %s discards the callee's error result; defer a func literal that checks it",
						calleeLabel(x.Call))
				}
			}
			return true
		})
	}
	return nil
}

// checkBlankedErrors flags `v, _ := f()` where the blanked position
// is an error but other results are kept.
func checkBlankedErrors(pass *Pass, as *ast.AssignStmt, errType types.Type) {
	allBlank := true
	for _, lhs := range as.Lhs {
		if !isBlank(lhs) {
			allBlank = false
			break
		}
	}
	if allBlank {
		// `_ = f()` is the explicit opt-out — except for errors.Join,
		// whose result IS the errors being blanked: collecting errors
		// and then discarding the collection is never intentional.
		for _, rhs := range as.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isErrorsJoin(pass, call) {
				pass.Reportf(call.Pos(), "errors.Join result blanked; the joined errors are lost — handle or return them")
			}
		}
		return
	}
	// Tuple form: v, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || errdropExempt(pass, call) {
			return
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errType) {
				pass.Reportf(lhs.Pos(), "error result of %s blanked while other results are kept; handle it",
					calleeLabel(call))
			}
		}
		return
	}
	// Parallel form: a, b = f(), g().
	if len(as.Rhs) == len(as.Lhs) {
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || errdropExempt(pass, call) {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[call]; ok && tv.Type != nil && types.Identical(tv.Type, errType) {
				pass.Reportf(lhs.Pos(), "error result of %s blanked while other results are kept; handle it",
					calleeLabel(call))
			}
		}
	}
}

// callReturnsError reports whether any result of the call is error.
func callReturnsError(pass *Pass, call *ast.CallExpr, errType types.Type) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errdropExempt lists callees whose errors are conventionally
// ignorable: the fmt print family (stdout/stderr diagnostics) and
// writers that never fail (strings.Builder, bytes.Buffer).
func errdropExempt(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkg := pass.importedPkg(fun.X); pkg == "fmt" &&
			(strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint")) {
			return true
		}
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			switch recv.String() {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}

// deferCloseIdiom reports whether the deferred call is a Close method:
// `defer f.Close()` is the universal cleanup idiom, and the cases where
// a Close error matters (writable files ahead of durability claims)
// are owned by the syncerr analyzer.
func deferCloseIdiom(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}

// isErrorsJoin matches a call to the standard errors.Join.
func isErrorsJoin(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Join" && pass.importedPkg(sel.X) == "errors"
}

// calleeLabel renders the called function for a diagnostic.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
