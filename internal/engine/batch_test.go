package engine

import (
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/sqlast"
)

// The batch-invariance suite pins the contract of the batched
// executor: BatchSize is a pure performance knob. Results, operator
// counters, EXPLAIN ANALYZE output, and governor errors are identical
// at every batch size — including BatchSize=1, which degenerates to
// the old row-at-a-time execution — serial and parallel. Run under
// -race via `make batch-smoke`.

// batchSizes is the invariance matrix's BatchSize axis: degenerate,
// tiny, prime (so batch boundaries never align with morsel or index
// posting-list boundaries), sub-default, and the default.
var batchSizes = []int{1, 2, 7, 256, 1024}

// timeTokens matches the wall-clock annotations of EXPLAIN ANALYZE
// output, the only part of the rendering allowed to vary across runs.
var timeTokens = regexp.MustCompile(`time=[^ \n]+`)

func normalizeAnalyze(s string) string {
	return timeTokens.ReplaceAllString(s, "time=?")
}

// statsNoTime renders every OpStats counter except wall time.
func statsNoTime(s *OpStats) string {
	return fmt.Sprintf("loops=%d in=%d out=%d probes=%d pattern-hits=%d mem=%dB",
		s.loops, s.rowsIn, s.rowsOut, s.probes, s.patternHits, s.bytes)
}

// diffFrames returns a description of the first counter difference
// between two operator-stats frames, ignoring wall time ("" if none).
func diffFrames(got, want opFrame) string {
	if len(got) != len(want) {
		return fmt.Sprintf("frame size %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := statsNoTime(&got[i]), statsNoTime(&want[i])
		if g != w {
			return fmt.Sprintf("op %d: %s, want %s", i, g, w)
		}
	}
	return ""
}

// TestBatchSizeInvariance runs every access-path query at every batch
// size, serial and Parallelism=8, and asserts results, per-operator
// counters, and (normalized) EXPLAIN ANALYZE output all match the
// BatchSize=1024 reference for the same parallelism.
func TestBatchSizeInvariance(t *testing.T) {
	db := bigDB(t)
	for _, q := range parallelQueries {
		st, err := sqlast.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		// Warm-up: caches the plan, builds hash-join sides, and fills
		// the pattern cache, so every measured run below does the same
		// work and the frames are comparable.
		if _, err := db.Run(st); err != nil {
			t.Fatalf("%s: warm-up: %v", q, err)
		}
		cs, err := db.compiledFor(st, "")
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, par := range []int{0, 8} {
			ref := ExecOptions{BatchSize: DefaultBatchSize, Parallelism: par}
			refRes, refFrame, err := db.runCompiledFrame(nil, cs, ref, q, false)
			if err != nil {
				t.Fatalf("%s par=%d: reference run: %v", q, par, err)
			}
			refPlan, err := db.ExplainAnalyzeWithOptions(st, ref)
			if err != nil {
				t.Fatalf("%s par=%d: reference explain: %v", q, par, err)
			}
			refPlan = normalizeAnalyze(refPlan)
			for _, bs := range batchSizes {
				opts := ExecOptions{BatchSize: bs, Parallelism: par}
				res, frame, err := db.runCompiledFrame(nil, cs, opts, q, false)
				if err != nil {
					t.Fatalf("%s bs=%d par=%d: %v", q, bs, par, err)
				}
				if !equalResults(res, refRes) {
					t.Errorf("%s bs=%d par=%d: result differs from BatchSize=%d",
						q, bs, par, DefaultBatchSize)
				}
				if d := diffFrames(frame, refFrame); d != "" {
					t.Errorf("%s bs=%d par=%d: operator stats differ: %s", q, bs, par, d)
				}
				plan, err := db.ExplainAnalyzeWithOptions(st, opts)
				if err != nil {
					t.Fatalf("%s bs=%d par=%d: explain: %v", q, bs, par, err)
				}
				if got := normalizeAnalyze(plan); got != refPlan {
					t.Errorf("%s bs=%d par=%d: EXPLAIN ANALYZE differs:\n--- got ---\n%s--- want ---\n%s",
						q, bs, par, got, refPlan)
				}
			}
		}
	}
}

// TestGovernorBatchInvariance pins the exact-charging rule: with a
// budget set, ErrRowBudget and ErrMemoryBudget fire at the same
// logical row at every batch size. The error strings embed the counts
// observed at the failing charge, so string equality proves the
// trigger row, not just the error class.
func TestGovernorBatchInvariance(t *testing.T) {
	db := bigDB(t)
	const q = "SELECT i.id, i.text FROM item i ORDER BY i.id"
	st, err := sqlast.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(st); err != nil {
		t.Fatal(err)
	}
	limits := []struct {
		name   string
		opts   ExecOptions
		target error
	}{
		{"row-budget", ExecOptions{MaxRows: 100}, ErrRowBudget},
		{"mem-budget", ExecOptions{MaxMemoryBytes: 4096}, ErrMemoryBudget},
	}
	for _, lim := range limits {
		want := ""
		for _, bs := range []int{1, 7, 1024} {
			opts := lim.opts
			opts.BatchSize = bs
			_, err := db.RunWithOptions(st, opts)
			if !errors.Is(err, lim.target) {
				t.Fatalf("%s bs=%d: err = %v, want %v", lim.name, bs, err, lim.target)
			}
			if want == "" {
				want = err.Error()
				continue
			}
			if got := err.Error(); got != want {
				t.Errorf("%s bs=%d: error %q, want %q (same logical row at every batch size)",
					lim.name, bs, got, want)
			}
		}
	}
}

// TestChaosBatchFlush injects faults at the batch-flush site — the
// seam every enumerated batch crosses between the access path and the
// filter pipeline — and asserts clean unwinding: the fault surfaces
// as the injected (or typed) error, no goroutines leak, and the next
// statement sees an intact engine.
func TestChaosBatchFlush(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	errFlush := errors.New("chaos: injected batch-flush failure")
	stmts := make([]sqlast.Statement, len(parallelQueries))
	baseline := make([]*Result, len(parallelQueries))
	for i, q := range parallelQueries {
		st, err := sqlast.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		stmts[i] = st
		res, err := db.Run(st)
		if err != nil {
			t.Fatalf("%s: baseline: %v", q, err)
		}
		baseline[i] = res
	}
	faults := []struct {
		name string
		arm  func() error
		want func(error) bool
	}{
		{name: "error", want: func(err error) bool { return errors.Is(err, errFlush) },
			arm: func() error {
				return failpoint.Enable("engine/batch-flush", failpoint.Return(errFlush))
			}},
		{name: "panic", want: func(err error) bool { return errors.Is(err, ErrInternal) },
			arm: func() error {
				return failpoint.Enable("engine/batch-flush", failpoint.Panic("chaos"))
			}},
	}
	for _, f := range faults {
		for i, q := range parallelQueries {
			before := runtime.NumGoroutine()
			if err := f.arm(); err != nil {
				t.Fatal(err)
			}
			// Serial execution flushes every batch through the faulted
			// site; a non-prime batch size checks mid-enumeration flushes
			// too, not just the tail flush.
			_, serialErr := db.RunWithOptions(stmts[i], ExecOptions{BatchSize: 7})
			if !f.want(serialErr) {
				t.Errorf("%s / %s: serial err = %v", f.name, q, serialErr)
			}
			// Parallel plans route driving-step batches around the flush
			// site (the ids are materialized before fan-out), so a
			// single-step plan may legitimately complete; anything else
			// must be the injected fault, never an untyped escape.
			_, parErr := db.RunWithOptions(stmts[i], ExecOptions{BatchSize: 7, Parallelism: 8})
			if parErr != nil && !f.want(parErr) {
				t.Errorf("%s / %s: parallel err = %v", f.name, q, parErr)
			}
			failpoint.Reset()
			waitNoGoroutineGrowth(t, before, f.name+" / "+q)

			res, err := db.RunWithOptions(stmts[i], ExecOptions{Parallelism: 4})
			if err != nil {
				t.Fatalf("%s / %s: DB unusable after fault: %v", f.name, q, err)
			}
			if !equalResults(res, baseline[i]) {
				t.Errorf("%s / %s: post-fault result differs from baseline", f.name, q)
			}
		}
	}
}

// TestBatchSizeOptionPlumbs spot-checks the option boundary:
// non-positive batch sizes fall back to the default instead of
// wedging the executor.
func TestBatchSizeOptionPlumbs(t *testing.T) {
	db := bigDB(t)
	st, err := sqlast.Parse("SELECT i.id FROM item i WHERE i.val > 90 ORDER BY i.id")
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{-1, 0, 1} {
		res, err := db.RunWithOptions(st, ExecOptions{BatchSize: bs})
		if err != nil {
			t.Fatalf("BatchSize=%d: %v", bs, err)
		}
		if !equalResults(res, want) {
			t.Errorf("BatchSize=%d: result differs", bs)
		}
	}
	if !strings.Contains(fmt.Sprint(DefaultBatchSize), "1024") {
		t.Fatalf("DefaultBatchSize = %d, want 1024", DefaultBatchSize)
	}
}
