// Package schema implements the XML Schema graph of the paper's
// Section 2.1 and the node marking of Section 4.5.
//
// The graph has one vertex per element definition; edges represent
// element nesting. Element definitions are global (DTD-style, as in
// the XMark and DBLP schemata the paper evaluates on), so a vertex is
// identified by its element name and corresponds to exactly one
// relation in the schema-aware mapping. Each vertex records the
// attributes and text content its elements may carry (they become
// relation columns), its U-P / F-P / I-P mark, and — for U-P and F-P
// vertices — the enumerated set of root-to-node paths.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Mark classifies a vertex per Section 4.5 of the paper.
type Mark uint8

const (
	// UniquePath (U-P): exactly one root-to-node path exists; path
	// filtering is always redundant.
	UniquePath Mark = iota
	// FinitePaths (F-P): a finite set of root-to-node paths exists; the
	// translator tests the regular expression against the enumerated
	// paths and omits the filter when all of them match.
	FinitePaths
	// InfinitePaths (I-P): a cycle lies on some root-to-node path; the
	// path filter can never be omitted.
	InfinitePaths
)

func (m Mark) String() string {
	switch m {
	case UniquePath:
		return "U-P"
	case FinitePaths:
		return "F-P"
	case InfinitePaths:
		return "I-P"
	}
	return fmt.Sprintf("Mark(%d)", uint8(m))
}

// maxEnumeratedPaths caps path enumeration for F-P vertices; a vertex
// with more root paths is demoted to I-P (the filter is simply kept,
// which is always correct).
const maxEnumeratedPaths = 64

// OmissionDecision is the Section 4.5 static outcome for one path
// filter on one node.
type OmissionDecision uint8

const (
	// KeepFilter: the filter must be evaluated dynamically (I-P node,
	// or only some enumerated root paths match the pattern).
	KeepFilter OmissionDecision = iota
	// OmitFilter: every enumerated root path matches; the filter is
	// redundant and may be dropped.
	OmitFilter
	// EmptyResult: no enumerated root path matches; the select is
	// statically empty.
	EmptyResult
)

func (d OmissionDecision) String() string {
	switch d {
	case KeepFilter:
		return "keep-filter"
	case OmitFilter:
		return "omit-filter"
	case EmptyResult:
		return "empty-result"
	}
	return fmt.Sprintf("OmissionDecision(%d)", uint8(d))
}

// OmissionEvidence carries the facts that justify an omission
// decision, so a checker can re-derive and audit it.
type OmissionEvidence struct {
	Mark    Mark
	Total   int // enumerated root paths considered
	Matched int // how many the pattern accepted
}

// JustifyOmission derives the Section 4.5 decision for a path filter
// on this node: matches reports whether the filter's pattern accepts
// one root-to-node path. An I-P node always keeps the filter — its
// root-path set is infinite, so no finite evidence can justify
// omission. This is the single source of truth the translator applies
// and plancheck re-validates.
func (n *Node) JustifyOmission(matches func(path string) bool) (OmissionDecision, OmissionEvidence) {
	ev := OmissionEvidence{Mark: n.Mark, Total: len(n.RootPaths)}
	if n.Mark == InfinitePaths {
		return KeepFilter, ev
	}
	for _, p := range n.RootPaths {
		if matches(p) {
			ev.Matched++
		}
	}
	switch {
	case ev.Matched == ev.Total:
		// Total == 0 lands here: a node without enumerated root paths
		// is unreachable, so no row can fail the omitted filter.
		return OmitFilter, ev
	case ev.Matched == 0:
		return EmptyResult, ev
	default:
		return KeepFilter, ev
	}
}

// Node is a vertex of the schema graph: an element definition and its
// relation in the schema-aware mapping.
type Node struct {
	Name     string
	Children []*Node
	Parents  []*Node
	Attrs    []string // attribute names, in declaration order
	HasText  bool     // whether elements carry character data
	IsRoot   bool     // document element

	Mark      Mark
	RootPaths []string // enumerated root-to-node paths for U-P and F-P
}

// HasAttr reports whether the element definition declares the named
// attribute.
func (n *Node) HasAttr(name string) bool {
	for _, a := range n.Attrs {
		if a == name {
			return true
		}
	}
	return false
}

// Schema is a finalized schema graph.
type Schema struct {
	nodes  []*Node
	byName map[string]*Node
	roots  []*Node
}

// Nodes returns all vertices in declaration order.
func (s *Schema) Nodes() []*Node { return s.nodes }

// Roots returns the document-element vertices.
func (s *Schema) Roots() []*Node { return s.roots }

// Node returns the vertex with the given element name, or nil.
func (s *Schema) Node(name string) *Node { return s.byName[name] }

// Builder constructs a schema graph.
type Builder struct {
	s   *Schema
	err error
}

// NewBuilder returns a builder with the given document element(s).
func NewBuilder(rootNames ...string) *Builder {
	b := &Builder{s: &Schema{byName: map[string]*Node{}}}
	for _, r := range rootNames {
		n := b.node(r)
		n.IsRoot = true
		b.s.roots = append(b.s.roots, n)
	}
	return b
}

func (b *Builder) node(name string) *Node {
	if n, ok := b.s.byName[name]; ok {
		return n
	}
	n := &Node{Name: name}
	b.s.byName[name] = n
	b.s.nodes = append(b.s.nodes, n)
	return n
}

// Element declares an element with its children, e.g.
// Element("site", "regions", "people"). Repeated calls accumulate
// children; duplicate edges are ignored.
func (b *Builder) Element(name string, children ...string) *Builder {
	parent := b.node(name)
	for _, cn := range children {
		child := b.node(cn)
		if !containsNode(parent.Children, child) {
			parent.Children = append(parent.Children, child)
			child.Parents = append(child.Parents, parent)
		}
	}
	return b
}

// Attrs declares attributes of an element.
func (b *Builder) Attrs(name string, attrs ...string) *Builder {
	n := b.node(name)
	for _, a := range attrs {
		if !n.HasAttr(a) {
			n.Attrs = append(n.Attrs, a)
		}
	}
	return b
}

// Text declares that an element carries character data.
func (b *Builder) Text(names ...string) *Builder {
	for _, name := range names {
		b.node(name).HasText = true
	}
	return b
}

func containsNode(list []*Node, n *Node) bool {
	for _, m := range list {
		if m == n {
			return true
		}
	}
	return false
}

// Build finalizes the graph: validates reachability and computes the
// U-P / F-P / I-P marking and enumerated root paths.
func (b *Builder) Build() (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	s := b.s
	if len(s.roots) == 0 {
		return nil, fmt.Errorf("schema: no document element declared")
	}
	reach := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, c := range n.Children {
			visit(c)
		}
	}
	for _, r := range s.roots {
		visit(r)
	}
	for _, n := range s.nodes {
		if !reach[n] {
			return nil, fmt.Errorf("schema: element %q is not reachable from any document element", n.Name)
		}
	}
	s.mark()
	return s, nil
}

// MustBuild is Build that panics on error, for statically known
// schemata (the built-in XMark and DBLP schemata).
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// mark computes the Section 4.5 classification.
func (s *Schema) mark() {
	// 1. Vertices on cycles: SCCs of size > 1, or self-loops.
	onCycle := s.cycleNodes()
	// 2. I-P: vertices reachable from a cycle vertex (including it).
	infinite := map[*Node]bool{}
	var spread func(n *Node)
	spread = func(n *Node) {
		if infinite[n] {
			return
		}
		infinite[n] = true
		for _, c := range n.Children {
			spread(c)
		}
	}
	for n := range onCycle {
		spread(n)
	}
	// 3. Enumerate root paths for the remaining vertices. All parents of
	// a non-I-P vertex are non-I-P, so the subgraph is a DAG and the
	// recursion terminates; memoize per vertex.
	memo := map[*Node][]string{}
	var paths func(n *Node) []string
	paths = func(n *Node) []string {
		if p, ok := memo[n]; ok {
			return p
		}
		var out []string
		if n.IsRoot {
			out = append(out, "/"+n.Name)
		}
		for _, p := range n.Parents {
			for _, pp := range paths(p) {
				out = append(out, pp+"/"+n.Name)
				if len(out) > maxEnumeratedPaths {
					break
				}
			}
		}
		sort.Strings(out)
		memo[n] = out
		return out
	}
	for _, n := range s.nodes {
		if infinite[n] {
			n.Mark = InfinitePaths
			n.RootPaths = nil
			continue
		}
		ps := paths(n)
		if len(ps) > maxEnumeratedPaths {
			n.Mark = InfinitePaths
			n.RootPaths = nil
		} else if len(ps) == 1 {
			n.Mark = UniquePath
			n.RootPaths = ps
		} else {
			n.Mark = FinitePaths
			n.RootPaths = ps
		}
	}
}

// cycleNodes returns the vertices that lie on a directed cycle,
// computed with Tarjan's strongly-connected-components algorithm.
func (s *Schema) cycleNodes() map[*Node]bool {
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	next := 0
	out := map[*Node]bool{}

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range n.Children {
			if _, seen := index[c]; !seen {
				strongconnect(c)
				if low[c] < low[n] {
					low[n] = low[c]
				}
			} else if onStack[c] && index[c] < low[n] {
				low[n] = index[c]
			}
		}
		if low[n] == index[n] {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			if len(scc) > 1 {
				for _, m := range scc {
					out[m] = true
				}
			} else if containsNode(scc[0].Children, scc[0]) {
				out[scc[0]] = true
			}
		}
	}
	for _, n := range s.nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}

// --- step-pattern resolution over the graph ---

// StepAxis is the structural axis of one resolution step. Only the
// vertical axes participate in prominent-relation resolution; the
// horizontal axes (following etc.) resolve by name test alone.
type StepAxis uint8

const (
	Child StepAxis = iota
	Descendant
	DescendantOrSelf
	Parent
	Ancestor
	AncestorOrSelf
	Self
	AnyByName // name test only, anywhere in the document (horizontal axes)
)

// Step is one step of a path pattern to resolve against the graph.
// An empty Name is a wildcard.
type Step struct {
	Axis StepAxis
	Name string
}

// Resolve evaluates a step sequence over the schema graph, starting
// from the given vertex set (nil means "the document roots" for
// absolute paths). It returns every vertex whose elements could be
// selected — the candidate prominent relations of a PPF. The result
// is deterministic (declaration order).
func (s *Schema) Resolve(from []*Node, steps []Step) []*Node {
	cur := map[*Node]bool{}
	if from == nil {
		// Absolute path: the first step applies from a virtual node
		// above the document elements, so child means "a document
		// element" and descendant means "any vertex".
		for i, st := range steps {
			_ = i
			cur = s.resolveFromTop(st)
			steps = steps[1:]
			break
		}
	} else {
		for _, n := range from {
			cur[n] = true
		}
	}
	for _, st := range steps {
		cur = s.step(cur, st)
	}
	return s.ordered(cur)
}

func (s *Schema) resolveFromTop(st Step) map[*Node]bool {
	out := map[*Node]bool{}
	switch st.Axis {
	case Child, Self:
		for _, r := range s.roots {
			if st.Name == "" || r.Name == st.Name {
				out[r] = true
			}
		}
	case Descendant, DescendantOrSelf, AnyByName:
		for _, n := range s.nodes {
			if st.Name == "" || n.Name == st.Name {
				out[n] = true
			}
		}
	}
	return out
}

func (s *Schema) step(cur map[*Node]bool, st Step) map[*Node]bool {
	out := map[*Node]bool{}
	add := func(n *Node) {
		if st.Name == "" || n.Name == st.Name {
			out[n] = true
		}
	}
	switch st.Axis {
	case Self:
		for n := range cur {
			add(n)
		}
	case Child:
		for n := range cur {
			for _, c := range n.Children {
				add(c)
			}
		}
	case Parent:
		for n := range cur {
			for _, p := range n.Parents {
				add(p)
			}
		}
	case Descendant, DescendantOrSelf:
		for n := range closure(cur, func(n *Node) []*Node { return n.Children }, st.Axis == DescendantOrSelf) {
			add(n)
		}
	case Ancestor, AncestorOrSelf:
		for n := range closure(cur, func(n *Node) []*Node { return n.Parents }, st.Axis == AncestorOrSelf) {
			add(n)
		}
	case AnyByName:
		for _, n := range s.nodes {
			add(n)
		}
	}
	return out
}

// closure computes the transitive closure of next over seed,
// optionally including the seed itself.
func closure(seed map[*Node]bool, next func(*Node) []*Node, includeSelf bool) map[*Node]bool {
	out := map[*Node]bool{}
	var stack []*Node
	for n := range seed {
		if includeSelf {
			out[n] = true
		}
		stack = append(stack, n)
	}
	visited := map[*Node]bool{}
	for n := range seed {
		visited[n] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range next(n) {
			out[m] = true
			if !visited[m] {
				visited[m] = true
				stack = append(stack, m)
			}
		}
	}
	return out
}

func (s *Schema) ordered(set map[*Node]bool) []*Node {
	var out []*Node
	for _, n := range s.nodes {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// ByName returns all vertices matching a name test ("" = wildcard).
func (s *Schema) ByName(name string) []*Node {
	if name == "" {
		return append([]*Node(nil), s.nodes...)
	}
	if n := s.byName[name]; n != nil {
		return []*Node{n}
	}
	return nil
}

// String renders the graph, marks and paths for debugging and docs.
func (s *Schema) String() string {
	var b strings.Builder
	for _, n := range s.nodes {
		fmt.Fprintf(&b, "%s [%s]", n.Name, n.Mark)
		if n.IsRoot {
			b.WriteString(" (root)")
		}
		if len(n.Children) > 0 {
			names := make([]string, len(n.Children))
			for i, c := range n.Children {
				names[i] = c.Name
			}
			fmt.Fprintf(&b, " -> %s", strings.Join(names, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
