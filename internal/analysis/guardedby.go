package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/callgraph"
)

// GuardedBy enforces //guardedby:<mutex> field annotations
// interprocedurally: every write to an annotated field must execute
// with the named mutex in the may-held lockset, where a function's
// entry lockset is the intersection of its static callers' locksets
// at the call site (lockscope's replay extended across call edges).
// //guardedby:caller(<mutex>) marks externally serialized structs
// (wal.Log): their own methods are exempt, but every cross-package
// call to a mutating method must hold the named mutex — unless the
// receiver is provably fresh (the builder-scope exemption that keeps
// wal.Open and checkpoint construction legal). The annotations turn
// the PR 8 commit-path comments ("callers hold writeMu") into checked
// law before subtree updates multiply the writers.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "writes to //guardedby:<mutex> fields require the named mutex in the may-held " +
		"lockset on every static call path; //guardedby:caller(<mutex>) additionally " +
		"checks cross-package calls of mutating methods",
	Run: runGuardedBy,
}

// depGuards is the caller-side view of one dependency package with
// //guardedby:caller() annotations.
type depGuards struct {
	mutators map[*types.Func]string // mutating method -> required mutex name
}

func runGuardedBy(pass *Pass) error {
	ann := pass.annotations()
	for _, b := range ann.badGuarded {
		pass.Reportf(b.pos, "%s", b.msg)
	}

	var deps []depGuards
	for _, dep := range pass.depPackages() {
		da := depAnnotations(dep)
		if !hasCallerGuards(da) {
			continue
		}
		deps = append(deps, depGuards{mutators: callerMutators(depGraph(dep), da)})
	}

	if len(ann.guards) == 0 && len(deps) == 0 {
		return nil
	}

	g := pass.callGraph()
	entry := entryLocksets(pass, g)
	fresh := g.FreshReturns(pass.externFresh())

	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		locals := g.FreshLocals(n, fresh, pass.externFresh())

		// Two replays over the same deterministic CFG walk: once with
		// the real entry lockset, once with the entry augmented by
		// every required name. A site unguarded under the first but
		// guarded under the second fails interprocedurally — some
		// caller chain arrives lock-free — and earns a call-path
		// witness; a site unguarded under both is the function's own
		// bug (it releases or never takes the lock locally).
		type siteCheck struct {
			site     ast.Node
			name     string
			what     string
			heldReal bool
			heldAug  bool
		}
		var checks []siteCheck
		lockReplay(pass, n.Name, n.Body, entry[n], func(node ast.Node, env lockEnv) {
			pass.guardSites(n, node, ann, deps, locals, func(site ast.Node, name, what string) {
				checks = append(checks, siteCheck{site: site, name: name, what: what,
					heldReal: lockNameHeld(env, name)})
			})
		})
		if len(checks) == 0 {
			continue
		}
		augEntry := map[string]bool{}
		for k := range entry[n] {
			augEntry[k] = true
		}
		for _, c := range checks {
			augEntry[c.name] = true
		}
		idx := 0
		lockReplay(pass, n.Name, n.Body, augEntry, func(node ast.Node, env lockEnv) {
			pass.guardSites(n, node, ann, deps, locals, func(site ast.Node, name, what string) {
				if idx < len(checks) {
					checks[idx].heldAug = lockNameHeld(env, name)
				}
				idx++
			})
		})

		for _, c := range checks {
			if c.heldReal {
				continue
			}
			if c.heldAug {
				if path := lockFreePath(g, entry, n, c.name); len(path) > 1 {
					pass.Reportf(c.site.Pos(), "%s without %s held; lock-free call path: %s",
						c.what, c.name, strings.Join(path, " -> "))
					continue
				}
			}
			pass.Reportf(c.site.Pos(), "%s without %s held", c.what, c.name)
		}
	}
	return nil
}

// guardSites invokes check for every guard-relevant site lexically
// inside node (skipping nested literals, which replay under their own
// entry locksets): writes to annotated fields, and calls to
// caller-guarded mutator methods of dependency packages.
func (pass *Pass) guardSites(owner *callgraph.Node, node ast.Node, ann *protoAnnotations,
	deps []depGuards, locals map[types.Object]bool, check func(site ast.Node, name, what string)) {

	freshBase := func(e ast.Expr) bool {
		base := chainBase(e)
		if base == nil {
			return false
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			obj = pass.TypesInfo.Defs[base]
		}
		return obj != nil && locals[obj]
	}

	checkWrite := func(lhs ast.Expr) {
		spec := pass.annotatedField(lhs, ann)
		if spec == nil {
			return
		}
		if spec.caller && methodOf(owner, spec.owner) {
			return // the struct's own methods: serialization owed by callers
		}
		if freshBase(lhs) {
			return // builder scope: the value is provably this function's own
		}
		check(lhs, spec.name, "write to "+exprText(pass.Fset, lhs)+" (field guarded by "+spec.name+")")
	}

	ast.Inspect(node, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(x.X)
		case *ast.CallExpr:
			fun, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			if !ok {
				return true
			}
			for _, d := range deps {
				name, isMut := d.mutators[fn]
				if !isMut {
					continue
				}
				if freshBase(fun.X) {
					continue // handle built here (wal.Open result): construction
				}
				check(x, name, "call to "+exprText(pass.Fset, fun)+" (mutates fields guarded by caller-held "+name+")")
			}
		}
		return true
	})
}

// annotatedField resolves an assignment target to the //guardedby:
// annotation of the field it writes (directly, or through an
// index/deref of the field: st.hashIdx[c] writes field hashIdx).
func (pass *Pass) annotatedField(lhs ast.Expr, ann *protoAnnotations) *guardSpec {
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
				if spec, okS := ann.guards[v]; okS {
					return spec
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// methodOf reports whether the node (or, for literals, its enclosing
// declared function) is a method of the named type.
func methodOf(n *callgraph.Node, owner *types.Named) bool {
	for ; n != nil; n = n.Parent {
		if n.Obj == nil {
			continue
		}
		sig, ok := n.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		t := sig.Recv().Type()
		if p, okP := t.(*types.Pointer); okP {
			t = p.Elem()
		}
		named, okN := t.(*types.Named)
		return okN && owner != nil && named.Obj() == owner.Obj()
	}
	return false
}

func hasCallerGuards(ann *protoAnnotations) bool {
	for _, spec := range ann.guards {
		if spec.caller {
			return true
		}
	}
	return false
}

// callerMutators computes, over a dependency package's call graph,
// the methods of caller-guarded structs that (transitively, within
// the package) write an annotated field or operate on one (l.f.Sync):
// exactly the calls that need the caller-held mutex at cross-package
// call sites.
func callerMutators(g *callgraph.Graph, ann *protoAnnotations) map[*types.Func]string {
	guardName := func(v *types.Var) (string, *types.Named, bool) {
		if spec, ok := ann.guards[v]; ok && spec.caller {
			return spec.name, spec.owner, true
		}
		return "", nil, false
	}

	direct := map[*callgraph.Node]string{}
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		node := n
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			touch := func(e ast.Expr) {
				se, ok := ast.Unparen(e).(*ast.SelectorExpr)
				if !ok {
					return
				}
				if v, okV := g.Info.Uses[se.Sel].(*types.Var); okV {
					if name, owner, okG := guardName(v); okG && methodOf(node, owner) {
						if _, seen := direct[node]; !seen {
							direct[node] = name
						}
					}
				}
			}
			switch x := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					touch(writeTarget(lhs))
				}
			case *ast.IncDecStmt:
				touch(writeTarget(x.X))
			case *ast.CallExpr:
				// A method call on an annotated field (l.f.Sync(),
				// l.f.Truncate()) mutates state the field guards.
				if fun, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					touch(fun.X)
				}
			}
			return true
		})
	}

	// Propagate up static edges within the package: a method of the
	// same struct calling a mutator is a mutator (Commit -> Append).
	mut := map[*callgraph.Node]string{}
	for n, name := range direct {
		mut[n] = name
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				if e.Kind != callgraph.Static {
					continue
				}
				name, ok := mut[e.Callee]
				if !ok {
					continue
				}
				if _, seen := mut[n]; !seen && n.Obj != nil && isMethod(n.Obj) {
					mut[n] = name
					changed = true
				}
			}
		}
	}

	out := map[*types.Func]string{}
	for n, name := range mut {
		if n.Obj != nil && isMethod(n.Obj) {
			out[n.Obj] = name
		}
	}
	return out
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// writeTarget strips index/slice/deref wrappers so field writes
// through them (l.buf[i] = x) resolve to the field selector.
func writeTarget(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// lockFreePath builds the call-path witness for an entry-lockset
// failure: a chain of static calls from an unknown-context root down
// to n, preferring callers that do not guarantee the required lock.
func lockFreePath(g *callgraph.Graph, entry map[*callgraph.Node]map[string]bool, n *callgraph.Node, name string) []string {
	var path []string
	seen := map[*callgraph.Node]bool{}
	for cur := n; cur != nil && !seen[cur]; {
		seen[cur] = true
		path = append([]string{cur.Name}, path...)
		var next *callgraph.Node
		for _, e := range cur.In {
			if e.Kind != callgraph.Static || seen[e.Caller] {
				continue
			}
			if next == nil || !entry[e.Caller][name] {
				next = e.Caller
			}
		}
		cur = next
	}
	return path
}

// externFresh builds the cross-package freshness oracle from the
// dependency packages' own summaries (wal.Open is fresh, seen from
// engine).
func (p *Pass) externFresh() func(*types.Func) bool {
	var maps []map[*types.Func]bool
	for _, dep := range p.depPackages() {
		dg := depGraph(dep)
		maps = append(maps, callgraph.FreshFuncs(dg.FreshReturns(nil)))
	}
	if len(maps) == 0 {
		return nil
	}
	return func(fn *types.Func) bool {
		for _, m := range maps {
			if m[fn] {
				return true
			}
		}
		return false
	}
}
