package staircase

import (
	"reflect"
	"testing"

	"repro/internal/native"
	"repro/internal/xmltree"
)

func fixture(t testing.TB) (*Doc, *native.Evaluator, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(
		`<A x="3"><B><C><D x="4">4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`)
	if err != nil {
		t.Fatal(err)
	}
	return FromTree(doc), native.New(doc), doc
}

func TestEncoding(t *testing.T) {
	d, _, _ := fixture(t)
	if d.Len() != 12 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.size[0] != 11 {
		t.Errorf("root size = %d", d.size[0])
	}
	if d.level[0] != 0 || d.par[0] != -1 {
		t.Errorf("root level/par wrong")
	}
	// Root's children are the two B elements.
	if len(d.children[0]) != 2 {
		t.Errorf("root children = %v", d.children[0])
	}
	if d.text[3] != "4" { // D element
		t.Errorf("text[3] = %q", d.text[3])
	}
	if d.attrs[0]["x"] != "3" {
		t.Errorf("attrs[0] = %v", d.attrs[0])
	}
}

func check(t *testing.T, d *Doc, ev *native.Evaluator, q string) {
	t.Helper()
	got, err := d.EvalString(q)
	if err != nil {
		t.Fatalf("staircase(%q): %v", q, err)
	}
	items, err := ev.EvalString(q)
	if err != nil {
		t.Fatalf("oracle(%q): %v", q, err)
	}
	seen := map[int64]bool{}
	want := []int64{}
	for _, it := range items {
		id := it.Node.ID
		if !it.IsAttr() && it.Node.Kind == xmltree.Text {
			id = it.Node.Parent.ID
		}
		if !seen[id] {
			seen[id] = true
			want = append(want, id)
		}
	}
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\n got %v\nwant %v", q, got, want)
	}
}

func TestEndToEnd(t *testing.T) {
	d, ev, _ := fixture(t)
	queries := []string{
		"/A",
		"/A/B",
		"/A/B/C",
		"//F",
		"/A//F",
		"//G//G",
		"/A/*",
		"/A/B/*",
		"//C/*/F",
		"/descendant-or-self::G",
		"/A[@x=3]/B/C//F",
		"/A[@x=4]/B",
		"/A[@x]/B",
		"//F[. = 2]",
		"//F[text() = 2]",
		"/A/B[C/E/F=2]",
		"/A/B[C]",
		"/A/B[not(C)]",
		"/A/B[C and G]",
		"/A/B[C or G]",
		"//F/parent::E",
		"//F/ancestor::B",
		"//F/parent::E/ancestor::B",
		"//F/ancestor-or-self::F",
		"//G/ancestor::G",
		"/A/B/C/following-sibling::G",
		"//G/preceding-sibling::C",
		"//D/following::F",
		"//F/preceding::D",
		"//E/following::*",
		"//B/preceding::*",
		"//F[parent::E]",
		"//F[parent::E or ancestor::G]",
		"/A/B[C/*]",
		"/A/B/C/D/text()",
		"/A/@x",
		"//D[@x]",
		"//D[@x='4']",
		"//E[count(F)=2]",
		"//F[. * 2 = 4]",
		"//E[F = F]",
		"//D[. != /A/B/C/E/F]",
		"/A/B/C | /A/B/G",
		"//*[@x]",
		"//*",
		"//C[E/F > 5]",
	}
	for _, q := range queries {
		check(t, d, ev, q)
	}
}

func TestStaircasePruning(t *testing.T) {
	d, _, _ := fixture(t)
	// Contexts [root, B1]: B1's window is inside root's; the join must
	// not emit duplicates.
	out := d.staircaseDescendant([]int32{0, 1}, false)
	if len(out) != 11 {
		t.Fatalf("descendants of {root, B1} = %d, want 11", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatal("output not strictly ascending")
		}
	}
	// or-self keeps the context itself.
	out = d.staircaseDescendant([]int32{0}, true)
	if len(out) != 12 || out[0] != 0 {
		t.Fatalf("descendant-or-self of root = %v", out)
	}
}

func TestErrors(t *testing.T) {
	d, _, _ := fixture(t)
	if _, err := d.EvalString("//@x/y"); err == nil {
		t.Error("attribute mid-path should fail")
	}
	if _, err := d.EvalString("//F[foo()]"); err == nil {
		t.Error("unknown function should fail")
	}
}
