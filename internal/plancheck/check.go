package plancheck

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/pathre"
	"repro/internal/sqlast"
)

// Finding is one certificate failure: a plan decision the checker
// could not justify, with a minimal counterexample in Detail.
type Finding struct {
	// Query labels the source query (corpus ID or generated label).
	Query string
	// SQL is the statement whose plan failed the check.
	SQL string
	// Rule names the violated obligation: "logical-extract",
	// "physical-extract", "join-order", "binding-order",
	// "access-path", "pipeline", "shape", "distinct", "projection",
	// "tables", "predicate-missing", "predicate-extra", "order",
	// "union", "normal-form", "omission", "estimate-provenance".
	Rule string
	// Detail is the minimal counterexample.
	Detail string
}

func (f Finding) String() string {
	s := fmt.Sprintf("[%s] %s", f.Rule, f.Detail)
	if f.Query != "" {
		s = f.Query + ": " + s
	}
	if f.SQL != "" {
		s += "\n  sql: " + f.SQL
	}
	return s
}

// Certificate records the validated proof of one plan's equivalence:
// every justified obligation in order, and the shared normal-form
// hash both sides reduced to.
type Certificate struct {
	SQL string
	// Steps are the validated obligations in check order.
	Steps []string
	// NormalHash is the normal form both sides hash to.
	NormalHash string
}

func (c *Certificate) step(format string, args ...any) {
	c.Steps = append(c.Steps, fmt.Sprintf(format, args...))
}

// CheckStatement compiles st on db (through the plan cache),
// decompiles the plan that would execute, and proves it equivalent to
// st. On success the certificate is returned with no findings; on
// failure the findings carry minimal counterexamples.
func CheckStatement(db *engine.DB, st sqlast.Statement) (*Certificate, []Finding) {
	sh, err := db.PlanShape(st)
	if err != nil {
		return nil, []Finding{{SQL: sqlast.Render(st), Rule: "physical-extract", Detail: err.Error()}}
	}
	return CheckShape(db, st, sh)
}

// CheckShape proves an already-extracted plan shape equivalent to st.
// The split from CheckStatement exists for the verifier hook (which
// receives the shape with the trace) and for the mutation harness
// (which checks deliberately corrupted shapes).
func CheckShape(db *engine.DB, st sqlast.Statement, sh *engine.StmtShape) (*Certificate, []Finding) {
	cert := &Certificate{SQL: sh.SQL}
	var fs []Finding
	fail := func(rule, detail string) {
		fs = append(fs, Finding{SQL: sh.SQL, Rule: rule, Detail: detail})
	}

	lir, err := LogicalIR(db, st)
	if err != nil {
		fail("logical-extract", err.Error())
		return cert, fs
	}
	pir, err := PhysicalIR(sh)
	if err != nil {
		fail("physical-extract", err.Error())
		return cert, fs
	}

	// Structural certificate obligations on the physical side.
	switch {
	case sh.Select != nil:
		fs = append(fs, tagSQL(sh.SQL, checkShapeSelect(db, sh.Select, nil, "select", cert))...)
	case sh.Union != nil:
		for i, br := range sh.Union.Branches {
			fs = append(fs, tagSQL(sh.SQL, checkShapeSelect(db, br, nil, fmt.Sprintf("branch[%d]", i), cert))...)
		}
		if sh.Union.Sort != (len(sh.Union.OrderPos) > 0) {
			fail("pipeline", fmt.Sprintf("union sort operator present=%v but %d order keys", sh.Union.Sort, len(sh.Union.OrderPos)))
		} else {
			cert.step("pipeline union: sort=%v for %d order keys", sh.Union.Sort, len(sh.Union.OrderPos))
		}
	default:
		fail("shape", "plan shape has neither select nor union")
		return cert, fs
	}

	// Normal-form comparison.
	switch {
	case lir.Select != nil && pir.Select != nil:
		fs = append(fs, tagSQL(sh.SQL, compareSelIR("select", lir.Select, pir.Select, cert))...)
	case lir.Union != nil && pir.Union != nil:
		lu, pu := lir.Union, pir.Union
		if len(lu.Branches) != len(pu.Branches) {
			fail("union", fmt.Sprintf("statement has %d branches, plan has %d", len(lu.Branches), len(pu.Branches)))
			return cert, fs
		}
		for i := range lu.Branches {
			fs = append(fs, tagSQL(sh.SQL, compareSelIR(fmt.Sprintf("branch[%d]", i), lu.Branches[i], pu.Branches[i], cert))...)
		}
		if !equalInts(lu.OrderPos, pu.OrderPos) || !equalBools(lu.OrderDesc, pu.OrderDesc) {
			fail("order", fmt.Sprintf("union order (%v desc %v), plan has (%v desc %v)", lu.OrderPos, lu.OrderDesc, pu.OrderPos, pu.OrderDesc))
		} else {
			cert.step("order union: keys resolved to positions %v", lu.OrderPos)
		}
	default:
		fail("shape", "statement and plan disagree on SELECT vs UNION")
		return cert, fs
	}

	if len(fs) == 0 {
		lh, ph := lir.Hash(), pir.Hash()
		if lh != ph {
			// Unreachable if the field comparisons are complete; kept
			// as the final independent obligation.
			fail("normal-form", fmt.Sprintf("logical normal form %s != physical %s", lh, ph))
		} else {
			cert.NormalHash = lh
			cert.step("normal-form: both sides hash to %s", lh)
		}
	}
	return cert, fs
}

// compareSelIR compares the two sides' normal forms field by field,
// reporting the first counterexample per field.
func compareSelIR(loc string, l, p *SelIR, cert *Certificate) []Finding {
	var fs []Finding
	fail := func(rule, detail string) {
		fs = append(fs, Finding{Rule: rule, Detail: loc + ": " + detail})
	}
	if l.Distinct != p.Distinct {
		fail("distinct", fmt.Sprintf("statement distinct=%v, plan distinct=%v", l.Distinct, p.Distinct))
	}
	if l.CountStar != p.CountStar {
		fail("projection", fmt.Sprintf("statement count(*)=%v, plan count(*)=%v", l.CountStar, p.CountStar))
	}
	if d := firstListDiff(l.Cols, p.Cols); d != "" {
		fail("projection", "projected columns differ: "+d)
	}
	if d := firstListDiff(l.ColNames, p.ColNames); d != "" {
		fail("projection", "column names differ: "+d)
	}
	if d := firstListDiff(l.Tables, p.Tables); d != "" {
		fail("tables", "table bindings differ: "+d)
	}
	fs = append(fs, comparePreds(loc, l, p, cert)...)
	if d := firstListDiff(l.Order, p.Order); d != "" {
		fail("order", "ordering keys differ: "+d)
	}
	if len(fs) == 0 {
		cert.step("normal-form %s: distinct/projection/tables/order match (%d conjuncts)", loc, len(l.Preds))
	}
	return fs
}

// comparePreds compares the WHERE conjunct multisets. Conjuncts whose
// canonical texts disagree get one more chance: a pair of
// REGEXP_LIKE calls over the same subject whose pattern texts differ
// is accepted when pathre proves the two patterns denote the same
// language (the translator may derive syntactically different,
// equivalent regexes).
func comparePreds(loc string, l, p *SelIR, cert *Certificate) []Finding {
	onlyL, onlyP := multisetDiff(l, p)
	matched := 0
	for i := 0; i < len(onlyL); {
		paired := false
		for j := 0; j < len(onlyP); j++ {
			ok, err := regexpEquivalent(onlyL[i].expr, onlyP[j].expr)
			if err == nil && ok {
				onlyL = append(onlyL[:i], onlyL[i+1:]...)
				onlyP = append(onlyP[:j], onlyP[j+1:]...)
				paired, matched = true, matched+1
				break
			}
		}
		if !paired {
			i++
		}
	}
	var fs []Finding
	for _, e := range onlyL {
		fs = append(fs, Finding{Rule: "predicate-missing", Detail: fmt.Sprintf("%s: statement conjunct %q has no counterpart in the plan", loc, e.text)})
	}
	for _, e := range onlyP {
		fs = append(fs, Finding{Rule: "predicate-extra", Detail: fmt.Sprintf("%s: plan evaluates conjunct %q absent from the statement", loc, e.text)})
	}
	if len(fs) == 0 && matched > 0 {
		cert.step("predicates %s: %d conjuncts matched via regex language equivalence", loc, matched)
	}
	return fs
}

type predRef struct {
	text string
	expr sqlast.Expr
}

// multisetDiff returns the conjuncts unique to each side (both Preds
// slices are sorted).
func multisetDiff(l, p *SelIR) (onlyL, onlyP []predRef) {
	i, j := 0, 0
	for i < len(l.Preds) && j < len(p.Preds) {
		switch {
		case l.Preds[i] == p.Preds[j]:
			i++
			j++
		case l.Preds[i] < p.Preds[j]:
			onlyL = append(onlyL, predRef{l.Preds[i], l.predExprs[i]})
			i++
		default:
			onlyP = append(onlyP, predRef{p.Preds[j], p.predExprs[j]})
			j++
		}
	}
	for ; i < len(l.Preds); i++ {
		onlyL = append(onlyL, predRef{l.Preds[i], l.predExprs[i]})
	}
	for ; j < len(p.Preds); j++ {
		onlyP = append(onlyP, predRef{p.Preds[j], p.predExprs[j]})
	}
	return onlyL, onlyP
}

// regexpEquivalent reports whether two conjuncts are REGEXP_LIKE
// calls on the same subject with provably equivalent patterns.
func regexpEquivalent(a, b sqlast.Expr) (bool, error) {
	fa, okA := a.(*sqlast.Func)
	fb, okB := b.(*sqlast.Func)
	if !okA || !okB || fa.Name != "REGEXP_LIKE" || fb.Name != "REGEXP_LIKE" {
		return false, nil
	}
	if len(fa.Args) != 2 || len(fb.Args) != 2 || fa.Args[0].String() != fb.Args[0].String() {
		return false, nil
	}
	pa, okA := fa.Args[1].(*sqlast.StrLit)
	pb, okB := fb.Args[1].(*sqlast.StrLit)
	if !okA || !okB {
		return false, nil
	}
	ra, err := pathre.Compile(pa.Value)
	if err != nil {
		return false, err
	}
	rb, err := pathre.Compile(pb.Value)
	if err != nil {
		return false, err
	}
	eq, _, err := pathre.Equivalent(ra, rb)
	return eq, err
}

// Verifier returns an engine plan verifier bound to db, for
// engine.SetPlanVerifier / ExecOptions.VerifyPlan: every compiled
// plan is certificate-checked before it may execute.
func Verifier(db *engine.DB) func(engine.PlanTrace) error {
	return func(tr engine.PlanTrace) error {
		if tr.Err != "" {
			return fmt.Errorf("plan shape extraction failed: %s", tr.Err)
		}
		_, fs := CheckShape(db, tr.Stmt, tr.Shape)
		if len(fs) > 0 {
			return fmt.Errorf("%s", fs[0].String())
		}
		return nil
	}
}

// firstListDiff renders the first position where two ordered lists
// disagree ("" when equal).
func firstListDiff(a, b []string) string {
	for i := 0; i < len(a) || i < len(b); i++ {
		av, bv := "(none)", "(none)"
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if av != bv {
			return fmt.Sprintf("position %d: statement has %s, plan has %s", i, av, bv)
		}
	}
	return ""
}

func tagSQL(sql string, fs []Finding) []Finding {
	for i := range fs {
		if fs[i].SQL == "" {
			fs[i].SQL = sql
		}
	}
	return fs
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
