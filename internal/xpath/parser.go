package xpath

import (
	"fmt"
)

// Parse parses a complete XPath expression: a location path or a
// union of location paths.
func Parse(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("xpath: unexpected %s after expression", p.peek())
	}
	switch e := expr.(type) {
	case *Path, *Union:
		return e, nil
	default:
		return nil, fmt.Errorf("xpath: expression %q is not a location path", src)
	}
}

// ParsePath parses an expression that must be a single location path.
func ParsePath(src string) (*Path, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	p, ok := e.(*Path)
	if !ok {
		return nil, fmt.Errorf("xpath: %q is a union, not a single path", src)
	}
	return p, nil
}

// MustParse is Parse that panics on error, for statically known
// query sets.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	tokens []token
	pos    int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{tokens: toks}, nil
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("xpath: expected %s, found %s at offset %d", what, t, t.pos)
	}
	return t, nil
}

// parseExpr = parseOr, with '|' union handling at the top level.
func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekOp("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.peekOp("and") {
		p.next()
		right, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseEquality() (Expr, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.peekOp("="):
			op = OpEq
		case p.peekOp("!="):
			op = OpNe
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseRelational() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.peekOp("<"):
			op = OpLt
		case p.peekOp("<="):
			op = OpLe
		case p.peekOp(">"):
			op = OpGt
		case p.peekOp(">="):
			op = OpGe
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.peekOp("+"):
			op = OpAdd
		case p.peekOp("-"):
			op = OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.peekOp("*"):
			op = OpMul
		case p.peekOp("div"):
			op = OpDiv
		case p.peekOp("mod"):
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

// parseUnion = parsePrimary ('|' parsePrimary)*; operands of '|' must
// be location paths.
func (p *parser) parseUnion() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if !p.peekOp("|") {
		return left, nil
	}
	u := &Union{}
	lp, ok := left.(*Path)
	if !ok {
		return nil, fmt.Errorf("xpath: '|' operand must be a location path")
	}
	u.Paths = append(u.Paths, lp)
	for p.peekOp("|") {
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		rp, ok := right.(*Path)
		if !ok {
			return nil, fmt.Errorf("xpath: '|' operand must be a location path")
		}
		u.Paths = append(u.Paths, rp)
	}
	return u, nil
}

func (p *parser) peekOp(text string) bool {
	t := p.peek()
	return t.kind == tokOperator && t.text == text
}

// parsePrimary = string | number | '(' Expr ')' | function call |
// location path | unary minus.
func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokString:
		p.next()
		return &Literal{Value: t.text}, nil
	case tokNumber:
		p.next()
		return &Number{Value: t.num}, nil
	case tokOperator:
		if t.text == "-" {
			p.next()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: OpSub, L: &Number{Value: 0}, R: inner}, nil
		}
		return nil, fmt.Errorf("xpath: unexpected operator %s at offset %d", t, t.pos)
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokFunc:
		switch t.text {
		case "text", "node":
			// Kind test: parse as a path step.
			return p.parsePath()
		}
		return p.parseCall()
	case tokSlash, tokDoubleSlash, tokName, tokStar, tokAt, tokAxis, tokDot, tokDotDot:
		return p.parsePath()
	default:
		return nil, fmt.Errorf("xpath: unexpected %s at offset %d", t, t.pos)
	}
}

func (p *parser) parseCall() (Expr, error) {
	name := p.next().text
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	call := &Call{Name: name}
	if p.peek().kind != tokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if !p.peekOp(",") {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	switch call.Name {
	case "not", "count":
		if len(call.Args) != 1 {
			return nil, fmt.Errorf("xpath: %s() takes exactly one argument", call.Name)
		}
	case "position", "last":
		if len(call.Args) != 0 {
			return nil, fmt.Errorf("xpath: %s() takes no arguments", call.Name)
		}
	default:
		return nil, fmt.Errorf("xpath: unsupported function %q", call.Name)
	}
	return call, nil
}

// parsePath parses a location path.
func (p *parser) parsePath() (Expr, error) {
	path := &Path{}
	switch p.peek().kind {
	case tokSlash:
		p.next()
		path.Absolute = true
		// A bare '/' selects the root; allow it only at end of input or
		// before a step.
		if !p.startsStep() {
			return path, nil
		}
	case tokDoubleSlash:
		p.next()
		path.Absolute = true
		path.Steps = append(path.Steps, &Step{Axis: DescendantOrSelf, Test: AnyKindTest})
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokDoubleSlash:
			p.next()
			path.Steps = append(path.Steps, &Step{Axis: DescendantOrSelf, Test: AnyKindTest})
		default:
			return path, nil
		}
	}
}

// startsStep reports whether the next token can begin a location step.
func (p *parser) startsStep() bool {
	switch t := p.peek(); t.kind {
	case tokName, tokStar, tokAt, tokAxis, tokDot, tokDotDot:
		return true
	case tokFunc:
		return t.text == "text" || t.text == "node"
	}
	return false
}

func (p *parser) parseStep() (*Step, error) {
	step := &Step{Axis: Child}
	switch t := p.peek(); t.kind {
	case tokDot:
		p.next()
		step.Axis = Self
		step.Test = AnyKindTest
		return step, nil
	case tokDotDot:
		p.next()
		step.Axis = Parent
		step.Test = AnyKindTest
		return step, nil
	case tokAt:
		p.next()
		step.Axis = Attribute
	case tokAxis:
		p.next()
		step.Axis = axisByName[t.text]
	}
	// Node test.
	switch t := p.next(); t.kind {
	case tokName:
		step.Test = NameTest
		step.Name = t.text
	case tokStar:
		step.Test = NameTest
		step.Name = ""
	case tokFunc:
		switch t.text {
		case "text":
			step.Test = TextTest
		case "node":
			step.Test = AnyKindTest
		default:
			return nil, fmt.Errorf("xpath: unexpected function %q as node test at offset %d", t.text, t.pos)
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("xpath: expected node test, found %s at offset %d", t, t.pos)
	}
	if step.Axis == Attribute && step.Test != NameTest {
		return nil, fmt.Errorf("xpath: attribute axis requires a name test")
	}
	// Predicates.
	for p.peek().kind == tokLBracket {
		p.next()
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		step.Predicates = append(step.Predicates, pred)
	}
	return step, nil
}
