// Package snapfreeze exercises the frozen-after-publish analyzer: a
// miniature COW engine whose snapshots are published through an
// annotated atomic.Pointer.
package snapfreeze

import "sync/atomic"

type state struct {
	rows []int
	seq  int
}

type snap struct {
	states []*state
	seq    int
}

func (s *snap) clone() *snap {
	return &snap{states: append([]*state(nil), s.states...), seq: s.seq + 1}
}

type DB struct {
	//walorder:publish
	snap atomic.Pointer[snap]
}

// New publishes through a fresh receiver: construction, not mutation.
func New() *DB {
	db := &DB{}
	db.snap.Store(&snap{})
	return db
}

func (db *DB) load() *snap { return db.snap.Load() }

// stateOf returns published memory through a parameter-derived chain.
func (db *DB) stateOf(i int) *state { return db.load().states[i] }

// Commit is the legal shape: clone, mutate the fresh copy, publish.
func (db *DB) Commit(v int) {
	cur := db.load()
	next := cur.clone()
	next.seq = v
	db.snap.Store(next)
}

// BumpSeq writes directly into the published snapshot.
func (db *DB) BumpSeq() {
	s := db.load()
	s.seq++ // want `derived from a published snapshot`
}

// Zero writes through the whole call chain without naming a local.
func (db *DB) Zero(i int) {
	db.load().states[i].rows[0] = 0 // want `reaches published snapshot memory`
}

func scrub(st *state) { st.rows = nil }

// Scrub hands published memory to a function that writes it.
func (db *DB) Scrub(i int) {
	scrub(db.stateOf(i)) // want `passed to a function that writes it`
}

// Sum only reads: always legal.
func (db *DB) Sum(i int) int {
	n := 0
	for _, v := range db.stateOf(i).rows {
		n += v
	}
	return n
}

// PublishThenPatch mutates the value it just published: the builder
// exemption ends at the Store.
func (db *DB) PublishThenPatch(v int) {
	next := db.load().clone()
	db.snap.Store(next)
	next.seq = v // want `after it was published`
}
