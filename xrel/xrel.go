// Package xrel is the public API of the PPF XPath-on-relational
// library: it ties together XML parsing, schema graphs, schema-aware
// shredding, the PPF-based XPath-to-SQL translator of Georgiadis &
// Vassalos (EDBT 2006), and the embedded relational engine.
//
// Typical use:
//
//	s, _ := xrel.ParseCompactSchema(schemaText)
//	store, _ := xrel.Open(s)
//	store.LoadXML(strings.NewReader(document))
//	res, _ := store.Query("/site/people/person[address and phone]")
//	for _, row := range res.Nodes { ... }
package xrel

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Schema is an XML schema graph (re-exported).
type Schema = schema.Schema

// Document is a parsed XML document (re-exported).
type Document = xmltree.Document

// Options tune the PPF translation (re-exported).
type Options = core.Options

// ParseCompactSchema parses the compact schema DSL (see
// internal/schema: "!root site", "site -> regions people", "person
// @id", "name #text").
func ParseCompactSchema(src string) (*Schema, error) {
	return schema.ParseCompact(src)
}

// ParseXSD parses a subset of W3C XML Schema.
func ParseXSD(r io.Reader) (*Schema, error) { return schema.ParseXSD(r) }

// InferSchema derives a schema graph from sample documents.
func InferSchema(docs ...*Document) (*Schema, error) { return schema.Infer(docs...) }

// ParseXML parses an XML document.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// Typed execution errors (re-exported from the embedded engine).
// Match with errors.Is: a query that exceeds a budget set via
// SetLimits fails with ErrMemoryBudget or ErrRowBudget; an engine
// panic surfaces as ErrInternal instead of crashing the process.
var (
	ErrMemoryBudget = engine.ErrMemoryBudget
	ErrRowBudget    = engine.ErrRowBudget
	ErrInternal     = engine.ErrInternal
	ErrTimeout      = engine.ErrTimeout
)

// Store is a schema-aware XML store with PPF-based XPath querying.
type Store struct {
	schema      *schema.Schema
	shred       *shred.SchemaAwareStore
	tr          *core.Translator
	parallelism int
	maxMemBytes int64
	maxRows     int64
	batchSize   int
}

// SetParallelism sets the engine worker count used by Query and
// RunSQL (<= 1 means serial execution, the default). Queries repeated
// against the store reuse cached plans either way; see
// PlanCacheStats.
func (s *Store) SetParallelism(workers int) { s.parallelism = workers }

// SetLimits sets per-statement resource budgets applied to every
// subsequent Query/QueryContext/RunSQL: maxMemoryBytes bounds the
// bytes the engine may materialize (join build sides, sort buffers,
// DISTINCT sets, result rows) and maxRows bounds the produced row
// count. Zero (the default) means unlimited. Exceeding a budget fails
// that statement with ErrMemoryBudget or ErrRowBudget and leaves the
// store fully usable.
func (s *Store) SetLimits(maxMemoryBytes, maxRows int64) {
	s.maxMemBytes = maxMemoryBytes
	s.maxRows = maxRows
}

// SetBatchSize sets the engine's row-id batch capacity for every
// subsequent Query/QueryContext/RunSQL (0 or negative = the engine
// default, currently 1024). Batch size is a pure performance knob:
// results, operator statistics, and budget errors are identical at
// every setting.
func (s *Store) SetBatchSize(n int) { s.batchSize = n }

// execOpts assembles the store-level execution options.
func (s *Store) execOpts() engine.ExecOptions {
	return engine.ExecOptions{
		Parallelism:    s.parallelism,
		MaxMemoryBytes: s.maxMemBytes,
		MaxRows:        s.maxRows,
		BatchSize:      s.batchSize,
	}
}

// PeakStatementMemory reports the largest accounted memory footprint
// any single statement has reached on this store's engine, in bytes.
func (s *Store) PeakStatementMemory() int64 {
	return s.shred.DB.PeakStatementMemory()
}

// Open creates an empty store for documents conforming to the schema,
// using the paper's default translation options.
func Open(s *Schema) (*Store, error) { return OpenWithOptions(s, nil) }

// OpenWithOptions creates a store with custom translation options.
func OpenWithOptions(s *Schema, opts *Options) (*Store, error) {
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		return nil, err
	}
	return &Store{schema: s, shred: st, tr: core.New(s, opts)}, nil
}

// OpenPersistent opens (or creates) a durable store rooted at dir.
// Every Load commits its document to a write-ahead log before it
// becomes visible; reopening the same directory recovers the exact
// pre-crash store state (see internal/engine.Open). The schema must
// match the one the directory was created with.
func OpenPersistent(dir string, s *Schema) (*Store, error) {
	return OpenPersistentWithOptions(dir, s, nil)
}

// OpenPersistentWithOptions is OpenPersistent with custom translation
// options.
func OpenPersistentWithOptions(dir string, s *Schema, opts *Options) (*Store, error) {
	db, err := engine.Open(dir)
	if err != nil {
		return nil, err
	}
	st, err := shred.NewSchemaAwareDB(db, s)
	if err != nil {
		_ = db.Close()
		return nil, err
	}
	return &Store{schema: s, shred: st, tr: core.New(s, opts)}, nil
}

// Checkpoint compacts the store's write-ahead log into a checkpoint
// file so the next OpenPersistent replays less. It is a no-op on
// in-memory stores.
func (s *Store) Checkpoint() error {
	if !s.shred.DB.Persistent() {
		return nil
	}
	return s.shred.DB.Checkpoint()
}

// Close flushes and closes the store's write-ahead log. In-memory
// stores close trivially. The store must not be used after Close.
func (s *Store) Close() error { return s.shred.DB.Close() }

// Load shreds a parsed document into the store, returning its
// document id.
func (s *Store) Load(doc *Document) (int64, error) { return s.shred.Load(doc) }

// LoadXML parses and shreds a document.
func (s *Store) LoadXML(r io.Reader) (int64, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	return s.Load(doc)
}

// SQL is the result of translating an XPath expression.
type SQL struct {
	// Text is the SQL statement in the engine dialect.
	Text string
	// Selects is the number of UNION branches (the paper's
	// SQL-splitting metric).
	Selects int
	// Joins is the number of relations referenced.
	Joins int

	stmt interface{} // sqlast.Statement, kept unexported
}

// Translate compiles an XPath query to SQL without executing it.
func (s *Store) Translate(query string) (*SQL, error) {
	tr, err := s.tr.Translate(query)
	if err != nil {
		return nil, err
	}
	return &SQL{Text: tr.SQL, Selects: tr.Selects, Joins: tr.Joins, stmt: tr.Stmt}, nil
}

// Node is one element of a query result.
type Node struct {
	// ID is the document-global node id (document order).
	ID int64
	// Dewey is the node's Dewey position in dotted notation.
	Dewey string
}

// Result holds a query's selected nodes in document order.
type Result struct {
	Nodes []Node
	// SQL is the executed statement.
	SQL string
}

// Query translates and executes an XPath query. It passes a nil
// context — not context.Background() — so the engine's nil-context
// fast path skips the per-1024-row cancellation poll entirely
// (ctxflow enforces this).
func (s *Store) Query(query string) (*Result, error) {
	return s.QueryContext(nil, query)
}

// QueryContext is Query under a context: cancellation or deadline
// expiry stops the engine mid-statement with ctx.Err().
func (s *Store) QueryContext(ctx context.Context, query string) (*Result, error) {
	tr, err := s.tr.Translate(query)
	if err != nil {
		return nil, err
	}
	res, err := s.shred.DB.RunWithOptionsContext(ctx, tr.Stmt, s.execOpts())
	if err != nil {
		return nil, fmt.Errorf("xrel: executing %q: %w", tr.SQL, err)
	}
	out := &Result{SQL: tr.SQL}
	for _, row := range res.Rows {
		n := Node{ID: row[0].I}
		if row[1].Kind == engine.KBytes {
			n.Dewey = deweyString(row[1].B)
		}
		out.Nodes = append(out.Nodes, n)
	}
	return out, nil
}

// RunSQL executes a statement of the engine dialect directly,
// returning column names and stringified rows. It exposes the
// embedded engine for inspection and tooling.
func (s *Store) RunSQL(sql string) (cols []string, rows [][]string, err error) {
	res, err := s.shred.DB.ExecSQLWithOptions(sql, s.execOpts())
	if err != nil {
		return nil, nil, err
	}
	rows = make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = make([]string, len(r))
		for j, v := range r {
			rows[i][j] = v.String()
		}
	}
	return res.Cols, rows, nil
}

// Explain renders the engine's physical operator tree for an XPath
// query without executing it.
func (s *Store) Explain(query string) (string, error) {
	tr, err := s.tr.Translate(query)
	if err != nil {
		return "", err
	}
	return s.shred.DB.Explain(tr.Stmt)
}

// ExplainAnalyze executes an XPath query under the store's limits and
// parallelism and renders the physical operator tree annotated with
// per-operator runtime statistics (rows in/out, loops, index probes,
// pattern-cache hits, memory charged, wall time).
func (s *Store) ExplainAnalyze(query string) (string, error) {
	tr, err := s.tr.Translate(query)
	if err != nil {
		return "", err
	}
	return s.shred.DB.ExplainAnalyzeWithOptions(tr.Stmt, s.execOpts())
}

// TableSizes reports "relation=rows" pairs, sorted by name.
func (s *Store) TableSizes() []string { return s.shred.DB.SortedTableSizes() }

// PathCount reports the number of distinct root-to-node paths stored
// (the size of the paper's 'paths' relation).
func (s *Store) PathCount() int { return s.shred.PathCount() }

// PlanCacheStats reports the embedded engine's prepared-plan cache
// counters: cached plans, cumulative hits, cumulative misses.
// Repeating a query against an unchanged store hits the cache and
// skips re-planning.
func (s *Store) PlanCacheStats() (size int, hits, misses uint64) {
	hits, misses = s.shred.DB.PlanCacheStats()
	return s.shred.DB.PlanCacheSize(), hits, misses
}

// ValidQuery reports whether the query parses and is translatable for
// this store's schema.
func (s *Store) ValidQuery(query string) error {
	if _, err := xpath.Parse(query); err != nil {
		return err
	}
	_, err := s.tr.Translate(query)
	return err
}

func deweyString(b []byte) string { return dewey.Pos(b).String() }
