// Package xpath provides the XPath lexer, parser and abstract syntax
// tree for the XPath subset the paper handles (Section 1): all 13
// axes, abbreviations (//, @, ., ..), wildcards, text() and node()
// tests, path union, nested path expressions, and logical, arithmetic,
// comparison and positional predicates.
package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is an XPath axis.
type Axis uint8

const (
	Child Axis = iota
	Descendant
	DescendantOrSelf
	Self
	Parent
	Ancestor
	AncestorOrSelf
	Following
	FollowingSibling
	Preceding
	PrecedingSibling
	Attribute
)

var axisNames = map[Axis]string{
	Child:            "child",
	Descendant:       "descendant",
	DescendantOrSelf: "descendant-or-self",
	Self:             "self",
	Parent:           "parent",
	Ancestor:         "ancestor",
	AncestorOrSelf:   "ancestor-or-self",
	Following:        "following",
	FollowingSibling: "following-sibling",
	Preceding:        "preceding",
	PrecedingSibling: "preceding-sibling",
	Attribute:        "attribute",
}

var axisByName = func() map[string]Axis {
	m := make(map[string]Axis, len(axisNames))
	for a, n := range axisNames {
		m[n] = a
	}
	return m
}()

func (a Axis) String() string { return axisNames[a] }

// Forward reports whether the axis is a forward vertical axis for PPF
// purposes (child, descendant, descendant-or-self, self, attribute).
func (a Axis) Forward() bool {
	switch a {
	case Child, Descendant, DescendantOrSelf, Self, Attribute:
		return true
	}
	return false
}

// Backward reports whether the axis is a backward vertical axis
// (parent, ancestor, ancestor-or-self).
func (a Axis) Backward() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf:
		return true
	}
	return false
}

// Horizontal reports whether the axis is one of the document-order
// axes that always form single-step PPFs.
func (a Axis) Horizontal() bool {
	switch a {
	case Following, FollowingSibling, Preceding, PrecedingSibling:
		return true
	}
	return false
}

// TestKind discriminates node tests.
type TestKind uint8

const (
	NameTest    TestKind = iota // a name, or "*" when Step.Name is empty
	TextTest                    // text()
	AnyKindTest                 // node()
)

// Step is one location step.
type Step struct {
	Axis       Axis
	Test       TestKind
	Name       string // name test; empty means wildcard
	Predicates []Expr
}

// Wildcard reports whether the step's node test matches any element
// name.
func (s *Step) Wildcard() bool { return s.Test == NameTest && s.Name == "" }

func (s *Step) String() string {
	var b strings.Builder
	switch {
	case s.Axis == Attribute:
		b.WriteByte('@')
	case s.Axis == Child:
		// default axis, no prefix
	default:
		b.WriteString(s.Axis.String())
		b.WriteString("::")
	}
	switch s.Test {
	case TextTest:
		b.WriteString("text()")
	case AnyKindTest:
		b.WriteString("node()")
	default:
		if s.Name == "" {
			b.WriteByte('*')
		} else {
			b.WriteString(s.Name)
		}
	}
	for _, p := range s.Predicates {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// Path is a location path.
type Path struct {
	Absolute bool
	Steps    []*Step
}

func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i > 0 || p.Absolute {
			// Render descendant-or-self::node() steps back as '//' when
			// they came from the abbreviation.
			b.WriteByte('/')
		}
		b.WriteString(s.String())
	}
	if len(p.Steps) == 0 && p.Absolute {
		b.WriteByte('/')
	}
	return b.String()
}

// Expr is a node of the expression tree. Implementations: *Path,
// *Binary, *Literal, *Number, *Call, *Union.
type Expr interface {
	fmt.Stringer
	exprNode()
}

func (*Path) exprNode() {}

// Op is a binary operator.
type Op uint8

const (
	OpOr Op = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var opNames = map[Op]string{
	OpOr: "or", OpAnd: "and", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpMod: "mod",
}

func (o Op) String() string { return opNames[o] }

// Comparison reports whether the operator compares values.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Logical reports whether the operator is 'and' or 'or'.
func (o Op) Logical() bool { return o == OpOr || o == OpAnd }

// Arithmetic reports whether the operator computes a number.
func (o Op) Arithmetic() bool { return o >= OpAdd }

// Binary is a binary expression.
type Binary struct {
	Op   Op
	L, R Expr
}

func (b *Binary) exprNode() {}
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Literal is a string literal.
type Literal struct{ Value string }

func (l *Literal) exprNode()      {}
func (l *Literal) String() string { return "'" + l.Value + "'" }

// Number is a numeric literal. A bare number predicate like [3] is a
// positional predicate.
type Number struct{ Value float64 }

func (n *Number) exprNode() {}
func (n *Number) String() string {
	// 'f' keeps large values in plain decimal notation — the lexer has
	// no exponent syntax, so the rendering must not introduce one.
	return strconv.FormatFloat(n.Value, 'f', -1, 64)
}

// Call is a function call. Supported functions: not(expr),
// count(path), position(), last().
type Call struct {
	Name string
	Args []Expr
}

func (c *Call) exprNode() {}
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

// Union is a top-level path union (the '|' operator).
type Union struct{ Paths []*Path }

func (u *Union) exprNode() {}
func (u *Union) String() string {
	parts := make([]string, len(u.Paths))
	for i, p := range u.Paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, " | ")
}
