// Package walorder exercises the durable-before-visible ordering
// analyzer: every publish of the annotated snapshot pointer must be
// dominated by a WAL Commit/Sync on every call path.
package walorder

import (
	"sync/atomic"

	"walorder/internal/wal"
)

type snap struct{ seq uint64 }

func (s *snap) clone() *snap { return &snap{seq: s.seq + 1} }

type DB struct {
	//walorder:publish
	snap atomic.Pointer[snap]
	log  *wal.Log
}

// New publishes through a fresh DB: construction, no ordering duty.
func New(path string) (*DB, error) {
	log, err := wal.Open(path)
	if err != nil {
		return nil, err
	}
	db := &DB{log: log}
	db.snap.Store(&snap{})
	return db, nil
}

// publish carries the requirement; its callers must discharge it.
func (db *DB) publish() {
	db.snap.Store(db.snap.Load().clone())
}

// Commit is the legal order: durable first, visible second.
func (db *DB) Commit(p []byte) error {
	if _, err := db.log.Commit(p); err != nil {
		return err
	}
	db.publish()
	return nil
}

// EarlyPublish makes the commit visible before it is durable.
func (db *DB) EarlyPublish(p []byte) error { // want `snapshot publish reachable without a preceding WAL commit`
	db.publish()
	_, err := db.log.Commit(p)
	return err
}

// AppendOnly appends but never syncs: the record is not durable when
// the snapshot becomes visible.
func (db *DB) AppendOnly(p []byte) error { // want `snapshot publish reachable without a preceding WAL commit`
	if _, err := db.log.Append(p); err != nil {
		return err
	}
	db.publish()
	return nil
}

// replay republishes state rebuilt from records that were already
// fsynced before the crash; the annotation cuts the requirement.
//
//walorder:replay -- records decoded during recovery were fsynced before the crash
func (db *DB) replay() {
	db.publish()
}

// Recover drives replay; nothing propagates through the cut.
func (db *DB) Recover() { db.replay() }
