package engine

import (
	"sync"
	"testing"
)

// TestConcurrentReadQueries runs many queries in parallel against one
// database: read-only execution (including lazy hash-index builds)
// must be race-free and deterministic. Run under -race in CI.
func TestConcurrentReadQueries(t *testing.T) {
	db := fixtureDB(t)
	queries := []string{
		"SELECT F.id FROM F WHERE F.text = '2'",
		"SELECT C.id FROM B, C WHERE C.par = B.id AND B.id = 2 ORDER BY C.id",
		"SELECT F.id FROM B, F WHERE B.id = 2 AND F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF'",
		"SELECT B.id FROM B WHERE EXISTS (SELECT NULL FROM F WHERE F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF')",
		"SELECT COUNT(*) FROM G",
		"SELECT DISTINCT F.par FROM F",
		// Exercises the shared patternCache: concurrent planners race to
		// compile and publish the same matcher (fast/slow publication
		// must be safe under -race).
		"SELECT F.id FROM F WHERE REGEXP_LIKE(F.text, '^[0-9]+$') ORDER BY F.id",
	}
	want := make([][][]Value, len(queries))
	for i, q := range queries {
		res, err := db.RunSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Rows
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, q := range queries {
					res, err := db.RunSQL(q)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != len(want[i]) {
						errs <- errResult{q}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errResult struct{ q string }

func (e errResult) Error() string { return "nondeterministic result for " + e.q }
