package bench

import (
	"reflect"
	"testing"

	"repro/internal/sqlast"
)

// TestRenderedSQLIsExecutableText proves the translations are real
// SQL text, not just ASTs: for every benchmark query and SQL-based
// system, render the statement, re-parse the text, execute both, and
// compare results.
func TestRenderedSQLIsExecutableText(t *testing.T) {
	x, err := NewXMark(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDBLP(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*Workload{x, d} {
		for _, q := range w.Queries {
			for _, sys := range []System{PPF, EdgePPF, Accel} {
				stmt, err := w.Translate(sys, q)
				if err != nil {
					t.Fatalf("%s %s: %v", sys, q.ID, err)
				}
				text := sqlast.Render(stmt)
				reparsed, err := sqlast.Parse(text)
				if err != nil {
					t.Errorf("%s %s: rendered SQL does not parse: %v\n%s", sys, q.ID, err, text)
					continue
				}
				db := w.Aware.DB
				switch sys {
				case EdgePPF:
					db = w.Edge.DB
				case Accel:
					db = w.AccelS.DB
				}
				r1, err := db.Run(stmt)
				if err != nil {
					t.Fatalf("%s %s: %v", sys, q.ID, err)
				}
				r2, err := db.Run(reparsed)
				if err != nil {
					t.Errorf("%s %s: reparsed SQL fails to run: %v", sys, q.ID, err)
					continue
				}
				if len(r1.Rows) != len(r2.Rows) {
					t.Errorf("%s %s: AST and text runs differ (%d vs %d rows)",
						sys, q.ID, len(r1.Rows), len(r2.Rows))
					continue
				}
				for i := range r1.Rows {
					if !reflect.DeepEqual(r1.Rows[i][0], r2.Rows[i][0]) {
						t.Errorf("%s %s: row %d differs", sys, q.ID, i)
						break
					}
				}
			}
		}
	}
}
