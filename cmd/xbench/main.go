// Command xbench regenerates the paper's evaluation tables and
// figures (Section 5, Appendix C) on the embedded engine.
//
// Usage:
//
//	xbench -experiment fig3|appc-small|appc-large|appc-dblp|joins|\
//	                   explain|planquality|ablate-pathfilter|ablate-fkjoin|mixed|all
//	       [-scale N] [-reps N] [-budget 60s] [-seed N] [-noverify]
//	       [-parallel] [-batch N] [-max-mem BYTES] [-max-rows N]
//	       [-json out.json]
//
// Scale 1 approximates the paper's small (12 MB) XMark document;
// appc-large uses 10x (the paper's 113 MB document). Timings cannot
// match a 2006 Oracle installation; the reproduction target is the
// relative shape of each table (see EXPERIMENTS.md).
//
// -experiment mixed is the one non-paper experiment: it measures fig3
// reader latency with and without a concurrent bulk-loading writer on
// the snapshot-isolated engine (DESIGN.md §12). It is excluded from
// "all" (which regenerates exactly the paper's tables).
//
// -parallel runs the SQL-based systems with the engine's morsel
// executor at GOMAXPROCS workers (paper-shape comparisons are serial;
// see EXPERIMENTS.md). -batch overrides the engine's row-id batch
// capacity for the SQL-based systems (0 = engine default; results are
// batch-size invariant). -max-mem and -max-rows cap each statement's
// materialized bytes and produced rows (0 = unlimited, the paper's
// configuration); an exceeded budget prints ERR for that cell. -json writes every measurement as a JSON array
// of records so the repo can accumulate a perf trajectory
// (BENCH_<experiment>.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	scale := flag.Float64("scale", 1, "workload scale (1 = paper's small document)")
	reps := flag.Int("reps", 5, "timed repetitions per query (the paper used 5)")
	budget := flag.Duration("budget", 60*time.Second, "per-query budget; slower runs print '~' like the paper")
	seed := flag.Int64("seed", 42, "generator seed")
	noverify := flag.Bool("noverify", false, "skip cross-checking every system against the oracle")
	parallel := flag.Bool("parallel", false, "run SQL-based systems with GOMAXPROCS engine workers")
	batch := flag.Int("batch", 0, "engine row-id batch capacity for SQL-based systems (0 = engine default)")
	maxMem := flag.Int64("max-mem", 0, "per-statement memory budget in bytes for SQL-based systems (0 = unlimited)")
	maxRows := flag.Int64("max-rows", 0, "per-statement produced-row budget for SQL-based systems (0 = unlimited)")
	jsonOut := flag.String("json", "", "also write measurements as JSON records to this file")
	flag.Parse()

	workers := 0
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	lim := limits{mem: *maxMem, rows: *maxRows, batch: *batch}
	if err := run(*experiment, *scale, *reps, *budget, *seed, !*noverify, workers, lim, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
}

// limits carries the per-statement resource budgets and the engine
// batch capacity into run.
type limits struct {
	mem, rows int64
	batch     int
}

func run(experiment string, scale float64, reps int, budget time.Duration, seed int64, verify bool, workers int, lim limits, jsonOut string) error {
	opts := bench.Opts{Reps: reps, Budget: budget, Verify: verify}
	var records []bench.Record
	if jsonOut != "" {
		opts.Sink = func(r bench.Record) { records = append(records, r) }
	}

	xmarkAt := func(s float64) (*bench.Workload, error) {
		fmt.Fprintf(os.Stderr, "generating and loading XMark workload (scale %g)...\n", s)
		w, err := bench.NewXMark(s, seed)
		if err == nil {
			w.Parallelism = workers
			w.MaxMemoryBytes, w.MaxRows = lim.mem, lim.rows
			w.BatchSize = lim.batch
		}
		return w, err
	}
	dblpAt := func(s float64) (*bench.Workload, error) {
		fmt.Fprintf(os.Stderr, "generating and loading DBLP workload (scale %g)...\n", s)
		w, err := bench.NewDBLP(s, seed)
		if err == nil {
			w.Parallelism = workers
			w.MaxMemoryBytes, w.MaxRows = lim.mem, lim.rows
			w.BatchSize = lim.batch
		}
		return w, err
	}

	show := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		return nil
	}

	runExperiment := func() error {
		switch experiment {
		case "fig3":
			x, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			d, err := dblpAt(scale)
			if err != nil {
				return err
			}
			return show(bench.Fig3([]*bench.Workload{x, d}, opts))
		case "appc-small":
			w, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			return show(bench.AppendixC(w, opts))
		case "appc-large":
			w, err := xmarkAt(scale * 10)
			if err != nil {
				return err
			}
			return show(bench.AppendixC(w, opts))
		case "appc-dblp":
			w, err := dblpAt(scale)
			if err != nil {
				return err
			}
			return show(bench.AppendixC(w, opts))
		case "joins":
			w, err := xmarkAt(minScale(scale, 0.05))
			if err != nil {
				return err
			}
			if err := show(bench.JoinCounts(w)); err != nil {
				return err
			}
			d, err := dblpAt(minScale(scale, 0.05))
			if err != nil {
				return err
			}
			return show(bench.JoinCounts(d))
		case "explain":
			x, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			d, err := dblpAt(scale)
			if err != nil {
				return err
			}
			return show(bench.ExplainCheck([]*bench.Workload{x, d}, opts))
		case "planquality":
			x, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			d, err := dblpAt(scale)
			if err != nil {
				return err
			}
			return show(bench.PlanQuality([]*bench.Workload{x, d}, opts))
		case "ablate-pathfilter":
			w, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			return show(bench.AblatePathFilter(w, opts))
		case "ablate-fkjoin":
			w, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			return show(bench.AblateFKJoin(w, opts))
		case "mixed":
			w, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			return show(bench.Mixed(w, opts))
		case "all":
			x, err := xmarkAt(scale)
			if err != nil {
				return err
			}
			d, err := dblpAt(scale)
			if err != nil {
				return err
			}
			if err := show(bench.JoinCounts(x)); err != nil {
				return err
			}
			if err := show(bench.Fig3([]*bench.Workload{x, d}, opts)); err != nil {
				return err
			}
			if err := show(bench.AppendixC(x, opts)); err != nil {
				return err
			}
			if err := show(bench.AppendixC(d, opts)); err != nil {
				return err
			}
			if err := show(bench.AblatePathFilter(x, opts)); err != nil {
				return err
			}
			return show(bench.AblateFKJoin(x, opts))
		default:
			return fmt.Errorf("unknown experiment %q", experiment)
		}
	}

	if err := runExperiment(); err != nil {
		return err
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(records), jsonOut)
	}
	return nil
}

func minScale(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
