package pathre

import "testing"

func compile(t *testing.T, pattern string) *Regexp {
	t.Helper()
	re, err := Compile(pattern)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return re
}

// domain compiles ^(/seg)+$ (valid root-to-node path strings) via the
// Builder, the way transcheck restricts its comparisons.
func pathDomain() *Regexp {
	b := &Builder{}
	seg := b.Plus(b.Class(true, '/'))
	return b.Compile(b.Seq(b.Bol(), b.Plus(b.Seq(b.Byte('/'), seg)), b.Eol()), "domain")
}

func TestEquivalentBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`^/a$`, `^/a$`, true},
		{`^/(a)$`, `^/a$`, true},
		{`(^/a$)|(^/b$)`, `(^/b$)|(^/a$)`, true}, // alternation commutes
		{`^/a$`, `^/b$`, false},
		{`^/a/b$`, `^/a/.*b$`, false}, // extra gap admits /a/xb
		{`^.*/a$`, `/a$`, true},       // unanchored prefix == ^.* prefix
		{`^/(x/)*a$`, `^/(x/)(x/)*a$`, false},
		{`a`, `.*a.*`, true}, // substring semantics: both accept any string containing a
	}
	for _, tc := range cases {
		got, witness, err := Equivalent(compile(t, tc.a), compile(t, tc.b))
		if err != nil {
			t.Errorf("%q vs %q: %v", tc.a, tc.b, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v (witness %q), want %v", tc.a, tc.b, got, witness, tc.want)
		}
	}
}

// A witness must actually discriminate: accepted by exactly one side.
func TestWitnessDiscriminates(t *testing.T) {
	pairs := [][2]string{
		{`^/a$`, `^/b$`},
		{`^/a/b$`, `^/a/(.+/)?b$`},
		{`^/(.+/)?a$`, `^/([^/]+/)*a$`}, // differ only outside the path domain
	}
	for _, p := range pairs {
		a, b := compile(t, p[0]), compile(t, p[1])
		eq, witness, err := Equivalent(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			t.Errorf("%q vs %q: expected inequivalent", p[0], p[1])
			continue
		}
		if a.MatchString(witness) == b.MatchString(witness) {
			t.Errorf("%q vs %q: witness %q does not discriminate", p[0], p[1], witness)
		}
	}
}

// The Table 1 descendant gap: '(.+/)?' and the segment-structured
// '([^/]+/)*' disagree over Σ* (the former admits slash-bearing and
// empty "segments", witness ///a) but agree on every valid path
// string — the restriction transcheck's comparisons rely on.
func TestDomainRestriction(t *testing.T) {
	loose := compile(t, `^/(.+/)?a$`)
	strict := compile(t, `^/([^/]+/)*a$`)
	eq, witness, err := Equivalent(loose, strict)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("expected Σ* inequivalence")
	}
	if loose.MatchString(witness) == strict.MatchString(witness) {
		t.Fatalf("witness %q does not discriminate", witness)
	}
	eq, witness, err = EquivalentWithin(pathDomain(), loose, strict)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("expected in-domain equivalence, witness %q", witness)
	}
}

// In-domain witnesses lie inside the domain.
func TestWitnessInDomain(t *testing.T) {
	dom := pathDomain()
	a := compile(t, `^/a/b$`)
	b := compile(t, `^/a/(.+/)?b$`)
	eq, witness, err := EquivalentWithin(dom, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("expected inequivalence: the gap admits /a/x/b")
	}
	if !dom.MatchString(witness) {
		t.Errorf("witness %q is outside the domain", witness)
	}
	if a.MatchString(witness) == b.MatchString(witness) {
		t.Errorf("witness %q does not discriminate", witness)
	}
}

// Mid-string acceptance (no trailing $) makes every extension match:
// the universal-sink modeling.
func TestStickyMatch(t *testing.T) {
	eq, _, err := Equivalent(compile(t, `^/a`), compile(t, `^/a.*`))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("^/a and ^/a.* accept the same language under substring semantics")
	}
}
