// Outside internal/engine the analyzer is silent: other packages may
// define their own OpStats-named types with their own discipline.
package ok

type OpStats struct{ loops int64 }

func bump(s *OpStats) { s.loops++ }
