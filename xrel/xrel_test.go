package xrel

import (
	"context"
	"errors"
	"strings"
	"testing"
)

const testSchema = `
!root A
A -> B @x
B -> C G
C -> D E
E -> F
G -> G
F #text
D #text
`

const testDoc = `<A x="3"><B><C><D>4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`

func open(t *testing.T) *Store {
	t.Helper()
	s, err := ParseCompactSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadXML(strings.NewReader(testDoc)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestQuickstartFlow(t *testing.T) {
	st := open(t)
	res, err := st.Query("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
	if res.Nodes[0].Dewey == "" || !strings.HasPrefix(res.Nodes[0].Dewey, "1.") {
		t.Errorf("dewey = %q", res.Nodes[0].Dewey)
	}
	if !strings.Contains(res.SQL, "SELECT DISTINCT") {
		t.Errorf("SQL = %s", res.SQL)
	}
}

func TestTranslateOnly(t *testing.T) {
	st := open(t)
	sql, err := st.Translate("/A[@x=3]/B")
	if err != nil {
		t.Fatal(err)
	}
	if sql.Selects != 1 || sql.Joins != 2 {
		t.Errorf("selects=%d joins=%d", sql.Selects, sql.Joins)
	}
	if !strings.Contains(sql.Text, "B.par = A.id") {
		t.Errorf("SQL = %s", sql.Text)
	}
}

func TestRunSQLAndExplain(t *testing.T) {
	st := open(t)
	cols, rows, err := st.RunSQL("SELECT F.id, F.text FROM F ORDER BY F.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(rows) != 2 || rows[0][1] != "2" {
		t.Fatalf("cols=%v rows=%v", cols, rows)
	}
	plan, err := st.Explain("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Error("empty plan")
	}
}

func TestExplainAnalyze(t *testing.T) {
	st := open(t)
	plan, err := st.ExplainAnalyze("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scan ", "[loops=", "time=", "total: rows=2 "} {
		if !strings.Contains(plan, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, plan)
		}
	}
	// The store's parallelism applies to the analyzed execution too.
	st.SetParallelism(4)
	par, err := st.ExplainAnalyze("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(par, "total: rows=2 ") {
		t.Errorf("parallel EXPLAIN ANALYZE lost rows:\n%s", par)
	}
}

func TestStats(t *testing.T) {
	st := open(t)
	if st.PathCount() != 8 {
		t.Errorf("paths = %d", st.PathCount())
	}
	sizes := st.TableSizes()
	if len(sizes) == 0 {
		t.Error("no table sizes")
	}
}

func TestValidQuery(t *testing.T) {
	st := open(t)
	if err := st.ValidQuery("/A/B"); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := st.ValidQuery("///"); err == nil {
		t.Error("bad syntax accepted")
	}
	if err := st.ValidQuery("//F[last()]"); err == nil {
		t.Error("untranslatable query accepted")
	}
}

func TestInferSchemaRoundTrip(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(testDoc))
	if err != nil {
		t.Fatal(err)
	}
	s, err := InferSchema(doc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
}

func TestOpenWithOptions(t *testing.T) {
	s, err := ParseCompactSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	opts := &Options{PathFilterOmission: false, FKChildParent: true}
	st, err := OpenWithOptions(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadXML(strings.NewReader(testDoc)); err != nil {
		t.Fatal(err)
	}
	sql, err := st.Translate("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.Text, "REGEXP_LIKE") {
		t.Errorf("omission disabled should keep the path filter: %s", sql.Text)
	}
}

// TestPlanCacheAcrossQueries checks that repeating an XPath query
// reuses the engine's cached plan and that the counters are exposed.
func TestPlanCacheAcrossQueries(t *testing.T) {
	st := open(t)
	q := "/A/B/C//F"
	first, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	_, h0, m0 := st.PlanCacheStats()
	again, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	size, h1, m1 := st.PlanCacheStats()
	if h1-h0 != 1 || m1 != m0 {
		t.Errorf("repeat query: hits %d->%d misses %d->%d, want one new hit", h0, h1, m0, m1)
	}
	if size == 0 {
		t.Error("PlanCacheStats size = 0 after queries")
	}
	if len(again.Nodes) != len(first.Nodes) {
		t.Errorf("cached plan returned %d nodes, first run %d", len(again.Nodes), len(first.Nodes))
	}
}

// TestSetParallelism checks that parallel execution returns the same
// nodes as serial execution.
func TestSetParallelism(t *testing.T) {
	st := open(t)
	q := "/A/B/C//F"
	want, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	st.SetParallelism(4)
	got, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("parallel: %d nodes, serial %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, got.Nodes[i], want.Nodes[i])
		}
	}
}

// TestSetBatchSize checks the batch-size knob is plumbed through and
// invariant: every setting — including the degenerate 1 — returns the
// serial default's nodes.
func TestSetBatchSize(t *testing.T) {
	st := open(t)
	q := "/A/B/C//F"
	want, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 7, 256, 4096, 0} {
		st.SetBatchSize(bs)
		got, err := st.Query(q)
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("batch size %d: %d nodes, want %d", bs, len(got.Nodes), len(want.Nodes))
		}
		for i := range got.Nodes {
			if got.Nodes[i] != want.Nodes[i] {
				t.Fatalf("batch size %d: node %d differs: %+v vs %+v", bs, i, got.Nodes[i], want.Nodes[i])
			}
		}
	}
}

func TestSetLimits(t *testing.T) {
	st := open(t)
	baseline, err := st.Query("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	st.SetLimits(16, 0) // far below any real materialization
	if _, err := st.Query("/A/B/C//F"); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("memory-limited query: err = %v, want ErrMemoryBudget", err)
	}
	st.SetLimits(0, 1)
	if _, err := st.Query("/A/B/C//F"); !errors.Is(err, ErrRowBudget) {
		t.Fatalf("row-limited query: err = %v, want ErrRowBudget", err)
	}
	// Limits also govern RunSQL.
	if _, _, err := st.RunSQL("SELECT COUNT(*) FROM paths"); err != nil {
		t.Fatalf("COUNT under row limit (counts are not materialized rows): %v", err)
	}
	st.SetLimits(16, 0)
	if _, _, err := st.RunSQL("SELECT id FROM paths ORDER BY id"); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("memory-limited RunSQL: err = %v, want ErrMemoryBudget", err)
	}
	// Back to unlimited: the store must be fully usable.
	st.SetLimits(0, 0)
	res, err := st.Query("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != len(baseline.Nodes) {
		t.Fatalf("nodes after lifting limits = %d, want %d", len(res.Nodes), len(baseline.Nodes))
	}
	if st.PeakStatementMemory() <= 0 {
		t.Error("PeakStatementMemory not recorded")
	}
}

func TestQueryContext(t *testing.T) {
	st := open(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.QueryContext(ctx, "/A/B/C//F"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
	}
	res, err := st.QueryContext(context.Background(), "/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %v", res.Nodes)
	}
}
