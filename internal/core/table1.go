package core

import "repro/internal/xpath"

// This file is transcheck's window into the Table 1 construction: the
// derivation functions stay unexported (translate.go and edge.go are
// their only production callers), but the static translation validator
// needs to drive them over a synthetic axis/shape matrix in addition
// to observing real translations through SetPatternTrace.

// DeriveForwardPattern derives the Table 1 regex for a forward
// fragment (child/descendant/descendant-or-self steps).
func DeriveForwardPattern(steps []*xpath.Step, anchored bool, baseName string) (string, error) {
	return forwardRegex(steps, anchored, baseName)
}

// DeriveBackwardPattern derives the Table 1 regex for a backward
// fragment (parent/ancestor/ancestor-or-self steps) constraining the
// previous prominent element's path.
func DeriveBackwardPattern(steps []*xpath.Step, contextName string) (string, error) {
	return backwardRegex(steps, contextName)
}

// DeriveForwardSuffixPattern derives the fragment-boundary suffix
// regex for a forward fragment.
func DeriveForwardSuffixPattern(steps []*xpath.Step, prevNamePat string) (string, error) {
	return forwardSuffixRegex(steps, prevNamePat)
}

// DeriveBackwardSuffixPattern derives the fragment-boundary suffix
// regex for a backward fragment.
func DeriveBackwardSuffixPattern(steps []*xpath.Step, contextName string) (string, error) {
	return backwardSuffixRegex(steps, contextName)
}

// QuoteName exposes regexQuote so transcheck can build boundary name
// patterns exactly the way the translator does.
func QuoteName(name string) string { return regexQuote(name) }
