package core

import (
	"strings"
	"testing"

	"repro/internal/native"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

// multiRootSchema has two document elements, exercising resolution
// from several roots.
func multiRootSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder("lib", "arch").
		Element("lib", "book").
		Element("arch", "book").
		Element("book", "title").
		Text("title").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMultiRootResolution(t *testing.T) {
	s := multiRootSchema(t)
	tr := New(s, nil)
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<lib><book><title>a</title></book></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	// book is F-P (two root paths); '/lib/book' must filter or resolve.
	if s.Node("book").Mark != schema.FinitePaths {
		t.Fatalf("book mark = %s", s.Node("book").Mark)
	}
	got := runQuery(t, tr, st, "/lib/book")
	if len(got) != 1 {
		t.Fatalf("ids = %v", got)
	}
	// The other root matches nothing in this store.
	got = runQuery(t, tr, st, "/arch/book")
	if len(got) != 0 {
		t.Fatalf("ids = %v", got)
	}
	// '//book' spans both possibilities with one relation.
	trans, err := tr.Translate("//book")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 1 {
		t.Errorf("selects = %d", trans.Selects)
	}
}

func TestSplittingLimit(t *testing.T) {
	// A schema with many same-level children and a wildcard chain can
	// exceed the combination cap.
	b := schema.NewBuilder("r")
	names := make([]string, 30)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	b.Element("r", names...)
	for _, n := range names {
		b.Element(n, names...)
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.maxCombos = 16
	tr := New(s, &opts)
	if _, err := tr.Translate("/r/*/*"); err == nil {
		t.Fatal("combination explosion should be reported")
	}
}

func TestRelativeTopLevelRejected(t *testing.T) {
	tr, _, _ := setup(t)
	if _, err := tr.Translate("B/C"); err == nil {
		t.Fatal("relative top-level path should fail")
	}
}

func TestNonPathExpressionRejected(t *testing.T) {
	tr, _, _ := setup(t)
	if _, err := tr.Translate("//missing-axis::"); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestRootQuery(t *testing.T) {
	tr, st, ev := setup(t)
	check(t, tr, st, ev, "/")
}

func TestBackwardFirstFragmentRejected(t *testing.T) {
	tr, _, _ := setup(t)
	if _, err := tr.Translate("/parent::A"); err == nil {
		t.Fatal("backward first fragment at top level should fail")
	}
	if _, err := tr.Translate("/following::A"); err == nil {
		t.Fatal("horizontal first fragment at top level should fail")
	}
}

func TestChainedHorizontalFragments(t *testing.T) {
	tr, st, ev := setup(t)
	// horizontal then forward then backward, mixing everything.
	for _, q := range []string{
		"/A/B/C/following-sibling::C/E/F",
		"/A/B/C/following-sibling::G/preceding-sibling::C",
		"//E/preceding::D/parent::C",
		"//D/following::F/parent::E",
	} {
		check(t, tr, st, ev, q)
	}
}

func TestPredicateOnHorizontalStep(t *testing.T) {
	tr, st, ev := setup(t)
	for _, q := range []string{
		"//D/following::F[. = 2]",
		"/A/B/C/following-sibling::C[E]",
		"//G/preceding-sibling::C[D or E]",
	} {
		check(t, tr, st, ev, q)
	}
}

func TestNestedPredicates(t *testing.T) {
	tr, st, ev := setup(t)
	for _, q := range []string{
		"/A/B[C[D]]",
		"/A/B[C[E/F=2]]",
		"/A/B[C[not(D)] and G]",
		"//B[C[E[F]]]",
	} {
		check(t, tr, st, ev, q)
	}
}

func TestUnionWithEmptyBranch(t *testing.T) {
	tr, st, ev := setup(t)
	// One branch statically empty: union must still work.
	check(t, tr, st, ev, "/A/B/C | /A/Zz")
	trans, err := tr.Translate("/A/Zz | /A/Yy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	_ = ev
}

func TestCountPredicateVariants(t *testing.T) {
	tr, st, ev := setup(t)
	for _, q := range []string{
		"//E[count(F) = 2]",
		"//E[count(F) >= 1]",
		"//B[count(C) = 2]",
		"//B[count(C) = 0]",
		"//E[2 = count(F)]",
	} {
		check(t, tr, st, ev, q)
	}
	// count over an ambiguous path is rejected.
	if _, err := tr.Translate("/A/B[count(C/*) = 1]"); err == nil {
		t.Fatal("count over multi-relation path should fail")
	}
}

func TestStaticPredicates(t *testing.T) {
	tr, st, ev := setup(t)
	for _, q := range []string{
		"/A/B[1 = 1]",
		"/A/B['x']",
		"/A/B[2 > 3 or C]",
		"/A/B[not(1 = 2)]",
		"/A/B[1 + 1 = 2]",
	} {
		check(t, tr, st, ev, q)
	}
	trans, err := tr.Translate("/A/B[1 = 2]")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("statically false predicate returned rows")
	}
	_ = ev
}

func TestNotOverExists(t *testing.T) {
	tr, _, _ := setup(t)
	trans, err := tr.Translate("/A/B[not(C/E)]")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "NOT EXISTS") {
		t.Errorf("not(path) should render NOT EXISTS: %s", trans.SQL)
	}
}

func TestArithmeticOnAttributeAndText(t *testing.T) {
	tr, st, ev := setup(t)
	for _, q := range []string{
		"//D[@x * 2 = 8]",
		"//F[2 * . = 4]",
		"//F[. - 1 = 1]",
		"//D[text() + 1 = 5]",
	} {
		check(t, tr, st, ev, q)
	}
}

// TestDifferentialDeepDoc uses a deeper recursive document to stress
// the I-P paths, the unanchored regexes and Dewey depth.
func TestDifferentialDeepDoc(t *testing.T) {
	s, err := schema.NewBuilder("r").
		Element("r", "g").
		Element("g", "g", "leaf").
		Text("leaf").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 12; i++ {
		b.WriteString("<g>")
	}
	b.WriteString("<leaf>1</leaf>")
	for i := 0; i < 12; i++ {
		b.WriteString("</g>")
	}
	b.WriteString("<g><leaf>2</leaf></g></r>")
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	tr := New(s, nil)
	ev := native.New(doc)
	for _, q := range []string{
		"//g",
		"//g//g",
		"//g/g/g",
		"//leaf",
		"//g[leaf]",
		"//leaf/ancestor::g",
		"//g[not(g)]",
		"/r/g//leaf",
		"//g[leaf=2]",
		"//g/parent::g/parent::g",
	} {
		check(t, tr, st, ev, q)
	}
}
