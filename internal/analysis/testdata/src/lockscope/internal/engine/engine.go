// Seeded violations for the lockscope analyzer: critical sections
// stretched across operations with unbounded latency. The pattern
// cache, hash builds and plan cache are shared across morsel workers;
// a yield callback, channel op or failpoint site under their mutexes
// turns one slow row into a convoy.
package engine

import (
	"sync"

	"repro/internal/failpoint"
)

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// A dynamic call (func-typed parameter) under the lock runs arbitrary
// plan code inside the critical section.
func yieldUnderLock(c *cache, key string, yield func(int) bool) {
	c.mu.Lock()
	v := c.m[key]
	yield(v) // want `dynamic call yield while c\.mu is held`
	c.mu.Unlock()
}

// Releasing first is the sanctioned shape; this function also pins
// that the analyzer tracks release (no diagnostic after Unlock).
func sendUnderLock(c *cache, key string, out chan int) {
	c.mu.Lock()
	out <- c.m[key] // want `channel send while c\.mu is held`
	c.mu.Unlock()
	out <- 0
}

func recvUnderLock(c *cache, in chan int) {
	c.mu.Lock()
	c.m["k"] = <-in // want `channel receive while c\.mu is held`
	c.mu.Unlock()
}

// The CFG decomposes select into its comm clauses, so each blocking
// arm is flagged at its own line.
func selectUnderLock(c *cache, in, out chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-in: // want `channel receive while c\.mu is held`
		c.m["k"] = v
	case out <- len(c.m): // want `channel send while c\.mu is held`
	}
}

// An armed failpoint.Sleep inside the critical section stalls every
// worker contending for the lock — the chaos-run deadlock class.
func failpointUnderLock(c *cache) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := failpoint.Inject("engine/hash-build"); err != nil { // want `failpoint site while c\.mu is held`
		return err
	}
	c.m["k"]++
	return nil
}

// May-held means union over paths: one locking branch is enough.
func heldOnSomePath(c *cache, locked bool, yield func(int) bool) {
	if locked {
		c.mu.Lock()
	}
	yield(0) // want `dynamic call yield while c\.mu is held`
	if locked {
		c.mu.Unlock()
	}
}
