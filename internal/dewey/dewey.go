// Package dewey implements the binary Dewey position encoding of
// Georgiadis & Vassalos (EDBT 2006), Section 4.2.
//
// A Dewey position identifies a node by the path of local sibling
// ordinals from the document root down to the node. The encoding packs
// each ordinal into a fixed 3-byte component whose first bit is zero,
// so a component ranges from 0 to 0x7FFFFF. Because no component can
// begin with a byte >= 0x80, appending the sentinel byte 0xFF to a
// position d yields a string that is lexicographically greater than
// the position of every descendant of d but smaller than the position
// of any node following d in document order. All XPath axes therefore
// reduce to lexicographic byte-string comparisons (Table 2 of the
// paper; Lemmas 1 and 2).
package dewey

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ComponentSize is the width in bytes of one encoded ordinal.
const ComponentSize = 3

// MaxOrdinal is the largest sibling ordinal a component can hold.
const MaxOrdinal = 0x7FFFFF

// Sentinel is the byte appended to a position to form the exclusive
// upper bound of its descendant range. Any byte >= 0x80 works; the
// paper uses 'F' (hex notation for 0xFF).
const Sentinel byte = 0xFF

// Pos is an encoded Dewey position: a concatenation of 3-byte
// components. The zero value (empty) is the position of a virtual
// super-root above the document root and is a prefix of every
// position.
type Pos []byte

var errBadLength = errors.New("dewey: encoded length is not a multiple of the component size")

// New builds a position from a vector of sibling ordinals, e.g.
// New(1, 1, 2) for the node "1.1.2" in the paper's Figure 1.
func New(ordinals ...int) Pos {
	p := make(Pos, 0, len(ordinals)*ComponentSize)
	for _, o := range ordinals {
		p = p.Child(o)
	}
	return p
}

// Child returns the position of the child of p with local ordinal ord
// (1-based in documents, though 0 is representable). It panics if ord
// is out of the encodable range; shredding must not produce such
// fan-outs.
func (p Pos) Child(ord int) Pos {
	if ord < 0 || ord > MaxOrdinal {
		panic(fmt.Sprintf("dewey: ordinal %d out of range [0, %d]", ord, MaxOrdinal))
	}
	c := make(Pos, len(p), len(p)+ComponentSize)
	copy(c, p)
	return append(c, byte(ord>>16), byte(ord>>8), byte(ord))
}

// Valid reports whether p is a structurally valid encoding: a whole
// number of components, each with its top bit clear.
func (p Pos) Valid() bool {
	if len(p)%ComponentSize != 0 {
		return false
	}
	for i := 0; i < len(p); i += ComponentSize {
		if p[i]&0x80 != 0 {
			return false
		}
	}
	return true
}

// Level is the depth of the node: the number of components. The
// document root has level 1.
func (p Pos) Level() int { return len(p) / ComponentSize }

// Ordinals decodes p back into its ordinal vector.
func (p Pos) Ordinals() ([]int, error) {
	if len(p)%ComponentSize != 0 {
		return nil, errBadLength
	}
	out := make([]int, 0, p.Level())
	for i := 0; i < len(p); i += ComponentSize {
		out = append(out, int(p[i])<<16|int(p[i+1])<<8|int(p[i+2]))
	}
	return out, nil
}

// Parent returns the position of p's parent and true, or nil and
// false if p is the root (or empty).
func (p Pos) Parent() (Pos, bool) {
	if len(p) < ComponentSize {
		return nil, false
	}
	return p[:len(p)-ComponentSize], true
}

// LocalOrder returns the node's ordinal among its siblings (the last
// component), or 0 for the empty position.
func (p Pos) LocalOrder() int {
	if len(p) < ComponentSize {
		return 0
	}
	i := len(p) - ComponentSize
	return int(p[i])<<16 | int(p[i+1])<<8 | int(p[i+2])
}

// DescendantLimit returns the exclusive lexicographic upper bound of
// the range spanned by p and all of its descendants: p || Sentinel.
// Together with p itself as the (exclusive, for proper descendants)
// lower bound it implements Lemma 1.
func (p Pos) DescendantLimit() Pos {
	l := make(Pos, len(p), len(p)+1)
	copy(l, p)
	return append(l, Sentinel)
}

// Compare is a lexicographic byte comparison: -1, 0 or +1.
func Compare(a, b Pos) int { return bytes.Compare(a, b) }

// IsDescendant reports whether n is a proper descendant of m
// (Lemma 1: d(n) > d(m) and d(n) < d(m)||0xFF).
func IsDescendant(n, m Pos) bool {
	return bytes.Compare(n, m) > 0 && bytes.Compare(n, m.DescendantLimit()) < 0
}

// IsDescendantOrSelf reports whether n is m or a descendant of m.
func IsDescendantOrSelf(n, m Pos) bool {
	return bytes.Compare(n, m) >= 0 && bytes.Compare(n, m.DescendantLimit()) < 0
}

// IsAncestor reports whether n is a proper ancestor of m.
func IsAncestor(n, m Pos) bool { return IsDescendant(m, n) }

// IsFollowing reports whether n follows m in document order and is
// not a descendant of m (Lemma 2: d(n) > d(m)||0xFF).
func IsFollowing(n, m Pos) bool {
	return bytes.Compare(n, m.DescendantLimit()) > 0
}

// IsPreceding reports whether n precedes m in document order and is
// not an ancestor of m.
func IsPreceding(n, m Pos) bool { return IsFollowing(m, n) }

// IsFollowingSibling reports whether n is a following sibling of m:
// same parent, greater local order.
func IsFollowingSibling(n, m Pos) bool {
	np, nok := n.Parent()
	mp, mok := m.Parent()
	return nok && mok && bytes.Equal(np, mp) && bytes.Compare(n, m) > 0
}

// IsPrecedingSibling reports whether n is a preceding sibling of m.
func IsPrecedingSibling(n, m Pos) bool { return IsFollowingSibling(m, n) }

// IsChild reports whether n is a child of m.
func IsChild(n, m Pos) bool {
	np, ok := n.Parent()
	return ok && bytes.Equal(np, m)
}

// String renders p in the dotted decimal notation of the paper's
// Figure 1(c), e.g. "1.1.2". Invalid encodings render as hex.
func (p Pos) String() string {
	ords, err := p.Ordinals()
	if err != nil {
		return fmt.Sprintf("dewey(%x)", []byte(p))
	}
	var b strings.Builder
	for i, o := range ords {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(o))
	}
	return b.String()
}

// Parse is the inverse of String: it parses dotted decimal notation.
func Parse(s string) (Pos, error) {
	if s == "" {
		return Pos{}, nil
	}
	parts := strings.Split(s, ".")
	ords := make([]int, len(parts))
	for i, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("dewey: parse %q: %w", s, err)
		}
		if n < 0 || n > MaxOrdinal {
			return nil, fmt.Errorf("dewey: parse %q: ordinal %d out of range", s, n)
		}
		ords[i] = n
	}
	return New(ords...), nil
}

// WithRoot returns a copy of p with its first component replaced by
// ord. Shredders use it to give every document a distinct root
// component (the document id), so Dewey ranges of different documents
// never overlap and structural joins cannot match across documents.
func WithRoot(p Pos, ord int) Pos {
	if len(p) < ComponentSize {
		return New(ord)
	}
	if ord < 0 || ord > MaxOrdinal {
		panic(fmt.Sprintf("dewey: root ordinal %d out of range", ord))
	}
	out := make(Pos, len(p))
	copy(out, p)
	out[0], out[1], out[2] = byte(ord>>16), byte(ord>>8), byte(ord)
	return out
}

// CommonAncestor returns the position of the lowest common ancestor
// of a and b (possibly the empty super-root position).
func CommonAncestor(a, b Pos) Pos {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	n -= n % ComponentSize
	i := 0
	for i < n && bytes.Equal(a[i:i+ComponentSize], b[i:i+ComponentSize]) {
		i += ComponentSize
	}
	out := make(Pos, i)
	copy(out, a[:i])
	return out
}
