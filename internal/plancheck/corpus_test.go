package plancheck

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlast"
)

func TestCheckCorpus(t *testing.T) {
	fs, stats, err := CheckCorpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
	if stats.Checked == 0 || stats.Omissions == 0 {
		t.Fatalf("suspicious stats: %+v", stats)
	}
	t.Logf("corpus: %+v", stats)
}

func TestCheckMatrixSample(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 20
	}
	fs, stats, err := CheckMatrix(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
	if stats.Checked == 0 {
		t.Fatalf("matrix checked nothing: %+v", stats)
	}
	t.Logf("matrix: %+v", stats)
}

// TestMutationsRejected proves the checker is not vacuous: every
// applicable seeded defect must be rejected with a counterexample.
func TestMutationsRejected(t *testing.T) {
	ws, err := corpusWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	applied := map[string]bool{}
	for _, w := range ws {
		ppf := w.NewPPFTranslator(nil)
		for _, q := range w.Queries {
			tr, err := ppf.Translate(q.XPath)
			if err != nil {
				continue
			}
			results, err := CheckMutations(w.Aware.DB, tr.Stmt)
			if err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			for _, r := range results {
				if !r.Applied {
					continue
				}
				if !r.Rejected {
					t.Errorf("%s: mutation %s was applied but not rejected", q.ID, r.Name)
					continue
				}
				if r.Finding == "" {
					t.Errorf("%s: mutation %s rejected without a counterexample", q.ID, r.Name)
				}
				applied[r.Name] = true
			}
		}
	}
	w := ws[0] // DBLP
	for _, m := range Mutations() {
		if !applied[m.Name] {
			t.Errorf("mutation %s never applied across the corpus — widen its applicability or the corpus", m.Name)
		}
	}

	omResults := OmissionMutations(w.Schema)
	for _, r := range omResults {
		if r.Applied && !r.Rejected {
			t.Errorf("omission mutation %s was not rejected", r.Name)
		}
		if r.Applied && r.Rejected {
			applied[r.Name] = true
		}
	}
	if len(applied) < 5 {
		t.Errorf("only %d distinct defects were exercised, want >= 5: %v", len(applied), applied)
	}
}

// TestVerifyPlanRejectsMutatedVerifier checks the ExecOptions wiring
// end to end: a verifier that always rejects must abort execution.
func TestVerifyPlanRejectsMutatedVerifier(t *testing.T) {
	db := twoTableDB(t)
	engine.SetPlanVerifier(func(tr engine.PlanTrace) error {
		_, fs := CheckShape(db, tr.Stmt, tr.Shape)
		if len(fs) > 0 {
			return &findingErr{fs[0]}
		}
		return nil
	})
	defer engine.SetPlanVerifier(nil)
	st, err := sqlast.Parse("SELECT e.id FROM element e WHERE e.parent = 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunWithOptions(st, engine.ExecOptions{VerifyPlan: true}); err != nil {
		t.Fatalf("clean plan rejected: %v", err)
	}
	// A verifier checking a *different* statement's logic must fail.
	other, _ := sqlast.Parse("SELECT e.id FROM element e WHERE e.parent = 99")
	engine.SetPlanVerifier(func(tr engine.PlanTrace) error {
		_, fs := CheckShape(db, other, tr.Shape)
		if len(fs) > 0 {
			return &findingErr{fs[0]}
		}
		return nil
	})
	if _, err := db.RunWithOptions(st, engine.ExecOptions{VerifyPlan: true}); err == nil {
		t.Fatal("mismatched plan passed verification")
	}
}

type findingErr struct{ f Finding }

func (e *findingErr) Error() string { return e.f.String() }

// Regression: both translators used to memoize alias->paths joins
// globally rather than per SELECT scope, so a subquery could
// reference a paths alias declared only in a *sibling* subquery
// (unknown table at compile time), and after scoping the memo, an
// inner re-join of an outer alias's paths row could shadow the
// enclosing join's name. These shapes — surfaced by the plancheck
// random matrix — must translate, compile, and certificate-check.
func TestScopedPathsJoinRegression(t *testing.T) {
	ws, err := corpusWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// Nested: the predicate re-inspects a path already joined in
		// the enclosing scope.
		"//sup[.//sup]",
		// Sibling EXISTS branches under the Edge translator each need
		// the context element's paths row.
		"/year//following-sibling::*[.//*]//book",
		// Schema translator: [.//*] expands to sibling EXISTS
		// branches that all inspect the outer element's path.
		"//inproceedings/preceding::inproceedings[.//*]/descendant-or-self::*",
	}
	om := &omissionLog{}
	defer om.install()()
	var stats Stats
	for _, w := range ws {
		for _, tf := range translators(w) {
			for _, q := range queries {
				label := w.Name + "/" + tf.name + "/" + q
				for _, f := range checkOne(label, tf, q, om, &stats) {
					t.Errorf("%s: %s", label, f)
				}
			}
		}
	}
	if stats.Checked == 0 {
		t.Fatal("no plans checked")
	}
}
