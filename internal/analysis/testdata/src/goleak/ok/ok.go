// Outside internal/engine the analyzer is silent: other packages may
// manage goroutine lifetimes through mechanisms it cannot see.
package ok

func spawn() {
	go func() {
		for {
		}
	}()
}
