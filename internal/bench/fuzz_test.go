package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
)

// queryGen produces random XPath queries that are valid for a schema
// and inside the subset every system translates. It is the engine of
// the differential property test: whatever it produces, all five
// systems must agree on.
type queryGen struct {
	r *rand.Rand
	s *schema.Schema
	// textElems and attrs for value predicates.
	textElems []string
	attrElems []struct{ elem, attr string }
	values    []string
}

func newQueryGen(seed int64, s *schema.Schema, values []string) *queryGen {
	g := &queryGen{r: rand.New(rand.NewSource(seed)), s: s, values: values}
	for _, n := range s.Nodes() {
		if n.HasText {
			g.textElems = append(g.textElems, n.Name)
		}
		for _, a := range n.Attrs {
			g.attrElems = append(g.attrElems, struct{ elem, attr string }{n.Name, a})
		}
	}
	return g
}

// gen emits one random query: usually a single absolute path, with
// occasional unions and terminal attribute / text() steps.
func (g *queryGen) gen() string {
	q := g.genPath()
	switch g.r.Intn(10) {
	case 0:
		return q + " | " + g.genPath()
	case 1:
		// Terminal attribute or text() on the last element when known.
		if !strings.HasSuffix(q, "*") && !strings.Contains(q, "]") {
			last := q[strings.LastIndexByte(q, '/')+1:]
			if n := g.s.Node(strings.TrimPrefix(last, "parent::")); n != nil {
				if n.HasText && g.r.Intn(2) == 0 {
					return q + "/text()"
				}
				if len(n.Attrs) > 0 {
					return q + "/@" + n.Attrs[g.r.Intn(len(n.Attrs))]
				}
			}
		}
	}
	return q
}

// genPath emits one random absolute path. It walks the schema graph
// so most steps are non-empty, with occasional wildcards, '//' hops,
// backward steps, horizontal steps and predicates.
func (g *queryGen) genPath() string {
	var b strings.Builder
	cur := g.s.Roots()[g.r.Intn(len(g.s.Roots()))]
	b.WriteString("/" + cur.Name)
	steps := 1 + g.r.Intn(4)
	for i := 0; i < steps; i++ {
		switch g.r.Intn(10) {
		case 0, 1, 2, 3, 4: // child step
			if len(cur.Children) == 0 {
				return b.String()
			}
			next := cur.Children[g.r.Intn(len(cur.Children))]
			b.WriteString("/" + next.Name)
			cur = next
		case 5: // wildcard child
			if len(cur.Children) == 0 {
				return b.String()
			}
			next := cur.Children[g.r.Intn(len(cur.Children))]
			b.WriteString("/*")
			cur = next // approximate: resolution handles the rest
		case 6: // descendant hop
			desc := g.s.Resolve([]*schema.Node{cur}, []schema.Step{{Axis: schema.Descendant}})
			if len(desc) == 0 {
				return b.String()
			}
			next := desc[g.r.Intn(len(desc))]
			b.WriteString("//" + next.Name)
			cur = next
		case 7: // backward step
			if len(cur.Parents) == 0 {
				continue
			}
			p := cur.Parents[g.r.Intn(len(cur.Parents))]
			if g.r.Intn(2) == 0 {
				b.WriteString("/parent::" + p.Name)
			} else {
				b.WriteString("/ancestor::" + p.Name)
			}
			cur = p
		case 8: // horizontal step
			sibs := g.s.Resolve([]*schema.Node{cur},
				[]schema.Step{{Axis: schema.Parent}, {Axis: schema.Child}})
			if len(sibs) == 0 {
				continue
			}
			next := sibs[g.r.Intn(len(sibs))]
			switch g.r.Intn(4) {
			case 0:
				b.WriteString("/following-sibling::" + next.Name)
			case 1:
				b.WriteString("/preceding-sibling::" + next.Name)
			case 2:
				b.WriteString("/following::" + next.Name)
			default:
				b.WriteString("/preceding::" + next.Name)
			}
			cur = next
		case 9: // predicate on the current step
			b.WriteString("[" + g.predicate(cur, 1) + "]")
		}
	}
	return b.String()
}

// predicate emits a random predicate valid at the given schema node.
func (g *queryGen) predicate(cur *schema.Node, depth int) string {
	choices := []func() string{}
	// Existence of a child.
	if len(cur.Children) > 0 {
		choices = append(choices, func() string {
			c := cur.Children[g.r.Intn(len(cur.Children))]
			return c.Name
		})
		choices = append(choices, func() string {
			c := cur.Children[g.r.Intn(len(cur.Children))]
			return "not(" + c.Name + ")"
		})
	}
	// Attribute existence / comparison.
	if len(cur.Attrs) > 0 {
		choices = append(choices, func() string {
			return "@" + cur.Attrs[g.r.Intn(len(cur.Attrs))]
		})
		choices = append(choices, func() string {
			return fmt.Sprintf("@%s='%s'", cur.Attrs[g.r.Intn(len(cur.Attrs))], g.value())
		})
	}
	// Text comparison on a text-bearing child.
	for _, c := range cur.Children {
		if c.HasText {
			c := c
			choices = append(choices, func() string {
				return fmt.Sprintf("%s='%s'", c.Name, g.value())
			})
			break
		}
	}
	// Self comparison.
	if cur.HasText {
		choices = append(choices, func() string {
			return fmt.Sprintf(". = '%s'", g.value())
		})
	}
	// Backward existence (Table 5-2 path).
	if len(cur.Parents) > 0 {
		choices = append(choices, func() string {
			p := cur.Parents[g.r.Intn(len(cur.Parents))]
			if g.r.Intn(2) == 0 {
				return "parent::" + p.Name
			}
			return "ancestor::" + p.Name
		})
	}
	if len(choices) == 0 {
		return "1 = 1"
	}
	c := choices[g.r.Intn(len(choices))]()
	if depth > 0 && g.r.Intn(3) == 0 {
		op := []string{" and ", " or "}[g.r.Intn(2)]
		return c + op + g.predicate(cur, depth-1)
	}
	return c
}

func (g *queryGen) value() string {
	if len(g.values) == 0 {
		return "x"
	}
	return g.values[g.r.Intn(len(g.values))]
}

// TestDifferentialRandomQueries is the property-based cross-system
// test: hundreds of random schema-valid queries must produce the
// oracle's node set on all four non-oracle systems.
func TestDifferentialRandomQueries(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 80
	}
	w, err := NewXMark(0.02, 1234)
	if err != nil {
		t.Fatal(err)
	}
	// Seed comparison values with strings that actually occur.
	values := []string{"yes", "item0", "person1", "Cash Creditcard", "1", "Regular", "male"}
	g := newQueryGen(99, w.Schema, values)
	failures := 0
	for i := 0; i < iters; i++ {
		q := Query{ID: fmt.Sprintf("rand%d", i), XPath: g.gen()}
		want, err := w.OracleIDs(q)
		if err != nil {
			t.Fatalf("oracle rejected generated query %q: %v", q.XPath, err)
		}
		for _, sys := range []System{PPF, EdgePPF, Staircase, Accel} {
			got, err := w.Run(sys, q)
			if err != nil {
				t.Errorf("%s failed on %q: %v", sys, q.XPath, err)
				failures++
				continue
			}
			if !equalIDs(got, want) {
				t.Errorf("%s disagrees on %q: got %d ids, want %d (%s)",
					sys, q.XPath, len(got), len(want), firstDiff(got, want))
				failures++
			}
		}
		if failures > 10 {
			t.Fatal("too many failures; stopping early")
		}
	}
}

// TestDifferentialRandomQueriesDBLP repeats the property test on the
// recursive DBLP schema (sub/sup/i cycles stress the I-P paths).
func TestDifferentialRandomQueriesDBLP(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	w, err := NewDBLP(0.02, 77)
	if err != nil {
		t.Fatal(err)
	}
	values := []string{"1994", "2", "n", "Example Press", "Harold G. Longbotham"}
	g := newQueryGen(7, w.Schema, values)
	failures := 0
	for i := 0; i < iters; i++ {
		q := Query{ID: fmt.Sprintf("rand%d", i), XPath: g.gen()}
		want, err := w.OracleIDs(q)
		if err != nil {
			t.Fatalf("oracle rejected generated query %q: %v", q.XPath, err)
		}
		for _, sys := range []System{PPF, EdgePPF, Staircase, Accel} {
			got, err := w.Run(sys, q)
			if err != nil {
				t.Errorf("%s failed on %q: %v", sys, q.XPath, err)
				failures++
				continue
			}
			if !equalIDs(got, want) {
				t.Errorf("%s disagrees on %q: got %d ids, want %d (%s)",
					sys, q.XPath, len(got), len(want), firstDiff(got, want))
				failures++
			}
		}
		if failures > 10 {
			t.Fatal("too many failures; stopping early")
		}
	}
}
