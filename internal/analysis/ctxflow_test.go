package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxFlow, "ctxflow/internal/engine", "ctxflow/ok")
}

// The real engine and xrel must stay clean: xrel.Query once called
// context.Background() (fixed to pass nil, preserving the
// checkDeadline fast path), and this pin keeps it fixed.
func TestCtxFlowClean(t *testing.T) {
	expectClean(t, analysis.CtxFlow, "repro/internal/engine", "repro/xrel")
}
