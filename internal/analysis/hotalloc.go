package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
)

// HotAlloc flags closure allocations on the engine's per-row path —
// the regression class the operator-tree PR fixed by hand: passing a
// capturing closure to an interface method (enumerate) or func-typed
// value forces the closure and its captured variables onto the heap
// once per call, which on the row path means one allocation per join
// binding. The sanctioned pattern is the forEachBatch type-switch:
// static dispatch keeps yield closures stack-allocated. The batched
// executor adds a second discipline: a yield closure handed to a
// batch enumerator is built once per step activation, never inside a
// loop (one allocation per batch-loop turn).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "no heap-escaping capturing closures on internal/engine row paths: a capturing " +
		"func literal must not be passed to a dynamic callee (interface method or " +
		"func-typed value) nor stored from inside a loop, and yield closures handed to " +
		"the batch enumerators (forEachBatch/yieldChunks/flushTail) must be built " +
		"outside loops; route row callbacks through static dispatch like access.go's " +
		"forEachBatch type-switch",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHotAllocFunc(pass, fd.Name.Name, fd.Body)
			// Every literal at any depth gets its own scope; the
			// per-scope walks stop at nested literals, so each site is
			// checked exactly once.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkHotAllocFunc(pass, fd.Name.Name+".func", fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkHotAllocFunc(pass *Pass, name string, body *ast.BlockStmt) {
	g := cfg.New(name, body)
	reach := cfg.Reaching(g, pass.TypesInfo, nil, body)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			checkStoredInLoop(pass, g, stack, x)
			// Not pushed: Inspect skips both children and the closing
			// nil call when we return false.
			return false // body belongs to the literal's own scope
		case *ast.CallExpr:
			checkDynamicCallArgs(pass, g, reach, stack, x)
			checkBatchLoopClosure(pass, g, stack, x)
		}
		stack = append(stack, n)
		return true
	})
}

// checkDynamicCallArgs flags capturing closures (literal or via a
// local whose reaching definitions bind one) passed to a dynamic
// callee. go/defer launch sites are exempt: those closures escape by
// design, once per fan-out, not per row.
func checkDynamicCallArgs(pass *Pass, g *cfg.Graph, reach *cfg.Reach, stack []ast.Node, call *ast.CallExpr) {
	if underGoOrDefer(stack, call) || !isDynamicCall(pass, call) {
		return
	}
	stmt, blk := g.BlockOfStack(append(stack[:len(stack):len(stack)], call))
	if blk == nil {
		return
	}
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			if capturesLocals(pass, a) {
				pass.Reportf(a.Pos(),
					"capturing closure passed to dynamic callee %s escapes to the heap per "+
						"call; dispatch statically (forEachBatch type-switch) or hoist the closure",
					exprText(pass.Fset, call.Fun))
			}
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[a].(*types.Var)
			if !ok || !isFuncType(v.Type()) {
				continue
			}
			for _, def := range reach.At(stmt, v) {
				if fl, ok := ast.Unparen(def.RHS).(*ast.FuncLit); ok && capturesLocals(pass, fl) {
					pass.Reportf(a.Pos(),
						"%s binds a capturing closure (defined at line %d) and is passed to "+
							"dynamic callee %s; it escapes to the heap per call — dispatch "+
							"statically or hoist the closure",
						v.Name(), pass.Fset.Position(fl.Pos()).Line, exprText(pass.Fset, call.Fun))
					break
				}
			}
		}
	}
}

// batchEnumFuncs are the engine's batch-enumeration entry points. A
// yield closure handed to one of them escapes through the access
// paths' indirect callbacks (tree scans, posting-list walks), so it
// heap-allocates at the call site; the discipline is one build per
// step activation, amortized over every batch the step enumerates.
var batchEnumFuncs = map[string]bool{
	"forEachBatch": true, "yieldChunks": true, "flushTail": true,
}

// checkBatchLoopClosure flags a capturing closure literal passed to a
// batch enumerator from inside a loop: each loop turn rebuilds (and
// re-allocates) a closure that should exist once per step activation.
func checkBatchLoopClosure(pass *Pass, g *cfg.Graph, stack []ast.Node, call *ast.CallExpr) {
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if !batchEnumFuncs[name] || underGoOrDefer(stack, call) {
		return
	}
	_, blk := g.BlockOfStack(append(stack[:len(stack):len(stack)], call))
	if blk == nil || !g.InLoop(blk) {
		return
	}
	for _, arg := range call.Args {
		if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok && capturesLocals(pass, fl) {
			pass.Reportf(fl.Pos(),
				"capturing yield closure built inside a loop and passed to %s allocates per "+
					"loop turn; build it once per step activation, above the loop",
				name)
		}
	}
}

// checkStoredInLoop flags a capturing closure built inside a loop and
// stored (field/index assignment, composite literal, channel send,
// append): each iteration allocates a fresh escaping closure.
func checkStoredInLoop(pass *Pass, g *cfg.Graph, stack []ast.Node, fl *ast.FuncLit) {
	if !capturesLocals(pass, fl) || underGoOrDefer(stack, fl) {
		return
	}
	_, blk := g.BlockOfStack(stack)
	if blk == nil || !g.InLoop(blk) {
		return
	}
	if !storedContext(pass, stack, fl) {
		return
	}
	pass.Reportf(fl.Pos(),
		"capturing closure allocated and stored every loop iteration; hoist it above the "+
			"loop or restructure to static dispatch")
}

// storedContext reports whether the literal's immediate use stores it
// beyond the current frame: composite literal fields, assignments to
// non-local targets, sends, returns, and append.
func storedContext(pass *Pass, stack []ast.Node, fl *ast.FuncLit) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt, *ast.ReturnStmt:
		return true
	case *ast.UnaryExpr:
		return true // &struct{...} wrapping etc.
	case *ast.CallExpr:
		if id, ok := p.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != fl {
				continue
			}
			if i < len(p.Lhs) {
				if _, isIdent := p.Lhs[i].(*ast.Ident); !isIdent {
					return true // field, index or deref target
				}
			}
		}
		return false
	}
	return false
}

// underGoOrDefer reports whether n is the function (or an argument) of
// a go/defer statement's call.
func underGoOrDefer(stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			_ = s
			return false
		case *ast.BlockStmt:
			return false
		}
	}
	return false
}

// capturesLocals reports whether the literal references variables
// declared outside it but inside the enclosing function (captured
// state is what forces the heap allocation; a closure over nothing
// compiles to a static function value).
func capturesLocals(pass *Pass, fl *ast.FuncLit) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if within(fl, v.Pos()) {
			return true // the literal's own params/locals
		}
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true // package-level state is not a capture
		}
		captures = true
		return false
	})
	return captures
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
