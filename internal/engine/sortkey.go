package engine

import (
	"bytes"
	"sort"
)

// orderedRow pairs a projected row with its evaluated ORDER BY key
// values.
type orderedRow struct {
	row  []Value
	keys []Value
}

// sortRows stably sorts rows by their ORDER BY keys. When every key
// column holds values of a single comparison class (integers,
// text, or bytes — plus NULLs), each row is reduced to one
// memcomparable byte string so a comparison is a single
// bytes.Compare instead of a value-by-value walk with coercions.
// Mixed-kind and float keys fall back to the general path: Compare's
// numeric coercion (e.g. text-to-number) has no order-preserving
// encoding, and floats are keyenc-encoded by their text form.
func sortRows(rows []orderedRow, desc []bool) {
	keys, ok := encodeSortKeys(rows, desc)
	if !ok {
		sortRowsGeneric(rows, desc)
		return
	}
	// Sort an index permutation (cheap swaps), then apply it.
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return bytes.Compare(keys[idx[i]], keys[idx[j]]) < 0
	})
	sorted := make([]orderedRow, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	copy(rows, sorted)
}

// sortRowsGeneric is the general ORDER BY sort: one lessKeys walk per
// comparison.
func sortRowsGeneric(rows []orderedRow, desc []bool) {
	sort.SliceStable(rows, func(i, j int) bool {
		return lessKeys(rows[i].keys, rows[j].keys, desc)
	})
}

// encodeSortKeys builds one memcomparable byte key per row, or
// reports ok=false when the key kinds don't admit an order-preserving
// encoding. Eligibility is per column: all non-NULL values must fall
// in one class — {Int,Bool}, {Text}, or {Bytes}. DESC columns are
// complemented bytewise, which reverses their order because keyenc
// components are prefix-free. NULLs encode lowest, matching
// lessKeys's NULL-first (ASC) / NULL-last (DESC) semantics.
func encodeSortKeys(rows []orderedRow, desc []bool) ([][]byte, bool) {
	if len(rows) == 0 || len(desc) == 0 {
		return nil, false
	}
	// Profile each key column; KNull marks "no non-NULL value seen yet".
	profile := make([]Kind, len(desc))
	for _, r := range rows {
		for c, v := range r.keys {
			var class Kind
			switch v.Kind {
			case KNull:
				continue
			case KInt, KBool:
				class = KInt
			case KText:
				class = KText
			case KBytes:
				class = KBytes
			default:
				return nil, false
			}
			if profile[c] == KNull {
				profile[c] = class
			} else if profile[c] != class {
				return nil, false
			}
		}
	}
	// Encode every key into one contiguous buffer (one allocation,
	// amortized) and slice it up afterwards.
	offs := make([]int, len(rows)+1)
	buf := make([]byte, 0, len(rows)*16)
	for i, r := range rows {
		for c, v := range r.keys {
			start := len(buf)
			buf = encodeValue(buf, v)
			if desc[c] {
				for j := start; j < len(buf); j++ {
					buf[j] ^= 0xFF
				}
			}
		}
		offs[i+1] = len(buf)
	}
	keys := make([][]byte, len(rows))
	for i := range keys {
		keys[i] = buf[offs[i]:offs[i+1]]
	}
	return keys, true
}
