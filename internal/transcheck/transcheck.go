package transcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dblp"
	"repro/internal/pathre"
	"repro/internal/xmark"
	"repro/internal/xpath"
)

// A Finding is one pattern the translator got wrong (or that the
// checker could not decide).
type Finding struct {
	// Source identifies where the pattern came from: "matrix" plus the
	// fragment expression, or the corpus query ID.
	Source string
	// Kind is the Table 1 rule: forward, backward, forward-suffix,
	// backward-suffix.
	Kind string
	// Pattern is the regex the translator derived.
	Pattern string
	// Witness, when non-empty, is a shortest in-domain path string
	// accepted by exactly one of translator pattern and reference.
	Witness string
	// Err holds checker-side failures (unparseable pattern, state-bound
	// blowup); such findings demand attention just like mismatches.
	Err string
}

func (f Finding) String() string {
	if f.Err != "" {
		return fmt.Sprintf("%s [%s] %q: %s", f.Source, f.Kind, f.Pattern, f.Err)
	}
	return fmt.Sprintf("%s [%s] %q: disagrees with reference automaton on %q", f.Source, f.Kind, f.Pattern, f.Witness)
}

// Stats summarizes a check run.
type Stats struct {
	Checked int // pattern/reference equivalence checks performed
	Queries int // corpus queries translated (corpus runs only)
}

// checkOne verifies one translator pattern against the reference
// automaton for its construction inputs. With verifyDFA set it
// additionally proves the dense DFA the engine compiles for the
// pattern (its batched REGEXP_LIKE path) equivalent to the NFA; the
// corpus sweep turns this on for every traced pattern, while the
// synthetic matrix leaves it off — its tens of thousands of patterns
// would spend minutes in the 256-byte product proof, and arbitrary
// shapes are already covered by pathre's FuzzPathDFA.
func checkOne(source, kind string, steps []*xpath.Step, anchored bool, base, pattern string, verifyDFA bool) *Finding {
	var (
		ref    *pathre.Regexp
		domain *pathre.Regexp
		err    error
	)
	switch kind {
	case "forward":
		ref, err = referenceForward(steps, anchored, base)
		domain = pathDomain()
	case "backward":
		ref, err = referenceBackward(steps, base)
		domain = pathDomain()
	case "forward-suffix":
		ref, err = referenceForwardSuffix(steps, base)
		domain = suffixDomain()
	case "backward-suffix":
		ref, err = referenceBackwardSuffix(steps, base)
		domain = suffixDomain()
	default:
		err = fmt.Errorf("transcheck: unknown pattern kind %q", kind)
	}
	if err != nil {
		return &Finding{Source: source, Kind: kind, Pattern: pattern, Err: err.Error()}
	}
	got, err := pathre.Compile(pattern)
	if err != nil {
		return &Finding{Source: source, Kind: kind, Pattern: pattern, Err: "translator pattern does not compile: " + err.Error()}
	}
	eq, witness, err := pathre.EquivalentWithin(domain, got, ref)
	if err != nil {
		return &Finding{Source: source, Kind: kind, Pattern: pattern, Err: err.Error()}
	}
	if !eq {
		return &Finding{Source: source, Kind: kind, Pattern: pattern, Witness: witness}
	}
	// A state-bound overflow in CompileDFA is the engine's sanctioned
	// NFA fallback, not a finding.
	if verifyDFA {
		if d, derr := pathre.CompileDFA(got); derr == nil {
			if verr := pathre.VerifyDFA(got, d); verr != nil {
				return &Finding{Source: source, Kind: kind, Pattern: pattern, Err: "DFA disagrees with NFA: " + verr.Error()}
			}
		}
	}
	return nil
}

// CheckCorpus translates every fig3 (dblp) and XPathMark query under
// both the schema-aware and Edge translators, captures every Table 1
// pattern constructed along the way via core.SetPatternTrace, and
// checks each distinct (kind, inputs, pattern) tuple against its
// reference automaton. Queries the translator rejects (unsupported
// features) are skipped: no pattern was emitted, so there is nothing
// to validate.
func CheckCorpus() ([]Finding, Stats, error) {
	type key struct {
		kind     string
		sig      string
		anchored bool
		base     string
		pattern  string
	}
	traced := map[key]core.PatternTrace{}
	sources := map[key]string{}
	var current string
	core.SetPatternTrace(func(tr core.PatternTrace) {
		k := key{kind: tr.Kind, sig: stepsSig(tr.Steps), anchored: tr.Anchored, base: tr.Base, pattern: tr.Pattern}
		if _, ok := traced[k]; !ok {
			traced[k] = tr
			sources[k] = current
		}
	})
	defer core.SetPatternTrace(nil)

	type corpusQuery struct{ id, query string }
	var queries []corpusQuery
	for _, q := range dblp.Queries {
		queries = append(queries, corpusQuery{"fig3/" + q.ID, q.XPath})
	}
	for _, q := range xmark.Queries {
		queries = append(queries, corpusQuery{"xmark/" + q.ID, q.XPath})
	}

	schemaT := core.New(dblp.Schema(), nil)
	xmarkT := core.New(xmark.Schema(), nil)
	edgeT := core.NewEdge(nil)
	var stats Stats
	for _, q := range queries {
		stats.Queries++
		current = q.id
		t := schemaT
		if strings.HasPrefix(q.id, "xmark/") {
			t = xmarkT
		}
		// Errors are expected for unsupported queries; traced patterns
		// from partial translations are still collected and checked.
		_, _ = t.Translate(q.query)
		current = q.id + "/edge"
		_, _ = edgeT.Translate(q.query)
	}

	keys := make([]key, 0, len(traced))
	for k := range traced {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if sources[keys[i]] != sources[keys[j]] {
			return sources[keys[i]] < sources[keys[j]]
		}
		return keys[i].pattern < keys[j].pattern
	})
	var findings []Finding
	for _, k := range keys {
		tr := traced[k]
		stats.Checked++
		if f := checkOne(sources[k], tr.Kind, tr.Steps, tr.Anchored, tr.Base, tr.Pattern, true); f != nil {
			findings = append(findings, *f)
		}
	}
	if stats.Checked == 0 {
		return nil, stats, fmt.Errorf("transcheck: corpus sweep produced no patterns — trace hook broken?")
	}
	return findings, stats, nil
}

// CheckMatrix drives the Table 1 derivations directly over a
// synthetic matrix of axis/name shapes — every forward and backward
// axis sequence up to length 3, crossed with named/wildcard tests and
// every boundary context the translator can present (anchored,
// unanchored with and without a base name, wildcard bases, and a
// metacharacter-bearing element name) — and checks each derived
// pattern against its reference automaton.
func CheckMatrix() ([]Finding, Stats, error) {
	var findings []Finding
	var stats Stats
	check := func(expr, kind string, steps []*xpath.Step, anchored bool, base, pattern string, err error) {
		if err != nil {
			// Unsatisfiable fragments (e.g. or-self over incompatible
			// literal names everywhere) are a legitimate translator
			// outcome, not a finding.
			return
		}
		stats.Checked++
		if f := checkOne("matrix/"+expr, kind, steps, anchored, base, pattern, false); f != nil {
			findings = append(findings, *f)
		}
	}

	fwdAxes := []xpath.Axis{xpath.Child, xpath.Descendant, xpath.DescendantOrSelf}
	bwdAxes := []xpath.Axis{xpath.Parent, xpath.Ancestor, xpath.AncestorOrSelf}
	// Two distinct literals, a metacharacter-bearing name, and the
	// wildcard: enough to exercise intersection hits, misses and
	// quoting.
	names := []string{"a", "b", "a.b", ""}
	bases := []string{"", "[^/]+", core.QuoteName("a"), core.QuoteName("a.b")}
	contexts := []string{"[^/]+", core.QuoteName("a"), core.QuoteName("a.b")}

	for _, shape := range axisShapes(fwdAxes, names, 3) {
		expr := shapeExpr(shape)
		for _, anchored := range []bool{true, false} {
			for _, base := range bases {
				if anchored && base != "" {
					continue // the translator never passes a base when anchored
				}
				pat, err := core.DeriveForwardPattern(shape, anchored, base)
				check(expr, "forward", shape, anchored, base, pat, err)
			}
		}
		for _, prev := range contexts {
			pat, err := core.DeriveForwardSuffixPattern(shape, prev)
			check(expr, "forward-suffix", shape, false, prev, pat, err)
		}
	}
	for _, shape := range axisShapes(bwdAxes, names, 3) {
		expr := shapeExpr(shape)
		for _, ctx := range contexts {
			pat, err := core.DeriveBackwardPattern(shape, ctx)
			check(expr, "backward", shape, false, ctx, pat, err)
			pat, err = core.DeriveBackwardSuffixPattern(shape, ctx)
			check(expr, "backward-suffix", shape, false, ctx, pat, err)
		}
	}
	if stats.Checked == 0 {
		return nil, stats, fmt.Errorf("transcheck: axis matrix produced no checks")
	}
	return findings, stats, nil
}

// axisShapes enumerates every step sequence of length 1..maxLen over
// the given axes, with each step's name drawn from names ("" =
// wildcard).
func axisShapes(axes []xpath.Axis, names []string, maxLen int) [][]*xpath.Step {
	var out [][]*xpath.Step
	var build func(prefix []*xpath.Step)
	build = func(prefix []*xpath.Step) {
		if len(prefix) > 0 {
			out = append(out, append([]*xpath.Step(nil), prefix...))
		}
		if len(prefix) == maxLen {
			return
		}
		for _, ax := range axes {
			for _, name := range names {
				build(append(prefix, &xpath.Step{Axis: ax, Test: xpath.NameTest, Name: name}))
			}
		}
	}
	build(nil)
	return out
}

func shapeExpr(steps []*xpath.Step) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		name := s.Name
		if name == "" {
			name = "*"
		}
		parts[i] = s.Axis.String() + "::" + name
	}
	return strings.Join(parts, "/")
}

func stepsSig(steps []*xpath.Step) string {
	var sb strings.Builder
	for _, s := range steps {
		fmt.Fprintf(&sb, "%d:%d:%s;", s.Axis, s.Test, s.Name)
	}
	return sb.String()
}
