// guard.go is the designated panic boundary: recover() here is the
// sanctioned conversion site.
package engine

func guardPanics(err *error) {
	if r := recover(); r != nil {
		*err = toInternal(r)
	}
}

func toInternal(any) error { return nil }
