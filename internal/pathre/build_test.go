package pathre

import "testing"

// Builder-constructed NFAs must match exactly like their parsed
// counterparts: each combinator mirrors one parser construction.
func TestBuilderMirrorsParser(t *testing.T) {
	b := &Builder{}
	seg := func() Frag { return b.Plus(b.Class(true, '/')) }
	built := b.Compile(b.Seq(
		b.Bol(), b.Byte('/'), b.Literal("a"), b.Byte('/'),
		b.Star(b.Seq(seg(), b.Byte('/'))),
		b.Literal("b"), b.Eol(),
	), "built")
	parsed := compile(t, `^/a/([^/]+/)*b$`)
	eq, witness, err := Equivalent(built, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("builder and parser disagree, witness %q", witness)
	}
}

func TestBuilderMatchSemantics(t *testing.T) {
	b := &Builder{}
	re := b.Compile(b.Seq(
		b.Bol(), b.Byte('/'),
		b.Alt(b.Literal("x"), b.Literal("yz")),
		b.Opt(b.Seq(b.Byte('/'), b.Literal("w"))),
		b.Eol(),
	), "alt-opt")
	for s, want := range map[string]bool{
		"/x":    true,
		"/yz":   true,
		"/x/w":  true,
		"/yz/w": true,
		"/y":    false,
		"x":     false,
		"/x/":   false,
	} {
		if got := re.MatchString(s); got != want {
			t.Errorf("MatchString(%q) = %v, want %v", s, got, want)
		}
	}
}

// Empty and Bol/Eol edge cases: the empty-path pattern ^$ accepts
// exactly the empty string (the backward-suffix pure or-self case).
func TestBuilderEmptyPattern(t *testing.T) {
	b := &Builder{}
	re := b.Compile(b.Seq(b.Bol(), b.Eol()), "empty")
	if !re.MatchString("") {
		t.Error("^$ must accept the empty string")
	}
	if re.MatchString("/a") {
		t.Error("^$ must reject /a")
	}
	eq, witness, err := Equivalent(re, compile(t, `^$`))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("built ^$ differs from parsed ^$, witness %q", witness)
	}
}

func TestBuilderLabel(t *testing.T) {
	b := &Builder{}
	re := b.Compile(b.Literal("a"), "my-label")
	if re.String() != "my-label" {
		t.Errorf("String() = %q, want my-label", re.String())
	}
}
