package pathre

import "fmt"

// dfaMaxStates bounds CompileDFA's subset construction. The
// translator's path patterns determinize to a handful of states; a
// pattern that blows past the bound gets an error (never a truncated
// automaton) and the caller falls back to the NFA simulation.
const dfaMaxStates = 4096

// DFA is a dense, fully materialized byte-class DFA for one compiled
// pattern. Matching is a flat table walk with zero allocations — the
// batch-friendly replacement for the NFA simulation, which allocates
// two state sets per call. State 0 is the universal-accept sink
// (same convention as the lazy determinizer behind Equivalent): a
// match reachable mid-string makes every extension accepted under the
// engine's unanchored semantics, so reaching state 0 decides the
// match without consuming the rest of the input.
type DFA struct {
	pattern string
	nclass  int
	classOf [256]uint16
	// trans is the row-major transition table, indexed
	// trans[state*nclass + classOf[b]].
	trans  []int32
	accept []bool // end-of-input acceptance per state
	start  int32
}

// Pattern returns the source pattern the DFA was compiled from.
func (d *DFA) Pattern() string { return d.pattern }

// States returns the number of DFA states, including the sink.
func (d *DFA) States() int { return len(d.accept) }

// CompileDFA determinizes a compiled pattern into a dense byte-class
// DFA accepting the same language under this package's matching
// semantics (POSIX-style unanchored substring matching). It
// materializes the same lazy subset construction that backs
// Equivalent; VerifyDFA proves the resulting table equivalent to the
// NFA it replaces.
func CompileDFA(re *Regexp) (*DFA, error) {
	d := &DFA{pattern: re.pattern}
	reps := d.partition(re.prog)
	ld := newDFA(re.prog, re.start)
	s0, err := ld.stateFor(ld.initialSeeds(), true)
	if err != nil {
		return nil, err
	}
	// Dense id 0 is the sink in both views (newDFA pins it there);
	// every other lazy state gets a dense id in discovery order.
	dense := map[int]int32{0: 0}
	order := []int{0}
	idOf := func(lazy int) (int32, error) {
		if id, ok := dense[lazy]; ok {
			return id, nil
		}
		if len(order) >= dfaMaxStates {
			return 0, fmt.Errorf("pathre: DFA for %q exceeded %d states", re.pattern, dfaMaxStates)
		}
		id := int32(len(order))
		dense[lazy] = id
		order = append(order, lazy)
		return id, nil
	}
	if d.start, err = idOf(s0); err != nil {
		return nil, err
	}
	for i := 0; i < len(order); i++ {
		lazy := order[i]
		d.accept = append(d.accept, ld.states[lazy].accept)
		for c := 0; c < d.nclass; c++ {
			if lazy == 0 {
				d.trans = append(d.trans, 0) // the sink absorbs
				continue
			}
			next, err := ld.step(lazy, reps[c])
			if err != nil {
				return nil, err
			}
			id, err := idOf(next)
			if err != nil {
				return nil, err
			}
			d.trans = append(d.trans, id)
		}
	}
	return d, nil
}

// partition groups the byte alphabet by the consuming instructions'
// match signatures (the equivalence byteClasses computes for the
// product walk), filling classOf and returning one representative
// byte per class.
func (d *DFA) partition(prog []inst) []byte {
	type m struct {
		op    opcode
		c     byte
		class *class
	}
	var ms []m
	for _, in := range prog {
		switch in.op {
		case opChar, opClass:
			ms = append(ms, m{op: in.op, c: in.c, class: in.class})
		}
	}
	index := map[string]uint16{}
	var reps []byte
	sig := make([]byte, len(ms))
	for b := 0; b < 256; b++ {
		c := byte(b)
		for i, mm := range ms {
			hit := false
			if mm.op == opChar {
				hit = mm.c == c
			} else {
				hit = mm.class.matches(c)
			}
			if hit {
				sig[i] = '1'
			} else {
				sig[i] = '0'
			}
		}
		id, ok := index[string(sig)]
		if !ok {
			id = uint16(len(reps))
			index[string(sig)] = id
			reps = append(reps, c)
		}
		d.classOf[b] = id
	}
	d.nclass = len(reps)
	return reps
}

// MatchString reports whether the pattern matches s. It agrees
// byte-for-byte with the NFA's MatchString; VerifyDFA proves it.
func (d *DFA) MatchString(s string) bool {
	st := d.start
	if st == 0 {
		return true
	}
	nc := d.nclass
	for i := 0; i < len(s); i++ {
		st = d.trans[int(st)*nc+int(d.classOf[s[i]])]
		if st == 0 {
			return true
		}
	}
	return d.accept[st]
}

// MatchAll matches a batch of inputs, writing one verdict per input
// into out (which must be at least as long as paths). This is the
// operator-boundary entry point for the engine's vectorized
// REGEXP_LIKE filters: one call per row batch, no allocations.
func (d *DFA) MatchAll(paths []string, out []bool) {
	for i, p := range paths {
		out[i] = d.MatchString(p)
	}
}

// VerifyDFA proves a compiled DFA equivalent to the NFA it was built
// from, with the same lazy determinization that backs Equivalent: a
// lockstep product walk over every byte (all 256, not just class
// representatives, so the byte-class table itself is inside the
// proof) asserting acceptance agreement at every reachable product
// state. A disagreement is reported with a witness string.
func VerifyDFA(re *Regexp, d *DFA) error {
	ld := newDFA(re.prog, re.start)
	ls, err := ld.stateFor(ld.initialSeeds(), true)
	if err != nil {
		return err
	}
	type pair struct {
		l int
		d int32
	}
	type visit struct {
		st     pair
		parent int
		via    byte
	}
	witness := func(trail []visit, i int) string {
		var bs []byte
		for ; trail[i].parent >= 0; i = trail[i].parent {
			bs = append(bs, trail[i].via)
		}
		for l, r := 0, len(bs)-1; l < r; l, r = l+1, r-1 {
			bs[l], bs[r] = bs[r], bs[l]
		}
		return string(bs)
	}
	trail := []visit{{st: pair{l: ls, d: d.start}, parent: -1}}
	seen := map[pair]bool{trail[0].st: true}
	for i := 0; i < len(trail); i++ {
		cur := trail[i].st
		la := ld.states[cur.l].accept
		da := cur.d == 0 || d.accept[cur.d]
		if la != da {
			return fmt.Errorf("pathre: DFA for %q disagrees with NFA on %q", re.pattern, witness(trail, i))
		}
		for c := 0; c < 256; c++ {
			nl := 0
			if cur.l != 0 {
				if nl, err = ld.step(cur.l, byte(c)); err != nil {
					return err
				}
			}
			var nd int32
			if cur.d != 0 {
				nd = d.trans[int(cur.d)*d.nclass+int(d.classOf[c])]
			}
			np := pair{l: nl, d: nd}
			if seen[np] {
				continue
			}
			if len(seen) > equivMaxStates {
				return fmt.Errorf("pathre: DFA verification for %q exceeded %d product states", re.pattern, equivMaxStates)
			}
			seen[np] = true
			trail = append(trail, visit{st: np, parent: i, via: byte(c)})
		}
	}
	return nil
}
