package engine

import (
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/sqlast"
)

func TestIndexPrefixesAccess(t *testing.T) {
	db := NewDB()
	tb, _ := db.CreateTable("n", Column{"id", TInt}, Column{"dewey_pos", TBytes})
	// A chain of nested nodes plus unrelated siblings.
	positions := []dewey.Pos{
		dewey.New(1),
		dewey.New(1, 1),
		dewey.New(1, 1, 1),
		dewey.New(1, 1, 1, 1),
		dewey.New(1, 2),
		dewey.New(2),
	}
	for i, p := range positions {
		tb.MustInsert(NewInt(int64(i+1)), NewBytes(p))
	}
	if _, err := tb.CreateIndex("n_dp", "dewey_pos"); err != nil {
		t.Fatal(err)
	}
	// Ancestors of node 4 (1.1.1.1): nodes 1, 2, 3 plus itself.
	sql := "SELECT a.id FROM n d, n a WHERE d.id = 4 AND d.dewey_pos BETWEEN a.dewey_pos AND a.dewey_pos || X'FF' ORDER BY a.id"
	plan, err := db.Explain(sqlast.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index prefix lookups") {
		t.Fatalf("ancestor query should use the prefix access path:\n%s", plan)
	}
	res, err := db.RunSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(res); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("ancestors = %v", got)
	}
	// Composite index also supports prefix lookups.
	db2 := NewDB()
	tb2, _ := db2.CreateTable("n", Column{"id", TInt}, Column{"dewey_pos", TBytes}, Column{"path_id", TInt})
	for i, p := range positions {
		tb2.MustInsert(NewInt(int64(i+1)), NewBytes(p), NewInt(int64(i%3)))
	}
	if _, err := tb2.CreateIndex("n_dp", "dewey_pos", "path_id"); err != nil {
		t.Fatal(err)
	}
	res, err = db2.RunSQL("SELECT a.id FROM n d, n a WHERE d.id = 4 AND d.dewey_pos BETWEEN a.dewey_pos AND a.dewey_pos || X'FF' ORDER BY a.id")
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(res); len(got) != 4 {
		t.Fatalf("composite-index ancestors = %v", got)
	}
}

func TestSubstrFunction(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT SUBSTR('abcdef', 3) FROM A")
	if res.Rows[0][0].S != "cdef" {
		t.Fatalf("SUBSTR = %q", res.Rows[0][0].S)
	}
	res = mustRun(t, db, "SELECT SUBSTR('abc', 10), SUBSTR('abc', 0), SUBSTR('abc', 1) FROM A")
	r := res.Rows[0]
	if r[0].S != "" || r[1].S != "abc" || r[2].S != "abc" {
		t.Fatalf("SUBSTR edge cases = %v", r)
	}
	// Dynamic SUBSTR + LENGTH over joined paths, as the suffix checks
	// emit.
	res = mustRun(t, db,
		"SELECT SUBSTR(p2.path, LENGTH(p1.path) + 1) FROM paths p1, paths p2 WHERE p1.path = '/A/B' AND p2.path = '/A/B/C/E/F'")
	if res.Rows[0][0].S != "/C/E/F" {
		t.Fatalf("suffix = %q", res.Rows[0][0].S)
	}
	if _, err := db.RunSQL("SELECT SUBSTR(A.id, 'x') FROM A"); err == nil {
		t.Fatal("non-integer SUBSTR position should fail")
	}
}

func TestDynamicRegexpPattern(t *testing.T) {
	db := fixtureDB(t)
	// Pattern built from a column (not a literal): compiled at run time.
	res := mustRun(t, db,
		"SELECT p.id FROM paths p WHERE REGEXP_LIKE(p.path, '^' || p.path || '$') ORDER BY p.id")
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if _, err := db.RunSQL("SELECT p.id FROM paths p WHERE REGEXP_LIKE(p.path, '(' || p.path)"); err == nil {
		t.Fatal("bad dynamic pattern should fail")
	}
}

func TestValueStringsAndTruth(t *testing.T) {
	cases := map[string]Value{
		"3.5":   NewFloat(3.5),
		"hello": NewText("hello"),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String(%v) = %q", v, v.String())
		}
	}
	if !NewFloat(1).Truth() || NewFloat(0).Truth() {
		t.Error("float truth wrong")
	}
	if !NewBytes([]byte{1}).Truth() || NewBytes(nil).Truth() {
		t.Error("bytes truth wrong")
	}
	if !NewText("x").Truth() || NewText("").Truth() {
		t.Error("text truth wrong")
	}
}

func TestArithMore(t *testing.T) {
	if v, err := Arith('+', NewFloat(1.5), NewInt(2)); err != nil || v.F != 3.5 {
		t.Errorf("1.5+2 = %v (%v)", v, err)
	}
	if v, err := Arith('*', NewText("3"), NewInt(4)); err != nil || v.F != 12 {
		t.Errorf("'3'*4 = %v (%v)", v, err)
	}
	if _, err := Arith('+', NewText("abc"), NewInt(1)); err == nil {
		t.Error("non-numeric arithmetic should fail")
	}
	if v, _ := Arith('-', Null, NewInt(1)); !v.IsNull() {
		t.Error("NULL arithmetic should be NULL")
	}
	if _, err := Arith('%', NewInt(5), NewInt(0)); err == nil {
		t.Error("mod by zero should fail")
	}
	if v, err := Arith('%', NewFloat(7), NewFloat(2)); err != nil || v.F != 1 {
		t.Errorf("7.0%%2.0 = %v (%v)", v, err)
	}
	if _, err := Arith('/', NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero should fail")
	}
	if _, err := Arith('?', NewInt(1), NewInt(1)); err == nil {
		t.Error("unknown operator should fail")
	}
}

func TestOrderByNullsAndMixed(t *testing.T) {
	db := NewDB()
	tb, _ := db.CreateTable("t", Column{"id", TInt}, Column{"v", TText})
	tb.MustInsert(NewInt(1), NewText("b"))
	tb.MustInsert(NewInt(2), Null)
	tb.MustInsert(NewInt(3), NewText("a"))
	res, err := db.RunSQL("SELECT t.id FROM t ORDER BY t.v, t.id")
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	// NULL sorts first.
	if got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("order = %v", got)
	}
}

func TestIndexesAccessor(t *testing.T) {
	db := fixtureDB(t)
	tb := db.Table("F")
	if len(tb.Indexes()) != 3 {
		t.Fatalf("indexes = %d", len(tb.Indexes()))
	}
}

func TestFatHashStillCorrect(t *testing.T) {
	// A low-selectivity join column: results must match a bare scan.
	db := NewDB()
	tb, _ := db.CreateTable("big", Column{"id", TInt}, Column{"grp", TInt})
	for i := 0; i < 2000; i++ {
		tb.MustInsert(NewInt(int64(i)), NewInt(int64(i%3)))
	}
	sm, _ := db.CreateTable("small", Column{"grp", TInt})
	sm.MustInsert(NewInt(1))
	res, err := db.RunSQL("SELECT COUNT(*) FROM small s, big b WHERE b.grp = s.grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 667 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
