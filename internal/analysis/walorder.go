package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// WALOrder proves the durable-before-visible half of the PR 8 commit
// protocol as a state machine over every CFG path: a snapshot publish
// (Store on the //walorder:publish atomic.Pointer field) must be
// dominated by a WAL commit (wal.Log Commit/Sync, directly or through
// any function that performs one) on every path from the entry of
// every root function that can reach it. The requirement propagates
// down the call graph — a helper that publishes undominated makes its
// callers responsible, and a root (exported or never-called function)
// left holding the requirement is a finding with a minimal call-path
// witness. Two sanctioned cuts: //walorder:replay functions republish
// state reconstructed from already-durable records, and publishes
// through provably fresh receivers (NewDB) are construction. Inside
// internal/wal itself, the Append→Sync leg is enforced directly: no
// function may append frames without also syncing them.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc: "snapshot publication (//walorder:publish Store) requires a dominating WAL " +
		"Commit/Sync on every call path from every root; //walorder:replay -- <reason> " +
		"marks recovery republication; wal functions appending without syncing are flagged",
	Run: runWALOrder,
}

func runWALOrder(pass *Pass) error {
	ann := pass.annotations()
	for _, b := range ann.badWAL {
		pass.Reportf(b.pos, "%s", b.msg)
	}
	if strings.HasSuffix(pass.Pkg.Path(), "internal/wal") {
		checkAppendSync(pass)
	}
	if len(ann.publishes) > 0 {
		checkPublishOrder(pass, ann)
	}
	return nil
}

// checkAppendSync flags functions of the WAL package that append
// frames but never fsync: every record a commit path appends must be
// durable before the caller publishes, so the sync belongs next to
// the append (Commit), not to the caller's goodwill. Append itself
// and //walorder:replay functions are exempt.
func checkAppendSync(pass *Pass) {
	g := pass.callGraph()
	ann := pass.annotations()
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		if n.Obj != nil {
			if n.Obj.Name() == "Append" {
				continue
			}
			if _, ok := ann.replays[n.Obj]; ok {
				continue
			}
		}
		var appendSite ast.Node
		hasSync := false
		for _, e := range n.Out {
			if e.Kind != callgraph.Static || e.Callee.Obj == nil {
				continue
			}
			switch e.Callee.Obj.Name() {
			case "Append":
				if appendSite == nil {
					appendSite = e.Site
				}
			case "Sync":
				hasSync = true
			}
		}
		// Sync may also be an extern call (os.File.Sync).
		for _, x := range n.Extern {
			if x.Callee.Name() == "Sync" {
				hasSync = true
			}
		}
		if appendSite != nil && !hasSync {
			pass.Reportf(appendSite.Pos(),
				"%s appends WAL frames but never syncs them; a commit path through it "+
					"cannot make records durable before the snapshot publish (call Sync, "+
					"or route through Commit)", n.Name)
		}
	}
}

// checkPublishOrder runs the publish-requires-durable dataflow over
// the package call graph.
func checkPublishOrder(pass *Pass, ann *protoAnnotations) {
	g := pass.callGraph()
	fresh := g.FreshReturns(pass.externFresh())

	// durable: functions that (transitively) perform a WAL commit.
	durable := map[*callgraph.Node]bool{}
	isDurableExtern := func(fn *types.Func) bool {
		if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/wal") {
			return false
		}
		return fn.Name() == "Commit" || fn.Name() == "Sync"
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if durable[n] || n.Body == nil {
				continue
			}
			for _, x := range n.Extern {
				if isDurableExtern(x.Callee) {
					durable[n] = true
					changed = true
				}
			}
			for _, e := range n.Out {
				if e.Kind == callgraph.Static && durable[e.Callee] {
					durable[n] = true
					changed = true
				}
			}
		}
	}

	replayCut := func(n *callgraph.Node) bool {
		for m := n; m != nil; m = m.Parent {
			if m.Obj != nil {
				_, ok := ann.replays[m.Obj]
				return ok
			}
		}
		return false
	}

	// need[n] != nil: some path from n's entry reaches a publish with
	// no dominating durable call; the slice is the call-path witness
	// down to the Store.
	need := map[*callgraph.Node][]string{}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Body == nil || need[n] != nil || replayCut(n) {
				continue
			}
			if w := undominatedRequirement(pass, g, n, ann, need, durable, fresh); w != nil {
				need[n] = w
				changed = true
			}
		}
	}

	// Findings surface at the roots: nodes no caller can discharge.
	for _, n := range g.Nodes {
		w := need[n]
		if w == nil {
			continue
		}
		isRoot := n.Obj != nil && n.Obj.Exported()
		if !isRoot {
			hasCaller := false
			for _, e := range n.In {
				if e.Kind == callgraph.Static || e.Kind == callgraph.Escape {
					hasCaller = true
					break
				}
			}
			isRoot = !hasCaller
		}
		if !isRoot {
			continue
		}
		pos := n.Body.Pos()
		if n.Decl != nil {
			pos = n.Decl.Name.Pos()
		}
		pass.Reportf(pos,
			"snapshot publish reachable without a preceding WAL commit on path %s; "+
				"a crash between publish and fsync would lose acknowledged state "+
				"(log first, or annotate //walorder:replay with a reason)",
			strings.Join(w, " -> "))
	}
}

// undominatedRequirement checks one function: does some CFG path from
// its entry reach a requiring site (an own publish of a non-fresh
// value, or a call/escape edge into a needing callee) without passing
// a durable call first? Returns the witness chain or nil.
func undominatedRequirement(pass *Pass, g *callgraph.Graph, n *callgraph.Node,
	ann *protoAnnotations, need map[*callgraph.Node][]string,
	durable map[*callgraph.Node]bool, fresh map[*callgraph.Node]bool) []string {

	locals := g.FreshLocals(n, fresh, pass.externFresh())

	// Per requiring AST site, its witness suffix.
	type reqSite struct {
		site    ast.Node
		witness []string
	}
	var reqs []reqSite
	for _, e := range n.Out {
		if e.Kind == callgraph.FuncValue || e.Kind == callgraph.Interface {
			continue // dynamic targets hold their own requirements as roots
		}
		if w := need[e.Callee]; w != nil {
			reqs = append(reqs, reqSite{site: e.Site, witness: w})
		}
	}
	ownWalkNode(n.Body, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, stored, field, isStore, okA := atomicStoreLoad(pass.TypesInfo, call)
		if !okA || !isStore || field == nil || !ann.publishes[field] {
			return
		}
		_ = stored
		// Publish through a provably fresh receiver chain (db :=
		// NewDB(); db.snap.Store(...)) is construction.
		if base := chainBase(recv); base != nil {
			obj := pass.TypesInfo.Uses[base]
			if obj == nil {
				obj = pass.TypesInfo.Defs[base]
			}
			if obj != nil && locals[obj] {
				return
			}
		}
		pos := pass.Fset.Position(call.Pos())
		reqs = append(reqs, reqSite{site: call,
			witness: []string{"snap publish at line " + itoa(pos.Line)}})
	})
	if len(reqs) == 0 {
		return nil
	}

	// Durable points and requiring sites, resolved to their CFG
	// statements.
	cg := cfg.New(n.Name, n.Body)
	durableStmt := map[ast.Node]bool{}
	siteStmt := map[ast.Node]ast.Node{} // site -> enclosing CFG node
	for _, b := range cg.Blocks {
		for _, stmt := range b.Nodes {
			ast.Inspect(stmt, func(m ast.Node) bool {
				if lit, isLit := m.(*ast.FuncLit); isLit {
					for _, r := range reqs {
						if r.site == ast.Node(lit) {
							siteStmt[r.site] = stmt
						}
					}
					return false
				}
				if call, isCall := m.(*ast.CallExpr); isCall {
					if callIsDurable(pass, g, call, durable) {
						durableStmt[stmt] = true
					}
					for _, r := range reqs {
						if r.site == ast.Node(call) {
							siteStmt[r.site] = stmt
						}
					}
				}
				return true
			})
		}
	}

	// Forward may-analysis: can a block be entered with no durable
	// call behind us, and does such a path hit a requiring statement?
	// Within a block, statements run in order, so a durable statement
	// shields everything after it.
	entered := make([]bool, len(cg.Blocks))
	entered[cg.Entry.Index] = true
	work := []*cfg.Block{cg.Entry}
	undom := map[ast.Node]bool{} // requiring CFG stmts reachable durable-free
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		clean := true
		for _, stmt := range b.Nodes {
			if clean {
				undom[stmt] = true
			}
			if durableStmt[stmt] {
				clean = false
			}
		}
		if clean {
			for _, s := range b.Succs {
				if !entered[s.Index] {
					entered[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}

	for _, r := range reqs {
		stmt, ok := siteStmt[r.site]
		if ok && undom[stmt] {
			return append([]string{n.Name}, r.witness...)
		}
	}
	return nil
}

// callIsDurable reports whether one call site performs a WAL commit:
// an extern wal Commit/Sync, or a static call to a durable function.
func callIsDurable(pass *Pass, g *callgraph.Graph, call *ast.CallExpr, durable map[*callgraph.Node]bool) bool {
	var fn *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
	}
	if fn == nil {
		return false
	}
	if n := g.NodeOf(fn); n != nil {
		return durable[n]
	}
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/wal") {
		return fn.Name() == "Commit" || fn.Name() == "Sync"
	}
	return false
}

// ownWalkNode visits body's own nodes, pruning nested literals but
// still surfacing the literal node itself (escape sites).
func ownWalkNode(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		visit(m)
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
