package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ErrDrop, "errdrop/a", "errdrop/ok")
}

// The exec/plan paths and the CLI tools named by the invariant must
// stay clean under errdrop.
func TestErrDropEngineAndToolsClean(t *testing.T) {
	expectClean(t, analysis.ErrDrop,
		"repro/internal/engine", "repro/cmd/xload", "repro/cmd/xbench")
}
