// Well-formed suppressions actually suppress: each violation below
// would trip rawsql, and each carries a reasoned directive — so this
// package must produce no diagnostics at all (no want comments).
package ok

import "fmt"

// Trailing form: directive on the diagnostic's own line.
func trailing(table string) string {
	return "SELECT id FROM " + table //xvet:ignore rawsql -- fixture: trailing-form suppression
}

// Standalone form: directive on the line above.
func standalone(table string) string {
	//xvet:ignore rawsql -- fixture: standalone-form suppression
	return fmt.Sprintf("SELECT id FROM %s WHERE id = 1", table)
}

// A directive listing several analyzers covers each of them.
func multi(table string) string {
	//xvet:ignore rawsql sqltaint -- fixture: multi-analyzer suppression
	return "SELECT d.pos FROM " + table + " d ORDER BY d.pos"
}
