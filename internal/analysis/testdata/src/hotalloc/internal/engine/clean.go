// Sanctioned closure shapes hotalloc must not flag: non-capturing
// literals, static dispatch, direct invocation, and go/defer launch
// sites (those escape once per fan-out, not per row).
package engine

import "sync"

// A closure over nothing compiles to a static function value.
func nonCapturing(p *plan) {
	p.src.enumerate(func(v int) bool { return v >= 0 })
}

// Static callees can inline; the compiler keeps the closure on the
// stack (the forEachRow type-switch pattern).
func forEachStatic(rows []int, f func(int) bool) {
	for _, v := range rows {
		if !f(v) {
			return
		}
	}
}

func staticDispatch(rows []int) int {
	count := 0
	forEachStatic(rows, func(v int) bool {
		count++
		return true
	})
	return count
}

// Direct invocation of a local closure never leaves the frame.
func directCall(rows []int) int {
	total := 0
	add := func(v int) { total += v }
	for _, v := range rows {
		add(v)
	}
	return total
}

// Worker fan-out: go closures escape by design, once per worker.
func fanOut(workers int, rows []int) int {
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mu.Lock()
			total += len(rows)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total
}

// Hoisted above the loop: one allocation, amortized.
func hoisted(p *plan, rows []int) {
	seen := map[int]bool{}
	keep := func(v int) bool { return !seen[v] }
	for range rows {
		p.filters = append(p.filters, keep)
	}
}
