// Package transcheck statically validates the translator's Table 1
// path patterns: for every axis/fragment shape it builds a reference
// NFA directly from the axis semantics — segments, separators and
// gaps as automaton combinators, sharing none of Table 1's
// string-assembly code — and checks the pattern the translator
// actually emitted for language equivalence over the path-string
// domain. Two entry points feed it: a synthetic axis/shape matrix
// (CheckMatrix) and a corpus sweep that traces every pattern
// constructed while translating the fig3 and XPathMark query sets
// under both the schema-aware and Edge translators (CheckCorpus).
package transcheck

import (
	"fmt"
	"strings"

	"repro/internal/pathre"
	"repro/internal/xpath"
)

// A segPred constrains one path segment: any element name, or one
// specific name.
type segPred struct {
	any  bool
	name string
}

func predOf(s *xpath.Step) segPred {
	if s.Wildcard() || s.Test == xpath.AnyKindTest {
		return segPred{any: true}
	}
	return segPred{name: s.Name}
}

// parseNamePat inverts core's namePat output: the only base patterns
// the translator passes across fragment boundaries are the wildcard
// class and regex-quoted literals.
func parseNamePat(pat string) (segPred, error) {
	if pat == "[^/]+" {
		return segPred{any: true}, nil
	}
	var b strings.Builder
	for i := 0; i < len(pat); i++ {
		c := pat[i]
		if c == '\\' {
			i++
			if i == len(pat) {
				return segPred{}, fmt.Errorf("transcheck: trailing backslash in name pattern %q", pat)
			}
			b.WriteByte(pat[i])
			continue
		}
		if strings.IndexByte(`.+*?()|[]{}^$`, c) >= 0 {
			return segPred{}, fmt.Errorf("transcheck: unexpected metacharacter %q in name pattern %q", c, pat)
		}
		b.WriteByte(c)
	}
	return segPred{name: b.String()}, nil
}

// intersect returns the conjunction of two segment predicates and
// whether it is satisfiable.
func intersect(a, b segPred) (segPred, bool) {
	switch {
	case a.any:
		return b, true
	case b.any:
		return a, true
	case a.name == b.name:
		return a, true
	default:
		return segPred{}, false
	}
}

// atoms of the reference automaton. A branch is a linear sequence of
// atoms; or-self steps fork branches rather than complicating atoms.
type atomKind uint8

const (
	aAnyPrefix atomKind = iota // arbitrary bytes (the '^.*' context prefix)
	aSlash                     // the '/' separator
	aSeg                       // one segment constrained by a predicate
	aGap                       // zero or more whole segments, each '/'-terminated
)

type atom struct {
	kind atomKind
	p    segPred
}

// A branch is one alternative under construction. pending holds the
// predicate of the most recent segment, kept symbolic so an or-self
// step can still refine it; pendingSet distinguishes "no segment yet"
// (the fragment boundary / document root) from a pending wildcard.
type branch struct {
	atoms      []atom
	pending    segPred
	pendingSet bool
}

func (br branch) emitPending() branch {
	if !br.pendingSet {
		return br
	}
	atoms := append(append([]atom(nil), br.atoms...), atom{kind: aSeg, p: br.pending})
	return branch{atoms: atoms}
}

func (br branch) appendAtoms(ks ...atomKind) branch {
	atoms := append([]atom(nil), br.atoms...)
	for _, k := range ks {
		atoms = append(atoms, atom{kind: k})
	}
	return branch{atoms: atoms, pending: br.pending, pendingSet: br.pendingSet}
}

func (br branch) withPending(p segPred) branch {
	return branch{atoms: br.atoms, pending: p, pendingSet: true}
}

// referenceForward builds the reference automaton for a forward
// fragment: each child step appends exactly one '/'-separated segment
// matching its test; each descendant step appends one or more (a gap
// of whole segments then the named one); descendant-or-self forks a
// self alternative that conjoins its test onto the previous segment.
func referenceForward(steps []*xpath.Step, anchored bool, base string) (*pathre.Regexp, error) {
	var init branch
	switch {
	case anchored:
		// The context is the document root: its path is empty and it has
		// no segment an or-self step could constrain.
		init = branch{}
	case base != "":
		bp, err := parseNamePat(base)
		if err != nil {
			return nil, err
		}
		// An unknown ancestor chain, then the previous prominent
		// element's segment.
		init = branch{atoms: []atom{{kind: aAnyPrefix}, {kind: aSlash}}, pending: bp, pendingSet: true}
	default:
		// Entirely unknown context; like the root case it exposes no
		// constrainable segment.
		init = branch{atoms: []atom{{kind: aAnyPrefix}}}
	}
	branches := []branch{init}
	for _, s := range steps {
		p := predOf(s)
		var next []branch
		for _, br := range branches {
			switch s.Axis {
			case xpath.Child:
				next = append(next, br.emitPending().appendAtoms(aSlash).withPending(p))
			case xpath.Descendant:
				next = append(next, br.emitPending().appendAtoms(aSlash, aGap).withPending(p))
			case xpath.DescendantOrSelf:
				next = append(next, br.emitPending().appendAtoms(aSlash, aGap).withPending(p))
				if br.pendingSet {
					if merged, ok := intersect(br.pending, p); ok {
						next = append(next, br.withPending(merged))
					}
				}
			default:
				return nil, fmt.Errorf("transcheck: axis %s in a forward fragment", s.Axis)
			}
		}
		branches = next
	}
	return materialize(branches, "ref-forward")
}

// referenceBackward builds the reference automaton for a backward
// fragment, constraining the path of the element the fragment starts
// from (the previous prominent): walking parent steps inserts exactly
// one segment above it, ancestor steps one segment plus a gap;
// ancestor-or-self forks a self alternative. The topmost element's
// ancestors are unconstrained ('^.*/').
func referenceBackward(steps []*xpath.Step, contextName string) (*pathre.Regexp, error) {
	cp, err := parseNamePat(contextName)
	if err != nil {
		return nil, err
	}
	branches, err := backwardBranches(steps, cp)
	if err != nil {
		return nil, err
	}
	// Materialized form: ^.* '/' topSeg <below-atoms> $ — the below
	// atoms were built bottom-up and already end at the context.
	out := make([]branch, 0, len(branches))
	for _, br := range branches {
		full := branch{atoms: []atom{{kind: aAnyPrefix}, {kind: aSlash}, {kind: aSeg, p: br.pending}}}
		full.atoms = append(full.atoms, br.atoms...)
		out = append(out, full)
	}
	return materialize(out, "ref-backward")
}

// backwardBranches walks a backward fragment bottom-up. In the result,
// pending is the topmost (shallowest) element's predicate and atoms
// are everything below it down to the context segment.
func backwardBranches(steps []*xpath.Step, cp segPred) ([]branch, error) {
	branches := []branch{{pending: cp, pendingSet: true}}
	for _, s := range steps {
		p := predOf(s)
		var next []branch
		for _, br := range branches {
			// Prepending below the new top: '/' [gap] oldTop <old atoms>.
			prepend := func(withGap bool) branch {
				atoms := []atom{{kind: aSlash}}
				if withGap {
					atoms = append(atoms, atom{kind: aGap})
				}
				atoms = append(atoms, atom{kind: aSeg, p: br.pending})
				atoms = append(atoms, br.atoms...)
				return branch{atoms: atoms, pending: p, pendingSet: true}
			}
			switch s.Axis {
			case xpath.Parent:
				next = append(next, prepend(false))
			case xpath.Ancestor:
				next = append(next, prepend(true))
			case xpath.AncestorOrSelf:
				next = append(next, prepend(true))
				if merged, ok := intersect(br.pending, p); ok {
					next = append(next, branch{atoms: br.atoms, pending: merged, pendingSet: true})
				}
			default:
				return nil, fmt.Errorf("transcheck: axis %s in a backward fragment", s.Axis)
			}
		}
		branches = next
	}
	return branches, nil
}

// referenceForwardSuffix builds the reference automaton for the
// fragment-boundary suffix of a forward fragment: the part of the
// result's path strictly below the previous prominent element. The
// suffix is "" when or-self steps allow the result to be the previous
// element itself (admitted only if the tests are compatible with
// prevName).
func referenceForwardSuffix(steps []*xpath.Step, prevName string) (*pathre.Regexp, error) {
	pp, err := parseNamePat(prevName)
	if err != nil {
		return nil, err
	}
	branches := []branch{{}} // boundary: zero segments below the previous element
	for _, s := range steps {
		p := predOf(s)
		var next []branch
		for _, br := range branches {
			switch s.Axis {
			case xpath.Child:
				next = append(next, br.emitPending().appendAtoms(aSlash).withPending(p))
			case xpath.Descendant:
				next = append(next, br.emitPending().appendAtoms(aSlash, aGap).withPending(p))
			case xpath.DescendantOrSelf:
				next = append(next, br.emitPending().appendAtoms(aSlash, aGap).withPending(p))
				if br.pendingSet {
					if merged, ok := intersect(br.pending, p); ok {
						next = append(next, br.withPending(merged))
					}
				} else if _, ok := intersect(pp, p); ok {
					// Still at the boundary: "self" is the previous element,
					// whose name the test must admit; the suffix stays empty.
					next = append(next, br)
				}
			default:
				return nil, fmt.Errorf("transcheck: axis %s in a forward fragment", s.Axis)
			}
		}
		branches = next
	}
	return materialize(branches, "ref-forward-suffix")
}

// referenceBackwardSuffix builds the reference automaton for the
// fragment-boundary suffix of a backward fragment: the previous
// prominent element's path strictly below the ancestor the fragment
// reaches. The topmost segment itself is outside the suffix; a pure
// or-self chain leaves an empty suffix.
func referenceBackwardSuffix(steps []*xpath.Step, contextName string) (*pathre.Regexp, error) {
	cp, err := parseNamePat(contextName)
	if err != nil {
		return nil, err
	}
	branches, err := backwardBranches(steps, cp)
	if err != nil {
		return nil, err
	}
	out := make([]branch, 0, len(branches))
	for _, br := range branches {
		// Drop the topmost segment (its name was constrained by the
		// join partner, and unsatisfiable branches are already gone):
		// the suffix is exactly the atoms below it.
		out = append(out, branch{atoms: br.atoms})
	}
	return materialize(out, "ref-backward-suffix")
}

// materialize compiles branches into one pathre automaton via the
// Builder: anchored on both sides, alternation over branches.
func materialize(branches []branch, label string) (*pathre.Regexp, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("transcheck: reference automaton for %s has no satisfiable branch", label)
	}
	b := &pathre.Builder{}
	seg := func(p segPred) pathre.Frag {
		if p.any {
			return b.Plus(b.Class(true, '/'))
		}
		return b.Literal(p.name)
	}
	frags := make([]pathre.Frag, 0, len(branches))
	for _, br := range branches {
		parts := []pathre.Frag{b.Bol()}
		for _, a := range br.atoms {
			switch a.kind {
			case aAnyPrefix:
				parts = append(parts, b.Star(b.AnyByte()))
			case aSlash:
				parts = append(parts, b.Byte('/'))
			case aSeg:
				parts = append(parts, seg(a.p))
			case aGap:
				parts = append(parts, b.Star(b.Seq(b.Plus(b.Class(true, '/')), b.Byte('/'))))
			}
		}
		if br.pendingSet {
			parts = append(parts, seg(br.pending))
		}
		parts = append(parts, b.Eol())
		frags = append(frags, b.Seq(parts...))
	}
	return b.Compile(b.Alt(frags...), label), nil
}

// Domains: full root-to-node paths are '(/seg)+'; fragment-boundary
// suffixes are '(/seg)*' (empty for or-self boundaries).
func pathDomain() *pathre.Regexp {
	b := &pathre.Builder{}
	seg := b.Plus(b.Class(true, '/'))
	return b.Compile(b.Seq(b.Bol(), b.Plus(b.Seq(b.Byte('/'), seg)), b.Eol()), "path-domain")
}

func suffixDomain() *pathre.Regexp {
	b := &pathre.Builder{}
	seg := b.Plus(b.Class(true, '/'))
	return b.Compile(b.Seq(b.Bol(), b.Star(b.Seq(b.Byte('/'), seg)), b.Eol()), "suffix-domain")
}
