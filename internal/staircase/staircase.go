// Package staircase implements a column-at-a-time XPath evaluator in
// the style of MonetDB/XQuery (Pathfinder), the strongest comparator
// of the paper's Section 5.2. The document is encoded as parallel
// pre-order arrays (size, level, parent, tag, text, attributes); a
// location step maps a sorted context of pre ranks to the next
// context with whole-column operations, using the staircase-join
// pruning rules for the descendant, following and preceding axes.
package staircase

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Doc is the columnar encoding of a document. Element nodes only; pre
// ranks are 0-based array positions.
type Doc struct {
	size  []int32 // number of element descendants
	level []int32
	par   []int32 // pre of parent; -1 for the root
	tag   []int32
	text  []string // direct text concatenation ("" if none)
	ids   []int64  // document-global element ids (tree node ids)

	tagIDs   map[string]int32
	tagNames []string
	attrs    []map[string]string
	children [][]int32
}

// FromTree encodes a parsed document.
func FromTree(t *xmltree.Document) *Doc {
	d := &Doc{tagIDs: map[string]int32{}}
	var walk func(n *xmltree.Node, level int32) int32
	walk = func(n *xmltree.Node, level int32) int32 {
		pre := int32(len(d.size))
		tid, ok := d.tagIDs[n.Name]
		if !ok {
			tid = int32(len(d.tagNames))
			d.tagIDs[n.Name] = tid
			d.tagNames = append(d.tagNames, n.Name)
		}
		d.size = append(d.size, 0)
		d.level = append(d.level, level)
		d.par = append(d.par, -1)
		d.tag = append(d.tag, tid)
		d.ids = append(d.ids, n.ID)
		var am map[string]string
		if len(n.Attrs) > 0 {
			am = make(map[string]string, len(n.Attrs))
			for _, a := range n.Attrs {
				am[a.Name] = a.Value
			}
		}
		d.attrs = append(d.attrs, am)
		d.text = append(d.text, "")
		d.children = append(d.children, nil)
		var txt strings.Builder
		var count int32
		for _, c := range n.Children {
			if c.Kind == xmltree.Text {
				txt.WriteString(c.Value)
				continue
			}
			cPre := walk(c, level+1)
			d.par[cPre] = pre
			d.children[pre] = append(d.children[pre], cPre)
			count += d.size[cPre] + 1
		}
		d.size[pre] = count
		d.text[pre] = txt.String()
		return pre
	}
	walk(t.Root, 0)
	return d
}

// Len returns the number of elements.
func (d *Doc) Len() int { return len(d.size) }

// Eval evaluates an XPath expression, returning the selected
// elements' document-global ids in document order. Terminal text()
// steps return the ids of the elements owning the text; terminal
// attribute steps return the owners.
func (d *Doc) Eval(e xpath.Expr) ([]int64, error) {
	ctx, err := d.evalExprNodes(e)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(ctx))
	for i, pre := range ctx {
		out[i] = d.ids[pre]
	}
	return out, nil
}

// EvalString parses and evaluates a query.
func (d *Doc) EvalString(q string) ([]int64, error) {
	e, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	return d.Eval(e)
}

func (d *Doc) evalExprNodes(e xpath.Expr) ([]int32, error) {
	switch x := e.(type) {
	case *xpath.Path:
		return d.evalPath(x, nil)
	case *xpath.Union:
		var all []int32
		for _, p := range x.Paths {
			ctx, err := d.evalPath(p, nil)
			if err != nil {
				return nil, err
			}
			all = append(all, ctx...)
		}
		return dedupeSorted(all), nil
	}
	return nil, fmt.Errorf("staircase: %T is not a location path", e)
}

// evalPath evaluates a path; ctx nil means the virtual root (for
// absolute paths).
func (d *Doc) evalPath(p *xpath.Path, ctx []int32) ([]int32, error) {
	main, terminal, err := xpath.NormalizeSteps(p.Steps)
	if err != nil {
		return nil, err
	}
	cur := ctx
	atRoot := false
	if p.Absolute {
		cur = nil
		atRoot = true
		if len(p.Steps) == 0 {
			return []int32{0}, nil
		}
	} else if ctx == nil {
		return nil, fmt.Errorf("staircase: relative path %q has no context", p)
	}
	for _, s := range main {
		next, err := d.step(s, cur, atRoot)
		if err != nil {
			return nil, err
		}
		atRoot = false
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	if terminal != nil && len(cur) > 0 {
		kept := cur[:0:0]
		for _, pre := range cur {
			if terminal.Axis == xpath.Attribute {
				if _, ok := d.attrs[pre][terminal.Name]; ok {
					kept = append(kept, pre)
				}
			} else if d.text[pre] != "" {
				kept = append(kept, pre)
			}
		}
		cur = kept
	}
	return cur, nil
}

// step applies one location step column-at-a-time.
func (d *Doc) step(s *xpath.Step, ctx []int32, atRoot bool) ([]int32, error) {
	var cand []int32
	switch s.Axis {
	case xpath.Child:
		if atRoot {
			cand = []int32{0}
		} else {
			for _, c := range ctx {
				cand = append(cand, d.children[c]...)
			}
			cand = dedupeSorted(cand)
		}
	case xpath.Descendant, xpath.DescendantOrSelf:
		if atRoot {
			cand = make([]int32, d.Len())
			for i := range cand {
				cand[i] = int32(i)
			}
		} else {
			cand = d.staircaseDescendant(ctx, s.Axis == xpath.DescendantOrSelf)
		}
	case xpath.Parent:
		if atRoot {
			break
		}
		for _, c := range ctx {
			if d.par[c] >= 0 {
				cand = append(cand, d.par[c])
			}
		}
		cand = dedupeSorted(cand)
	case xpath.Ancestor, xpath.AncestorOrSelf:
		seen := map[int32]bool{}
		for _, c := range ctx {
			n := c
			if s.Axis == xpath.Ancestor {
				n = d.par[c]
			}
			for n >= 0 && !seen[n] {
				seen[n] = true
				n = d.par[n]
			}
		}
		for n := range seen {
			cand = append(cand, n)
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	case xpath.Following:
		// Staircase: the union of following sets is the pre suffix after
		// the earliest context subtree's end.
		if len(ctx) == 0 {
			break
		}
		min := ctx[0] + d.size[ctx[0]] + 1
		for _, c := range ctx[1:] {
			if end := c + d.size[c] + 1; end < min {
				min = end
			}
		}
		for pre := min; pre < int32(d.Len()); pre++ {
			cand = append(cand, pre)
		}
	case xpath.Preceding:
		// Staircase: the union of preceding sets equals the preceding
		// set of the last context (ancestors excluded).
		if len(ctx) == 0 {
			break
		}
		last := ctx[len(ctx)-1]
		anc := map[int32]bool{}
		for n := d.par[last]; n >= 0; n = d.par[n] {
			anc[n] = true
		}
		for pre := int32(0); pre < last; pre++ {
			if !anc[pre] {
				cand = append(cand, pre)
			}
		}
	case xpath.FollowingSibling, xpath.PrecedingSibling:
		seen := map[int32]bool{}
		for _, c := range ctx {
			p := d.par[c]
			if p < 0 {
				continue
			}
			for _, sib := range d.children[p] {
				if s.Axis == xpath.FollowingSibling && sib > c && !seen[sib] {
					seen[sib] = true
					cand = append(cand, sib)
				}
				if s.Axis == xpath.PrecedingSibling && sib < c && !seen[sib] {
					seen[sib] = true
					cand = append(cand, sib)
				}
			}
		}
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	case xpath.Attribute:
		return nil, fmt.Errorf("staircase: attribute steps are only supported as terminal steps or in predicates")
	default:
		return nil, fmt.Errorf("staircase: unsupported axis %s", s.Axis)
	}
	// Name test as a column filter.
	if s.Test == xpath.NameTest && s.Name != "" {
		tid, ok := d.tagIDs[s.Name]
		if !ok {
			return nil, nil
		}
		kept := cand[:0]
		for _, pre := range cand {
			if d.tag[pre] == tid {
				kept = append(kept, pre)
			}
		}
		cand = kept
	}
	// Predicates: a column-wise semijoin per predicate.
	for _, pred := range s.Predicates {
		kept := cand[:0:0]
		size := len(cand)
		for i, pre := range cand {
			ok, err := d.predicate(pred, pre, i+1, size)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, pre)
			}
		}
		cand = kept
	}
	return cand, nil
}

// staircaseDescendant implements the staircase join on the descendant
// axis: contexts covered by an earlier context's subtree window are
// pruned, then each remaining window is scanned once.
func (d *Doc) staircaseDescendant(ctx []int32, orSelf bool) []int32 {
	var out []int32
	scannedTo := int32(-1)
	for _, c := range ctx {
		end := c + d.size[c]
		if end <= scannedTo {
			continue // pruned: covered by a previous window
		}
		start := c
		if !orSelf {
			start = c + 1
		} else if c <= scannedTo {
			start = scannedTo + 1
		}
		if !orSelf && start <= scannedTo {
			start = scannedTo + 1
		}
		for pre := start; pre <= end; pre++ {
			out = append(out, pre)
		}
		scannedTo = end
	}
	return dedupeSorted(out)
}

// predicate evaluates one predicate for one candidate.
func (d *Doc) predicate(e xpath.Expr, pre int32, pos, size int) (bool, error) {
	v, err := d.evalValue(e, pre, pos, size)
	if err != nil {
		return false, err
	}
	if v.kind == 'f' {
		return v.num == float64(pos), nil
	}
	return v.truth(), nil
}

type value struct {
	kind  byte // 'n' nodeset, 'f' number, 's' string, 'b' bool, 'a' attr values
	nodes []int32
	strs  []string
	num   float64
	str   string
	b     bool
}

func (v value) truth() bool {
	switch v.kind {
	case 'n':
		return len(v.nodes) > 0
	case 'a':
		return len(v.strs) > 0
	case 'f':
		return v.num != 0
	case 's':
		return v.str != ""
	default:
		return v.b
	}
}

func (d *Doc) evalValue(e xpath.Expr, pre int32, pos, size int) (value, error) {
	switch x := e.(type) {
	case *xpath.Literal:
		return value{kind: 's', str: x.Value}, nil
	case *xpath.Number:
		return value{kind: 'f', num: x.Value}, nil
	case *xpath.Path:
		return d.pathValue(x, pre)
	case *xpath.Union:
		var all []int32
		for _, p := range x.Paths {
			v, err := d.pathValue(p, pre)
			if err != nil {
				return value{}, err
			}
			if v.kind == 'a' {
				if len(v.strs) > 0 {
					return v, nil
				}
				continue
			}
			all = append(all, v.nodes...)
		}
		return value{kind: 'n', nodes: dedupeSorted(all)}, nil
	case *xpath.Call:
		switch x.Name {
		case "position":
			return value{kind: 'f', num: float64(pos)}, nil
		case "last":
			return value{kind: 'f', num: float64(size)}, nil
		case "not":
			v, err := d.evalValue(x.Args[0], pre, pos, size)
			if err != nil {
				return value{}, err
			}
			return value{kind: 'b', b: !v.truth()}, nil
		case "count":
			v, err := d.evalValue(x.Args[0], pre, pos, size)
			if err != nil {
				return value{}, err
			}
			if v.kind == 'a' {
				return value{kind: 'f', num: float64(len(v.strs))}, nil
			}
			if v.kind != 'n' {
				return value{}, fmt.Errorf("staircase: count() needs a node set")
			}
			return value{kind: 'f', num: float64(len(v.nodes))}, nil
		}
		return value{}, fmt.Errorf("staircase: unsupported function %q", x.Name)
	case *xpath.Binary:
		if x.Op.Logical() {
			l, err := d.evalValue(x.L, pre, pos, size)
			if err != nil {
				return value{}, err
			}
			if x.Op == xpath.OpAnd && !l.truth() {
				return value{kind: 'b'}, nil
			}
			if x.Op == xpath.OpOr && l.truth() {
				return value{kind: 'b', b: true}, nil
			}
			r, err := d.evalValue(x.R, pre, pos, size)
			if err != nil {
				return value{}, err
			}
			return value{kind: 'b', b: r.truth()}, nil
		}
		l, err := d.evalValue(x.L, pre, pos, size)
		if err != nil {
			return value{}, err
		}
		r, err := d.evalValue(x.R, pre, pos, size)
		if err != nil {
			return value{}, err
		}
		if x.Op.Comparison() {
			return value{kind: 'b', b: d.compare(x.Op, l, r)}, nil
		}
		lf, lok := d.number(l)
		rf, rok := d.number(r)
		if !lok || !rok {
			return value{kind: 'f', num: 0}, nil
		}
		var out float64
		switch x.Op {
		case xpath.OpAdd:
			out = lf + rf
		case xpath.OpSub:
			out = lf - rf
		case xpath.OpMul:
			out = lf * rf
		case xpath.OpDiv:
			out = lf / rf
		case xpath.OpMod:
			out = float64(int64(lf) % int64(rf))
		}
		return value{kind: 'f', num: out}, nil
	}
	return value{}, fmt.Errorf("staircase: unsupported expression %T", e)
}

// pathValue evaluates a predicate path from one context element,
// yielding a node set or attribute string set.
func (d *Doc) pathValue(p *xpath.Path, pre int32) (value, error) {
	// Attribute / self shortcuts.
	if !p.Absolute && len(p.Steps) == 1 {
		s := p.Steps[0]
		if s.Axis == xpath.Attribute && len(s.Predicates) == 0 {
			if v, ok := d.attrs[pre][s.Name]; ok {
				return value{kind: 'a', strs: []string{v}}, nil
			}
			return value{kind: 'a'}, nil
		}
		if s.Axis == xpath.Self && s.Test == xpath.AnyKindTest && len(s.Predicates) == 0 {
			return value{kind: 'n', nodes: []int32{pre}}, nil
		}
		if s.Axis == xpath.Child && s.Test == xpath.TextTest && len(s.Predicates) == 0 {
			if d.text[pre] != "" {
				return value{kind: 'a', strs: []string{d.text[pre]}}, nil
			}
			return value{kind: 'a'}, nil
		}
	}
	// Terminal-attribute paths need the owner's values.
	main, terminal, err := xpath.NormalizeSteps(p.Steps)
	if err != nil {
		return value{}, err
	}
	ctx := []int32{pre}
	if p.Absolute {
		ctxNodes, err := d.evalPath(&xpath.Path{Absolute: true, Steps: p.Steps}, nil)
		if err != nil {
			return value{}, err
		}
		return value{kind: 'n', nodes: ctxNodes}, nil
	}
	atRoot := false
	for _, s := range main {
		next, err := d.step(s, ctx, atRoot)
		if err != nil {
			return value{}, err
		}
		ctx = next
		if len(ctx) == 0 {
			break
		}
	}
	if terminal != nil {
		if terminal.Axis == xpath.Attribute {
			var vals []string
			for _, c := range ctx {
				if v, ok := d.attrs[c][terminal.Name]; ok {
					vals = append(vals, v)
				}
			}
			return value{kind: 'a', strs: vals}, nil
		}
		kept := ctx[:0:0]
		for _, c := range ctx {
			if d.text[c] != "" {
				kept = append(kept, c)
			}
		}
		ctx = kept
	}
	return value{kind: 'n', nodes: ctx}, nil
}

// strings of a node-set value for comparisons.
func (d *Doc) valueStrings(v value) []string {
	switch v.kind {
	case 'a':
		return v.strs
	case 'n':
		out := make([]string, len(v.nodes))
		for i, pre := range v.nodes {
			out[i] = d.text[pre]
		}
		return out
	}
	return nil
}

func (d *Doc) compare(op xpath.Op, l, r value) bool {
	lSet := l.kind == 'n' || l.kind == 'a'
	rSet := r.kind == 'n' || r.kind == 'a'
	switch {
	case lSet && rSet:
		for _, a := range d.valueStrings(l) {
			for _, b := range d.valueStrings(r) {
				if atomCompare(op, value{kind: 's', str: a}, value{kind: 's', str: b}, true) {
					return true
				}
			}
		}
		return false
	case lSet:
		for _, a := range d.valueStrings(l) {
			if atomCompare(op, value{kind: 's', str: a}, r, r.kind == 's') {
				return true
			}
		}
		return false
	case rSet:
		for _, b := range d.valueStrings(r) {
			if atomCompare(op, l, value{kind: 's', str: b}, l.kind == 's') {
				return true
			}
		}
		return false
	default:
		return atomCompare(op, l, r, l.kind == 's' && r.kind == 's')
	}
}

// atomCompare compares atomics; stringly compares only for =/!= when
// both sides are strings, else numerically (XPath 1.0 semantics).
func atomCompare(op xpath.Op, a, b value, asStrings bool) bool {
	if asStrings && (op == xpath.OpEq || op == xpath.OpNe) {
		if op == xpath.OpEq {
			return a.str == b.str
		}
		return a.str != b.str
	}
	d := Doc{}
	af, aok := d.number(a)
	bf, bok := d.number(b)
	if !aok || !bok {
		return op == xpath.OpNe
	}
	switch op {
	case xpath.OpEq:
		return af == bf
	case xpath.OpNe:
		return af != bf
	case xpath.OpLt:
		return af < bf
	case xpath.OpLe:
		return af <= bf
	case xpath.OpGt:
		return af > bf
	case xpath.OpGe:
		return af >= bf
	}
	return false
}

func (d *Doc) number(v value) (float64, bool) {
	switch v.kind {
	case 'f':
		return v.num, true
	case 's':
		f, err := strconv.ParseFloat(strings.TrimSpace(v.str), 64)
		return f, err == nil
	case 'b':
		if v.b {
			return 1, true
		}
		return 0, true
	case 'a':
		if len(v.strs) == 0 {
			return 0, false
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v.strs[0]), 64)
		return f, err == nil
	case 'n':
		if len(v.nodes) == 0 {
			return 0, false
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(d.text[v.nodes[0]]), 64)
		return f, err == nil
	}
	return 0, false
}

// dedupeSorted sorts ascending and removes duplicates.
func dedupeSorted(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
