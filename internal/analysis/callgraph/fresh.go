// Freshness summaries: which functions always return newly allocated
// memory in their first result. The COW publication protocol hinges on
// the builder-scope exemption — writes through values that a function
// provably allocated itself (db := NewDB(), next := snap.clone(),
// log := wal.Open(...)) are legal before publication — so snapfreeze,
// guardedby, and walorder all need the same "is this constructor-like"
// judgment, computed once per graph.
package callgraph

import (
	"go/ast"
	"go/types"
)

// FreshReturns computes, to a fixpoint over the package's call graph,
// the set of functions whose every return statement yields fresh
// memory in result 0: a composite literal (or its address), nil, a
// make/new allocation, a call to another fresh function, or a local
// variable all of whose assignments are such expressions. Functions
// with naked returns, no return statements, or any non-fresh return
// are excluded (conservative: not fresh).
//
// extern, when non-nil, answers freshness for out-of-package callees —
// clients pass a lookup built from the dependency package's own
// FreshReturns (wal.Open, seen from engine).
func (g *Graph) FreshReturns(extern func(*types.Func) bool) map[*Node]bool {
	fresh := map[*Node]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if fresh[n] {
				continue
			}
			if g.nodeReturnsFresh(n, fresh, extern) {
				fresh[n] = true
				changed = true
			}
		}
	}
	return fresh
}

// FreshFuncs re-keys a FreshReturns result by *types.Func for
// cross-package composition (literals, having no Obj, drop out).
func FreshFuncs(m map[*Node]bool) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for n, v := range m {
		if v && n.Obj != nil {
			out[n.Obj] = true
		}
	}
	return out
}

func (g *Graph) nodeReturnsFresh(n *Node, fresh map[*Node]bool, extern func(*types.Func) bool) bool {
	if n.Body == nil {
		return false
	}
	// Result shape: at least one result, and returns must be explicit.
	var results *ast.FieldList
	switch {
	case n.Decl != nil:
		results = n.Decl.Type.Results
	case n.Lit != nil:
		results = n.Lit.Type.Results
	}
	if results == nil || len(results.List) == 0 {
		return false
	}

	locals := g.FreshLocals(n, fresh, extern)
	sawReturn := false
	ok := true
	ownWalk(n.Body, func(m ast.Node) {
		ret, isRet := m.(*ast.ReturnStmt)
		if !isRet || !ok {
			return
		}
		sawReturn = true
		if len(ret.Results) == 0 { // naked return: named results, give up
			ok = false
			return
		}
		if !g.FreshExpr(ret.Results[0], locals, fresh, extern) {
			ok = false
		}
	})
	return ok && sawReturn
}

// FreshLocals classifies the function's own variables: a local is
// fresh iff every assignment to it (in this function's own body,
// outside nested literals) has a fresh RHS. Variables also assigned
// inside nested literals are conservatively not fresh. The analyzers
// use it for the builder-scope exemption: writes and publishes
// through provably self-allocated values are construction, not
// mutation of shared state.
func (g *Graph) FreshLocals(n *Node, fresh map[*Node]bool, extern func(*types.Func) bool) map[types.Object]bool {
	assigns := map[types.Object][]ast.Expr{}
	tainted := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr, inLit bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := g.Info.Defs[id]
		if obj == nil {
			obj = g.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if inLit || rhs == nil {
			tainted[obj] = true
			return
		}
		assigns[obj] = append(assigns[obj], rhs)
	}
	collect := func(root ast.Node, inLit bool) {
		ast.Inspect(root, func(m ast.Node) bool {
			if lit, isLit := m.(*ast.FuncLit); isLit && !inLit {
				// Separate walk so captured-var assignments taint.
				ast.Inspect(lit.Body, func(mm ast.Node) bool {
					if as, isAs := mm.(*ast.AssignStmt); isAs {
						for _, lhs := range as.Lhs {
							record(lhs, nil, true)
						}
					}
					return true
				})
				return false
			}
			as, isAs := m.(*ast.AssignStmt)
			if !isAs {
				return true
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					record(as.Lhs[i], as.Rhs[i], false)
				}
			} else if len(as.Rhs) == 1 {
				// Tuple assignment: only position 0 can be fresh here
				// (constructor-with-error shape: l, err := wal.Open(...)).
				record(as.Lhs[0], as.Rhs[0], false)
				for _, lhs := range as.Lhs[1:] {
					record(lhs, nil, false)
				}
			}
			return true
		})
	}
	collect(n.Body, false)

	// Iterate locally: v := NewX(); w := v.
	out := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, rhss := range assigns {
			if out[obj] || tainted[obj] {
				continue
			}
			all := true
			for _, rhs := range rhss {
				if !g.freshExprLocals(rhs, out, fresh, extern) {
					all = false
					break
				}
			}
			if all {
				out[obj] = true
				changed = true
			}
		}
	}
	return out
}

// FreshExpr reports whether e is a freshly allocated value under the
// given local classification and function summaries.
func (g *Graph) FreshExpr(e ast.Expr, locals map[types.Object]bool, fresh map[*Node]bool, extern func(*types.Func) bool) bool {
	return g.freshExprLocals(e, locals, fresh, extern)
}

func (g *Graph) freshExprLocals(e ast.Expr, locals map[types.Object]bool, fresh map[*Node]bool, extern func(*types.Func) bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
			return true // &T{...}
		}
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		obj := g.Info.Uses[x]
		if obj == nil {
			obj = g.Info.Defs[x]
		}
		return obj != nil && locals[obj]
	case *ast.CallExpr:
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			if b, ok := g.Info.Uses[fun].(*types.Builtin); ok {
				return b.Name() == "make" || b.Name() == "new"
			}
			if fn, ok := g.Info.Uses[fun].(*types.Func); ok {
				return g.calleeFresh(fn, fresh, extern)
			}
		case *ast.SelectorExpr:
			if fn, ok := g.Info.Uses[fun.Sel].(*types.Func); ok {
				return g.calleeFresh(fn, fresh, extern)
			}
		case *ast.FuncLit:
			if n := g.byLit[fun]; n != nil {
				return fresh[n]
			}
		}
	}
	return false
}

func (g *Graph) calleeFresh(fn *types.Func, fresh map[*Node]bool, extern func(*types.Func) bool) bool {
	if n := g.byObj[fn]; n != nil {
		return fresh[n]
	}
	return extern != nil && extern(fn)
}

// ownWalk visits the nodes of body that belong to the function itself,
// skipping nested function literals (which have their own graph
// nodes).
func ownWalk(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
