package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockScope, "lockscope/internal/engine")
}

// The engine's real critical sections (pattern cache, hash builds,
// plan cache, morsel queue) must stay tight.
func TestLockScopeClean(t *testing.T) {
	expectClean(t, analysis.LockScope, "repro/internal/engine")
}
