package schema

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// paperSchema builds the schema graph of the paper's Figure 1(a):
// A -> B; B -> C, G; C -> D, E; E -> F; G -> G (recursion, per the
// document in Figure 1(b) where G nests under G).
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewBuilder("A").
		Element("A", "B").
		Element("B", "C", "G").
		Element("C", "D", "E").
		Element("E", "F").
		Element("G", "G").
		Attrs("A", "x").
		Text("F", "D").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperSchemaStructure(t *testing.T) {
	s := paperSchema(t)
	if len(s.Roots()) != 1 || s.Roots()[0].Name != "A" {
		t.Fatalf("roots = %v", s.Roots())
	}
	b := s.Node("B")
	if b == nil || len(b.Children) != 2 || len(b.Parents) != 1 {
		t.Fatalf("B structure wrong: %+v", b)
	}
	if !s.Node("A").HasAttr("x") || s.Node("A").HasAttr("y") {
		t.Error("attr lookup wrong")
	}
	if !s.Node("F").HasText || s.Node("E").HasText {
		t.Error("text flags wrong")
	}
	if s.Node("missing") != nil {
		t.Error("missing element should be nil")
	}
}

func TestMarking(t *testing.T) {
	s := paperSchema(t)
	// Every element except G has a unique root path; G recurses.
	for name, want := range map[string]Mark{
		"A": UniquePath, "B": UniquePath, "C": UniquePath, "D": UniquePath,
		"E": UniquePath, "F": UniquePath, "G": InfinitePaths,
	} {
		if got := s.Node(name).Mark; got != want {
			t.Errorf("mark(%s) = %s, want %s", name, got, want)
		}
	}
	if got := s.Node("F").RootPaths; len(got) != 1 || got[0] != "/A/B/C/E/F" {
		t.Errorf("RootPaths(F) = %v", got)
	}
	if s.Node("G").RootPaths != nil {
		t.Error("I-P node should have nil RootPaths")
	}
}

func TestMarkingFinitePaths(t *testing.T) {
	// Fig 2-like: keyword appears under both text and bold: F-P.
	s, err := NewBuilder("doc").
		Element("doc", "text", "bold").
		Element("text", "keyword").
		Element("bold", "keyword").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	k := s.Node("keyword")
	if k.Mark != FinitePaths {
		t.Fatalf("mark(keyword) = %s, want F-P", k.Mark)
	}
	if len(k.RootPaths) != 2 || k.RootPaths[0] != "/doc/bold/keyword" || k.RootPaths[1] != "/doc/text/keyword" {
		t.Fatalf("RootPaths(keyword) = %v", k.RootPaths)
	}
}

func TestMarkingDownstreamOfCycleIsInfinite(t *testing.T) {
	// parlist -> listitem -> parlist cycle; keyword under listitem is
	// downstream of the cycle, hence I-P even though keyword itself is
	// not on the cycle.
	s, err := NewBuilder("doc").
		Element("doc", "parlist").
		Element("parlist", "listitem").
		Element("listitem", "parlist", "keyword").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"parlist", "listitem", "keyword"} {
		if got := s.Node(name).Mark; got != InfinitePaths {
			t.Errorf("mark(%s) = %s, want I-P", name, got)
		}
	}
	if got := s.Node("doc").Mark; got != UniquePath {
		t.Errorf("mark(doc) = %s, want U-P", got)
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	s, err := NewBuilder("a").Element("a", "g").Element("g", "g").Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Node("g").Mark != InfinitePaths {
		t.Error("self-loop should be I-P")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("no root should fail")
	}
	// Unreachable element.
	if _, err := NewBuilder("a").Element("a", "b").Element("orphan", "x").Build(); err == nil {
		t.Error("unreachable element should fail")
	}
}

func TestResolveAbsolutePaths(t *testing.T) {
	s := paperSchema(t)
	names := func(nodes []*Node) string {
		var out []string
		for _, n := range nodes {
			out = append(out, n.Name)
		}
		return strings.Join(out, ",")
	}
	cases := []struct {
		steps []Step
		want  string
	}{
		{[]Step{{Child, "A"}, {Child, "B"}, {Child, "C"}}, "C"},
		{[]Step{{Child, "A"}, {Child, "B"}, {Child, ""}}, "C,G"},
		{[]Step{{Descendant, "F"}}, "F"},
		{[]Step{{Child, "A"}, {Descendant, "G"}}, "G"},
		{[]Step{{Child, "A"}, {Child, "B"}, {Child, "C"}, {Child, ""}, {Child, "F"}}, "F"},
		{[]Step{{Child, "X"}}, ""},
		{[]Step{{Child, "A"}, {Child, "B"}, {DescendantOrSelf, ""}}, "B,C,G,D,E,F"},
	}
	for _, c := range cases {
		got := names(s.Resolve(nil, c.steps))
		if got != c.want {
			t.Errorf("Resolve(%v) = %q, want %q", c.steps, got, c.want)
		}
	}
}

func TestResolveBackward(t *testing.T) {
	s := paperSchema(t)
	f := s.Node("F")
	got := s.Resolve([]*Node{f}, []Step{{Parent, ""}})
	if len(got) != 1 || got[0].Name != "E" {
		t.Fatalf("parent of F = %v", got)
	}
	got = s.Resolve([]*Node{f}, []Step{{Ancestor, ""}})
	if len(got) != 4 { // A, B, C, E
		t.Fatalf("ancestors of F = %d nodes", len(got))
	}
	got = s.Resolve([]*Node{s.Node("G")}, []Step{{AncestorOrSelf, "G"}})
	if len(got) != 1 || got[0].Name != "G" {
		t.Fatalf("ancestor-or-self::G of G = %v", got)
	}
}

func TestParseCompact(t *testing.T) {
	src := `
# paper figure 1 schema
!root A
A -> B @x
B -> C G
C -> D E
E -> F
G -> G
F #text
D #text
`
	s, err := ParseCompact(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node("G").Mark != InfinitePaths || s.Node("F").Mark != UniquePath {
		t.Error("compact-parsed schema marking wrong")
	}
	if !s.Node("A").HasAttr("x") || !s.Node("F").HasText {
		t.Error("compact attrs/text wrong")
	}
}

func TestParseCompactErrors(t *testing.T) {
	for _, src := range []string{
		"A -> B",           // no root
		"!root A\nA stray", // token without ->
		"!root A\n-> B",    // missing name
	} {
		if _, err := ParseCompact(src); err == nil {
			t.Errorf("ParseCompact(%q) should fail", src)
		}
	}
}

func TestInfer(t *testing.T) {
	doc, err := xmltree.ParseString(`<A x="1"><B><C><D>t</D></C><G><G/></G></B></A>`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Infer(doc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node("G").Mark != InfinitePaths {
		t.Error("inferred G should be I-P")
	}
	if !s.Node("A").HasAttr("x") || !s.Node("D").HasText {
		t.Error("inferred attrs/text wrong")
	}
	if err := s.Validate(doc); err != nil {
		t.Errorf("document should validate against inferred schema: %v", err)
	}
}

func TestValidate(t *testing.T) {
	s := paperSchema(t)
	good, _ := xmltree.ParseString(`<A x="3"><B><C><D>v</D></C></B></A>`)
	if err := s.Validate(good); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	for _, bad := range []string{
		`<Z/>`,        // undeclared root
		`<A><Z/></A>`, // undeclared element
		`<A><C/></A>`, // bad nesting
		`<A y="1"/>`,  // undeclared attribute
		`<A>text</A>`, // text not allowed
	} {
		doc, err := xmltree.ParseString(bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(doc); err == nil {
			t.Errorf("Validate(%q) should fail", bad)
		}
	}
}

func TestParseXSD(t *testing.T) {
	src := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="A">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="B">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="C" type="ctype"/>
              <xs:element ref="G"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="x"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="G">
    <xs:complexType>
      <xs:choice>
        <xs:element ref="G"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="ctype" mixed="true">
    <xs:sequence>
      <xs:element name="D" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`
	s, err := ParseXSD(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Node("C") == nil || !s.Node("C").HasText {
		t.Fatal("mixed complexType should give C text content")
	}
	if s.Node("D") == nil || !s.Node("D").HasText {
		t.Fatal("simple-typed element should have text")
	}
	if !s.Node("A").HasAttr("x") {
		t.Error("attribute lost")
	}
	if s.Node("G").Mark != InfinitePaths {
		t.Error("recursive ref should be I-P")
	}
	// B -> C edge exists.
	found := false
	for _, c := range s.Node("B").Children {
		if c.Name == "C" {
			found = true
		}
	}
	if !found {
		t.Error("B -> C edge missing")
	}
}

func TestParseXSDErrors(t *testing.T) {
	if _, err := ParseXSD(strings.NewReader(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>`)); err == nil {
		t.Error("empty XSD should fail")
	}
	if _, err := ParseXSD(strings.NewReader(`not xml`)); err == nil {
		t.Error("bad XML should fail")
	}
}

func TestMarkString(t *testing.T) {
	if UniquePath.String() != "U-P" || FinitePaths.String() != "F-P" || InfinitePaths.String() != "I-P" {
		t.Error("Mark.String wrong")
	}
	if Mark(9).String() == "" {
		t.Error("unknown mark should render")
	}
	s := paperSchema(t)
	if !strings.Contains(s.String(), "G [I-P]") {
		t.Errorf("Schema.String missing marks:\n%s", s.String())
	}
}

func TestByName(t *testing.T) {
	s := paperSchema(t)
	if got := s.ByName("F"); len(got) != 1 || got[0].Name != "F" {
		t.Fatalf("ByName(F) = %v", got)
	}
	if got := s.ByName(""); len(got) != len(s.Nodes()) {
		t.Fatalf("ByName wildcard = %d nodes", len(got))
	}
	if got := s.ByName("zzz"); got != nil {
		t.Fatalf("ByName(zzz) = %v", got)
	}
}
