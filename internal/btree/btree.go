// Package btree implements an in-memory B+tree keyed by byte strings,
// used as the index structure for every relational index in the
// engine. Keys are arbitrary []byte (typically produced by package
// keyenc); each key maps to a set of row ids, so non-unique indexes
// are supported directly.
//
// The tree supports point lookups, ordered insertion and deletion,
// forward range scans over [lo, hi) byte intervals — the access
// pattern behind the paper's composite (dewey_pos, path_id) index and
// the Dewey BETWEEN structural joins — and O(1) copy-on-write clones
// (Clone), the mechanism behind the engine's snapshot-isolated table
// versions: a clone shares every node with its source until a write
// touches it, so published trees are never mutated in place.
package btree

import "bytes"

// degree is the maximum number of children of an interior node. Leaf
// nodes hold up to degree-1 entries.
const degree = 64

// cowToken marks node ownership for copy-on-write clones: a node may
// be mutated in place only by the tree whose token it carries. Nodes
// reachable from a clone but created by an ancestor tree are copied
// on first write.
type cowToken struct{ _ byte }

// Tree is a B+tree from byte-string keys to lists of int64 values.
// The zero value is not usable; call New.
type Tree struct {
	root   node
	height int
	keys   int // number of distinct keys
	vals   int // number of (key, value) pairs
	cow    *cowToken
}

type node interface{}

type leaf struct {
	cow     *cowToken
	entries []entry
}

type entry struct {
	key  []byte
	vals []int64
}

type interior struct {
	cow *cowToken
	// children[i] covers keys < keys[i] (for i < len(keys)) and
	// children[len(keys)] covers the rest.
	keys     [][]byte
	children []node
}

// New returns an empty tree.
func New() *Tree {
	c := new(cowToken)
	return &Tree{root: &leaf{cow: c}, height: 0, cow: c}
}

// Clone returns a copy-on-write clone: an O(1) snapshot sharing every
// node with the receiver. Writes to the clone copy shared nodes along
// the touched path, leaving the source tree untouched, so a published
// source may keep serving concurrent readers while its clone absorbs
// inserts. Clones form a linear history (the engine always clones the
// newest version under its writer lock); cloning the same tree twice
// and writing to both divergent clones is not supported.
func (t *Tree) Clone() *Tree {
	return &Tree{root: t.root, height: t.height, keys: t.keys, vals: t.vals, cow: new(cowToken)}
}

// mutableLeaf returns lf if this tree owns it, else a copy owned by
// this tree with one spare entry slot for the pending insert.
func (t *Tree) mutableLeaf(lf *leaf) *leaf {
	if lf.cow == t.cow {
		return lf
	}
	return &leaf{cow: t.cow, entries: append(make([]entry, 0, len(lf.entries)+1), lf.entries...)}
}

// mutableInterior returns in if this tree owns it, else a copy owned
// by this tree with one spare child slot.
func (t *Tree) mutableInterior(in *interior) *interior {
	if in.cow == t.cow {
		return in
	}
	return &interior{cow: t.cow,
		keys:     append(make([][]byte, 0, len(in.keys)+1), in.keys...),
		children: append(make([]node, 0, len(in.children)+1), in.children...)}
}

// Len returns the number of distinct keys in the tree.
func (t *Tree) Len() int { return t.keys }

// Pairs returns the total number of (key, value) pairs.
func (t *Tree) Pairs() int { return t.vals }

// Insert adds value v under key. Duplicate keys accumulate values;
// duplicate (key, value) pairs are stored once.
func (t *Tree) Insert(key []byte, v int64) {
	k := make([]byte, len(key))
	copy(k, key)
	repl, midKey, sibling := t.insert(t.root, t.height, k, v)
	t.root = repl
	if sibling != nil {
		t.root = &interior{cow: t.cow, keys: [][]byte{midKey}, children: []node{repl, sibling}}
		t.height++
	}
}

// insert descends to the leaf, inserts, and propagates splits upward.
// It returns the node that replaces n in its parent (n itself, or a
// copy when n was shared with an older clone), plus a non-nil sibling
// (and its separator key) if the node split.
func (t *Tree) insert(n node, height int, key []byte, v int64) (node, []byte, node) {
	if height == 0 {
		lf := n.(*leaf)
		i := searchEntries(lf.entries, key)
		if i < len(lf.entries) && bytes.Equal(lf.entries[i].key, key) {
			for _, existing := range lf.entries[i].vals {
				if existing == v {
					return n, nil, nil
				}
			}
			lf = t.mutableLeaf(lf)
			e := &lf.entries[i]
			// Appending may share the backing array with an older
			// clone's entry; safe because clones form a linear history
			// and older readers never index past their own length.
			e.vals = append(e.vals, v)
			t.vals++
			return lf, nil, nil
		}
		lf = t.mutableLeaf(lf)
		lf.entries = append(lf.entries, entry{})
		copy(lf.entries[i+1:], lf.entries[i:])
		lf.entries[i] = entry{key: key, vals: []int64{v}}
		t.keys++
		t.vals++
		if len(lf.entries) < degree {
			return lf, nil, nil
		}
		mid := len(lf.entries) / 2
		right := &leaf{cow: t.cow, entries: append([]entry(nil), lf.entries[mid:]...)}
		lf.entries = lf.entries[:mid:mid]
		return lf, right.entries[0].key, right
	}

	in := n.(*interior)
	i := searchKeys(in.keys, key)
	repl, midKey, sibling := t.insert(in.children[i], height-1, key, v)
	if repl == in.children[i] && sibling == nil {
		return in, nil, nil
	}
	in = t.mutableInterior(in)
	in.children[i] = repl
	if sibling == nil {
		return in, nil, nil
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = midKey
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = sibling
	if len(in.children) <= degree {
		return in, nil, nil
	}
	mid := len(in.keys) / 2
	sepKey := in.keys[mid]
	right := &interior{
		cow:      t.cow,
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return in, sepKey, right
}

// searchEntries returns the first index i with entries[i].key >= key.
func searchEntries(entries []entry, key []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchKeys returns the child index to descend into for key: the
// first i with key < keys[i], i.e. children[i] covers keys < keys[i].
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Get returns the values stored under key, or nil.
func (t *Tree) Get(key []byte) []int64 {
	lf, i := t.findLeaf(key)
	if i < len(lf.entries) && bytes.Equal(lf.entries[i].key, key) {
		return lf.entries[i].vals
	}
	return nil
}

// Delete removes value v from key, returning whether the pair existed.
// Underfull nodes are not rebalanced (deletions are rare in the
// workloads; lookups remain correct and space is reclaimed when the
// tree is rebuilt). Like Insert, Delete is copy-on-write: shared
// nodes along the path are copied, never mutated.
func (t *Tree) Delete(key []byte, v int64) bool {
	repl, ok := t.delete(t.root, t.height, key, v)
	if ok {
		t.root = repl
	}
	return ok
}

func (t *Tree) delete(n node, height int, key []byte, v int64) (node, bool) {
	if height == 0 {
		lf := n.(*leaf)
		i := searchEntries(lf.entries, key)
		if i >= len(lf.entries) || !bytes.Equal(lf.entries[i].key, key) {
			return n, false
		}
		for j, existing := range lf.entries[i].vals {
			if existing != v {
				continue
			}
			lf = t.mutableLeaf(lf)
			e := &lf.entries[i]
			// Copy-on-shrink: removal must not disturb value slices
			// shared with older clones.
			vals := make([]int64, 0, len(e.vals)-1)
			vals = append(vals, e.vals[:j]...)
			vals = append(vals, e.vals[j+1:]...)
			e.vals = vals
			t.vals--
			if len(e.vals) == 0 {
				lf.entries = append(lf.entries[:i], lf.entries[i+1:]...)
				t.keys--
			}
			return lf, true
		}
		return n, false
	}
	in := n.(*interior)
	i := searchKeys(in.keys, key)
	repl, ok := t.delete(in.children[i], height-1, key, v)
	if !ok {
		return n, false
	}
	if repl != in.children[i] {
		in = t.mutableInterior(in)
		in.children[i] = repl
	}
	return in, true
}

func (t *Tree) findLeaf(key []byte) (*leaf, int) {
	n := t.root
	for h := t.height; h > 0; h-- {
		in := n.(*interior)
		n = in.children[searchKeys(in.keys, key)]
	}
	lf := n.(*leaf)
	return lf, searchEntries(lf.entries, key)
}

// Scan calls fn for every (key, value) pair with lo <= key < hi in
// ascending key order, stopping early if fn returns false. A nil hi
// means "no upper bound"; a nil lo starts at the smallest key.
func (t *Tree) Scan(lo, hi []byte, fn func(key []byte, v int64) bool) {
	t.scan(t.root, t.height, lo, hi, fn)
}

// scan descends the subtree in key order; it returns false when fn
// stopped the scan or the upper bound was reached. Leaves carry no
// next-pointer chain (threading one would break structural sharing
// across clones), so the range walk recurses through the interior
// nodes instead — one recursion per degree-wide node, negligible next
// to the per-entry callback.
func (t *Tree) scan(n node, height int, lo, hi []byte, fn func(key []byte, v int64) bool) bool {
	if height == 0 {
		lf := n.(*leaf)
		i := 0
		if lo != nil {
			i = searchEntries(lf.entries, lo)
		}
		for ; i < len(lf.entries); i++ {
			e := &lf.entries[i]
			if hi != nil && bytes.Compare(e.key, hi) >= 0 {
				return false
			}
			for _, v := range e.vals {
				if !fn(e.key, v) {
					return false
				}
			}
		}
		return true
	}
	in := n.(*interior)
	start := 0
	if lo != nil {
		start = searchKeys(in.keys, lo)
	}
	for i := start; i < len(in.children); i++ {
		// children[i] covers keys >= keys[i-1]; once that floor passes
		// the upper bound the walk is done.
		if hi != nil && i > start && bytes.Compare(in.keys[i-1], hi) >= 0 {
			return false
		}
		if i > start {
			lo = nil // only the first child needs the lower bound
		}
		if !t.scan(in.children[i], height-1, lo, hi, fn) {
			return false
		}
	}
	return true
}

// ScanAll calls fn for every pair in ascending key order.
func (t *Tree) ScanAll(fn func(key []byte, v int64) bool) { t.Scan(nil, nil, fn) }

// Min returns the smallest key, or nil if the tree is empty.
func (t *Tree) Min() []byte {
	n := t.root
	for h := t.height; h > 0; h-- {
		n = n.(*interior).children[0]
	}
	lf := n.(*leaf)
	if len(lf.entries) == 0 {
		return nil
	}
	return lf.entries[0].key
}

// Height returns the tree height (0 for a single-leaf tree), exposed
// for tests and statistics.
func (t *Tree) Height() int { return t.height }
