package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Malformed directives are themselves diagnostics.
func TestBadIgnore(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.BadIgnore, "xvetignore/a")
}

// Well-formed directives suppress matching diagnostics: the ok
// package is wall-to-wall rawsql violations, each with a reasoned
// ignore, and must report nothing.
func TestIgnoreSuppresses(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RawSQL, "xvetignore/ok")
}
