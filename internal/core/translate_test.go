package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/native"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func paperSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder("A").
		Element("A", "B").
		Element("B", "C", "G").
		Element("C", "D", "E").
		Element("E", "F").
		Element("G", "G").
		Attrs("A", "x").
		Attrs("D", "x").
		Text("F", "D").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func paperDoc(t testing.TB) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(
		`<A x="3"><B><C><D x="4">4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// runQuery translates a query and executes it against the shredded
// store, returning the selected element ids in document order.
func runQuery(t testing.TB, tr *Translator, st *shred.SchemaAwareStore, q string) []int64 {
	t.Helper()
	trans, err := tr.Translate(q)
	if err != nil {
		t.Fatalf("Translate(%q): %v", q, err)
	}
	res, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatalf("Run(%q = %s): %v", q, trans.SQL, err)
	}
	ids := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		ids = append(ids, r[0].I)
	}
	return ids
}

func setup(t testing.TB) (*Translator, *shred.SchemaAwareStore, *native.Evaluator) {
	t.Helper()
	s := paperSchema(t)
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	return New(s, nil), st, native.New(doc)
}

// check runs a query through both the translator+engine and the
// native oracle and compares element id sets.
func check(t *testing.T, tr *Translator, st *shred.SchemaAwareStore, ev *native.Evaluator, q string) {
	t.Helper()
	got := runQuery(t, tr, st, q)
	want, err := ev.ElementIDs(q)
	if err != nil {
		t.Fatalf("oracle(%q): %v", q, err)
	}
	want = mapTextToParent(ev, q, want)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		trans, _ := tr.Translate(q)
		t.Errorf("%s:\n got %v\nwant %v\nSQL: %s", q, got, want, trans.SQL)
	}
}

// mapTextToParent maps text-node results of the oracle to their
// parent element ids (the relational systems return element rows for
// text() steps).
func mapTextToParent(ev *native.Evaluator, q string, ids []int64) []int64 {
	items, err := ev.EvalString(q)
	if err != nil {
		return ids
	}
	seen := map[int64]bool{}
	var out []int64
	for _, it := range items {
		id := it.Node.ID
		if !it.IsAttr() && it.Node.Kind == xmltree.Text {
			id = it.Node.Parent.ID
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func TestPaperTable3Shapes(t *testing.T) {
	tr, _, _ := setup(t)

	// Table 3 (1): '/A[@x=3]/B/C//F' — relations A and F only, joined
	// with paths for F... with schema marking F is U-P and its unique
	// path matches, so even that join is omitted.
	trans, err := tr.Translate("/A[@x=3]/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 1 {
		t.Errorf("selects = %d", trans.Selects)
	}
	if trans.Joins != 2 { // A, F — no paths join thanks to U-P marking
		t.Errorf("joins = %d, SQL: %s", trans.Joins, trans.SQL)
	}
	if !strings.Contains(trans.SQL, "BETWEEN A.dewey_pos AND A.dewey_pos || X'FF'") {
		t.Errorf("missing Dewey descendant join: %s", trans.SQL)
	}
	if !strings.Contains(trans.SQL, "A.x = 3") {
		t.Errorf("missing attribute restriction: %s", trans.SQL)
	}

	// Without the Section 4.5 optimization the F relation joins paths
	// and filters by the Table 1 regex.
	opts := DefaultOptions()
	opts.PathFilterOmission = false
	tr2 := New(paperSchema(t), &opts)
	trans2, err := tr2.Translate("/A[@x=3]/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans2.SQL, "REGEXP_LIKE(F_paths.path, '^/A/B/C/(.+/)?F$')") {
		t.Errorf("expected path regex filter: %s", trans2.SQL)
	}

	// Table 3 (2): '/A[@x=3]/B' — FK join, no Dewey comparison.
	trans, err = tr.Translate("/A[@x=3]/B")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "B.par = A.id") {
		t.Errorf("expected FK join: %s", trans.SQL)
	}
	if strings.Contains(trans.SQL, "BETWEEN") {
		t.Errorf("unexpected Dewey join for child step: %s", trans.SQL)
	}

	// FK join disabled (ablation): the same query uses Dewey.
	opts = DefaultOptions()
	opts.FKChildParent = false
	tr3 := New(paperSchema(t), &opts)
	trans3, err := tr3.Translate("/A[@x=3]/B")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans3.SQL, "BETWEEN") {
		t.Errorf("expected Dewey join with FK disabled: %s", trans3.SQL)
	}
}

func TestBackwardPPFTranslation(t *testing.T) {
	tr, _, _ := setup(t)
	// Table 3 (3) shape: '//F/parent::E/ancestor::B'.
	trans, err := tr.Translate("//F/parent::E/ancestor::B")
	if err != nil {
		t.Fatal(err)
	}
	// F's path must match the backward regex (B is F-P/U-P but F's own
	// relation carries the filter since the backward pattern constrains
	// F's path). With marking, F is U-P and '/A/B/C/E/F' matches
	// '^.*/B/(.+/)?E/F$', so the filter is omitted entirely.
	if trans.Joins != 2 { // F, B
		t.Errorf("joins = %d, SQL: %s", trans.Joins, trans.SQL)
	}
	if !strings.Contains(trans.SQL, "F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF'") {
		t.Errorf("missing ancestor Dewey join: %s", trans.SQL)
	}
}

func TestHorizontalTranslation(t *testing.T) {
	tr, _, _ := setup(t)
	trans, err := tr.Translate("/A/B/C/following-sibling::G")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "G.dewey_pos > C.dewey_pos") || !strings.Contains(trans.SQL, "G.par = C.par") {
		t.Errorf("following-sibling condition wrong: %s", trans.SQL)
	}
	trans, err = tr.Translate("//D/following::F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "F.dewey_pos > D.dewey_pos || X'FF'") {
		t.Errorf("following condition wrong: %s", trans.SQL)
	}
}

func TestSQLSplitting(t *testing.T) {
	tr, _, _ := setup(t)
	// '/A/B/*' resolves to C and G: two UNION branches.
	trans, err := tr.Translate("/A/B/*")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 2 {
		t.Errorf("selects = %d, SQL: %s", trans.Selects, trans.SQL)
	}
	// Predicate ambiguity does NOT split: '/A/B[C/*]' keeps one select
	// with OR-ed EXISTS (D and E).
	trans, err = tr.Translate("/A/B[C/*]")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 1 {
		t.Errorf("selects = %d (predicates must not split), SQL: %s", trans.Selects, trans.SQL)
	}
	if got := strings.Count(trans.SQL, "EXISTS"); got != 2 {
		t.Errorf("EXISTS count = %d, SQL: %s", got, trans.SQL)
	}
}

func TestBackwardSimplePredicateUsesPathFilter(t *testing.T) {
	tr, _, _ := setup(t)
	// Table 5 (2) shape: predicates of backward simple paths fold into
	// path regexes, not structural joins.
	trans, err := tr.Translate("//F[parent::E or ancestor::G]")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(trans.SQL, "EXISTS") {
		t.Errorf("backward simple predicates must not use EXISTS: %s", trans.SQL)
	}
	// parent::E statically matches F's unique path; ancestor::G
	// statically fails; so the whole predicate folds away.
	if strings.Contains(trans.SQL, "REGEXP_LIKE") {
		t.Errorf("marking should have resolved the predicate statically: %s", trans.SQL)
	}

	// On an I-P relation the filter must materialize.
	trans, err = tr.Translate("//G[ancestor::G]")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "REGEXP_LIKE(G_paths.path") {
		t.Errorf("expected path regex for I-P relation: %s", trans.SQL)
	}
}

func TestStaticallyEmptyQueries(t *testing.T) {
	tr, st, _ := setup(t)
	for _, q := range []string{
		"/A/F",         // F is not a child of A
		"/B",           // B is not a document element
		"//Z",          // unknown element
		"//F[@zzz]",    // F has no such attribute
		"/A/B/C/D[@y]", // D has x only
	} {
		trans, err := tr.Translate(q)
		if err != nil {
			t.Fatalf("Translate(%q): %v", q, err)
		}
		res, err := st.DB.Run(trans.Stmt)
		if err != nil {
			t.Fatalf("Run(%q): %v", q, err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%q should be empty, got %d rows", q, len(res.Rows))
		}
	}
}

func TestEndToEndAgainstOracle(t *testing.T) {
	tr, st, ev := setup(t)
	queries := []string{
		"/A",
		"/A/B",
		"/A/B/C",
		"/A/B/C/D",
		"//F",
		"/A//F",
		"//G",
		"//G//G",
		"/A/*",
		"/A/B/*",
		"//C/*/F",
		"/descendant-or-self::G",
		"/A[@x=3]/B/C//F",
		"/A[@x=4]/B",
		"/A[@x]/B",
		"//F[. = 2]",
		"//F[text() = 2]",
		"/A/B[C/E/F=2]",
		"/A/B[C]",
		"/A/B[not(C)]",
		"/A/B[C and G]",
		"/A/B[C or G]",
		"/A/B[C and (D or G)]",
		"/A/B[C/D or C/E]",
		"//F/parent::E",
		"//F/ancestor::B",
		"//F/parent::E/ancestor::B",
		"//D/parent::C/parent::B",
		"//F/ancestor-or-self::F",
		"//G/ancestor::G",
		"/A/B/C/following-sibling::G",
		"/A/B/C/following-sibling::C",
		"//G/preceding-sibling::C",
		"//D/following::F",
		"//F/preceding::D",
		"//F[parent::E]",
		"//*[parent::E]",
		"//G[ancestor::G]",
		"//F[parent::E or ancestor::G]",
		"//D[parent::*/parent::B]",
		"/A/B[C/*]",
		"/A/B/C/D/text()",
		"/A/@x",
		"//D[@x]",
		"//D[@x='4']",
		"//D[@x=4]",
		"//E[count(F)=2]",
		"//E[count(F)=3]",
		"/A/B/C[2]",
		"/A/B/C[position()=1]",
		"//F[. * 2 = 4]",
		"//F[. >= 2 and . <= 3]",
		"//C[E/F > 5]",
		"//E[F = F]",
		"//D[. != /A/B/C/E/F]",
		"/A/B/C | /A/B/G",
		"//D | //F",
		"/A/B[./C]",
		"//B[G]",
		"//B[F=2]",
	}
	for _, q := range queries {
		check(t, tr, st, ev, q)
	}
}

func TestEndToEndWithOptimizationsOff(t *testing.T) {
	// The same queries must stay correct with every optimization off.
	s := paperSchema(t)
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	opts := Options{PathFilterOmission: false, FKChildParent: false}
	tr := New(s, &opts)
	ev := native.New(doc)
	for _, q := range []string{
		"/A/B/C", "//F", "/A[@x=3]/B/C//F", "//F/parent::E/ancestor::B",
		"/A/B/*", "/A/B[C/*]", "//F[parent::E or ancestor::G]", "//G//G",
		"/A/B/C/following-sibling::G", "//D/following::F",
	} {
		check(t, tr, st, ev, q)
	}
}

func TestUnsupportedConstructs(t *testing.T) {
	tr, _, _ := setup(t)
	for _, q := range []string{
		"//F[last()]",       // last() needs context size
		"//F[position()=1]", // positional on non-child step
		"/A/B/*[1]",         // positional on wildcard
		"//F[. = last()]",   // last() in comparison
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("Translate(%q) should fail", q)
		}
	}
}

func TestTranslateUnionShape(t *testing.T) {
	tr, _, _ := setup(t)
	trans, err := tr.Translate("/A/B/C | /A/B/G")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 2 {
		t.Errorf("selects = %d", trans.Selects)
	}
	if !strings.Contains(trans.SQL, "UNION") {
		t.Errorf("expected UNION: %s", trans.SQL)
	}
	if !strings.HasSuffix(trans.SQL, "ORDER BY dewey_pos") {
		t.Errorf("expected document-order sort: %s", trans.SQL)
	}
}

func TestRegexTable1(t *testing.T) {
	// Reproduce Table 1's fragment-to-regex mapping shapes.
	mk := func(q string) []*xpath.Step {
		p, err := xpath.ParsePath(q)
		if err != nil {
			t.Fatal(err)
		}
		steps, _, err := normalizeSteps(p.Steps)
		if err != nil {
			t.Fatal(err)
		}
		return steps
	}
	cases := []struct {
		steps    []*xpath.Step
		anchored bool
		want     string
	}{
		{mk("//B/C"), true, "^/(.+/)?B/C$"},
		{mk("/A/B//F"), true, "^/A/B/(.+/)?F$"},
		{mk("//C/*/F"), true, "^/(.+/)?C/[^/]+/F$"},
		{mk("/A/B/C"), true, "^/A/B/C$"},
	}
	for _, c := range cases {
		got, err := forwardRegex(c.steps, c.anchored, "")
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("forwardRegex = %q, want %q", got, c.want)
		}
	}
	// Backward: Table 1 row 4 '/parent::F/ancestor::B/parent::A'
	// constrains the context's path (head name pattern 'X').
	p, _ := xpath.ParsePath("/parent::F/ancestor::B/parent::A")
	steps, _, err := normalizeSteps(p.Steps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := backwardRegex(steps, "X")
	if err != nil {
		t.Fatal(err)
	}
	if got != "^.*/A/B/(.+/)?F/X$" {
		t.Errorf("backwardRegex = %q", got)
	}
}

func TestPPFSplitting(t *testing.T) {
	split := func(q string) []*ppf {
		p, err := xpath.ParsePath(q)
		if err != nil {
			t.Fatal(err)
		}
		frags, _, err := splitPPFs(p.Steps)
		if err != nil {
			t.Fatal(err)
		}
		return frags
	}
	// '/A/B/C//F' is one forward PPF.
	if frags := split("/A/B/C//F"); len(frags) != 1 || frags[0].kind != ppfForward || len(frags[0].steps) != 4 {
		t.Errorf("unexpected split of forward path: %d frags", len(frags))
	}
	// A predicate on an intermediate step closes the fragment.
	if frags := split("/A[@x=3]/B/C//F"); len(frags) != 2 {
		t.Errorf("predicate must close the PPF: %d frags", len(frags))
	}
	// Horizontal steps are single-step PPFs.
	if frags := split("/A/B/following-sibling::B/C"); len(frags) != 3 ||
		frags[1].kind != ppfHorizontal {
		t.Errorf("horizontal split wrong")
	}
	// Backward run groups.
	if frags := split("//F/parent::E/ancestor::B"); len(frags) != 2 || frags[1].kind != ppfBackward || len(frags[1].steps) != 2 {
		t.Errorf("backward split wrong")
	}
}
