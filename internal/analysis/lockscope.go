package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
)

// LockScope flags critical sections in internal/engine that extend
// across operations with unbounded or externally controlled latency:
// yield/emit callbacks (dynamic calls), channel operations, and
// failpoint sites. The executor's hot structures (pattern cache, hash
// builds, plan cache) are shared across morsel workers; holding their
// mutexes across such operations converts a slow row into a convoy —
// or, with failpoint.Sleep armed, a deadlocked chaos run.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "no sync.Mutex/RWMutex held across yield callbacks, channel operations, or " +
		"failpoint sites in internal/engine; shrink the critical section to the map/slice " +
		"operation it protects",
	Run: runLockScope,
}

func runLockScope(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockScope(pass, fd)
		}
	}
	return nil
}

// lockEnv is the may-held lockset: rendered receiver expressions of
// mutexes that may be locked at this point on some path (union over
// predecessors — a convoy on one path is still a convoy).
type lockEnv map[string]bool

func checkLockScope(pass *Pass, fd *ast.FuncDecl) {
	// Fast pre-filter: no Lock call, nothing to do.
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, kind := mutexOp(pass, call); kind == lockAcquire {
				found = true
			}
		}
		return true
	})
	if !found {
		return
	}

	g := cfg.New(fd.Name.Name, fd.Body)
	n := len(g.Blocks)
	in := make([]lockEnv, n)
	out := make([]lockEnv, n)
	in[g.Entry.Index] = lockEnv{}
	work := []*cfg.Block{g.Entry}
	inWork := make([]bool, n)
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		if b != g.Entry {
			env := lockEnv{}
			for _, p := range b.Preds {
				for k := range out[p.Index] {
					env[k] = true
				}
			}
			in[b.Index] = env
		}
		env := cloneLockEnv(in[b.Index])
		for _, node := range b.Nodes {
			lockTransfer(pass, node, env)
		}
		if !lockEnvEqual(env, out[b.Index]) {
			out[b.Index] = env
			for _, s := range b.Succs {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}

	// Report: walk each block replaying the transfer, checking every
	// node against the locks held when it executes.
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		env := cloneLockEnv(in[b.Index])
		for _, node := range b.Nodes {
			if len(env) > 0 {
				reportHeldAcross(pass, node, env)
			}
			lockTransfer(pass, node, env)
		}
	}
}

func cloneLockEnv(env lockEnv) lockEnv {
	c := make(lockEnv, len(env))
	for k := range env {
		c[k] = true
	}
	return c
}

func lockEnvEqual(a, b lockEnv) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

type mutexOpKind int

const (
	notMutexOp mutexOpKind = iota
	lockAcquire
	lockRelease
)

// mutexOp classifies a call as Lock/RLock (acquire) or
// Unlock/RUnlock (release) on a sync.Mutex or sync.RWMutex, returning
// the rendered receiver expression as the lock key.
func mutexOp(pass *Pass, call *ast.CallExpr) (string, mutexOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", notMutexOp
	}
	var kind mutexOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", notMutexOp
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", notMutexOp
	}
	obj := selection.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", notMutexOp
	}
	return exprText(pass.Fset, sel.X), kind
}

// lockTransfer updates the may-held lockset across one CFG node.
// defer x.Unlock() does not release: the lock is held for the rest of
// the function (scoped-unlock style is fine when the body is pure map
// access — reportHeldAcross only fires on risky operations).
func lockTransfer(pass *Pass, n ast.Node, env lockEnv) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // deferred release happens at return, not here
		case *ast.CallExpr:
			if key, kind := mutexOp(pass, x); kind == lockAcquire {
				env[key] = true
			} else if kind == lockRelease {
				delete(env, key)
			}
		}
		return true
	})
}

// reportHeldAcross flags risky operations inside node while any lock
// in env is held.
func reportHeldAcross(pass *Pass, n ast.Node, env lockEnv) {
	held := heldNames(env)
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send while %s is held; shrink the critical section", held)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(), "channel receive while %s is held; shrink the critical section", held)
			}
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "select while %s is held; shrink the critical section", held)
			return false
		case *ast.CallExpr:
			if _, kind := mutexOp(pass, x); kind != notMutexOp {
				return true // lock ops themselves are the critical section
			}
			if isFailpointCall(pass, x) {
				pass.Reportf(x.Pos(),
					"failpoint site while %s is held; an armed Sleep/Panic would stall every "+
						"worker contending for the lock", held)
				return true
			}
			if isDynamicCall(pass, x) {
				pass.Reportf(x.Pos(),
					"dynamic call %s while %s is held; yield/emit callbacks run arbitrary "+
						"user-plan code and must not execute inside a critical section",
					exprText(pass.Fset, x.Fun), held)
			}
		}
		return true
	})
}

func heldNames(env lockEnv) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Stable order for deterministic messages.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}

func isFailpointCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return strings.HasSuffix(pass.importedPkg(sel.X), "internal/failpoint")
}

// isDynamicCall reports whether the callee is not statically known: a
// func-typed variable/field/parameter or an interface method. Static
// funcs, methods on concrete types, builtins, and conversions are not
// dynamic.
func isDynamicCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun].(type) {
		case *types.Var:
			return true // func-typed local/param
		}
		return false
	case *ast.SelectorExpr:
		if selection, ok := pass.TypesInfo.Selections[fun]; ok {
			switch selection.Kind() {
			case types.FieldVal:
				return true // func-typed field
			case types.MethodVal, types.MethodExpr:
				recv := selection.Recv()
				if types.IsInterface(recv) {
					return true // interface method dispatch
				}
			}
			return false
		}
		// Package-qualified function: static.
		return false
	case *ast.FuncLit:
		return false // direct invocation, statically known body
	}
	return false
}

// exprText renders a short source form of an expression for messages
// and lock keys.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
