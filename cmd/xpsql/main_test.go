package main

import (
	"os"
	"path/filepath"
	"testing"
)

func testdata(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "testdata", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunTranslateOnly(t *testing.T) {
	err := run(testdata(t, "figure1.schema"), false, "aware", "", false, false, false,
		[]string{"/A[@x=3]/B/C//F"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithExecution(t *testing.T) {
	for _, mapping := range []string{"aware", "edge", "accel"} {
		err := run(testdata(t, "figure1.schema"), false, mapping, testdata(t, "figure1.xml"),
			true, false, false, []string{"/A/B/C//F", "//G"})
		if err != nil {
			t.Fatalf("mapping %s: %v", mapping, err)
		}
	}
}

func TestRunXSDSchema(t *testing.T) {
	err := run(testdata(t, "figure1.xsd"), true, "aware", testdata(t, "figure1.xml"),
		false, false, false, []string{"//F"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunInferredSchema(t *testing.T) {
	err := run("", false, "aware", testdata(t, "figure1.xml"), false, true, true,
		[]string{"/A/B"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, "aware", "", false, false, false, []string{"//F"}); err == nil {
		t.Error("aware mapping without schema should fail")
	}
	if err := run(testdata(t, "figure1.schema"), false, "bogus", testdata(t, "figure1.xml"), false, false, false, []string{"//F"}); err == nil {
		t.Error("unknown mapping should fail")
	}
	if err := run(testdata(t, "figure1.schema"), false, "aware", "", false, false, false, []string{"///bad"}); err == nil {
		t.Error("bad query should fail")
	}
	if err := run("nosuchfile", false, "aware", "", false, false, false, []string{"//F"}); err == nil {
		t.Error("missing schema file should fail")
	}
	if err := run(testdata(t, "figure1.schema"), false, "aware", "nosuchdoc.xml", false, false, false, []string{"//F"}); err == nil {
		t.Error("missing document should fail")
	}
}
