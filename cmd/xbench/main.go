// Command xbench regenerates the paper's evaluation tables and
// figures (Section 5, Appendix C) on the embedded engine.
//
// Usage:
//
//	xbench -experiment fig3|appc-small|appc-large|appc-dblp|joins|\
//	                   ablate-pathfilter|ablate-fkjoin|all
//	       [-scale N] [-reps N] [-budget 60s] [-seed N] [-noverify]
//
// Scale 1 approximates the paper's small (12 MB) XMark document;
// appc-large uses 10x (the paper's 113 MB document). Timings cannot
// match a 2006 Oracle installation; the reproduction target is the
// relative shape of each table (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	scale := flag.Float64("scale", 1, "workload scale (1 = paper's small document)")
	reps := flag.Int("reps", 5, "timed repetitions per query (the paper used 5)")
	budget := flag.Duration("budget", 60*time.Second, "per-query budget; slower runs print '~' like the paper")
	seed := flag.Int64("seed", 42, "generator seed")
	noverify := flag.Bool("noverify", false, "skip cross-checking every system against the oracle")
	flag.Parse()

	if err := run(*experiment, *scale, *reps, *budget, *seed, !*noverify); err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
}

func run(experiment string, scale float64, reps int, budget time.Duration, seed int64, verify bool) error {
	opts := bench.Opts{Reps: reps, Budget: budget, Verify: verify}

	xmarkAt := func(s float64) (*bench.Workload, error) {
		fmt.Fprintf(os.Stderr, "generating and loading XMark workload (scale %g)...\n", s)
		return bench.NewXMark(s, seed)
	}
	dblpAt := func(s float64) (*bench.Workload, error) {
		fmt.Fprintf(os.Stderr, "generating and loading DBLP workload (scale %g)...\n", s)
		return bench.NewDBLP(s, seed)
	}

	show := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		return nil
	}

	switch experiment {
	case "fig3":
		x, err := xmarkAt(scale)
		if err != nil {
			return err
		}
		d, err := dblpAt(scale)
		if err != nil {
			return err
		}
		return show(bench.Fig3([]*bench.Workload{x, d}, opts))
	case "appc-small":
		w, err := xmarkAt(scale)
		if err != nil {
			return err
		}
		return show(bench.AppendixC(w, opts))
	case "appc-large":
		w, err := xmarkAt(scale * 10)
		if err != nil {
			return err
		}
		return show(bench.AppendixC(w, opts))
	case "appc-dblp":
		w, err := dblpAt(scale)
		if err != nil {
			return err
		}
		return show(bench.AppendixC(w, opts))
	case "joins":
		w, err := xmarkAt(minScale(scale, 0.05))
		if err != nil {
			return err
		}
		if err := show(bench.JoinCounts(w)); err != nil {
			return err
		}
		d, err := dblpAt(minScale(scale, 0.05))
		if err != nil {
			return err
		}
		return show(bench.JoinCounts(d))
	case "ablate-pathfilter":
		w, err := xmarkAt(scale)
		if err != nil {
			return err
		}
		return show(bench.AblatePathFilter(w, opts))
	case "ablate-fkjoin":
		w, err := xmarkAt(scale)
		if err != nil {
			return err
		}
		return show(bench.AblateFKJoin(w, opts))
	case "all":
		x, err := xmarkAt(scale)
		if err != nil {
			return err
		}
		d, err := dblpAt(scale)
		if err != nil {
			return err
		}
		if err := show(bench.JoinCounts(x)); err != nil {
			return err
		}
		if err := show(bench.Fig3([]*bench.Workload{x, d}, opts)); err != nil {
			return err
		}
		if err := show(bench.AppendixC(x, opts)); err != nil {
			return err
		}
		if err := show(bench.AppendixC(d, opts)); err != nil {
			return err
		}
		if err := show(bench.AblatePathFilter(x, opts)); err != nil {
			return err
		}
		return show(bench.AblateFKJoin(x, opts))
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func minScale(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
