// Violation cases: synopsis field writes from outside the package.
package engine

import "statflow/internal/synopsis"

type tableState struct {
	syn *synopsis.Table
}

func corrupt(st *tableState, c *synopsis.Col) {
	c.Count++        // want `direct write to synopsis field Count outside internal/synopsis`
	c.Nulls = 0      // want `direct write to synopsis field Nulls outside internal/synopsis`
	st.syn.NRows = 7 // want `direct write to synopsis field NRows outside internal/synopsis`
	leak := &c.Count // want `direct write to synopsis field Count outside internal/synopsis`
	_ = leak
}

// Reads and API calls are the sanctioned path.
func ok(st *tableState, c *synopsis.Col) int64 {
	c.Add(false)
	st.syn.AddRow()
	return st.syn.Rows() + c.Count
}
