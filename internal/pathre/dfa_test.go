package pathre

import (
	"strings"
	"testing"
)

// corpusPatterns mirrors the shapes the translators emit for the
// paths relation (DESIGN.md section 6): anchored absolute paths,
// descendant closures, ancestor prefixes, alternations, and the
// segment-wise forms the reference automaton uses.
var corpusPatterns = []string{
	`^/(.+/)?keyword$`,
	`^.*/listitem/(.+/)?keyword$`,
	`^/site/people/person$`,
	`^([^/]+/)*mail$`,
	`^/(.+/)?keyword/(.+/)?bold$`,
	`^/site(/.+)?$`,
	`^.*/(keyword|bold|emph)$`,
	`^/(a|b)+(/c)?$`,
	`^/a/b$`,
	`^.*text$`,
	`(/[^/]+)+`,
	`^/dblp/(article|inproceedings)/author$`,
}

var dfaInputs = []string{
	"",
	"/",
	"//",
	"/keyword",
	"/a/keyword",
	"/a/b/keyword",
	"keyword",
	"/listitem/keyword",
	"/x/listitem/y/keyword",
	"/x/listitem/keyword/bold",
	"/site",
	"/site/people/person",
	"/site/people/person/name",
	"mail",
	"a/mail",
	"/a/b/c/mail",
	"/a/b",
	"/a/b/c",
	"/b/c",
	"sometext",
	"/dblp/article/author",
	"/dblp/phdthesis/author",
	"///a",
	"/keyword/",
	strings.Repeat("/seg", 64) + "/keyword",
}

func TestDFAMatchesNFA(t *testing.T) {
	for _, pat := range corpusPatterns {
		re, err := Compile(pat)
		if err != nil {
			t.Fatalf("Compile(%q): %v", pat, err)
		}
		d, err := CompileDFA(re)
		if err != nil {
			t.Fatalf("CompileDFA(%q): %v", pat, err)
		}
		if d.Pattern() != pat {
			t.Fatalf("Pattern() = %q, want %q", d.Pattern(), pat)
		}
		for _, in := range dfaInputs {
			want := re.match(in) // the NFA simulation, bypassing fast paths
			if got := d.MatchString(in); got != want {
				t.Errorf("pattern %q input %q: DFA=%v NFA=%v", pat, in, got, want)
			}
		}
	}
}

func TestVerifyDFACorpus(t *testing.T) {
	for _, pat := range corpusPatterns {
		re := MustCompile(pat)
		d, err := CompileDFA(re)
		if err != nil {
			t.Fatalf("CompileDFA(%q): %v", pat, err)
		}
		if err := VerifyDFA(re, d); err != nil {
			t.Errorf("VerifyDFA(%q): %v", pat, err)
		}
		if d.States() < 2 && d.start != 0 {
			t.Errorf("pattern %q: %d states with non-sink start", pat, d.States())
		}
	}
}

// TestVerifyDFACatchesCorruption checks the proof has teeth: flipping
// an accept bit or redirecting a transition must be detected.
func TestVerifyDFACatchesCorruption(t *testing.T) {
	re := MustCompile(`^/(.+/)?keyword$`)
	d, err := CompileDFA(re)
	if err != nil {
		t.Fatal(err)
	}
	for st := 1; st < d.States(); st++ {
		d.accept[st] = !d.accept[st]
		if err := VerifyDFA(re, d); err == nil {
			t.Errorf("flipped accept[%d] not detected", st)
		}
		d.accept[st] = !d.accept[st]
	}
	if len(d.trans) > d.nclass { // skip the sink's row
		i := d.nclass // first non-sink transition
		orig := d.trans[i]
		d.trans[i] = (orig + 1) % int32(d.States())
		if d.trans[i] != orig {
			if err := VerifyDFA(re, d); err == nil {
				t.Errorf("redirected trans[%d] not detected", i)
			}
			d.trans[i] = orig
		}
	}
}

func TestDFAMatchAll(t *testing.T) {
	d, err := CompileDFA(MustCompile(`^/(.+/)?keyword$`))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(dfaInputs))
	d.MatchAll(dfaInputs, out)
	for i, in := range dfaInputs {
		if want := d.MatchString(in); out[i] != want {
			t.Errorf("MatchAll[%d] (%q) = %v, want %v", i, in, out[i], want)
		}
	}
}

func TestDFAStateBound(t *testing.T) {
	// Subset construction on (a|b|...)*x...x-style patterns is
	// exponential; the compiler must refuse, not hang or truncate.
	pat := "^(a|b)*a" + strings.Repeat("(a|b)", 16) + "$"
	re, err := Compile(pat)
	if err != nil {
		t.Skipf("Compile(%q): %v", pat, err)
	}
	if _, err := CompileDFA(re); err == nil {
		t.Skip("pattern determinized within bounds on this build")
	}
}

func TestHasLiteralPath(t *testing.T) {
	cases := []struct {
		pat  string
		want bool
	}{
		{`^/site/people$`, true},
		{`^/site/.*name$`, true},
		{`^/(.+/)?keyword$`, false},
		{`keyword`, false},
	}
	for _, c := range cases {
		if got := MustCompile(c.pat).HasLiteralPath(); got != c.want {
			t.Errorf("HasLiteralPath(%q) = %v, want %v", c.pat, got, c.want)
		}
	}
}

// FuzzPathDFA fuzzes the differential property the engine relies on:
// whenever a pattern compiles under both Compile and CompileDFA, the
// DFA's verdict equals the NFA's on every input. Small automata also
// go through the full VerifyDFA product proof.
func FuzzPathDFA(f *testing.F) {
	for _, pat := range corpusPatterns {
		f.Add(pat, "/a/listitem/keyword")
		f.Add(pat, "")
	}
	f.Add(`^/a(/b)?$`, "/a/b")
	f.Add(`^[^/]+$`, "ab")
	f.Fuzz(func(t *testing.T, pat, input string) {
		if len(pat) > 64 || len(input) > 256 {
			return
		}
		re, err := Compile(pat)
		if err != nil {
			return
		}
		d, err := CompileDFA(re)
		if err != nil {
			return // state bound exceeded: the engine falls back to the NFA
		}
		if got, want := d.MatchString(input), re.match(input); got != want {
			t.Fatalf("pattern %q input %q: DFA=%v NFA=%v", pat, input, got, want)
		}
		if d.States() <= 64 {
			if err := VerifyDFA(re, d); err != nil {
				t.Fatalf("VerifyDFA(%q): %v", pat, err)
			}
		}
	})
}
