// Outside internal/engine and xrel the analyzer keeps quiet:
// context.Background is the correct root context for a main loop or a
// test harness.
package ok

import "context"

func harness() context.Context {
	return context.Background()
}
