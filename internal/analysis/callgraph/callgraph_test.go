package callgraph_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

var update = flag.Bool("update", false, "rewrite the golden call-graph dumps")

func loadGraph(t *testing.T, importPath string) *callgraph.Graph {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(importPath)
	if err != nil {
		t.Fatalf("load %s: %v", importPath, err)
	}
	return callgraph.Build(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
}

func fixtureGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "cgtest")
	pkg, err := loader.LoadDir(dir, "cgtest")
	if err != nil {
		t.Fatalf("load cgtest: %v", err)
	}
	return callgraph.Build(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (create with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: dump differs from golden (re-run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestFixtureDump pins every edge kind's golden form on the synthetic
// fixture package.
func TestFixtureDump(t *testing.T) {
	checkGolden(t, "cgtest.golden", fixtureGraph(t).Dump())
}

// TestGoldenEngineDumps pins the reachable subgraphs of the commit
// protocol's three anchor functions in the real engine: the WriteBatch
// commit path, the checkpoint writer, and the parallel collector.
func TestGoldenEngineDumps(t *testing.T) {
	g := loadGraph(t, "repro/internal/engine")
	cases := []struct{ file, fn string }{
		{"engine_commit.golden", "(*WriteBatch).Commit"},
		{"engine_writecheckpoint.golden", "writeCheckpoint"},
		{"engine_collectparallel.golden", "(*execCtx).collectParallel"},
	}
	for _, c := range cases {
		n := g.Named(c.fn)
		if n == nil {
			t.Fatalf("engine has no function %s", c.fn)
		}
		checkGolden(t, c.file, g.DumpFrom(n))
	}
}

// TestPathTo checks the witness builder used in analyzer diagnostics.
func TestPathTo(t *testing.T) {
	g := fixtureGraph(t)
	run, helper := g.Named("run"), g.Named("helper")
	if run == nil || helper == nil {
		t.Fatal("fixture nodes missing")
	}
	path := callgraph.PathTo([]*callgraph.Node{run}, helper, callgraph.Static)
	if len(path) != 2 || path[0] != "run" || path[1] != "helper" {
		t.Errorf("PathTo(run, helper) = %v, want [run helper]", path)
	}
	if p := callgraph.PathTo([]*callgraph.Node{helper}, run, callgraph.Static); p != nil {
		t.Errorf("PathTo(helper, run) = %v, want nil (no reverse path)", p)
	}
}

// TestFreshReturns checks the constructor summary: leaf constructors,
// fixpoint chains, and parameter-returning functions.
func TestFreshReturns(t *testing.T) {
	g := fixtureGraph(t)
	fresh := g.FreshReturns(nil)
	byName := map[string]bool{}
	for n, v := range fresh {
		byName[n.Name] = v
	}
	for _, want := range []string{"newT", "wrap"} {
		if !byName[want] {
			t.Errorf("%s not summarized fresh", want)
		}
	}
	for _, notFresh := range []string{"identity", "run", "helper"} {
		if byName[notFresh] {
			t.Errorf("%s wrongly summarized fresh", notFresh)
		}
	}
}

// TestInterfaceEdges asserts dynamic dispatch fans out to every
// implementation, without relying on the golden text.
func TestInterfaceEdges(t *testing.T) {
	g := fixtureGraph(t)
	call := g.Named("call")
	if call == nil {
		t.Fatal("no node call")
	}
	var targets []string
	for _, e := range call.Out {
		if e.Kind == callgraph.Interface {
			targets = append(targets, e.Callee.Name)
		}
	}
	joined := strings.Join(targets, " ")
	for _, want := range []string{"(A).Do", "(*B).Do"} {
		if !strings.Contains(joined, want) {
			t.Errorf("interface dispatch misses %s (got %v)", want, targets)
		}
	}
}
