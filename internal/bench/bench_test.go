package bench

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestAllSystemsAgreeOnXMark is the central integration test: every
// benchmark query must return the oracle's node set on every system.
func TestAllSystemsAgreeOnXMark(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	w, err := NewXMark(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		n, err := w.Verify(q)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		t.Logf("%s: %d nodes", q.ID, n)
	}
}

func TestAllSystemsAgreeOnDBLP(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	w, err := NewDBLP(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		n, err := w.Verify(q)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		t.Logf("%s: %d nodes", q.ID, n)
	}
}

func TestSupportedMatrix(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Supported(Commercial, "Q1") {
		t.Error("commercial stand-in should report N/A for Q1, as in the paper")
	}
	if !w.Supported(Commercial, "Q23") || !w.Supported(Commercial, "QA") {
		t.Error("commercial stand-in should support Q23 and QA")
	}
	if !w.Supported(PPF, "Q1") {
		t.Error("PPF supports everything")
	}
	d, err := NewDBLP(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Supported(Commercial, "QD1") {
		t.Error("DBLP workload has no commercial restriction in the paper's table")
	}
}

func TestMeasure(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := w.Query("Q1")
	m := w.Measure(PPF, q, 3, 0)
	if m.ErrorMsg != "" || m.Nodes == 0 || m.Avg <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.Cell() == "N/A" || m.Cell() == "ERR" {
		t.Fatalf("cell = %s", m.Cell())
	}
	// Unsupported -> skipped.
	m = w.Measure(Commercial, q, 1, 0)
	if !m.Skipped || m.Cell() != "N/A" {
		t.Fatalf("commercial Q1 = %+v", m)
	}
	// Tiny budget forces a timeout marker.
	m = w.Measure(Accel, q, 1, time.Nanosecond)
	if !m.Timeout || m.Cell() != "~" {
		t.Fatalf("timeout cell = %+v", m)
	}
}

// TestParallelAgreesWithOracle runs the SQL-based systems with the
// morsel executor enabled and checks the node sets against the native
// oracle — the same agreement bar the serial path must meet.
func TestParallelAgreesWithOracle(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	w, err := NewXMark(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		want, err := w.OracleIDs(q)
		if err != nil {
			t.Fatalf("oracle %s: %v", q.ID, err)
		}
		for _, sys := range []System{PPF, EdgePPF, Accel} {
			got, err := w.RunParallel(sys, q, 4)
			if err != nil {
				t.Errorf("%s on %s (parallel): %v", sys, q.ID, err)
				continue
			}
			if !equalIDs(got, want) {
				t.Errorf("%s on %s (parallel): %d ids, oracle has %d (first diff: %s)",
					sys, q.ID, len(got), len(want), firstDiff(got, want))
			}
		}
	}
}

// TestMeasureCacheHitRate checks that Measure routes repetitions
// through the engine plan cache: with the statement translated once,
// everything after the first planning should hit.
func TestMeasureCacheHitRate(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := w.Query("Q1")
	m := w.Measure(PPF, q, 4, 0)
	if m.ErrorMsg != "" {
		t.Fatalf("measurement = %+v", m)
	}
	// 5 executions (1 warm-up + 4 reps): at most the first can miss.
	if m.CacheHitRate < 0.79 {
		t.Errorf("CacheHitRate = %.2f, want >= 0.8", m.CacheHitRate)
	}
	// Non-SQL systems report no cache activity.
	m = w.Measure(Staircase, q, 2, 0)
	if m.CacheHitRate != 0 {
		t.Errorf("staircase CacheHitRate = %.2f, want 0", m.CacheHitRate)
	}
}

func TestQueryLookup(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Query("Q1"); !ok {
		t.Error("Q1 missing")
	}
	if _, ok := w.Query("nope"); ok {
		t.Error("bogus query found")
	}
}

// TestRunBudgetLimits checks the workload-level resource budgets
// reach the engine: a tiny row budget fails SQL-based systems with
// the typed error, and lifting it restores the oracle's result.
func TestRunBudgetLimits(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := w.Query("Q23")
	if !ok {
		t.Fatal("no Q23")
	}
	want, err := w.Run(PPF, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("Q23 returns %d nodes; need >= 2 for a meaningful row budget", len(want))
	}
	w.MaxRows = 1
	if _, err := w.Run(PPF, q); !errors.Is(err, engine.ErrRowBudget) {
		t.Fatalf("row-limited run: err = %v, want ErrRowBudget", err)
	}
	m := w.Measure(PPF, q, 1, 0)
	if m.ErrorMsg == "" {
		t.Error("Measure under exceeded budget did not report an error cell")
	}
	w.MaxRows = 0
	got, err := w.Run(PPF, q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, want) {
		t.Fatal("result differs after lifting the budget")
	}
}
