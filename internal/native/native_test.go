package native

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

// fig1 builds the paper's Figure 1(b) document with values added so
// predicates have something to compare: A@x=3, D text 4, F texts 2, 7.
func fig1(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(
		`<A x="3"><B><C><D>4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// eval returns element ids for a query.
func eval(t *testing.T, doc *xmltree.Document, q string) []int64 {
	t.Helper()
	ids, err := New(doc).ElementIDs(q)
	if err != nil {
		t.Fatalf("Eval(%q): %v", q, err)
	}
	if ids == nil {
		ids = []int64{}
	}
	return ids
}

func TestBasicPaths(t *testing.T) {
	doc := fig1(t)
	// Element ids in this doc (text nodes get ids too):
	// A=1 B=2 C=3 D=4 (text=5) C=6 E=7 F=8 (9) F=10 (11) G=12 B=13 G=14 G=15
	cases := map[string][]int64{
		"/A":                     {1},
		"/A/B":                   {2, 13},
		"/A/B/C":                 {3, 6},
		"/A/B/C/D":               {4},
		"/A/B/C/E/F":             {8, 10},
		"//F":                    {8, 10},
		"/A//F":                  {8, 10},
		"//G":                    {12, 14, 15},
		"/A/*":                   {2, 13},
		"/A/B/*":                 {3, 6, 12, 14},
		"//C/*/F":                {8, 10},
		"/descendant-or-self::G": {12, 14, 15},
		"//G//G":                 {15},
		"/A/B/C/E/F/text()":      {9, 11},
		"/B":                     {},
		"//Z":                    {},
	}
	for q, want := range cases {
		if got := eval(t, doc, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestBackwardAxes(t *testing.T) {
	doc := fig1(t)
	cases := map[string][]int64{
		"//F/parent::E":           {7},
		"//F/ancestor::B":         {2},
		"//F/ancestor::*":         {1, 2, 6, 7},
		"//F/ancestor-or-self::F": {8, 10},
		"//G/ancestor::G":         {14},
		"//D/parent::C/parent::B": {2},
		"//F/..":                  {7},
	}
	for q, want := range cases {
		if got := eval(t, doc, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestHorizontalAxes(t *testing.T) {
	doc := fig1(t)
	cases := map[string][]int64{
		"/A/B/C/following-sibling::G": {12},
		"/A/B/C/following-sibling::C": {6},
		"//G/preceding-sibling::C":    {3, 6},
		"//D/following::F":            {8, 10},
		"//F/preceding::D":            {4},
		"//E/following::*":            {12, 13, 14, 15},
		"//B/preceding::*":            {2, 3, 4, 6, 7, 8, 10, 12},
	}
	for q, want := range cases {
		if got := eval(t, doc, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	doc := fig1(t)
	cases := map[string][]int64{
		"/A[@x=3]/B":             {2, 13},
		"/A[@x=4]/B":             {},
		"/A[@x]/B":               {2, 13},
		"/A[@y]/B":               {},
		"//F[. = 2]":             {8},
		"//*[F=2]":               {7},
		"/A/B[C/E/F=2]":          {2},
		"/A/B[C]":                {2},
		"/A/B[not(C)]":           {13},
		"/A/B[C and G]":          {2},
		"/A/B[C or G]":           {2, 13},
		"/A/B[C and (D or G)]":   {2},
		"//F[2]":                 {10},
		"//F[position()=1]":      {8},
		"//F[last()]":            {10},
		"//E[count(F)=2]":        {7},
		"//F[text()=2]":          {8},
		"//C[E/F > 5]":           {6},
		"//F[. >= 2 and . <= 3]": {8},
		"//F[. = 2 or . = 7]":    {8, 10},
		"//G[ancestor::G]":       {15},
		"//*[parent::E]":         {8, 10},
	}
	for q, want := range cases {
		if got := eval(t, doc, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestPositionalOnReverseAxis(t *testing.T) {
	doc := fig1(t)
	// The nearest ancestor has position 1 on the ancestor axis.
	if got := eval(t, doc, "//F/ancestor::*[1]"); !reflect.DeepEqual(got, []int64{7}) {
		t.Errorf("nearest ancestor = %v", got)
	}
	// First preceding sibling of G(12) counted nearest-first is C(6).
	if got := eval(t, doc, "/A/B/G/preceding-sibling::*[1]"); !reflect.DeepEqual(got, []int64{6}) {
		t.Errorf("nearest preceding sibling = %v", got)
	}
}

func TestJoinPredicate(t *testing.T) {
	doc := fig1(t)
	// D's text (4) equals no F text; F texts are 2 and 7.
	if got := eval(t, doc, "/A/B[C/D = C/E/F]"); len(got) != 0 {
		t.Errorf("join predicate = %v", got)
	}
	// Compare F against itself through two paths.
	if got := eval(t, doc, "//E[F = F]"); !reflect.DeepEqual(got, []int64{7}) {
		t.Errorf("self join predicate = %v", got)
	}
	// Absolute path in predicate.
	if got := eval(t, doc, "//D[. != /A/B/C/E/F]"); !reflect.DeepEqual(got, []int64{4}) {
		t.Errorf("absolute path predicate = %v", got)
	}
}

func TestUnion(t *testing.T) {
	doc := fig1(t)
	got := eval(t, doc, "//D | //F | //D")
	if !reflect.DeepEqual(got, []int64{4, 8, 10}) {
		t.Errorf("union = %v", got)
	}
}

func TestAttributesAsItems(t *testing.T) {
	doc := fig1(t)
	items, err := New(doc).EvalString("/A/@x")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || !items[0].IsAttr() || items[0].StringValue() != "3" {
		t.Fatalf("attr items = %v", items)
	}
	// ElementIDs maps the attribute to its owner.
	ids := eval(t, doc, "/A/@x")
	if !reflect.DeepEqual(ids, []int64{1}) {
		t.Errorf("attr owner ids = %v", ids)
	}
}

func TestArithmeticPredicates(t *testing.T) {
	doc := fig1(t)
	cases := map[string][]int64{
		"//F[. * 2 = 4]":   {8},
		"//F[. + 1 = 8]":   {10},
		"//F[. div 7 = 1]": {10},
		"//F[. mod 2 = 0]": {8},
		"//F[. = 9 - 2]":   {10},
		"//F[. = -2 + 4]":  {8},
	}
	for q, want := range cases {
		if got := eval(t, doc, q); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestDocumentOrderAndDedupe(t *testing.T) {
	doc := fig1(t)
	// ancestor-or-self from multiple contexts overlaps heavily.
	got := eval(t, doc, "//*/ancestor-or-self::*")
	want := []int64{1, 2, 3, 4, 6, 7, 8, 10, 12, 13, 14, 15}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestErrors(t *testing.T) {
	doc := fig1(t)
	ev := New(doc)
	if _, err := ev.EvalString("not an xpath //"); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := ev.EvalString("/A[foo(1)]"); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestRootOnly(t *testing.T) {
	doc := fig1(t)
	if got := eval(t, doc, "/"); !reflect.DeepEqual(got, []int64{1}) {
		t.Errorf("'/' = %v", got)
	}
}
