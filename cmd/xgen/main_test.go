package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunXMark(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "doc.xml")
	sch := filepath.Join(dir, "doc.schema")
	if err := run("xmark", 0.01, 1, out, sch); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out, sch} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: %v (size %d)", p, err, fi.Size())
		}
	}
}

func TestRunDBLP(t *testing.T) {
	dir := t.TempDir()
	if err := run("dblp", 0.01, 1, filepath.Join(dir, "d.xml"), ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 1, 1, "", ""); err == nil {
		t.Error("unknown workload should fail")
	}
	if err := run("xmark", 0.01, 1, "/nonexistent-dir/x.xml", ""); err == nil {
		t.Error("bad output path should fail")
	}
}
