// Auctions: the XMark auction-site scenario from the paper's
// evaluation. Generates a small auction document, loads it, and walks
// through the order-axis and join-predicate queries that motivate the
// Dewey-encoded structural joins (Table 2) — following, preceding,
// sibling axes and the bidder/date = interval/start value join — then
// compares PPF join counts against the XPath Accelerator baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/bench"
	"repro/internal/xmark"
	"repro/xrel"
)

func main() {
	doc := xmark.MustGenerate(xmark.Config{Scale: 0.05, Seed: 7})
	store, err := xrel.Open(xmark.Schema())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Load(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction site: %d nodes, %d distinct paths\n\n", doc.Len(), store.PathCount())

	queries := []struct{ id, xpath, note string }{
		{"Q9", "/site/open_auctions/open_auction[@id='open_auction0']/bidder/preceding-sibling::bidder",
			"preceding-sibling via Dewey order + shared parent (Table 2 row 6)"},
		{"Q10", "/site/regions/*/item[@id='item0']/following::item",
			"following via the Dewey descendant-limit bound (Table 2 row 3)"},
		{"QA", "/site/open_auctions/open_auction[bidder/date = interval/start]",
			"join predicate clause: two correlated paths theta-joined"},
		{"Q5", "/site/regions/*/item[parent::namerica or parent::samerica]",
			"backward simple paths folded into path regexes (Table 5-2)"},
	}
	acc := accel.New()
	for _, q := range queries {
		sql, err := store.Translate(q.xpath)
		if err != nil {
			log.Fatal(err)
		}
		res, err := store.Query(q.xpath)
		if err != nil {
			log.Fatal(err)
		}
		accTr, err := acc.Translate(q.xpath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s\n", q.id, q.note)
		fmt.Printf("  %s\n", q.xpath)
		fmt.Printf("  PPF: %d relation(s); accelerator: %d (one per step)\n", sql.Joins, accTr.Joins)
		fmt.Printf("  -> %d node(s)\n\n", len(res.Nodes))
	}

	// Cross-check all benchmark queries against the oracle, as the
	// test suite does.
	w, err := bench.NewXMark(0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verifying every XPathMark query on all five systems...")
	for _, q := range w.Queries {
		n, err := w.Verify(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s ok (%d nodes)\n", q.ID, n)
	}
}
