package sqlast

import (
	"fmt"
	"strings"
)

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name string
	Cols []ColumnDef
}

func (*CreateTable) stmtNode() {}

// ColumnDef is one column definition.
type ColumnDef struct {
	Name string
	Type string // INT, FLOAT, TEXT or BYTES
}

// CreateIndex is a CREATE INDEX statement.
type CreateIndex struct {
	Name  string
	Table string
	Cols  []string
}

func (*CreateIndex) stmtNode() {}

// Insert is an INSERT INTO ... VALUES statement (literal rows only).
type Insert struct {
	Table string
	Rows  [][]Expr
}

func (*Insert) stmtNode() {}

// The String methods of the DDL statements live in render.go: that
// file is the single sanctioned SQL text emitter (enforced by the
// rawsql analyzer in internal/analysis).

// parseDDL handles CREATE TABLE / CREATE INDEX / INSERT after Parse
// sees their leading identifier.
func (p *sqlParser) parseCreate() (Statement, error) {
	t := p.next()
	if t.kind != sqlIdent {
		return nil, fmt.Errorf("sqlast: expected TABLE or INDEX after CREATE, found %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "TABLE":
		nameTok := p.next()
		if nameTok.kind != sqlIdent {
			return nil, fmt.Errorf("sqlast: expected table name, found %q", nameTok.text)
		}
		if err := p.expect(sqlLParen, "", "'('"); err != nil {
			return nil, err
		}
		ct := &CreateTable{Name: nameTok.text}
		for {
			colTok := p.next()
			if colTok.kind != sqlIdent {
				return nil, fmt.Errorf("sqlast: expected column name, found %q", colTok.text)
			}
			typTok := p.next()
			if typTok.kind != sqlIdent {
				return nil, fmt.Errorf("sqlast: expected column type, found %q", typTok.text)
			}
			typ := strings.ToUpper(typTok.text)
			switch typ {
			case "INT", "FLOAT", "TEXT", "BYTES":
			default:
				return nil, fmt.Errorf("sqlast: unknown column type %q", typTok.text)
			}
			ct.Cols = append(ct.Cols, ColumnDef{Name: colTok.text, Type: typ})
			if !p.accept(sqlComma, "") {
				break
			}
		}
		if err := p.expect(sqlRParen, "", "')'"); err != nil {
			return nil, err
		}
		return ct, nil
	case "INDEX":
		nameTok := p.next()
		if nameTok.kind != sqlIdent {
			return nil, fmt.Errorf("sqlast: expected index name, found %q", nameTok.text)
		}
		onTok := p.next()
		if onTok.kind != sqlIdent || strings.ToUpper(onTok.text) != "ON" {
			return nil, fmt.Errorf("sqlast: expected ON, found %q", onTok.text)
		}
		tblTok := p.next()
		if tblTok.kind != sqlIdent {
			return nil, fmt.Errorf("sqlast: expected table name, found %q", tblTok.text)
		}
		if err := p.expect(sqlLParen, "", "'('"); err != nil {
			return nil, err
		}
		ci := &CreateIndex{Name: nameTok.text, Table: tblTok.text}
		for {
			colTok := p.next()
			if colTok.kind != sqlIdent {
				return nil, fmt.Errorf("sqlast: expected column name, found %q", colTok.text)
			}
			ci.Cols = append(ci.Cols, colTok.text)
			if !p.accept(sqlComma, "") {
				break
			}
		}
		if err := p.expect(sqlRParen, "", "')'"); err != nil {
			return nil, err
		}
		return ci, nil
	}
	return nil, fmt.Errorf("sqlast: unsupported CREATE %q", t.text)
}

func (p *sqlParser) parseInsert() (Statement, error) {
	intoTok := p.next()
	if intoTok.kind != sqlIdent || strings.ToUpper(intoTok.text) != "INTO" {
		return nil, fmt.Errorf("sqlast: expected INTO, found %q", intoTok.text)
	}
	tblTok := p.next()
	if tblTok.kind != sqlIdent {
		return nil, fmt.Errorf("sqlast: expected table name, found %q", tblTok.text)
	}
	valTok := p.next()
	if valTok.kind != sqlIdent || strings.ToUpper(valTok.text) != "VALUES" {
		return nil, fmt.Errorf("sqlast: expected VALUES, found %q", valTok.text)
	}
	ins := &Insert{Table: tblTok.text}
	for {
		if err := p.expect(sqlLParen, "", "'('"); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(sqlComma, "") {
				break
			}
		}
		if err := p.expect(sqlRParen, "", "')'"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(sqlComma, "") {
			break
		}
	}
	return ins, nil
}
