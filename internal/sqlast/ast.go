// Package sqlast defines the abstract syntax tree, renderer and
// parser for the SQL dialect the engine executes and the translators
// emit. The dialect is the subset of SQL the paper's translations
// need: SELECT [DISTINCT] with multi-table FROM, WHERE with logical
// connectives, comparisons, BETWEEN, string/byte concatenation (||),
// REGEXP_LIKE, EXISTS and scalar COUNT subqueries, IS [NOT] NULL,
// ORDER BY, and UNION.
package sqlast

import (
	"fmt"
	"strings"
)

// Statement is a top-level statement: *Select or *Union.
type Statement interface {
	fmt.Stringer
	stmtNode()
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Cols     []SelectCol
	From     []TableRef
	Where    Expr // nil means no WHERE clause
	OrderBy  []OrderKey
}

func (*Select) stmtNode() {}

// Union is a UNION (set semantics) of SELECT statements.
type Union struct {
	Selects []*Select
	OrderBy []OrderKey
}

func (*Union) stmtNode() {}

// Explain is 'EXPLAIN [ANALYZE] <stmt>': render the physical plan of
// the wrapped statement, executing it first when Analyze is set so
// each operator carries its runtime statistics.
type Explain struct {
	Analyze bool
	Stmt    Statement
}

func (*Explain) stmtNode() {}

// SelectCol is one projected column.
type SelectCol struct {
	Expr  Expr
	Alias string // optional
}

// TableRef is one table in the FROM clause.
type TableRef struct {
	Table string
	Alias string // optional; the effective name is Alias or Table
}

// Name returns the name by which columns reference this table.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Expr is a scalar or boolean expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Col references a column, optionally qualified by a table name or
// alias.
type Col struct {
	Table  string // may be empty if unambiguous
	Column string
}

func (*Col) exprNode() {}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

func (*IntLit) exprNode() {}

// StrLit is a string literal.
type StrLit struct{ Value string }

func (*StrLit) exprNode() {}

// BytesLit is a binary-string literal, rendered as X'hex'. The
// translators use it for Dewey position bounds.
type BytesLit struct{ Value []byte }

func (*BytesLit) exprNode() {}

// FloatLit is a floating-point literal.
type FloatLit struct{ Value float64 }

func (*FloatLit) exprNode() {}

// NullLit is the NULL literal.
type NullLit struct{}

func (*NullLit) exprNode() {}

// BinOp is a binary operator.
type BinOp uint8

const (
	OpAnd BinOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat // || : byte/string concatenation
)

var binOpNames = map[BinOp]string{
	OpAnd: "AND", OpOr: "OR", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpConcat: "||",
}

func (o BinOp) String() string { return binOpNames[o] }

// Binary is a binary expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (*Binary) exprNode() {}

// Not is logical negation.
type Not struct{ X Expr }

func (*Not) exprNode() {}

// Between is 'X BETWEEN Lo AND Hi' (inclusive both ends).
type Between struct {
	X, Lo, Hi Expr
}

func (*Between) exprNode() {}

// IsNull is 'X IS NULL' or, with Negate, 'X IS NOT NULL'.
type IsNull struct {
	X      Expr
	Negate bool
}

func (*IsNull) exprNode() {}

// Func is a scalar function call. The engine implements REGEXP_LIKE,
// LENGTH, LOWER, UPPER and ABS.
type Func struct {
	Name string
	Args []Expr
}

func (*Func) exprNode() {}

// Exists is 'EXISTS (select)' or, with Negate, 'NOT EXISTS (select)'.
// The subselect may be correlated: its WHERE clause may reference
// tables of enclosing queries.
type Exists struct {
	Select *Select
	Negate bool
}

func (*Exists) exprNode() {}

// Subquery is a scalar subquery, e.g. '(SELECT COUNT(*) FROM ...)'.
// The subselect must project exactly one column; it yields NULL when
// empty and its first row's value otherwise.
type Subquery struct{ Select *Select }

func (*Subquery) exprNode() {}

// CountStar is COUNT(*) in a projection.
type CountStar struct{}

func (*CountStar) exprNode() {}

// helpers used heavily by the translators

// C builds a column reference.
func C(table, column string) *Col { return &Col{Table: table, Column: column} }

// Eq builds an equality comparison.
func Eq(l, r Expr) Expr { return &Binary{Op: OpEq, L: l, R: r} }

// And folds a list of conjuncts, dropping nils; it returns nil when
// all are nil.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Or folds a list of disjuncts, dropping nils.
func Or(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: OpOr, L: out, R: e}
		}
	}
	return out
}

// Str builds a string literal.
func Str(s string) *StrLit { return &StrLit{Value: s} }

// Int builds an integer literal.
func Int(v int64) *IntLit { return &IntLit{Value: v} }

// Bytes builds a binary literal.
func Bytes(b []byte) *BytesLit { return &BytesLit{Value: b} }

// RegexpLike builds REGEXP_LIKE(x, pattern).
func RegexpLike(x Expr, pattern string) Expr {
	return &Func{Name: "REGEXP_LIKE", Args: []Expr{x, Str(pattern)}}
}

// AddConjunct adds a conjunct to a select's WHERE clause.
func (s *Select) AddConjunct(e Expr) {
	if e == nil {
		return
	}
	s.Where = And(s.Where, e)
}

// HasTable reports whether the FROM clause already contains a table
// with the given effective name.
func (s *Select) HasTable(name string) bool {
	for _, t := range s.From {
		if t.Name() == name {
			return true
		}
	}
	return false
}

// String renders statements via the renderer; defined here so the
// interface is self-contained.
func (s *Select) String() string { return Render(s) }
func (u *Union) String() string  { return Render(u) }

func (c *Col) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}
func (l *IntLit) String() string   { return fmt.Sprintf("%d", l.Value) }
func (l *FloatLit) String() string { return trimFloat(l.Value) }
func (l *StrLit) String() string   { return "'" + strings.ReplaceAll(l.Value, "'", "''") + "'" }
func (l *BytesLit) String() string { return fmt.Sprintf("X'%X'", l.Value) }
func (*NullLit) String() string    { return "NULL" }
func (b *Binary) String() string   { return renderExpr(b) }
func (n *Not) String() string      { return renderExpr(n) }
func (b *Between) String() string  { return renderExpr(b) }
func (i *IsNull) String() string   { return renderExpr(i) }
func (f *Func) String() string     { return renderExpr(f) }
func (e *Exists) String() string   { return renderExpr(e) }
func (s *Subquery) String() string { return renderExpr(s) }
func (*CountStar) String() string  { return "COUNT(*)" }

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
