// Package cgtest is the unit fixture for callgraph: one of each edge
// kind, literal nesting, and the freshness summary shapes.
package cgtest

type doer interface{ Do() }

type A struct{}

func (A) Do() {}

type B struct{}

func (*B) Do() {}

// call dispatches through the interface: Interface edges to every
// in-package implementation.
func call(d doer) { d.Do() }

func helper() {}

func use(fn func()) { fn() }

func run() {
	f := func() {} // FuncValue edge from the f() call below
	f()
	helper()                 // Static edge
	go func() { helper() }() // immediately-invoked literal: Static edge to the lit
	use(helper)              // Escape edge (helper's address flows away)
}

type T struct{ n int }

// newT is a leaf constructor: fresh.
func newT() *T { return &T{} }

// wrap returns another fresh function's result: fresh by fixpoint.
func wrap() *T { return newT() }

// identity returns its parameter: not fresh.
func identity(t *T) *T { return t }
