package core

import (
	"testing"

	"repro/internal/shred"
	"repro/internal/xmltree"
)

// TestMultiDocDeweyIsolation loads two structurally identical
// documents and checks that Dewey-based structural joins never match
// across documents — the regression the WithRoot re-rooting prevents.
func TestMultiDocDeweyIsolation(t *testing.T) {
	s := paperSchema(t)
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}

	// Without re-rooting, every F would appear as a descendant of BOTH
	// A roots (their Dewey ranges coincide); with it, 2 per document.
	res, err := st.DB.RunSQL(
		"SELECT A.id, F.id FROM A, F WHERE F.dewey_pos BETWEEN A.dewey_pos AND A.dewey_pos || X'FF' ORDER BY A.id, F.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("cross-document descendant pairs = %d, want 4", len(res.Rows))
	}
	// Each F must pair with exactly the A of its own document.
	perA := map[int64]int{}
	for _, r := range res.Rows {
		perA[r[0].I]++
	}
	for a, n := range perA {
		if n != 2 {
			t.Errorf("root %d has %d F descendants, want 2", a, n)
		}
	}

	// The PPF translation gives each document's results independently.
	tr := New(s, nil)
	trans, err := tr.Translate("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 4 {
		t.Fatalf("query over two documents returned %d rows, want 4", len(out.Rows))
	}
}

func TestMultiDocEdgeIsolation(t *testing.T) {
	st, err := shred.NewEdge()
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	st.Load(doc)
	st.Load(doc)
	res, err := st.DB.RunSQL(
		"SELECT COUNT(*) FROM edge a, edge d WHERE a.par IS NULL AND d.dewey_pos BETWEEN a.dewey_pos AND a.dewey_pos || X'FF'")
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 2 roots spans its own 12 elements: 24 pairs, not 48.
	if res.Rows[0][0].I != 24 {
		t.Fatalf("pairs = %v, want 24", res.Rows[0][0])
	}
}

// TestMultiDocDifferentShapes loads two different documents and
// checks a value query unions per-document results.
func TestMultiDocDifferentShapes(t *testing.T) {
	s := paperSchema(t)
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := xmltree.ParseString(`<A x="3"><B><C><E><F>2</F></E></C></B></A>`)
	d2, _ := xmltree.ParseString(`<A x="4"><B><C><E><F>2</F><F>9</F></E></C></B></A>`)
	if _, err := st.Load(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(d2); err != nil {
		t.Fatal(err)
	}
	tr := New(s, nil)
	trans, err := tr.Translate("/A[@x=4]/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want only document 2's F elements", len(res.Rows))
	}
	trans, err = tr.Translate("//F[. = 2]")
	if err != nil {
		t.Fatal(err)
	}
	res, err = st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // one in each document
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}
