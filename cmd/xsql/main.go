// Command xsql is an interactive shell for the embedded relational
// engine. It reads one statement per line (CREATE TABLE, CREATE
// INDEX, INSERT, SELECT) and prints results — useful for poking at a
// shredded store or experimenting with the dialect. With -load and an
// optional -schema, the shell starts with an XML document already
// shredded under the schema-aware mapping.
//
//	xsql [-db DIR] [-schema site.schema [-xsd]] [-load doc.xml] [-parallel N]
//	     [-batch-size N] [-max-mem BYTES] [-max-rows N] [-e 'STMT'...]
//
// -db DIR opens (or creates) a persistent store rooted at DIR: every
// INSERT, CREATE TABLE, CREATE INDEX, and -load commits to a
// write-ahead log before it is acknowledged, and restarting xsql on
// the same directory recovers the exact prior state. Without -db the
// store is in-memory and vanishes on exit.
//
// -parallel N executes SELECTs with the engine's morsel executor at N
// workers (0 = serial). -batch-size N sets the engine's row-id batch
// capacity (0 = engine default; results are identical at every
// setting). -max-mem and -max-rows set per-statement
// resource budgets (0 = unlimited): a statement that exceeds one
// fails with a budget error and the shell keeps running.
//
// Special commands: \d lists tables; \stats prints engine cache
// metrics; \explain STMT prints the physical operator tree of a
// statement with per-operator runtime statistics (shorthand for
// EXPLAIN ANALYZE STMT, which also works); \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xmltree"
)

func main() {
	dbDir := flag.String("db", "", "directory of a persistent store to open or create (empty = in-memory)")
	schemaPath := flag.String("schema", "", "schema file for -load (compact DSL, or XSD with -xsd); inferred when omitted")
	useXSD := flag.Bool("xsd", false, "parse the schema file as XML Schema")
	load := flag.String("load", "", "XML document to shred before starting")
	parallel := flag.Int("parallel", 0, "engine worker count for SELECTs (0 = serial)")
	batchSize := flag.Int("batch-size", 0, "engine row-id batch capacity (0 = engine default)")
	maxMem := flag.Int64("max-mem", 0, "per-statement memory budget in bytes (0 = unlimited)")
	maxRows := flag.Int64("max-rows", 0, "per-statement produced-row budget (0 = unlimited)")
	var stmts multiFlag
	flag.Var(&stmts, "e", "statement to execute (repeatable); skips the interactive loop")
	flag.Parse()

	opts := engine.ExecOptions{Parallelism: *parallel, BatchSize: *batchSize,
		MaxMemoryBytes: *maxMem, MaxRows: *maxRows}
	if err := run(*dbDir, *schemaPath, *useXSD, *load, opts, stmts, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xsql:", err)
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func run(dbDir, schemaPath string, useXSD bool, load string, opts engine.ExecOptions, stmts []string, in *os.File, out *os.File) (err error) {
	db := engine.NewDB()
	if dbDir != "" {
		if db, err = engine.Open(dbDir); err != nil {
			return err
		}
		defer func() {
			if cerr := db.Close(); err == nil {
				err = cerr
			}
		}()
		if n := len(db.SortedTableSizes()); n > 0 {
			fmt.Fprintf(out, "opened %s: %s\n", dbDir, strings.Join(db.SortedTableSizes(), " "))
		}
	}
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		var s *schema.Schema
		if schemaPath != "" {
			data, err := os.ReadFile(schemaPath)
			if err != nil {
				return err
			}
			if useXSD {
				s, err = schema.ParseXSD(strings.NewReader(string(data)))
			} else {
				s, err = schema.ParseCompact(string(data))
			}
			if err != nil {
				return err
			}
		} else if s, err = schema.Infer(doc); err != nil {
			return err
		}
		st, err := shred.NewSchemaAwareDB(db, s)
		if err != nil {
			return err
		}
		if _, err := st.Load(doc); err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %s: %s\n", load, strings.Join(db.SortedTableSizes(), " "))
	}

	exec := func(line string) {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if line == "" {
			return
		}
		switch line {
		case `\d`:
			for _, t := range db.SortedTableSizes() {
				fmt.Fprintln(out, t)
			}
			return
		case `\stats`:
			hits, misses := db.PlanCacheStats()
			fmt.Fprintf(out, "plan cache: %d entries, %d hits, %d misses\n",
				db.PlanCacheSize(), hits, misses)
			fmt.Fprintf(out, "pattern cache: %d entries\n", engine.PatternCacheSize())
			fmt.Fprintf(out, "peak statement memory: %d bytes\n", db.PeakStatementMemory())
			return
		}
		if rest, ok := strings.CutPrefix(line, `\explain `); ok {
			//xvet:ignore sqltaint -- REPL input: the user's typed SQL is the one legitimate raw source
			st, err := sqlast.Parse(strings.TrimSpace(rest))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				return
			}
			text, err := db.ExplainAnalyzeWithOptions(st, opts)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				return
			}
			fmt.Fprint(out, text)
			return
		}
		res, err := db.ExecSQLWithOptions(line, opts)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintln(out, strings.Join(res.Cols, " | "))
		for i, r := range res.Rows {
			if i >= 50 {
				fmt.Fprintf(out, "... %d more row(s)\n", len(res.Rows)-50)
				break
			}
			cells := make([]string, len(r))
			for j, v := range r {
				cells[j] = v.String()
			}
			fmt.Fprintln(out, strings.Join(cells, " | "))
		}
		fmt.Fprintf(out, "(%d row(s))\n", len(res.Rows))
	}

	if len(stmts) > 0 {
		for _, s := range stmts {
			exec(s)
		}
		return nil
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(out, "xsql> ")
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			break
		}
		exec(line)
		fmt.Fprint(out, "xsql> ")
	}
	return sc.Err()
}
