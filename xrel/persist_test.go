package xrel

import (
	"strings"
	"testing"
)

// TestOpenPersistentRoundTrip loads a document into a durable store,
// closes it, reopens the same directory, and checks that queries see
// the recovered data without reloading.
func TestOpenPersistentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := ParseCompactSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenPersistent(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadXML(strings.NewReader(testDoc)); err != nil {
		t.Fatal(err)
	}
	want, err := st.Query("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Nodes) != 2 {
		t.Fatalf("nodes before close = %v", want.Nodes)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPersistent(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Query("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("nodes after reopen = %v, want %v", got.Nodes, want.Nodes)
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Errorf("node %d = %+v, want %+v", i, got.Nodes[i], want.Nodes[i])
		}
	}
	if re.PathCount() != st.PathCount() {
		t.Errorf("PathCount after reopen = %d, want %d", re.PathCount(), st.PathCount())
	}
}

// TestOpenPersistentAccumulates checks that separate sessions against
// the same directory accumulate documents with fresh document ids.
func TestOpenPersistentAccumulates(t *testing.T) {
	dir := t.TempDir()
	s, err := ParseCompactSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(1); want <= 3; want++ {
		st, err := OpenPersistent(dir, s)
		if err != nil {
			t.Fatal(err)
		}
		id, err := st.LoadXML(strings.NewReader(testDoc))
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("doc id = %d, want %d", id, want)
		}
		if want == 2 {
			// A checkpoint mid-sequence must not disturb recovery.
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := OpenPersistent(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := st.Query("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 6 {
		t.Fatalf("nodes across 3 documents = %d, want 6", len(res.Nodes))
	}
}

// TestCheckpointInMemoryNoop checks Checkpoint and Close are harmless
// on in-memory stores.
func TestCheckpointInMemoryNoop(t *testing.T) {
	st := open(t)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
