package engine

// The uniform scan-operator contract: every access path pushes the
// candidate row ids of its joinStep under the current bindings, in
// the executor's canonical order, recording probes and governor
// charges against the step's scan OpStats. Ids move in batches of up
// to cap(sc.ids) (ExecOptions.BatchSize) so the per-row dispatch,
// deadline, and stat costs are amortized per batch; yield returns
// false to stop early.

// batchYield receives one batch of candidate row ids, never empty,
// in canonical order. The slice is either the enumerator's scratch
// buffer or a zero-copy sub-slice of an index's posting list — valid
// only until yield returns, and never to be mutated. It returns
// false to stop the enumeration early.
type batchYield func(ids []int64) (bool, error)

// forEachBatch dispatches to the concrete access path's enumerate
// method. The executor's row loops call this instead of the
// accessPath interface method so escape analysis can keep their
// yield closures off the heap: an interface call would force a
// heap-allocated closure per join binding, which is measurable on
// the paper's join-heavy Edge queries.
func forEachBatch(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	switch a := s.access.(type) {
	case fullScan:
		return a.enumerate(ec, e, s, st, sc, yield)
	case *indexEq:
		return a.enumerate(ec, e, s, st, sc, yield)
	case *indexPrefixes:
		return a.enumerate(ec, e, s, st, sc, yield)
	case *hashEq:
		return a.enumerate(ec, e, s, st, sc, yield)
	case *fatHash:
		return a.h.enumerate(ec, e, s, st, sc, yield)
	case *indexRange:
		return a.enumerate(ec, e, s, st, sc, yield)
	default:
		panic("engine: unknown access path")
	}
}

// flushTail yields the final partial batch, if any.
func flushTail(buf []int64, yield batchYield) error {
	if len(buf) == 0 {
		return nil
	}
	_, err := yield(buf)
	return err
}

// yieldChunks streams an index's already-materialized posting list to
// yield in sub-slices of at most batch ids, without copying.
func yieldChunks(ids []int64, batch int, yield batchYield) error {
	for len(ids) > 0 {
		n := len(ids)
		if n > batch {
			n = batch
		}
		cont, err := yield(ids[:n])
		if err != nil || !cont {
			return err
		}
		ids = ids[n:]
	}
	return nil
}

func (fullScan) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	n := len(s.st.rows)
	buf := sc.ids[:0]
	for id := 0; id < n; id++ {
		buf = append(buf, int64(id))
		if len(buf) == cap(buf) {
			cont, err := yield(buf)
			if err != nil || !cont {
				return err
			}
			buf = buf[:0]
		}
	}
	return flushTail(buf, yield)
}

func (a *indexEq) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	key := sc.key[:0]
	for _, kx := range a.keys {
		v, err := kx.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		key = encodeValue(key, v)
	}
	sc.key = key
	st.probe()
	return yieldChunks(a.ix.Tree.Get(key), cap(sc.ids), yield)
}

func (a *indexPrefixes) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	v, err := a.x.eval(ec, e)
	if err != nil {
		return err
	}
	if v.Kind != KBytes {
		return nil
	}
	buf := sc.ids[:0]
	for k := 0; k <= len(v.B); k++ {
		// Prefix-match within a possibly composite index: scan the
		// interval covering exactly this first-component value. The
		// bounds live in this step's scratch (not shared buffers):
		// yield runs nested steps while the Scan is still walking them.
		lo := encodeValue(sc.key[:0], NewBytes(v.B[:k]))
		sc.key = lo
		hi := append(sc.key2[:0], lo...)
		hi = append(hi, 0xFF)
		sc.key2 = hi
		st.probe()
		stop := false
		var scanErr error
		a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
			buf = append(buf, id)
			if len(buf) == cap(buf) {
				cont, err := yield(buf)
				buf = buf[:0]
				if err != nil {
					scanErr = err
					return false
				}
				stop = !cont
				return cont
			}
			return true
		})
		if scanErr != nil || stop {
			return scanErr
		}
	}
	return flushTail(buf, yield)
}

func (a *hashEq) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	v, err := a.key.eval(ec, e)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	key := encodeValue(sc.key[:0], v)
	sc.key = key
	m, built, bytes, err := s.st.hashFor(a.col, ec.acct)
	if err != nil {
		return err
	}
	if built {
		st.charge(bytes)
		// The build may have consumed a large slice of the deadline;
		// observe it before starting the probe phase instead of
		// waiting out the tick counter.
		if err := ec.checkNow(); err != nil {
			return err
		}
	}
	st.probe()
	return yieldChunks(m[string(key)], cap(sc.ids), yield)
}

func (a *fatHash) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	return a.h.enumerate(ec, e, s, st, sc, yield)
}

// The shape methods below describe each access kind for the exported
// plan shape (plantrace.go). They decompile the same key expressions
// enumerate evaluates, so the certificate checker justifies the path
// against exactly what would execute.

func (fullScan) shape(*shapeBuilder, *Table) (AccessShape, error) {
	return AccessShape{Kind: "full-scan"}, nil
}

func (a *indexEq) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	as := AccessShape{Kind: "index-eq", Index: a.ix.Name,
		IndexCols: indexColNames(t, a.ix), Col: t.Cols[a.ix.Cols[0]].Name}
	for _, k := range a.keys {
		es, err := sb.expr(k)
		if err != nil {
			return AccessShape{}, err
		}
		as.Keys = append(as.Keys, es)
	}
	return as, nil
}

func (a *indexPrefixes) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	key, err := sb.expr(a.x)
	if err != nil {
		return AccessShape{}, err
	}
	return AccessShape{Kind: "index-prefixes", Index: a.ix.Name,
		IndexCols: indexColNames(t, a.ix), Col: t.Cols[a.ix.Cols[0]].Name, Key: key}, nil
}

func (a *hashEq) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	key, err := sb.expr(a.key)
	if err != nil {
		return AccessShape{}, err
	}
	return AccessShape{Kind: "hash-eq", Col: t.Cols[a.col].Name, Key: key}, nil
}

func (a *fatHash) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	as, err := a.h.shape(sb, t)
	if err != nil {
		return AccessShape{}, err
	}
	as.Kind = "fat-hash"
	return as, nil
}

func (a *indexRange) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	as := AccessShape{Kind: "index-range", Index: a.ix.Name,
		IndexCols: indexColNames(t, a.ix), Col: t.Cols[a.ix.Cols[0]].Name,
		LoStrict: a.loStrict, HiStrict: a.hiStrict}
	var err error
	if a.lo != nil {
		if as.Lo, err = sb.expr(a.lo); err != nil {
			return AccessShape{}, err
		}
	}
	if a.hi != nil {
		if as.Hi, err = sb.expr(a.hi); err != nil {
			return AccessShape{}, err
		}
	}
	return as, nil
}

func (a *indexRange) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error {
	var lo, hi []byte
	if a.lo != nil {
		v, err := a.lo.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		lo = encodeValue(sc.key[:0], v)
		if a.loStrict {
			lo = append(lo, 0xFF)
		}
		sc.key = lo
	}
	if a.hi != nil {
		v, err := a.hi.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		hi = encodeValue(sc.key2[:0], v)
		if !a.hiStrict {
			hi = append(hi, 0xFF)
		}
		sc.key2 = hi
	}
	st.probe()
	buf := sc.ids[:0]
	stop := false
	var scanErr error
	a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
		buf = append(buf, id)
		if len(buf) == cap(buf) {
			cont, err := yield(buf)
			buf = buf[:0]
			if err != nil {
				scanErr = err
				return false
			}
			stop = !cont
			return cont
		}
		return true
	})
	if scanErr != nil || stop {
		return scanErr
	}
	return flushTail(buf, yield)
}
