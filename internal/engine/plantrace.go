package engine

import (
	"fmt"
	"sort"

	"repro/internal/sqlast"
)

// The plan-shape surface decompiles a compiled statement back into an
// exported, sqlast-level description of what the planner and the
// physical lowering actually produced: the chosen join order, the
// access path of every step with its key expressions, the placement
// of every residual conjunct, and the lowered operator pipeline. The
// plancheck certificate checker consumes this to prove the compiled
// plan equivalent to the statement it came from. The description is
// rebuilt from the compiled artifacts themselves (cexpr trees, access
// structs, phys nodes) — never from planner bookkeeping strings — so
// a planner bug cannot hide behind its own explanation.

// Subplan marker function names: correlated subqueries inside shape
// expressions are replaced by pseudo-calls carrying the index of the
// corresponding SubplanShape. The planner rejects unknown function
// names, so no user statement can collide with these.
const (
	MarkerExists    = "EXISTS_SUBPLAN"
	MarkerNotExists = "NOT_EXISTS_SUBPLAN"
	MarkerScalar    = "SCALAR_SUBPLAN"
)

// ExprShape is one decompiled expression: the sqlast tree with every
// column reference qualified by its resolved alias, plus the set of
// aliases the expression depends on (including aliases of enclosing
// selects, for correlated subplan markers).
type ExprShape struct {
	Expr sqlast.Expr
	Refs []string // sorted, deduplicated
}

// Text renders the expression ("" for an absent optional expression).
func (e ExprShape) Text() string {
	if e.Expr == nil {
		return ""
	}
	return e.Expr.String()
}

// OrderShape is one ORDER BY key of the compiled plan.
type OrderShape struct {
	Key  ExprShape
	Desc bool
}

// AccessShape describes the access path chosen for one join step,
// including the index metadata that must justify it.
type AccessShape struct {
	// Kind is one of "full-scan", "index-eq", "hash-eq", "fat-hash",
	// "index-prefixes", "index-range".
	Kind string
	// Index and IndexCols identify the index used (empty for scans and
	// hash joins); IndexCols are the index's column names in key order.
	Index     string
	IndexCols []string
	// Col is the accessed column's name (leading index column, or the
	// hash-join column).
	Col string
	// Keys are the index-eq key expressions, one per leading column.
	Keys []ExprShape
	// Key is the hash-join probe key or the index-prefixes probe value.
	Key ExprShape
	// Lo/Hi are the index-range bounds (absent => zero ExprShape).
	Lo, Hi   ExprShape
	LoStrict bool
	HiStrict bool
}

// OmittedShape is one residual conjunct the planner dropped because
// the pinned synopsis proves it true for every row of the step's
// table. The evidence fields pin the exact synopsis facts the decision
// used; plancheck re-derives the proof from them (and re-checks them
// against the table's synopsis) rather than trusting Reason.
type OmittedShape struct {
	Pred ExprShape
	// Reason is "not-null", "int-range" or "empty-table".
	Reason string
	// Rows/Nulls/Min/Max are the synopsis facts claimed as evidence:
	// table row count, the column's null count, and (for "int-range")
	// the column's exact integer min/max.
	Rows, Nulls int64
	Min, Max    int64
}

// StepShape is one join step: table binding, access path, residual
// filters, and the planner's cardinality estimate with provenance.
type StepShape struct {
	Alias   string
	Table   string
	Access  AccessShape
	Filters []ExprShape
	// EstRows is the estimated rows this step yields per binding of the
	// earlier steps after residual filters; EstSource records where the
	// number came from ("synopsis", "default" or "override").
	EstRows   float64
	EstSource string
	// Omitted lists filters proven redundant and dropped (never
	// executed); plancheck adds them back into the predicate multiset
	// and re-justifies each omission from its evidence.
	Omitted []OmittedShape
}

// SubplanShape is one correlated subquery of a select, referenced from
// expressions by marker index.
type SubplanShape struct {
	// Kind is "exists", "not-exists", "scalar" or "count".
	Kind   string
	Select *SelectShape
}

// SelectShape is the decompiled form of one compiled SELECT.
type SelectShape struct {
	Distinct   bool
	CountStar  bool
	Cols       []ExprShape
	ColNames   []string
	PreFilters []ExprShape
	Steps      []StepShape
	OrderBy    []OrderShape
	Subplans   []*SubplanShape
	// Pipeline lists the lowered physical operators in execution order
	// as canonical tokens: "prefilter", "scan <alias>",
	// "filter <alias>", "project", "count", "distinct", "sort".
	Pipeline []string
	// FromOrder is the statement's FROM order before join reordering;
	// JoinMethod records how the binding order was chosen ("single",
	// "dp" or "greedy").
	FromOrder  []string
	JoinMethod string
	// FreeRefs are the aliases referenced but not bound by this select
	// (its correlation variables), sorted.
	FreeRefs []string
}

// UnionShape is the decompiled form of a compiled UNION.
type UnionShape struct {
	Branches  []*SelectShape
	Cols      []string
	OrderPos  []int
	OrderDesc []bool
	// Sort reports whether the lowering emitted a union-level sort
	// operator.
	Sort bool
}

// StmtShape is the decompiled form of a compiled statement; exactly
// one of Select/Union is set.
type StmtShape struct {
	SQL    string
	Select *SelectShape
	Union  *UnionShape
}

// PlanTrace is delivered to the plan-trace observer (and the plan
// verifier) once per fresh statement compilation.
type PlanTrace struct {
	// SQL is the plan-cache key (the canonical rendering of Stmt).
	SQL string
	// Stmt is the statement that was compiled.
	Stmt sqlast.Statement
	// Shape is the decompiled plan; nil when extraction failed.
	Shape *StmtShape
	// Err reports a shape-extraction failure ("" on success). An
	// extraction failure is itself a checkable defect: the compiled
	// plan contains something the decompiler cannot explain.
	Err string
}

// planTrace, when non-nil, observes every fresh compilation.
var planTrace func(PlanTrace)

// SetPlanTrace installs (or, with nil, removes) the compilation
// observer. Like core.SetPatternTrace it is not safe for use
// concurrently with statement execution; the intended caller is
// plancheck's single-threaded sweep.
func SetPlanTrace(fn func(PlanTrace)) { planTrace = fn }

// planVerifier, when non-nil, is consulted by executions that request
// ExecOptions.VerifyPlan.
var planVerifier func(PlanTrace) error

// SetPlanVerifier installs (or, with nil, removes) the compile-time
// plan verifier used by ExecOptions.VerifyPlan. Install it before
// running statements; installation is not synchronized with running
// queries.
func SetPlanVerifier(fn func(PlanTrace) error) { planVerifier = fn }

// traceCompiled fires the plan trace for a fresh compilation.
func traceCompiled(st sqlast.Statement, key string, cs *compiledStmt) {
	if planTrace == nil {
		return
	}
	tr := PlanTrace{SQL: key, Stmt: st}
	sh, err := shapeStmt(cs, key)
	if err != nil {
		tr.Err = err.Error()
	} else {
		tr.Shape = sh
	}
	planTrace(tr)
}

// verifyCompiled runs the installed plan verifier against a compiled
// statement (cached or fresh), for ExecOptions.VerifyPlan.
func verifyCompiled(st sqlast.Statement, key string, cs *compiledStmt) error {
	if planVerifier == nil {
		return nil
	}
	sh, err := shapeStmt(cs, key)
	if err != nil {
		return fmt.Errorf("engine: plan shape extraction: %w", err)
	}
	if err := planVerifier(PlanTrace{SQL: key, Stmt: st, Shape: sh}); err != nil {
		return fmt.Errorf("engine: plan verification rejected %q: %w", key, err)
	}
	return nil
}

// PlanShape compiles the statement (through the plan cache) and
// returns the decompiled shape of the plan that would execute.
func (db *DB) PlanShape(st sqlast.Statement) (*StmtShape, error) {
	key := sqlast.Render(st)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return nil, err
	}
	return shapeStmt(cs, key)
}

// shapeStmt decompiles a compiled statement.
func shapeStmt(cs *compiledStmt, sql string) (*StmtShape, error) {
	out := &StmtShape{SQL: sql}
	if cs.sel != nil {
		sh, err := shapeSelect(cs.sel, nil)
		if err != nil {
			return nil, err
		}
		out.Select = sh
		return out, nil
	}
	u := cs.union
	us := &UnionShape{
		Cols:      append([]string(nil), u.cols...),
		OrderPos:  append([]int(nil), u.orderPos...),
		OrderDesc: append([]bool(nil), u.orderDesc...),
		Sort:      u.phys != nil && u.phys.sort != nil,
	}
	for _, br := range u.branches {
		sh, err := shapeSelect(br, nil)
		if err != nil {
			return nil, err
		}
		us.Branches = append(us.Branches, sh)
	}
	out.Union = us
	return out, nil
}

// shapeBuilder carries the alias environment (local + enclosing) while
// decompiling one select's expressions.
type shapeBuilder struct {
	tables map[string]*Table
	owner  *SelectShape
}

// shapeSelect decompiles one compiled select; outer maps the aliases
// of enclosing selects for correlated references (nil at top level).
func shapeSelect(p *selectPlan, outer map[string]*Table) (*SelectShape, error) {
	sh := &SelectShape{
		Distinct:   p.distinct,
		CountStar:  p.countStar,
		ColNames:   append([]string(nil), p.colNames...),
		FromOrder:  append([]string(nil), p.fromOrder...),
		JoinMethod: p.joinMethod,
		Pipeline:   p.pipeline(),
	}
	tables := make(map[string]*Table, len(outer)+len(p.steps))
	for k, v := range outer {
		tables[k] = v
	}
	for _, s := range p.steps {
		tables[s.name] = s.table
	}
	sb := &shapeBuilder{tables: tables, owner: sh}

	var all []ExprShape
	for _, ce := range p.preFilters {
		es, err := sb.expr(ce)
		if err != nil {
			return nil, err
		}
		sh.PreFilters = append(sh.PreFilters, es)
		all = append(all, es)
	}
	for _, s := range p.steps {
		ss := StepShape{Alias: s.name, Table: s.table.Name}
		as, err := s.access.shape(sb, s.table)
		if err != nil {
			return nil, err
		}
		ss.Access = as
		all = append(all, as.Keys...)
		all = append(all, as.Key, as.Lo, as.Hi)
		for _, f := range s.filters {
			es, err := sb.expr(f)
			if err != nil {
				return nil, err
			}
			ss.Filters = append(ss.Filters, es)
			all = append(all, es)
		}
		ss.EstRows = s.estRows
		ss.EstSource = s.estSource
		for _, of := range s.omitted {
			es, err := sb.expr(of.ce)
			if err != nil {
				return nil, err
			}
			ss.Omitted = append(ss.Omitted, OmittedShape{
				Pred: es, Reason: of.reason,
				Rows: of.rows, Nulls: of.nulls, Min: of.min, Max: of.max,
			})
			all = append(all, es)
		}
		sh.Steps = append(sh.Steps, ss)
	}
	for _, c := range p.cols {
		es, err := sb.expr(c)
		if err != nil {
			return nil, err
		}
		sh.Cols = append(sh.Cols, es)
		all = append(all, es)
	}
	for _, o := range p.orderBy {
		es, err := sb.expr(o.x)
		if err != nil {
			return nil, err
		}
		sh.OrderBy = append(sh.OrderBy, OrderShape{Key: es, Desc: o.desc})
		all = append(all, es)
	}

	local := make(map[string]bool, len(p.steps))
	for _, s := range p.steps {
		local[s.name] = true
	}
	free := map[string]bool{}
	for _, es := range all {
		for _, r := range es.Refs {
			if !local[r] {
				free[r] = true
			}
		}
	}
	sh.FreeRefs = sortedNames(free)
	return sh, nil
}

// expr decompiles one compiled expression into an ExprShape.
func (sb *shapeBuilder) expr(x cexpr) (ExprShape, error) {
	refs := map[string]bool{}
	e, err := sb.decompile(x, refs)
	if err != nil {
		return ExprShape{}, err
	}
	return ExprShape{Expr: e, Refs: sortedNames(refs)}, nil
}

// decompile rebuilds the sqlast form of a compiled expression,
// qualifying columns with their resolved aliases and replacing
// correlated subplans with marker pseudo-calls.
func (sb *shapeBuilder) decompile(x cexpr, refs map[string]bool) (sqlast.Expr, error) {
	switch c := x.(type) {
	case *ccol:
		t := sb.tables[c.table]
		if t == nil {
			return nil, fmt.Errorf("unbound alias %q", c.table)
		}
		if c.pos < 0 || c.pos >= len(t.Cols) {
			return nil, fmt.Errorf("alias %q has no column position %d", c.table, c.pos)
		}
		refs[c.table] = true
		return sqlast.C(c.table, t.Cols[c.pos].Name), nil
	case *clit:
		switch c.v.Kind {
		case KNull:
			return &sqlast.NullLit{}, nil
		case KInt:
			return sqlast.Int(c.v.I), nil
		case KFloat:
			return &sqlast.FloatLit{Value: c.v.F}, nil
		case KText:
			return sqlast.Str(c.v.S), nil
		case KBytes:
			return sqlast.Bytes(c.v.B), nil
		}
		return nil, fmt.Errorf("literal of kind %v", c.v.Kind)
	case *cbin:
		l, err := sb.decompile(c.l, refs)
		if err != nil {
			return nil, err
		}
		r, err := sb.decompile(c.r, refs)
		if err != nil {
			return nil, err
		}
		return &sqlast.Binary{Op: c.op, L: l, R: r}, nil
	case *cnot:
		inner, err := sb.decompile(c.x, refs)
		if err != nil {
			return nil, err
		}
		return &sqlast.Not{X: inner}, nil
	case *cbetween:
		cx, err := sb.decompile(c.x, refs)
		if err != nil {
			return nil, err
		}
		lo, err := sb.decompile(c.lo, refs)
		if err != nil {
			return nil, err
		}
		hi, err := sb.decompile(c.hi, refs)
		if err != nil {
			return nil, err
		}
		return &sqlast.Between{X: cx, Lo: lo, Hi: hi}, nil
	case *cisnull:
		inner, err := sb.decompile(c.x, refs)
		if err != nil {
			return nil, err
		}
		return &sqlast.IsNull{X: inner, Negate: c.negate}, nil
	case *cfunc:
		f := &sqlast.Func{Name: c.name}
		for _, a := range c.args {
			ae, err := sb.decompile(a, refs)
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, ae)
		}
		return f, nil
	case *cexists:
		sub, err := shapeSelect(c.plan, sb.tables)
		if err != nil {
			return nil, err
		}
		kind, name := "exists", MarkerExists
		if c.negate {
			kind, name = "not-exists", MarkerNotExists
		}
		k := len(sb.owner.Subplans)
		sb.owner.Subplans = append(sb.owner.Subplans, &SubplanShape{Kind: kind, Select: sub})
		for _, r := range sub.FreeRefs {
			refs[r] = true
		}
		return &sqlast.Func{Name: name, Args: []sqlast.Expr{sqlast.Int(int64(k))}}, nil
	case *csubq:
		sub, err := shapeSelect(c.plan, sb.tables)
		if err != nil {
			return nil, err
		}
		kind := "scalar"
		if c.plan.countStar {
			kind = "count"
		}
		k := len(sb.owner.Subplans)
		sb.owner.Subplans = append(sb.owner.Subplans, &SubplanShape{Kind: kind, Select: sub})
		for _, r := range sub.FreeRefs {
			refs[r] = true
		}
		return &sqlast.Func{Name: MarkerScalar, Args: []sqlast.Expr{sqlast.Int(int64(k))}}, nil
	}
	return nil, fmt.Errorf("unknown compiled expression %T", x)
}

// indexColNames resolves an index's column positions to names.
func indexColNames(t *Table, ix *Index) []string {
	out := make([]string, len(ix.Cols))
	for i, c := range ix.Cols {
		out[i] = t.Cols[c].Name
	}
	return out
}

func sortedNames(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
