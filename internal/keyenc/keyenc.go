// Package keyenc provides order-preserving ("memcomparable") byte
// encodings of SQL values for use as B+tree index keys.
//
// The encoding guarantees that for any two values a, b of the same
// type, bytes.Compare(Encode(a), Encode(b)) has the same sign as the
// SQL comparison of a and b, and that encoded composite keys compare
// componentwise. NULL sorts before every non-NULL value.
package keyenc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type tags prefixed to every encoded component so that heterogeneous
// columns never produce ambiguous byte strings. Within one index all
// components of a position share a tag, so ordering within the column
// is decided by the payload.
const (
	tagNull  byte = 0x01
	tagInt   byte = 0x02
	tagBytes byte = 0x03
	tagText  byte = 0x04
)

// escape/terminator pair for variable-length components: 0x00 bytes
// in the payload are escaped as 0x00 0xFF and the component is
// terminated by 0x00 0x01. Because 0x01 < 0xFF, a string that is a
// proper prefix of another sorts first, matching SQL semantics.
const (
	escByte  byte = 0x00
	escPad   byte = 0xFF
	termByte byte = 0x01
)

// AppendNull appends the encoding of SQL NULL.
func AppendNull(dst []byte) []byte { return append(dst, tagNull) }

// AppendInt appends an order-preserving encoding of a signed 64-bit
// integer: the value is offset by flipping the sign bit and stored
// big-endian.
func AppendInt(dst []byte, v int64) []byte {
	dst = append(dst, tagInt)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v)^(1<<63))
	return append(dst, buf[:]...)
}

// AppendBytes appends a variable-length byte-string component with
// 0x00-escaping and a terminator, preserving lexicographic order.
func AppendBytes(dst []byte, v []byte) []byte {
	dst = append(dst, tagBytes)
	return appendEscaped(dst, v)
}

// AppendText appends a text component. Text and bytes use the same
// escaping but different tags so they never collide in mixed keys.
func AppendText(dst []byte, v string) []byte {
	dst = append(dst, tagText)
	return appendEscaped(dst, []byte(v))
}

func appendEscaped(dst, v []byte) []byte {
	for _, b := range v {
		if b == escByte {
			dst = append(dst, escByte, escPad)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, escByte, termByte)
}

// AppendBytesPrefix appends a byte-string component WITHOUT the
// terminator, for building range-scan bounds that match every key
// whose component has the given prefix. Only valid as the last
// component of a bound.
func AppendBytesPrefix(dst []byte, v []byte) []byte {
	dst = append(dst, tagBytes)
	for _, b := range v {
		if b == escByte {
			dst = append(dst, escByte, escPad)
		} else {
			dst = append(dst, b)
		}
	}
	return dst
}

var errTruncated = errors.New("keyenc: truncated encoding")

// DecodeNext decodes the next component of an encoded key, returning
// the value (nil for NULL, int64, []byte or string) and the remaining
// bytes. It is used by index scans that need to recover values.
func DecodeNext(key []byte) (interface{}, []byte, error) {
	if len(key) == 0 {
		return nil, nil, errTruncated
	}
	switch key[0] {
	case tagNull:
		return nil, key[1:], nil
	case tagInt:
		if len(key) < 9 {
			return nil, nil, errTruncated
		}
		u := binary.BigEndian.Uint64(key[1:9])
		return int64(u ^ (1 << 63)), key[9:], nil
	case tagBytes, tagText:
		payload, rest, err := decodeEscaped(key[1:])
		if err != nil {
			return nil, nil, err
		}
		if key[0] == tagText {
			return string(payload), rest, nil
		}
		return payload, rest, nil
	default:
		return nil, nil, fmt.Errorf("keyenc: unknown tag 0x%02x", key[0])
	}
}

func decodeEscaped(key []byte) (payload, rest []byte, err error) {
	out := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		b := key[i]
		if b != escByte {
			out = append(out, b)
			continue
		}
		if i+1 >= len(key) {
			return nil, nil, errTruncated
		}
		switch key[i+1] {
		case escPad:
			out = append(out, escByte)
			i++
		case termByte:
			return out, key[i+2:], nil
		default:
			return nil, nil, fmt.Errorf("keyenc: bad escape 0x%02x", key[i+1])
		}
	}
	return nil, nil, errTruncated
}
