// Sanctioned SQL flows sqltaint must not flag.
package ok

import (
	"strings"

	"repro/internal/sqlast"
)

// Constants (including compiler-folded concatenation) are
// audit-visible in the source.
func constant() error {
	_, err := sqlast.Parse("SELECT d.pos FROM dewey d" + " ORDER BY d.pos")
	return err
}

// Round-tripping through the sanctioned emitter stays clean.
func rendered() error {
	st, err := sqlast.Parse("SELECT id FROM nodes")
	if err != nil {
		return err
	}
	q := sqlast.Render(st)
	_, err = sqlast.Parse(q)
	return err
}

// String parameters are the taint boundary: the caller answers for
// what it passes at its own sinks.
func boundary(q string) error {
	_, err := sqlast.Parse(q)
	return err
}

// Whitespace-only passthroughs preserve derivation.
func trimmed(q string) error {
	_, err := sqlast.Parse(strings.TrimSpace(q))
	return err
}

// A function literal is its own scope with its own parameter
// boundary.
func closure() func(string) error {
	return func(q string) error {
		_, err := sqlast.Parse(q)
		return err
	}
}

// The REPL exemption shape: raw input with a reasoned suppression.
func repl(line string) error {
	raw := "EXPLAIN " + line
	//xvet:ignore sqltaint -- test fixture mirroring cmd/xsql's REPL exemption
	_, err := sqlast.Parse(raw)
	return err
}
