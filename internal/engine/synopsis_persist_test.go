package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dewey"
	"repro/internal/failpoint"
	"repro/internal/synopsis"
)

// The planner's cardinality estimates come from the per-table
// synopsis, so recovery must reproduce it exactly: a database that
// answers queries correctly but plans them from stale or torn
// statistics would silently lose the paper's join-order wins. These
// tests pin the synopsis to the recovered row set — after clean
// reopen, after checkpoint + WAL-tail recovery, and after a crash at
// a durability failpoint — by comparing against a fresh rebuild of
// the same rows through an in-memory engine.

// rebuildSynopsis inserts tb's current rows into a fresh in-memory
// table with the same schema and returns the resulting synopsis.
func rebuildSynopsis(t *testing.T, tb *Table) *synopsis.Table {
	t.Helper()
	mem := NewDB()
	cols := make([]Column, len(tb.Cols))
	copy(cols, tb.Cols)
	ref, err := mem.CreateTable(tb.Name, cols...)
	if err != nil {
		t.Fatal(err)
	}
	if rows := tb.Rows(); len(rows) > 0 {
		if _, err := ref.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}
	return ref.Synopsis()
}

func TestSynopsisRecoveryMatchesFreshRebuild(t *testing.T) {
	dir := t.TempDir()
	db := seedPersistent(t, dir)
	live := db.Table("T").Synopsis()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tb := re.Table("T")
	if !synopsis.Equal(live, tb.Synopsis()) {
		t.Fatalf("recovered synopsis differs from pre-close:\nlive %s\nrecovered %s",
			live, tb.Synopsis())
	}
	if fresh := rebuildSynopsis(t, tb); !synopsis.Equal(fresh, tb.Synopsis()) {
		t.Fatalf("recovered synopsis differs from fresh rebuild:\nfresh %s\nrecovered %s",
			fresh, tb.Synopsis())
	}
}

func TestSynopsisCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	db := seedPersistent(t, dir)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Rows after the checkpoint land in the WAL tail; recovery must
	// fold them into the checkpointed synopsis, not restart from it.
	if _, err := db.Table("T").InsertBatch([][]Value{
		{NewInt(100), NewBytes(dewey.New(1, 9, 1)), NewText("tail")},
	}); err != nil {
		t.Fatal(err)
	}
	live := db.Table("T").Synopsis()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tb := re.Table("T")
	if !synopsis.Equal(live, tb.Synopsis()) {
		t.Fatalf("checkpoint+tail recovery changed the synopsis:\nlive %s\nrecovered %s",
			live, tb.Synopsis())
	}
	if fresh := rebuildSynopsis(t, tb); !synopsis.Equal(fresh, tb.Synopsis()) {
		t.Fatalf("recovered synopsis differs from fresh rebuild:\nfresh %s\nrecovered %s",
			fresh, tb.Synopsis())
	}
}

// TestSynopsisCrashRecovery crashes a write at wal/fsync (the site
// where recovery may surface either the pre- or post-write state) and
// checks that whichever row set survives, the synopsis is exactly the
// one a fresh load of those rows would build — never a half-observed
// batch.
func TestSynopsisCrashRecovery(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	db := seedPersistent(t, dir)
	if err := failpoint.Enable("wal/fsync", failpoint.Return(errCrash)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("T").InsertBatch([][]Value{
		{NewInt(100), NewBytes(dewey.New(1, 9, 1)), NewText("late")},
	}); !errors.Is(err, errCrash) {
		t.Fatalf("insert at armed wal/fsync: err = %v, want injected crash", err)
	}
	failpoint.Reset()

	// Abandon db without Close; recover from the surviving files.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	tb := re.Table("T")
	if got, want := tb.Synopsis().Rows(), int64(len(tb.Rows())); got != want {
		t.Fatalf("synopsis rows = %d, table has %d", got, want)
	}
	if fresh := rebuildSynopsis(t, tb); !synopsis.Equal(fresh, tb.Synopsis()) {
		t.Fatalf("post-crash synopsis differs from fresh rebuild of recovered rows:\nfresh %s\nrecovered %s",
			fresh, tb.Synopsis())
	}
}

// TestSynopsisConcurrentReaders hammers Synopsis() from readers while
// a writer commits batches. Each handle a reader obtains must be
// internally consistent — every seeded row has a non-null id, so
// Col(0).Count() == Rows() holds for every published state; a reader
// observing a half-updated synopsis would see them disagree. Run
// under -race this also proves the synopsis swap is properly
// published.
func TestSynopsisConcurrentReaders(t *testing.T) {
	db := NewDB()
	tb, err := db.CreateTable("T",
		Column{"id", TInt}, Column{"dewey_pos", TBytes}, Column{"text", TText})
	if err != nil {
		t.Fatal(err)
	}
	const batches, perBatch, readers = 40, 25, 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastRows int64
			for {
				select {
				case <-done:
					return
				default:
				}
				syn := tb.Synopsis()
				rows := syn.Rows()
				if c := syn.Col(0).Count(); c != rows {
					t.Errorf("torn synopsis: rows=%d col0 count=%d", rows, c)
					return
				}
				if rows < lastRows {
					t.Errorf("synopsis went backwards: %d after %d", rows, lastRows)
					return
				}
				lastRows = rows
			}
		}()
	}
	for b := 0; b < batches; b++ {
		rows := make([][]Value, perBatch)
		for i := range rows {
			n := b*perBatch + i
			rows[i] = []Value{NewInt(int64(n)), NewBytes(dewey.New(1, b+1, i+1)), NewText(fmt.Sprint(n))}
		}
		if _, err := tb.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if got := tb.Synopsis().Rows(); got != batches*perBatch {
		t.Fatalf("final synopsis rows = %d, want %d", got, batches*perBatch)
	}
}
