package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/failpoint"
	"repro/internal/keyenc"
	"repro/internal/synopsis"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// Table is a stable handle to a row-store table with optional B+tree
// indexes. The handle carries only the schema (name, columns) and the
// table's slot in the database snapshot; the versioned contents live
// in immutable tableState values published atomically by the single
// writer (see dbSnap). A statement — serial or morsel-parallel — pins
// the states its plan was compiled against and never observes a
// concurrent writer's partial work: readers are isolated by
// construction, not by external serialization.
type Table struct {
	Name   string
	Cols   []Column
	colIdx map[string]int
	pos    int // slot in dbSnap.states
	db     *DB
}

// tableState is one immutable version of a table's contents. Rows and
// index trees are never mutated after the state is published: a write
// builds a successor state sharing structure with its predecessor
// (rows by slice extension, trees by copy-on-write cloning) and
// publishes it in a new database snapshot.
type tableState struct {
	// version counts mutations (Insert, CreateIndex) monotonically per
	// table, so cached plans can detect that a table they were planned
	// against has changed. Distinct states always carry distinct
	// versions; the plan cache compares state pointers directly.
	version uint64
	rows    [][]Value
	indexes []*Index
	// hashIdx caches transient single-column hash indexes built on
	// demand by the executor for equijoins on non-indexed columns — the
	// engine's hash-join mechanism. Keyed by column position. The cache
	// is a lazy memo over this state's immutable rows, guarded by
	// hashMu; successor states start with an empty cache, which is the
	// snapshot-world equivalent of the old drop-on-insert invalidation
	// (and structurally fixes the reader/writer race that invalidation
	// had: a writer never touches the cache a running query is using).
	hashMu sync.Mutex
	//guardedby:hashMu
	hashIdx map[int]map[string][]int64
	//guardedby:hashMu
	hashMax map[int]int // largest bucket per hashed column
	// syn is the state's path/column synopsis: per-column counts,
	// min/max, value histograms, and distinct sketches maintained
	// incrementally by applyInsert. Like rows and indexes it is
	// immutable once the state is published, so the planner's
	// estimates are snapshot-consistent by construction; recovery and
	// checkpoint reload rebuild it by replaying inserts through the
	// same applyInsert path as live writes (persist.go).
	syn *synopsis.Table
}

// Index is a B+tree index over one or more columns.
type Index struct {
	Name string
	Cols []int // column positions, in key order
	Tree *btree.Tree
}

// dbSnap is an immutable snapshot of the whole database: the table
// handles (by name and creation order) plus the current state of
// every table, indexed by Table.pos. The single writer publishes a
// new snapshot per commit; a reader loads one pointer and sees a
// consistent multi-table view — a batch commit spanning several
// tables becomes visible all at once or not at all.
type dbSnap struct {
	seq    uint64
	byName map[string]*Table
	names  []string
	states []*tableState
}

// table resolves a name in this snapshot, or nil.
func (s *dbSnap) table(name string) *Table { return s.byName[name] }

// stateOf returns the pinned state of a table in this snapshot.
func (s *dbSnap) stateOf(t *Table) *tableState { return s.states[t.pos] }

// clone copies the snapshot's mutable containers for the writer to
// edit before publishing. Table states are shared by pointer; the
// writer replaces only the slots it touches.
func (s *dbSnap) clone() *dbSnap {
	return &dbSnap{
		seq:    s.seq + 1,
		byName: s.byName, // copied on CreateTable only
		names:  s.names,
		states: append(make([]*tableState, 0, len(s.states)+1), s.states...),
	}
}

// DB is a database: a set of tables with snapshot-isolated reads, a
// single serialized writer, and (when opened with Open) a write-ahead
// log making every committed statement durable.
type DB struct {
	//walorder:publish
	snap atomic.Pointer[dbSnap]
	// writeMu serializes all mutations: statement-level writes append
	// their WAL record, build successor table states, and publish the
	// new snapshot under this lock. Readers never take it.
	writeMu sync.Mutex
	plans   planCache
	// pers is the durability hook: nil for in-memory databases,
	// otherwise the WAL writer commits are logged to before they are
	// applied (see persist.go).
	//guardedby:writeMu
	pers *persister
	// peakMem is the high-water mark of per-statement accounted
	// memory across every statement run against this DB.
	peakMem atomic.Int64
	// heuristicPlans disables synopsis-backed estimation (the
	// planquality experiment baseline, SetHeuristicOnlyPlanning).
	heuristicPlans atomic.Bool
	// replanCount counts adaptive re-plans performed on this DB
	// (plancache.go maybeReplan), exposed via AdaptiveReplans.
	replanCount atomic.Uint64
}

// AdaptiveReplans returns how many cached plans this DB has re-planned
// because observed OpStats contradicted their cardinality estimates.
func (db *DB) AdaptiveReplans() uint64 { return db.replanCount.Load() }

// loadSnap returns the current snapshot.
func (db *DB) loadSnap() *dbSnap { return db.snap.Load() }

// notePeakMemory folds one statement's peak accounted memory into
// the DB-level high-water mark.
func (db *DB) notePeakMemory(peak int64) {
	for {
		p := db.peakMem.Load()
		if peak <= p || db.peakMem.CompareAndSwap(p, peak) {
			return
		}
	}
}

// PeakStatementMemory returns the largest peak accounted memory any
// single statement has reached on this DB (see Result.PeakMemBytes).
func (db *DB) PeakStatementMemory() int64 { return db.peakMem.Load() }

// NewDB returns an empty in-memory database.
func NewDB() *DB {
	db := &DB{}
	db.snap.Store(&dbSnap{byName: map[string]*Table{}})
	return db
}

// CreateTable creates a table. The column list must be non-empty with
// unique names. Like every mutation it is durably logged first when
// the database is persistent.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	t, err := db.applyCreateTable(name, cols)
	if err != nil {
		return nil, err
	}
	if err := db.logCreateTable(name, cols); err != nil {
		return nil, err
	}
	db.commitCreateTable(t)
	return t, nil
}

// applyCreateTable validates and builds the table handle without
// publishing it; the caller holds writeMu.
func (db *DB) applyCreateTable(name string, cols []Column) (*Table, error) {
	snap := db.loadSnap()
	if _, exists := snap.byName[name]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: table %q needs at least one column", name)
	}
	t := &Table{Name: name, Cols: cols, colIdx: map[string]int{}, pos: len(snap.states), db: db}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("engine: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[c.Name] = i
	}
	return t, nil
}

// commitCreateTable publishes the new table; the caller holds writeMu
// and has validated via applyCreateTable.
func (db *DB) commitCreateTable(t *Table) {
	snap := db.loadSnap()
	next := snap.clone()
	byName := make(map[string]*Table, len(snap.byName)+1)
	for k, v := range snap.byName {
		byName[k] = v
	}
	byName[t.Name] = t
	next.byName = byName
	next.names = append(append([]string(nil), snap.names...), t.Name)
	next.states = append(next.states, newTableState())
	db.snap.Store(next)
}

func newTableState() *tableState {
	return &tableState{hashIdx: map[int]map[string][]int64{}, hashMax: map[int]int{}, syn: synopsis.Empty()}
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.loadSnap().table(name) }

// TableNames returns the table names in creation order.
func (db *DB) TableNames() []string {
	return append([]string(nil), db.loadSnap().names...)
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// state returns the table's current published state.
func (t *Table) state() *tableState { return t.db.loadSnap().stateOf(t) }

// Rows returns the rows of the table's current snapshot. The returned
// slice (and its rows) is immutable shared state: callers must not
// modify it. Later inserts do not change it — re-call Rows to observe
// them.
func (t *Table) Rows() [][]Value { return t.state().rows }

// Version returns the table's mutation counter: it increments on
// every Insert/InsertBatch/CreateIndex commit.
func (t *Table) Version() uint64 { return t.state().version }

// validateRow checks arity and value kinds against the schema.
func (t *Table) validateRow(row []Value) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("engine: table %q expects %d values, got %d", t.Name, len(t.Cols), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		ok := false
		switch t.Cols[i].Type {
		case TInt:
			ok = v.Kind == KInt
		case TFloat:
			ok = v.Kind == KFloat || v.Kind == KInt
		case TText:
			ok = v.Kind == KText
		case TBytes:
			ok = v.Kind == KBytes
		}
		if !ok {
			return fmt.Errorf("engine: table %q column %q (%s) cannot hold %s",
				t.Name, t.Cols[i].Name, t.Cols[i].Type, v.Kind)
		}
	}
	return nil
}

// applyInsert builds the successor state appending rows; it never
// mutates st. Row storage is extended in place when capacity allows:
// safe, because the predecessor state's readers are bounded by their
// own slice length and the single writer is serialized by writeMu.
// Index trees are copy-on-write clones, so the predecessor's trees
// keep serving concurrent readers unchanged.
func applyInsert(st *tableState, rows [][]Value) *tableState {
	next := newTableState()
	next.version = st.version + 1
	next.rows = st.rows
	base := int64(len(st.rows))
	syn := synopsis.Extend(st.syn)
	for _, row := range rows {
		next.rows = append(next.rows, row)
		observeRow(syn, row)
	}
	next.syn = syn.Seal()
	next.indexes = make([]*Index, len(st.indexes))
	for i, ix := range st.indexes {
		nix := &Index{Name: ix.Name, Cols: ix.Cols, Tree: ix.Tree.Clone()}
		for j, row := range rows {
			nix.Tree.Insert(nix.key(row), base+int64(j))
		}
		next.indexes[i] = nix
	}
	return next
}

// Insert appends a row. The row length must match the column count;
// value kinds must be compatible with the column types (or NULL).
// All indexes are maintained; the commit is durable (WAL + fsync)
// before it becomes visible when the database is persistent.
func (t *Table) Insert(row []Value) (int64, error) {
	if err := t.validateRow(row); err != nil {
		return 0, err
	}
	t.db.writeMu.Lock()
	defer t.db.writeMu.Unlock()
	st := t.state()
	id := int64(len(st.rows))
	if err := t.db.logInsert(t.Name, [][]Value{row}); err != nil {
		return 0, err
	}
	t.commitState(applyInsert(st, [][]Value{row}))
	return id, nil
}

// InsertBatch appends rows atomically: one commit, one WAL record,
// one fsync, one published snapshot. Readers observe all of the batch
// or none of it. It returns the row id assigned to the first row.
func (t *Table) InsertBatch(rows [][]Value) (int64, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	for _, row := range rows {
		if err := t.validateRow(row); err != nil {
			return 0, err
		}
	}
	t.db.writeMu.Lock()
	defer t.db.writeMu.Unlock()
	st := t.state()
	id := int64(len(st.rows))
	if err := t.db.logInsert(t.Name, rows); err != nil {
		return 0, err
	}
	t.commitState(applyInsert(st, rows))
	return id, nil
}

// commitState publishes a successor state for the table; the caller
// holds writeMu.
func (t *Table) commitState(next *tableState) {
	snap := t.db.loadSnap()
	ns := snap.clone()
	ns.states[t.pos] = next
	t.db.snap.Store(ns)
}

// MustInsert is Insert that panics on error, for loaders with
// statically known shapes.
func (t *Table) MustInsert(row ...Value) int64 {
	id, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return id
}

// observeRow feeds one row's values into the synopsis builder,
// dispatching on value kind (the synopsis package is engine-agnostic).
func observeRow(b *synopsis.Builder, row []Value) {
	for i, v := range row {
		switch v.Kind {
		case KNull:
			b.Null(i)
		case KInt, KBool:
			b.Int(i, v.I)
		case KFloat:
			b.Float(i, v.F)
		case KText:
			b.Text(i, v.S)
		case KBytes:
			b.Bytes(i, v.B)
		}
	}
	b.Row()
}

// applyCreateIndex builds the successor state carrying the new index;
// existing rows are indexed immediately. The synopsis is shared with
// the predecessor: an index changes access paths, not contents.
func applyCreateIndex(st *tableState, name string, positions []int) *tableState {
	next := newTableState()
	next.version = st.version + 1
	next.rows = st.rows
	next.syn = st.syn
	ix := &Index{Name: name, Cols: positions, Tree: btree.New()}
	for id, row := range st.rows {
		ix.Tree.Insert(ix.key(row), int64(id))
	}
	next.indexes = append(append([]*Index(nil), st.indexes...), ix)
	return next
}

// resolveIndexCols validates a CreateIndex request against the
// table's schema and current indexes.
func (t *Table) resolveIndexCols(st *tableState, name string, cols []string) ([]int, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: index %q needs at least one column", name)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.ColIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("engine: index %q: no column %q in table %q", name, c, t.Name)
		}
		positions[i] = p
	}
	for _, existing := range st.indexes {
		if existing.Name == name {
			return nil, fmt.Errorf("engine: index %q already exists on table %q", name, t.Name)
		}
	}
	return positions, nil
}

// CreateIndex builds a B+tree index over the named columns. Existing
// rows are indexed immediately. A new index changes the chosen access
// paths of cached plans, so the commit bumps the table version like
// any other mutation.
func (t *Table) CreateIndex(name string, cols ...string) (*Index, error) {
	t.db.writeMu.Lock()
	defer t.db.writeMu.Unlock()
	st := t.state()
	positions, err := t.resolveIndexCols(st, name, cols)
	if err != nil {
		return nil, err
	}
	if err := t.db.logCreateIndex(t.Name, name, cols); err != nil {
		return nil, err
	}
	next := applyCreateIndex(st, name, positions)
	t.commitState(next)
	return next.indexes[len(next.indexes)-1], nil
}

// Indexes returns the indexes of the table's current snapshot.
func (t *Table) Indexes() []*Index { return t.state().indexes }

// FindIndex returns an index of the current snapshot whose leading
// columns are exactly the given column positions (in order),
// preferring the shortest such index; nil if none exists.
func (t *Table) FindIndex(leading ...int) *Index { return t.state().findIndex(leading...) }

// findIndex is FindIndex against a pinned state (the planner resolves
// access paths against the snapshot its plan is compiled for).
func (st *tableState) findIndex(leading ...int) *Index {
	var best *Index
	for _, ix := range st.indexes {
		if len(ix.Cols) < len(leading) {
			continue
		}
		match := true
		for i, c := range leading {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match && (best == nil || len(ix.Cols) < len(best.Cols)) {
			best = ix
		}
	}
	return best
}

// key builds the index key for a row.
func (ix *Index) key(row []Value) []byte {
	var k []byte
	for _, c := range ix.Cols {
		k = encodeValue(k, row[c])
	}
	return k
}

// encodeValue appends the order-preserving encoding of v.
func encodeValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KNull:
		return keyenc.AppendNull(dst)
	case KInt, KBool:
		return keyenc.AppendInt(dst, v.I)
	case KFloat:
		// Floats are keyed by their text form only in row-distinct keys;
		// indexes on float columns are not used for range scans here.
		return keyenc.AppendText(dst, v.String())
	case KText:
		return keyenc.AppendText(dst, v.S)
	case KBytes:
		return keyenc.AppendBytes(dst, v.B)
	}
	return dst
}

// hash returns (building on demand) the transient hash index for a
// column: the executor's hash-join build side. This unaccounted form
// serves the planner's cost estimation; execution paths go through
// hashFor so builds are charged to the running statement.
func (st *tableState) hash(col int) map[string][]int64 {
	m, _, _, err := st.hashFor(col, nil)
	if err != nil {
		// With a nil accountant the only failure mode is an armed
		// failpoint; planner-side estimation has no error path, so an
		// injected build fault surfaces through the statement panic
		// boundary instead.
		panic(err)
	}
	return m
}

// hashFor returns the transient hash index for a column, building it
// on demand over this state's immutable rows. A build is charged to
// the statement's accountant and aborts (without publishing a partial
// map) when the memory budget is exceeded; built reports whether this
// call performed the build (so callers can re-check deadlines after a
// long one) and bytes the amount it charged, for attribution to the
// probing operator's OpStats. The "engine/hash-build" failpoint fires
// on every access, built or cached, making the hash path's error
// handling injectable regardless of which statement performed the
// build.
func (st *tableState) hashFor(col int, ac *accountant) (m map[string][]int64, built bool, bytes int64, err error) {
	if err := failpoint.Inject("engine/hash-build"); err != nil {
		return nil, false, 0, err
	}
	st.hashMu.Lock()
	defer st.hashMu.Unlock()
	if m, ok := st.hashIdx[col]; ok {
		return m, false, 0, nil
	}
	m = make(map[string][]int64, len(st.rows))
	var buf []byte
	for id, row := range st.rows {
		buf = encodeValue(buf[:0], row[col])
		key := string(buf)
		ids, ok := m[key]
		if !ok {
			bytes += int64(len(key)) + mapEntryBytes
		}
		bytes += 8 // one row id
		m[key] = append(ids, int64(id))
		if id&0x3FF == 0x3FF {
			// Abort an over-budget build mid-way rather than after
			// materializing the whole side.
			if err := ac.wouldExceed(bytes); err != nil {
				return nil, false, 0, err
			}
		}
	}
	if err := ac.growBytes(bytes); err != nil {
		return nil, false, 0, err
	}
	max := 0
	for _, ids := range m {
		if len(ids) > max {
			max = len(ids)
		}
	}
	st.hashIdx[col] = m
	st.hashMax[col] = max
	return m, true, bytes, nil
}

// hashMaxBucket returns the largest bucket of the column's transient
// hash index (building it if needed) — the planner's worst-case
// estimate for a hash join probe.
func (st *tableState) hashMaxBucket(col int) int {
	st.hash(col)
	st.hashMu.Lock()
	defer st.hashMu.Unlock()
	return st.hashMax[col]
}

// Synopsis returns the synopsis of the table's current snapshot. It
// is immutable; later inserts publish a successor.
func (t *Table) Synopsis() *synopsis.Table { return t.state().syn }

// Stats returns simple statistics used by the planner and reports.
type Stats struct {
	Rows    int
	Indexes int
}

// Stats returns the statistics of the table's current snapshot.
func (t *Table) Stats() Stats {
	st := t.state()
	return Stats{Rows: len(st.rows), Indexes: len(st.indexes)}
}

// SortedTableSizes renders "name=rows" pairs sorted by name, for
// loader diagnostics. The counts come from one snapshot: a batch
// commit is reflected in all of them or none.
func (db *DB) SortedTableSizes() []string {
	snap := db.loadSnap()
	names := append([]string(nil), snap.names...)
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, len(snap.stateOf(snap.byName[n]).rows))
	}
	return out
}
