package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

// collect opens path and returns every replayed record.
func collect(t *testing.T, path string) ([]Record, *Log) {
	t.Helper()
	var recs []Record
	l, err := Open(path, func(rec Record) error {
		p := make([]byte, len(rec.Payload))
		copy(p, rec.Payload)
		recs = append(recs, Record{LSN: rec.LSN, Payload: p})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma gamma gamma")}
	for i, p := range payloads {
		lsn, err := l.Commit(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if got := l.LastLSN(); got != 3 {
		t.Fatalf("LastLSN = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, l2 := collect(t, path)
	defer l2.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) || !bytes.Equal(rec.Payload, payloads[i]) {
			t.Errorf("record %d = {%d, %q}, want {%d, %q}", i, rec.LSN, rec.Payload, i+1, payloads[i])
		}
	}
	// Appends after reopen continue the LSN sequence.
	lsn, err := l2.Commit([]byte("delta"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Errorf("post-reopen lsn = %d, want 4", lsn)
	}
}

// TestTornTailEveryOffset is the torn-write property test: for every
// possible truncation point inside the final frame, Open must recover
// exactly the preceding records and truncate the tail, and the log
// must accept new appends afterwards.
func TestTornTailEveryOffset(t *testing.T) {
	base := tmpLog(t)
	l, err := Open(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("first record")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("second record")); err != nil {
		t.Fatal(err)
	}
	mark, err := os.Stat(base)
	if err != nil {
		t.Fatal(err)
	}
	keep := mark.Size() // end of the frames that must survive
	if _, err := l.Commit([]byte("the final, torn record")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for cut := keep; cut < int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.log")
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			recs, l := collect(t, path)
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want 2", len(recs))
			}
			if string(recs[0].Payload) != "first record" || string(recs[1].Payload) != "second record" {
				t.Fatalf("recovered payloads %q, %q", recs[0].Payload, recs[1].Payload)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != keep {
				t.Errorf("file size after recovery = %d, want %d (tail truncated)", st.Size(), keep)
			}
			// The recovered log keeps working: append, close, replay all 3.
			if lsn, err := l.Commit([]byte("replacement")); err != nil || lsn != 3 {
				t.Fatalf("post-recovery Commit = (%d, %v), want (3, nil)", lsn, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs2, l2 := collect(t, path)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			if len(recs2) != 3 || string(recs2[2].Payload) != "replacement" {
				t.Fatalf("after repair replay = %d records (last %q), want 3 / %q",
					len(recs2), recs2[len(recs2)-1].Payload, "replacement")
			}
		})
	}
}

// TestCorruptionCorpus flips one bit at every byte of a valid log and
// checks Open never fails and never yields a record that was not
// committed: each replayed record must match the original at its
// position (corruption can only shorten the sequence, not alter it).
func TestCorruptionCorpus(t *testing.T) {
	base := tmpLog(t)
	l, err := Open(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 4; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{'x'}, i*7))))
		want = append(want, p)
		if _, err := l.Commit(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for off := 0; off < len(full); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := make([]byte, len(full))
			copy(mut, full)
			mut[off] ^= bit
			path := filepath.Join(dir, "flip.log")
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			var got [][]byte
			l, err := Open(path, func(rec Record) error {
				p := make([]byte, len(rec.Payload))
				copy(p, rec.Payload)
				got = append(got, p)
				return nil
			})
			if err != nil {
				t.Fatalf("offset %d bit %#x: Open failed: %v", off, bit, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) > len(want) {
				t.Fatalf("offset %d bit %#x: replayed %d records from a 4-record log", off, bit, len(got))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("offset %d bit %#x: record %d = %q, want %q (corruption altered a record)",
						off, bit, i, got[i], want[i])
				}
			}
			// A flip inside record i's frame must kill records i..3. (A
			// flipped length field can also orphan later frames; only the
			// prefix property is guaranteed, checked above.)
		}
	}
}

// TestCorruptLengthField checks the two length pathologies directly:
// a length beyond MaxRecordSize and a length running past EOF are both
// treated as a torn tail, without huge allocations or errors.
func TestCorruptLengthField(t *testing.T) {
	for _, tc := range []struct {
		name string
		len  uint32
	}{
		{"huge", 1<<31 + 12},
		{"past-eof", 1 << 20},
		{"below-min", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := tmpLog(t)
			l, err := Open(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.Commit([]byte("good")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			frame := make([]byte, 16)
			frame[0] = byte(tc.len)
			frame[1] = byte(tc.len >> 8)
			frame[2] = byte(tc.len >> 16)
			frame[3] = byte(tc.len >> 24)
			if err := os.WriteFile(path, append(good, frame...), 0o644); err != nil {
				t.Fatal(err)
			}
			recs, l2 := collect(t, path)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || string(recs[0].Payload) != "good" {
				t.Fatalf("recovered %d records, want just %q", len(recs), "good")
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != int64(len(good)) {
				t.Errorf("size after recovery = %d, want %d", st.Size(), len(good))
			}
		})
	}
}

// TestScanStrict checks that Scan (the checkpoint reader) rejects what
// Open tolerates: any invalid frame is an error.
func TestScanStrict(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Commit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	n := 0
	if err := Scan(path, func(rec Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Scan visited %d records, want 3", n)
	}

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated tail: error.
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Scan(path, func(rec Record) error { return nil }); err == nil {
		t.Error("Scan accepted a truncated file")
	}
	// Flipped payload byte: error.
	mut := make([]byte, len(full))
	copy(mut, full)
	mut[len(mut)-1] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Scan(path, func(rec Record) error { return nil }); err == nil {
		t.Error("Scan accepted a corrupt frame")
	}
	// Missing file: error (checkpoints are only scanned when present).
	if err := Scan(filepath.Join(t.TempDir(), "nope"), nil); err == nil {
		t.Error("Scan accepted a missing file")
	}
}

func TestResetAndEnsureNext(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Commit([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("size after Reset = %d, want 0", st.Size())
	}
	// In-process, LSNs keep counting past the reset.
	lsn, err := l.Commit([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-Reset lsn = %d, want 6", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Across a reopen the file alone says next=7; EnsureNext must be
	// able to raise it (recovery calls it with the checkpoint base) and
	// must never lower it.
	recs, l2 := collect(t, path)
	if len(recs) != 1 || recs[0].LSN != 6 {
		t.Fatalf("replay after reset+append = %+v", recs)
	}
	l2.EnsureNext(100)
	l2.EnsureNext(50) // no-op: lower than current
	lsn, err = l2.Commit([]byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 100 {
		t.Fatalf("post-EnsureNext lsn = %d, want 100", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("Append accepted an oversize record")
	}
	if got := l.LastLSN(); got != 0 {
		t.Errorf("LastLSN after rejected append = %d, want 0", got)
	}
}

// TestLSNTamperRejected checks the CRC-covers-LSN property: rewriting
// a frame's LSN field in place (relabeling where in the sequence it
// claims to sit, as a cross-position transplant would need to) breaks
// the checksum and ends replay at the previous frame.
func TestLSNTamperRejected(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The second frame starts after the first: header(8) + lsn(8) +
	// len("first")(5). Its LSN field is the 8 bytes after its header.
	off := 8 + 8 + 5
	full[off+8] = 9 // LSN 2 -> 9, payload and CRC untouched
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, l2 := collect(t, path)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Fatalf("replay after LSN tamper = %d records, want just %q", len(recs), "first")
	}
}
