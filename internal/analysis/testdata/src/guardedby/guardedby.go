// Package guardedby exercises //guardedby: lockset checking: writes
// to annotated fields need the named mutex in the may-held lockset,
// with entry locksets propagated across static call edges; calls into
// //guardedby:caller() structs of another package need the caller's
// mutex at the call site.
package guardedby

import (
	"sync"

	"guardedby/internal/wal"
)

type cache struct {
	mu sync.Mutex
	//guardedby:mu
	hits int
	//guardedby:mu
	byKey map[string]int
}

// Get holds the lock across the write: fine, including under defer.
func (c *cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.byKey[k]
	if ok {
		c.hits++
	}
	return v, ok
}

// GetRacy writes an annotated field with no lock anywhere.
func (c *cache) GetRacy(k string) int {
	c.hits++ // want `write to c.hits \(field guarded by mu\) without mu held`
	return c.byKey[k]
}

// put relies on its callers' lock; every caller holds it, so the
// intersected entry lockset carries mu in.
func (c *cache) put(k string, v int) {
	c.byKey[k] = v
}

func (c *cache) Fill(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, v)
}

// putRacy is reached by one locked and one lock-free caller: the
// entry intersection is empty and the finding names the lock-free
// path.
func (c *cache) putRacy(k string, v int) {
	c.byKey[k] = v // want `without mu held; lock-free call path`
}

func (c *cache) FillLocked(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putRacy(k, v)
}

func (c *cache) FillUnlocked(k string, v int) {
	c.putRacy(k, v)
}

// DB owns the mutex that serializes the wal.Log it holds.
type DB struct {
	writeMu sync.Mutex
	log     *wal.Log
}

// Commit appends under writeMu, as the Log's annotations demand.
func (db *DB) Commit(p []byte) uint64 {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.log.Append(p)
}

// CommitRacy calls a mutating method without the caller-held mutex.
func (db *DB) CommitRacy(p []byte) uint64 {
	return db.log.Append(p) // want `mutates fields guarded by caller-held writeMu`
}

// Tail only reads; read-only methods are not mutators.
func (db *DB) Tail() uint64 {
	return db.log.LastLSN()
}

// Fresh appends to a handle built here: construction is exempt.
func Fresh(p []byte) uint64 {
	l := wal.Open()
	return l.Append(p)
}
