package engine

import (
	"math"

	"repro/internal/sqlast"
)

// maxDPTables bounds the exhaustive join-order search (2^n states).
const maxDPTables = 10

// sampleLimit bounds precise single-table selectivity evaluation.
const sampleLimit = 4096

// chooseJoinOrder picks the binding order of the FROM tables. For up
// to maxDPTables it runs a Selinger-style dynamic program over table
// subsets minimizing the sum of estimated intermediate result sizes;
// beyond that it falls back to a greedy minimum-fanout order. Both
// use per-step access-path estimates scaled by sampled single-table
// filter selectivities, with a heavy penalty for cross products.
// The returned method name ("single", "dp", "greedy") is recorded on
// the plan for the exported shape (plantrace.go).
func (p *planner) chooseJoinOrder(names []string, local map[string]*Table, conjuncts []*conjunct, sc *scope) ([]string, string) {
	n := len(names)
	if n <= 1 {
		return names, "single"
	}
	sel := p.sampleSelectivities(names, local, conjuncts, sc)

	// fanout estimates one step's multiplier given the bound set.
	fanout := func(name string, bound map[string]bool, atStart bool) float64 {
		t := local[name]
		access, connected := p.bestAccess(name, t, conjuncts, bound, sc)
		e := float64(access.est(p.snap.stateOf(t)))
		e *= sel[name]
		if e < 1 {
			e = 1
		}
		if !connected && !atStart {
			e *= 4096
		}
		return e
	}

	if n > maxDPTables {
		return p.greedyOrder(names, local, conjuncts, sc, fanout), "greedy"
	}

	type state struct {
		cost float64 // sum of intermediate sizes
		rows float64 // estimated rows after binding the subset
		last int     // last table bound (to reconstruct)
		prev int     // previous mask
	}
	size := 1 << n
	dp := make([]state, size)
	for i := range dp {
		dp[i] = state{cost: math.Inf(1)}
	}
	dp[0] = state{cost: 0, rows: 1, last: -1, prev: -1}
	boundOf := func(mask int) map[string]bool {
		b := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				b[names[i]] = true
			}
		}
		return b
	}
	for mask := 0; mask < size; mask++ {
		if math.IsInf(dp[mask].cost, 1) {
			continue
		}
		bound := boundOf(mask)
		for i := 0; i < n; i++ {
			bit := 1 << i
			if mask&bit != 0 {
				continue
			}
			f := fanout(names[i], bound, mask == 0)
			rows := dp[mask].rows * f
			if rows > 1e18 {
				rows = 1e18
			}
			cost := dp[mask].cost + rows
			next := mask | bit
			if cost < dp[next].cost {
				dp[next] = state{cost: cost, rows: rows, last: i, prev: mask}
			}
		}
	}
	out := make([]string, 0, n)
	for mask := size - 1; mask != 0; mask = dp[mask].prev {
		out = append(out, names[dp[mask].last])
	}
	// Reverse into binding order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, "dp"
}

// greedyOrder is the fallback for wide FROM lists: repeatedly bind
// the table with the smallest estimated fanout.
func (p *planner) greedyOrder(names []string, local map[string]*Table, conjuncts []*conjunct, sc *scope, fanout func(string, map[string]bool, bool) float64) []string {
	bound := map[string]bool{}
	remaining := append([]string(nil), names...)
	var out []string
	for len(remaining) > 0 {
		bestIdx := 0
		best := math.Inf(1)
		for i, name := range remaining {
			if f := fanout(name, bound, len(out) == 0); f < best {
				best = f
				bestIdx = i
			}
		}
		name := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		bound[name] = true
		out = append(out, name)
	}
	return out
}

// sampleSelectivities estimates, per table, the fraction of rows that
// survive its single-table filters. Small tables are evaluated
// exactly (dynamic sampling); larger ones use a flat heuristic per
// filtering conjunct.
func (p *planner) sampleSelectivities(names []string, local map[string]*Table, conjuncts []*conjunct, sc *scope) map[string]float64 {
	out := make(map[string]float64, len(names))
	ec := &execCtx{db: p.db}
	for _, name := range names {
		out[name] = 1
		t := local[name]
		// Collect this table's single-table, uncorrelated conjuncts.
		var own []sqlast.Expr
		for _, c := range conjuncts {
			if c.expr == nil || len(c.localRef) != 1 || !c.localRef[name] {
				continue
			}
			if !refsOnlyTable(c.expr, name, t) {
				continue
			}
			own = append(own, c.expr)
		}
		if len(own) == 0 {
			continue
		}
		rows := p.snap.stateOf(t).rows
		if len(rows) > 0 && len(rows) <= sampleLimit {
			compiled := make([]cexpr, 0, len(own))
			ok := true
			for _, e := range own {
				ce, err := p.compile(e, sc)
				if err != nil {
					ok = false
					break
				}
				compiled = append(compiled, ce)
			}
			if ok {
				matches := 0
				e := env{}
				count := func(row []Value) bool {
					e[name] = row
					defer delete(e, name)
					for _, ce := range compiled {
						v, err := ce.eval(ec, e)
						if err != nil || !v.Truth() {
							return false
						}
					}
					return true
				}
				for _, row := range rows {
					if count(row) {
						matches++
					}
				}
				out[name] = float64(matches) / float64(len(rows))
				if out[name] == 0 {
					out[name] = 0.5 / float64(len(rows))
				}
				continue
			}
		}
		// Heuristic: each filter keeps a tenth.
		s := math.Pow(0.1, float64(len(own)))
		if s < 1e-4 {
			s = 1e-4
		}
		out[name] = s
	}
	return out
}

// refsOnlyTable reports whether an expression references only columns
// of the given table (no other tables, no subqueries), so it can be
// evaluated row-by-row for sampling.
func refsOnlyTable(e sqlast.Expr, name string, t *Table) bool {
	switch x := e.(type) {
	case *sqlast.Col:
		if x.Table != "" {
			return x.Table == name
		}
		return t.ColIndex(x.Column) >= 0
	case *sqlast.IntLit, *sqlast.FloatLit, *sqlast.StrLit, *sqlast.BytesLit, *sqlast.NullLit:
		return true
	case *sqlast.Binary:
		return refsOnlyTable(x.L, name, t) && refsOnlyTable(x.R, name, t)
	case *sqlast.Not:
		return refsOnlyTable(x.X, name, t)
	case *sqlast.Between:
		return refsOnlyTable(x.X, name, t) && refsOnlyTable(x.Lo, name, t) && refsOnlyTable(x.Hi, name, t)
	case *sqlast.IsNull:
		return refsOnlyTable(x.X, name, t)
	case *sqlast.Func:
		for _, a := range x.Args {
			if !refsOnlyTable(a, name, t) {
				return false
			}
		}
		return true
	default:
		// EXISTS / scalar subqueries: never sample.
		return false
	}
}
