package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func td(name string) string { return filepath.Join("..", "..", "testdata", name) }

func TestRunWithSchema(t *testing.T) {
	if err := run("", td("figure1.schema"), false, td("figure1.xml")); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithXSD(t *testing.T) {
	if err := run("", td("figure1.xsd"), true, td("figure1.xml")); err != nil {
		t.Fatal(err)
	}
}

func TestRunInferred(t *testing.T) {
	if err := run("", "", false, td("figure1.xml")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", false, "nosuch.xml"); err == nil {
		t.Error("missing document should fail")
	}
	if err := run("", "nosuch.schema", false, td("figure1.xml")); err == nil {
		t.Error("missing schema should fail")
	}
	if err := run("", td("figure1.xml"), false, td("figure1.xml")); err == nil {
		t.Error("document as schema should fail to parse")
	}
}

// TestRunPersistent loads the same document twice into a -db store;
// the second run must attach to the recovered relations and assign
// the next document id rather than starting over.
func TestRunPersistent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	for i := 0; i < 2; i++ {
		if err := run(dir, td("figure1.schema"), false, td("figure1.xml")); err != nil {
			t.Fatalf("run %d: %v", i+1, err)
		}
	}
	db, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	f := db.Table("F")
	if f == nil {
		t.Fatal("relation F missing after two loads")
	}
	one := engine.NewDB()
	st, err := shredFixture(one)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.Stats().Rows, 2*st.DB.Table("F").Stats().Rows; got != want {
		t.Errorf("F rows after two loads = %d, want %d", got, want)
	}
}

// shredFixture loads figure1.xml once into db under its schema, as a
// single-document row-count baseline.
func shredFixture(db *engine.DB) (*shred.SchemaAwareStore, error) {
	data, err := os.ReadFile(td("figure1.schema"))
	if err != nil {
		return nil, err
	}
	s, err := schema.ParseCompact(string(data))
	if err != nil {
		return nil, err
	}
	st, err := shred.NewSchemaAwareDB(db, s)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(td("figure1.xml"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := xmltree.Parse(f)
	if err != nil {
		return nil, err
	}
	if _, err := st.Load(doc); err != nil {
		return nil, err
	}
	return st, nil
}
