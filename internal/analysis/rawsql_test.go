package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRawSQL(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RawSQL, "rawsql/a", "rawsql/ok")
}

// The renderer itself is the sanctioned emitter: running rawsql over
// the real internal/sqlast package must stay clean.
func TestRawSQLSanctionsRenderer(t *testing.T) {
	expectClean(t, analysis.RawSQL, "repro/internal/sqlast")
}
