package core

import (
	"repro/internal/schema"
	"repro/internal/xpath"
)

// PatternTrace records one Table 1 regex construction as it happens:
// the inputs (fragment steps, anchoring, boundary name pattern) and
// the pattern the translator derived from them. transcheck subscribes
// to it to verify every emitted pattern against a reference automaton
// built directly from the axis semantics — the trace fires at
// construction time, before path-filter omission (Section 4.5) can
// discard the pattern, so statically omitted filters are still
// checked.
type PatternTrace struct {
	// Kind is the constructing rule: "forward", "backward",
	// "forward-suffix" or "backward-suffix".
	Kind string
	// Steps are the fragment's normalized steps (shared, read-only).
	Steps []*xpath.Step
	// Anchored is the forward rule's root anchoring flag.
	Anchored bool
	// Base is the boundary name pattern: forward's baseName,
	// backward's contextName, the suffix rules' prev/context name.
	Base string
	// Pattern is the derived Table 1 regex.
	Pattern string
}

// patternTrace, when non-nil, observes every Table 1 construction.
var patternTrace func(PatternTrace)

// SetPatternTrace installs (or, with nil, removes) the construction
// observer. Not safe for use concurrently with translation; the only
// intended caller is transcheck's single-threaded corpus sweep.
func SetPatternTrace(fn func(PatternTrace)) { patternTrace = fn }

func tracePattern(kind string, steps []*xpath.Step, anchored bool, base, pattern string) {
	if patternTrace != nil {
		patternTrace(PatternTrace{Kind: kind, Steps: steps, Anchored: anchored, Base: base, Pattern: pattern})
	}
}

// OmissionTrace records one Section 4.5 path-filter decision as the
// translator makes it: the node whose filter was considered, the
// pattern, and the decision with the evidence (Mark, matched path
// counts) that justified it. plancheck subscribes to it and
// re-derives every decision independently, failing when the evidence
// does not support the decision. It fires only when the
// PathFilterOmission option is on — with the optimization off no
// filter is ever omitted, so there is nothing to audit.
type OmissionTrace struct {
	// Node is the schema node whose path filter was considered
	// (shared, read-only).
	Node *schema.Node
	// Pattern is the path regex the filter would test.
	Pattern string
	// Decision is the static outcome the translator applied.
	Decision schema.OmissionDecision
	// Evidence is the justification JustifyOmission derived.
	Evidence schema.OmissionEvidence
}

// omissionTrace, when non-nil, observes every omission decision.
var omissionTrace func(OmissionTrace)

// SetOmissionTrace installs (or, with nil, removes) the omission
// observer. Not safe for use concurrently with translation; the
// intended caller is plancheck's single-threaded sweep.
func SetOmissionTrace(fn func(OmissionTrace)) { omissionTrace = fn }

func traceOmission(node *schema.Node, pattern string, d schema.OmissionDecision, ev schema.OmissionEvidence) {
	if omissionTrace != nil {
		omissionTrace(OmissionTrace{Node: node, Pattern: pattern, Decision: d, Evidence: ev})
	}
}
