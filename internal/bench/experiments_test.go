package bench

import (
	"strings"
	"testing"
)

func tinyOpts() Opts { return Opts{Reps: 1, Budget: 0, Verify: true} }

func TestFig3Table(t *testing.T) {
	w, err := NewXMark(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Fig3([]*Workload{w}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(w.Queries) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(w.Queries))
	}
	s := tb.String()
	if !strings.Contains(s, "Q1") || !strings.Contains(s, "Edge-like PPF") {
		t.Errorf("table rendering missing content:\n%s", s)
	}
}

func TestAppendixCTable(t *testing.T) {
	w, err := NewDBLP(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := AppendixC(w, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if len(tb.Headers) != 2+len(Systems) {
		t.Fatalf("headers = %v", tb.Headers)
	}
	// Every row should carry a cardinality and five cells.
	for _, r := range tb.Rows {
		if len(r) != len(tb.Headers) {
			t.Fatalf("ragged row %v", r)
		}
	}
}

func TestAblationTables(t *testing.T) {
	w, err := NewXMark(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := AblatePathFilter(w, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Rows) != len(w.Queries) {
		t.Fatalf("path-filter rows = %d", len(pf.Rows))
	}
	// The omission optimization must strictly reduce join counts for
	// at least some queries (e.g. the pure child paths).
	improved := false
	for _, r := range pf.Rows {
		if r[1] < r[2] {
			improved = true
		}
	}
	if !improved {
		t.Error("path-filter omission never reduced join counts")
	}
	fk, err := AblateFKJoin(w, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fk.Rows) != len(w.Queries) {
		t.Fatalf("fk rows = %d", len(fk.Rows))
	}
}

func TestExplainCheckTable(t *testing.T) {
	w, err := NewXMark(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ExplainCheck([]*Workload{w}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(w.Queries) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(w.Queries))
	}
	for _, r := range tb.Rows {
		if r[len(r)-1] != "ok" {
			t.Errorf("query %s failed the explain check: %v", r[0], r)
		}
	}
}

func TestJoinCountsTable(t *testing.T) {
	w, err := NewXMark(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := JoinCounts(w)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central claim: for the long child path Q2, PPF joins
	// far fewer relations than the accelerator (one per step).
	var q2 []string
	for _, r := range tb.Rows {
		if r[0] == "Q2" {
			q2 = r
		}
	}
	if q2 == nil {
		t.Fatal("Q2 row missing")
	}
	if !(q2[1] < q2[4]) { // string compare fine for single digits vs larger
		t.Errorf("PPF should join fewer relations than the accelerator on Q2: %v", q2)
	}
}
