package core

import (
	"fmt"

	"repro/internal/pathre"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xpath"
)

// Options tune the translation; the zero value disables the paper's
// optimizations, New applies the defaults (everything on).
type Options struct {
	// PathFilterOmission enables the Section 4.5 optimization: U-P
	// relations never join the paths relation; F-P relations join only
	// when some of their enumerated root paths fail the regex.
	PathFilterOmission bool
	// FKChildParent uses foreign-key equijoins for single-step child
	// and parent PPFs instead of Dewey comparisons (Section 4.2).
	FKChildParent bool
	// maxCombos caps SQL splitting enumeration.
	maxCombos int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{PathFilterOmission: true, FKChildParent: true, maxCombos: 256}
}

// Translation is the result of translating one XPath expression.
type Translation struct {
	Stmt    sqlast.Statement
	SQL     string
	Selects int // UNION branches emitted (SQL-splitting metric)
	Joins   int // total FROM entries across all selects and subselects
}

// Translator translates XPath to SQL over the schema-aware mapping of
// package shred.
type Translator struct {
	schema *schema.Schema
	opts   Options
}

// New returns a schema-aware PPF translator with the given options
// (nil means DefaultOptions).
func New(s *schema.Schema, opts *Options) *Translator {
	o := DefaultOptions()
	if opts != nil {
		o = *opts
		if o.maxCombos == 0 {
			o.maxCombos = 256
		}
	}
	return &Translator{schema: s, opts: o}
}

// Translate parses and translates an XPath query.
func (t *Translator) Translate(query string) (*Translation, error) {
	e, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return t.TranslateExpr(e)
}

// TranslateExpr translates a parsed XPath expression.
func (t *Translator) TranslateExpr(e xpath.Expr) (*Translation, error) {
	var paths []*xpath.Path
	switch x := e.(type) {
	case *xpath.Path:
		paths = []*xpath.Path{x}
	case *xpath.Union:
		paths = x.Paths
	default:
		return nil, fmt.Errorf("core: expression %T is not a location path", e)
	}
	var selects []*sqlast.Select
	for _, p := range paths {
		sels, err := t.translatePath(p)
		if err != nil {
			return nil, fmt.Errorf("core: %q: %w", p, err)
		}
		selects = append(selects, sels...)
	}
	return finishTranslation(selects)
}

// finishTranslation assembles the selects into the final statement
// with DISTINCT projection and document-order ORDER BY.
func finishTranslation(selects []*sqlast.Select) (*Translation, error) {
	orderBy := []sqlast.OrderKey{{Expr: sqlast.C("", "dewey_pos")}}
	var stmt sqlast.Statement
	switch len(selects) {
	case 0:
		// Statically empty: a select that returns nothing.
		empty := &sqlast.Select{
			Cols: []sqlast.SelectCol{
				{Expr: sqlast.Int(0), Alias: "id"},
				{Expr: &sqlast.NullLit{}, Alias: "dewey_pos"},
			},
			From:  []sqlast.TableRef{{Table: shred.PathsTable}},
			Where: sqlast.Eq(sqlast.Int(1), sqlast.Int(0)),
		}
		stmt = empty
	case 1:
		selects[0].OrderBy = []sqlast.OrderKey{{Expr: orderKeyFor(selects[0])}}
		stmt = selects[0]
	default:
		stmt = &sqlast.Union{Selects: selects, OrderBy: orderBy}
	}
	tr := &Translation{Stmt: stmt, SQL: sqlast.Render(stmt), Selects: len(selects)}
	tr.Joins = countFrom(stmt)
	return tr, nil
}

func orderKeyFor(sel *sqlast.Select) sqlast.Expr {
	// Order by the projected dewey_pos expression.
	for _, c := range sel.Cols {
		if c.Alias == "dewey_pos" {
			return c.Expr
		}
	}
	return sqlast.C("", "dewey_pos")
}

func countFrom(st sqlast.Statement) int {
	n := 0
	var cs func(s *sqlast.Select)
	var ce func(e sqlast.Expr)
	ce = func(e sqlast.Expr) {
		switch x := e.(type) {
		case *sqlast.Binary:
			ce(x.L)
			ce(x.R)
		case *sqlast.Not:
			ce(x.X)
		case *sqlast.Exists:
			cs(x.Select)
		case *sqlast.Subquery:
			cs(x.Select)
		case *sqlast.Between:
			ce(x.X)
			ce(x.Lo)
			ce(x.Hi)
		case *sqlast.Func:
			for _, a := range x.Args {
				ce(a)
			}
		}
	}
	cs = func(s *sqlast.Select) {
		n += len(s.From)
		if s.Where != nil {
			ce(s.Where)
		}
	}
	switch s := st.(type) {
	case *sqlast.Select:
		cs(s)
	case *sqlast.Union:
		for _, sel := range s.Selects {
			cs(sel)
		}
	}
	return n
}

// chainCtx carries the translation state at a fragment boundary: the
// previous prominent relation's alias, schema node and name pattern,
// plus the active forward run for regex construction.
type chainCtx struct {
	alias    string
	node     *schema.Node
	namePat  string
	lastStep *xpath.Step
	run      []*xpath.Step
	anchored bool
	runBase  string
}

// builder accumulates one SELECT (including its subselects).
type builder struct {
	tr      *Translator
	aliases map[string]int
	// joined memoizes paths joins per SELECT scope: a join added to
	// one subquery's FROM is invisible to its siblings, so an alias
	// may need a (1:1, paths.id is a key) re-join in each scope that
	// inspects its path.
	joined map[*sqlast.Select]map[string]string
}

func (t *Translator) newBuilder() *builder {
	return &builder{tr: t, aliases: map[string]int{}, joined: map[*sqlast.Select]map[string]string{}}
}

func (b *builder) newAlias(rel string) string {
	b.aliases[rel]++
	if b.aliases[rel] == 1 {
		return rel
	}
	return fmt.Sprintf("%s_%d", rel, b.aliases[rel])
}

// translatePath translates one absolute backbone path into one or
// more SELECTs (SQL splitting).
func (t *Translator) translatePath(p *xpath.Path) ([]*sqlast.Select, error) {
	if !p.Absolute {
		return nil, fmt.Errorf("top-level paths must be absolute")
	}
	if len(p.Steps) == 0 {
		// '/': the document element(s).
		p = &xpath.Path{Absolute: true, Steps: []*xpath.Step{{Axis: xpath.Child, Test: xpath.NameTest}}}
	}
	frags, terminal, err := splitPPFs(p.Steps)
	if err != nil {
		return nil, err
	}
	if len(frags) == 0 {
		return nil, fmt.Errorf("path has no location steps")
	}
	if frags[0].kind != ppfForward {
		return nil, fmt.Errorf("an absolute path must begin with a forward step")
	}
	combos, err := t.enumerate(frags, nil)
	if err != nil {
		return nil, err
	}
	var selects []*sqlast.Select
	for _, combo := range combos {
		b := t.newBuilder()
		sel := &sqlast.Select{Distinct: true}
		end, ok, err := b.buildChain(sel, frags, combo, chainCtx{})
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if ok, err = b.applyTerminal(sel, end, terminal); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		sel.Cols = []sqlast.SelectCol{
			{Expr: sqlast.C(end.alias, shred.ColID), Alias: "id"},
			{Expr: sqlast.C(end.alias, shred.ColDewey), Alias: "dewey_pos"},
		}
		selects = append(selects, sel)
	}
	return selects, nil
}

// applyTerminal adds the restriction of a terminal attribute or
// text() step; ok=false prunes the select statically.
func (b *builder) applyTerminal(sel *sqlast.Select, end chainCtx, terminal *xpath.Step) (bool, error) {
	if terminal == nil {
		return true, nil
	}
	if terminal.Axis == xpath.Attribute {
		if !end.node.HasAttr(terminal.Name) {
			return false, nil
		}
		sel.AddConjunct(&sqlast.IsNull{X: sqlast.C(end.alias, shred.AttrCol(terminal.Name)), Negate: true})
		return true, nil
	}
	// text()
	if !end.node.HasText {
		return false, nil
	}
	sel.AddConjunct(&sqlast.IsNull{X: sqlast.C(end.alias, shred.ColText), Negate: true})
	return true, nil
}

// enumerate lists the relation combinations for a fragment chain
// starting from the given context nodes (nil = document roots).
func (t *Translator) enumerate(frags []*ppf, start []*schema.Node) ([][]*schema.Node, error) {
	var out [][]*schema.Node
	var rec func(i int, ctx []*schema.Node, acc []*schema.Node) error
	rec = func(i int, ctx []*schema.Node, acc []*schema.Node) error {
		if i == len(frags) {
			out = append(out, append([]*schema.Node(nil), acc...))
			if len(out) > t.opts.maxCombos {
				return fmt.Errorf("SQL splitting exceeds %d combinations", t.opts.maxCombos)
			}
			return nil
		}
		cands := t.candidates(frags[i], ctx, i == 0 && start == nil)
		for _, c := range cands {
			if err := rec(i+1, []*schema.Node{c}, append(acc, c)); err != nil {
				return err
			}
		}
		return nil
	}
	ctx := start
	if err := rec(0, ctx, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// candidates resolves one fragment's prominent step to its possible
// schema nodes given the context set.
func (t *Translator) candidates(f *ppf, ctx []*schema.Node, fromRoot bool) []*schema.Node {
	switch f.kind {
	case ppfForward, ppfBackward:
		steps := make([]schema.Step, len(f.steps))
		for i, s := range f.steps {
			steps[i] = schema.Step{Axis: schemaAxis(s.Axis), Name: s.Name}
			if s.Wildcard() || s.Test != xpath.NameTest {
				steps[i].Name = ""
			}
		}
		if fromRoot {
			return t.schema.Resolve(nil, steps)
		}
		return t.schema.Resolve(ctx, steps)
	default: // horizontal
		s := f.steps[0]
		name := s.Name
		if s.Wildcard() || s.Test != xpath.NameTest {
			name = ""
		}
		switch s.Axis {
		case xpath.FollowingSibling, xpath.PrecedingSibling:
			return t.schema.Resolve(ctx, []schema.Step{{Axis: schema.Parent}, {Axis: schema.Child, Name: name}})
		default: // following, preceding
			return t.schema.Resolve(ctx, []schema.Step{{Axis: schema.AnyByName, Name: name}})
		}
	}
}

func schemaAxis(a xpath.Axis) schema.StepAxis {
	switch a {
	case xpath.Child:
		return schema.Child
	case xpath.Descendant:
		return schema.Descendant
	case xpath.DescendantOrSelf:
		return schema.DescendantOrSelf
	case xpath.Parent:
		return schema.Parent
	case xpath.Ancestor:
		return schema.Ancestor
	case xpath.AncestorOrSelf:
		return schema.AncestorOrSelf
	default:
		return schema.AnyByName
	}
}

// buildChain implements Algorithm 1 over a fragment chain, extending
// sel. start.alias == "" means the chain begins the backbone (from
// the document root). ok=false means the select is statically empty.
func (b *builder) buildChain(sel *sqlast.Select, frags []*ppf, combo []*schema.Node, start chainCtx) (chainCtx, bool, error) {
	cur := start
	for i, f := range frags {
		node := combo[i]
		alias := b.newAlias(shred.RelName(node.Name))
		sel.From = append(sel.From, sqlast.TableRef{Table: shred.RelName(node.Name), Alias: alias})

		switch f.kind {
		case ppfForward:
			// Extend or restart the forward run (getMaxForwardPath).
			first := cur.alias == "" && i == 0 && start.alias == ""
			switch {
			case first && len(cur.run) == 0:
				cur.run = append([]*xpath.Step(nil), f.steps...)
				cur.anchored = true
				cur.runBase = ""
			case len(cur.run) > 0 && (i == 0 || frags[i-1].kind == ppfForward):
				cur.run = append(append([]*xpath.Step(nil), cur.run...), f.steps...)
			default:
				cur.run = append([]*xpath.Step(nil), f.steps...)
				cur.anchored = false
				cur.runBase = cur.namePat
			}
			pattern, err := forwardRegex(cur.run, cur.anchored, cur.runBase)
			if err != nil {
				return cur, false, err
			}
			ok, err := b.addPathFilter(sel, alias, node, pattern)
			if err != nil || !ok {
				return cur, false, err
			}
			if cur.alias != "" {
				if err := b.structuralJoin(sel, cur, alias, node, f); err != nil {
					return cur, false, err
				}
			}
		case ppfBackward:
			if cur.alias == "" {
				return cur, false, fmt.Errorf("a backward fragment needs a preceding context")
			}
			pattern, err := backwardRegex(f.steps, cur.namePat)
			if err != nil {
				return cur, false, err
			}
			// The regex constrains the previous prominent relation's path.
			ok, err := b.addPathFilter(sel, cur.alias, cur.node, pattern)
			if err != nil || !ok {
				return cur, false, err
			}
			if err := b.structuralJoin(sel, cur, alias, node, f); err != nil {
				return cur, false, err
			}
			cur.run, cur.anchored, cur.runBase = nil, false, ""
		case ppfHorizontal:
			if cur.alias == "" {
				return cur, false, fmt.Errorf("a horizontal fragment needs a preceding context")
			}
			// In the schema-aware mapping the relation name already pins
			// the node test (the Algorithm 1 lines 6-7 filter is implied).
			b.horizontalJoin(sel, cur.alias, alias, f.steps[0].Axis)
			cur.run, cur.anchored, cur.runBase = nil, false, ""
		}

		cur.alias = alias
		cur.node = node
		cur.namePat = regexQuote(node.Name)
		cur.lastStep = f.prominent()

		// Predicates of the prominent step.
		if err := checkPredicateOrder(f.prominent()); err != nil {
			return cur, false, err
		}
		for _, pred := range f.prominent().Predicates {
			cond, err := b.translatePredicate(sel, pred, cur)
			if err != nil {
				return cur, false, err
			}
			if cond.isFalse {
				return cur, false, nil
			}
			if !cond.isTrue {
				sel.AddConjunct(cond.expr)
			}
		}
	}
	return cur, true, nil
}

// addPathFilter joins alias with the paths relation and filters by
// pattern, honoring the Section 4.5 omission rules. ok=false means
// the pattern excludes every possible path of the relation: the
// select is statically empty.
func (b *builder) addPathFilter(sel *sqlast.Select, alias string, node *schema.Node, pattern string) (bool, error) {
	cond, err := b.pathFilterCond(sel, alias, node, pattern)
	if err != nil {
		return false, err
	}
	if cond.isFalse {
		return false, nil
	}
	if !cond.isTrue {
		sel.AddConjunct(cond.expr)
	}
	return true, nil
}

// sqlCond is a three-valued translated condition.
type sqlCond struct {
	expr    sqlast.Expr
	isTrue  bool
	isFalse bool
}

var condTrue = sqlCond{isTrue: true}
var condFalse = sqlCond{isFalse: true}

func dyn(e sqlast.Expr) sqlCond { return sqlCond{expr: e} }

// asExpr renders the condition as an expression for use inside OR.
func (c sqlCond) asExpr() sqlast.Expr {
	switch {
	case c.isTrue:
		return sqlast.Eq(sqlast.Int(1), sqlast.Int(1))
	case c.isFalse:
		return sqlast.Eq(sqlast.Int(1), sqlast.Int(0))
	default:
		return c.expr
	}
}

// pathFilterCond produces the path-filter condition for a relation,
// applying the marking rules statically where possible. The decision
// itself is delegated to schema.JustifyOmission (the single source of
// truth plancheck audits) and reported through the omission trace.
func (b *builder) pathFilterCond(sel *sqlast.Select, alias string, node *schema.Node, pattern string) (sqlCond, error) {
	if b.tr.opts.PathFilterOmission {
		matches := func(string) bool { return false } // I-P never consults it
		if node.Mark != schema.InfinitePaths {
			re, err := pathre.Compile(pattern)
			if err != nil {
				return sqlCond{}, fmt.Errorf("bad path pattern %q: %w", pattern, err)
			}
			matches = re.MatchString
		}
		decision, ev := node.JustifyOmission(matches)
		traceOmission(node, pattern, decision, ev)
		switch decision {
		case schema.OmitFilter:
			return condTrue, nil
		case schema.EmptyResult:
			return condFalse, nil
		}
	}
	pathsAlias := b.joinWithPaths(sel, alias)
	return dyn(sqlast.RegexpLike(sqlast.C(pathsAlias, "path"), pattern)), nil
}

// joinWithPaths ensures alias is joined to the paths relation,
// returning the paths alias.
func (b *builder) joinWithPaths(sel *sqlast.Select, alias string) string {
	if pa, ok := b.joined[sel][alias]; ok {
		return pa
	}
	// The paths alias is unique statement-wide (newAlias), not just
	// per scope: a subquery may re-join an outer alias's paths row,
	// and reusing the bare name would shadow the enclosing join.
	pa := b.newAlias(alias + "_paths")
	sel.From = append(sel.From, sqlast.TableRef{Table: shred.PathsTable, Alias: pa})
	sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPath), sqlast.C(pa, shred.ColID)))
	if b.joined[sel] == nil {
		b.joined[sel] = map[string]string{}
	}
	b.joined[sel][alias] = pa
	return pa
}

// structuralJoin joins the previous prominent relation to the current
// one per Table 2, using FK equijoins for single child/parent steps
// when enabled. When the deeper relation is recursive (I-P), the
// Dewey range alone is not exact: a fragment spanning an exact number
// of levels additionally pins the level difference, and a
// variable-depth fragment checks the path suffix between the two
// elements against the fragment's own pattern.
func (b *builder) structuralJoin(sel *sqlast.Select, prev chainCtx, alias string, node *schema.Node, f *ppf) error {
	if b.tr.opts.FKChildParent && len(f.steps) == 1 {
		switch f.steps[0].Axis {
		case xpath.Child:
			sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(prev.alias, shred.ColID)))
			return nil
		case xpath.Parent:
			sel.AddConjunct(sqlast.Eq(sqlast.C(prev.alias, shred.ColPar), sqlast.C(alias, shred.ColID)))
			return nil
		}
	}
	switch f.kind {
	case ppfForward:
		// Current is a descendant(-or-self) of previous: Table 2 (1).
		sel.AddConjunct(&sqlast.Between{
			X:  sqlast.C(alias, shred.ColDewey),
			Lo: sqlast.C(prev.alias, shred.ColDewey),
			Hi: deweyLimit(prev.alias),
		})
		if !forwardInclusive(f) && node == prev.node {
			sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpNe,
				L: sqlast.C(alias, shred.ColID), R: sqlast.C(prev.alias, shred.ColID)})
		}
		if node.Mark == schema.InfinitePaths {
			if allChild(f) {
				sel.AddConjunct(levelPin(alias, prev.alias, len(f.steps)))
			} else {
				pattern, err := forwardSuffixRegex(f.steps, prev.namePat)
				if err != nil {
					return err
				}
				sel.AddConjunct(b.suffixCheck(sel, alias, prev.alias, pattern))
			}
		}
	case ppfBackward:
		// Current is an ancestor(-or-self) of previous: Table 2 (2).
		sel.AddConjunct(&sqlast.Between{
			X:  sqlast.C(prev.alias, shred.ColDewey),
			Lo: sqlast.C(alias, shred.ColDewey),
			Hi: deweyLimit(alias),
		})
		if !backwardInclusive(f) && node == prev.node {
			sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpNe,
				L: sqlast.C(alias, shred.ColID), R: sqlast.C(prev.alias, shred.ColID)})
		}
		if prev.node.Mark == schema.InfinitePaths {
			if allParent(f) {
				sel.AddConjunct(levelPin(prev.alias, alias, len(f.steps)))
			} else {
				pattern, err := backwardSuffixRegex(f.steps, prev.namePat)
				if err != nil {
					return err
				}
				sel.AddConjunct(b.suffixCheck(sel, prev.alias, alias, pattern))
			}
		}
	}
	return nil
}

// levelPin emits 'LENGTH(deep.dewey_pos) = LENGTH(shallow.dewey_pos) + 3k'.
func levelPin(deepAlias, shallowAlias string, k int) sqlast.Expr {
	return sqlast.Eq(
		&sqlast.Func{Name: "LENGTH", Args: []sqlast.Expr{sqlast.C(deepAlias, shred.ColDewey)}},
		&sqlast.Binary{Op: sqlast.OpAdd,
			L: &sqlast.Func{Name: "LENGTH", Args: []sqlast.Expr{sqlast.C(shallowAlias, shred.ColDewey)}},
			R: sqlast.Int(int64(3 * k))})
}

// suffixCheck emits the boundary-exactness condition: the deeper
// element's root path, after stripping the shallower element's root
// path, must match the fragment's anchored pattern. Both relations
// join the paths relation.
func (b *builder) suffixCheck(sel *sqlast.Select, deepAlias, shallowAlias, pattern string) sqlast.Expr {
	deepPaths := b.joinWithPaths(sel, deepAlias)
	shallowPaths := b.joinWithPaths(sel, shallowAlias)
	return sqlast.RegexpLike(
		&sqlast.Func{Name: "SUBSTR", Args: []sqlast.Expr{
			sqlast.C(deepPaths, "path"),
			&sqlast.Binary{Op: sqlast.OpAdd,
				L: &sqlast.Func{Name: "LENGTH", Args: []sqlast.Expr{sqlast.C(shallowPaths, "path")}},
				R: sqlast.Int(1)},
		}},
		pattern)
}

// horizontalJoin emits the Table 2 (3)-(6) condition.
func (b *builder) horizontalJoin(sel *sqlast.Select, prevAlias, alias string, axis xpath.Axis) {
	switch axis {
	case xpath.Following:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(alias, shred.ColDewey), R: deweyLimit(prevAlias)})
	case xpath.Preceding:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(prevAlias, shred.ColDewey), R: deweyLimit(alias)})
	case xpath.FollowingSibling:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(alias, shred.ColDewey), R: sqlast.C(prevAlias, shred.ColDewey)})
		sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(prevAlias, shred.ColPar)))
	case xpath.PrecedingSibling:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(prevAlias, shred.ColDewey), R: sqlast.C(alias, shred.ColDewey)})
		sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(prevAlias, shred.ColPar)))
	}
}

// deweyLimit renders 'alias.dewey_pos || X'FF”: the exclusive upper
// bound of the alias's descendant range.
func deweyLimit(alias string) sqlast.Expr {
	return &sqlast.Binary{Op: sqlast.OpConcat,
		L: sqlast.C(alias, shred.ColDewey), R: sqlast.Bytes([]byte{0xFF})}
}

// forwardInclusive reports whether a forward fragment can select the
// context node itself (every step descendant-or-self).
func forwardInclusive(f *ppf) bool {
	for _, s := range f.steps {
		if s.Axis != xpath.DescendantOrSelf {
			return false
		}
	}
	return true
}

// backwardInclusive reports whether a backward fragment can select
// the context node itself.
func backwardInclusive(f *ppf) bool {
	for _, s := range f.steps {
		if s.Axis != xpath.AncestorOrSelf {
			return false
		}
	}
	return true
}
