// Persistence: the write-ahead-log integration making every commit
// durable. A persistent database (engine.Open) logs each mutation as
// one WAL record — fsynced before the commit becomes visible to
// readers — and recovers on open by loading the latest checkpoint and
// replaying the WAL's valid prefix. In-memory databases (NewDB) have
// a nil persister and skip logging entirely.
//
// Record payloads (the WAL frames the payload with length/CRC/LSN,
// wal.go):
//
//	kind 1  create table:  name, ncols, (colName, colType)*
//	kind 2  insert batch:  ngroups, (tableName, nrows, row*)*
//	kind 3  create index:  tableName, indexName, ncols, colName*
//	kind 4  base LSN:      lsn — first record of a checkpoint file;
//	                       replay skips WAL records at or below it
//
// Strings are uvarint-length-prefixed; values are a kind byte plus a
// kind-specific body. A checkpoint file is written with the same
// framing as the WAL (CRC-checked records) but is atomic by
// construction: it is fully written and fsynced under a temporary
// name, renamed into place, and the directory fsynced, so recovery
// sees either the old or the new checkpoint, never a partial one.
package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/failpoint"
	"repro/internal/wal"
)

const (
	recCreateTable = 1
	recInsert      = 2
	recCreateIndex = 3
	recBaseLSN     = 4

	walFile  = "wal.log"
	ckptFile = "checkpoint"
)

// persister is a DB's durability hook: the open WAL plus the
// directory it (and the checkpoint) live in.
type persister struct {
	dir string
	log *wal.Log
}

// Open opens a persistent database in dir, creating the directory if
// needed. Recovery loads the checkpoint (if any), replays the WAL's
// valid prefix on top of it, and truncates any torn or corrupt WAL
// tail; a crash at any earlier moment therefore yields exactly the
// committed prefix. Re-running recovery over the same files is
// idempotent: checkpointed records are skipped by LSN and the replay
// rebuilds identical state.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := NewDB()
	var baseLSN uint64
	ckpt := filepath.Join(dir, ckptFile)
	if _, err := os.Stat(ckpt); err == nil {
		if err := wal.Scan(ckpt, func(rec wal.Record) error {
			if lsn, ok := decodeBaseLSN(rec.Payload); ok {
				baseLSN = lsn
				return nil
			}
			return db.applyRecord(rec.Payload)
		}); err != nil {
			return nil, fmt.Errorf("engine: recovering checkpoint: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, walFile), func(rec wal.Record) error {
		if rec.LSN <= baseLSN {
			// Already captured by the checkpoint: a crash between the
			// checkpoint rename and the WAL reset leaves these behind.
			return nil
		}
		if err := failpoint.Inject("engine/recovery-replay"); err != nil {
			return err
		}
		return db.applyRecord(rec.Payload)
	})
	if err != nil {
		return nil, fmt.Errorf("engine: recovering WAL: %w", err)
	}
	// A freshly reset (empty) WAL must not hand out LSNs at or below
	// the checkpoint's base: the next recovery would skip them.
	log.EnsureNext(baseLSN + 1)
	db.pers = &persister{dir: dir, log: log}
	return db, nil
}

// Close releases the database's WAL file handle (fsyncing it first).
// It is a no-op for in-memory databases. The DB must not be used
// after Close.
func (db *DB) Close() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.pers == nil {
		return nil
	}
	err := db.pers.log.Close()
	db.pers = nil
	return err
}

// Persistent reports whether the database is backed by a WAL.
func (db *DB) Persistent() bool {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.pers != nil
}

// Checkpoint captures the current database state into an atomically
// replaced checkpoint file and truncates the WAL, bounding recovery
// time. Readers are unaffected (the snapshot is immutable); writers
// wait, as they do for any commit. A crash at any point leaves a
// recoverable pair: old checkpoint + full WAL, new checkpoint + full
// WAL (replay skips by LSN), or new checkpoint + empty WAL.
func (db *DB) Checkpoint() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.pers == nil {
		return fmt.Errorf("engine: Checkpoint on an in-memory database")
	}
	snap := db.loadSnap()
	tmp := filepath.Join(db.pers.dir, ckptFile+".tmp")
	if err := writeCheckpoint(tmp, snap, db.pers.log.LastLSN()); err != nil {
		return err
	}
	//xvet:ignore lockscope -- crash-window failpoint: the checkpoint protocol runs entirely under writeMu by design, and the chaos suite arms this site precisely to model a writer stalled mid-checkpoint
	if err := failpoint.Inject("wal/checkpoint"); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.pers.dir, ckptFile)); err != nil {
		return err
	}
	if err := syncDir(db.pers.dir); err != nil {
		return err
	}
	return db.pers.log.Reset()
}

// writeCheckpoint writes the snapshot as a fresh CRC-framed record
// file at path and fsyncs it. The first record carries the base LSN.
func writeCheckpoint(path string, snap *dbSnap, baseLSN uint64) (err error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	ck, err := wal.Open(path, nil)
	if err != nil {
		return err
	}
	defer func() {
		// Close syncs; its error stands in for the whole write — a
		// checkpoint that might not be on disk must not be renamed in.
		if cerr := ck.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := ck.Append(encodeBaseLSN(baseLSN)); err != nil {
		return err
	}
	for _, name := range snap.names {
		t := snap.byName[name]
		st := snap.stateOf(t)
		if _, err := ck.Append(encodeCreateTable(t.Name, t.Cols)); err != nil {
			return err
		}
		// Insert records in checkpoint-internal batches: bounded frame
		// sizes without one frame per row.
		const ckptBatch = 4096
		for lo := 0; lo < len(st.rows); lo += ckptBatch {
			hi := lo + ckptBatch
			if hi > len(st.rows) {
				hi = len(st.rows)
			}
			rec := encodeInsert([]insertGroup{{table: t.Name, rows: st.rows[lo:hi]}})
			if _, err := ck.Append(rec); err != nil {
				return err
			}
		}
		for _, ix := range st.indexes {
			cols := make([]string, len(ix.Cols))
			for i, c := range ix.Cols {
				cols[i] = t.Cols[c].Name
			}
			if _, err := ck.Append(encodeCreateIndex(t.Name, ix.Name, cols)); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// logCreateTable logs a create-table record; nil persister = no-op.
// The caller holds writeMu and applies the commit only after this
// returns nil (write-ahead: durable before visible).
func (db *DB) logCreateTable(name string, cols []Column) error {
	if db.pers == nil {
		return nil
	}
	_, err := db.pers.log.Commit(encodeCreateTable(name, cols))
	return err
}

// logInsert logs one insert-batch record for a single table.
func (db *DB) logInsert(table string, rows [][]Value) error {
	if db.pers == nil {
		return nil
	}
	_, err := db.pers.log.Commit(encodeInsert([]insertGroup{{table: table, rows: rows}}))
	return err
}

// logInsertGroups logs one insert-batch record spanning tables (the
// WriteBatch commit: one frame, one fsync for the whole batch).
func (db *DB) logInsertGroups(groups []insertGroup) error {
	if db.pers == nil {
		return nil
	}
	_, err := db.pers.log.Commit(encodeInsert(groups))
	return err
}

// logCreateIndex logs a create-index record.
func (db *DB) logCreateIndex(table, index string, cols []string) error {
	if db.pers == nil {
		return nil
	}
	_, err := db.pers.log.Commit(encodeCreateIndex(table, index, cols))
	return err
}

// applyRecord decodes and applies one logged mutation during
// recovery, without re-logging it. Replay is sequential and
// single-goroutine; commits go through the same apply/publish helpers
// as live writes, so a recovered DB is structurally identical to one
// that executed the statements directly.
//
//walorder:replay -- recovery republishes state decoded from records already framed and fsynced in the WAL or checkpoint; there is nothing left to make durable
func (db *DB) applyRecord(payload []byte) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	d := &recDecoder{buf: payload[1:]}
	switch payload[0] {
	case recCreateTable:
		name := d.str()
		n := d.uvarint()
		cols := make([]Column, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			cn := d.str()
			ct := d.byte()
			cols = append(cols, Column{Name: cn, Type: Type(ct)})
		}
		if err := d.done(); err != nil {
			return err
		}
		t, err := db.applyCreateTable(name, cols)
		if err != nil {
			return err
		}
		db.commitCreateTable(t)
		return nil
	case recInsert:
		groups, err := decodeInsert(d)
		if err != nil {
			return err
		}
		return db.applyInsertGroups(groups)
	case recCreateIndex:
		table := d.str()
		index := d.str()
		n := d.uvarint()
		cols := make([]string, 0, min(int(n), 1024))
		for i := uint64(0); i < n && d.err == nil; i++ {
			cols = append(cols, d.str())
		}
		if err := d.done(); err != nil {
			return err
		}
		t := db.loadSnap().table(table)
		if t == nil {
			return fmt.Errorf("create-index record for unknown table %q", table)
		}
		st := t.state()
		positions, err := t.resolveIndexCols(st, index, cols)
		if err != nil {
			return err
		}
		t.commitState(applyCreateIndex(st, index, positions))
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", payload[0])
	}
}

// applyInsertGroups validates and commits a multi-table insert batch
// as one published snapshot; the caller holds writeMu.
func (db *DB) applyInsertGroups(groups []insertGroup) error {
	snap := db.loadSnap()
	type pending struct {
		t    *Table
		next *tableState
	}
	commits := make([]pending, 0, len(groups))
	for _, g := range groups {
		t := snap.table(g.table)
		if t == nil {
			return fmt.Errorf("insert record for unknown table %q", g.table)
		}
		for _, row := range g.rows {
			if err := t.validateRow(row); err != nil {
				return err
			}
		}
		commits = append(commits, pending{t: t, next: applyInsert(snap.stateOf(t), g.rows)})
	}
	next := snap.clone()
	for _, c := range commits {
		next.states[c.t.pos] = c.next
	}
	db.snap.Store(next)
	return nil
}

// insertGroup is one table's slice of an insert-batch record.
type insertGroup struct {
	table string
	rows  [][]Value
}

// WriteBatch buffers inserts across tables for one atomic commit: a
// single WAL record, a single fsync, a single published snapshot.
// Readers observe all of the batch or none of it — the unit shred
// loaders use so a document's node, path, and attribute rows appear
// together. A WriteBatch is single-goroutine; Commit may be called
// once.
type WriteBatch struct {
	db     *DB
	order  []*Table
	groups map[*Table]*insertGroup
	err    error
}

// NewWriteBatch starts an empty batch against the database.
func (db *DB) NewWriteBatch() *WriteBatch {
	return &WriteBatch{db: db, groups: map[*Table]*insertGroup{}}
}

// Insert buffers one row. Validation errors are sticky and returned
// from Commit (and from the first failing Insert).
func (b *WriteBatch) Insert(t *Table, row []Value) error {
	if b.err != nil {
		return b.err
	}
	if err := t.validateRow(row); err != nil {
		b.err = err
		return err
	}
	g, ok := b.groups[t]
	if !ok {
		g = &insertGroup{table: t.Name}
		b.groups[t] = g
		b.order = append(b.order, t)
	}
	g.rows = append(g.rows, row)
	return nil
}

// Pending returns the number of rows buffered so far.
func (b *WriteBatch) Pending() int {
	n := 0
	for _, g := range b.groups {
		n += len(g.rows)
	}
	return n
}

// NextID returns the row id the next Insert into t will be assigned —
// stable within the batch because the batch's writer has exclusive
// append rights only at Commit, but loaders run single-writer so the
// preview holds. Concurrent writers between Insert and Commit would
// shift ids; the engine's loaders never do that.
func (b *WriteBatch) NextID(t *Table) int64 {
	n := int64(len(t.state().rows))
	if g, ok := b.groups[t]; ok {
		n += int64(len(g.rows))
	}
	return n
}

// Commit logs and applies the batch atomically, then resets the batch
// to empty for reuse. An empty batch commits as a no-op.
func (b *WriteBatch) Commit() error {
	if b.err != nil {
		return b.err
	}
	if len(b.order) == 0 {
		return nil
	}
	groups := make([]insertGroup, 0, len(b.order))
	for _, t := range b.order {
		groups = append(groups, *b.groups[t])
	}
	b.db.writeMu.Lock()
	defer b.db.writeMu.Unlock()
	if err := b.db.logInsertGroups(groups); err != nil {
		return err
	}
	if err := b.db.applyInsertGroupsLocked(groups); err != nil {
		return err
	}
	b.order = b.order[:0]
	b.groups = map[*Table]*insertGroup{}
	return nil
}

// applyInsertGroupsLocked is applyInsertGroups for callers already
// holding writeMu via the WriteBatch path (applyRecord locks itself).
func (db *DB) applyInsertGroupsLocked(groups []insertGroup) error {
	snap := db.loadSnap()
	next := snap.clone()
	for _, g := range groups {
		t := snap.table(g.table)
		if t == nil {
			return fmt.Errorf("engine: batch insert into unknown table %q", g.table)
		}
		next.states[t.pos] = applyInsert(next.states[t.pos], g.rows)
	}
	db.snap.Store(next)
	return nil
}

// --- record encoding ---

func encodeBaseLSN(lsn uint64) []byte {
	buf := make([]byte, 1, 1+binary.MaxVarintLen64)
	buf[0] = recBaseLSN
	return binary.AppendUvarint(buf, lsn)
}

func decodeBaseLSN(payload []byte) (uint64, bool) {
	if len(payload) == 0 || payload[0] != recBaseLSN {
		return 0, false
	}
	lsn, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, false
	}
	return lsn, true
}

func encodeCreateTable(name string, cols []Column) []byte {
	buf := []byte{recCreateTable}
	buf = appendStr(buf, name)
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendStr(buf, c.Name)
		buf = append(buf, byte(c.Type))
	}
	return buf
}

func encodeCreateIndex(table, index string, cols []string) []byte {
	buf := []byte{recCreateIndex}
	buf = appendStr(buf, table)
	buf = appendStr(buf, index)
	buf = binary.AppendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendStr(buf, c)
	}
	return buf
}

func encodeInsert(groups []insertGroup) []byte {
	buf := []byte{recInsert}
	buf = binary.AppendUvarint(buf, uint64(len(groups)))
	for _, g := range groups {
		buf = appendStr(buf, g.table)
		buf = binary.AppendUvarint(buf, uint64(len(g.rows)))
		for _, row := range g.rows {
			buf = binary.AppendUvarint(buf, uint64(len(row)))
			for _, v := range row {
				buf = appendValue(buf, v)
			}
		}
	}
	return buf
}

func decodeInsert(d *recDecoder) ([]insertGroup, error) {
	ng := d.uvarint()
	groups := make([]insertGroup, 0, min(int(ng), 64))
	for gi := uint64(0); gi < ng && d.err == nil; gi++ {
		g := insertGroup{table: d.str()}
		nr := d.uvarint()
		for ri := uint64(0); ri < nr && d.err == nil; ri++ {
			nv := d.uvarint()
			row := make([]Value, 0, min(int(nv), 64))
			for vi := uint64(0); vi < nv && d.err == nil; vi++ {
				row = append(row, d.value())
			}
			g.rows = append(g.rows, row)
		}
		groups = append(groups, g)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return groups, nil
}

// appendValue encodes one Value: kind byte + kind-specific body.
func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case KNull:
	case KInt, KBool:
		buf = binary.AppendVarint(buf, v.I)
	case KFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case KText:
		buf = appendStr(buf, v.S)
	case KBytes:
		buf = binary.AppendUvarint(buf, uint64(len(v.B)))
		buf = append(buf, v.B...)
	}
	return buf
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// recDecoder is a cursor over a record payload with sticky errors:
// decoding continues returning zero values after the first failure
// and done() reports it, so record readers stay linear.
type recDecoder struct {
	buf []byte
	err error
}

func (d *recDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated record body")
	}
}

func (d *recDecoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *recDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *recDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *recDecoder) take(n int) []byte {
	if d.err != nil || n < 0 || len(d.buf) < n {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *recDecoder) str() string {
	n := d.uvarint()
	return string(d.take(int(n)))
}

func (d *recDecoder) value() Value {
	switch Kind(d.byte()) {
	case KNull:
		return Null
	case KInt:
		return NewInt(d.varint())
	case KBool:
		return NewBool(d.varint() != 0)
	case KFloat:
		bits := d.take(8)
		if d.err != nil {
			return Null
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(bits)))
	case KText:
		return NewText(d.str())
	case KBytes:
		n := d.uvarint()
		b := d.take(int(n))
		if d.err != nil {
			return Null
		}
		return NewBytes(append([]byte(nil), b...))
	default:
		d.fail()
		return Null
	}
}

func (d *recDecoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("trailing %d byte(s) in record", len(d.buf))
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
