package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sqlast"
)

// EXPLAIN ANALYZE: run the statement with per-operator timing enabled
// and render the physical operator tree annotated with each
// operator's merged OpStats (see opstats.go for counter semantics;
// operator times are inclusive of nested operators, like the
// indentation of the rendered tree).

// ExplainAnalyze executes the statement with default options and
// returns the annotated plan.
func (db *DB) ExplainAnalyze(st sqlast.Statement) (string, error) {
	return db.ExplainAnalyzeWithOptions(st, ExecOptions{})
}

// ExplainAnalyzeWithOptions executes the statement with the given
// options (so parallel plans report their merged per-worker stats)
// and returns the annotated plan.
func (db *DB) ExplainAnalyzeWithOptions(st sqlast.Statement, opts ExecOptions) (string, error) {
	return db.explainAnalyzeContext(nil, st, opts)
}

func (db *DB) explainAnalyzeContext(ctx context.Context, st sqlast.Statement, opts ExecOptions) (out string, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return "", err
	}
	res, frame, err := db.runCompiledFrame(ctx, cs, opts, key, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderCompiled(cs, frame))
	fmt.Fprintf(&b, "total: rows=%d peak-mem=%dB\n", len(res.Rows), res.PeakMemBytes)
	return b.String(), nil
}

// runExplainStmt executes an EXPLAIN / EXPLAIN ANALYZE statement,
// returning the rendered plan as a one-column result (one row per
// plan line) so the statement flows through every Run/Exec surface.
func (db *DB) runExplainStmt(ctx context.Context, ex *sqlast.Explain, opts ExecOptions) (*Result, error) {
	var text string
	var err error
	if ex.Analyze {
		text, err = db.explainAnalyzeContext(ctx, ex.Stmt, opts)
	} else {
		text, err = db.Explain(ex.Stmt)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []Value{NewText(line)})
	}
	return res, nil
}

// OpReport is one operator's estimate-vs-observed record from an
// AnalyzeReport run, the structured companion to EXPLAIN ANALYZE's
// est_rows/q annotations for experiment harnesses (bench planquality).
type OpReport struct {
	Label string
	// Kind classifies the operator ("scan", "filter", "project",
	// "count", "distinct", "sort", "union", "subplan") so harnesses can
	// compute structural metrics (e.g. intermediate result sizes) without
	// parsing labels. Reports arrive in render order: a step's filter
	// immediately follows its scan.
	Kind string
	// EstRows is the planner's per-loop output estimate, valid when
	// HasEst (scans and filters carry estimates; projections, sorts and
	// union machinery do not).
	EstRows float64
	HasEst  bool
	Loops   int64
	RowsOut int64
	// QError is the symmetric ratio error between EstRows and the
	// observed per-loop output, 0 when the operator has no estimate or
	// never ran.
	QError float64
}

// AnalyzeReport executes the statement and returns the per-operator
// estimate/observation records in render order, plus the result.
func (db *DB) AnalyzeReport(st sqlast.Statement, opts ExecOptions) (reports []OpReport, res *Result, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return nil, nil, err
	}
	res, frame, err := db.runCompiledFrame(nil, cs, opts, key, false)
	if err != nil {
		return nil, nil, err
	}
	walkOps(cs, func(n *opNode) {
		r := OpReport{Label: n.label, Kind: n.kind.String(), EstRows: n.est, HasEst: n.hasEst,
			Loops: frame[n.id].loops, RowsOut: frame[n.id].rowsOut}
		if n.hasEst && r.Loops > 0 {
			r.QError = qError(n.est, float64(r.RowsOut)/float64(r.Loops))
		}
		reports = append(reports, r)
	})
	return reports, res, nil
}

// OperatorCount returns the number of physical operator nodes the
// statement lowers to (scans, filters, projections, dedup, sorts,
// union machinery, and correlated-subplan boundaries) — the
// per-operator companion to JoinSteps for experiment reports.
func (db *DB) OperatorCount(st sqlast.Statement) (n int, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return 0, err
	}
	return cs.nOps, nil
}
