package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// Statflow enforces the estimator discipline that cost-based planning
// rests on (DESIGN.md §13). Two rules:
//
//  1. Synopsis statistics are mutated only through internal/synopsis's
//     own API: a raw field write (or address-of escape) from another
//     package would bypass the copy-on-write snapshot contract that
//     makes a pinned synopsis exact for its table state.
//  2. Planner files (joinorder.go, plan.go, access.go, plancache.go,
//     physplan.go in internal/engine) contain no raw fractional
//     constants: every selectivity guess must be a named, documented
//     constant in estimate.go, where its provenance is recorded and
//     plancheck's estimate-provenance obligation can account for it.
var Statflow = &Analyzer{
	Name: "statflow",
	Doc: "flag synopsis field mutations outside internal/synopsis and raw " +
		"fractional selectivity constants in planner files outside estimate.go",
	Run: runStatflow,
}

// plannerFiles is the rule-2 file set: the engine files that consume
// estimates but must not invent them.
var plannerFiles = map[string]bool{
	"joinorder.go": true,
	"plan.go":      true,
	"access.go":    true,
	"plancache.go": true,
	"physplan.go":  true,
}

func runStatflow(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/synopsis") {
		return nil
	}
	inEngine := strings.HasSuffix(pass.Pkg.Path(), "internal/engine")
	pass.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				pass.checkSynopsisWrite(lhs)
			}
		case *ast.IncDecStmt:
			pass.checkSynopsisWrite(st.X)
		case *ast.UnaryExpr:
			// &syn.field escapes the statistic for arbitrary later writes.
			if st.Op == token.AND {
				pass.checkSynopsisWrite(st.X)
			}
		case *ast.BasicLit:
			if inEngine && st.Kind == token.FLOAT {
				file := filepath.Base(pass.Fset.Position(st.Pos()).Filename)
				if !plannerFiles[file] {
					return true
				}
				if v, err := strconv.ParseFloat(st.Value, 64); err == nil && v > 0 && v < 1 {
					pass.Reportf(st.Pos(),
						"raw fractional constant %s in planner file %s; selectivities must be named constants in estimate.go",
						st.Value, file)
				}
			}
		}
		return true
	})
	return nil
}

// checkSynopsisWrite reports e when it selects a field of an
// internal/synopsis type from outside that package.
func (p *Pass) checkSynopsisWrite(e ast.Expr) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !isSynopsisType(selection.Recv()) {
		return
	}
	p.Reportf(sel.Pos(),
		"direct write to synopsis field %s outside internal/synopsis; statistics must go through the synopsis API",
		sel.Sel.Name)
}

// isSynopsisType reports whether t is a named type declared in
// internal/synopsis (possibly behind a pointer).
func isSynopsisType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/synopsis")
}
