// Package accel implements the XPath Accelerator baseline of the
// paper's Section 5.2: Grust's pre/post region encoding with
// staked-out query windows, translated to SQL over the accelerator
// mapping of package shred. Every location step contributes one
// self-join of the accel relation — the join count the PPF technique
// is designed to avoid.
package accel

import (
	"fmt"

	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xpath"
)

// Translator translates XPath to SQL over the accelerator mapping.
type Translator struct{}

// New returns an accelerator translator.
func New() *Translator { return &Translator{} }

// Translation mirrors core.Translation for the accelerator scheme.
type Translation struct {
	Stmt    sqlast.Statement
	SQL     string
	Selects int
	Joins   int
}

// Translate parses and translates a query.
func (t *Translator) Translate(query string) (*Translation, error) {
	e, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return t.TranslateExpr(e)
}

// TranslateExpr translates a parsed expression.
func (t *Translator) TranslateExpr(e xpath.Expr) (*Translation, error) {
	var paths []*xpath.Path
	switch x := e.(type) {
	case *xpath.Path:
		paths = []*xpath.Path{x}
	case *xpath.Union:
		paths = x.Paths
	default:
		return nil, fmt.Errorf("accel: expression %T is not a location path", e)
	}
	var selects []*sqlast.Select
	for _, p := range paths {
		sel, err := t.translatePath(p)
		if err != nil {
			return nil, fmt.Errorf("accel: %q: %w", p, err)
		}
		selects = append(selects, sel)
	}
	var stmt sqlast.Statement
	switch len(selects) {
	case 1:
		// Order by the projected pre expression (qualified).
		selects[0].OrderBy = []sqlast.OrderKey{{Expr: selects[0].Cols[1].Expr}}
		stmt = selects[0]
	default:
		stmt = &sqlast.Union{Selects: selects, OrderBy: []sqlast.OrderKey{{Expr: sqlast.C("", "pre")}}}
	}
	return &Translation{Stmt: stmt, SQL: sqlast.Render(stmt), Selects: len(selects), Joins: countFrom(stmt)}, nil
}

func countFrom(st sqlast.Statement) int {
	n := 0
	var cs func(s *sqlast.Select)
	var ce func(e sqlast.Expr)
	ce = func(e sqlast.Expr) {
		switch x := e.(type) {
		case *sqlast.Binary:
			ce(x.L)
			ce(x.R)
		case *sqlast.Not:
			ce(x.X)
		case *sqlast.Exists:
			cs(x.Select)
		case *sqlast.Subquery:
			cs(x.Select)
		}
	}
	cs = func(s *sqlast.Select) {
		n += len(s.From)
		if s.Where != nil {
			ce(s.Where)
		}
	}
	switch s := st.(type) {
	case *sqlast.Select:
		cs(s)
	case *sqlast.Union:
		for _, sel := range s.Selects {
			cs(sel)
		}
	}
	return n
}

// builder holds alias state for one statement tree.
type builder struct {
	nextV int
	nextA int
}

func (b *builder) newAlias() string {
	b.nextV++
	return fmt.Sprintf("v%d", b.nextV)
}

func (b *builder) newAttrAlias() string {
	b.nextA++
	return fmt.Sprintf("w%d", b.nextA)
}

func (t *Translator) translatePath(p *xpath.Path) (*sqlast.Select, error) {
	if !p.Absolute {
		return nil, fmt.Errorf("top-level paths must be absolute")
	}
	if len(p.Steps) == 0 {
		p = &xpath.Path{Absolute: true, Steps: []*xpath.Step{{Axis: xpath.Child, Test: xpath.NameTest}}}
	}
	b := &builder{}
	sel := &sqlast.Select{Distinct: true}
	end, err := b.buildSteps(sel, p.Steps, "", true)
	if err != nil {
		return nil, err
	}
	sel.Cols = []sqlast.SelectCol{
		{Expr: sqlast.C(end, shred.ColID), Alias: "id"},
		{Expr: sqlast.C(end, shred.ColPre), Alias: "pre"},
	}
	return sel, nil
}

// buildSteps adds one accel alias per step, joined to the previous by
// the axis's region-encoding window. prev == "" with top == true
// starts at the virtual root.
func (b *builder) buildSteps(sel *sqlast.Select, steps []*xpath.Step, prev string, top bool) (string, error) {
	main, terminal, err := xpath.NormalizeSteps(steps)
	if err != nil {
		return "", err
	}
	for i, s := range main {
		alias := b.newAlias()
		sel.From = append(sel.From, sqlast.TableRef{Table: shred.AccelTable, Alias: alias})
		if prev == "" {
			if !top {
				return "", fmt.Errorf("relative step without context")
			}
			// First step from the virtual root.
			switch s.Axis {
			case xpath.Child:
				sel.AddConjunct(&sqlast.IsNull{X: sqlast.C(alias, shred.ColPar)})
			case xpath.Descendant, xpath.DescendantOrSelf:
				// Any element.
			default:
				return "", fmt.Errorf("axis %s cannot start an absolute path", s.Axis)
			}
		} else {
			if err := axisWindow(sel, prev, alias, s.Axis); err != nil {
				return "", err
			}
		}
		if s.Test == xpath.NameTest && s.Name != "" {
			sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColName), sqlast.Str(s.Name)))
		}
		for _, pred := range s.Predicates {
			cond, err := b.predicate(pred, alias)
			if err != nil {
				return "", err
			}
			sel.AddConjunct(cond)
		}
		prev = alias
		_ = i
	}
	if terminal != nil {
		if terminal.Axis == xpath.Attribute {
			sel.AddConjunct(b.attrExists(prev, terminal.Name, 0, nil))
		} else {
			sel.AddConjunct(&sqlast.IsNull{X: sqlast.C(prev, shred.ColText), Negate: true})
		}
	}
	return prev, nil
}

// axisWindow emits the staked-out window condition for one axis: the
// descendant window is the two-sided pre interval (v.pre, v.pre +
// v.size]; following/preceding stake out half-open pre windows; the
// vertical remainder uses pre/post region comparisons.
func axisWindow(sel *sqlast.Select, v, n string, axis xpath.Axis) error {
	pre := func(a string) sqlast.Expr { return sqlast.C(a, shred.ColPre) }
	post := func(a string) sqlast.Expr { return sqlast.C(a, shred.ColPost) }
	par := func(a string) sqlast.Expr { return sqlast.C(a, shred.ColPar) }
	winEnd := func(a string) sqlast.Expr {
		return &sqlast.Binary{Op: sqlast.OpAdd, L: pre(a), R: sqlast.C(a, shred.ColSize)}
	}
	one := sqlast.Int(1)
	switch axis {
	case xpath.Child:
		sel.AddConjunct(sqlast.Eq(par(n), pre(v)))
	case xpath.Parent:
		sel.AddConjunct(sqlast.Eq(par(v), pre(n)))
	case xpath.Descendant:
		sel.AddConjunct(&sqlast.Between{X: pre(n),
			Lo: &sqlast.Binary{Op: sqlast.OpAdd, L: pre(v), R: one}, Hi: winEnd(v)})
	case xpath.DescendantOrSelf:
		sel.AddConjunct(&sqlast.Between{X: pre(n), Lo: pre(v), Hi: winEnd(v)})
	case xpath.Ancestor:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt, L: pre(n), R: pre(v)})
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt, L: post(n), R: post(v)})
	case xpath.AncestorOrSelf:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpLe, L: pre(n), R: pre(v)})
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGe, L: post(n), R: post(v)})
	case xpath.Following:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt, L: pre(n), R: winEnd(v)})
	case xpath.Preceding:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt, L: pre(n), R: pre(v)})
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt, L: post(n), R: post(v)})
	case xpath.FollowingSibling:
		sel.AddConjunct(sqlast.Eq(par(n), par(v)))
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt, L: pre(n), R: pre(v)})
	case xpath.PrecedingSibling:
		sel.AddConjunct(sqlast.Eq(par(n), par(v)))
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt, L: pre(n), R: pre(v)})
	default:
		return fmt.Errorf("axis %s is not supported by the accelerator translation", axis)
	}
	return nil
}

func (b *builder) attrExists(owner, name string, op sqlast.BinOp, val sqlast.Expr) sqlast.Expr {
	a := b.newAttrAlias()
	sub := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}},
		From: []sqlast.TableRef{{Table: shred.AttrTable, Alias: a}},
	}
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColOwner), sqlast.C(owner, shred.ColPre)))
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColAttrName), sqlast.Str(name)))
	if val != nil {
		sub.AddConjunct(&sqlast.Binary{Op: op, L: sqlast.C(a, shred.ColValue), R: val})
	}
	return &sqlast.Exists{Select: sub}
}

// predicate translates one predicate on the element bound to alias.
func (b *builder) predicate(e xpath.Expr, alias string) (sqlast.Expr, error) {
	switch x := e.(type) {
	case *xpath.Binary:
		switch {
		case x.Op == xpath.OpAnd || x.Op == xpath.OpOr:
			l, err := b.predicate(x.L, alias)
			if err != nil {
				return nil, err
			}
			r, err := b.predicate(x.R, alias)
			if err != nil {
				return nil, err
			}
			if x.Op == xpath.OpAnd {
				return sqlast.And(l, r), nil
			}
			return sqlast.Or(l, r), nil
		case x.Op.Comparison():
			return b.comparison(x, alias)
		}
		return nil, fmt.Errorf("unsupported predicate operator %s", x.Op)
	case *xpath.Call:
		if x.Name == "not" {
			inner, err := b.predicate(x.Args[0], alias)
			if err != nil {
				return nil, err
			}
			if ex, ok := inner.(*sqlast.Exists); ok {
				return &sqlast.Exists{Select: ex.Select, Negate: !ex.Negate}, nil
			}
			return &sqlast.Not{X: inner}, nil
		}
		return nil, fmt.Errorf("function %s() is not supported", x.Name)
	case *xpath.Path:
		return b.pathExists(x, alias, nil, 0)
	case *xpath.Union:
		var parts []sqlast.Expr
		for _, p := range x.Paths {
			c, err := b.pathExists(p, alias, nil, 0)
			if err != nil {
				return nil, err
			}
			parts = append(parts, c)
		}
		return sqlast.Or(parts...), nil
	case *xpath.Number:
		return b.positional(sqlast.OpEq, x.Value, alias)
	case *xpath.Literal:
		if x.Value != "" {
			return sqlast.Eq(sqlast.Int(1), sqlast.Int(1)), nil
		}
		return sqlast.Eq(sqlast.Int(1), sqlast.Int(0)), nil
	}
	return nil, fmt.Errorf("unsupported predicate %T", e)
}

func (b *builder) comparison(x *xpath.Binary, alias string) (sqlast.Expr, error) {
	op := sqlOp(x.Op)
	lp, lok := x.L.(*xpath.Path)
	rp, rok := x.R.(*xpath.Path)
	switch {
	case lok && rok:
		return b.joinClause(op, lp, rp, alias)
	case lok:
		c, ok := constLit(x.R)
		if !ok {
			return nil, fmt.Errorf("unsupported comparison %s", x)
		}
		return b.pathExists(lp, alias, c, op)
	case rok:
		c, ok := constLit(x.L)
		if !ok {
			return nil, fmt.Errorf("unsupported comparison %s", x)
		}
		return b.pathExists(rp, alias, c, flipOp(op))
	default:
		// position() = n.
		if call, ok := x.L.(*xpath.Call); ok && call.Name == "position" {
			if n, ok := x.R.(*xpath.Number); ok {
				return b.positional(op, n.Value, alias)
			}
		}
		return nil, fmt.Errorf("unsupported comparison %s", x)
	}
}

// pathExists builds EXISTS for a predicate path, optionally
// restricting the reached element's value.
func (b *builder) pathExists(p *xpath.Path, alias string, val sqlast.Expr, op sqlast.BinOp) (sqlast.Expr, error) {
	// Shortcuts on the predicated element itself.
	if !p.Absolute && len(p.Steps) == 1 {
		s := p.Steps[0]
		if s.Axis == xpath.Attribute && len(s.Predicates) == 0 {
			return b.attrExists(alias, s.Name, op, val), nil
		}
		if (s.Test == xpath.TextTest || (s.Axis == xpath.Self && s.Test == xpath.AnyKindTest)) && len(s.Predicates) == 0 {
			if val == nil {
				return &sqlast.IsNull{X: sqlast.C(alias, shred.ColText), Negate: true}, nil
			}
			return &sqlast.Binary{Op: op, L: sqlast.C(alias, shred.ColText), R: val}, nil
		}
	}
	sub := &sqlast.Select{Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}}}
	start := alias
	if p.Absolute {
		start = ""
	}
	end, err := b.buildStepsInto(sub, p, start)
	if err != nil {
		return nil, err
	}
	if val != nil {
		main, terminal, err := xpath.NormalizeSteps(p.Steps)
		_ = main
		if err != nil {
			return nil, err
		}
		if terminal != nil && terminal.Axis == xpath.Attribute {
			// The attribute restriction was added as EXISTS by buildSteps;
			// replace it with a value-restricted one. Simpler: add another.
			sub.AddConjunct(b.attrExists(end, terminal.Name, op, val))
		} else {
			sub.AddConjunct(&sqlast.Binary{Op: op, L: sqlast.C(end, shred.ColText), R: val})
		}
	}
	return &sqlast.Exists{Select: sub}, nil
}

func (b *builder) buildStepsInto(sub *sqlast.Select, p *xpath.Path, start string) (string, error) {
	return b.buildSteps(sub, p.Steps, start, p.Absolute)
}

// joinClause translates 'pathL op pathR'.
func (b *builder) joinClause(op sqlast.BinOp, pl, pr *xpath.Path, alias string) (sqlast.Expr, error) {
	sub := &sqlast.Select{Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}}}
	startL := alias
	if pl.Absolute {
		startL = ""
	}
	endL, err := b.buildSteps(sub, pl.Steps, startL, pl.Absolute)
	if err != nil {
		return nil, err
	}
	startR := alias
	if pr.Absolute {
		startR = ""
	}
	endR, err := b.buildSteps(sub, pr.Steps, startR, pr.Absolute)
	if err != nil {
		return nil, err
	}
	sub.AddConjunct(&sqlast.Binary{Op: op,
		L: sqlast.C(endL, shred.ColText), R: sqlast.C(endR, shred.ColText)})
	return &sqlast.Exists{Select: sub}, nil
}

// positional counts same-name preceding siblings.
func (b *builder) positional(op sqlast.BinOp, n float64, alias string) (sqlast.Expr, error) {
	a := b.newAlias()
	sub := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: &sqlast.CountStar{}}},
		From: []sqlast.TableRef{{Table: shred.AccelTable, Alias: a}},
	}
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColPar), sqlast.C(alias, shred.ColPar)))
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColName), sqlast.C(alias, shred.ColName)))
	sub.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt,
		L: sqlast.C(a, shred.ColPre), R: sqlast.C(alias, shred.ColPre)})
	return &sqlast.Binary{Op: op,
		L: &sqlast.Subquery{Select: sub}, R: sqlast.Int(int64(n) - 1)}, nil
}

func constLit(e xpath.Expr) (sqlast.Expr, bool) {
	switch x := e.(type) {
	case *xpath.Literal:
		return sqlast.Str(x.Value), true
	case *xpath.Number:
		if x.Value == float64(int64(x.Value)) {
			return sqlast.Int(int64(x.Value)), true
		}
		return &sqlast.FloatLit{Value: x.Value}, true
	}
	return nil, false
}

func sqlOp(op xpath.Op) sqlast.BinOp {
	switch op {
	case xpath.OpEq:
		return sqlast.OpEq
	case xpath.OpNe:
		return sqlast.OpNe
	case xpath.OpLt:
		return sqlast.OpLt
	case xpath.OpLe:
		return sqlast.OpLe
	case xpath.OpGt:
		return sqlast.OpGt
	default:
		return sqlast.OpGe
	}
}

func flipOp(op sqlast.BinOp) sqlast.BinOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	}
	return op
}
