package core

import (
	"fmt"

	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xpath"
)

// EdgeTranslator is the schema-oblivious variant of PPF-based
// processing used in the Section 5.1 comparison: the same PPF
// splitting, path-regex filtering and Dewey structural joins, applied
// to the Edge-like mapping (one central element relation, attributes
// in a separate relation, no schema marking — every path filter is
// dynamic).
type EdgeTranslator struct {
	opts Options
}

// NewEdge returns an Edge-mapping PPF translator.
func NewEdge(opts *Options) *EdgeTranslator {
	o := DefaultOptions()
	o.PathFilterOmission = false // no schema knowledge
	if opts != nil {
		o.FKChildParent = opts.FKChildParent
	}
	return &EdgeTranslator{opts: o}
}

// Translate parses and translates an XPath query against the Edge
// mapping.
func (t *EdgeTranslator) Translate(query string) (*Translation, error) {
	e, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return t.TranslateExpr(e)
}

// TranslateExpr translates a parsed expression.
func (t *EdgeTranslator) TranslateExpr(e xpath.Expr) (*Translation, error) {
	var paths []*xpath.Path
	switch x := e.(type) {
	case *xpath.Path:
		paths = []*xpath.Path{x}
	case *xpath.Union:
		paths = x.Paths
	default:
		return nil, fmt.Errorf("core: expression %T is not a location path", e)
	}
	var selects []*sqlast.Select
	for _, p := range paths {
		sel, err := t.translatePath(p)
		if err != nil {
			return nil, fmt.Errorf("core: %q: %w", p, err)
		}
		if sel != nil {
			selects = append(selects, sel)
		}
	}
	return finishTranslation(selects)
}

// edgeBuilder accumulates one SELECT over the Edge mapping.
type edgeBuilder struct {
	tr    *EdgeTranslator
	nextE int
	nextA int
	// joined memoizes paths joins per SELECT scope (a join added to
	// one subquery's FROM is invisible to its siblings); aliases are
	// deduplicated statement-wide by nextP.
	joined map[*sqlast.Select]map[string]string
	nextP  map[string]int
}

// edgeCtx is the chain state: previous prominent alias and name
// pattern plus the forward run.
type edgeCtx struct {
	alias    string
	namePat  string
	lastStep *xpath.Step
	run      []*xpath.Step
	anchored bool
	runBase  string
}

func (b *edgeBuilder) newEdgeAlias() string {
	b.nextE++
	return fmt.Sprintf("e%d", b.nextE)
}

func (b *edgeBuilder) newAttrAlias() string {
	b.nextA++
	return fmt.Sprintf("at%d", b.nextA)
}

func (t *EdgeTranslator) translatePath(p *xpath.Path) (*sqlast.Select, error) {
	if !p.Absolute {
		return nil, fmt.Errorf("top-level paths must be absolute")
	}
	if len(p.Steps) == 0 {
		p = &xpath.Path{Absolute: true, Steps: []*xpath.Step{{Axis: xpath.Child, Test: xpath.NameTest}}}
	}
	frags, terminal, err := splitPPFs(p.Steps)
	if err != nil {
		return nil, err
	}
	if len(frags) == 0 || frags[0].kind != ppfForward {
		return nil, fmt.Errorf("an absolute path must begin with a forward step")
	}
	b := &edgeBuilder{tr: t, joined: map[*sqlast.Select]map[string]string{}, nextP: map[string]int{}}
	sel := &sqlast.Select{Distinct: true}
	end, err := b.buildChain(sel, frags, edgeCtx{})
	if err != nil {
		return nil, err
	}
	if cond, err := b.terminalCond(end, terminal); err != nil {
		return nil, err
	} else if cond != nil {
		sel.AddConjunct(cond)
	}
	sel.Cols = []sqlast.SelectCol{
		{Expr: sqlast.C(end.alias, shred.ColID), Alias: "id"},
		{Expr: sqlast.C(end.alias, shred.ColDewey), Alias: "dewey_pos"},
	}
	return sel, nil
}

// terminalCond restricts for a terminal @attr or text() step.
func (b *edgeBuilder) terminalCond(end edgeCtx, terminal *xpath.Step) (sqlast.Expr, error) {
	if terminal == nil {
		return nil, nil
	}
	if terminal.Axis == xpath.Attribute {
		return b.attrExists(end.alias, terminal.Name, 0, nil), nil
	}
	return &sqlast.IsNull{X: sqlast.C(end.alias, shred.ColText), Negate: true}, nil
}

// attrExists builds EXISTS over the attribute relation; op/val add a
// value restriction when val is non-nil.
func (b *edgeBuilder) attrExists(owner, name string, op sqlast.BinOp, val sqlast.Expr) sqlast.Expr {
	a := b.newAttrAlias()
	sub := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}},
		From: []sqlast.TableRef{{Table: shred.AttrTable, Alias: a}},
	}
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColOwner), sqlast.C(owner, shred.ColID)))
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColAttrName), sqlast.Str(name)))
	if val != nil {
		sub.AddConjunct(&sqlast.Binary{Op: op, L: sqlast.C(a, shred.ColValue), R: val})
	}
	return &sqlast.Exists{Select: sub}
}

// buildChain implements Algorithm 1 over the Edge mapping.
func (b *edgeBuilder) buildChain(sel *sqlast.Select, frags []*ppf, start edgeCtx) (edgeCtx, error) {
	cur := start
	for i, f := range frags {
		alias := b.newEdgeAlias()
		sel.From = append(sel.From, sqlast.TableRef{Table: shred.EdgeTable, Alias: alias})

		switch f.kind {
		case ppfForward:
			first := cur.alias == "" && i == 0 && start.alias == ""
			switch {
			case first && len(cur.run) == 0:
				cur.run = append([]*xpath.Step(nil), f.steps...)
				cur.anchored = true
				cur.runBase = ""
			case len(cur.run) > 0 && (i == 0 || frags[i-1].kind == ppfForward):
				cur.run = append(append([]*xpath.Step(nil), cur.run...), f.steps...)
			default:
				cur.run = append([]*xpath.Step(nil), f.steps...)
				cur.anchored = false
				cur.runBase = cur.namePat
			}
			pattern, err := forwardRegex(cur.run, cur.anchored, cur.runBase)
			if err != nil {
				return cur, err
			}
			b.addPathFilter(sel, alias, pattern)
			if cur.alias != "" {
				if err := b.structuralJoin(sel, cur, alias, f); err != nil {
					return cur, err
				}
			}
		case ppfBackward:
			if cur.alias == "" {
				return cur, fmt.Errorf("a backward fragment needs a preceding context")
			}
			pattern, err := backwardRegex(f.steps, cur.namePat)
			if err != nil {
				return cur, err
			}
			b.addPathFilter(sel, cur.alias, pattern)
			// The prominent element's own name test.
			b.nameFilter(sel, alias, f.prominent())
			if err := b.structuralJoin(sel, cur, alias, f); err != nil {
				return cur, err
			}
			cur.run, cur.anchored, cur.runBase = nil, false, ""
		case ppfHorizontal:
			if cur.alias == "" {
				return cur, fmt.Errorf("a horizontal fragment needs a preceding context")
			}
			// Algorithm 1 lines 6-7: filter the prominent's path to end
			// with the step's name test.
			b.nameFilter(sel, alias, f.steps[0])
			b.horizontalJoin(sel, cur.alias, alias, f.steps[0].Axis)
			cur.run, cur.anchored, cur.runBase = nil, false, ""
		}

		cur.alias = alias
		cur.namePat = namePat(f.prominent())
		cur.lastStep = f.prominent()

		if err := checkPredicateOrder(f.prominent()); err != nil {
			return cur, err
		}
		for _, pred := range f.prominent().Predicates {
			cond, err := b.translatePredicate(sel, pred, cur)
			if err != nil {
				return cur, err
			}
			if cond.isFalse {
				sel.AddConjunct(sqlast.Eq(sqlast.Int(1), sqlast.Int(0)))
			} else if !cond.isTrue {
				sel.AddConjunct(cond.expr)
			}
		}
	}
	return cur, nil
}

// addPathFilter joins alias with paths and filters by pattern (no
// omission: the Edge mapping has no schema marking). Trivial patterns
// that match everything are skipped.
func (b *edgeBuilder) addPathFilter(sel *sqlast.Select, alias, pattern string) {
	if pattern == "^.*$" || pattern == "^.*[^/]+$" || pattern == "^.*/[^/]+$" {
		return
	}
	pa := b.joinWithPaths(sel, alias)
	sel.AddConjunct(sqlast.RegexpLike(sqlast.C(pa, "path"), pattern))
}

// nameFilter restricts an alias to a node-test by path suffix, per
// Algorithm 1 lines 6-7 (skipped for wildcards).
func (b *edgeBuilder) nameFilter(sel *sqlast.Select, alias string, step *xpath.Step) {
	if step.Wildcard() || step.Test != xpath.NameTest {
		return
	}
	b.addPathFilter(sel, alias, "^.*/"+regexQuote(step.Name)+"$")
}

func (b *edgeBuilder) joinWithPaths(sel *sqlast.Select, alias string) string {
	if pa, ok := b.joined[sel][alias]; ok {
		return pa
	}
	// Unique statement-wide: a subquery re-joining an outer alias's
	// paths row must not shadow the enclosing scope's join.
	pa := alias + "_paths"
	b.nextP[pa]++
	if n := b.nextP[pa]; n > 1 {
		pa = fmt.Sprintf("%s_%d", pa, n)
	}
	sel.From = append(sel.From, sqlast.TableRef{Table: shred.PathsTable, Alias: pa})
	sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPath), sqlast.C(pa, shred.ColID)))
	if b.joined[sel] == nil {
		b.joined[sel] = map[string]string{}
	}
	b.joined[sel][alias] = pa
	return pa
}

func (b *edgeBuilder) structuralJoin(sel *sqlast.Select, prev edgeCtx, alias string, f *ppf) error {
	prevAlias := prev.alias
	if b.tr.opts.FKChildParent && len(f.steps) == 1 {
		switch f.steps[0].Axis {
		case xpath.Child:
			sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(prevAlias, shred.ColID)))
			return nil
		case xpath.Parent:
			sel.AddConjunct(sqlast.Eq(sqlast.C(prevAlias, shred.ColPar), sqlast.C(alias, shred.ColID)))
			return nil
		}
	}
	switch f.kind {
	case ppfForward:
		sel.AddConjunct(&sqlast.Between{
			X:  sqlast.C(alias, shred.ColDewey),
			Lo: sqlast.C(prevAlias, shred.ColDewey),
			Hi: deweyLimit(prevAlias),
		})
		if !forwardInclusive(f) {
			sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpNe,
				L: sqlast.C(alias, shred.ColID), R: sqlast.C(prevAlias, shred.ColID)})
		}
		// Without a schema there is no recursion knowledge: always pin
		// the fragment boundary (see the schema-aware structuralJoin).
		if allChild(f) {
			sel.AddConjunct(levelPin(alias, prevAlias, len(f.steps)))
		} else {
			pattern, err := forwardSuffixRegex(f.steps, prev.namePat)
			if err != nil {
				return err
			}
			sel.AddConjunct(b.suffixCheck(sel, alias, prevAlias, pattern))
		}
	case ppfBackward:
		sel.AddConjunct(&sqlast.Between{
			X:  sqlast.C(prevAlias, shred.ColDewey),
			Lo: sqlast.C(alias, shred.ColDewey),
			Hi: deweyLimit(alias),
		})
		if !backwardInclusive(f) {
			sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpNe,
				L: sqlast.C(alias, shred.ColID), R: sqlast.C(prevAlias, shred.ColID)})
		}
		if allParent(f) {
			sel.AddConjunct(levelPin(prevAlias, alias, len(f.steps)))
		} else {
			pattern, err := backwardSuffixRegex(f.steps, prev.namePat)
			if err != nil {
				return err
			}
			sel.AddConjunct(b.suffixCheck(sel, prevAlias, alias, pattern))
		}
	}
	return nil
}

// suffixCheck mirrors builder.suffixCheck for the Edge mapping.
func (b *edgeBuilder) suffixCheck(sel *sqlast.Select, deepAlias, shallowAlias, pattern string) sqlast.Expr {
	deepPaths := b.joinWithPaths(sel, deepAlias)
	shallowPaths := b.joinWithPaths(sel, shallowAlias)
	return sqlast.RegexpLike(
		&sqlast.Func{Name: "SUBSTR", Args: []sqlast.Expr{
			sqlast.C(deepPaths, "path"),
			&sqlast.Binary{Op: sqlast.OpAdd,
				L: &sqlast.Func{Name: "LENGTH", Args: []sqlast.Expr{sqlast.C(shallowPaths, "path")}},
				R: sqlast.Int(1)},
		}},
		pattern)
}

func (b *edgeBuilder) horizontalJoin(sel *sqlast.Select, prevAlias, alias string, axis xpath.Axis) {
	switch axis {
	case xpath.Following:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(alias, shred.ColDewey), R: deweyLimit(prevAlias)})
	case xpath.Preceding:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(prevAlias, shred.ColDewey), R: deweyLimit(alias)})
	case xpath.FollowingSibling:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(alias, shred.ColDewey), R: sqlast.C(prevAlias, shred.ColDewey)})
		sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(prevAlias, shred.ColPar)))
	case xpath.PrecedingSibling:
		sel.AddConjunct(&sqlast.Binary{Op: sqlast.OpGt,
			L: sqlast.C(prevAlias, shred.ColDewey), R: sqlast.C(alias, shred.ColDewey)})
		sel.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(prevAlias, shred.ColPar)))
	}
}

// --- predicates over the Edge mapping ---

func (b *edgeBuilder) translatePredicate(sel *sqlast.Select, e xpath.Expr, ctx edgeCtx) (sqlCond, error) {
	switch x := e.(type) {
	case *xpath.Binary:
		switch {
		case x.Op == xpath.OpAnd, x.Op == xpath.OpOr:
			l, err := b.translatePredicate(sel, x.L, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			r, err := b.translatePredicate(sel, x.R, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			if x.Op == xpath.OpAnd {
				return dyn(sqlast.And(l.asExpr(), r.asExpr())), nil
			}
			return dyn(sqlast.Or(l.asExpr(), r.asExpr())), nil
		case x.Op.Comparison():
			return b.translateComparison(sel, x, ctx)
		default:
			return sqlCond{}, fmt.Errorf("a bare arithmetic predicate is positional and not supported")
		}
	case *xpath.Call:
		switch x.Name {
		case "not":
			inner, err := b.translatePredicate(sel, x.Args[0], ctx)
			if err != nil {
				return sqlCond{}, err
			}
			switch {
			case inner.isTrue:
				return condFalse, nil
			case inner.isFalse:
				return condTrue, nil
			}
			return dyn(negate(inner.expr)), nil
		case "last":
			return b.lastPredicate(ctx)
		case "position":
			return condTrue, nil
		}
		return sqlCond{}, fmt.Errorf("function %s() cannot be a boolean predicate", x.Name)
	case *xpath.Path:
		return b.predPathExists(sel, x, ctx)
	case *xpath.Union:
		var parts []sqlast.Expr
		for _, p := range x.Paths {
			c, err := b.predPathExists(sel, p, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			parts = append(parts, c.asExpr())
		}
		return dyn(sqlast.Or(parts...)), nil
	case *xpath.Number:
		return b.positional(sqlast.OpEq, x.Value, ctx)
	case *xpath.Literal:
		if x.Value != "" {
			return condTrue, nil
		}
		return condFalse, nil
	}
	return sqlCond{}, fmt.Errorf("unsupported predicate %T", e)
}

func (b *edgeBuilder) translateComparison(sel *sqlast.Select, x *xpath.Binary, ctx edgeCtx) (sqlCond, error) {
	op := sqlOp(x.Op)
	lPath, lf, lIsPath := valuePath(x.L)
	rPath, rf, rIsPath := valuePath(x.R)
	switch {
	case lIsPath && rIsPath:
		if lf != nil || rf != nil {
			return sqlCond{}, fmt.Errorf("arithmetic on both sides of a join predicate is not supported")
		}
		return b.joinClause(op, lPath, rPath, ctx)
	case lIsPath:
		c, ok := constExpr(x.R)
		if !ok {
			return b.specialComparison(x, ctx)
		}
		return b.valueComparison(op, lPath, lf, c, ctx)
	case rIsPath:
		c, ok := constExpr(x.L)
		if !ok {
			return b.specialComparison(x, ctx)
		}
		return b.valueComparison(flipSQLOp(op), rPath, rf, c, ctx)
	default:
		return b.specialComparison(x, ctx)
	}
}

func (b *edgeBuilder) specialComparison(x *xpath.Binary, ctx edgeCtx) (sqlCond, error) {
	if l, lok := positionTerm(x.L); lok {
		if r, rok := positionTerm(x.R); rok && !(l.kind == 'n' && r.kind == 'n') {
			le, err := b.positionTermExpr(l, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			re, err := b.positionTermExpr(r, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			return dyn(&sqlast.Binary{Op: sqlOp(x.Op), L: le, R: re}), nil
		}
	}
	if call, ok := x.L.(*xpath.Call); ok && call.Name == "count" {
		if n, ok := x.R.(*xpath.Number); ok {
			return b.countComparison(sqlOp(x.Op), call.Args[0], n.Value, ctx)
		}
	}
	if call, ok := x.R.(*xpath.Call); ok && call.Name == "count" {
		if n, ok := x.L.(*xpath.Number); ok {
			return b.countComparison(flipSQLOp(sqlOp(x.Op)), call.Args[0], n.Value, ctx)
		}
	}
	lc, lok := constValue(x.L)
	rc, rok := constValue(x.R)
	if lok && rok {
		if staticCompare(x.Op, lc, rc) {
			return condTrue, nil
		}
		return condFalse, nil
	}
	return sqlCond{}, fmt.Errorf("unsupported comparison %s", x)
}

// predPathExists translates a bare path predicate.
func (b *edgeBuilder) predPathExists(sel *sqlast.Select, p *xpath.Path, ctx edgeCtx) (sqlCond, error) {
	if !p.Absolute && len(p.Steps) == 1 {
		s := p.Steps[0]
		if s.Axis == xpath.Attribute && len(s.Predicates) == 0 {
			return dyn(b.attrExists(ctx.alias, s.Name, 0, nil)), nil
		}
		if s.Test == xpath.TextTest && len(s.Predicates) == 0 {
			return dyn(&sqlast.IsNull{X: sqlast.C(ctx.alias, shred.ColText), Negate: true}), nil
		}
		if s.Axis == xpath.Self && s.Test == xpath.AnyKindTest && len(s.Predicates) == 0 {
			return condTrue, nil
		}
	}
	// Backward simple path: Table 5-2 path filtering.
	if !p.Absolute && isBackwardSimple(p.Steps) {
		steps, _, err := normalizeSteps(p.Steps)
		if err != nil {
			return sqlCond{}, err
		}
		pattern, err := backwardRegex(steps, ctx.namePat)
		if err != nil {
			return sqlCond{}, err
		}
		pa := b.joinWithPaths(sel, ctx.alias)
		return dyn(sqlast.RegexpLike(sqlast.C(pa, "path"), pattern)), nil
	}
	ch, err := b.buildPredChain(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	if cond, err := b.terminalCondIn(ch); err != nil {
		return sqlCond{}, err
	} else if cond != nil {
		ch.sel.AddConjunct(cond)
	}
	return dyn(&sqlast.Exists{Select: ch.sel}), nil
}

// edgeChain is a predicate path subselect under construction.
type edgeChain struct {
	sel      *sqlast.Select
	end      edgeCtx
	terminal *xpath.Step
}

func (b *edgeBuilder) terminalCondIn(ch edgeChain) (sqlast.Expr, error) {
	if ch.terminal == nil {
		return nil, nil
	}
	if ch.terminal.Axis == xpath.Attribute {
		return b.attrExists(ch.end.alias, ch.terminal.Name, 0, nil), nil
	}
	return &sqlast.IsNull{X: sqlast.C(ch.end.alias, shred.ColText), Negate: true}, nil
}

func (b *edgeBuilder) buildPredChain(p *xpath.Path, ctx edgeCtx) (edgeChain, error) {
	frags, terminal, err := splitPPFs(p.Steps)
	if err != nil {
		return edgeChain{}, err
	}
	if len(frags) == 0 {
		return edgeChain{}, fmt.Errorf("empty predicate path %q", p)
	}
	start := ctx
	if p.Absolute {
		start = edgeCtx{}
	}
	sub := &sqlast.Select{Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}}}
	end, err := b.buildChain(sub, frags, start)
	if err != nil {
		return edgeChain{}, err
	}
	return edgeChain{sel: sub, end: end, terminal: terminal}, nil
}

func (b *edgeBuilder) valueComparison(op sqlast.BinOp, p *xpath.Path, f func(sqlast.Expr) sqlast.Expr, c sqlast.Expr, ctx edgeCtx) (sqlCond, error) {
	if cond, ok, err := b.selfValue(op, p, f, c, ctx); err != nil || ok {
		return cond, err
	}
	ch, err := b.buildPredChain(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	if ch.terminal != nil && ch.terminal.Axis == xpath.Attribute {
		ch.sel.AddConjunct(b.attrCompare(ch.end.alias, ch.terminal.Name, op, c, f))
	} else {
		ch.sel.AddConjunct(&sqlast.Binary{Op: op, L: applyf(f, sqlast.C(ch.end.alias, shred.ColText)), R: c})
	}
	return dyn(&sqlast.Exists{Select: ch.sel}), nil
}

// attrCompare embeds a value-restricted attribute EXISTS.
func (b *edgeBuilder) attrCompare(owner, name string, op sqlast.BinOp, val sqlast.Expr, f func(sqlast.Expr) sqlast.Expr) sqlast.Expr {
	a := b.newAttrAlias()
	sub := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}},
		From: []sqlast.TableRef{{Table: shred.AttrTable, Alias: a}},
	}
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColOwner), sqlast.C(owner, shred.ColID)))
	sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColAttrName), sqlast.Str(name)))
	sub.AddConjunct(&sqlast.Binary{Op: op, L: applyf(f, sqlast.C(a, shred.ColValue)), R: val})
	return &sqlast.Exists{Select: sub}
}

// isSelfish reports whether a predicate path denotes a value of the
// predicated element itself ('.', 'text()', '@attr').
func isSelfish(p *xpath.Path) bool {
	if p.Absolute || len(p.Steps) != 1 {
		return false
	}
	s := p.Steps[0]
	if len(s.Predicates) > 0 {
		return false
	}
	return s.Axis == xpath.Attribute ||
		(s.Axis == xpath.Child && s.Test == xpath.TextTest) ||
		(s.Axis == xpath.Self && s.Test == xpath.AnyKindTest)
}

// selfExpr returns the SQL expression for a selfish path's value. For
// attributes it returns a scalar subquery over the attr relation.
func (b *edgeBuilder) selfExpr(p *xpath.Path, ctx edgeCtx) (sqlast.Expr, error) {
	s := p.Steps[0]
	if s.Axis == xpath.Attribute {
		a := b.newAttrAlias()
		sub := &sqlast.Select{
			Cols: []sqlast.SelectCol{{Expr: sqlast.C(a, shred.ColValue)}},
			From: []sqlast.TableRef{{Table: shred.AttrTable, Alias: a}},
		}
		sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColOwner), sqlast.C(ctx.alias, shred.ColID)))
		sub.AddConjunct(sqlast.Eq(sqlast.C(a, shred.ColAttrName), sqlast.Str(s.Name)))
		return &sqlast.Subquery{Select: sub}, nil
	}
	return sqlast.C(ctx.alias, shred.ColText), nil
}

// selfValue handles '.', 'text()' and '@attr' comparisons against the
// predicated element itself.
func (b *edgeBuilder) selfValue(op sqlast.BinOp, p *xpath.Path, f func(sqlast.Expr) sqlast.Expr, c sqlast.Expr, ctx edgeCtx) (sqlCond, bool, error) {
	if p.Absolute || len(p.Steps) != 1 {
		return sqlCond{}, false, nil
	}
	s := p.Steps[0]
	switch {
	case s.Axis == xpath.Attribute && len(s.Predicates) == 0:
		return dyn(b.attrCompare(ctx.alias, s.Name, op, c, f)), true, nil
	case s.Axis == xpath.Child && s.Test == xpath.TextTest && len(s.Predicates) == 0,
		s.Axis == xpath.Self && s.Test == xpath.AnyKindTest && len(s.Predicates) == 0:
		return dyn(&sqlast.Binary{Op: op, L: applyf(f, sqlast.C(ctx.alias, shred.ColText)), R: c}), true, nil
	}
	return sqlCond{}, false, nil
}

func (b *edgeBuilder) joinClause(op sqlast.BinOp, pl, pr *xpath.Path, ctx edgeCtx) (sqlCond, error) {
	mkCol := func(ch edgeChain) (sqlast.Expr, error) {
		if ch.terminal != nil && ch.terminal.Axis == xpath.Attribute {
			return nil, fmt.Errorf("attribute terminals in join predicates are not supported on the Edge mapping")
		}
		return sqlast.C(ch.end.alias, shred.ColText), nil
	}
	// '.', 'text()' or '@attr' on either side compares the predicated
	// element's own value against the other path.
	if isSelfish(pl) || isSelfish(pr) {
		if isSelfish(pl) && isSelfish(pr) {
			lv, err := b.selfExpr(pl, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			rv, err := b.selfExpr(pr, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			return dyn(&sqlast.Binary{Op: op, L: lv, R: rv}), nil
		}
		selfPath, otherPath, useOp := pl, pr, op
		if isSelfish(pr) {
			selfPath, otherPath, useOp = pr, pl, flipSQLOp(op)
		}
		col, err := b.selfExpr(selfPath, ctx)
		if err != nil {
			return sqlCond{}, err
		}
		ch, err := b.buildPredChain(otherPath, ctx)
		if err != nil {
			return sqlCond{}, err
		}
		rcol, err := mkCol(ch)
		if err != nil {
			return sqlCond{}, err
		}
		ch.sel.AddConjunct(&sqlast.Binary{Op: useOp, L: col, R: rcol})
		return dyn(&sqlast.Exists{Select: ch.sel}), nil
	}
	chL, err := b.buildPredChain(pl, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	colL, err := mkCol(chL)
	if err != nil {
		return sqlCond{}, err
	}
	chR, err := b.buildPredChain(pr, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	colR, err := mkCol(chR)
	if err != nil {
		return sqlCond{}, err
	}
	merged := &sqlast.Select{
		Cols:  chL.sel.Cols,
		From:  append(append([]sqlast.TableRef(nil), chL.sel.From...), chR.sel.From...),
		Where: sqlast.And(chL.sel.Where, chR.sel.Where),
	}
	merged.AddConjunct(&sqlast.Binary{Op: op, L: colL, R: colR})
	return dyn(&sqlast.Exists{Select: merged}), nil
}

func (b *edgeBuilder) countComparison(op sqlast.BinOp, arg xpath.Expr, n float64, ctx edgeCtx) (sqlCond, error) {
	p, ok := arg.(*xpath.Path)
	if !ok {
		return sqlCond{}, fmt.Errorf("count() requires a path argument")
	}
	ch, err := b.buildPredChain(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	if cond, err := b.terminalCondIn(ch); err != nil {
		return sqlCond{}, err
	} else if cond != nil {
		ch.sel.AddConjunct(cond)
	}
	ch.sel.Cols = []sqlast.SelectCol{{Expr: &sqlast.CountStar{}}}
	return dyn(&sqlast.Binary{Op: op, L: &sqlast.Subquery{Select: ch.sel}, R: numLit(n)}), nil
}

// positionTermExpr mirrors builder.positionTermExpr over the Edge
// mapping (same-name siblings via the name column).
func (b *edgeBuilder) positionTermExpr(t posTerm, ctx edgeCtx) (sqlast.Expr, error) {
	if t.kind == 'n' {
		return numLit(t.num), nil
	}
	step := ctx.lastStep
	if step == nil || step.Axis != xpath.Child || step.Test != xpath.NameTest || step.Name == "" {
		return nil, fmt.Errorf("positional predicates are only supported on child-axis name tests")
	}
	alias := b.newEdgeAlias()
	sub := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: &sqlast.CountStar{}}},
		From: []sqlast.TableRef{{Table: shred.EdgeTable, Alias: alias}},
	}
	sub.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(ctx.alias, shred.ColPar)))
	sub.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColName), sqlast.Str(step.Name)))
	if t.kind == 'p' {
		sub.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt,
			L: sqlast.C(alias, shred.ColDewey), R: sqlast.C(ctx.alias, shred.ColDewey)})
		return &sqlast.Binary{Op: sqlast.OpAdd, L: &sqlast.Subquery{Select: sub}, R: sqlast.Int(1)}, nil
	}
	return &sqlast.Subquery{Select: sub}, nil
}

func (b *edgeBuilder) positional(op sqlast.BinOp, n float64, ctx edgeCtx) (sqlCond, error) {
	pos, err := b.positionTermExpr(posTerm{kind: 'p'}, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	return dyn(&sqlast.Binary{Op: op, L: pos, R: numLit(n)}), nil
}

// lastPredicate translates a bare '[last()]'.
func (b *edgeBuilder) lastPredicate(ctx edgeCtx) (sqlCond, error) {
	pos, err := b.positionTermExpr(posTerm{kind: 'p'}, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	total, err := b.positionTermExpr(posTerm{kind: 'l'}, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	return dyn(sqlast.Eq(pos, total)), nil
}
