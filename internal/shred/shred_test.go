package shred

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/xmltree"
)

func paperSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.NewBuilder("A").
		Element("A", "B").
		Element("B", "C", "G").
		Element("C", "D", "E").
		Element("E", "F").
		Element("G", "G").
		Attrs("A", "x").
		Text("F", "D").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func paperDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(
		`<A x="3"><B><C><D>4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestNamingHelpers(t *testing.T) {
	if RelName("open_auction") != "open_auction" {
		t.Error("plain name changed")
	}
	if RelName("paths") != "el_paths" {
		t.Error("reserved table name not prefixed")
	}
	if RelName("weird-name") != "weird_name" {
		t.Error("dash not sanitized")
	}
	if RelName("1abc") != "el_1abc" {
		t.Error("leading digit not prefixed")
	}
	if AttrCol("id") != "a_id" || AttrCol("text") != "a_text" {
		t.Error("reserved attr columns not prefixed")
	}
	if AttrCol("featured") != "featured" {
		t.Error("plain attr changed")
	}
}

func TestSchemaAwareLoad(t *testing.T) {
	st, err := NewSchemaAware(paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	docID, err := st.Load(paperDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if docID != 1 {
		t.Fatalf("docID = %d", docID)
	}
	// Counts per relation.
	for rel, want := range map[string]int{"A": 1, "B": 2, "C": 2, "D": 1, "E": 1, "F": 2, "G": 3} {
		tb := st.DB.Table(rel)
		if tb == nil || len(tb.Rows()) != want {
			t.Errorf("relation %s has %v rows, want %d", rel, tb, want)
		}
	}
	// Distinct paths (the document instantiates all 8 schema paths).
	if st.PathCount() != 8 {
		t.Errorf("path count = %d", st.PathCount())
	}
	// Descriptor values: F with text '2'.
	res, err := st.DB.RunSQL("SELECT F.id, F.par, F.text FROM F WHERE F.text = '2'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 8 || res.Rows[0][1].I != 7 {
		t.Fatalf("F rows = %v", res.Rows)
	}
	// Attribute column on A.
	res, err = st.DB.RunSQL("SELECT A.x, A.doc_id FROM A")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "3" || res.Rows[0][1].I != 1 {
		t.Fatalf("A row = %v", res.Rows)
	}
	// Paths relation joined by path_id.
	res, err = st.DB.RunSQL("SELECT p.path FROM F, paths p WHERE F.path_id = p.id AND F.id = 8")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "/A/B/C/E/F" {
		t.Fatalf("path = %v", res.Rows)
	}
}

func TestSchemaAwareRejectsInvalidDoc(t *testing.T) {
	st, err := NewSchemaAware(paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := xmltree.ParseString(`<A><Z/></A>`)
	if _, err := st.Load(bad); err == nil {
		t.Fatal("invalid document should be rejected")
	}
}

func TestSchemaAwareMultiDocIDs(t *testing.T) {
	st, err := NewSchemaAware(paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	d2, err := st.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 2 {
		t.Fatalf("second doc id = %d", d2)
	}
	res, err := st.DB.RunSQL("SELECT A.id FROM A ORDER BY A.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I == res.Rows[1][0].I {
		t.Fatalf("A ids = %v", res.Rows)
	}
	// Paths are shared, not duplicated.
	if st.PathCount() != 8 {
		t.Errorf("path count after two loads = %d", st.PathCount())
	}
}

func TestEdgeLoad(t *testing.T) {
	st, err := NewEdge()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(paperDoc(t)); err != nil {
		t.Fatal(err)
	}
	if len(st.Edge.Rows()) != 12 {
		t.Fatalf("edge rows = %d", len(st.Edge.Rows()))
	}
	if len(st.Attr.Rows()) != 1 {
		t.Fatalf("attr rows = %d", len(st.Attr.Rows()))
	}
	if st.PathCount() != 8 {
		t.Errorf("path count = %d", st.PathCount())
	}
	res, err := st.DB.RunSQL(
		"SELECT e.id FROM edge e, paths p WHERE e.path_id = p.id AND p.path = '/A/B/C/E/F' ORDER BY e.dewey_pos")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 8 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Attribute join.
	res, err = st.DB.RunSQL("SELECT a.value FROM edge e, attr a WHERE a.owner = e.id AND e.name = 'A' AND a.aname = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "3" {
		t.Fatalf("attr rows = %v", res.Rows)
	}
}

func TestAccelLoad(t *testing.T) {
	st, err := NewAccel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(paperDoc(t)); err != nil {
		t.Fatal(err)
	}
	if len(st.Accel.Rows()) != 12 {
		t.Fatalf("accel rows = %d", len(st.Accel.Rows()))
	}
	// Region containment: descendants of B(pre of node id 2) are those
	// with pre > and post < the B row.
	res, err := st.DB.RunSQL(
		"SELECT d.id FROM accel v, accel d WHERE v.id = 2 AND d.pre > v.pre AND d.post < v.post ORDER BY d.pre")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 { // nodes 3..9
		t.Fatalf("descendants = %v", res.Rows)
	}
	if res.Rows[0][0].I != 3 || res.Rows[6][0].I != 12 {
		t.Fatalf("descendant ids = %v", res.Rows)
	}
	// pre order equals document order of elements.
	res, err = st.DB.RunSQL("SELECT a.id FROM accel a ORDER BY a.pre")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].I >= res.Rows[i][0].I {
			t.Fatalf("pre order not increasing in element ids at %d: %v", i, res.Rows)
		}
	}
}

func TestAccelMultiDoc(t *testing.T) {
	st, err := NewAccel()
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	st.Load(doc)
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	// Pre ranks must stay unique across documents.
	res, err := st.DB.RunSQL("SELECT COUNT(*) FROM accel")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 24 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res, err = st.DB.RunSQL("SELECT DISTINCT a.pre FROM accel a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 {
		t.Fatalf("distinct pre = %d", len(res.Rows))
	}
}
