package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dewey"
	"repro/internal/sqlast"
)

// fixtureDB builds a small database shaped like the paper's Figure 1
// schema-aware mapping: one relation per element name plus a shared
// paths relation.
func fixtureDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()

	paths, err := db.CreateTable("paths",
		Column{"id", TInt}, Column{"path", TText})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paths.CreateIndex("paths_pk", "id"); err != nil {
		t.Fatal(err)
	}
	pathID := map[string]int64{}
	for i, p := range []string{"/A", "/A/B", "/A/B/C", "/A/B/C/D", "/A/B/C/E", "/A/B/C/E/F", "/A/B/G", "/A/B/G/G"} {
		paths.MustInsert(NewInt(int64(i+1)), NewText(p))
		pathID[p] = int64(i + 1)
	}

	mk := func(name string, extra ...Column) *Table {
		cols := []Column{{"id", TInt}, {"par", TInt}, {"dewey_pos", TBytes}, {"path_id", TInt}}
		cols = append(cols, extra...)
		tb, err := db.CreateTable(name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		for _, ixc := range []struct {
			n    string
			cols []string
		}{
			{name + "_pk", []string{"id"}},
			{name + "_par", []string{"par"}},
			{name + "_dp", []string{"dewey_pos", "path_id"}},
		} {
			if _, err := tb.CreateIndex(ixc.n, ixc.cols...); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}

	// Document of Figure 1(b): ids and Dewey positions as in the paper.
	a := mk("A", Column{"x", TInt})
	b := mk("B")
	c := mk("C")
	d := mk("D", Column{"text", TText})
	e := mk("E")
	f := mk("F", Column{"text", TText})
	g := mk("G")

	dp := func(ords ...int) Value { return NewBytes(dewey.New(ords...)) }
	a.MustInsert(NewInt(1), Null, dp(1), NewInt(pathID["/A"]), NewInt(3))
	b.MustInsert(NewInt(2), NewInt(1), dp(1, 1), NewInt(pathID["/A/B"]))
	b.MustInsert(NewInt(10), NewInt(1), dp(1, 2), NewInt(pathID["/A/B"]))
	c.MustInsert(NewInt(3), NewInt(2), dp(1, 1, 1), NewInt(pathID["/A/B/C"]))
	c.MustInsert(NewInt(5), NewInt(2), dp(1, 1, 2), NewInt(pathID["/A/B/C"]))
	d.MustInsert(NewInt(4), NewInt(3), dp(1, 1, 1, 1), NewInt(pathID["/A/B/C/D"]), NewText("4"))
	e.MustInsert(NewInt(6), NewInt(5), dp(1, 1, 2, 1), NewInt(pathID["/A/B/C/E"]))
	f.MustInsert(NewInt(7), NewInt(6), dp(1, 1, 2, 1, 1), NewInt(pathID["/A/B/C/E/F"]), NewText("2"))
	f.MustInsert(NewInt(8), NewInt(6), dp(1, 1, 2, 1, 2), NewInt(pathID["/A/B/C/E/F"]), NewText("7"))
	g.MustInsert(NewInt(9), NewInt(2), dp(1, 1, 3), NewInt(pathID["/A/B/G"]))
	g.MustInsert(NewInt(11), NewInt(10), dp(1, 2, 1), NewInt(pathID["/A/B/G"]))
	g.MustInsert(NewInt(12), NewInt(11), dp(1, 2, 1, 1), NewInt(pathID["/A/B/G/G"]))
	return db
}

func ids(res *Result) []int64 {
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].I)
	}
	return out
}

func mustRun(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.RunSQL(sql)
	if err != nil {
		t.Fatalf("RunSQL(%s): %v", sql, err)
	}
	return res
}

func TestSimpleSelect(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT F.id, F.text FROM F ORDER BY F.id")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 7 || res.Rows[1][1].S != "7" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "F.id" {
		t.Errorf("col name = %q", res.Cols[0])
	}
}

func TestLiteralFilterAndAlias(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT f.id AS fid FROM F f WHERE f.text = '2'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "fid" {
		t.Errorf("alias = %q", res.Cols[0])
	}
}

func TestNumericCoercionInFilter(t *testing.T) {
	db := fixtureDB(t)
	// text column compared with a number (the paper's 'F=2' predicate).
	res := mustRun(t, db, "SELECT F.id FROM F WHERE F.text = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFKJoinUsesIndex(t *testing.T) {
	db := fixtureDB(t)
	// child axis: C.par = B.id (Table 2 FK join).
	sql := "SELECT C.id FROM B, C WHERE C.par = B.id AND B.id = 2 ORDER BY C.id"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("ids = %v", got)
	}
	plan, err := db.Explain(sqlast.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index lookup") {
		t.Errorf("plan should use an index lookup:\n%s", plan)
	}
}

func TestDeweyBetweenJoin(t *testing.T) {
	db := fixtureDB(t)
	// Descendant axis per Table 2 (1): F under B(id=2).
	sql := "SELECT F.id FROM B, F WHERE B.id = 2 AND F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF' ORDER BY F.dewey_pos"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("ids = %v", got)
	}
	plan, err := db.Explain(sqlast.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index range scan (two-sided)") {
		t.Errorf("descendant join should use a two-sided range scan:\n%s", plan)
	}
}

func TestFollowingJoin(t *testing.T) {
	db := fixtureDB(t)
	// Following axis per Table 2 (3): nodes after C(id=5) that are G.
	sql := "SELECT G.id FROM C, G WHERE C.id = 5 AND G.dewey_pos > C.dewey_pos || X'FF' ORDER BY G.dewey_pos"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 3 || got[0] != 9 || got[1] != 11 || got[2] != 12 {
		t.Fatalf("ids = %v", got)
	}
}

func TestPrecedingJoin(t *testing.T) {
	db := fixtureDB(t)
	// Preceding per Table 2 (5): D(id=4) precedes F? D.dewey || FF < F.dewey.
	sql := "SELECT D.id FROM F, D WHERE F.id = 7 AND F.dewey_pos > D.dewey_pos || X'FF'"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 1 || got[0] != 4 {
		t.Fatalf("ids = %v", got)
	}
}

func TestRegexpLikeWithPathsJoin(t *testing.T) {
	db := fixtureDB(t)
	sql := "SELECT DISTINCT F.id FROM F, paths F_paths WHERE F.path_id = F_paths.id AND REGEXP_LIKE(F_paths.path, '^/A/B/C/(.+/)?F$') ORDER BY F.id"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 2 {
		t.Fatalf("ids = %v", got)
	}
}

func TestExistsCorrelated(t *testing.T) {
	db := fixtureDB(t)
	// B elements having a descendant F with text = 2 (paper Table 5-1 shape).
	sql := "SELECT B.id FROM B WHERE EXISTS (SELECT NULL FROM F WHERE F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF' AND F.text = 2)"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ids = %v", got)
	}
	// NOT EXISTS.
	sql = "SELECT B.id FROM B WHERE NOT EXISTS (SELECT NULL FROM F WHERE F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF')"
	res = mustRun(t, db, sql)
	if got := ids(res); len(got) != 1 || got[0] != 10 {
		t.Fatalf("ids = %v", got)
	}
}

func TestScalarCountSubquery(t *testing.T) {
	db := fixtureDB(t)
	// Count of F descendants per B.
	sql := "SELECT B.id FROM B WHERE (SELECT COUNT(*) FROM F WHERE F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF') = 2"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ids = %v", got)
	}
	// Top-level COUNT(*).
	res = mustRun(t, db, "SELECT COUNT(*) FROM G")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestUnionDedupAndOrder(t *testing.T) {
	db := fixtureDB(t)
	sql := "SELECT C.id AS id FROM C UNION SELECT C.id AS id FROM C UNION SELECT D.id AS id FROM D ORDER BY id DESC"
	res := mustRun(t, db, sql)
	if got := ids(res); len(got) != 3 || got[0] != 5 || got[1] != 4 || got[2] != 3 {
		t.Fatalf("ids = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT DISTINCT F.par FROM F")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByDeweyBytes(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT G.id FROM G ORDER BY G.dewey_pos")
	if got := ids(res); got[0] != 9 || got[1] != 11 || got[2] != 12 {
		t.Fatalf("ids = %v", got)
	}
	res = mustRun(t, db, "SELECT G.id FROM G ORDER BY G.dewey_pos DESC")
	if got := ids(res); got[0] != 12 {
		t.Fatalf("desc ids = %v", got)
	}
}

func TestIsNullAndNot(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT A.id FROM A WHERE A.par IS NULL")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustRun(t, db, "SELECT F.id FROM F WHERE F.text IS NOT NULL AND NOT F.text = '2'")
	if got := ids(res); len(got) != 1 || got[0] != 8 {
		t.Fatalf("ids = %v", got)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT F.id FROM F WHERE F.text * 2 = 4")
	if got := ids(res); len(got) != 1 || got[0] != 7 {
		t.Fatalf("ids = %v", got)
	}
	res = mustRun(t, db, "SELECT LENGTH(F.text), LOWER('AbC'), UPPER('x'), ABS(0 - 5) FROM F WHERE F.id = 7")
	r := res.Rows[0]
	if r[0].I != 1 || r[1].S != "abc" || r[2].S != "X" || r[3].I != 5 {
		t.Fatalf("row = %v", r)
	}
}

func TestCrossProductFallback(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "SELECT C.id, D.id FROM C, D")
	if len(res.Rows) != 2 {
		t.Fatalf("cross product rows = %d", len(res.Rows))
	}
}

func TestHashJoinOnUnindexedColumn(t *testing.T) {
	db := fixtureDB(t)
	// text is unindexed; joining D.text = F.text must use the hash path.
	sql := "SELECT F.id FROM D, F WHERE F.text = D.text"
	res := mustRun(t, db, sql)
	if len(res.Rows) != 0 { // D.text='4', F.texts are 2 and 7
		t.Fatalf("rows = %v", res.Rows)
	}
	plan, err := db.Explain(sqlast.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "hash join") {
		t.Errorf("plan should use hash join:\n%s", plan)
	}
}

func TestPlanStartsWithSelectiveTable(t *testing.T) {
	db := fixtureDB(t)
	sql := "SELECT F.id FROM A, F WHERE A.x = 3 AND F.dewey_pos BETWEEN A.dewey_pos AND A.dewey_pos || X'FF'"
	plan, err := db.Explain(sqlast.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	var scans []string
	for _, line := range strings.Split(strings.TrimSpace(plan), "\n") {
		if strings.HasPrefix(line, "scan ") {
			scans = append(scans, line)
		}
	}
	if len(scans) != 2 || !strings.HasPrefix(scans[0], "scan A:") {
		t.Errorf("plan should start with A:\n%s", plan)
	}
	if len(scans) == 2 && !strings.Contains(scans[1], "index range scan") {
		t.Errorf("second step should range-scan F:\n%s", plan)
	}
}

func TestErrors(t *testing.T) {
	db := fixtureDB(t)
	for _, sql := range []string{
		"SELECT x.id FROM missing x",
		"SELECT F.nope FROM F",
		"SELECT id FROM F, D", // ambiguous
		"SELECT nosuch FROM F",
		"SELECT UNKNOWNFN(F.id) FROM F",
		"SELECT F.id FROM F WHERE REGEXP_LIKE(F.text, '(')",
		"SELECT F.id FROM F, F", // duplicate name needs alias
		"SELECT F.id FROM F WHERE (SELECT F2.id, F2.par FROM F F2) = 1",
		"SELECT F.id FROM F UNION SELECT G.id, G.par FROM G",
		"SELECT F.id FROM F UNION SELECT G.id FROM G ORDER BY 1 + 1",
	} {
		if _, err := db.RunSQL(sql); err == nil {
			t.Errorf("RunSQL(%q) should fail", sql)
		}
	}
}

func TestTableErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t"); err == nil {
		t.Error("no columns should fail")
	}
	tb, err := db.CreateTable("t", Column{"a", TInt}, Column{"b", TText})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", Column{"a", TInt}); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.CreateTable("u", Column{"a", TInt}, Column{"a", TInt}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := tb.Insert([]Value{NewInt(1)}); err == nil {
		t.Error("short row should fail")
	}
	if _, err := tb.Insert([]Value{NewText("x"), NewText("y")}); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, err := tb.Insert([]Value{NewInt(1), Null}); err != nil {
		t.Errorf("NULL should be accepted: %v", err)
	}
	if _, err := tb.CreateIndex("ix"); err == nil {
		t.Error("index without columns should fail")
	}
	if _, err := tb.CreateIndex("ix", "zz"); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := tb.CreateIndex("ix", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateIndex("ix", "b"); err == nil {
		t.Error("duplicate index name should fail")
	}
}

func TestIndexMaintainedAfterCreate(t *testing.T) {
	db := NewDB()
	tb, _ := db.CreateTable("t", Column{"a", TInt})
	tb.MustInsert(NewInt(5))
	if _, err := tb.CreateIndex("t_a", "a"); err != nil {
		t.Fatal(err)
	}
	tb.MustInsert(NewInt(6))
	res := mustRun(t, db, "SELECT t.a FROM t WHERE t.a = 6")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	st := tb.Stats()
	if st.Rows != 2 || st.Indexes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJoinSteps(t *testing.T) {
	st := sqlast.MustParse("SELECT a FROM t, u WHERE EXISTS (SELECT NULL FROM v, w)")
	if got := JoinSteps(st); got != 4 {
		t.Fatalf("JoinSteps = %d, want 4", got)
	}
	st = sqlast.MustParse("SELECT a FROM t UNION SELECT a FROM u")
	if got := JoinSteps(st); got != 2 {
		t.Fatalf("JoinSteps = %d, want 2", got)
	}
}

func TestSortedTableSizes(t *testing.T) {
	db := fixtureDB(t)
	sizes := db.SortedTableSizes()
	if len(sizes) != 8 {
		t.Fatalf("sizes = %v", sizes)
	}
	if sizes[0] != "A=1" {
		t.Fatalf("first = %q", sizes[0])
	}
}

func TestValueHelpers(t *testing.T) {
	if !NewBool(true).Truth() || NewBool(false).Truth() {
		t.Error("bool truth wrong")
	}
	if Null.Truth() {
		t.Error("NULL should not be true")
	}
	if Null.String() != "NULL" {
		t.Error("NULL rendering")
	}
	if NewBytes([]byte{0xAB}).String() != "X'AB'" {
		t.Error("bytes rendering")
	}
	if NewBool(true).String() != "TRUE" || NewBool(false).String() != "FALSE" {
		t.Error("bool rendering")
	}
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL comparison should be unknown")
	}
	if _, ok := Compare(NewBytes(nil), NewInt(1)); ok {
		t.Error("bytes vs int should be incomparable")
	}
	if c, ok := Compare(NewText("10"), NewInt(9)); !ok || c <= 0 {
		t.Error("numeric coercion of text failed")
	}
	if c, ok := Compare(NewText("b"), NewText("a")); !ok || c <= 0 {
		t.Error("text comparison failed")
	}
	if Equal(NewFloat(2), NewInt(2)) != true {
		t.Error("float/int equality failed")
	}
	v, err := Concat(NewText("a"), NewText("b"))
	if err != nil || v.S != "ab" {
		t.Error("text concat failed")
	}
	v, err = Concat(NewBytes([]byte{1}), NewBytes([]byte{2}))
	if err != nil || len(v.B) != 2 {
		t.Error("bytes concat failed")
	}
	if _, err := Concat(NewBytes(nil), NewInt(1)); err == nil {
		t.Error("bytes||int should fail")
	}
	if v, _ := Concat(Null, NewText("x")); !v.IsNull() {
		t.Error("NULL concat should be NULL")
	}
	if _, err := Arith('/', NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero should fail")
	}
	if v, err := Arith('/', NewInt(7), NewInt(2)); err != nil || v.F != 3.5 {
		t.Errorf("7/2 = %v (%v)", v, err)
	}
	if v, err := Arith('%', NewInt(7), NewInt(2)); err != nil || v.I != 1 {
		t.Errorf("7%%2 = %v (%v)", v, err)
	}
}

func TestEqualResultsHelper(t *testing.T) {
	a := &Result{Rows: [][]Value{{NewInt(1)}, {NewInt(2)}}}
	b := &Result{Rows: [][]Value{{NewInt(1)}, {NewInt(2)}}}
	c := &Result{Rows: [][]Value{{NewInt(2)}, {NewInt(1)}}}
	if !equalResults(a, b) || equalResults(a, c) {
		t.Error("equalResults wrong")
	}
}

func BenchmarkDeweyRangeJoin(b *testing.B) {
	db := NewDB()
	tb, _ := db.CreateTable("n", Column{"id", TInt}, Column{"dewey_pos", TBytes})
	// A two-level tree: 100 parents x 100 children.
	for p := 1; p <= 100; p++ {
		parent := dewey.New(1, p)
		tb.MustInsert(NewInt(int64(p)), NewBytes(parent))
		for c := 1; c <= 100; c++ {
			tb.MustInsert(NewInt(int64(p*1000+c)), NewBytes(parent.Child(c)))
		}
	}
	if _, err := tb.CreateIndex("n_dp", "dewey_pos"); err != nil {
		b.Fatal(err)
	}
	st := sqlast.MustParse("SELECT d.id FROM n p, n d WHERE p.id = 42 AND d.dewey_pos BETWEEN p.dewey_pos AND p.dewey_pos || X'FF' AND d.id <> p.id")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Run(st)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 100 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func ExampleDB_RunSQL() {
	db := NewDB()
	tb, _ := db.CreateTable("t", Column{"id", TInt}, Column{"name", TText})
	tb.MustInsert(NewInt(1), NewText("ppf"))
	res, _ := db.RunSQL("SELECT t.name FROM t WHERE t.id = 1")
	fmt.Println(res.Rows[0][0])
	// Output: ppf
}
