// Negative cases for the errdrop analyzer: handled errors, the
// explicit `_ =` discard idiom, and the conventional exemptions (fmt
// printing, infallible builders).
package ok

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func load() (int, error) { return 0, errors.New("boom") }

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := load()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

func explicitDiscard() {
	_ = fail()
	_, _ = load()
}

func exemptions() string {
	fmt.Println("diagnostics are fine")
	var b strings.Builder
	b.WriteString("infallible")
	return b.String()
}

// Worker-pool idiom: the goroutine body returns nothing; the error is
// captured into a slot inside the wrapper.
func workerPool() error {
	errs := make([]error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		errs[0] = fail()
	}()
	<-done
	return errs[0]
}
