// estimate.go is the sanctioned home for fractional constants: the
// file is excluded from the planner-file rule by name.
package engine

const defaultFilterSelectivity = 0.1

const minSelectivity = 1e-4
