package native

import (
	"reflect"
	"testing"
)

// Comparison-semantics matrix exercising atomic/node-set permutations
// of every operator.
func TestComparisonMatrix(t *testing.T) {
	doc := fig1(t)
	cases := map[string][]int64{
		// atomic vs atomic inside and/or.
		"/A/B[1 < 2]":      {2, 13},
		"/A/B[2 <= 2]":     {2, 13},
		"/A/B[3 > 4]":      {},
		"/A/B[3 >= 4]":     {},
		"/A/B[1 != 2]":     {2, 13},
		"/A/B['x' = 'x']":  {2, 13},
		"/A/B['x' != 'y']": {2, 13},
		// number vs string coercion.
		"/A/B['2' = 2]":    {2, 13},
		"/A/B['abc' = 2]":  {},
		"/A/B['abc' != 2]": {2, 13},
		// node set vs node set with relational ops (numeric).
		// (//E[F < F] checked separately below: existential 2<7 -> true)
		"//E[F > F]":  {7}, // 7>2
		"//E[F != F]": {7},
		// atomic on the left of a node set.
		"//E[3 < F]":   {7},
		"//E[9 < F]":   {},
		"//E[7 <= F]":  {7},
		"//E[2 = F]":   {7},
		"//E['2' = F]": {7},
		// boolean coercion through not().
		"/A/B[not(not(C))]": {2},
		// arithmetic returning NaN filters out.
		"//F[. * 'x' = 1]": {},
	}
	for q, want := range cases {
		got := eval(t, doc, q)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
	// Fix the E[F < F] expectation: existential 2<7 holds.
	if got := eval(t, doc, "//E[F < F]"); !reflect.DeepEqual(got, []int64{7}) {
		t.Errorf("//E[F < F] = %v, want [7] (existential)", got)
	}
}

func TestStringValueOfItems(t *testing.T) {
	doc := fig1(t)
	ev := New(doc)
	items, err := ev.EvalString("/A/B/C/E/F/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].StringValue() != "2" {
		t.Fatalf("text items = %v", items)
	}
	items, err = ev.EvalString("//D")
	if err != nil {
		t.Fatal(err)
	}
	if items[0].StringValue() != "4" {
		t.Fatalf("element string value = %q", items[0].StringValue())
	}
}

func TestCountAndPositionInExpressions(t *testing.T) {
	doc := fig1(t)
	cases := map[string][]int64{
		"//E[count(F) > 1]":        {7},
		"//E[count(F) + 1 = 3]":    {7},
		"//B[count(C) = count(G)]": {13}, // B2 has 0 C, 1 G -> no; B1 has 2 C, 1 G -> no... recompute below
		"//F[position() = last()]": {10},
		"//F[position() < last()]": {8},
		"//F[position() + 1 = 2]":  {8},
	}
	// B1 has C,C,G (2 vs 1), B2 has G (0 vs 1): neither equal; fix:
	cases["//B[count(C) = count(G)]"] = nil
	for q, want := range cases {
		got := eval(t, doc, q)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestUnionInPredicate(t *testing.T) {
	doc := fig1(t)
	if got := eval(t, doc, "/A/B[C | G]"); !reflect.DeepEqual(got, []int64{2, 13}) {
		t.Errorf("union predicate = %v", got)
	}
	if got := eval(t, doc, "//E[F | D]"); !reflect.DeepEqual(got, []int64{7}) {
		t.Errorf("union predicate = %v", got)
	}
}

func TestNodeSetComparedWithBoolean(t *testing.T) {
	doc := fig1(t)
	// not(...) produces a boolean; comparing against numbers coerces.
	if got := eval(t, doc, "/A/B[not(C) = 0]"); !reflect.DeepEqual(got, []int64{2}) {
		t.Errorf("bool coercion = %v", got)
	}
	if got := eval(t, doc, "/A/B[not(C) + 1 = 2]"); !reflect.DeepEqual(got, []int64{13}) {
		t.Errorf("bool arithmetic = %v", got)
	}
}
