// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus a module-aware package loader, sized for this
// repository. It exists because the reproduction's core invariants —
// Dewey positions compared only through the Table 2 comparators, SQL
// assembled only through the sqlast AST, no per-row regexp
// compilation — are invisible to the Go type system and must be
// enforced mechanically (see DESIGN.md, "Enforced invariants").
//
// The framework deliberately mirrors the x/tools API shape so the
// analyzers can be ported to a real multichecker wholesale if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only flags.
	Name string
	// Doc is a one-paragraph description of what is enforced and why.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg         *Package // loader-backed package, for Dep
	diagnostics []Diagnostic
}

// Dep returns the module-internal dependency package whose import
// path is pathSuffix (exact, or a "/"-suffix of a direct import), with
// its AST and type info. The loader type-checked every module-internal
// import from source while checking this package, so the lookup never
// loads anything — it is the cache hit that lets interprocedural
// analyzers (guardedby, walorder) read annotations and compute
// summaries on dependency bodies. Returns nil when the pass was built
// without a loader or the import is absent.
func (p *Pass) Dep(pathSuffix string) *Package {
	if p.pkg == nil || p.pkg.ldr == nil || p.Pkg == nil {
		return nil
	}
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == pathSuffix || strings.HasSuffix(imp.Path(), "/"+pathSuffix) {
			return p.pkg.ldr.loaded(imp.Path())
		}
	}
	return nil
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies the analyzers to a loaded package and returns the
// diagnostics sorted by file position. //xvet:ignore directives are
// honored here, below every analyzer: a well-formed directive
// (analyzer named, reason given) suppresses matching diagnostics on
// its own or the following line; malformed directives are themselves
// reported under the xvetignore name.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkg, analyzers)
	return diags, err
}

// RunTimed is Run, additionally reporting each analyzer's wall time on
// this package (xvet -timing aggregates these across packages so the
// cost of the interprocedural passes stays visible and bounded).
func RunTimed(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]time.Duration, error) {
	badPass := &Pass{
		Analyzer: BadIgnore,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
	}
	var directives []ignoreDirective
	for _, f := range pkg.Files {
		directives = append(directives, parseIgnores(pkg.Fset, f, badPass.Reportf)...)
	}
	out := append([]Diagnostic(nil), badPass.diagnostics...)
	timings := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			pkg:       pkg,
		}
		start := time.Now()
		err := a.Run(pass)
		timings[a.Name] += time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diagnostics {
			if suppressed(pkg.Fset, directives, d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, timings, nil
}

// All returns the full analyzer suite run by cmd/xvet, in reporting
// order.
func All() []*Analyzer {
	return []*Analyzer{RawSQL, DeweyCmp, RegexpLoop, ErrDrop, RecoverGuard, OpStatsMut,
		CtxFlow, LockScope, SQLTaint, HotAlloc, GoLeak, SyncErr, Statflow,
		SnapFreeze, GuardedBy, WALOrder, BadIgnore}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// inspect walks every file of the pass, calling fn with each node and
// the stack of its ancestors (outermost first, excluding n itself).
// Returning false prunes the subtree. It is the shared traversal
// under all analyzers that need lexical context (enclosing loops,
// enclosing function declarations).
func (p *Pass) inspect(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingFuncName returns the name of the innermost enclosing
// function declaration on the stack, or "" (function literals are
// transparent: they report the named function they appear in).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// inLoopBody reports whether the node at the top of the stack is
// inside the body of a for or range statement (lexically; function
// literals inside a loop body count, matching the conservative intent
// of the check).
func inLoopBody(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		switch outer := stack[i-1].(type) {
		case *ast.ForStmt:
			if outer.Body == stack[i] {
				return true
			}
		case *ast.RangeStmt:
			if outer.Body == stack[i] {
				return true
			}
		}
	}
	return false
}

// importedPkg resolves a selector base identifier to the path of the
// package it names, or "".
func (p *Pass) importedPkg(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
