package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sqlast"
)

// Result is the outcome of executing a statement.
type Result struct {
	Cols []string
	Rows [][]Value
}

// execCtx carries execution state shared across a statement run.
type execCtx struct {
	db       *DB
	deadline time.Time
	ticks    int
}

// ErrTimeout is returned when a statement exceeds its deadline.
var ErrTimeout = errors.New("engine: statement timed out")

// checkDeadline is called periodically from the row loop.
func (ec *execCtx) checkDeadline() error {
	if ec.deadline.IsZero() {
		return nil
	}
	ec.ticks++
	if ec.ticks&0x3FF != 0 {
		return nil
	}
	if time.Now().After(ec.deadline) {
		return ErrTimeout
	}
	return nil
}

// pattern returns a compiled matcher for a dynamic REGEXP_LIKE
// pattern (constant patterns are compiled at plan time).
func (ec *execCtx) pattern(pat string) (*matcher, error) { return compilePattern(pat) }

// Run plans and executes a SELECT or UNION statement.
func (db *DB) Run(st sqlast.Statement) (*Result, error) {
	return db.RunWithTimeout(st, 0)
}

// RunWithTimeout is Run with a wall-clock budget; it returns
// ErrTimeout when the budget is exceeded (0 means no limit).
func (db *DB) RunWithTimeout(st sqlast.Statement, timeout time.Duration) (*Result, error) {
	p := &planner{db: db}
	ec := &execCtx{db: db}
	if timeout > 0 {
		ec.deadline = time.Now().Add(timeout)
	}
	switch s := st.(type) {
	case *sqlast.Select:
		plan, err := p.planSelect(s, nil)
		if err != nil {
			return nil, err
		}
		return ec.runTop(plan)
	case *sqlast.Union:
		var out *Result
		seen := map[string]bool{}
		type orderedRow struct {
			row  []Value
			keys []Value
		}
		var rows []orderedRow
		// Resolve union ORDER BY keys to projected column positions.
		var orderPos []int
		var orderDesc []bool
		for _, branch := range s.Selects {
			plan, err := p.planSelect(branch, nil)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = &Result{Cols: plan.colNames}
				for _, k := range s.OrderBy {
					col, ok := k.Expr.(*sqlast.Col)
					if !ok {
						return nil, fmt.Errorf("engine: UNION ORDER BY must reference an output column")
					}
					pos := -1
					for i, name := range plan.colNames {
						if name == col.Column || name == col.String() {
							pos = i
							break
						}
					}
					if pos < 0 {
						return nil, fmt.Errorf("engine: UNION ORDER BY column %q not in output", col)
					}
					orderPos = append(orderPos, pos)
					orderDesc = append(orderDesc, k.Desc)
				}
			} else if len(plan.colNames) != len(out.Cols) {
				return nil, fmt.Errorf("engine: UNION branches project different column counts")
			}
			res, err := ec.runTop(plan)
			if err != nil {
				return nil, err
			}
			for _, r := range res.Rows {
				key := rowKey(r)
				if seen[key] {
					continue
				}
				seen[key] = true
				or := orderedRow{row: r}
				for _, pos := range orderPos {
					or.keys = append(or.keys, r[pos])
				}
				rows = append(rows, or)
			}
		}
		if len(orderPos) > 0 {
			sort.SliceStable(rows, func(i, j int) bool {
				return lessKeys(rows[i].keys, rows[j].keys, orderDesc)
			})
		}
		for _, r := range rows {
			out.Rows = append(out.Rows, r.row)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// RunSQL parses and runs a statement given as text.
func (db *DB) RunSQL(src string) (*Result, error) {
	st, err := sqlast.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.Run(st)
}

// runTop executes a plan as a top-level query: projection, DISTINCT,
// ORDER BY.
func (ec *execCtx) runTop(plan *selectPlan) (*Result, error) {
	out := &Result{Cols: plan.colNames}
	if plan.countStar {
		n := int64(0)
		err := ec.runPlan(plan, env{}, func([]Value) (bool, error) {
			n++
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []Value{NewInt(n)})
		return out, nil
	}
	type orderedRow struct {
		row  []Value
		keys []Value
	}
	var rows []orderedRow
	var seen map[string]bool
	if plan.distinct {
		seen = map[string]bool{}
	}
	e := env{}
	err := ec.runPlanOrdered(plan, e, func(row, keys []Value) (bool, error) {
		if plan.distinct {
			k := rowKey(row)
			if seen[k] {
				return true, nil
			}
			seen[k] = true
		}
		rows = append(rows, orderedRow{row: row, keys: keys})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if len(plan.orderBy) > 0 {
		desc := make([]bool, len(plan.orderBy))
		for i, k := range plan.orderBy {
			desc[i] = k.desc
		}
		sort.SliceStable(rows, func(i, j int) bool {
			return lessKeys(rows[i].keys, rows[j].keys, desc)
		})
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
	}
	return out, nil
}

// rowKey builds a distinct-set key for a projected row.
func rowKey(row []Value) string {
	var buf []byte
	for _, v := range row {
		buf = encodeValue(buf, v)
	}
	return string(buf)
}

// lessKeys compares two ORDER BY key vectors.
func lessKeys(a, b []Value, desc []bool) bool {
	for i := range a {
		cmp, ok := Compare(a[i], b[i])
		if !ok {
			// NULLs (and incomparables) sort first.
			an, bn := a[i].IsNull(), b[i].IsNull()
			if an == bn {
				continue
			}
			cmp = 1
			if an {
				cmp = -1
			}
		}
		if cmp == 0 {
			continue
		}
		if desc[i] {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// runPlan enumerates matching bindings and emits projected rows.
// The emit callback returns false to stop enumeration early.
func (ec *execCtx) runPlan(plan *selectPlan, e env, emit func(row []Value) (bool, error)) error {
	return ec.runPlanOrdered(plan, e, func(row, _ []Value) (bool, error) { return emit(row) })
}

// runPlanOrdered additionally evaluates ORDER BY keys per emitted row.
func (ec *execCtx) runPlanOrdered(plan *selectPlan, e env, emit func(row, keys []Value) (bool, error)) error {
	for _, f := range plan.preFilters {
		v, err := f.eval(ec, e)
		if err != nil {
			return err
		}
		if !v.Truth() {
			return nil
		}
	}
	stop := false
	var rec func(step int) error
	rec = func(step int) error {
		if step == len(plan.steps) {
			var row []Value
			if plan.countStar {
				row = nil
			} else {
				row = make([]Value, len(plan.cols))
				for i, c := range plan.cols {
					v, err := c.eval(ec, e)
					if err != nil {
						return err
					}
					row[i] = v
				}
			}
			var keys []Value
			if len(plan.orderBy) > 0 {
				keys = make([]Value, len(plan.orderBy))
				for i, k := range plan.orderBy {
					v, err := k.x.eval(ec, e)
					if err != nil {
						return err
					}
					keys[i] = v
				}
			}
			cont, err := emit(row, keys)
			if err != nil {
				return err
			}
			if !cont {
				stop = true
			}
			return nil
		}
		s := plan.steps[step]
		tryRow := func(id int64) error {
			if err := ec.checkDeadline(); err != nil {
				return err
			}
			e[s.name] = s.table.Rows[id]
			defer delete(e, s.name)
			for _, f := range s.filters {
				v, err := f.eval(ec, e)
				if err != nil {
					return err
				}
				if !v.Truth() {
					return nil
				}
			}
			return rec(step + 1)
		}
		switch a := s.access.(type) {
		case fullScan:
			for id := range s.table.Rows {
				if err := tryRow(int64(id)); err != nil {
					return err
				}
				if stop {
					return nil
				}
			}
		case *indexEq:
			var key []byte
			for _, kx := range a.keys {
				v, err := kx.eval(ec, e)
				if err != nil {
					return err
				}
				if v.IsNull() {
					return nil
				}
				key = encodeValue(key, v)
			}
			for _, id := range a.ix.Tree.Get(key) {
				if err := tryRow(id); err != nil {
					return err
				}
				if stop {
					return nil
				}
			}
		case *indexPrefixes:
			v, err := a.x.eval(ec, e)
			if err != nil {
				return err
			}
			if v.Kind != KBytes {
				return nil
			}
			for k := 0; k <= len(v.B); k++ {
				// Prefix-match within a possibly composite index: scan the
				// interval covering exactly this first-component value.
				lo := encodeValue(nil, NewBytes(v.B[:k]))
				hi := append(append([]byte(nil), lo...), 0xFF)
				var scanErr error
				a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
					if err := tryRow(id); err != nil {
						scanErr = err
						return false
					}
					return !stop
				})
				if scanErr != nil {
					return scanErr
				}
				if stop {
					return nil
				}
			}
		case *hashEq, *fatHash:
			h, ok := s.access.(*hashEq)
			if !ok {
				h = s.access.(*fatHash).h
			}
			v, err := h.key.eval(ec, e)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			key := string(encodeValue(nil, v))
			for _, id := range s.table.hash(h.col)[key] {
				if err := tryRow(id); err != nil {
					return err
				}
				if stop {
					return nil
				}
			}
		case *indexRange:
			var lo, hi []byte
			if a.lo != nil {
				v, err := a.lo.eval(ec, e)
				if err != nil {
					return err
				}
				if v.IsNull() {
					return nil
				}
				lo = encodeValue(nil, v)
				if a.loStrict {
					lo = append(lo, 0xFF)
				}
			}
			if a.hi != nil {
				v, err := a.hi.eval(ec, e)
				if err != nil {
					return err
				}
				if v.IsNull() {
					return nil
				}
				hi = encodeValue(nil, v)
				if !a.hiStrict {
					hi = append(hi, 0xFF)
				}
			}
			var scanErr error
			a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
				if err := tryRow(id); err != nil {
					scanErr = err
					return false
				}
				return !stop
			})
			if scanErr != nil {
				return scanErr
			}
		default:
			return fmt.Errorf("engine: internal: unknown access path %T", s.access)
		}
		return nil
	}
	return rec(0)
}

// equalResults reports whether two results hold the same multiset of
// rows in the same order; used by tests.
func equalResults(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !bytes.Equal([]byte(rowKey(a.Rows[i])), []byte(rowKey(b.Rows[i]))) {
			return false
		}
	}
	return true
}
