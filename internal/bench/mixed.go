package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/shred"
	"repro/internal/sqlast"
)

// Mixed measures reader latency under a concurrent writer — the
// robustness experiment behind the snapshot-isolation layer (DESIGN.md
// §12), outside the paper's single-threaded scope. A dedicated
// schema-aware store is loaded with one document and the fig3 queries
// are timed three ways: quiet (no writer), while a writer goroutine
// bulk-loads further copies of the document (one WriteBatch commit per
// document), and quiet again on the grown store. The middle column
// isolates writer interference: snapshot-pinned readers never block on
// the writer, so it should sit between the two quiet columns (which
// bracket the pure data-growth effect), not above them.
//
// The per-query budget in Opts is not applied — the runs are the
// already-verified fig3 queries — but Reps and Verify are honored; with
// Verify set, the quiet store's results are checked against the native
// oracle before any timing.
func Mixed(w *Workload, o Opts) (*Table, error) {
	db := engine.NewDB()
	st, err := shred.NewSchemaAwareDB(db, w.Schema)
	if err != nil {
		return nil, err
	}
	if _, err := st.Load(w.Doc); err != nil {
		return nil, err
	}

	tr := w.NewPPFTranslator(nil)
	exec := engine.ExecOptions{
		Parallelism:    w.Parallelism,
		MaxMemoryBytes: w.MaxMemoryBytes,
		MaxRows:        w.MaxRows,
		BatchSize:      w.BatchSize,
	}
	run := func(stmt sqlast.Statement) (*engine.Result, error) {
		return db.RunWithOptions(stmt, exec)
	}
	type bound struct {
		q    Query
		stmt sqlast.Statement
	}
	var qs []bound
	for _, q := range w.Queries {
		x, err := tr.Translate(q.XPath)
		if err != nil {
			return nil, fmt.Errorf("bench: translate %s: %w", q.ID, err)
		}
		if o.Verify {
			res, err := run(x.Stmt)
			if err != nil {
				return nil, err
			}
			got := make([]int64, len(res.Rows))
			for i, r := range res.Rows {
				got[i] = r[0].I
			}
			want, err := w.OracleIDs(q)
			if err != nil {
				return nil, err
			}
			if !equalIDs(got, want) {
				return nil, fmt.Errorf("bench: %s on mixed store: %d ids, oracle has %d (%s)",
					q.ID, len(got), len(want), firstDiff(got, want))
			}
		}
		qs = append(qs, bound{q: q, stmt: x.Stmt})
	}

	reps := o.Reps
	if reps <= 0 {
		reps = 1
	}
	measure := func(label string, b bound) (Measurement, error) {
		m := Measurement{System: System(label), QueryID: b.q.ID, Reps: reps}
		// Warm-up run yields the cardinality at the current doc count.
		res, err := run(b.stmt)
		if err != nil {
			return m, err
		}
		m.Nodes = len(res.Rows)
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := run(b.stmt); err != nil {
				return m, err
			}
			total += time.Since(start)
		}
		m.Avg = total / time.Duration(reps)
		return m, nil
	}

	// Quiet baseline: one document, no writer.
	before := make([]Measurement, len(qs))
	for i, b := range qs {
		if before[i], err = measure("ppf-quiet", b); err != nil {
			return nil, err
		}
	}

	// Contended pass: the writer bulk-loads documents (one atomic
	// commit each) until every query has been timed against it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr error
	var docsLoaded int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := st.Load(w.Doc); err != nil {
				writerErr = err
				return
			}
			docsLoaded++
			// Check stop only after a load: at least one document always
			// commits concurrently, however fast the readers finish.
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	during := make([]Measurement, len(qs))
	var contErr error
	for i, b := range qs {
		if during[i], contErr = measure("ppf-writer", b); contErr != nil {
			break
		}
	}
	close(stop)
	wg.Wait()
	if contErr != nil {
		return nil, contErr
	}
	if writerErr != nil {
		return nil, fmt.Errorf("bench: mixed writer: %w", writerErr)
	}

	// Quiet again on the grown store: with the writer finished, the
	// delta against the contended column is interference, the delta
	// against the first column is data growth.
	after := make([]Measurement, len(qs))
	for i, b := range qs {
		if after[i], err = measure("ppf-quiet-after", b); err != nil {
			return nil, err
		}
	}

	docs := 1 + docsLoaded
	t := &Table{
		Title: fmt.Sprintf("Mixed read/write (%s): fig3 reader latency [seconds], writer bulk-loading documents (%d docs at end)",
			w.Name, docs),
		Headers: []string{"query", "# nodes (1 doc)", "quiet (1 doc)", "with writer",
			fmt.Sprintf("quiet (%d docs)", docs), "interference"},
	}
	for i := range qs {
		o.emit("mixed", w, before[i])
		o.emit("mixed", w, during[i])
		o.emit("mixed", w, after[i])
		// Interference = contended latency over the quiet latency at the
		// larger of the two bracketing doc counts; > 1x means readers
		// were genuinely slowed beyond data growth.
		interference := "-"
		if ref := after[i].Avg; ref > 0 && during[i].Avg > 0 {
			interference = fmt.Sprintf("%.1fx", float64(during[i].Avg)/float64(ref))
		}
		t.Rows = append(t.Rows, []string{
			qs[i].q.ID,
			fmt.Sprint(before[i].Nodes),
			before[i].Cell(),
			during[i].Cell(),
			after[i].Cell(),
			interference,
		})
	}
	return t, nil
}
