// Violation cases: a planner file inventing selectivity fractions and
// mutating synopsis statistics directly.
package engine

import "statflow/internal/synopsis"

func fanout(t *synopsis.Table, c *synopsis.Col) float64 {
	t.AddRow()                      // sanctioned: the synopsis API
	rows := float64(t.Rows()) * 0.1 // want `raw fractional constant 0.1 in planner file joinorder.go`
	if rows < 1 {
		rows = 1 // integer literal: fine
	}
	sel := 1e-4 // want `raw fractional constant 1e-4 in planner file joinorder.go`
	return rows * sel * float64(c.Count) * 4096.0
}
