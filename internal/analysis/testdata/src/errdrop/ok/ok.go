// Negative cases for the errdrop analyzer: handled errors, the
// explicit `_ =` discard idiom, and the conventional exemptions (fmt
// printing, infallible builders).
package ok

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func load() (int, error) { return 0, errors.New("boom") }

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := load()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

func explicitDiscard() {
	_ = fail()
	_, _ = load()
}

func exemptions() string {
	fmt.Println("diagnostics are fine")
	var b strings.Builder
	b.WriteString("infallible")
	return b.String()
}

type file struct{}

func (file) Close() error { return nil }

func (file) Sync() error { return errors.New("boom") }

// Deferred Close is the universal cleanup idiom (syncerr owns the
// cases where its error matters); deferred literals that route the
// error somewhere are the fix for other deferred calls.
func deferredIdioms(f file) error {
	defer f.Close()
	var retErr error
	defer func() {
		if err := f.Sync(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	return retErr
}

// errors.Join handled or returned is fine; only blanking it is not.
func joinedHandled(errs []error) error {
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// Worker-pool idiom: the goroutine body returns nothing; the error is
// captured into a slot inside the wrapper.
func workerPool() error {
	errs := make([]error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		errs[0] = fail()
	}()
	<-done
	return errs[0]
}
