// Negative cases for the rawsql analyzer: statements built through
// the sanctioned internal/sqlast AST and renderer are not flagged,
// and SQL-quoting error messages stay allowed.
package ok

import (
	"fmt"

	"repro/internal/sqlast"
)

func viaAST(table string) string {
	sel := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: sqlast.C("d", "id")}},
		From: []sqlast.TableRef{{Table: table, Alias: "d"}},
	}
	sel.AddConjunct(sqlast.Eq(sqlast.C("d", "id"), sqlast.Int(1)))
	return sqlast.Render(sel)
}

func errorQuotingSQL(q string) error {
	return fmt.Errorf("cannot parse %q as SELECT ... FROM", q)
}
