package engine

import (
	"fmt"

	"repro/internal/sqlast"
)

// Exec executes any statement of the dialect: SELECT/UNION return
// rows (like Run); CREATE TABLE, CREATE INDEX and INSERT mutate the
// database and return a result with a single status column.
func (db *DB) Exec(st sqlast.Statement) (*Result, error) {
	return db.ExecWithOptions(st, ExecOptions{})
}

// ExecWithOptions is Exec with execution options; the options only
// affect SELECT/UNION statements.
func (db *DB) ExecWithOptions(st sqlast.Statement, opts ExecOptions) (*Result, error) {
	switch s := st.(type) {
	case *sqlast.Select, *sqlast.Union, *sqlast.Explain:
		return db.RunWithOptions(st, opts)
	case *sqlast.CreateTable:
		cols := make([]Column, len(s.Cols))
		for i, c := range s.Cols {
			var typ Type
			switch c.Type {
			case "INT":
				typ = TInt
			case "FLOAT":
				typ = TFloat
			case "TEXT":
				typ = TText
			case "BYTES":
				typ = TBytes
			default:
				return nil, fmt.Errorf("engine: unknown column type %q", c.Type)
			}
			cols[i] = Column{Name: c.Name, Type: typ}
		}
		if _, err := db.CreateTable(s.Name, cols...); err != nil {
			return nil, err
		}
		return status(fmt.Sprintf("table %s created", s.Name)), nil
	case *sqlast.CreateIndex:
		t := db.Table(s.Table)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %q", s.Table)
		}
		if _, err := t.CreateIndex(s.Name, s.Cols...); err != nil {
			return nil, err
		}
		return status(fmt.Sprintf("index %s created", s.Name)), nil
	case *sqlast.Insert:
		t := db.Table(s.Table)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %q", s.Table)
		}
		rows := make([][]Value, len(s.Rows))
		for j, exprRow := range s.Rows {
			row := make([]Value, len(exprRow))
			for i, e := range exprRow {
				v, err := literalValue(e)
				if err != nil {
					return nil, err
				}
				// Coerce integer literals into float columns.
				if i < len(t.Cols) && t.Cols[i].Type == TFloat && v.Kind == KInt {
					v = NewFloat(float64(v.I))
				}
				row[i] = v
			}
			rows[j] = row
		}
		// One batch: a multi-row INSERT commits atomically (single WAL
		// record, single published snapshot) or not at all.
		if _, err := t.InsertBatch(rows); err != nil {
			return nil, err
		}
		return status(fmt.Sprintf("%d row(s) inserted", len(s.Rows))), nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// ExecSQL parses and executes one statement of text.
func (db *DB) ExecSQL(src string) (*Result, error) {
	return db.ExecSQLWithOptions(src, ExecOptions{})
}

// ExecSQLWithOptions is ExecSQL with execution options.
func (db *DB) ExecSQLWithOptions(src string, opts ExecOptions) (*Result, error) {
	st, err := sqlast.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.ExecWithOptions(st, opts)
}

func status(msg string) *Result {
	return &Result{Cols: []string{"status"}, Rows: [][]Value{{NewText(msg)}}}
}

// literalValue folds a literal expression (INSERT values are literal
// rows only).
func literalValue(e sqlast.Expr) (Value, error) {
	switch x := e.(type) {
	case *sqlast.IntLit:
		return NewInt(x.Value), nil
	case *sqlast.FloatLit:
		return NewFloat(x.Value), nil
	case *sqlast.StrLit:
		return NewText(x.Value), nil
	case *sqlast.BytesLit:
		return NewBytes(x.Value), nil
	case *sqlast.NullLit:
		return Null, nil
	case *sqlast.Binary:
		// Allow constant concatenation and arithmetic in VALUES.
		l, err := literalValue(x.L)
		if err != nil {
			return Null, err
		}
		r, err := literalValue(x.R)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case sqlast.OpConcat:
			return Concat(l, r)
		case sqlast.OpAdd:
			return Arith('+', l, r)
		case sqlast.OpSub:
			return Arith('-', l, r)
		case sqlast.OpMul:
			return Arith('*', l, r)
		case sqlast.OpDiv:
			return Arith('/', l, r)
		case sqlast.OpMod:
			return Arith('%', l, r)
		}
	}
	return Null, fmt.Errorf("engine: INSERT values must be literals, got %T", e)
}
