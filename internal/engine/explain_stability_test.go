package engine

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
)

// EXPLAIN output is a contract with the plan cache: creating an index
// on a table the statement never touches must not perturb the cached
// plan (byte-identical EXPLAIN, served as a cache hit), while an index
// on a referenced column must invalidate the entry and re-plan onto
// the new access path.
func TestExplainStableUnderUnrelatedIndex(t *testing.T) {
	db := fixtureDB(t)
	st := sqlast.MustParse("SELECT F.id FROM F WHERE F.text = '2'")

	s1, err := db.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s1, "F_text") {
		t.Fatalf("plan uses an index that does not exist yet:\n%s", s1)
	}

	// Index on a table the statement does not reference: the cached
	// plan must survive verbatim and be served from the cache.
	if _, err := db.Table("G").CreateIndex("G_par_extra", "par", "id"); err != nil {
		t.Fatal(err)
	}
	var s2 string
	hits, misses := statsDelta(db, func() {
		s2, err = db.Explain(st)
	})
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatalf("EXPLAIN changed after index on unrelated table:\nbefore:\n%s\nafter:\n%s", s1, s2)
	}
	if hits != 1 || misses != 0 {
		t.Fatalf("unrelated index: hits=%d misses=%d, want 1/0 (cached plan reused)", hits, misses)
	}

	// Index on the referenced table's predicate column: the entry is
	// stale, the statement re-plans, and the new access path shows up.
	if _, err := db.Table("F").CreateIndex("F_text", "text"); err != nil {
		t.Fatal(err)
	}
	var s3 string
	hits, misses = statsDelta(db, func() {
		s3, err = db.Explain(st)
	})
	if err != nil {
		t.Fatal(err)
	}
	if misses != 1 {
		t.Fatalf("index on referenced table: hits=%d misses=%d, want a miss (re-plan)", hits, misses)
	}
	if s3 == s1 {
		t.Fatalf("EXPLAIN unchanged after index on referenced column:\n%s", s3)
	}
	if !strings.Contains(s3, "F_text") {
		t.Fatalf("re-planned statement does not use the new index:\n%s", s3)
	}
}
