package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSnapFreeze(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SnapFreeze, "snapfreeze")
}

func TestWALOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WALOrder, "walorder", "walorder/internal/wal")
}

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GuardedBy, "guardedby", "guardedby/internal/wal")
}
