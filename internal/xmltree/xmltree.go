// Package xmltree provides the in-memory XML document model shared by
// the shredders, the native XPath evaluator and the data generators.
//
// A document is a rooted, ordered, labeled tree. Element nodes carry
// a tag name, attributes and child nodes; text nodes carry character
// data. Every node has a document-global id assigned in document
// (preorder) order, a Dewey position, and a root-to-node path string
// such as "/site/regions/africa/item".
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dewey"
)

// Kind discriminates node kinds. Attributes are modeled as labels on
// element nodes (per the paper's data model), not as tree nodes.
type Kind uint8

const (
	Element Kind = iota
	Text
)

// Node is one node of the document tree.
type Node struct {
	ID       int64
	Kind     Kind
	Name     string // element tag; empty for text nodes
	Value    string // character data for text nodes
	Attrs    []Attr
	Parent   *Node
	Children []*Node
	Pos      dewey.Pos
	Path     string // root-to-node path; text nodes inherit the parent element's path
}

// Attr is one attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// TextContent returns the concatenation of all text-node descendants
// of n in document order (the XPath string value of an element).
func (n *Node) TextContent() string {
	if n.Kind == Text {
		return n.Value
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == Text {
			b.WriteString(m.Value)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// Document is a parsed or generated XML document.
type Document struct {
	Root  *Node
	nodes []*Node // all nodes in document order; index = ID-1
}

// Nodes returns all nodes in document order.
func (d *Document) Nodes() []*Node { return d.nodes }

// NodeByID returns the node with the given id, or nil.
func (d *Document) NodeByID(id int64) *Node {
	if id < 1 || int(id) > len(d.nodes) {
		return nil
	}
	return d.nodes[id-1]
}

// Len returns the number of nodes (elements and texts).
func (d *Document) Len() int { return len(d.nodes) }

// Elements returns the count of element nodes.
func (d *Document) Elements() int {
	n := 0
	for _, nd := range d.nodes {
		if nd.Kind == Element {
			n++
		}
	}
	return n
}

// Builder assembles a document programmatically; the generators in
// internal/xmark and internal/dblp use it. Methods panic on misuse
// (closing more elements than were opened), as builder misuse is a
// programming error in a generator, not an input error.
type Builder struct {
	doc   *Document
	stack []*Node
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{doc: &Document{}}
}

// Start opens an element with the given name and attribute pairs
// (name, value, name, value, ...).
func (b *Builder) Start(name string, attrPairs ...string) *Builder {
	if len(attrPairs)%2 != 0 {
		panic("xmltree: Start requires an even number of attribute arguments")
	}
	n := &Node{Kind: Element, Name: name}
	for i := 0; i < len(attrPairs); i += 2 {
		n.Attrs = append(n.Attrs, Attr{Name: attrPairs[i], Value: attrPairs[i+1]})
	}
	b.attach(n)
	b.stack = append(b.stack, n)
	return b
}

// Text appends a text node under the current element. Empty strings
// are ignored.
func (b *Builder) Text(s string) *Builder {
	if s == "" {
		return b
	}
	if len(b.stack) == 0 {
		panic("xmltree: Text outside any element")
	}
	b.attach(&Node{Kind: Text, Value: s})
	return b
}

// End closes the current element.
func (b *Builder) End() *Builder {
	if len(b.stack) == 0 {
		panic("xmltree: End without matching Start")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Elem is Start+Text+End: a leaf element with text content.
func (b *Builder) Elem(name, text string, attrPairs ...string) *Builder {
	return b.Start(name, attrPairs...).Text(text).End()
}

func (b *Builder) attach(n *Node) {
	n.ID = int64(len(b.doc.nodes) + 1)
	b.doc.nodes = append(b.doc.nodes, n)
	if len(b.stack) == 0 {
		if b.doc.Root != nil {
			panic("xmltree: multiple roots")
		}
		b.doc.Root = n
		n.Pos = dewey.New(1)
		n.Path = "/" + n.Name
		return
	}
	parent := b.stack[len(b.stack)-1]
	n.Parent = parent
	parent.Children = append(parent.Children, n)
	n.Pos = parent.Pos.Child(len(parent.Children))
	if n.Kind == Element {
		n.Path = parent.Path + "/" + n.Name
	} else {
		n.Path = parent.Path
	}
}

// Doc finalizes and returns the document.
func (b *Builder) Doc() (*Document, error) {
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed elements", len(b.stack))
	}
	if b.doc.Root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	return b.doc, nil
}

// Parse reads an XML document from r using the encoding/xml
// tokenizer. Whitespace-only character data between elements is
// dropped; attributes keep their local names.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			pairs := make([]string, 0, len(t.Attr)*2)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				pairs = append(pairs, a.Name.Local, a.Value)
			}
			b.Start(t.Name.Local, pairs...)
			depth++
		case xml.EndElement:
			b.End()
			depth--
		case xml.CharData:
			if depth > 0 {
				if s := string(t); strings.TrimSpace(s) != "" {
					b.Text(s)
				}
			}
		}
	}
	return b.Doc()
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// WriteXML serializes the document back to XML (without declaration),
// used by tests for round-trip checks and by tools for inspection.
func (d *Document) WriteXML(w io.Writer) error {
	var write func(n *Node) error
	write = func(n *Node) error {
		if n.Kind == Text {
			if err := xml.EscapeText(w, []byte(n.Value)); err != nil {
				return err
			}
			return nil
		}
		if _, err := fmt.Fprintf(w, "<%s", n.Name); err != nil {
			return err
		}
		for _, a := range n.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%q", a.Name, a.Value); err != nil {
				return err
			}
		}
		if len(n.Children) == 0 {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := write(c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "</%s>", n.Name)
		return err
	}
	return write(d.Root)
}

// DistinctPaths returns the sorted set of distinct root-to-node paths
// of element nodes — the contents of the paper's 'Paths' relation for
// this document.
func (d *Document) DistinctPaths() []string {
	set := map[string]bool{}
	for _, n := range d.nodes {
		if n.Kind == Element {
			set[n.Path] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DocOrderLess reports whether a precedes b in document order.
func DocOrderLess(a, b *Node) bool { return dewey.Compare(a.Pos, b.Pos) < 0 }

// SortDocOrder sorts nodes in document order and removes duplicates.
func SortDocOrder(nodes []*Node) []*Node {
	sort.Slice(nodes, func(i, j int) bool { return DocOrderLess(nodes[i], nodes[j]) })
	out := nodes[:0]
	var prev *Node
	for _, n := range nodes {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}
