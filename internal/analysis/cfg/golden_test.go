package cfg_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

var update = flag.Bool("update", false, "rewrite the golden CFG/reaching dumps")

// Golden dumps for representative engine functions: the morsel
// worker loop (range + select-free channel draining), the parallel
// collector (branch-heavy with early returns), and the plan cache
// lookup (lock/branch/loop interplay). These pin the block structure
// the dataflow analyzers reason over — a CFG builder regression shows
// up as a readable diff, not a mysterious analyzer miss.
func TestEngineGoldens(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("repro/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"workerLoop", "collectParallel", "get"} {
		fd := findFunc(t, pkg, name)
		g := cfg.New(name, fd.Body)
		reach := cfg.Reaching(g, pkg.Info, paramVars(pkg.Info, fd), fd.Body)
		dump := g.Dump(describeNode(pkg.Fset)) + "\n" + reach.Dump(pkg.Fset)
		compareGolden(t, filepath.Join("testdata", name+".golden"), dump)
	}
}

func findFunc(t *testing.T, pkg *analysis.Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found in %s", name, pkg.Path)
	return nil
}

func paramVars(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, n := range field.Names {
			if v, ok := info.Defs[n].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// describeNode renders a node as its syntax kind plus source line —
// stable under reformatting, precise enough to pin block contents.
func describeNode(fset *token.FileSet) func(ast.Node) string {
	return func(n ast.Node) string {
		kind := strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast.")
		return fmt.Sprintf("%s L%d", kind, fset.Position(n.Pos()).Line)
	}
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s: dump differs from golden (run with -update after verifying)\ngot:\n%s", path, got)
	}
}
