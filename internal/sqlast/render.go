package sqlast

import (
	"fmt"
	"strings"
)

// Render produces the SQL text of a statement. The output parses back
// to an equivalent tree with Parse.
func Render(st Statement) string {
	var b strings.Builder
	renderStatement(&b, st)
	return b.String()
}

func renderStatement(b *strings.Builder, st Statement) {
	switch s := st.(type) {
	case *Select:
		renderSelect(b, s)
		renderOrderBy(b, s.OrderBy)
	case *Union:
		for i, sel := range s.Selects {
			if i > 0 {
				b.WriteString(" UNION ")
			}
			renderSelect(b, sel)
		}
		renderOrderBy(b, s.OrderBy)
	case *Explain:
		b.WriteString("EXPLAIN ")
		if s.Analyze {
			b.WriteString("ANALYZE ")
		}
		renderStatement(b, s.Stmt)
	default:
		panic(fmt.Sprintf("sqlast: unknown statement %T", st))
	}
}

func renderSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(s.Cols) == 0 {
		b.WriteString("NULL")
	}
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(exprString(c.Expr))
		if c.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(c.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && t.Alias != t.Table {
			b.WriteByte(' ')
			b.WriteString(t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(exprString(s.Where))
	}
}

func renderOrderBy(b *strings.Builder, keys []OrderKey) {
	if len(keys) == 0 {
		return
	}
	b.WriteString(" ORDER BY ")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(exprString(k.Expr))
		if k.Desc {
			b.WriteString(" DESC")
		}
	}
}

func (e *Explain) String() string { return Render(e) }

func (c *CreateTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", c.Name)
	for i, col := range c.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", col.Name, col.Type)
	}
	b.WriteString(")")
	return b.String()
}

func (c *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", c.Name, c.Table, strings.Join(c.Cols, ", "))
}

func (ins *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", ins.Table)
	for i, row := range ins.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// precedence levels, low to high, for minimal parenthesization.
func prec(e Expr) int {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpOr:
			return 1
		case OpAnd:
			return 2
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return 3
		case OpAdd, OpSub:
			return 4
		case OpMul, OpDiv, OpMod:
			return 5
		case OpConcat:
			return 6
		}
	case *Not:
		return 2 // binds like AND operand
	case *Between, *IsNull:
		return 3
	}
	return 10
}

func exprString(e Expr) string {
	var b strings.Builder
	renderExprTo(&b, e)
	return b.String()
}

func renderExpr(e Expr) string { return exprString(e) }

func renderExprTo(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Col, *IntLit, *FloatLit, *StrLit, *BytesLit, *NullLit, *CountStar:
		b.WriteString(e.(fmt.Stringer).String())
	case *Binary:
		renderChild(b, x.L, prec(e))
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		renderChild(b, x.R, prec(e)+1) // left-assoc: right child needs strictly higher
	case *Not:
		b.WriteString("NOT ")
		renderChild(b, x.X, prec(e)+1)
	case *Between:
		renderChild(b, x.X, 4)
		b.WriteString(" BETWEEN ")
		renderChild(b, x.Lo, 4)
		b.WriteString(" AND ")
		renderChild(b, x.Hi, 4)
	case *IsNull:
		renderChild(b, x.X, 4)
		if x.Negate {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
	case *Func:
		b.WriteString(x.Name)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExprTo(b, a)
		}
		b.WriteByte(')')
	case *Exists:
		if x.Negate {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		renderSelect(b, x.Select)
		b.WriteByte(')')
	case *Subquery:
		b.WriteByte('(')
		renderSelect(b, x.Select)
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("sqlast: unknown expression %T", e))
	}
}

func renderChild(b *strings.Builder, e Expr, parentPrec int) {
	if prec(e) < parentPrec {
		b.WriteByte('(')
		renderExprTo(b, e)
		b.WriteByte(')')
	} else {
		renderExprTo(b, e)
	}
}
