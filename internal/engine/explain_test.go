package engine

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
)

// TestExplainGolden pins the EXPLAIN rendering of one representative
// query per access-path kind (full scan, index point lookup, Dewey
// descendant range, ancestor prefix probe). The shapes mirror the
// paper's Figure 1 document: the descendant query is the PPF
// Dewey-interval join, the ancestor query its prefix-probe inverse.
func TestExplainGolden(t *testing.T) {
	db := fixtureDB(t)
	cases := []struct {
		name, sql, want string
	}{
		{
			name: "full scan",
			sql:  "SELECT a.id FROM A a",
			want: "scan a: full scan est_rows=1\n" +
				"project: a.id\n",
		},
		{
			name: "index point lookup",
			sql:  "SELECT b.id FROM B b WHERE b.id = 2",
			want: "scan b: index lookup B_pk est_rows=1\n" +
				"filter b: b.id = 2 est_rows=1\n" +
				"project: b.id\n",
		},
		{
			name: "descendant Dewey range",
			sql: "SELECT d.id FROM C c, D d WHERE c.id = 3 AND " +
				"d.dewey_pos BETWEEN c.dewey_pos AND c.dewey_pos || X'FF' ORDER BY d.id",
			want: "scan c: index lookup C_pk est_rows=1\n" +
				"filter c: c.id = 3 est_rows=1\n" +
				"scan d: index range scan (two-sided) D_dp est_rows=1\n" +
				"filter d: d.dewey_pos BETWEEN c.dewey_pos AND c.dewey_pos || X'FF' est_rows=1\n" +
				"project: d.id\n" +
				"sort: d.id\n",
		},
		{
			name: "ancestor prefix probe",
			sql: "SELECT c.id FROM D d, C c WHERE d.id = 4 AND " +
				"d.dewey_pos BETWEEN c.dewey_pos AND c.dewey_pos || X'FF' ORDER BY c.id DESC",
			want: "scan d: index lookup D_pk est_rows=1\n" +
				"filter d: d.id = 4 est_rows=1\n" +
				"scan c: index prefix lookups C_dp est_rows=2\n" +
				"filter c: d.dewey_pos BETWEEN c.dewey_pos AND c.dewey_pos || X'FF' est_rows=2\n" +
				"project: c.id\n" +
				"sort: c.id DESC\n",
		},
		{
			name: "distinct over hash-joinable pair",
			sql:  "SELECT DISTINCT g.id FROM G g, B b WHERE g.par = b.id",
			want: "scan b: full scan est_rows=2\n" +
				"scan g: index lookup G_par est_rows=1\n" +
				"filter g: g.par = b.id est_rows=1\n" +
				"project: g.id\n" +
				"distinct\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := sqlast.Parse(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.Explain(st)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("EXPLAIN %s:\ngot:\n%s\nwant:\n%s", tc.sql, got, tc.want)
			}
		})
	}
}

// TestExplainAnalyzeStats checks that EXPLAIN ANALYZE annotates every
// operator with a stats block and that the numbers reflect the
// execution: index scans record probes, subplans record one loop per
// outer evaluation, dedup reports candidates in vs kept out.
func TestExplainAnalyzeStats(t *testing.T) {
	db, _ := buildPair(t, 7, 300)
	st, err := sqlast.Parse(
		"SELECT DISTINCT a.tag FROM n a WHERE EXISTS " +
			"(SELECT b.id FROM n b WHERE b.par = a.id) ORDER BY a.tag DESC")
	if err != nil {
		t.Fatal(err)
	}
	text, err := db.ExplainAnalyze(st)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for _, line := range lines {
		if strings.HasPrefix(line, "total:") {
			continue
		}
		if !strings.Contains(line, "[loops=") || !strings.Contains(line, "time=") {
			t.Errorf("operator line missing stats block: %q", line)
		}
	}
	for _, want := range []string{
		"scan a: full scan [loops=1 in=0 out=300 ",
		"exists subplan [loops=300 ",
		"distinct [loops=1 in=",
		"sort: a.tag DESC [loops=1 ",
		"total: rows=3 ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	// The correlated subplan probes the n_par index once per outer row.
	probed := false
	for _, line := range lines {
		if strings.Contains(line, "index lookup n_par") && strings.Contains(line, "probes=300") {
			probed = true
		}
	}
	if !probed {
		t.Errorf("expected 300 recorded index probes on the subplan scan:\n%s", text)
	}
}

// TestExplainStatementSurface runs EXPLAIN / EXPLAIN ANALYZE as SQL
// statements: the plan comes back as a one-column result, and nesting
// is rejected at parse time.
func TestExplainStatementSurface(t *testing.T) {
	db := fixtureDB(t)
	res := mustRun(t, db, "EXPLAIN SELECT b.id FROM B b WHERE b.id = 2")
	if len(res.Cols) != 1 || res.Cols[0] != "plan" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].S != "scan b: index lookup B_pk est_rows=1" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustRun(t, db, "EXPLAIN ANALYZE SELECT b.id FROM B b WHERE b.id = 2")
	if got := res.Rows[0][0].S; !strings.Contains(got, "[loops=1 ") {
		t.Fatalf("first analyze line = %q", got)
	}
	if last := res.Rows[len(res.Rows)-1][0].S; !strings.HasPrefix(last, "total: rows=1 ") {
		t.Fatalf("last analyze line = %q", last)
	}
	if _, err := db.RunSQL("EXPLAIN EXPLAIN SELECT b.id FROM B b"); err == nil {
		t.Fatal("nested EXPLAIN did not error")
	}
}

// TestExplainAnalyzeParallelMergesStats executes the same statement
// serially and at Parallelism 8: results must stay byte-identical and
// the merged parallel frame must account for every candidate row.
func TestExplainAnalyzeParallelMergesStats(t *testing.T) {
	db, _ := buildPair(t, 11, 900)
	st, err := sqlast.Parse("SELECT DISTINCT a.tag, a.val FROM n a WHERE a.val >= 2")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := db.RunWithOptions(st, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.RunWithOptions(st, ExecOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("serial %d rows, parallel %d rows", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if serial.Rows[i][j].String() != par.Rows[i][j].String() {
				t.Fatalf("row %d col %d: serial %v parallel %v",
					i, j, serial.Rows[i][j], par.Rows[i][j])
			}
		}
	}
	cs, err := db.compiledFor(st, "")
	if err != nil {
		t.Fatal(err)
	}
	_, frame, err := db.runCompiledFrame(nil, cs, ExecOptions{Parallelism: 8}, "", false)
	if err != nil {
		t.Fatal(err)
	}
	phys := cs.sel.phys
	scan := frame[phys.scans[0].id]
	if scan.RowsOut() != 900 {
		t.Errorf("driving scan rowsOut = %d, want 900", scan.RowsOut())
	}
	dedup := frame[phys.dedup.id]
	if dedup.RowsIn() <= dedup.RowsOut() {
		t.Errorf("dedup in=%d out=%d: expected candidates to exceed kept rows",
			dedup.RowsIn(), dedup.RowsOut())
	}
	if dedup.RowsOut() != int64(len(par.Rows)) {
		t.Errorf("dedup rowsOut = %d, want %d result rows", dedup.RowsOut(), len(par.Rows))
	}
}

// TestParallelDeferredDistinctFirstWins pins the deferred-DISTINCT
// contract: under parallelism the dedup set is applied after morsels
// are merged back into serial order, so the first duplicate in merged
// (= serial) order is the one kept. The query projects a column
// outside the engine's result comparison (id of the kept row) only
// through ordering: with no ORDER BY, output order is first-occurrence
// order and must match serial execution exactly.
func TestParallelDeferredDistinctFirstWins(t *testing.T) {
	db, _ := buildPair(t, 13, 700)
	st, err := sqlast.Parse("SELECT DISTINCT a.tag FROM n a")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := db.RunWithOptions(st, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.RunWithOptions(st, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("serial %d rows, parallel %d rows", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i][0].S != par.Rows[i][0].S {
			t.Fatalf("row %d: serial %q parallel %q — first-in-merged-order must win",
				i, serial.Rows[i][0].S, par.Rows[i][0].S)
		}
	}
	cs, err := db.compiledFor(st, "")
	if err != nil {
		t.Fatal(err)
	}
	_, frame, err := db.runCompiledFrame(nil, cs, ExecOptions{Parallelism: 4}, "", false)
	if err != nil {
		t.Fatal(err)
	}
	dedup := frame[cs.sel.phys.dedup.id]
	if dedup.RowsIn() != 700 {
		t.Errorf("dedup rowsIn = %d, want all 700 candidates", dedup.RowsIn())
	}
	if dedup.RowsOut() != int64(len(serial.Rows)) {
		t.Errorf("dedup rowsOut = %d, want %d", dedup.RowsOut(), len(serial.Rows))
	}
}

// NULL ordering: the engine treats NULL as the smallest value, so
// NULLs come first under ASC and last under DESC — on both sort paths
// (the memcomparable fast path and the generic lessKeys fallback).
// See DESIGN.md §9.

// nullsFirstLast reports whether a result column starts and ends with
// NULL, after asserting the column holds both NULL and non-NULL
// values (otherwise the ordering assertion would be vacuous).
func nullsFirstLast(t *testing.T, res *Result, col int) (first, last bool) {
	t.Helper()
	var sawNull, sawVal bool
	for _, r := range res.Rows {
		if r[col].IsNull() {
			sawNull = true
		} else {
			sawVal = true
		}
	}
	if !sawNull || !sawVal {
		t.Fatalf("need both NULL and non-NULL keys, got rows %v", res.Rows)
	}
	return res.Rows[0][col].IsNull(), res.Rows[len(res.Rows)-1][col].IsNull()
}

// TestOrderByNullsMemcomparable drives the fast sort path (int keys
// with NULLs admit the memcomparable encoding): n.par is NULL exactly
// for root nodes.
func TestOrderByNullsMemcomparable(t *testing.T) {
	db, _ := buildPair(t, 3, 60)
	res := mustRun(t, db, "SELECT a.par FROM n a ORDER BY a.par, a.id")
	if first, last := nullsFirstLast(t, res, 0); !first || last {
		t.Fatalf("ASC: want NULLs first, got rows %v", res.Rows)
	}
	res = mustRun(t, db, "SELECT a.par FROM n a ORDER BY a.par DESC, a.id")
	if first, last := nullsFirstLast(t, res, 0); first || !last {
		t.Fatalf("DESC: want NULLs last, got rows %v", res.Rows)
	}
}

// TestOrderByNullsGeneric forces the generic lessKeys path with a
// float sort key (floats have no memcomparable encoding); NULL
// arithmetic yields NULL, preserving the NULL keys.
func TestOrderByNullsGeneric(t *testing.T) {
	db, _ := buildPair(t, 3, 60)
	res := mustRun(t, db, "SELECT a.par + 0.5 FROM n a ORDER BY a.par + 0.5, a.id")
	if first, last := nullsFirstLast(t, res, 0); !first || last {
		t.Fatalf("ASC float keys: want NULLs first, got rows %v", res.Rows)
	}
	res = mustRun(t, db, "SELECT a.par + 0.5 FROM n a ORDER BY a.par + 0.5 DESC, a.id")
	if first, last := nullsFirstLast(t, res, 0); first || !last {
		t.Fatalf("DESC float keys: want NULLs last, got rows %v", res.Rows)
	}
}

// TestOrderByNullsUnion covers the UNION ordering path, which sorts by
// projected column position.
func TestOrderByNullsUnion(t *testing.T) {
	db := fixtureDB(t)
	// A.par is NULL (document root); C.par is 2.
	res := mustRun(t, db,
		"SELECT c.par AS p FROM C c UNION SELECT a.par AS p FROM A a ORDER BY p")
	if first, last := nullsFirstLast(t, res, 0); !first || last {
		t.Fatalf("ASC: want NULL first, got rows %v", res.Rows)
	}
	res = mustRun(t, db,
		"SELECT c.par AS p FROM C c UNION SELECT a.par AS p FROM A a ORDER BY p DESC")
	if first, last := nullsFirstLast(t, res, 0); first || !last {
		t.Fatalf("DESC: want NULL last, got rows %v", res.Rows)
	}
}

// TestOperatorCount sanity-checks the per-statement operator metric
// used by xbench.
func TestOperatorCount(t *testing.T) {
	db := fixtureDB(t)
	st, err := sqlast.Parse("SELECT b.id FROM B b WHERE b.id = 2")
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.OperatorCount(st)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // scan, filter, project
		t.Fatalf("OperatorCount = %d, want 3", n)
	}
}
