package plancheck

import (
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlast"
)

// Stats summarizes one corpus or matrix sweep.
type Stats struct {
	// Queries is the number of XPath queries attempted.
	Queries int
	// Checked is the number of (query, translator) plans
	// certificate-checked.
	Checked int
	// Skipped counts translations a translator rejected (axis or
	// construct outside its supported subset).
	Skipped int
	// Omissions is the number of Section 4.5 decisions audited.
	Omissions int
}

// corpus workloads are shared between CheckCorpus and CheckMatrix:
// building the stores dominates either sweep's cost.
var (
	corpusOnce sync.Once
	corpusWs   []*bench.Workload
	corpusErr  error
)

func corpusWorkloads() ([]*bench.Workload, error) {
	corpusOnce.Do(func() {
		dblp, err := bench.NewDBLP(0.01, 1)
		if err != nil {
			corpusErr = fmt.Errorf("build dblp workload: %w", err)
			return
		}
		xmark, err := bench.NewXMark(0.01, 1)
		if err != nil {
			corpusErr = fmt.Errorf("build xmark workload: %w", err)
			return
		}
		corpusWs = []*bench.Workload{dblp, xmark}
	})
	return corpusWs, corpusErr
}

// translatorFor pairs a translation function with the database its
// SQL runs on.
type translatorFor struct {
	name      string
	db        *engine.DB
	translate func(string) (sqlast.Statement, error)
}

// translators returns the schema-aware and Edge translator pairs for
// a workload. Omission traces fire only from the schema-aware
// translator; the Edge mapping has no schema to justify omissions.
func translators(w *bench.Workload) []translatorFor {
	ppf := w.NewPPFTranslator(nil)
	edge := core.NewEdge(nil)
	return []translatorFor{
		{name: "schema", db: w.Aware.DB, translate: func(q string) (sqlast.Statement, error) {
			tr, err := ppf.Translate(q)
			if err != nil {
				return nil, err
			}
			return tr.Stmt, nil
		}},
		{name: "edge", db: w.Edge.DB, translate: func(q string) (sqlast.Statement, error) {
			tr, err := edge.Translate(q)
			if err != nil {
				return nil, err
			}
			return tr.Stmt, nil
		}},
	}
}

// checkOne translates one query under one translator and
// certificate-checks the resulting plan, including every Section 4.5
// omission decision the translation took. The caller must have
// installed collectOmissions' hook.
func checkOne(label string, tf translatorFor, query string, om *omissionLog, stats *Stats) []Finding {
	om.reset()
	st, err := tf.translate(query)
	if err != nil {
		stats.Skipped++
		return nil
	}
	var fs []Finding
	fs = append(fs, ValidateOmissions(label, om.take())...)
	stats.Omissions += om.count
	_, cfs := CheckStatement(tf.db, st)
	for i := range cfs {
		cfs[i].Query = label
	}
	stats.Checked++
	return append(fs, cfs...)
}

// omissionLog accumulates omission traces between resets.
type omissionLog struct {
	traces []core.OmissionTrace
	count  int
}

func (l *omissionLog) install() func() {
	core.SetOmissionTrace(func(tr core.OmissionTrace) {
		l.traces = append(l.traces, tr)
	})
	return func() { core.SetOmissionTrace(nil) }
}

func (l *omissionLog) reset() { l.traces = l.traces[:0] }

func (l *omissionLog) take() []core.OmissionTrace {
	l.count += len(l.traces)
	return l.traces
}

// CheckCorpus certificate-checks every fig3 (DBLP Table 7) and
// XPathMark query under both the schema-aware and the Edge
// translator, auditing every Section 4.5 omission decision along the
// way.
func CheckCorpus() ([]Finding, Stats, error) {
	ws, err := corpusWorkloads()
	if err != nil {
		return nil, Stats{}, err
	}
	var findings []Finding
	var stats Stats
	om := &omissionLog{}
	defer om.install()()
	for _, w := range ws {
		tfs := translators(w)
		for _, q := range w.Queries {
			stats.Queries++
			for _, tf := range tfs {
				label := fmt.Sprintf("%s/%s/%s", w.Name, q.ID, tf.name)
				findings = append(findings, checkOne(label, tf, q.XPath, om, &stats)...)
			}
		}
	}
	if stats.Checked == 0 {
		return findings, stats, fmt.Errorf("no plans checked — translation or corpus broken")
	}
	if stats.Omissions == 0 {
		return findings, stats, fmt.Errorf("no omission decisions observed — trace hook broken?")
	}
	return findings, stats, nil
}
