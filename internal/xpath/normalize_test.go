package xpath

import "testing"

func steps(t *testing.T, q string) []*Step {
	t.Helper()
	p, err := ParsePath(q)
	if err != nil {
		t.Fatal(err)
	}
	return p.Steps
}

func TestNormalizeCollapsesAbbreviation(t *testing.T) {
	// '//name' becomes one descendant-axis step.
	main, terminal, err := NormalizeSteps(steps(t, "//keyword"))
	if err != nil {
		t.Fatal(err)
	}
	if terminal != nil {
		t.Fatal("no terminal expected")
	}
	if len(main) != 1 || main[0].Axis != Descendant || main[0].Name != "keyword" {
		t.Fatalf("main = %v", main)
	}
	// Middle '//' collapses too.
	main, _, err = NormalizeSteps(steps(t, "/a//b/c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(main) != 3 || main[1].Axis != Descendant {
		t.Fatalf("main = %v", main)
	}
}

func TestNormalizePreservesPredicates(t *testing.T) {
	main, _, err := NormalizeSteps(steps(t, "//b[c]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(main) != 1 || len(main[0].Predicates) != 1 {
		t.Fatalf("predicates lost: %v", main)
	}
}

func TestNormalizeDoubleSlashBeforeNonChild(t *testing.T) {
	// '//parent::b': the '//' stays as an explicit wildcard
	// descendant-or-self element step.
	main, _, err := NormalizeSteps(steps(t, "//parent::b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(main) != 2 {
		t.Fatalf("main = %v", main)
	}
	if main[0].Axis != DescendantOrSelf || main[0].Test != NameTest || main[0].Name != "" {
		t.Fatalf("first = %+v", main[0])
	}
	if main[1].Axis != Parent {
		t.Fatalf("second = %+v", main[1])
	}
}

func TestNormalizeDropsDot(t *testing.T) {
	main, _, err := NormalizeSteps(steps(t, "/a/./b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(main) != 2 {
		t.Fatalf("'.' not dropped: %v", main)
	}
}

func TestNormalizeTerminalExtraction(t *testing.T) {
	main, terminal, err := NormalizeSteps(steps(t, "/a/b/@id"))
	if err != nil {
		t.Fatal(err)
	}
	if terminal == nil || terminal.Axis != Attribute || terminal.Name != "id" {
		t.Fatalf("terminal = %+v", terminal)
	}
	if len(main) != 2 {
		t.Fatalf("main = %v", main)
	}
	main, terminal, err = NormalizeSteps(steps(t, "/a/b/text()"))
	if err != nil {
		t.Fatal(err)
	}
	if terminal == nil || terminal.Test != TextTest {
		t.Fatalf("terminal = %+v", terminal)
	}
	if len(main) != 2 {
		t.Fatalf("main = %v", main)
	}
}

func TestNormalizeErrors(t *testing.T) {
	for _, q := range []string{
		"/@id",        // attribute-only path
		"/a/@id/b",    // attribute mid-path
		"/a/text()/b", // text() mid-path
		"/a/self::b",  // named self axis
	} {
		if _, _, err := NormalizeSteps(steps(t, q)); err == nil {
			t.Errorf("NormalizeSteps(%q) should fail", q)
		}
	}
}
