package bench

import (
	"testing"
)

// TestPlanQualityTable runs the plan-quality experiment at a tiny
// scale: every row must satisfy the experiment's own assertions (the
// settled q-error bar and the work non-regression), the synopsis
// planner must verify against the heuristic baseline, and at least one
// join-heavy query must actually plan differently — the experiment's
// reason to exist.
func TestPlanQualityTable(t *testing.T) {
	w, err := NewXMark(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := PlanQuality([]*Workload{w}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(w.Queries) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(w.Queries))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Headers) {
			t.Fatalf("ragged row %v", r)
		}
	}
	if !PlanQualityChangedJoinHeavy(tb, "Q2", "Q3", "Q4", "Q6", "Q7", "Q13") {
		t.Errorf("synopsis planning never changed a join-heavy plan:\n%s", tb.String())
	}
}
