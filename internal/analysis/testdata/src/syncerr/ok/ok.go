// Clean idioms for the syncerr analyzer: durability errors checked,
// propagated, or provably irrelevant (read-only handles).
package ok

import (
	"fmt"
	"os"
)

// Read-only open: a discarded Close loses no data.
func readOnlyDeferClose() ([]byte, error) {
	f, err := os.Open("in.dat")
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// The canonical writer: sync checked inline, close error captured by
// a named-error defer closure.
func namedErrorDefer() (err error) {
	f, err := os.Create("out.dat")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := f.WriteString("payload"); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("fsync out.dat: %w", err)
	}
	return nil
}

// Close as the function's result: the error propagates.
func returnClose() error {
	f, err := os.Create("out.dat")
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Cleanup before returning an earlier error: the close error has
// nowhere better to go, blanking it is the sanctioned idiom.
func cleanupOnErrorPath() (*os.File, error) {
	f, err := os.OpenFile("wal.log", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString("frame"); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

// Sync result captured into the function's error slot.
func syncAssigned() error {
	f, err := os.Create("out.dat")
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read-only OpenFile: no write flag, Close may be discarded.
func readOnlyOpenFile() error {
	f, err := os.OpenFile("in.dat", os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
