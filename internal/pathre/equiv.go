package pathre

import (
	"fmt"
	"sort"
	"strings"
)

// equivMaxStates bounds the product-DFA exploration. The translator's
// patterns determinize to a handful of states; the bound exists so a
// pathological input degrades to an error, not a hang.
const equivMaxStates = 50000

// Equivalent reports whether two compiled patterns accept exactly the
// same language under this package's matching semantics (POSIX-style
// unanchored substring matching). When they differ it returns a
// shortest witness string accepted by exactly one of them.
//
// The check determinizes both NFAs lazily and walks the product DFA:
// a state is the ε-closure of live program counters with BOL enabled
// only at position zero; acceptance at a position is the closure with
// EOL enabled containing opMatch; a match reachable mid-string (the
// engine's early return) makes every extension accepted, modeled as a
// universal sink. Bytes are explored per equivalence class computed
// from both programs' consuming instructions, so the walk is
// O(states x classes).
func Equivalent(a, b *Regexp) (bool, string, error) {
	return EquivalentWithin(nil, a, b)
}

// EquivalentWithin is Equivalent restricted to a domain: the two
// patterns must agree on every string the domain pattern accepts
// (strings outside it never occur, so disagreement there is
// irrelevant). A nil domain means all of Σ*. The witness, when
// returned, lies inside the domain.
func EquivalentWithin(domain, a, b *Regexp) (bool, string, error) {
	progs := [][]inst{a.prog, b.prog}
	if domain != nil {
		progs = append(progs, domain.prog)
	}
	alphabet := byteClasses(progs...)
	da := newDFA(a.prog, a.start)
	db := newDFA(b.prog, b.start)
	var dd *dfa
	if domain != nil {
		dd = newDFA(domain.prog, domain.start)
	}

	type triple struct{ a, b, d int }
	type visit struct {
		st     triple
		parent int  // index into trail, -1 for the initial state
		via    byte // byte consumed entering this state
	}
	sa, err := da.stateFor(da.initialSeeds(), true)
	if err != nil {
		return false, "", err
	}
	sb, err := db.stateFor(db.initialSeeds(), true)
	if err != nil {
		return false, "", err
	}
	sd := -1
	if dd != nil {
		if sd, err = dd.stateFor(dd.initialSeeds(), true); err != nil {
			return false, "", err
		}
	}
	trail := []visit{{st: triple{sa, sb, sd}, parent: -1}}
	seen := map[triple]bool{{sa, sb, sd}: true}
	witness := func(i int) string {
		var bytes []byte
		for ; trail[i].parent >= 0; i = trail[i].parent {
			bytes = append(bytes, trail[i].via)
		}
		for l, r := 0, len(bytes)-1; l < r; l, r = l+1, r-1 {
			bytes[l], bytes[r] = bytes[r], bytes[l]
		}
		return string(bytes)
	}
	for i := 0; i < len(trail); i++ {
		cur := trail[i]
		inDomain := dd == nil || dd.states[cur.st.d].accept
		if inDomain && da.states[cur.st.a].accept != db.states[cur.st.b].accept {
			return false, witness(i), nil
		}
		for _, c := range alphabet {
			na, err := da.step(cur.st.a, c)
			if err != nil {
				return false, "", err
			}
			nb, err := db.step(cur.st.b, c)
			if err != nil {
				return false, "", err
			}
			nd := -1
			if dd != nil {
				if nd, err = dd.step(cur.st.d, c); err != nil {
					return false, "", err
				}
			}
			np := triple{na, nb, nd}
			if seen[np] {
				continue
			}
			if len(seen) > equivMaxStates {
				return false, "", fmt.Errorf("pathre: equivalence check exceeded %d product states (%s vs %s)",
					equivMaxStates, a.pattern, b.pattern)
			}
			seen[np] = true
			trail = append(trail, visit{st: np, parent: i, via: c})
		}
	}
	return true, "", nil
}

// dfa is a lazily determinized view of one NFA program.
type dfa struct {
	prog  []inst
	start int
	// states[0] is the universal accept sink (a mid-string match makes
	// every extension accepted).
	states []*dstate
	index  map[string]int
	trans  map[int]map[byte]int
}

type dstate struct {
	// consuming holds the live opChar/opAny/opClass pcs, sorted.
	consuming []int
	// accept: a string ending in this state matches (EOL-enabled
	// closure of the seeds reached opMatch).
	accept bool
	// sticky: the EOL-disabled closure already matched, so the engine
	// returns true regardless of the remaining input.
	sticky bool
}

func newDFA(prog []inst, start int) *dfa {
	d := &dfa{prog: prog, start: start, index: map[string]int{}, trans: map[int]map[byte]int{}}
	d.states = []*dstate{{accept: true, sticky: true}} // the sink
	return d
}

func (d *dfa) initialSeeds() []int { return []int{d.start} }

// stateFor interns the DFA state reached by ε-closing seeds. bol
// enables opBOL transitions (true only for the initial state: the
// engine re-seeds the start pc at every later position with pos > 0).
func (d *dfa) stateFor(seeds []int, bol bool) (int, error) {
	st := d.close(seeds, bol)
	if st.sticky {
		return 0, nil
	}
	key := stateKey(st)
	if id, ok := d.index[key]; ok {
		return id, nil
	}
	if len(d.states) > equivMaxStates {
		return 0, fmt.Errorf("pathre: determinization exceeded %d states", equivMaxStates)
	}
	d.states = append(d.states, st)
	id := len(d.states) - 1
	d.index[key] = id
	return id, nil
}

// step returns the successor state on byte c, memoized.
func (d *dfa) step(id int, c byte) (int, error) {
	if row, ok := d.trans[id]; ok {
		if to, ok := row[c]; ok {
			return to, nil
		}
	}
	var to int
	var err error
	if id == 0 {
		to = 0 // the sink absorbs
	} else {
		st := d.states[id]
		var seeds []int
		for _, pc := range st.consuming {
			in := &d.prog[pc]
			ok := false
			switch in.op {
			case opChar:
				ok = in.c == c
			case opAny:
				ok = true
			case opClass:
				ok = in.class.matches(c)
			}
			if ok {
				seeds = append(seeds, in.x)
			}
		}
		// Unanchored matching: the engine re-adds the start state at
		// every position.
		seeds = append(seeds, d.start)
		to, err = d.stateFor(seeds, false)
		if err != nil {
			return 0, err
		}
	}
	if d.trans[id] == nil {
		d.trans[id] = map[byte]int{}
	}
	d.trans[id][c] = to
	return to, nil
}

// close computes the ε-closure of seeds under two assertion regimes:
// the EOL-disabled walk yields the consuming set (threads parked at $
// cannot advance mid-string) and the sticky flag; a second,
// EOL-enabled walk decides end-of-string acceptance.
func (d *dfa) close(seeds []int, bol bool) *dstate {
	st := &dstate{}
	visited := map[int]bool{}
	var walk func(pc int, eol bool)
	walk = func(pc int, eol bool) {
		if visited[pc] {
			return
		}
		visited[pc] = true
		switch in := &d.prog[pc]; in.op {
		case opJmp:
			walk(in.x, eol)
		case opSplit:
			walk(in.x, eol)
			walk(in.y, eol)
		case opBOL:
			if bol {
				walk(in.x, eol)
			}
		case opEOL:
			if eol {
				walk(in.x, eol)
			}
		case opMatch:
			if eol {
				st.accept = true
			} else {
				st.sticky = true
			}
		default:
			st.consuming = append(st.consuming, pc)
		}
	}
	for _, s := range seeds {
		walk(s, false)
	}
	sort.Ints(st.consuming)
	if st.sticky {
		st.accept = true
		return st
	}
	// EOL-enabled pass for end-of-string acceptance.
	visited = map[int]bool{}
	saveConsuming := st.consuming
	st.consuming = nil
	for _, s := range seeds {
		walk(s, true)
	}
	st.consuming = saveConsuming
	return st
}

func stateKey(st *dstate) string {
	var sb strings.Builder
	if st.accept {
		sb.WriteByte('A')
	}
	for _, pc := range st.consuming {
		fmt.Fprintf(&sb, ",%d", pc)
	}
	return sb.String()
}

// byteClasses partitions the byte alphabet by the consuming
// instructions of both programs: bytes no instruction distinguishes
// behave identically, so one representative per class suffices.
// Representatives prefer printable bytes for readable witnesses.
func byteClasses(progs ...[]inst) []byte {
	type matcher struct {
		op    opcode
		c     byte
		class *class
	}
	var ms []matcher
	for _, prog := range progs {
		for _, in := range prog {
			switch in.op {
			case opChar, opClass:
				ms = append(ms, matcher{op: in.op, c: in.c, class: in.class})
			}
		}
	}
	groups := map[string]byte{}
	var order []string
	for b := 255; b >= 0; b-- {
		c := byte(b)
		var sig strings.Builder
		for _, m := range ms {
			hit := false
			if m.op == opChar {
				hit = m.c == c
			} else {
				hit = m.class.matches(c)
			}
			if hit {
				sig.WriteByte('1')
			} else {
				sig.WriteByte('0')
			}
		}
		key := sig.String()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		// Iterating high to low and overwriting prefers low bytes;
		// printable ASCII beats control bytes and 0x80+.
		prev, had := groups[key]
		if !had || preferable(c, prev) {
			groups[key] = c
		}
	}
	out := make([]byte, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func preferable(c, prev byte) bool {
	cp := c >= 32 && c < 127
	pp := prev >= 32 && prev < 127
	if cp != pp {
		return cp
	}
	return c < prev
}
