package bench

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/failpoint"
	"repro/internal/shred"
)

// The crash-smoke suite (make crash-smoke): kill a persistent store
// at every durability failpoint, recover it, and require the fig3
// workload to run oracle-identical on the recovered database. It
// closes the loop between the robustness layer and the paper's
// experiments: crash recovery is only correct here if the recovered
// relations, indexes, and paths table reproduce the native
// evaluator's answers query for query.

var errKill = errors.New("simulated kill")

// crashWorkload builds a small XMark workload once per test run.
func crashWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewXMark(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// verifyRecovered runs every fig3 query against the recovered
// persistent store through the PPF translator and compares the ids
// with the native oracle.
func verifyRecovered(t *testing.T, w *Workload, db *engine.DB) {
	t.Helper()
	tr := w.NewPPFTranslator(nil)
	checked := 0
	for _, q := range w.Queries {
		want, err := w.OracleIDs(q)
		if err != nil {
			t.Fatalf("oracle %s: %v", q.ID, err)
		}
		x, err := tr.Translate(q.XPath)
		if err != nil {
			t.Fatalf("translate %s: %v", q.ID, err)
		}
		res, err := db.Run(x.Stmt)
		if err != nil {
			t.Fatalf("recovered store %s: %v", q.ID, err)
		}
		got := make([]int64, len(res.Rows))
		for i, r := range res.Rows {
			got[i] = r[0].I
		}
		if !equalIDs(got, want) {
			t.Fatalf("%s on recovered store: %d ids, oracle has %d (first diff: %s)",
				q.ID, len(got), len(want), firstDiff(got, want))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("workload has no queries: the oracle check was vacuous")
	}
}

// TestCrashSmokeEverySite is the kill-and-recover matrix: for each
// durability site, load the document with the site armed to fail
// mid-commit, abandon the handle (the kill), reopen, and verify the
// full fig3 run against the oracle. If the kill aborted the only
// load, the document is loaded again after recovery first — exactly
// the retry a crashed loader performs.
func TestCrashSmokeEverySite(t *testing.T) {
	w := crashWorkload(t)
	rootRel := shred.RelName(w.Schema.Roots()[0].Name)
	for _, site := range []string{"wal/append", "wal/fsync", "wal/checkpoint", "engine/recovery-replay"} {
		t.Run(site, func(t *testing.T) {
			defer failpoint.Reset()
			dir := t.TempDir()
			db, err := engine.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			st, err := shred.NewSchemaAwareDB(db, w.Schema)
			if err != nil {
				t.Fatal(err)
			}

			switch site {
			case "wal/append", "wal/fsync":
				// Kill mid-load: the document commit dies at the site.
				if err := failpoint.Enable(site, failpoint.Return(errKill)); err != nil {
					t.Fatal(err)
				}
				if _, err := st.Load(w.Doc); !errors.Is(err, errKill) {
					t.Fatalf("load at armed %s: err = %v, want kill", site, err)
				}
			case "wal/checkpoint":
				// Kill mid-checkpoint, after a successful load.
				if _, err := st.Load(w.Doc); err != nil {
					t.Fatal(err)
				}
				if err := failpoint.Enable(site, failpoint.Return(errKill)); err != nil {
					t.Fatal(err)
				}
				if err := db.Checkpoint(); !errors.Is(err, errKill) {
					t.Fatalf("checkpoint at armed site: err = %v, want kill", err)
				}
			case "engine/recovery-replay":
				// Kill during the recovery of a crashed store.
				if _, err := st.Load(w.Doc); err != nil {
					t.Fatal(err)
				}
				if err := failpoint.Enable(site, failpoint.Return(errKill)); err != nil {
					t.Fatal(err)
				}
				if _, err := engine.Open(dir); !errors.Is(err, errKill) {
					t.Fatalf("recovery at armed site: err = %v, want kill", err)
				}
			}
			failpoint.Reset()

			// Recover (abandoning db without Close) and re-attach.
			re, err := engine.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			rst, err := shred.NewSchemaAwareDB(re, w.Schema)
			if err != nil {
				t.Fatal(err)
			}
			// Number of recovered documents = rows of the root relation.
			docs := 0
			if rt := re.Table(rootRel); rt != nil {
				docs = rt.Stats().Rows
			}
			switch docs {
			case 0:
				// The kill aborted the load atomically; retry it.
				if _, err := rst.Load(w.Doc); err != nil {
					t.Fatalf("reload after recovery: %v", err)
				}
			case 1:
				// Fully committed (or an unacknowledged-but-durable
				// wal/fsync commit): the whole document must be present,
				// which verifyRecovered proves against the oracle.
			default:
				t.Fatalf("recovered %d documents from single-document history", docs)
			}
			verifyRecovered(t, w, re)
		})
	}
}

// TestCrashSmokeTornTail simulates a kill mid-write at the file
// level: the WAL loses its final bytes (a torn frame), and recovery
// must fall back to the longest valid prefix — here, zero documents —
// then accept a clean reload that runs oracle-identical.
func TestCrashSmokeTornTail(t *testing.T) {
	w := crashWorkload(t)
	dir := t.TempDir()
	db, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := shred.NewSchemaAwareDB(db, w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(w.Doc); err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: chop bytes off the WAL tail.
	if err := chopTail(dir+"/wal.log", 3); err != nil {
		t.Fatal(err)
	}
	re, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rst, err := shred.NewSchemaAwareDB(re, w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// The torn frame held the document's single atomic commit (or its
	// tail); whatever survived must still be a loadable store.
	if rt := re.Table(shred.RelName(w.Schema.Roots()[0].Name)); rt == nil || rt.Stats().Rows == 0 {
		if _, err := rst.Load(w.Doc); err != nil {
			t.Fatalf("reload after torn tail: %v", err)
		}
	}
	verifyRecovered(t, w, re)
}

// TestConcurrentLoadAndFig3Queries is the mixed read/write -race
// regression: one writer bulk-loads documents into the store while
// readers run the fig3 queries. Every reader result must correspond
// to a whole number of committed documents — per-document result
// cardinality is constant, so any torn snapshot shows up as a
// non-multiple count.
func TestConcurrentLoadAndFig3Queries(t *testing.T) {
	w := crashWorkload(t)
	db := engine.NewDB()
	st, err := shred.NewSchemaAwareDB(db, w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(w.Doc); err != nil {
		t.Fatal(err)
	}
	tr := w.NewPPFTranslator(nil)
	// Sequential baseline: the exact result cardinality of every query
	// at each document count 1..totalDocs. A concurrent reader pins one
	// snapshot per statement, so it must observe exactly one of these
	// cardinalities — anything else is a torn document commit. (Counts
	// are not simply perDoc*k: following-axis queries can reach across
	// documents, so each count is measured, not extrapolated.)
	const totalDocs = 7
	type cq struct {
		q    Query
		want map[int]bool // legal cardinalities, by value
		alln []int        // cardinality at k docs (index k-1)
	}
	var cqs []cq
	{
		base := engine.NewDB()
		bst, err := shred.NewSchemaAwareDB(base, w.Schema)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([][]int, len(w.Queries))
		for k := 1; k <= totalDocs; k++ {
			if _, err := bst.Load(w.Doc); err != nil {
				t.Fatal(err)
			}
			for i, q := range w.Queries {
				x, err := tr.Translate(q.XPath)
				if err != nil {
					t.Fatal(err)
				}
				res, err := base.Run(x.Stmt)
				if err != nil {
					t.Fatal(err)
				}
				counts[i] = append(counts[i], len(res.Rows))
			}
		}
		for i, q := range w.Queries {
			if counts[i][0] == 0 {
				continue // empty even at 1 doc: invariant is vacuous
			}
			want := map[int]bool{}
			for _, n := range counts[i] {
				want[n] = true
			}
			cqs = append(cqs, cq{q: q, want: want, alln: counts[i]})
		}
	}
	if len(cqs) == 0 {
		t.Fatal("no fig3 query returns rows: invariant test is vacuous")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < 6; i++ {
			if _, err := st.Load(w.Doc); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				c := cqs[r%len(cqs)]
				stmt, err := tr.Translate(c.q.XPath)
				if err != nil {
					errs <- err
					return
				}
				res, err := db.Run(stmt.Stmt)
				if err != nil {
					errs <- err
					return
				}
				if !c.want[len(res.Rows)] {
					errs <- fmt.Errorf("%s: %d rows matches no whole-document count %v: torn document snapshot",
						c.q.ID, len(res.Rows), c.alln)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state: totalDocs documents, every query at its measured
	// totalDocs cardinality.
	for _, c := range cqs {
		x, err := tr.Translate(c.q.XPath)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Run(x.Stmt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != c.alln[totalDocs-1] {
			t.Errorf("%s final rows = %d, want %d", c.q.ID, len(res.Rows), c.alln[totalDocs-1])
		}
	}
}

// chopTail removes the last n bytes of the file at path.
func chopTail(path string, n int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() < n {
		n = st.Size()
	}
	return os.Truncate(path, st.Size()-n)
}
