package accel

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/native"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func setup(t testing.TB) (*Translator, *shred.AccelStore, *native.Evaluator, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(
		`<A x="3"><B><C><D x="4">4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := shred.NewAccel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	return New(), st, native.New(doc), doc
}

func check(t *testing.T, tr *Translator, st *shred.AccelStore, ev *native.Evaluator, q string) {
	t.Helper()
	trans, err := tr.Translate(q)
	if err != nil {
		t.Fatalf("Translate(%q): %v", q, err)
	}
	res, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatalf("Run(%q = %s): %v", q, trans.SQL, err)
	}
	got := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		got = append(got, r[0].I)
	}
	items, err := ev.EvalString(q)
	if err != nil {
		t.Fatalf("oracle(%q): %v", q, err)
	}
	seen := map[int64]bool{}
	want := []int64{}
	for _, it := range items {
		id := it.Node.ID
		if !it.IsAttr() && it.Node.Kind == xmltree.Text {
			id = it.Node.Parent.ID
		}
		if !seen[id] {
			seen[id] = true
			want = append(want, id)
		}
	}
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\n got %v\nwant %v\nSQL: %s", q, got, want, trans.SQL)
	}
}

func TestAccelEndToEnd(t *testing.T) {
	tr, st, ev, _ := setup(t)
	queries := []string{
		"/A",
		"/A/B",
		"/A/B/C",
		"//F",
		"/A//F",
		"//G//G",
		"/A/*",
		"/A/B/*",
		"//C/*/F",
		"/descendant-or-self::G",
		"/A[@x=3]/B/C//F",
		"/A[@x=4]/B",
		"/A[@x]/B",
		"//F[. = 2]",
		"//F[text() = 2]",
		"/A/B[C/E/F=2]",
		"/A/B[C]",
		"/A/B[not(C)]",
		"/A/B[C and G]",
		"/A/B[C or G]",
		"//F/parent::E",
		"//F/ancestor::B",
		"//F/parent::E/ancestor::B",
		"//F/ancestor-or-self::F",
		"//G/ancestor::G",
		"/A/B/C/following-sibling::G",
		"//G/preceding-sibling::C",
		"//D/following::F",
		"//F/preceding::D",
		"//F[parent::E]",
		"//F[parent::E or ancestor::G]",
		"/A/B[C/*]",
		"/A/B/C/D/text()",
		"/A/@x",
		"//D[@x]",
		"//D[@x='4']",
		"/A/B/C[2]",
		"/A/B/C[position()=1]",
		"//E[F = F]",
		"//D[. != /A/B/C/E/F]",
		"/A/B/C | /A/B/G",
		"//*[@x]",
		"//*",
	}
	for _, q := range queries {
		check(t, tr, st, ev, q)
	}
}

func TestOneJoinPerStep(t *testing.T) {
	tr, _, _, _ := setup(t)
	// The accelerator joins once per location step — the behaviour the
	// PPF technique avoids.
	trans, err := tr.Translate("/A/B/C/E/F")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Joins != 5 {
		t.Errorf("joins = %d, want 5 (one per step): %s", trans.Joins, trans.SQL)
	}
	if got := strings.Count(trans.SQL, "accel"); got != 5 {
		t.Errorf("accel occurrences = %d: %s", got, trans.SQL)
	}
}

func TestDescendantWindowIsStakedOut(t *testing.T) {
	tr, _, _, _ := setup(t)
	trans, err := tr.Translate("/A//F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "BETWEEN v1.pre + 1 AND v1.pre + v1.size") {
		t.Errorf("expected two-sided descendant window: %s", trans.SQL)
	}
}

func TestAccelErrors(t *testing.T) {
	tr, _, _, _ := setup(t)
	for _, q := range []string{
		"//F[last()]",
		"//F[count(x) = 1]",
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("Translate(%q) should fail", q)
		}
	}
}
