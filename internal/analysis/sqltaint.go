package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
)

// SQLTaint is the dataflow successor to the syntactic RawSQL check.
// RawSQL pattern-matches SQL-looking literals near fmt calls; SQLTaint
// instead tracks where query strings come from: any string reaching a
// query-execution sink (sqlast.Parse, DB.RunSQL/ExecSQL*/Prepare) must
// be derived from sqlast rendering — a constant, the output of
// sqlast.Render, or a parameter (the caller's responsibility, checked
// at the caller's own sinks) — tracked through locals and sanctioned
// passthroughs. Concatenation launders nothing: splicing any fragment
// onto rendered SQL yields a tainted string.
var SQLTaint = &Analyzer{
	Name: "sqltaint",
	Doc: "strings reaching query execution (sqlast.Parse, DB.RunSQL/ExecSQL*/Prepare) must " +
		"derive from sqlast rendering or arrive as parameters; concatenation and fmt " +
		"formatting taint, tracked through locals via dataflow",
	Run: runSQLTaint,
}

// sqlSinkMethods are the DB/Store methods whose first string argument
// is executed as SQL.
var sqlSinkMethods = map[string]bool{
	"RunSQL": true, "ExecSQL": true, "ExecSQLWithOptions": true, "Prepare": true,
}

func runSQLTaint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSQLTaintFunc(pass, fd.Name.Name, fd.Type, fd.Body)
			// Function literals at any depth are separate scopes with
			// their own parameter boundary (each scope's walk stops at
			// nested literals, so no site is checked twice).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkSQLTaintFunc(pass, fd.Name.Name+".func", fl.Type, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkSQLTaintFunc(pass *Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt) {
	// Fast pre-filter: no sink call, no dataflow needed.
	if !containsSQLSink(pass, body) {
		return
	}
	g := cfg.New(name, body)
	params := stringParams(pass, ftype)
	reach := cfg.Reaching(g, pass.TypesInfo, params, body)
	seed := map[*types.Var]cfg.Value{}
	for _, p := range params {
		// Parameter boundary: the caller is responsible for what it
		// passes (its own sinks are checked in its own function).
		seed[p] = cfg.Yes
	}
	taint := cfg.SolveTaint(g, pass.TypesInfo, seed, reach, func(e ast.Expr, eval func(ast.Expr) cfg.Value) cfg.Value {
		return classifySQLExpr(pass, e, eval)
	})

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // checked as its own scope; not pushed (no closing nil call)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if arg := sqlSinkArg(pass, call); arg != nil {
				stmt, blk := g.BlockOfStack(append(stack[:len(stack):len(stack)], call))
				if blk != nil && taint.EvalAt(stmt, arg) != cfg.Yes {
					pass.Reportf(arg.Pos(),
						"SQL text reaching %s is not derived from sqlast rendering; build the "+
							"statement as a sqlast tree and Render it",
						exprText(pass.Fset, call.Fun))
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// classifySQLExpr assigns lattice values: Yes for sanctioned SQL
// sources, No for everything that taints, Bottom to defer to the
// variable environment.
func classifySQLExpr(pass *Pass, e ast.Expr, eval func(ast.Expr) cfg.Value) cfg.Value {
	// Constants (including concatenations folded by the type checker)
	// are audit-visible in the source: clean.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return cfg.Yes
	}
	switch x := e.(type) {
	case *ast.Ident:
		return cfg.Bottom // resolved via the environment
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			pkg := pass.importedPkg(sel.X)
			// The sanctioned emitter.
			if strings.HasSuffix(pkg, "internal/sqlast") && (sel.Sel.Name == "Render") {
				return cfg.Yes
			}
			// Whitespace-only passthroughs preserve derivation.
			if pkg == "strings" && (sel.Sel.Name == "TrimSpace" || sel.Sel.Name == "TrimRight" ||
				sel.Sel.Name == "TrimLeft" || sel.Sel.Name == "TrimSuffix" || sel.Sel.Name == "TrimPrefix") {
				if len(x.Args) > 0 {
					return eval(x.Args[0])
				}
			}
			// A String() call on a sqlast node renders through render.go.
			if sel.Sel.Name == "String" {
				if recv := receiverNamedPkg(pass, sel.X); strings.HasSuffix(recv, "internal/sqlast") {
					return cfg.Yes
				}
			}
		}
		return cfg.No // unknown call results taint
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			// Non-constant concatenation splices fragments: tainted
			// regardless of operand provenance.
			return cfg.No
		}
	}
	return cfg.Bottom
}

// sqlSinkArg returns the SQL-text argument of a sink call, or nil.
func sqlSinkArg(pass *Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	// sqlast.Parse(src)
	if strings.HasSuffix(pass.importedPkg(sel.X), "internal/sqlast") && sel.Sel.Name == "Parse" {
		return call.Args[0]
	}
	// (DB or Store).RunSQL/ExecSQL*/Prepare(src, ...)
	if !sqlSinkMethods[sel.Sel.Name] {
		return nil
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	recv := receiverNamedPath(selection.Recv())
	if strings.HasSuffix(recv, "internal/engine") || strings.HasSuffix(recv, "xrel") {
		if isStringExpr(pass, call.Args[0]) {
			return call.Args[0]
		}
	}
	return nil
}

func containsSQLSink(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are their own scope
		}
		if call, ok := n.(*ast.CallExpr); ok && sqlSinkArg(pass, call) != nil {
			found = true
		}
		return true
	})
	return found
}

// stringParams returns the string-typed parameters of a function
// type: the taint boundary (callers answer for what they pass).
func stringParams(pass *Pass, ftype *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				out = append(out, v)
			}
		}
	}
	return out
}

// receiverNamedPkg resolves the package path of an expression's named
// type, or "".
func receiverNamedPkg(pass *Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return receiverNamedPath(tv.Type)
}

func receiverNamedPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
