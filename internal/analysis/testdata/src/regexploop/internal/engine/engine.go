// Engine-rule cases for the regexploop analyzer: inside a package
// whose path ends in internal/engine, compilePattern is the only
// sanctioned compilation site even outside loops.
package engine

import "regexp"

var cache = map[string]*regexp.Regexp{}

// compilePattern mirrors the real engine's sanctioned site.
func compilePattern(pat string) (*regexp.Regexp, error) {
	if re, ok := cache[pat]; ok {
		return re, nil
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, err
	}
	cache[pat] = re
	return re, nil
}

func perRowBypass(pat, row string) bool {
	re, err := regexp.Compile(pat) // want `regexp.Compile in internal/engine outside compilePattern`
	if err != nil {
		return false
	}
	return re.MatchString(row)
}
