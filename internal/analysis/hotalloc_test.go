package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotAlloc, "hotalloc/internal/engine")
}

// The real engine's row paths (joinorder's cardinality probes,
// eval's predicate closures, parallel's worker fan-out) use static
// dispatch or launch-site closures and must stay clean.
func TestHotAllocClean(t *testing.T) {
	expectClean(t, analysis.HotAlloc, "repro/internal/engine")
}
