package engine

// The vectorize pass runs once per compiled statement, after
// lowering and before the plan is published to the plan cache. It
// detects, per join step, the leading run of residual filters the
// executor can evaluate as one batched pass over the whole row-id
// batch: REGEXP_LIKE over a column of the step's own table with a
// constant (plan-time-compiled) pattern — exactly the path-pattern
// filters the PPF translation emits against the paths relation.
// Detection stores derived metadata only (joinStep.vec); the filter
// list itself is untouched, so plan certificates, EXPLAIN, and the
// plan shape all see the unchanged predicate multiset.

// vecFilter is one vectorizable REGEXP_LIKE conjunct: the source
// column position in the step's table and its compiled matcher.
type vecFilter struct {
	pos int
	m   *matcher
}

// vectorizeStmt walks every plan in the statement, including
// correlated subplans and union branches.
func vectorizeStmt(cs *compiledStmt) {
	if cs.sel != nil {
		vectorizeSelect(cs.sel)
		return
	}
	for _, b := range cs.union.branches {
		vectorizeSelect(b)
	}
}

func vectorizeSelect(p *selectPlan) {
	for _, s := range p.steps {
		for _, f := range s.filters {
			cf, ok := f.(*cfunc)
			if !ok || cf.name != "REGEXP_LIKE" || cf.re == nil {
				break
			}
			col, ok := cf.args[0].(*ccol)
			if !ok || col.table != s.name {
				break
			}
			s.vec = append(s.vec, vecFilter{pos: col.pos, m: cf.re})
		}
	}
	for _, n := range p.phys.ops {
		for _, ref := range n.sub {
			vectorizeSelect(ref.plan)
		}
	}
}
