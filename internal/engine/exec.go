package engine

import (
	"bytes"
	"context"
	"errors"
	"time"

	"repro/internal/failpoint"
	"repro/internal/sqlast"
)

// Result is the outcome of executing a statement.
type Result struct {
	Cols []string
	Rows [][]Value
	// PeakMemBytes is the statement's peak accounted memory: the
	// high-water mark of materialized result rows, ORDER BY keys,
	// DISTINCT sets, per-morsel buffers and exec-time hash builds
	// (see the resource governor in govern.go).
	PeakMemBytes int64
}

// ExecOptions tune the execution of a single statement.
type ExecOptions struct {
	// Parallelism is the maximum number of worker goroutines the
	// morsel executor may use for the driving table of a top-level
	// SELECT. Values <= 1 select the serial executor. Nested
	// (correlated) subplans always run serially within the worker
	// that binds their outer row.
	Parallelism int
	// Timeout is a wall-clock budget; ErrTimeout reports an exceeded
	// budget (0 means no limit).
	Timeout time.Duration
	// MaxMemoryBytes bounds the bytes the statement may materialize
	// (result rows, ORDER BY keys, DISTINCT sets, per-morsel output
	// buffers, exec-time hash-join builds); ErrMemoryBudget reports
	// an overrun (0 means no limit).
	MaxMemoryBytes int64
	// MaxRows bounds the result rows the statement may materialize;
	// ErrRowBudget reports an overrun (0 means no limit). COUNT(*)
	// aggregation counts without materializing and is not bounded.
	MaxRows int64
	// VerifyPlan runs the installed plan verifier (SetPlanVerifier)
	// against the compiled plan before executing — a debug check that
	// the plan the cache hands back is still provably equivalent to
	// the statement. Execution fails when the verifier rejects the
	// plan. A no-op when no verifier is installed.
	VerifyPlan bool
	// BatchSize is the row-id batch capacity at operator boundaries
	// (values <= 0 select DefaultBatchSize). Results, operator stats
	// and EXPLAIN ANALYZE output are identical at every batch size;
	// BatchSize=1 degenerates to row-at-a-time execution and exists
	// for debugging and the invariance tests.
	BatchSize int
}

// execCtx carries execution state shared across a statement run. Each
// parallel worker gets its own execCtx so the deadline tick counter
// stays unshared; the accountant and context are shared across
// workers.
type execCtx struct {
	db          *DB
	ctx         context.Context // nil when the statement has no context
	deadline    time.Time
	ticks       int
	parallelism int
	acct        *accountant
	sql         string // rendered statement text, for InternalError
	// stats is this execution's operator stats frame (one slot per
	// opNode id). Parallel workers carry private frames merged into
	// the parent's after the workers join, so slots are single-writer.
	stats opFrame
	// cur is the operator whose expressions are currently being
	// evaluated; pattern-cache hits are attributed to it.
	cur *OpStats
	// timing enables per-operator wall-clock measurement (EXPLAIN
	// ANALYZE); plain runs never read the clock per operator.
	timing bool
	// batch is the resolved row-id batch capacity (ExecOptions.
	// BatchSize or DefaultBatchSize); free/freeOne pool the per-step
	// batch scratches (batch.go). Scratches are execCtx-local: every
	// parallel worker has a private execCtx.
	batch   int
	free    []*batchScratch
	freeOne []*batchScratch
}

// op returns the stats slot of an operator node in this execution's
// frame.
func (ec *execCtx) op(n *opNode) *OpStats { return &ec.stats[n.id] }

// ErrTimeout is returned when a statement exceeds its deadline.
var ErrTimeout = errors.New("engine: statement timed out")

// checkNow checks cancellation and the deadline unconditionally.
// Phase boundaries (after a hash-join build, before fan-out) call it
// directly so a deadline that expired during a long build is
// observed before the next phase starts, regardless of the tick
// counter's position.
func (ec *execCtx) checkNow() error {
	if ec.ctx != nil {
		select {
		case <-ec.ctx.Done():
			return ec.ctx.Err()
		default:
		}
	}
	if !ec.deadline.IsZero() && time.Now().After(ec.deadline) {
		return ErrTimeout
	}
	return nil
}

// pattern returns a compiled matcher for a dynamic REGEXP_LIKE
// pattern (constant patterns are compiled at plan time), attributing
// cache hits to the operator currently evaluating expressions.
func (ec *execCtx) pattern(pat string) (*matcher, error) {
	if m := lookupPattern(pat); m != nil {
		if ec.cur != nil {
			ec.cur.patternHit()
		}
		return m, nil
	}
	return compilePattern(pat)
}

// Run plans and executes a SELECT or UNION statement.
func (db *DB) Run(st sqlast.Statement) (*Result, error) {
	return db.RunWithOptions(st, ExecOptions{})
}

// RunWithTimeout is Run with a wall-clock budget; it returns
// ErrTimeout when the budget is exceeded (0 means no limit).
func (db *DB) RunWithTimeout(st sqlast.Statement, timeout time.Duration) (*Result, error) {
	return db.RunWithOptions(st, ExecOptions{Timeout: timeout})
}

// RunWithOptions plans (through the prepared-plan cache) and executes
// a SELECT or UNION statement with the given options.
func (db *DB) RunWithOptions(st sqlast.Statement, opts ExecOptions) (*Result, error) {
	return db.RunWithOptionsContext(nil, st, opts)
}

// RunContext is Run honoring cancellation: execution stops with
// ctx.Err() soon after ctx is cancelled or its deadline passes.
func (db *DB) RunContext(ctx context.Context, st sqlast.Statement) (*Result, error) {
	return db.RunWithOptionsContext(ctx, st, ExecOptions{})
}

// RunWithOptionsContext plans (through the prepared-plan cache) and
// executes a SELECT or UNION statement with the given options,
// honoring ctx cancellation (nil means no context). It is the
// statement boundary: an internal panic anywhere in planning or
// execution returns as *InternalError instead of propagating.
func (db *DB) RunWithOptionsContext(ctx context.Context, st sqlast.Statement, opts ExecOptions) (res *Result, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	if ex, ok := st.(*sqlast.Explain); ok {
		return db.runExplainStmt(ctx, ex, opts)
	}
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return nil, err
	}
	if opts.VerifyPlan {
		if err := verifyCompiled(st, key, cs); err != nil {
			return nil, err
		}
	}
	return db.runCompiled(ctx, cs, opts, key)
}

// runCompiled executes an already-compiled statement. Callers must
// have deferred guardPanics; sql is the rendered statement text
// carried into worker-side InternalErrors.
func (db *DB) runCompiled(ctx context.Context, cs *compiledStmt, opts ExecOptions, sql string) (*Result, error) {
	res, _, err := db.runCompiledFrame(ctx, cs, opts, sql, false)
	return res, err
}

// runCompiledFrame is runCompiled exposing the execution's operator
// stats frame (merged across workers). timing enables per-operator
// wall-clock measurement; EXPLAIN ANALYZE is its only caller with
// timing on, so plain runs stay clock-free in the row loops.
func (db *DB) runCompiledFrame(ctx context.Context, cs *compiledStmt, opts ExecOptions, sql string, timing bool) (*Result, opFrame, error) {
	ec := &execCtx{db: db, parallelism: opts.Parallelism, sql: sql,
		acct:  newAccountant(opts.MaxMemoryBytes, opts.MaxRows),
		stats: make(opFrame, cs.nOps), timing: timing,
		batch: opts.BatchSize}
	if ec.batch <= 0 {
		ec.batch = DefaultBatchSize
	}
	if ctx != nil {
		ec.ctx = ctx
		if d, ok := ctx.Deadline(); ok {
			ec.deadline = d
		}
	}
	if opts.Timeout > 0 {
		if d := time.Now().Add(opts.Timeout); ec.deadline.IsZero() || d.Before(ec.deadline) {
			ec.deadline = d
		}
	}
	// An already-cancelled context (or spent deadline) fails before any
	// work: short statements would otherwise finish between periodic
	// checks and mask the cancellation.
	if err := ec.checkNow(); err != nil {
		return nil, ec.stats, err
	}
	var res *Result
	var err error
	if cs.sel != nil {
		res, err = ec.runTop(cs.sel)
	} else {
		res, err = ec.runUnion(cs.union)
	}
	// Record the peak even when the statement failed: a budget error is
	// exactly when the high-water mark matters.
	db.notePeakMemory(ec.acct.peakBytes())
	if err != nil {
		return nil, ec.stats, err
	}
	finalizeFrame(cs, ec.stats)
	// Publish the finalized frame as planning feedback: the next
	// plan-cache hit compares it against the plan's cardinality
	// estimates and re-plans when they disagree (plancache.go).
	frame := ec.stats
	cs.feedback.Store(&frame)
	res.PeakMemBytes = ec.acct.peakBytes()
	return res, ec.stats, nil
}

// RunSQL parses and runs a statement given as text.
func (db *DB) RunSQL(src string) (*Result, error) {
	st, err := sqlast.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.Run(st)
}

// runUnion executes a compiled UNION: branches run in order (each
// branch through runTop, so morsel parallelism applies per branch),
// duplicate rows are dropped across branches, and the merged rows are
// ordered by the union-level ORDER BY.
func (ec *execCtx) runUnion(u *unionPlan) (*Result, error) {
	out := &Result{Cols: u.cols}
	st := ec.op(u.phys.union)
	st.open()
	seen := map[string]bool{}
	var rows []orderedRow
	for _, plan := range u.branches {
		res, err := ec.runTop(plan)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows {
			st.rowIn()
			key := rowKey(r)
			if seen[key] {
				continue
			}
			// The union-level dedup set and merged buffer are additional
			// materialization on top of the (already accounted) branch
			// results.
			if err := ec.acct.growBytes(int64(len(key)) + mapEntryBytes); err != nil {
				return nil, err
			}
			st.charge(int64(len(key)) + mapEntryBytes)
			seen[key] = true
			st.rowOut()
			or := orderedRow{row: r}
			for _, pos := range u.orderPos {
				or.keys = append(or.keys, r[pos])
			}
			rows = append(rows, or)
		}
	}
	if len(u.orderPos) > 0 {
		sst := ec.op(u.phys.sort)
		sst.open()
		sst.rowsInN(int64(len(rows)))
		var t0 time.Time
		if ec.timing {
			t0 = time.Now()
		}
		sortRows(rows, u.orderDesc)
		if ec.timing {
			sst.addTime(time.Since(t0))
		}
		sst.rowsOutN(int64(len(rows)))
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
	}
	return out, nil
}

// runTop executes a plan as a top-level query: projection, DISTINCT,
// ORDER BY. When the execution options allow it and the driving table
// is large enough, row enumeration fans out over morsel workers.
func (ec *execCtx) runTop(plan *selectPlan) (*Result, error) {
	if ec.parallelism > 1 {
		rows, count, handled, err := ec.collectParallel(plan)
		if err != nil {
			return nil, err
		}
		if handled {
			return ec.finishTop(plan, rows, count, true), nil
		}
	}
	if plan.countStar {
		n := int64(0)
		err := ec.runPlan(plan, env{}, func([]Value) (bool, error) {
			n++
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		return ec.finishTop(plan, nil, n, false), nil
	}
	var rows []orderedRow
	var seen map[string]bool
	var dst *OpStats
	if plan.distinct {
		seen = map[string]bool{}
		dst = ec.op(plan.phys.dedup)
		dst.open()
	}
	// Governor charging is batched when no budget is set (the checks
	// are then no-ops and only the peak matters, which batching
	// preserves: accounted bytes only grow during collection). With a
	// budget, every row charges exactly, so the typed error fires at
	// the same logical row regardless of BatchSize.
	exact := ec.acct.limited()
	var pendRows, pendBytes int64
	err := ec.runPlanOrdered(plan, env{}, func(row, keys []Value) (bool, error) {
		if plan.distinct {
			dst.rowIn()
			k := rowKey(row)
			if seen[k] {
				return true, nil
			}
			cost := int64(len(k)) + mapEntryBytes
			if exact {
				if err := ec.acct.growBytes(cost); err != nil {
					return false, err
				}
			} else {
				pendBytes += cost
			}
			dst.charge(cost)
			seen[k] = true
			dst.rowOut()
		}
		b := rowMemBytes(row, keys)
		if exact {
			if err := ec.acct.addRow(b); err != nil {
				return false, err
			}
		} else {
			pendRows++
			pendBytes += b
			if pendRows >= int64(ec.batch) {
				if err := ec.acct.addRows(pendRows, pendBytes); err != nil {
					return false, err
				}
				pendRows, pendBytes = 0, 0
			}
		}
		rows = append(rows, orderedRow{row: row, keys: keys})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if err := ec.acct.addRows(pendRows, pendBytes); err != nil {
		return nil, err
	}
	return ec.finishTop(plan, rows, 0, false), nil
}

// finishTop applies DISTINCT (unless already applied during
// collection), the top-level sort, and assembles the Result. The
// parallel collector defers dedup to here so the surviving row for
// each distinct key is the first in merged (= serial) order.
func (ec *execCtx) finishTop(plan *selectPlan, rows []orderedRow, count int64, dedup bool) *Result {
	out := &Result{Cols: plan.colNames}
	if plan.countStar {
		out.Rows = append(out.Rows, []Value{NewInt(count)})
		return out
	}
	if dedup && plan.distinct {
		st := ec.op(plan.phys.dedup)
		st.open()
		st.rowsInN(int64(len(rows)))
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			k := rowKey(r.row)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
		}
		rows = kept
		st.rowsOutN(int64(len(rows)))
	}
	if len(plan.orderBy) > 0 {
		st := ec.op(plan.phys.sort)
		st.open()
		st.rowsInN(int64(len(rows)))
		desc := make([]bool, len(plan.orderBy))
		for i, k := range plan.orderBy {
			desc[i] = k.desc
		}
		var t0 time.Time
		if ec.timing {
			t0 = time.Now()
		}
		sortRows(rows, desc)
		if ec.timing {
			st.addTime(time.Since(t0))
		}
		st.rowsOutN(int64(len(rows)))
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
	}
	return out
}

// rowKey builds a distinct-set key for a projected row using the
// order-preserving keyenc encoding.
func rowKey(row []Value) string {
	var buf []byte
	for _, v := range row {
		buf = encodeValue(buf, v)
	}
	return string(buf)
}

// lessKeys compares two ORDER BY key vectors value by value. It is
// the general comparison path; sortRows prefers precomputed
// memcomparable keys when the key kinds allow it.
func lessKeys(a, b []Value, desc []bool) bool {
	for i := range a {
		cmp, ok := Compare(a[i], b[i])
		if !ok {
			// NULLs (and incomparables) sort first.
			an, bn := a[i].IsNull(), b[i].IsNull()
			if an == bn {
				continue
			}
			cmp = 1
			if an {
				cmp = -1
			}
		}
		if cmp == 0 {
			continue
		}
		if desc[i] {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// runPlan enumerates matching bindings and emits projected rows.
// The emit callback returns false to stop enumeration early.
func (ec *execCtx) runPlan(plan *selectPlan, e env, emit func(row []Value) (bool, error)) error {
	return ec.runPlanBatch(plan, e, ec.batch, func(row, _ []Value) (bool, error) { return emit(row) })
}

// runPlanFirst is runPlan with single-row batches, for consumers that
// stop at the first emitted row (EXISTS, scalar subqueries): a
// read-ahead batch would make the scan/probe counters — and the work
// done past the stopping row — depend on the batch size.
func (ec *execCtx) runPlanFirst(plan *selectPlan, e env, emit func(row []Value) (bool, error)) error {
	return ec.runPlanBatch(plan, e, 1, func(row, _ []Value) (bool, error) { return emit(row) })
}

// runPlanOrdered additionally evaluates ORDER BY keys per emitted row.
func (ec *execCtx) runPlanOrdered(plan *selectPlan, e env, emit func(row, keys []Value) (bool, error)) error {
	return ec.runPlanBatch(plan, e, ec.batch, emit)
}

// runPlanBatch enumerates with an explicit batch capacity.
func (ec *execCtx) runPlanBatch(plan *selectPlan, e env, batch int, emit func(row, keys []Value) (bool, error)) error {
	if len(plan.preFilters) > 0 {
		ok, err := ec.evalPreFilters(plan, e)
		if err != nil || !ok {
			return err
		}
	}
	r := &stepRunner{ec: ec, plan: plan, e: e, emit: emit, batch: batch}
	return r.run(0)
}

// evalPreFilters evaluates the plan's constant conjuncts against the
// prefilter operator; ok=false means the plan yields no rows.
func (ec *execCtx) evalPreFilters(plan *selectPlan, e env) (ok bool, err error) {
	if len(plan.preFilters) == 0 {
		return true, nil
	}
	st := ec.op(plan.phys.prefilter)
	st.open()
	prev := ec.cur
	ec.cur = st
	var t0 time.Time
	if ec.timing {
		t0 = time.Now()
	}
	pass := true
	for _, f := range plan.preFilters {
		v, ferr := f.eval(ec, e)
		if ferr != nil {
			err = ferr
			break
		}
		if !v.Truth() {
			pass = false
			break
		}
	}
	if ec.timing {
		st.addTime(time.Since(t0))
	}
	ec.cur = prev
	if err != nil || !pass {
		return false, err
	}
	st.rowOut()
	return true, nil
}

// stepRunner walks a plan's physical scan/filter pipeline
// recursively, binding batches of candidate rows per step. The morsel
// executor reuses it through runRoot after materializing the driving
// ids itself. batch is the id-batch capacity (1 for early-stopping
// subplan consumers, see runPlanFirst).
type stepRunner struct {
	ec    *execCtx
	plan  *selectPlan
	e     env
	emit  func(row, keys []Value) (bool, error)
	stop  bool
	batch int
}

// run opens the scan operator of the given step and pushes each batch
// of candidate rows down the pipeline (projecting and emitting once
// all steps are bound). A scan's measured time is inclusive of its
// downstream operators, like the nesting of the rendered tree.
func (r *stepRunner) run(step int) error {
	if step == len(r.plan.steps) {
		return r.project()
	}
	s := r.plan.steps[step]
	st := r.ec.op(r.plan.phys.scans[step])
	st.open()
	sc := r.ec.getScratch(r.batch)
	var err error
	if r.ec.timing {
		t0 := time.Now()
		err = r.runStep(step, s, st, sc)
		st.addTime(time.Since(t0))
	} else {
		err = r.runStep(step, s, st, sc)
	}
	r.ec.putScratch(sc)
	delete(r.e, s.name)
	return err
}

// runStep enumerates one step's candidate batches. The yield closure
// is built once per step activation — never per batch or per row.
// Consumed-row accounting matches the old per-row executor exactly: a
// row that caused an early stop or error is counted as scanned, rows
// after it in the batch are not.
func (r *stepRunner) runStep(step int, s *joinStep, st *OpStats, sc *batchScratch) error {
	yield := func(ids []int64) (bool, error) {
		if err := failpoint.Inject("engine/batch-flush"); err != nil {
			return false, err
		}
		n, err := r.processBatch(step, s, sc, ids)
		st.rowsOutN(int64(n))
		if err != nil {
			return false, err
		}
		return !r.stop, nil
	}
	return forEachBatch(r.ec, r.e, s, st, sc, yield)
}

// runRoot pushes already-materialized driving-step ids through the
// pipeline in batches. The driving scan's enumeration was counted
// when the ids were materialized (drivingIDs), so batches here go
// straight to the filter stage without re-crediting the scan.
func (r *stepRunner) runRoot(ids []int64) error {
	s := r.plan.steps[0]
	sc := r.ec.getScratch(r.batch)
	var err error
	for len(ids) > 0 && err == nil && !r.stop {
		n := len(ids)
		if n > r.batch {
			n = r.batch
		}
		_, err = r.processBatch(0, s, sc, ids[:n])
		ids = ids[n:]
	}
	r.ec.putScratch(sc)
	delete(r.e, s.name)
	return err
}

// processBatch pushes one batch of candidate ids through the step's
// filters and the rest of the pipeline, returning how many of the
// batch's rows were consumed (all of them unless an early stop or
// error cut the batch short). The deadline poll, filter-stat
// attribution, and vectorized filter pass are paid once per batch;
// binding the env entry is paid once per surviving recursion.
func (r *stepRunner) processBatch(step int, s *joinStep, sc *batchScratch, ids []int64) (int, error) {
	ec := r.ec
	if err := ec.checkBatch(len(ids)); err != nil {
		return 0, err
	}
	var fst *OpStats
	if f := r.plan.phys.filters[step]; f != nil {
		fst = ec.op(f)
	}
	var keep []bool
	if len(s.vec) > 0 {
		if ec.timing {
			t0 := time.Now()
			keep = r.vecFilter(s, sc, ids)
			fst.addTime(time.Since(t0))
		} else {
			keep = r.vecFilter(s, sc, ids)
		}
	}
	rows := s.st.rows
	rest := s.filters[len(s.vec):]
	for i, id := range ids {
		if keep != nil && !keep[i] {
			continue
		}
		r.e[s.name] = rows[id]
		if len(rest) > 0 {
			pass, err := r.evalFilters(rest, fst)
			if err != nil {
				return i + 1, err
			}
			if !pass {
				continue
			}
		}
		if err := r.run(step + 1); err != nil {
			return i + 1, err
		}
		if r.stop {
			return i + 1, nil
		}
	}
	return len(ids), nil
}

// evalFilters evaluates the step's residual (non-vectorized) filter
// conjuncts for the currently bound row. No row counting here: the
// filter's row flow is derived once per execution by finalizeFrame;
// only expression attribution (ec.cur) and, under EXPLAIN ANALYZE,
// wall-clock attribution are maintained.
func (r *stepRunner) evalFilters(filters []cexpr, st *OpStats) (ok bool, err error) {
	ec := r.ec
	prev := ec.cur
	ec.cur = st
	var t0 time.Time
	if ec.timing {
		t0 = time.Now()
	}
	pass := true
	for _, f := range filters {
		v, ferr := f.eval(ec, r.e)
		if ferr != nil {
			err = ferr
			break
		}
		if !v.Truth() {
			pass = false
			break
		}
	}
	if ec.timing {
		st.addTime(time.Since(t0))
	}
	ec.cur = prev
	return err == nil && pass, err
}

// project evaluates the projection (and ORDER BY keys) for a fully
// bound row and emits it through the output operator.
func (r *stepRunner) project() error {
	ec := r.ec
	st := ec.op(r.plan.phys.output)
	st.rowIn()
	prev := ec.cur
	ec.cur = st
	var row, keys []Value
	var err error
	if ec.timing {
		t0 := time.Now()
		row, keys, err = r.projectRow()
		st.addTime(time.Since(t0))
	} else {
		row, keys, err = r.projectRow()
	}
	ec.cur = prev
	if err != nil {
		return err
	}
	st.rowOut()
	cont, err := r.emit(row, keys)
	if err != nil {
		return err
	}
	if !cont {
		r.stop = true
	}
	return nil
}

// projectRow evaluates the projection columns and ORDER BY keys for
// the currently bound row.
func (r *stepRunner) projectRow() (row, keys []Value, err error) {
	ec := r.ec
	if !r.plan.countStar {
		row = make([]Value, len(r.plan.cols))
		for i, c := range r.plan.cols {
			if row[i], err = c.eval(ec, r.e); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(r.plan.orderBy) > 0 {
		keys = make([]Value, len(r.plan.orderBy))
		for i, k := range r.plan.orderBy {
			if keys[i], err = k.x.eval(ec, r.e); err != nil {
				return nil, nil, err
			}
		}
	}
	return row, keys, nil
}

// equalResults reports whether two results hold the same multiset of
// rows in the same order; used by tests.
func equalResults(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !bytes.Equal([]byte(rowKey(a.Rows[i])), []byte(rowKey(b.Rows[i]))) {
			return false
		}
	}
	return true
}
