package bench

import (
	"testing"

	"repro/internal/engine"
)

// TestBatchSizeInvarianceOnFig3 runs the Figure 3 comparison's
// workload queries under the PPF and Edge-like PPF translations at
// every batch size, serial and parallel, and checks each node set
// against the native oracle and against the other batch sizes: the
// engine's BatchSize knob must never change a result.
func TestBatchSizeInvarianceOnFig3(t *testing.T) {
	w, err := NewXMark(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 2, 7, 256, 1024}
	for _, q := range w.Queries {
		want, err := w.OracleIDs(q)
		if err != nil {
			t.Fatalf("oracle %s: %v", q.ID, err)
		}
		for _, sys := range []System{PPF, EdgePPF} {
			for _, par := range []int{0, 4} {
				for _, bs := range sizes {
					w.BatchSize = bs
					w.Parallelism = par
					got, err := w.Run(sys, q)
					if err != nil {
						t.Errorf("%s on %s (bs=%d par=%d): %v", sys, q.ID, bs, par, err)
						continue
					}
					if !equalIDs(got, want) {
						t.Errorf("%s on %s (bs=%d par=%d): %d ids, oracle has %d (first diff: %s)",
							sys, q.ID, bs, par, len(got), len(want), firstDiff(got, want))
					}
				}
			}
		}
	}
	w.BatchSize = 0
	w.Parallelism = 0
}

// TestMeasureReportsAllocsAndBatch checks the new measurement fields:
// SQL-based cells carry the effective batch size and a positive
// allocation meter; non-SQL cells report no batch size.
func TestMeasureReportsAllocsAndBatch(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := w.Query("Q1")
	m := w.Measure(PPF, q, 2, 0)
	if m.ErrorMsg != "" {
		t.Fatalf("measurement = %+v", m)
	}
	if m.BatchSize != engine.DefaultBatchSize {
		t.Errorf("BatchSize = %d, want engine default %d", m.BatchSize, engine.DefaultBatchSize)
	}
	if m.AllocsPerOp <= 0 {
		t.Errorf("AllocsPerOp = %d, want > 0", m.AllocsPerOp)
	}
	w.BatchSize = 7
	m = w.Measure(PPF, q, 1, 0)
	if m.BatchSize != 7 {
		t.Errorf("BatchSize = %d, want the workload's 7", m.BatchSize)
	}
	w.BatchSize = 0
	m = w.Measure(Staircase, q, 1, 0)
	if m.BatchSize != 0 {
		t.Errorf("staircase BatchSize = %d, want 0", m.BatchSize)
	}
}
