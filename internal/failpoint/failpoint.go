// Package failpoint provides name-addressed fault-injection points
// for chaos testing the engine's error and panic recovery paths.
//
// A failpoint is a named hook compiled permanently into production
// code:
//
//	if err := failpoint.Inject("engine/hash-build"); err != nil {
//		return err
//	}
//
// When no failpoint is armed anywhere in the process, Inject is a
// single atomic load and a predictable branch — cheap enough for hot
// paths. Tests arm individual points by name:
//
//	failpoint.Enable("engine/hash-build", failpoint.Return(errBoom))
//	defer failpoint.Reset()
//
// Actions are deterministic: a point fires on every hit unless
// narrowed with Times (fire at most n times) or After (skip the
// first n hits), so a test can target exactly the k-th traversal of
// a code path. Three action kinds cover the engine's failure modes:
// Return (an error surfaces through the normal return path), Panic
// (Inject panics, exercising the statement panic boundary), and
// Sleep (the hit stalls, widening race and timeout windows).
//
// Naming convention: "<package>/<site>", lower-case, dash-separated
// (e.g. "engine/morsel-claim"). Names are free-form strings; arming a
// name no Inject call carries is legal and simply never fires. The
// registry is bounded (MaxActive) so a leaking test loop cannot grow
// process state without bound.
package failpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// MaxActive bounds the number of simultaneously armed failpoints.
const MaxActive = 64

// ErrRegistryFull reports an Enable that would exceed MaxActive.
var ErrRegistryFull = errors.New("failpoint: registry full")

// ErrInjected is the default error returned by Fail actions that do
// not carry a caller-chosen error.
var ErrInjected = errors.New("failpoint: injected error")

// An Action describes what an armed failpoint does when hit. The
// zero Action does nothing; build one with Return, Panic or Sleep
// and optionally narrow it with Times and After.
type Action struct {
	err      error
	panicMsg string
	doPanic  bool
	sleep    time.Duration
	skip     int64 // hits to ignore before firing
	limit    int64 // fires remaining; <0 = unlimited
}

// Return builds an action that makes Inject return err.
func Return(err error) Action {
	if err == nil {
		err = ErrInjected
	}
	return Action{err: err, limit: -1}
}

// Panic builds an action that makes Inject panic with a *PanicValue
// carrying msg.
func Panic(msg string) Action { return Action{doPanic: true, panicMsg: msg, limit: -1} }

// Sleep builds an action that makes Inject block for d, then return
// nil.
func Sleep(d time.Duration) Action { return Action{sleep: d, limit: -1} }

// Times returns a copy of a that fires at most n times; later hits
// pass through.
func (a Action) Times(n int) Action { a.limit = int64(n); return a }

// After returns a copy of a that ignores the first n hits.
func (a Action) After(n int) Action { a.skip = int64(n); return a }

// PanicValue is the value Inject panics with for Panic actions, so
// recovery boundaries (and their tests) can recognize an injected
// panic.
type PanicValue struct {
	Name string // failpoint name
	Msg  string
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("failpoint %s: injected panic: %s", p.Name, p.Msg)
}

type point struct {
	action Action
	hits   int64 // total Inject arrivals (fired or not)
	fired  int64
}

var (
	// armed counts enabled failpoints; Inject's fast path is a single
	// load of this counter.
	armed atomic.Int64

	mu     sync.Mutex
	points map[string]*point
)

// Enable arms the named failpoint with an action, replacing any
// previous action under the same name. It fails only when the
// registry is full.
func Enable(name string, a Action) error {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[name]; !ok {
		if len(points) >= MaxActive {
			return ErrRegistryFull
		}
		armed.Add(1)
	}
	points[name] = &point{action: a}
	return nil
}

// Disable disarms the named failpoint. Disabling an unarmed name is
// a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests should defer it after any
// Enable so faults cannot leak across test boundaries.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int64(len(points)))
	points = nil
}

// Active returns the names of the armed failpoints, sorted.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Hits returns how many times Inject has been reached for the named
// failpoint since it was last enabled (including hits the action
// skipped or had exhausted).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Inject is the production-side hook. With no failpoint armed in the
// process it returns nil after one atomic load. With the named point
// armed it applies the action: returns its error, panics with a
// *PanicValue, or sleeps and returns nil.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.action.skip || (p.action.limit >= 0 && p.fired >= p.action.limit) {
		mu.Unlock()
		return nil
	}
	p.fired++
	a := p.action
	mu.Unlock()
	if a.doPanic {
		panic(&PanicValue{Name: name, Msg: a.panicMsg})
	}
	if a.sleep > 0 {
		time.Sleep(a.sleep)
	}
	return a.err
}
