package engine

import (
	"fmt"
	"strings"

	"repro/internal/sqlast"
)

// selectPlan is a compiled SELECT: an ordered sequence of table
// access steps with per-step residual filters, plus the compiled
// projection and ORDER BY keys.
type selectPlan struct {
	distinct   bool
	cols       []cexpr
	colNames   []string
	countStar  bool
	preFilters []cexpr // conjuncts that reference no local table
	steps      []*joinStep
	orderBy    []corder
	// fromOrder is the statement's FROM order before join reordering
	// and joinMethod how the binding order was chosen ("single", "dp"
	// or "greedy") — recorded for the exported plan shape
	// (plantrace.go) so the certificate checker can report the
	// reordering step it validated.
	fromOrder  []string
	joinMethod string
	// phys is the lowered physical operator pipeline (physplan.go),
	// set by lowerStmt for every plan reachable from a compiled
	// statement — including correlated subplans.
	phys *physSelect
	// src is the rendered source of a correlated subselect (empty for
	// top-level plans): the key adaptive re-planning uses to route a
	// subplan's observed cardinalities back to the same subselect on
	// the next compile. Rendered text is stable across join-order
	// changes, which reorder compilation but not the statement.
	src string
}

type corder struct {
	x    cexpr
	desc bool
	src  string // source text of the key expression, for Explain
}

// joinStep binds one FROM table using an access path, then applies
// residual filters.
type joinStep struct {
	name  string
	table *Table
	// st is the table state the plan was compiled against: the
	// statement's snapshot pin. Execution reads rows and builds hash
	// indexes through st, never through the live table, so a running
	// query is untouched by concurrent commits; the plan cache retires
	// the plan (plancache.go) once the live state moves on.
	st      *tableState
	access  accessPath
	filters []cexpr
	// filterSrc keeps the source text of filters for Explain.
	filterSrc []string
	// vec is the leading run of filters the executor evaluates as one
	// batched REGEXP_LIKE pass per row batch (vectorize.go); the
	// per-row residual loop skips filters[:len(vec)]. Derived metadata
	// only: filters itself is untouched, so the plan certificates
	// (plancheck) and EXPLAIN see the same predicate multiset.
	vec []vecFilter
	// estAccess/estRows are the planner's cardinality estimates for
	// this step — rows the access path yields per binding, and rows
	// surviving the residual filters — with estSource recording their
	// provenance (EstSynopsis/EstDefault/EstOverride, estimate.go).
	// They feed EXPLAIN's est_rows, the adaptive re-planning q-error
	// check, and plancheck's estimate-provenance obligation.
	estAccess float64
	estRows   float64
	estSource string
	// omitted holds single-table conjuncts the planner dropped because
	// the snapshot's synopsis proves them true for every row (§4.5-style
	// omission beyond schema proofs). Never executed; exported through
	// the plan shape so plancheck can re-justify each omission.
	omitted []omittedFilter
}

// accessPath determines which rows of a table are visited given the
// rows bound so far. It is both the planner's cost abstraction
// (rank/est) and the executor's scan-operator contract (enumerate,
// implemented per access kind in access.go).
type accessPath interface {
	describe() string
	// rank orders access kinds for tie-breaking (lower is better).
	rank() int
	// est estimates the rows this access yields per binding of the
	// already-bound tables — the planner's cost metric, evaluated
	// against the snapshot state the plan is compiled for.
	est(st *tableState) int
	// enumerate pushes the candidate row ids for the step under the
	// current bindings, in the executor's canonical order, batched
	// through sc.ids (or zero-copy sub-slices of index postings),
	// recording probes and governor charges against the scan's
	// OpStats.
	enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, sc *batchScratch, yield batchYield) error
	// shape describes the access path for the exported plan shape
	// (plantrace.go), decompiling key expressions through sb;
	// implemented per access kind in access.go.
	shape(sb *shapeBuilder, t *Table) (AccessShape, error)
}

type fullScan struct{}

func (fullScan) describe() string       { return "full scan" }
func (fullScan) rank() int              { return 8 }
func (fullScan) est(st *tableState) int { return len(st.rows) }

// indexEq is a point lookup on an index whose leading columns are all
// bound by equality.
type indexEq struct {
	ix   *Index
	keys []cexpr // one per leading column
}

func (a *indexEq) describe() string { return "index lookup " + a.ix.Name }
func (a *indexEq) rank() int        { return 1 }
func (a *indexEq) est(st *tableState) int {
	if n := a.ix.Tree.Len(); n > 0 {
		return maxInt(1, a.ix.Tree.Pairs()/n)
	}
	return 1
}

// hashEq is an equality lookup through a transient hash index — the
// engine's hash join.
type hashEq struct {
	col int
	key cexpr
}

func (a *hashEq) describe() string { return "hash join" }
func (a *hashEq) rank() int        { return 2 }
func (a *hashEq) est(st *tableState) int {
	// Estimate with the largest bucket: skewed join columns (e.g. a
	// path id shared by half the relation) must not look selective.
	return maxInt(1, st.hashMaxBucket(a.col))
}

// indexPrefixes is the ancestor access path: for a condition
// 'X BETWEEN t.col AND t.col || X'FF” with X bound, the matching
// t.col values are exactly the byte prefixes of X, so the step does
// one index lookup per prefix length instead of a scan.
type indexPrefixes struct {
	ix *Index
	x  cexpr
}

func (a *indexPrefixes) describe() string { return "index prefix lookups " + a.ix.Name }
func (a *indexPrefixes) rank() int        { return 2 }
func (a *indexPrefixes) est(st *tableState) int {
	if len(st.rows) < 8 {
		return len(st.rows)
	}
	return 8
}

// fatHash wraps a hash join whose average bucket is large enough that
// it behaves like a scan; it ranks with full scans so the planner
// prefers genuinely selective paths.
type fatHash struct{ h *hashEq }

func (a *fatHash) describe() string       { return "hash join (low selectivity)" }
func (a *fatHash) rank() int              { return 8 }
func (a *fatHash) est(st *tableState) int { return a.h.est(st) }

// indexRange scans an index over a [lo, hi] interval computed from
// the bound rows. Either bound may be absent.
type indexRange struct {
	ix       *Index
	lo, hi   cexpr // nil when unbounded
	loStrict bool
	hiStrict bool
}

func (a *indexRange) describe() string {
	kind := "one-sided"
	if a.lo != nil && a.hi != nil {
		kind = "two-sided"
	}
	return "index range scan (" + kind + ") " + a.ix.Name
}
func (a *indexRange) rank() int {
	if a.lo != nil && a.hi != nil {
		return 3
	}
	return 5
}

func (a *indexRange) est(st *tableState) int {
	if a.lo != nil && a.hi != nil {
		return len(st.rows)/16 + 1
	}
	return len(st.rows)/4 + 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// planner compiles statements against one database snapshot: every
// table resolution, cost estimate, and pinned joinStep state comes
// from snap, so a plan is internally consistent even when a writer
// commits mid-compile (the plan cache then simply retires it early).
type planner struct {
	db   *DB
	snap *dbSnap
	// touched records every table resolved while planning (including
	// tables of correlated subselects) so the plan cache can pin the
	// table states a cached plan depends on. Nil when the caller
	// doesn't need dependency tracking.
	touched map[*Table]bool
	// overrides maps FROM aliases of the select being planned to
	// observed per-binding cardinalities injected by adaptive
	// re-planning (plancache.go). It always holds the map of the
	// select currently being planned: planSelect swaps in the matching
	// subOverrides entry for each correlated subselect, whose aliases
	// could collide with the outer select's.
	overrides map[string]ovEst
	// subOverrides routes observed cardinalities to correlated
	// subselects, keyed by the subselect's rendered source text
	// (selectPlan.src).
	subOverrides map[string]map[string]ovEst
}

// conjunct is one ANDed term of a WHERE clause during planning.
type conjunct struct {
	expr     sqlast.Expr
	localRef map[string]bool // local FROM names it references
}

// planSelect compiles a SELECT. The outer scope carries tables of
// enclosing queries for correlated subselects.
func (p *planner) planSelect(sel *sqlast.Select, outer *scope) (*selectPlan, error) {
	// Observed-cardinality overrides are keyed by the FROM aliases of
	// the select being re-planned; a correlated subselect has its own
	// alias space, so the outer map must not leak into it — the
	// subselect gets its own map, routed by rendered source text.
	var subSrc string
	if outer != nil {
		subSrc = sqlast.Render(sel)
		saved := p.overrides
		p.overrides = p.subOverrides[subSrc]
		defer func() { p.overrides = saved }()
	}
	sc := newScope(outer)
	local := map[string]*Table{}
	var localOrder []string
	for _, ref := range sel.From {
		t := p.snap.table(ref.Table)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %q", ref.Table)
		}
		if p.touched != nil {
			p.touched[t] = true
		}
		if err := sc.add(ref.Name(), t); err != nil {
			return nil, err
		}
		local[ref.Name()] = t
		localOrder = append(localOrder, ref.Name())
	}

	plan := &selectPlan{distinct: sel.Distinct, src: subSrc}

	// Projection.
	if len(sel.Cols) == 1 {
		if _, ok := sel.Cols[0].Expr.(*sqlast.CountStar); ok {
			plan.countStar = true
			plan.colNames = []string{"COUNT(*)"}
		}
	}
	if !plan.countStar {
		for _, c := range sel.Cols {
			ce, err := p.compile(c.Expr, sc)
			if err != nil {
				return nil, err
			}
			plan.cols = append(plan.cols, ce)
			name := c.Alias
			if name == "" {
				name = c.Expr.String()
			}
			plan.colNames = append(plan.colNames, name)
		}
	}

	// Flatten WHERE into conjuncts and find their local references.
	var conjuncts []*conjunct
	var flatten func(e sqlast.Expr)
	flatten = func(e sqlast.Expr) {
		if b, ok := e.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conjuncts = append(conjuncts, &conjunct{expr: e, localRef: p.localRefs(e, local)})
	}
	if sel.Where != nil {
		flatten(sel.Where)
	}

	// §4.5-style filter omission beyond schema proofs: drop
	// single-table conjuncts the pinned synopsis proves true for every
	// row, before access-path and join-order selection see them (an
	// index probe for a tautological predicate would justify an access
	// path plancheck could no longer tie to a retained filter). Each
	// omission is recorded with its synopsis evidence on the step it
	// would have filtered.
	omittedBy := map[string][]omittedFilter{}
	for _, c := range conjuncts {
		if c.expr == nil || len(c.localRef) != 1 {
			continue
		}
		var name string
		for n := range c.localRef {
			name = n
		}
		t := local[name]
		if !refsOnlyTable(c.expr, name, t) {
			continue
		}
		of, ok := p.proveRedundant(c.expr, name, t, p.snap.stateOf(t), sc)
		if !ok {
			continue
		}
		ce, err := p.compile(c.expr, sc)
		if err != nil {
			continue
		}
		of.ce = ce
		of.src = c.expr.String()
		omittedBy[name] = append(omittedBy[name], of)
		c.expr = nil
	}

	// Join ordering: exhaustive dynamic programming over join orders
	// for small FROM lists (Selinger-style, cumulative-rows cost),
	// greedy fallback beyond that.
	plan.fromOrder = append([]string(nil), localOrder...)
	order, method := p.chooseJoinOrder(localOrder, local, conjuncts, sc)
	plan.joinMethod = method
	bound := map[string]bool{}
	for _, name := range order {
		access, _, accessSrc := p.bestAccess(name, local[name], conjuncts, bound, sc)
		atKey := boundKey(bound)
		bound[name] = true
		st := p.snap.stateOf(local[name])
		step := &joinStep{name: name, table: local[name], st: st, access: access}
		step.omitted = omittedBy[name]
		// Record the step's cardinality estimate and its provenance for
		// EXPLAIN, adaptive re-planning, and plancheck.
		accessEst, synAccess := p.accessEstimate(access, st)
		selOwn, synSel := p.tableSelectivity(name, local[name], st, conjuncts, accessSrc, sc)
		step.estAccess = accessEst
		step.estRows = accessEst * selOwn
		if ov, ok := p.overrides[name]; ok && !p.heuristicOnly() && ov.after == atKey {
			step.estRows = ov.rows
			if ov.access > 0 {
				step.estAccess = ov.access
			}
			step.estSource = EstOverride
		} else if synAccess || synSel {
			step.estSource = EstSynopsis
		} else {
			step.estSource = EstDefault
		}
		// Attach every not-yet-attached conjunct whose local references
		// are now fully bound.
		for _, c := range conjuncts {
			if c.expr == nil {
				continue
			}
			ready := true
			uses := false
			for ref := range c.localRef {
				if !bound[ref] {
					ready = false
					break
				}
				if ref == name {
					uses = true
				}
			}
			if !ready {
				continue
			}
			if len(c.localRef) == 0 || uses || len(plan.steps) == 0 {
				ce, err := p.compile(c.expr, sc)
				if err != nil {
					return nil, err
				}
				if len(c.localRef) == 0 {
					plan.preFilters = append(plan.preFilters, ce)
				} else {
					step.filters = append(step.filters, ce)
					step.filterSrc = append(step.filterSrc, c.expr.String())
				}
				c.expr = nil
			}
		}
		plan.steps = append(plan.steps, step)
	}
	// Any conjunct not attached yet (references only earlier tables but
	// was skipped because 'uses' was false) attaches to the last step.
	for _, c := range conjuncts {
		if c.expr == nil {
			continue
		}
		ce, err := p.compile(c.expr, sc)
		if err != nil {
			return nil, err
		}
		if len(plan.steps) == 0 {
			plan.preFilters = append(plan.preFilters, ce)
		} else {
			last := plan.steps[len(plan.steps)-1]
			last.filters = append(last.filters, ce)
			last.filterSrc = append(last.filterSrc, c.expr.String())
		}
		c.expr = nil
	}

	// ORDER BY.
	for _, k := range sel.OrderBy {
		ce, err := p.compile(k.Expr, sc)
		if err != nil {
			return nil, err
		}
		plan.orderBy = append(plan.orderBy, corder{x: ce, desc: k.Desc, src: k.Expr.String()})
	}
	return plan, nil
}

// localRefs returns the local FROM names an expression references.
// Unqualified columns resolve through the scope chain; only matches
// in the local table set count as local.
func (p *planner) localRefs(e sqlast.Expr, local map[string]*Table) map[string]bool {
	out := map[string]bool{}
	var walk func(e sqlast.Expr)
	walkSelect := func(s *sqlast.Select) {
		// Names shadowed by the subselect's own FROM are not ours.
		inner := map[string]bool{}
		for _, ref := range s.From {
			inner[ref.Name()] = true
		}
		var ws func(e sqlast.Expr)
		ws = func(e sqlast.Expr) {
			switch x := e.(type) {
			case *sqlast.Col:
				if x.Table != "" && !inner[x.Table] {
					if _, ok := local[x.Table]; ok {
						out[x.Table] = true
					}
				}
			case *sqlast.Binary:
				ws(x.L)
				ws(x.R)
			case *sqlast.Not:
				ws(x.X)
			case *sqlast.Between:
				ws(x.X)
				ws(x.Lo)
				ws(x.Hi)
			case *sqlast.IsNull:
				ws(x.X)
			case *sqlast.Func:
				for _, a := range x.Args {
					ws(a)
				}
			case *sqlast.Exists:
				if x.Select.Where != nil {
					ws(x.Select.Where)
				}
			case *sqlast.Subquery:
				if x.Select.Where != nil {
					ws(x.Select.Where)
				}
			}
		}
		if s.Where != nil {
			ws(s.Where)
		}
	}
	walk = func(e sqlast.Expr) {
		switch x := e.(type) {
		case *sqlast.Col:
			if x.Table != "" {
				if _, ok := local[x.Table]; ok {
					out[x.Table] = true
				}
				return
			}
			// Unqualified: count every local table that has the column.
			for name, t := range local {
				if t.ColIndex(x.Column) >= 0 {
					out[name] = true
				}
			}
		case *sqlast.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlast.Not:
			walk(x.X)
		case *sqlast.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlast.IsNull:
			walk(x.X)
		case *sqlast.Func:
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlast.Exists:
			walkSelect(x.Select)
		case *sqlast.Subquery:
			walkSelect(x.Select)
		}
	}
	walk(e)
	return out
}

// bestAccess finds the cheapest access path for table t (named name)
// given the currently bound tables, comparing synopsis-backed
// estimates (estimate.go). connected reports whether any usable
// conjunct references the table at all — a table without one joins as
// a cross product and is deferred by the caller. src is the conjunct
// that produced the chosen path (nil for the full-scan default) so
// the estimator can avoid double-counting its selectivity.
func (p *planner) bestAccess(name string, t *Table, conjuncts []*conjunct, bound map[string]bool, sc *scope) (access accessPath, connected bool, src *conjunct) {
	st := p.snap.stateOf(t)
	var best accessPath = fullScan{}
	bestEst, _ := p.accessEstimate(best, st)
	consider := func(a accessPath, c *conjunct) {
		if a == nil {
			return
		}
		e, _ := p.accessEstimate(a, st)
		if e < bestEst || (e == bestEst && a.rank() < best.rank()) {
			best, bestEst, src = a, e, c
		}
	}
	for _, c := range conjuncts {
		if c.expr == nil || !c.localRef[name] {
			continue
		}
		// All other local references must already be bound.
		usable := true
		for ref := range c.localRef {
			if ref != name && !bound[ref] {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		connected = true
		switch x := c.expr.(type) {
		case *sqlast.Binary:
			consider(p.accessFromBinary(name, t, x, sc), c)
		case *sqlast.Between:
			consider(p.accessFromBetween(name, t, x, sc), c)
		}
	}
	return best, connected, src
}

// colOf returns the column position if e is a column of the table
// named name, else -1.
func (p *planner) colOf(e sqlast.Expr, name string, t *Table, sc *scope) int {
	c, ok := e.(*sqlast.Col)
	if !ok {
		return -1
	}
	tn, _, pos, err := sc.resolve(c)
	if err != nil || tn != name {
		return -1
	}
	return pos
}

// concatColOf matches 'col || const' where col belongs to the table.
func (p *planner) concatColOf(e sqlast.Expr, name string, t *Table, sc *scope) int {
	b, ok := e.(*sqlast.Binary)
	if !ok || b.Op != sqlast.OpConcat {
		return -1
	}
	if _, lit := b.R.(*sqlast.BytesLit); !lit {
		return -1
	}
	return p.colOf(b.L, name, t, sc)
}

// free reports whether the expression references the given table at
// all (directly); used to ensure key expressions don't depend on the
// table being accessed.
func (p *planner) freeOf(e sqlast.Expr, name string, t *Table) bool {
	refs := p.localRefs(e, map[string]*Table{name: t})
	return !refs[name]
}

func (p *planner) accessFromBinary(name string, t *Table, b *sqlast.Binary, sc *scope) accessPath {
	switch b.Op {
	case sqlast.OpEq:
		if a := p.eqAccess(name, t, b.L, b.R, sc); a != nil {
			return a
		}
		return p.eqAccess(name, t, b.R, b.L, sc)
	case sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		// Normalize to 'colSide OP otherSide'.
		if a := p.rangeAccess(name, t, b.L, b.Op, b.R, sc); a != nil {
			return a
		}
		return p.rangeAccess(name, t, b.R, flipOp(b.Op), b.L, sc)
	}
	return nil
}

func flipOp(op sqlast.BinOp) sqlast.BinOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	}
	return op
}

// eqAccess builds an equality access on colSide = keySide.
func (p *planner) eqAccess(name string, t *Table, colSide, keySide sqlast.Expr, sc *scope) accessPath {
	col := p.colOf(colSide, name, t, sc)
	if col < 0 || !p.freeOf(keySide, name, t) {
		return nil
	}
	if !p.typesMatch(t.Cols[col].Type, keySide, sc) {
		return nil
	}
	key, err := p.compile(keySide, sc)
	if err != nil {
		return nil
	}
	st := p.snap.stateOf(t)
	if ix := st.findIndex(col); ix != nil && len(ix.Cols) == 1 {
		return &indexEq{ix: ix, keys: []cexpr{key}}
	}
	h := &hashEq{col: col, key: key}
	// A hash join on a low-cardinality column degenerates to a scan;
	// rank it accordingly so selective paths win. The decision reads
	// the synopsis's distinct count instead of building the hash index
	// at plan time (the two agree exactly below the histogram cap).
	if len(st.rows) > 64 {
		if d := st.syn.Col(col).Distinct(); d > 0 && int64(len(st.rows))/d > 16 {
			return &fatHash{h: h}
		}
	}
	return h
}

// rangeAccess builds a one-sided index range from 'colExpr op bound'.
// colExpr may be a plain column or 'col || const' (the Dewey
// descendant-limit pattern); in the concat case only upper bounds are
// implied (v||k < b implies v < b).
func (p *planner) rangeAccess(name string, t *Table, colSide sqlast.Expr, op sqlast.BinOp, boundSide sqlast.Expr, sc *scope) accessPath {
	if !p.freeOf(boundSide, name, t) {
		return nil
	}
	col := p.colOf(colSide, name, t, sc)
	concat := false
	if col < 0 {
		col = p.concatColOf(colSide, name, t, sc)
		if col < 0 {
			return nil
		}
		concat = true
	}
	ix := p.snap.stateOf(t).findIndex(col)
	if ix == nil {
		return nil
	}
	if !p.typesMatch(t.Cols[col].Type, boundSide, sc) {
		return nil
	}
	key, err := p.compile(boundSide, sc)
	if err != nil {
		return nil
	}
	if concat {
		// v || k OP bound: only '<' / '<=' imply a bound on v (v < bound).
		if op == sqlast.OpLt || op == sqlast.OpLe {
			return &indexRange{ix: ix, hi: key, hiStrict: true}
		}
		return nil
	}
	switch op {
	case sqlast.OpGt:
		return &indexRange{ix: ix, lo: key, loStrict: true}
	case sqlast.OpGe:
		return &indexRange{ix: ix, lo: key}
	case sqlast.OpLt:
		return &indexRange{ix: ix, hi: key, hiStrict: true}
	case sqlast.OpLe:
		return &indexRange{ix: ix, hi: key}
	}
	return nil
}

func (p *planner) accessFromBetween(name string, t *Table, b *sqlast.Between, sc *scope) accessPath {
	col := p.colOf(b.X, name, t, sc)
	if col < 0 {
		// Ancestor shape: 'X BETWEEN t.col AND t.col || const' with X
		// bound — t.col must be a prefix of X's value.
		loCol := p.colOf(b.Lo, name, t, sc)
		hiCol := p.concatColOf(b.Hi, name, t, sc)
		if loCol >= 0 && loCol == hiCol && p.freeOf(b.X, name, t) && t.Cols[loCol].Type == TBytes {
			if k, ok := p.staticKind(b.X, sc); ok && k == KBytes {
				if ix := p.snap.stateOf(t).findIndex(loCol); ix != nil {
					if x, err := p.compile(b.X, sc); err == nil {
						return &indexPrefixes{ix: ix, x: x}
					}
				}
			}
		}
		return nil
	}
	if !p.freeOf(b.Lo, name, t) || !p.freeOf(b.Hi, name, t) {
		return nil
	}
	ix := p.snap.stateOf(t).findIndex(col)
	if ix == nil {
		return nil
	}
	if !p.typesMatch(t.Cols[col].Type, b.Lo, sc) || !p.typesMatch(t.Cols[col].Type, b.Hi, sc) {
		return nil
	}
	lo, err := p.compile(b.Lo, sc)
	if err != nil {
		return nil
	}
	hi, err := p.compile(b.Hi, sc)
	if err != nil {
		return nil
	}
	return &indexRange{ix: ix, lo: lo, hi: hi}
}

// typesMatch reports whether an expression's static type equals the
// column type exactly, so index keys compare without coercion.
func (p *planner) typesMatch(ct Type, e sqlast.Expr, sc *scope) bool {
	k, ok := p.staticKind(e, sc)
	if !ok {
		return false
	}
	switch ct {
	case TInt:
		return k == KInt
	case TText:
		return k == KText
	case TBytes:
		return k == KBytes
	default:
		return false
	}
}

// staticKind infers the runtime kind an expression always produces
// (ignoring NULL, which access paths handle by returning no rows).
func (p *planner) staticKind(e sqlast.Expr, sc *scope) (Kind, bool) {
	switch x := e.(type) {
	case *sqlast.Col:
		_, t, pos, err := sc.resolve(x)
		if err != nil {
			return 0, false
		}
		switch t.Cols[pos].Type {
		case TInt:
			return KInt, true
		case TFloat:
			return KFloat, true
		case TText:
			return KText, true
		case TBytes:
			return KBytes, true
		}
	case *sqlast.IntLit:
		return KInt, true
	case *sqlast.StrLit:
		return KText, true
	case *sqlast.BytesLit:
		return KBytes, true
	case *sqlast.Binary:
		switch x.Op {
		case sqlast.OpConcat:
			lk, lok := p.staticKind(x.L, sc)
			rk, rok := p.staticKind(x.R, sc)
			if !lok || !rok {
				return 0, false
			}
			if lk == KBytes || rk == KBytes {
				return KBytes, true
			}
			return KText, true
		case sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpMod:
			// Integer arithmetic stays integer (see Arith), so bounds
			// like 'v.pre + v.size' remain index-usable.
			lk, lok := p.staticKind(x.L, sc)
			rk, rok := p.staticKind(x.R, sc)
			if lok && rok && lk == KInt && rk == KInt {
				return KInt, true
			}
		}
	}
	return 0, false
}

// compile translates an AST expression to a compiled one.
func (p *planner) compile(e sqlast.Expr, sc *scope) (cexpr, error) {
	switch x := e.(type) {
	case *sqlast.Col:
		name, _, pos, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return &ccol{table: name, pos: pos}, nil
	case *sqlast.IntLit:
		return &clit{v: NewInt(x.Value)}, nil
	case *sqlast.FloatLit:
		return &clit{v: NewFloat(x.Value)}, nil
	case *sqlast.StrLit:
		return &clit{v: NewText(x.Value)}, nil
	case *sqlast.BytesLit:
		return &clit{v: NewBytes(x.Value)}, nil
	case *sqlast.NullLit:
		return &clit{v: Null}, nil
	case *sqlast.Binary:
		l, err := p.compile(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := p.compile(x.R, sc)
		if err != nil {
			return nil, err
		}
		return &cbin{op: x.Op, l: l, r: r}, nil
	case *sqlast.Not:
		inner, err := p.compile(x.X, sc)
		if err != nil {
			return nil, err
		}
		return &cnot{x: inner}, nil
	case *sqlast.Between:
		cx, err := p.compile(x.X, sc)
		if err != nil {
			return nil, err
		}
		lo, err := p.compile(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := p.compile(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		return &cbetween{x: cx, lo: lo, hi: hi}, nil
	case *sqlast.IsNull:
		inner, err := p.compile(x.X, sc)
		if err != nil {
			return nil, err
		}
		return &cisnull{x: inner, negate: x.Negate}, nil
	case *sqlast.Func:
		name := strings.ToUpper(x.Name)
		want := map[string]int{"REGEXP_LIKE": 2, "LENGTH": 1, "LOWER": 1, "UPPER": 1, "ABS": 1, "SUBSTR": 2}
		n, known := want[name]
		if !known {
			return nil, fmt.Errorf("engine: unknown function %q", x.Name)
		}
		if len(x.Args) != n {
			return nil, fmt.Errorf("engine: %s takes %d argument(s)", name, n)
		}
		cf := &cfunc{name: name}
		for _, a := range x.Args {
			ca, err := p.compile(a, sc)
			if err != nil {
				return nil, err
			}
			cf.args = append(cf.args, ca)
		}
		if name == "REGEXP_LIKE" {
			if lit, ok := x.Args[1].(*sqlast.StrLit); ok {
				m, err := compilePattern(lit.Value)
				if err != nil {
					return nil, err
				}
				cf.re = m
			}
		}
		return cf, nil
	case *sqlast.Exists:
		sub, err := p.planSelect(x.Select, sc)
		if err != nil {
			return nil, err
		}
		return &cexists{plan: sub, negate: x.Negate}, nil
	case *sqlast.Subquery:
		sub, err := p.planSelect(x.Select, sc)
		if err != nil {
			return nil, err
		}
		if !sub.countStar && len(sub.cols) != 1 {
			return nil, fmt.Errorf("engine: scalar subquery must project one column")
		}
		return &csubq{plan: sub}, nil
	case *sqlast.CountStar:
		return nil, fmt.Errorf("engine: COUNT(*) is only allowed as the sole projection of a subquery")
	}
	return nil, fmt.Errorf("engine: cannot compile %T", e)
}

// Explain renders the statement's physical operator tree (one line
// per operator, correlated subplans nested) for diagnostics and
// tests. The statement is planned through the plan cache but not
// executed; EXPLAIN ANALYZE (explain.go) runs it and annotates each
// operator with its OpStats.
func (db *DB) Explain(st sqlast.Statement) (out string, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return "", err
	}
	return renderCompiled(cs, nil), nil
}

// JoinSteps returns, for tests and experiment reports, the number of
// FROM tables in each SELECT of the statement (the paper's join-count
// metric: tables minus one per SELECT, plus subselect joins).
func JoinSteps(st sqlast.Statement) int {
	n := 0
	var countSelect func(s *sqlast.Select)
	var countExpr func(e sqlast.Expr)
	countExpr = func(e sqlast.Expr) {
		switch x := e.(type) {
		case *sqlast.Binary:
			countExpr(x.L)
			countExpr(x.R)
		case *sqlast.Not:
			countExpr(x.X)
		case *sqlast.Between:
			countExpr(x.X)
			countExpr(x.Lo)
			countExpr(x.Hi)
		case *sqlast.IsNull:
			countExpr(x.X)
		case *sqlast.Func:
			for _, a := range x.Args {
				countExpr(a)
			}
		case *sqlast.Exists:
			countSelect(x.Select)
		case *sqlast.Subquery:
			countSelect(x.Select)
		}
	}
	countSelect = func(s *sqlast.Select) {
		n += len(s.From)
		if s.Where != nil {
			countExpr(s.Where)
		}
	}
	switch s := st.(type) {
	case *sqlast.Select:
		countSelect(s)
	case *sqlast.Union:
		for _, sel := range s.Selects {
			countSelect(sel)
		}
	}
	return n
}

// MaxBranchJoins returns the largest per-SELECT join count of the
// statement: for a UNION it is the widest branch (each counted with
// its subselect joins), for a plain SELECT it equals JoinSteps. This
// is the metric behind the paper's SQL-splitting argument — splitting
// a query into UNION branches trades statement count for shorter join
// chains, so branches are compared individually.
func MaxBranchJoins(st sqlast.Statement) int {
	switch s := st.(type) {
	case *sqlast.Union:
		m := 0
		for _, sel := range s.Selects {
			if n := JoinSteps(sel); n > m {
				m = n
			}
		}
		return m
	default:
		return JoinSteps(st)
	}
}
