package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/native"
	"repro/internal/shred"
)

func setupEdge(t testing.TB) (*EdgeTranslator, *shred.EdgeStore, *native.Evaluator) {
	t.Helper()
	st, err := shred.NewEdge()
	if err != nil {
		t.Fatal(err)
	}
	doc := paperDoc(t)
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	return NewEdge(nil), st, native.New(doc)
}

func checkEdge(t *testing.T, tr *EdgeTranslator, st *shred.EdgeStore, ev *native.Evaluator, q string) {
	t.Helper()
	trans, err := tr.Translate(q)
	if err != nil {
		t.Fatalf("Translate(%q): %v", q, err)
	}
	res, err := st.DB.Run(trans.Stmt)
	if err != nil {
		t.Fatalf("Run(%q = %s): %v", q, trans.SQL, err)
	}
	got := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		got = append(got, r[0].I)
	}
	want, err := ev.ElementIDs(q)
	if err != nil {
		t.Fatalf("oracle(%q): %v", q, err)
	}
	want = mapTextToParent(ev, q, want)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\n got %v\nwant %v\nSQL: %s", q, got, want, trans.SQL)
	}
}

func TestEdgeEndToEndAgainstOracle(t *testing.T) {
	tr, st, ev := setupEdge(t)
	queries := []string{
		"/A",
		"/A/B",
		"/A/B/C",
		"//F",
		"/A//F",
		"//G//G",
		"/A/*",
		"/A/B/*",
		"//C/*/F",
		"/A[@x=3]/B/C//F",
		"/A[@x=4]/B",
		"/A[@x]/B",
		"//F[. = 2]",
		"//F[text() = 2]",
		"/A/B[C/E/F=2]",
		"/A/B[C]",
		"/A/B[not(C)]",
		"/A/B[C and G]",
		"/A/B[C or G]",
		"//F/parent::E",
		"//F/ancestor::B",
		"//F/parent::E/ancestor::B",
		"//F/ancestor-or-self::F",
		"//G/ancestor::G",
		"/A/B/C/following-sibling::G",
		"//G/preceding-sibling::C",
		"//D/following::F",
		"//F/preceding::D",
		"//F[parent::E]",
		"//F[parent::E or ancestor::G]",
		"//D[parent::*/parent::B]",
		"/A/B[C/*]",
		"/A/B/C/D/text()",
		"/A/@x",
		"//D[@x]",
		"//D[@x='4']",
		"//E[count(F)=2]",
		"/A/B/C[2]",
		"/A/B/C[position()=1]",
		"//F[. * 2 = 4]",
		"//E[F = F]",
		"/A/B/C | /A/B/G",
		"//*[@x]",
		"//*",
	}
	for _, q := range queries {
		checkEdge(t, tr, st, ev, q)
	}
}

func TestEdgeSQLShape(t *testing.T) {
	tr, _, _ := setupEdge(t)
	// A forward PPF is one edge relation joined with paths.
	trans, err := tr.Translate("/A/B/C//F")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 1 {
		t.Errorf("selects = %d", trans.Selects)
	}
	if trans.Joins != 2 { // e1 + paths
		t.Errorf("joins = %d, SQL: %s", trans.Joins, trans.SQL)
	}
	if !strings.Contains(trans.SQL, "REGEXP_LIKE(e1_paths.path, '^/A/B/C/(.+/)?F$')") {
		t.Errorf("missing regex: %s", trans.SQL)
	}
	// No SQL splitting even for wildcards.
	trans, err = tr.Translate("/A/B/*")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 1 {
		t.Errorf("wildcard should not split on the Edge mapping: %s", trans.SQL)
	}
	// Attribute predicates go through the attr relation.
	trans, err = tr.Translate("//D[@x='4']")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "attr") || !strings.Contains(trans.SQL, "aname = 'x'") {
		t.Errorf("attribute predicate shape wrong: %s", trans.SQL)
	}
	// Structural joins are self-joins of the edge relation.
	trans, err = tr.Translate("//F/ancestor::B")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "e1.dewey_pos BETWEEN e2.dewey_pos AND e2.dewey_pos || X'FF'") {
		t.Errorf("ancestor self-join shape wrong: %s", trans.SQL)
	}
}

func TestEdgeErrors(t *testing.T) {
	tr, _, _ := setupEdge(t)
	for _, q := range []string{
		"//F[last()]",
		"/A/B/*[1]",
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("Translate(%q) should fail", q)
		}
	}
}
