// Command xload shreds an XML document into the schema-aware
// relational mapping and reports the resulting storage layout: one
// relation per element definition, row counts, the U-P/F-P/I-P
// schema-graph marking of Section 4.5, and the distinct root-to-node
// path count.
//
// Usage:
//
//	xload [-db DIR] [-schema site.schema [-xsd]] doc.xml
//
// Without -schema, the schema graph is inferred from the document.
// With -db DIR the document is committed durably into the persistent
// store at DIR (created on first use); repeated xload runs against the
// same directory accumulate documents, and xsql -db DIR queries them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func main() {
	dbDir := flag.String("db", "", "directory of a persistent store to open or create (empty = in-memory)")
	schemaPath := flag.String("schema", "", "schema file (compact DSL, or XSD with -xsd); inferred when omitted")
	useXSD := flag.Bool("xsd", false, "parse the schema file as XML Schema")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xload [-db DIR] [-schema FILE [-xsd]] doc.xml")
		os.Exit(2)
	}
	if err := run(*dbDir, *schemaPath, *useXSD, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "xload:", err)
		os.Exit(1)
	}
}

func run(dbDir, schemaPath string, useXSD bool, docPath string) (err error) {
	f, err := os.Open(docPath)
	if err != nil {
		return err
	}
	doc, err := xmltree.Parse(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	var s *schema.Schema
	if schemaPath != "" {
		data, err := os.ReadFile(schemaPath)
		if err != nil {
			return err
		}
		if useXSD {
			s, err = schema.ParseXSD(strings.NewReader(string(data)))
		} else {
			s, err = schema.ParseCompact(string(data))
		}
		if err != nil {
			return err
		}
	} else {
		if s, err = schema.Infer(doc); err != nil {
			return err
		}
		fmt.Println("schema: inferred from document")
	}

	db := engine.NewDB()
	if dbDir != "" {
		if db, err = engine.Open(dbDir); err != nil {
			return err
		}
		defer func() {
			if cerr := db.Close(); err == nil {
				err = cerr
			}
		}()
	}
	st, err := shred.NewSchemaAwareDB(db, s)
	if err != nil {
		return err
	}
	docID, err := st.Load(doc)
	if err != nil {
		return err
	}

	fmt.Printf("document %d: %d nodes (%d elements)\n", docID, doc.Len(), doc.Elements())
	fmt.Printf("distinct root-to-node paths: %d\n\n", st.PathCount())
	fmt.Printf("%-24s %-4s %8s  %s\n", "relation", "mark", "rows", "root paths")
	for _, n := range s.Nodes() {
		rel := shred.RelName(n.Name)
		rows := 0
		if t := st.DB.Table(rel); t != nil {
			rows = t.Stats().Rows
		}
		paths := ""
		switch {
		case n.Mark.String() == "I-P":
			paths = "(unbounded)"
		case len(n.RootPaths) == 1:
			paths = n.RootPaths[0]
		default:
			paths = fmt.Sprintf("%d paths", len(n.RootPaths))
		}
		fmt.Printf("%-24s %-4s %8d  %s\n", rel, n.Mark, rows, paths)
	}
	return nil
}
