// A miniature of the engine's OpStats: the mutators here are the only
// sanctioned write sites.
package engine

type OpStats struct {
	loops   int64
	rowsOut int64
}

func (s *OpStats) open() { s.loops++ }

func (s *OpStats) rowOut() { s.rowsOut++ }

func (s *OpStats) merge(o *OpStats) {
	s.loops += o.loops
	s.rowsOut += o.rowsOut
}

func (s *OpStats) Loops() int64 { return s.loops }
