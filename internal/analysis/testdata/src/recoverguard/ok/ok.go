// Outside internal/engine the analyzer is silent: other packages own
// their own panic discipline.
package ok

func cleanup() {
	defer func() {
		_ = recover()
	}()
}
