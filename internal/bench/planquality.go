package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/shred"
)

// PlanQuality measures the synopsis-costed planner against the
// heuristic-only baseline on the Figure 3 query set (schema-aware PPF
// translation). For every query it reports both planners' join orders
// and access paths, the synopsis plan's worst per-operator q-error
// after the adaptive feedback loop settles, the number of adaptive
// re-plans it took, and each plan's observed intermediate result sizes
// (the Selinger objective the join-order argument is about). Two
// claims are asserted, returned as errors when violated: the settled
// synopsis plan's worst q-error stays within maxPlanQualityQError, and
// the synopsis plan never does more operator work than the baseline
// beyond noise (join-order non-regression).
const (
	// maxPlanQualityQError is the quality bar on the settled plan's
	// per-operator estimates; it matches the engine's re-plan threshold,
	// so any worse estimate would have been corrected from observation.
	maxPlanQualityQError = 2.0
	// planQualitySettleRuns bounds the warm-up executions granted to the
	// feedback loop: first run seeds feedback, and the engine allows at
	// most two adaptive re-plans per statement.
	planQualitySettleRuns = 4
	// workSlackFactor/workSlackRows absorb noise when comparing work
	// totals (near-tied orders, dedup-sensitive row counts). A genuinely
	// wrong join order shows up as a multiple, not a percentage, so the
	// slack still catches what the assertion is about.
	workSlackFactor = 1.1
	workSlackRows   = 16
)

// PlanQuality runs the plan-quality experiment over the given
// workloads (the Figure 3 pair).
func PlanQuality(workloads []*Workload, o Opts) (*Table, error) {
	t := &Table{
		Title:   "Plan quality: synopsis-costed planning vs heuristic baseline (PPF translation)",
		Headers: []string{"query", "baseline order", "synopsis order", "changed", "max q", "replans", "base work", "syn work"},
	}
	for _, w := range workloads {
		// The baseline loads the same document into a fresh store whose
		// planner is pinned to the pre-synopsis heuristics; sharing the
		// synopsis DB would share its plan cache (keys are SQL text).
		base, err := shred.NewSchemaAware(w.Schema)
		if err != nil {
			return nil, err
		}
		if _, err := base.Load(w.Doc); err != nil {
			return nil, err
		}
		base.DB.SetHeuristicOnlyPlanning(true)
		for _, q := range w.Queries {
			row, err := w.planQualityRow(base.DB, q, o)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func (w *Workload) planQualityRow(baseDB *engine.DB, q Query, o Opts) ([]string, error) {
	tr, err := w.ppf.Translate(q.XPath)
	if err != nil {
		return nil, fmt.Errorf("%s: translate: %w", q.ID, err)
	}
	opts := engine.ExecOptions{
		Parallelism:    w.Parallelism,
		MaxMemoryBytes: w.MaxMemoryBytes,
		MaxRows:        w.MaxRows,
		BatchSize:      w.BatchSize,
	}

	baseReports, baseRes, err := baseDB.AnalyzeReport(tr.Stmt, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: baseline: %w", q.ID, err)
	}
	baseShape, err := baseDB.PlanShape(tr.Stmt)
	if err != nil {
		return nil, fmt.Errorf("%s: baseline shape: %w", q.ID, err)
	}

	// Let the synopsis DB's adaptive loop settle: the first run seeds
	// feedback, later runs re-plan on cache hits until the worst
	// q-error is within threshold or the re-plan budget is spent.
	db := w.Aware.DB
	replans0 := db.AdaptiveReplans()
	var synReports []engine.OpReport
	var synRes *engine.Result
	maxQ := 0.0
	for i := 0; i < planQualitySettleRuns; i++ {
		synReports, synRes, err = db.AnalyzeReport(tr.Stmt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: synopsis: %w", q.ID, err)
		}
		if maxQ = maxQError(synReports); maxQ <= maxPlanQualityQError {
			break
		}
	}
	replans := db.AdaptiveReplans() - replans0
	synShape, err := db.PlanShape(tr.Stmt)
	if err != nil {
		return nil, fmt.Errorf("%s: synopsis shape: %w", q.ID, err)
	}

	if o.Verify {
		if err := sameIDSet(baseRes, synRes); err != nil {
			return nil, fmt.Errorf("%s: baseline and synopsis plans disagree: %w", q.ID, err)
		}
	}
	if maxQ > maxPlanQualityQError {
		return nil, fmt.Errorf("%s: settled plan's worst per-operator q-error %.2f exceeds %.1f", q.ID, maxQ, maxPlanQualityQError)
	}
	baseWork, synWork := totalRows(baseReports), totalRows(synReports)
	if float64(synWork) > float64(baseWork)*workSlackFactor+workSlackRows {
		return nil, fmt.Errorf("%s: synopsis plan regressed: %d operator rows vs baseline %d", q.ID, synWork, baseWork)
	}

	baseOrder, synOrder := orderString(baseShape), orderString(synShape)
	changed := baseOrder != synOrder
	o.emitPlanQuality(w, q.ID, "heuristic", baseOrder, 0, 0, baseWork)
	o.emitPlanQuality(w, q.ID, "synopsis", synOrder, maxQ, replans, synWork)
	return []string{
		q.ID, baseOrder, synOrder, fmt.Sprint(changed),
		fmt.Sprintf("%.2f", maxQ), fmt.Sprint(replans),
		fmt.Sprint(baseWork), fmt.Sprint(synWork),
	}, nil
}

// maxQError returns the worst per-operator q-error of a report set,
// ignoring operators that carry no estimate or never ran.
func maxQError(rs []engine.OpReport) float64 {
	worst := 0.0
	for _, r := range rs {
		if r.HasEst && r.Loops > 0 && r.QError > worst {
			worst = r.QError
		}
	}
	return worst
}

// totalRows sums the plan's intermediate result sizes: each join
// step's post-filter output (its filter's rows when it has one, the
// scan's otherwise), across every select pipeline including subplans
// and union branches. This is the Selinger objective the join-order
// comparison is about, measured on observed rows; it deliberately
// excludes scan inputs (a full scan of the small paths relation is the
// point of path-synopsis planning, not work to be charged against it).
// Reports arrive in render order, so a step's filter node directly
// follows its scan.
func totalRows(rs []engine.OpReport) int64 {
	var n int64
	for i, r := range rs {
		if r.Kind != "scan" {
			continue
		}
		rows := r.RowsOut
		if i+1 < len(rs) && rs[i+1].Kind == "filter" {
			rows = rs[i+1].RowsOut
		}
		n += rows
	}
	return n
}

// orderString renders a plan's join orders and access paths, one
// "alias(access-kind)" per step, UNION branches separated by " | ".
func orderString(sh *engine.StmtShape) string {
	sel := func(s *engine.SelectShape) string {
		parts := make([]string, len(s.Steps))
		for i, st := range s.Steps {
			parts[i] = st.Alias + "(" + st.Access.Kind + ")"
		}
		return strings.Join(parts, ">")
	}
	if sh.Select != nil {
		return sel(sh.Select)
	}
	parts := make([]string, len(sh.Union.Branches))
	for i, b := range sh.Union.Branches {
		parts[i] = sel(b)
	}
	return strings.Join(parts, " | ")
}

// sameIDSet checks two results select the same id set (join order may
// legally change row order only when no ORDER BY pins it, so the
// comparison is order-insensitive).
func sameIDSet(a, b *engine.Result) error {
	ids := func(r *engine.Result) []int64 {
		out := make([]int64, len(r.Rows))
		for i, row := range r.Rows {
			out[i] = row[0].I
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	ai, bi := ids(a), ids(b)
	if !equalIDs(ai, bi) {
		return fmt.Errorf("%d vs %d rows (first diff: %s)", len(ai), len(bi), firstDiff(ai, bi))
	}
	return nil
}

// emitPlanQuality forwards one per-plan measurement to the Opts sink.
func (o Opts) emitPlanQuality(w *Workload, queryID, system, order string, maxQ float64, replans uint64, work int64) {
	if o.Sink == nil {
		return
	}
	o.Sink(Record{
		Experiment: "planquality",
		Workload:   w.Name,
		QueryID:    queryID,
		System:     system,
		Parallel:   w.Parallelism,
		JoinOrder:  order,
		MaxQError:  maxQ,
		Replans:    replans,
		WorkRows:   work,
	})
}

// PlanQualityChangedJoinHeavy reports whether any of the given query
// ids plans differently under the synopsis planner — the experiment's
// join-order-improvement witness, used by tests and the smoke target.
func PlanQualityChangedJoinHeavy(t *Table, ids ...string) bool {
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, r := range t.Rows {
		if len(r) >= 4 && want[r[0]] && r[3] == "true" {
			return true
		}
	}
	return false
}
