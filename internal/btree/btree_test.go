package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Pairs() != 0 {
		t.Fatal("new tree not empty")
	}
	if got := tr.Get([]byte("x")); got != nil {
		t.Fatalf("Get on empty tree = %v", got)
	}
	if tr.Min() != nil {
		t.Fatal("Min on empty tree should be nil")
	}
	n := 0
	tr.ScanAll(func([]byte, int64) bool { n++; return true })
	if n != 0 {
		t.Fatal("ScanAll on empty tree visited entries")
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := New()
	tr.Insert([]byte("b"), 2)
	tr.Insert([]byte("a"), 1)
	tr.Insert([]byte("c"), 3)
	tr.Insert([]byte("a"), 10)
	tr.Insert([]byte("a"), 1) // duplicate pair, ignored
	if tr.Len() != 3 || tr.Pairs() != 4 {
		t.Fatalf("Len=%d Pairs=%d, want 3, 4", tr.Len(), tr.Pairs())
	}
	if got := tr.Get([]byte("a")); len(got) != 2 {
		t.Fatalf("Get(a) = %v", got)
	}
	if got := tr.Get([]byte("zz")); got != nil {
		t.Fatalf("Get(zz) = %v", got)
	}
	if !bytes.Equal(tr.Min(), []byte("a")) {
		t.Fatalf("Min = %q", tr.Min())
	}
}

func TestInsertManySplitsAndScan(t *testing.T) {
	tr := New()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Insert([]byte(fmt.Sprintf("key%06d", i)), int64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() == 0 {
		t.Fatal("tree with 10k keys should have split")
	}
	var got []int64
	prev := []byte(nil)
	tr.ScanAll(func(k []byte, v int64) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		got = append(got, v)
		return true
	})
	if len(got) != n {
		t.Fatalf("scan visited %d values", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("value %d at position %d", v, i)
		}
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), int64(i))
	}
	var got []int64
	tr.Scan([]byte("k010"), []byte("k020"), func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan [k010,k020) = %v", got)
	}
	// Bounds that fall between keys.
	got = got[:0]
	tr.Scan([]byte("k0105"), []byte("k012z"), func(_ []byte, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("between-key bounds scan = %v", got)
	}
	// Early stop.
	n := 0
	tr.Scan(nil, nil, func([]byte, int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty range.
	n = 0
	tr.Scan([]byte("k500"), []byte("k600"), func([]byte, int64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Insert([]byte("a"), 1)
	tr.Insert([]byte("a"), 2)
	tr.Insert([]byte("b"), 3)
	if !tr.Delete([]byte("a"), 1) {
		t.Fatal("Delete existing pair returned false")
	}
	if tr.Delete([]byte("a"), 1) {
		t.Fatal("Delete twice returned true")
	}
	if tr.Delete([]byte("zz"), 9) {
		t.Fatal("Delete missing key returned true")
	}
	if got := tr.Get([]byte("a")); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Get(a) after delete = %v", got)
	}
	if !tr.Delete([]byte("a"), 2) || tr.Len() != 1 || tr.Pairs() != 1 {
		t.Fatalf("after deleting all of a: Len=%d Pairs=%d", tr.Len(), tr.Pairs())
	}
}

// TestQuickAgainstModel compares random operation sequences against a
// map-based model.
func TestQuickAgainstModel(t *testing.T) {
	type op struct {
		Del bool
		Key uint16
		Val int64
	}
	f := func(ops []op) bool {
		tr := New()
		model := map[string]map[int64]bool{}
		for _, o := range ops {
			k := fmt.Sprintf("%04x", o.Key%512)
			v := o.Val % 8
			if o.Del {
				want := model[k][v]
				got := tr.Delete([]byte(k), v)
				if got != want {
					return false
				}
				if want {
					delete(model[k], v)
					if len(model[k]) == 0 {
						delete(model, k)
					}
				}
			} else {
				tr.Insert([]byte(k), v)
				if model[k] == nil {
					model[k] = map[int64]bool{}
				}
				model[k][v] = true
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		// Full scan must equal the sorted model.
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		i := 0
		ok := true
		seen := map[string]map[int64]bool{}
		tr.ScanAll(func(k []byte, v int64) bool {
			ks := string(k)
			if seen[ks] == nil {
				if i >= len(wantKeys) || wantKeys[i] != ks {
					ok = false
					return false
				}
				i++
				seen[ks] = map[int64]bool{}
			}
			seen[ks][v] = true
			return true
		})
		if !ok || i != len(wantKeys) {
			return false
		}
		for k, vs := range model {
			if len(seen[k]) != len(vs) {
				return false
			}
			for v := range vs {
				if !seen[k][v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyAliasingSafe(t *testing.T) {
	// Insert must copy the key: mutating the caller's buffer afterwards
	// must not corrupt the tree.
	tr := New()
	buf := []byte("abc")
	tr.Insert(buf, 1)
	buf[0] = 'z'
	if got := tr.Get([]byte("abc")); len(got) != 1 {
		t.Fatal("tree key corrupted by caller buffer mutation")
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New()
	key := make([]byte, 8)
	for i := 0; i < b.N; i++ {
		for j := range key {
			key[j] = byte(i >> (8 * (7 - j)))
		}
		tr.Insert(key, int64(i))
	}
}

func BenchmarkScan1000(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Insert([]byte(fmt.Sprintf("key%08d", i)), int64(i))
	}
	lo, hi := []byte("key00050000"), []byte("key00051000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Scan(lo, hi, func([]byte, int64) bool { n++; return true })
	}
}
