// Command xgen writes a generated benchmark document (and optionally
// its schema) to files, so the other tools can be used against the
// exact workloads the experiments run on.
//
//	xgen -workload xmark|dblp [-scale 0.1] [-seed 42] \
//	     [-out doc.xml] [-schema-out doc.schema]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dblp"
	"repro/internal/schema"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func main() {
	workload := flag.String("workload", "xmark", "xmark or dblp")
	scale := flag.Float64("scale", 0.1, "workload scale (1 = the paper's small document)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "XML output path (default stdout)")
	schemaOut := flag.String("schema-out", "", "also write the schema in the compact DSL")
	flag.Parse()

	if err := run(*workload, *scale, *seed, *out, *schemaOut); err != nil {
		fmt.Fprintln(os.Stderr, "xgen:", err)
		os.Exit(1)
	}
}

func run(workload string, scale float64, seed int64, out, schemaOut string) error {
	var doc *xmltree.Document
	var s *schema.Schema
	var err error
	switch workload {
	case "xmark":
		doc, err = xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
		s = xmark.Schema()
	case "dblp":
		doc, err = dblp.Generate(dblp.Config{Scale: scale, Seed: seed})
		s = dblp.Schema()
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	if err != nil {
		return err
	}
	var f *os.File
	w := os.Stdout
	if out != "" {
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	err = doc.WriteXML(bw)
	if err == nil {
		err = bw.Flush()
	}
	if f != nil {
		// A failed close loses buffered writes: it is a write error.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if schemaOut != "" {
		if err := os.WriteFile(schemaOut, []byte(s.WriteCompact()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "xgen: %d nodes (%d elements)\n", doc.Len(), doc.Elements())
	return nil
}
