package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// The resource governor: every statement runs under an accountant
// that tracks the bytes and rows it materializes (result buffers,
// ORDER BY keys, DISTINCT sets, per-morsel output buffers, exec-time
// hash-join build sides) against the per-statement budgets in
// ExecOptions. Budgets are enforced at the materialization sites, so
// a runaway query fails with a typed error at the first morsel that
// detects the overrun instead of growing until the process dies.
// With no budgets set the accountant still runs, maintaining the
// peak-memory high-water mark reported by Result.PeakMemBytes and
// DB.PeakStatementMemory.

// ErrMemoryBudget reports a statement that exceeded
// ExecOptions.MaxMemoryBytes.
var ErrMemoryBudget = errors.New("engine: statement memory budget exceeded")

// ErrRowBudget reports a statement that exceeded ExecOptions.MaxRows.
var ErrRowBudget = errors.New("engine: statement row budget exceeded")

// Approximate per-object overheads used by the accountant. They are
// estimates of runtime footprint (struct headers, map buckets), not
// exact allocator measurements; budgets are a defense against
// runaway statements, not a precise meter.
const (
	valueStructBytes = 48 // Value struct: kind + int64 + float64 + string/slice headers
	sliceHeaderBytes = 24
	mapEntryBytes    = 48 // amortized bucket + string header per map entry
)

// accountant tracks one statement's materialized bytes and rows.
// All counters are atomics: in parallel execution every morsel
// worker charges the same accountant.
type accountant struct {
	maxBytes int64 // 0 = unlimited
	maxRows  int64 // 0 = unlimited
	bytes    atomic.Int64
	rows     atomic.Int64
	peak     atomic.Int64
}

func newAccountant(maxBytes, maxRows int64) *accountant {
	return &accountant{maxBytes: maxBytes, maxRows: maxRows}
}

// growBytes charges delta bytes, updates the peak high-water mark,
// and reports ErrMemoryBudget when the budget is exceeded.
func (a *accountant) growBytes(delta int64) error {
	if a == nil {
		return nil
	}
	n := a.bytes.Add(delta)
	for {
		p := a.peak.Load()
		if n <= p || a.peak.CompareAndSwap(p, n) {
			break
		}
	}
	if a.maxBytes > 0 && n > a.maxBytes {
		return fmt.Errorf("%w: %d bytes materialized, budget %d", ErrMemoryBudget, n, a.maxBytes)
	}
	return nil
}

// wouldExceed reports ErrMemoryBudget if charging extra bytes on top
// of the current usage would overrun the budget, without charging.
// Long builds call it periodically so an overrun aborts mid-build
// instead of after materializing the whole structure.
func (a *accountant) wouldExceed(extra int64) error {
	if a == nil || a.maxBytes == 0 {
		return nil
	}
	if n := a.bytes.Load() + extra; n > a.maxBytes {
		return fmt.Errorf("%w: %d bytes materialized, budget %d", ErrMemoryBudget, n, a.maxBytes)
	}
	return nil
}

// addRow charges one materialized result row of the given footprint.
func (a *accountant) addRow(rowBytes int64) error {
	if a == nil {
		return nil
	}
	n := a.rows.Add(1)
	if a.maxRows > 0 && n > a.maxRows {
		return fmt.Errorf("%w: %d rows materialized, budget %d", ErrRowBudget, n, a.maxRows)
	}
	return a.growBytes(rowBytes)
}

// addRows charges n materialized rows totaling rowBytes at once —
// the batch-flush form of addRow. The batched executors only defer
// charges into an addRows flush when limited() is false (both checks
// are then no-ops), so budget errors keep firing at the exact row;
// the flush maintains the peak high-water mark, which batching
// preserves because accounted bytes only grow during collection.
func (a *accountant) addRows(n, rowBytes int64) error {
	if a == nil || (n == 0 && rowBytes == 0) {
		return nil
	}
	total := a.rows.Add(n)
	if a.maxRows > 0 && total > a.maxRows {
		return fmt.Errorf("%w: %d rows materialized, budget %d", ErrRowBudget, total, a.maxRows)
	}
	return a.growBytes(rowBytes)
}

// limited reports whether any budget is set. Budgeted statements
// charge per row so the typed errors trigger at the same logical row
// at every batch size.
func (a *accountant) limited() bool {
	return a != nil && (a.maxBytes > 0 || a.maxRows > 0)
}

// peakBytes returns the statement's high-water mark of accounted
// bytes.
func (a *accountant) peakBytes() int64 {
	if a == nil {
		return 0
	}
	return a.peak.Load()
}

// valueMemBytes estimates the runtime footprint of one value.
func valueMemBytes(v Value) int64 {
	return valueStructBytes + int64(len(v.S)) + int64(len(v.B))
}

// rowMemBytes estimates the footprint of a materialized row plus its
// ORDER BY key vector.
func rowMemBytes(row, keys []Value) int64 {
	n := int64(sliceHeaderBytes)
	for _, v := range row {
		n += valueMemBytes(v)
	}
	for _, v := range keys {
		n += valueMemBytes(v)
	}
	return n
}
