package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRecoverGuard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RecoverGuard,
		"recoverguard/internal/engine", "recoverguard/ok")
}

// The real engine must satisfy its own invariant: guardPanics in
// guard.go is the only recover() site.
func TestRecoverGuardSanctionsGuardPanics(t *testing.T) {
	expectClean(t, analysis.RecoverGuard, "repro/internal/engine")
}
