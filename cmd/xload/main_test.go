package main

import (
	"path/filepath"
	"testing"
)

func td(name string) string { return filepath.Join("..", "..", "testdata", name) }

func TestRunWithSchema(t *testing.T) {
	if err := run(td("figure1.schema"), false, td("figure1.xml")); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithXSD(t *testing.T) {
	if err := run(td("figure1.xsd"), true, td("figure1.xml")); err != nil {
		t.Fatal(err)
	}
}

func TestRunInferred(t *testing.T) {
	if err := run("", false, td("figure1.xml")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, "nosuch.xml"); err == nil {
		t.Error("missing document should fail")
	}
	if err := run("nosuch.schema", false, td("figure1.xml")); err == nil {
		t.Error("missing schema should fail")
	}
	if err := run(td("figure1.xml"), false, td("figure1.xml")); err == nil {
		t.Error("document as schema should fail to parse")
	}
}
