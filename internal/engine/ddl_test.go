package engine

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
)

func TestDDLAndInsertViaSQL(t *testing.T) {
	db := NewDB()
	mustExec := func(sql string) *Result {
		t.Helper()
		res, err := db.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec("CREATE TABLE part (id INT, name TEXT, weight FLOAT, tag BYTES)")
	mustExec("CREATE INDEX part_pk ON part (id)")
	mustExec("INSERT INTO part VALUES (1, 'bolt', 1.5, X'AB'), (2, 'nut', 2, NULL)")
	mustExec("INSERT INTO part VALUES (3, 'wash' || 'er', 1 + 2, X'00FF')")

	res := mustExec("SELECT p.id, p.name, p.weight FROM part p WHERE p.id >= 2 ORDER BY p.id")
	if len(res.Rows) != 2 || res.Rows[0][1].S != "nut" || res.Rows[1][1].S != "washer" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][2].F != 3 {
		t.Fatalf("arith literal = %v", res.Rows[1][2])
	}
	// Index used.
	res = mustExec("SELECT p.name FROM part p WHERE p.id = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "bolt" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Status results.
	if got := mustExec("INSERT INTO part VALUES (4, 'pin', 0.1, NULL)"); !strings.Contains(got.Rows[0][0].S, "1 row") {
		t.Fatalf("status = %v", got.Rows)
	}
}

func TestDDLErrors(t *testing.T) {
	db := NewDB()
	for _, sql := range []string{
		"CREATE TABLE t (a WIBBLE)",
		"CREATE INDEX i ON missing (a)",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE",
		"CREATE INDEX i ON t",
		"INSERT INTO t (1)",
		"CREATE VIEW v",
	} {
		if _, err := db.ExecSQL(sql); err == nil {
			t.Errorf("ExecSQL(%q) should fail", sql)
		}
	}
	if _, err := db.ExecSQL("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("INSERT INTO t VALUES (a)"); err == nil {
		t.Error("non-literal INSERT should fail")
	}
	if _, err := db.ExecSQL("INSERT INTO t VALUES ('x')"); err == nil {
		t.Error("type-mismatched INSERT should fail")
	}
}

func TestDDLRoundTripRendering(t *testing.T) {
	for _, sql := range []string{
		"CREATE TABLE t (a INT, b TEXT)",
		"CREATE INDEX ix ON t (a, b)",
		"INSERT INTO t VALUES (1, 'x'), (2, 'y')",
	} {
		st, err := sqlast.Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if got := st.String(); got != sql {
			t.Errorf("rendered %q, want %q", got, sql)
		}
	}
}
