package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestProtocolMutations is the mutation harness for the publication
// protocol analyzers: each protodefect package seeds one protocol
// violation (the defect classes a careless engine edit would
// introduce), and every one must be rejected by the owning analyzer —
// with a call-path witness where the defect spans call edges.
func TestProtocolMutations(t *testing.T) {
	cases := []struct {
		pkg      string
		analyzer string
		wantMsg  string // substring every matching diagnostic set must contain
		wantPath bool   // a " -> " call-path witness is required
	}{
		{"protodefect/afterpublish", "snapfreeze", "after it was published", false},
		{"protodefect/unguarded", "guardedby", "without mu held", false},
		{"protodefect/prefsync", "walorder", "without a preceding WAL commit", true},
		{"protodefect/lockdrop", "guardedby", "lock-free call path", true},
		{"protodefect/badann", "guardedby", "names no sibling sync.Mutex", false},
		{"protodefect/badann", "walorder", "malformed //walorder:replay", false},
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	loader.AddSrcDir(filepath.Join("testdata", "src"))

	for _, tc := range cases {
		t.Run(tc.pkg+"/"+tc.analyzer, func(t *testing.T) {
			a := analysis.ByName(tc.analyzer)
			if a == nil {
				t.Fatalf("no analyzer %q", tc.analyzer)
			}
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(tc.pkg)), tc.pkg)
			if err != nil {
				t.Fatalf("load %s: %v", tc.pkg, err)
			}
			diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("run %s: %v", tc.analyzer, err)
			}
			matched := false
			for _, d := range diags {
				if !strings.Contains(d.Message, tc.wantMsg) {
					continue
				}
				if tc.wantPath && !strings.Contains(d.Message, " -> ") {
					continue
				}
				matched = true
			}
			if !matched {
				t.Errorf("%s: defect not rejected: no %s diagnostic containing %q (path witness: %v); got %d diagnostics:",
					tc.pkg, tc.analyzer, tc.wantMsg, tc.wantPath, len(diags))
				for _, d := range diags {
					t.Errorf("  %s: %s", pkg.Fset.Position(d.Pos), d.Message)
				}
			}
		})
	}
}
