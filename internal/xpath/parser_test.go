package xpath

import (
	"strings"
	"testing"
)

// allBenchmarkQueries is the complete query set of the paper's
// evaluation: XPathMark Q1-Q24 subset, Q-A, and QD1-QD5.
var allBenchmarkQueries = []string{
	"/site/regions/*/item",
	"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword",
	"//keyword",
	"/descendant-or-self::listitem/descendant-or-self::keyword",
	"/site/regions/*/item[parent::namerica or parent::samerica]",
	"//keyword/ancestor::listitem",
	"//keyword/ancestor-or-self::mail",
	"/site/open_auctions/open_auction[@id='open_auction0']/bidder/preceding-sibling::bidder",
	"/site/regions/*/item[@id='item0']/following::item",
	"/site/open_auctions/open_auction/bidder[personref/@person='person1']/preceding::bidder[personref/@person='person0']",
	"//item[@featured='yes']",
	"//*[@id]",
	"/site/regions/*/item[@id='item0']/description//keyword/text()",
	"/site/regions/namerica/item | /site/regions/samerica/item",
	"/site/people/person[address and (phone or homepage)]",
	"/site/people/person[not(homepage)]",
	"/site/open_auctions/open_auction[bidder/date = interval/start]",
	"//inproceedings/title[preceding-sibling::author = 'Harold G. Longbotham']",
	"/dblp/inproceedings[year>=1994]//sup",
	"/dblp/inproceedings/title/sup",
	"//i[parent::*/parent::sub/ancestor::article]",
	"/dblp/inproceedings[author=/dblp/book/author]/title",
}

func TestParseAllBenchmarkQueries(t *testing.T) {
	for _, q := range allBenchmarkQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseSimplePath(t *testing.T) {
	p, err := ParsePath("/A/B/C")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Absolute || len(p.Steps) != 3 {
		t.Fatalf("parsed %+v", p)
	}
	for i, name := range []string{"A", "B", "C"} {
		s := p.Steps[i]
		if s.Axis != Child || s.Name != name || s.Test != NameTest {
			t.Errorf("step %d = %+v", i, s)
		}
	}
}

func TestParseDoubleSlash(t *testing.T) {
	p, err := ParsePath("//keyword")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want 2 (descendant-or-self::node() + keyword)", len(p.Steps))
	}
	if p.Steps[0].Axis != DescendantOrSelf || p.Steps[0].Test != AnyKindTest {
		t.Errorf("first step = %+v", p.Steps[0])
	}
	// Middle //.
	p, err = ParsePath("/A//F")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 || p.Steps[1].Axis != DescendantOrSelf {
		t.Fatalf("middle // parsed wrong: %v", p)
	}
}

func TestParseAxesAndAbbreviations(t *testing.T) {
	p, err := ParsePath("../preceding-sibling::bidder/@person")
	if err != nil {
		t.Fatal(err)
	}
	if p.Absolute {
		t.Error("relative path parsed as absolute")
	}
	if p.Steps[0].Axis != Parent || p.Steps[0].Test != AnyKindTest {
		t.Errorf("'..' = %+v", p.Steps[0])
	}
	if p.Steps[1].Axis != PrecedingSibling || p.Steps[1].Name != "bidder" {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
	if p.Steps[2].Axis != Attribute || p.Steps[2].Name != "person" {
		t.Errorf("step 2 = %+v", p.Steps[2])
	}
	// '.' step.
	p, err = ParsePath("./keyword")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Axis != Self {
		t.Errorf("'.' = %+v", p.Steps[0])
	}
}

func TestParsePredicates(t *testing.T) {
	p, err := ParsePath("/site/people/person[address and (phone or homepage)]")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[2].Predicates[0]
	b, ok := pred.(*Binary)
	if !ok || b.Op != OpAnd {
		t.Fatalf("predicate = %v", pred)
	}
	if _, ok := b.L.(*Path); !ok {
		t.Errorf("left operand = %T", b.L)
	}
	or, ok := b.R.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("right operand = %v", b.R)
	}
}

func TestParseComparisonPredicate(t *testing.T) {
	p, err := ParsePath("/dblp/inproceedings[year>=1994]//sup")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[1].Predicates[0].(*Binary)
	if pred.Op != OpGe {
		t.Fatalf("op = %v", pred.Op)
	}
	if n, ok := pred.R.(*Number); !ok || n.Value != 1994 {
		t.Fatalf("rhs = %v", pred.R)
	}
}

func TestParseJoinPredicate(t *testing.T) {
	p, err := ParsePath("/site/open_auctions/open_auction[bidder/date = interval/start]")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[2].Predicates[0].(*Binary)
	if pred.Op != OpEq {
		t.Fatal("op wrong")
	}
	l, lok := pred.L.(*Path)
	r, rok := pred.R.(*Path)
	if !lok || !rok || l.Absolute || r.Absolute {
		t.Fatalf("operands: %v, %v", pred.L, pred.R)
	}
	if len(l.Steps) != 2 || l.Steps[1].Name != "date" {
		t.Fatalf("left path: %v", l)
	}
}

func TestParseAbsolutePathInPredicate(t *testing.T) {
	p, err := ParsePath("/dblp/inproceedings[author=/dblp/book/author]/title")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[1].Predicates[0].(*Binary)
	r := pred.R.(*Path)
	if !r.Absolute || len(r.Steps) != 3 {
		t.Fatalf("rhs path: %v", r)
	}
}

func TestParseUnion(t *testing.T) {
	e, err := Parse("/site/regions/namerica/item | /site/regions/samerica/item")
	if err != nil {
		t.Fatal(err)
	}
	u, ok := e.(*Union)
	if !ok || len(u.Paths) != 2 {
		t.Fatalf("union = %v", e)
	}
}

func TestParseNotAndFunctions(t *testing.T) {
	p, err := ParsePath("/site/people/person[not(homepage)]")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := p.Steps[2].Predicates[0].(*Call)
	if !ok || c.Name != "not" || len(c.Args) != 1 {
		t.Fatalf("predicate = %v", p.Steps[2].Predicates[0])
	}
	// position() and last().
	if _, err := ParsePath("/a/b[position()=2]"); err != nil {
		t.Errorf("position(): %v", err)
	}
	if _, err := ParsePath("/a/b[last()]"); err != nil {
		t.Errorf("last(): %v", err)
	}
	if _, err := ParsePath("/a/b[count(c)=2]"); err != nil {
		t.Errorf("count(): %v", err)
	}
}

func TestParsePositionalPredicate(t *testing.T) {
	p, err := ParsePath("/a/b[3]")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := p.Steps[1].Predicates[0].(*Number); !ok || n.Value != 3 {
		t.Fatalf("positional predicate = %v", p.Steps[1].Predicates[0])
	}
}

func TestParseTextNodeTest(t *testing.T) {
	p, err := ParsePath("/a/b/text()")
	if err != nil {
		t.Fatal(err)
	}
	last := p.Steps[2]
	if last.Test != TextTest || last.Axis != Child {
		t.Fatalf("text() step = %+v", last)
	}
}

func TestParseArithmetic(t *testing.T) {
	p, err := ParsePath("/a/b[price * 2 > 10 + 1]")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[1].Predicates[0].(*Binary)
	if pred.Op != OpGt {
		t.Fatalf("top op = %v", pred.Op)
	}
	mul := pred.L.(*Binary)
	if mul.Op != OpMul {
		t.Fatalf("left = %v", pred.L)
	}
	if _, ok := mul.L.(*Path); !ok {
		t.Fatalf("price operand = %T", mul.L)
	}
	add := pred.R.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("right = %v", pred.R)
	}
	// div and mod.
	if _, err := ParsePath("/a/b[c div 2 = 1 and c mod 2 = 0]"); err != nil {
		t.Errorf("div/mod: %v", err)
	}
	// Unary minus.
	if _, err := ParsePath("/a/b[c = -1]"); err != nil {
		t.Errorf("unary minus: %v", err)
	}
}

func TestStarDisambiguation(t *testing.T) {
	// '*' after '/' is a wildcard; after a path operand it's multiply.
	p, err := ParsePath("/a/*[b * 2 = 4]")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Steps[1].Wildcard() {
		t.Error("step * not a wildcard")
	}
	mul := p.Steps[1].Predicates[0].(*Binary).L.(*Binary)
	if mul.Op != OpMul {
		t.Error("inner * not multiply")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"/a/",
		"/a//",
		"/a[",
		"/a[b",
		"/a[]",
		"/a]'",
		"'lonely string'",
		"3",
		"/a/b[foo()]",
		"/a/b[not()]",
		"/a/b[not(a, b)]",
		"/a/b[position(1)]",
		"/unknown-axis::b",
		"/a/@text()",
		"/a/b[= 3]",
		"/a | 'x'",
		"/a/b[!b]",
		"/a/b['unterminated]",
		"/a/b[1 |]",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorsUnionOfNonPath(t *testing.T) {
	if _, err := Parse("/a/b | (1 = 1)"); err == nil {
		t.Error("union of non-path should fail")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, q := range allBenchmarkQueries {
		e, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		// Rendered form must reparse to the same rendered form.
		r1 := e.String()
		e2, err := Parse(r1)
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", r1, q, err)
			continue
		}
		if r2 := e2.String(); r1 != r2 {
			t.Errorf("unstable rendering: %q -> %q", r1, r2)
		}
	}
}

func TestAxisPredicates(t *testing.T) {
	if !Child.Forward() || !Attribute.Forward() || Parent.Forward() {
		t.Error("Forward classification wrong")
	}
	if !Parent.Backward() || !AncestorOrSelf.Backward() || Child.Backward() {
		t.Error("Backward classification wrong")
	}
	if !Following.Horizontal() || !PrecedingSibling.Horizontal() || Descendant.Horizontal() {
		t.Error("Horizontal classification wrong")
	}
	for a := Child; a <= Attribute; a++ {
		if a.String() == "" {
			t.Errorf("axis %d has no name", a)
		}
		if strings.Contains(a.String(), " ") {
			t.Errorf("axis name %q has spaces", a.String())
		}
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	a, err := Parse("/site/people/person[ address and ( phone or homepage ) ]")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("/site/people/person[address and(phone or homepage)]")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("whitespace changed parse: %q vs %q", a, b)
	}
}

func TestRootOnlyPath(t *testing.T) {
	p, err := ParsePath("/")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Absolute || len(p.Steps) != 0 {
		t.Fatalf("'/' = %+v", p)
	}
}
