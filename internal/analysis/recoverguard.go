package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// recoverGuardFile is the one engine file allowed to call recover():
// guardPanics in guard.go is the statement boundary that converts
// panics to *InternalError.
const recoverGuardFile = "guard.go"

// RecoverGuard forbids recover() in internal/engine outside the
// designated panic boundary. A stray recover() deeper in the executor
// would swallow a panic mid-statement, leaving shared state (plan
// cache entries, transient hash indexes, worker slots) half-updated
// while the statement appears to succeed; the engine's invariant is
// that panics unwind untouched to guardPanics, which converts them to
// a typed ErrInternal at the statement boundary and nowhere else.
var RecoverGuard = &Analyzer{
	Name: "recoverguard",
	Doc: "flag recover() in internal/engine outside guard.go; panics must unwind " +
		"to the guardPanics statement boundary, which alone converts them to ErrInternal",
	Run: runRecoverGuard,
}

func runRecoverGuard(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "recover" {
				return true
			}
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
				return true // a local function shadowing the builtin
			}
			if filepath.Base(pass.Fset.Position(call.Pos()).Filename) == recoverGuardFile {
				return true
			}
			pass.Reportf(call.Pos(),
				"recover() in internal/engine outside %s; let panics unwind to the guardPanics statement boundary",
				recoverGuardFile)
			return true
		})
	}
	return nil
}
