package sqlast

import (
	"reflect"
	"strings"
	"testing"
)

func TestRenderPaperTable3Example(t *testing.T) {
	// The shape of Table 3 (1): '/A[@x=3]/B/C//F'.
	s := &Select{
		Distinct: true,
		Cols: []SelectCol{
			{Expr: C("F", "id")},
			{Expr: C("F", "dewey_pos")},
			{Expr: C("F", "text")},
		},
		From: []TableRef{
			{Table: "A"}, {Table: "F"}, {Table: "paths", Alias: "F_paths"},
		},
		Where: And(
			Eq(C("F", "path_id"), C("F_paths", "id")),
			RegexpLike(C("F_paths", "path"), "^/A/B/C/(.+/)?F$"),
			&Between{
				X:  C("F", "dewey_pos"),
				Lo: C("A", "dewey_pos"),
				Hi: &Binary{Op: OpConcat, L: C("A", "dewey_pos"), R: Bytes([]byte{0xFF})},
			},
			Eq(C("A", "x"), Int(3)),
		),
		OrderBy: []OrderKey{{Expr: C("F", "dewey_pos")}},
	}
	got := Render(s)
	want := "SELECT DISTINCT F.id, F.dewey_pos, F.text " +
		"FROM A, F, paths F_paths " +
		"WHERE F.path_id = F_paths.id " +
		"AND REGEXP_LIKE(F_paths.path, '^/A/B/C/(.+/)?F$') " +
		"AND F.dewey_pos BETWEEN A.dewey_pos AND A.dewey_pos || X'FF' " +
		"AND A.x = 3 ORDER BY F.dewey_pos"
	if got != want {
		t.Errorf("Render:\n got %s\nwant %s", got, want)
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	statements := []string{
		"SELECT a FROM t",
		"SELECT DISTINCT a, b AS bb FROM t1, t2 x WHERE a = 1",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2 + 3 ORDER BY a DESC",
		"SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL",
		"SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
		"SELECT a FROM t WHERE REGEXP_LIKE(p, '^/A/.*$') AND q = 'it''s'",
		"SELECT a FROM t WHERE EXISTS (SELECT NULL FROM u WHERE u.id = t.id)",
		"SELECT a FROM t WHERE NOT EXISTS (SELECT NULL FROM u)",
		"SELECT a FROM t WHERE d > X'01FF' || X'FF'",
		"SELECT a FROM t WHERE (SELECT COUNT(*) FROM u WHERE u.p = t.id) = 2",
		"SELECT a FROM t1 UNION SELECT a FROM t2 ORDER BY a",
		"SELECT a FROM t WHERE a * 2 + 1 >= 7 AND b % 2 = 1 AND c / 2 = 3",
		"SELECT a FROM t WHERE a <> 4",
		"SELECT NULL FROM t",
		"SELECT a FROM t WHERE f = 1.5",
		"SELECT a FROM t WHERE a = -3",
	}
	for _, src := range statements {
		st, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		r1 := Render(st)
		st2, err := Parse(r1)
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", r1, src, err)
			continue
		}
		if r2 := Render(st2); r1 != r2 {
			t.Errorf("unstable render: %q -> %q", r1, r2)
		}
	}
}

func TestParseEquivalentTree(t *testing.T) {
	// Text must parse into the same tree the builders produce.
	got, err := Parse("SELECT DISTINCT F.id FROM F WHERE F.x = 3 AND F.p BETWEEN X'01' AND X'01' || X'FF'")
	if err != nil {
		t.Fatal(err)
	}
	want := &Select{
		Distinct: true,
		Cols:     []SelectCol{{Expr: C("F", "id")}},
		From:     []TableRef{{Table: "F"}},
		Where: And(
			Eq(C("F", "x"), Int(3)),
			&Between{
				X:  C("F", "p"),
				Lo: Bytes([]byte{0x01}),
				Hi: &Binary{Op: OpConcat, L: Bytes([]byte{0x01}), R: Bytes([]byte{0xFF})},
			},
		),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tree mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestPrecedenceParsing(t *testing.T) {
	st, err := Parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	w := st.(*Select).Where.(*Binary)
	if w.Op != OpOr {
		t.Fatalf("top op = %v, want OR", w.Op)
	}
	if r := w.R.(*Binary); r.Op != OpAnd {
		t.Fatalf("right op = %v, want AND", r.Op)
	}
	// Parens override.
	st, err = Parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	w = st.(*Select).Where.(*Binary)
	if w.Op != OpAnd {
		t.Fatalf("top op = %v, want AND", w.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a =",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IS 3",
		"SELECT a FROM t ORDER",
		"SELECT a FROM t extra junk here",
		"SELECT a FROM t WHERE 'unterminated",
		"SELECT a FROM t WHERE X'zz' = 1",
		"SELECT a FROM t WHERE EXISTS x",
		"SELECT a FROM t WHERE COUNT(a) = 1",
		"SELECT a FROM t WHERE f(",
		"SELECT a FROM t WHERE t. = 1",
		"UPDATE t SET a = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestHelpers(t *testing.T) {
	if And() != nil || Or() != nil {
		t.Error("empty And/Or should be nil")
	}
	e := Eq(C("t", "a"), Int(1))
	if And(nil, e, nil) != e {
		t.Error("And with single non-nil should return it")
	}
	both := And(e, e)
	if b, ok := both.(*Binary); !ok || b.Op != OpAnd {
		t.Error("And of two should be Binary AND")
	}
	if o, ok := Or(e, e).(*Binary); !ok || o.Op != OpOr {
		t.Error("Or of two should be Binary OR")
	}
	s := &Select{From: []TableRef{{Table: "t", Alias: "x"}}}
	if !s.HasTable("x") || s.HasTable("t") {
		t.Error("HasTable should use the effective name")
	}
	s.AddConjunct(nil)
	if s.Where != nil {
		t.Error("AddConjunct(nil) should be a no-op")
	}
	s.AddConjunct(e)
	s.AddConjunct(e)
	if _, ok := s.Where.(*Binary); !ok {
		t.Error("AddConjunct should conjoin")
	}
}

func TestRenderEdgeCases(t *testing.T) {
	// String escaping.
	if got := Str("it's").String(); got != "'it''s'" {
		t.Errorf("string literal = %s", got)
	}
	// Float rendering stays a float.
	if got := (&FloatLit{Value: 2}).String(); got != "2.0" {
		t.Errorf("float literal = %s", got)
	}
	// NOT of OR parenthesizes.
	e := &Not{X: Or(Eq(C("", "a"), Int(1)), Eq(C("", "b"), Int(2)))}
	if got := e.String(); got != "NOT (a = 1 OR b = 2)" {
		t.Errorf("NOT rendering = %s", got)
	}
	// Union ORDER BY.
	u := &Union{
		Selects: []*Select{
			{Cols: []SelectCol{{Expr: C("", "a")}}, From: []TableRef{{Table: "t"}}},
			{Cols: []SelectCol{{Expr: C("", "a")}}, From: []TableRef{{Table: "u"}}},
		},
		OrderBy: []OrderKey{{Expr: C("", "a")}},
	}
	if got := Render(u); got != "SELECT a FROM t UNION SELECT a FROM u ORDER BY a" {
		t.Errorf("union rendering = %s", got)
	}
	if !strings.Contains((&Exists{Select: u.Selects[0]}).String(), "EXISTS (SELECT") {
		t.Error("Exists rendering wrong")
	}
}
