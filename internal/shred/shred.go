// Package shred loads XML documents into relational storage under the
// three mappings the paper evaluates:
//
//   - the schema-aware mapping of Section 3 (one relation per element
//     definition, descriptor columns id/par/dewey_pos/path_id, text
//     and attributes inlined as columns, a shared 'paths' relation,
//     and the Section 3.1 indexes),
//   - a schema-oblivious Edge-like mapping (one central element
//     relation plus a separate attribute relation, per the paper's
//     footnote 3),
//   - the XPath Accelerator mapping (pre/post region encoding), used
//     by the baseline of Section 5.2.
package shred

import (
	"fmt"
	"strings"

	"repro/internal/dewey"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Descriptor column names shared by the mappings.
const (
	ColID    = "id"
	ColPar   = "par"
	ColDewey = "dewey_pos"
	ColPath  = "path_id"
	ColDoc   = "doc_id"
	ColText  = "text"
)

// PathsTable is the name of the shared root-to-node path relation.
const PathsTable = "paths"

// reserved are column names an attribute may not claim directly.
var reserved = map[string]bool{
	ColID: true, ColPar: true, ColDewey: true, ColPath: true,
	ColDoc: true, ColText: true,
}

// RelName maps an element name to its relation name in the
// schema-aware mapping. Element names that collide with the reserved
// 'paths' relation or contain non-identifier characters are prefixed
// and sanitized.
func RelName(element string) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, element)
	if name == PathsTable || name == "" || (name[0] >= '0' && name[0] <= '9') {
		name = "el_" + name
	}
	return name
}

// AttrCol maps an attribute name to its column name.
func AttrCol(attr string) string {
	name := RelName(attr)
	if reserved[name] {
		return "a_" + name
	}
	return name
}

// pathRegistry assigns stable ids to distinct root-to-node paths,
// filling the paths relation gradually during insertion as the paper
// describes in Section 3.1.
type pathRegistry struct {
	table *engine.Table
	ids   map[string]int64
	// fresh accumulates paths first seen during the current load, so a
	// failed batch commit can forget them (their rows never landed).
	fresh []string
}

// rollback removes the paths registered since the last commit; drop
// discards the rollback list after a successful commit.
func (r *pathRegistry) rollback() {
	for _, p := range r.fresh {
		delete(r.ids, p)
	}
	r.fresh = nil
}

func (r *pathRegistry) drop() { r.fresh = nil }

// newPathRegistry creates the paths relation, or attaches to an
// existing one (a reopened persistent store) by rebuilding the
// path→id map from its rows.
func newPathRegistry(db *engine.DB) (*pathRegistry, error) {
	if t := db.Table(PathsTable); t != nil {
		r := &pathRegistry{table: t, ids: map[string]int64{}}
		for _, row := range t.Rows() {
			r.ids[row[1].S] = row[0].I
		}
		return r, nil
	}
	t, err := db.CreateTable(PathsTable,
		engine.Column{Name: ColID, Type: engine.TInt},
		engine.Column{Name: "path", Type: engine.TText})
	if err != nil {
		return nil, err
	}
	if _, err := t.CreateIndex(PathsTable+"_pk", ColID); err != nil {
		return nil, err
	}
	return &pathRegistry{table: t, ids: map[string]int64{}}, nil
}

// id returns the path's id, buffering a new paths row into the
// batch on first sight so the row commits atomically with the
// document that introduced the path.
func (r *pathRegistry) id(b *engine.WriteBatch, path string) int64 {
	if id, ok := r.ids[path]; ok {
		return id
	}
	id := int64(len(r.ids) + 1)
	r.ids[path] = id
	r.fresh = append(r.fresh, path)
	if err := b.Insert(r.table, []engine.Value{engine.NewInt(id), engine.NewText(path)}); err != nil {
		panic(err) // statically shaped row; unreachable
	}
	return id
}

// SchemaAwareStore holds documents shredded under the schema-aware
// mapping.
type SchemaAwareStore struct {
	DB     *engine.DB
	Schema *schema.Schema
	paths  *pathRegistry
	nextID int64
	docs   int64
}

// NewSchemaAware creates the relational schema for an XML Schema
// graph: one relation per element definition with descriptor columns,
// text and attribute columns, plus the shared paths relation and the
// Section 3.1 indexes (primary key, parent foreign key, composite
// (dewey_pos, path_id)).
func NewSchemaAware(s *schema.Schema) (*SchemaAwareStore, error) {
	return NewSchemaAwareDB(engine.NewDB(), s)
}

// NewSchemaAwareDB is NewSchemaAware against a caller-provided
// database — typically a persistent one (engine.Open). On an empty
// database it creates the relational schema; on a database that
// already holds it (a reopened store), it attaches instead, rebuilding
// the path registry and the id/document counters from the stored
// rows so loading can continue where the previous process stopped.
func NewSchemaAwareDB(db *engine.DB, s *schema.Schema) (*SchemaAwareStore, error) {
	attach := db.Table(PathsTable) != nil
	paths, err := newPathRegistry(db)
	if err != nil {
		return nil, err
	}
	st := &SchemaAwareStore{DB: db, Schema: s, paths: paths}
	for _, n := range s.Nodes() {
		rel := RelName(n.Name)
		if attach {
			t := db.Table(rel)
			if t == nil {
				return nil, fmt.Errorf("shred: existing database has no relation %q for element %q", rel, n.Name)
			}
			for _, row := range t.Rows() {
				if id := row[0].I; id > st.nextID {
					st.nextID = id
				}
				if n.IsRoot {
					if d := row[t.ColIndex(ColDoc)].I; d > st.docs {
						st.docs = d
					}
				}
			}
			continue
		}
		cols := []engine.Column{
			{Name: ColID, Type: engine.TInt},
			{Name: ColPar, Type: engine.TInt},
			{Name: ColDewey, Type: engine.TBytes},
			{Name: ColPath, Type: engine.TInt},
		}
		if n.IsRoot {
			cols = append(cols, engine.Column{Name: ColDoc, Type: engine.TInt})
		}
		if n.HasText {
			cols = append(cols, engine.Column{Name: ColText, Type: engine.TText})
		}
		for _, a := range n.Attrs {
			cols = append(cols, engine.Column{Name: AttrCol(a), Type: engine.TText})
		}
		t, err := db.CreateTable(rel, cols...)
		if err != nil {
			return nil, fmt.Errorf("shred: element %q: %w", n.Name, err)
		}
		for _, ix := range []struct {
			suffix string
			cols   []string
		}{
			{"_pk", []string{ColID}},
			{"_par", []string{ColPar}},
			{"_dp", []string{ColDewey, ColPath}},
		} {
			if _, err := t.CreateIndex(rel+ix.suffix, ix.cols...); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// Load shreds one document, returning its document id. Node ids are
// globally unique across documents; the first document's element ids
// equal the document's own node ids. The whole document commits as
// one write batch: a single WAL record and a single published
// snapshot, so concurrent readers (and crash recovery) see either all
// of the document's rows — across every element relation and the
// paths relation — or none of them.
func (st *SchemaAwareStore) Load(doc *xmltree.Document) (int64, error) {
	if err := st.Schema.Validate(doc); err != nil {
		return 0, err
	}
	docID := st.docs + 1
	base := st.nextID
	maxID := base
	batch := st.DB.NewWriteBatch()
	for _, n := range doc.Nodes() {
		if n.Kind != xmltree.Element {
			continue
		}
		sn := st.Schema.Node(n.Name)
		t := st.DB.Table(RelName(n.Name))
		row := make([]engine.Value, 0, len(t.Cols))
		id := base + n.ID
		if id > maxID {
			maxID = id
		}
		row = append(row, engine.NewInt(id))
		if n.Parent != nil {
			row = append(row, engine.NewInt(base+n.Parent.ID))
		} else {
			row = append(row, engine.Null)
		}
		row = append(row, engine.NewBytes(dewey.WithRoot(n.Pos, int(docID))), engine.NewInt(st.paths.id(batch, n.Path)))
		if sn.IsRoot {
			row = append(row, engine.NewInt(docID))
		}
		if sn.HasText {
			row = append(row, directText(n))
		}
		for _, a := range sn.Attrs {
			if v, ok := n.Attr(a); ok {
				row = append(row, engine.NewText(v))
			} else {
				row = append(row, engine.Null)
			}
		}
		if err := batch.Insert(t, row); err != nil {
			return 0, fmt.Errorf("shred: load %q: %w", n.Path, err)
		}
	}
	if err := batch.Commit(); err != nil {
		st.paths.rollback()
		return 0, fmt.Errorf("shred: load document %d: %w", docID, err)
	}
	st.paths.drop()
	st.docs = docID
	st.nextID = maxID
	return docID, nil
}

// directText returns the concatenation of an element's direct text
// children (the value stored in the 'text' column), or NULL when the
// element has none.
func directText(n *xmltree.Node) engine.Value {
	var b strings.Builder
	found := false
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			b.WriteString(c.Value)
			found = true
		}
	}
	if !found {
		return engine.Null
	}
	return engine.NewText(b.String())
}

// EdgeStore holds documents shredded under the schema-oblivious
// Edge-like mapping: every element is a tuple of the central 'edge'
// relation; attributes live in a separate 'attr' relation.
type EdgeStore struct {
	DB     *engine.DB
	paths  *pathRegistry
	Edge   *engine.Table
	Attr   *engine.Table
	nextID int64
	docs   int64
}

// Edge mapping table and column names.
const (
	EdgeTable   = "edge"
	AttrTable   = "attr"
	ColName     = "name"
	ColOwner    = "owner"
	ColAttrName = "aname"
	ColValue    = "value"
)

// NewEdge creates the Edge-like relational schema.
func NewEdge() (*EdgeStore, error) { return NewEdgeDB(engine.NewDB()) }

// NewEdgeDB is NewEdge against a caller-provided database, attaching
// to an existing Edge schema (a reopened persistent store) when the
// edge relation is already present.
func NewEdgeDB(db *engine.DB) (*EdgeStore, error) {
	if edge := db.Table(EdgeTable); edge != nil {
		attr := db.Table(AttrTable)
		if attr == nil {
			return nil, fmt.Errorf("shred: existing database has %q but no %q", EdgeTable, AttrTable)
		}
		paths, err := newPathRegistry(db)
		if err != nil {
			return nil, err
		}
		st := &EdgeStore{DB: db, paths: paths, Edge: edge, Attr: attr}
		docCol := edge.ColIndex(ColDoc)
		for _, row := range edge.Rows() {
			if id := row[0].I; id > st.nextID {
				st.nextID = id
			}
			if d := row[docCol].I; d > st.docs {
				st.docs = d
			}
		}
		return st, nil
	}
	paths, err := newPathRegistry(db)
	if err != nil {
		return nil, err
	}
	edge, err := db.CreateTable(EdgeTable,
		engine.Column{Name: ColID, Type: engine.TInt},
		engine.Column{Name: ColPar, Type: engine.TInt},
		engine.Column{Name: ColDewey, Type: engine.TBytes},
		engine.Column{Name: ColPath, Type: engine.TInt},
		engine.Column{Name: ColDoc, Type: engine.TInt},
		engine.Column{Name: ColName, Type: engine.TText},
		engine.Column{Name: ColText, Type: engine.TText},
	)
	if err != nil {
		return nil, err
	}
	for _, ix := range []struct {
		name string
		cols []string
	}{
		{"edge_pk", []string{ColID}},
		{"edge_par", []string{ColPar}},
		{"edge_dp", []string{ColDewey, ColPath}},
	} {
		if _, err := edge.CreateIndex(ix.name, ix.cols...); err != nil {
			return nil, err
		}
	}
	attr, err := db.CreateTable(AttrTable,
		engine.Column{Name: ColOwner, Type: engine.TInt},
		engine.Column{Name: ColAttrName, Type: engine.TText},
		engine.Column{Name: ColValue, Type: engine.TText},
	)
	if err != nil {
		return nil, err
	}
	if _, err := attr.CreateIndex("attr_owner", ColOwner); err != nil {
		return nil, err
	}
	return &EdgeStore{DB: db, paths: paths, Edge: edge, Attr: attr}, nil
}

// Load shreds one document into the Edge mapping. Like the
// schema-aware loader it commits the document as one write batch —
// edge rows, attribute rows, and new paths rows together.
func (st *EdgeStore) Load(doc *xmltree.Document) (int64, error) {
	docID := st.docs + 1
	base := st.nextID
	maxID := base
	batch := st.DB.NewWriteBatch()
	for _, n := range doc.Nodes() {
		if n.Kind != xmltree.Element {
			continue
		}
		id := base + n.ID
		if id > maxID {
			maxID = id
		}
		par := engine.Null
		if n.Parent != nil {
			par = engine.NewInt(base + n.Parent.ID)
		}
		if err := batch.Insert(st.Edge, []engine.Value{
			engine.NewInt(id), par, engine.NewBytes(dewey.WithRoot(n.Pos, int(docID))),
			engine.NewInt(st.paths.id(batch, n.Path)), engine.NewInt(docID),
			engine.NewText(n.Name), directText(n),
		}); err != nil {
			return 0, fmt.Errorf("shred: load %q: %w", n.Path, err)
		}
		for _, a := range n.Attrs {
			if err := batch.Insert(st.Attr, []engine.Value{
				engine.NewInt(id), engine.NewText(a.Name), engine.NewText(a.Value),
			}); err != nil {
				return 0, fmt.Errorf("shred: load %q attr %q: %w", n.Path, a.Name, err)
			}
		}
	}
	if err := batch.Commit(); err != nil {
		st.paths.rollback()
		return 0, fmt.Errorf("shred: load document %d: %w", docID, err)
	}
	st.paths.drop()
	st.docs = docID
	st.nextID = maxID
	return docID, nil
}

// AccelStore holds documents shredded under the XPath Accelerator
// (pre/post region encoding) mapping of Grust et al., the baseline of
// Section 5.2.
type AccelStore struct {
	DB     *engine.DB
	Accel  *engine.Table
	Attr   *engine.Table
	preOf  map[int64]int64 // document-global element id -> pre
	idOf   map[int64]int64 // pre -> document-global element id
	nextID int64
	docs   int64
}

// Accelerator table and column names.
const (
	AccelTable = "accel"
	ColPre     = "pre"
	ColPost    = "post"
)

// ColSize is the accelerator's subtree-size column: the number of
// element descendants, giving the two-sided "staked-out" descendant
// window [pre+1, pre+size].
const ColSize = "size"

// NewAccel creates the accelerator schema: accel(pre, post, par,
// size, id, doc_id, name, text) with B-tree indexes on pre, post and
// par, plus the attribute relation.
func NewAccel() (*AccelStore, error) {
	db := engine.NewDB()
	accel, err := db.CreateTable(AccelTable,
		engine.Column{Name: ColPre, Type: engine.TInt},
		engine.Column{Name: ColPost, Type: engine.TInt},
		engine.Column{Name: ColPar, Type: engine.TInt},  // pre of parent
		engine.Column{Name: ColSize, Type: engine.TInt}, // element descendants
		engine.Column{Name: ColID, Type: engine.TInt},   // document-global element id
		engine.Column{Name: ColDoc, Type: engine.TInt},
		engine.Column{Name: ColName, Type: engine.TText},
		engine.Column{Name: ColText, Type: engine.TText},
	)
	if err != nil {
		return nil, err
	}
	for _, ix := range []struct {
		name string
		cols []string
	}{
		{"accel_pre", []string{ColPre}},
		{"accel_post", []string{ColPost}},
		{"accel_par", []string{ColPar}},
	} {
		if _, err := accel.CreateIndex(ix.name, ix.cols...); err != nil {
			return nil, err
		}
	}
	attr, err := db.CreateTable(AttrTable,
		engine.Column{Name: ColOwner, Type: engine.TInt}, // pre of owner
		engine.Column{Name: ColAttrName, Type: engine.TText},
		engine.Column{Name: ColValue, Type: engine.TText},
	)
	if err != nil {
		return nil, err
	}
	if _, err := attr.CreateIndex("attr_owner", ColOwner); err != nil {
		return nil, err
	}
	return &AccelStore{DB: db, Accel: accel, Attr: attr, preOf: map[int64]int64{}, idOf: map[int64]int64{}}, nil
}

// Load shreds one document into the accelerator mapping.
func (st *AccelStore) Load(doc *xmltree.Document) (int64, error) {
	st.docs++
	docID := st.docs
	base := st.nextID
	maxID := base

	// Assign pre/post ranks and subtree sizes over element nodes only.
	pre := map[*xmltree.Node]int64{}
	post := map[*xmltree.Node]int64{}
	size := map[*xmltree.Node]int64{}
	var preCtr, postCtr int64
	preBase := int64(len(st.idOf))
	var walk func(n *xmltree.Node) int64
	walk = func(n *xmltree.Node) int64 {
		if n.Kind != xmltree.Element {
			return 0
		}
		preCtr++
		pre[n] = preBase + preCtr
		var desc int64
		for _, c := range n.Children {
			desc += walk(c)
		}
		postCtr++
		post[n] = preBase + postCtr
		size[n] = desc
		return desc + 1
	}
	walk(doc.Root)

	for _, n := range doc.Nodes() {
		if n.Kind != xmltree.Element {
			continue
		}
		id := base + n.ID
		if id > maxID {
			maxID = id
		}
		par := engine.Null
		if n.Parent != nil {
			par = engine.NewInt(pre[n.Parent])
		}
		st.Accel.MustInsert(
			engine.NewInt(pre[n]), engine.NewInt(post[n]), par, engine.NewInt(size[n]),
			engine.NewInt(id), engine.NewInt(docID),
			engine.NewText(n.Name), directText(n),
		)
		st.preOf[id] = pre[n]
		st.idOf[pre[n]] = id
		for _, a := range n.Attrs {
			st.Attr.MustInsert(engine.NewInt(pre[n]), engine.NewText(a.Name), engine.NewText(a.Value))
		}
	}
	st.nextID = maxID
	return docID, nil
}

// PathCount returns the number of distinct root-to-node paths stored.
func (st *SchemaAwareStore) PathCount() int { return len(st.paths.ids) }

// PathCount returns the number of distinct root-to-node paths stored.
func (st *EdgeStore) PathCount() int { return len(st.paths.ids) }
