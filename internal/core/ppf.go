// Package core implements the paper's contribution: PPF-based
// XPath-to-SQL translation (Section 4).
//
// An XPath expression's backbone is split into Primitive Path
// Fragments — maximal forward simple paths, backward simple paths, or
// single horizontal-axis steps (Section 4.1). Each forward or
// backward PPF is evaluated holistically by filtering root-to-node
// path strings against a regular expression (Table 1); consecutive
// PPFs are combined with Dewey-encoded structural joins (Table 2) or
// foreign-key joins for single child/parent steps. Predicates become
// EXISTS subselects, except backward-simple-path predicates, which
// fold into additional path regexes (Table 5-2). SQL splitting
// (Section 4.4) and redundant-path-filter omission (Section 4.5) are
// implemented as described.
package core

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// ppfKind classifies a fragment.
type ppfKind uint8

const (
	ppfForward ppfKind = iota
	ppfBackward
	ppfHorizontal
)

// ppf is one Primitive Path Fragment. Its prominent step is the last
// step; predicates can only be attached there (a predicate on an
// intermediate step closes the fragment).
type ppf struct {
	kind  ppfKind
	steps []*xpath.Step
}

func (p *ppf) prominent() *xpath.Step { return p.steps[len(p.steps)-1] }

// splitPPFs splits a backbone step list into PPFs. It also
// pre-processes the step list: '//' step pairs
// (descendant-or-self::node() followed by a named step) collapse into
// one descendant-axis step, and self::node() steps ('.') disappear.
// Terminal attribute and text() steps are returned separately — they
// restrict the prominent relation rather than forming a fragment.
func splitPPFs(steps []*xpath.Step) (frags []*ppf, terminal *xpath.Step, err error) {
	collapsed, terminal, err := normalizeSteps(steps)
	if err != nil {
		return nil, nil, err
	}
	var cur *ppf
	close := func() {
		if cur != nil {
			frags = append(frags, cur)
			cur = nil
		}
	}
	for _, s := range collapsed {
		switch {
		case s.Axis.Horizontal():
			close()
			frags = append(frags, &ppf{kind: ppfHorizontal, steps: []*xpath.Step{s}})
		case s.Axis.Forward():
			if cur == nil || cur.kind != ppfForward {
				close()
				cur = &ppf{kind: ppfForward}
			}
			cur.steps = append(cur.steps, s)
		case s.Axis.Backward():
			if cur == nil || cur.kind != ppfBackward {
				close()
				cur = &ppf{kind: ppfBackward}
			}
			cur.steps = append(cur.steps, s)
		default:
			return nil, nil, fmt.Errorf("core: unsupported axis %s in backbone", s.Axis)
		}
		// A predicate makes this the fragment's prominent (last) step.
		if len(s.Predicates) > 0 {
			close()
		}
		// An ancestor step closes a backward fragment: chains of the
		// form parent*·ancestor translate into one exact structural
		// join, while steps after an ancestor would lose their distance
		// and alignment constraints (see structuralJoin).
		if s.Axis == xpath.Ancestor || s.Axis == xpath.AncestorOrSelf {
			close()
		}
	}
	close()
	return frags, terminal, nil
}

// positionSensitive reports whether a predicate's truth depends on
// the context position (bare numbers, position(), last()). XPath
// applies predicates sequentially, so such a predicate after another
// predicate would need the *filtered* position — which the
// conjunctive SQL translation cannot express.
func positionSensitive(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Number:
		return true
	case *xpath.Call:
		switch x.Name {
		case "position", "last":
			return true
		case "not":
			return positionSensitive(x.Args[0])
		}
	case *xpath.Binary:
		return positionSensitive(x.L) || positionSensitive(x.R)
	}
	return false
}

// checkPredicateOrder rejects position-sensitive predicates that are
// not the first predicate of their step.
func checkPredicateOrder(s *xpath.Step) error {
	for i, pred := range s.Predicates {
		if i > 0 && positionSensitive(pred) {
			return fmt.Errorf("core: a positional predicate after another predicate needs sequential semantics (step %s)", s)
		}
	}
	return nil
}

// allChild reports whether every step of a fragment is a child step
// (the fragment spans an exact number of levels).
func allChild(f *ppf) bool {
	for _, s := range f.steps {
		if s.Axis != xpath.Child {
			return false
		}
	}
	return true
}

// allParent reports whether every step is a parent step.
func allParent(f *ppf) bool {
	for _, s := range f.steps {
		if s.Axis != xpath.Parent {
			return false
		}
	}
	return true
}

// normalizeSteps delegates to xpath.NormalizeSteps.
func normalizeSteps(steps []*xpath.Step) ([]*xpath.Step, *xpath.Step, error) {
	return xpath.NormalizeSteps(steps)
}

// --- regular expression construction (Table 1) ---

// alt is one alternative of a path pattern under construction: the
// name pattern of its deepest (head) element plus everything after it
// up the path for backward patterns, or everything before it for
// forward patterns. Keeping the boundary name separate lets
// 'or-self' steps constrain it.
type alt struct {
	pre  string // pattern before the head name
	head string // name pattern of the boundary element
	post string // pattern after the head name
}

// namePat returns the regex fragment matching one path segment for a
// node test.
func namePat(s *xpath.Step) string {
	if s.Wildcard() || s.Test == xpath.AnyKindTest {
		return "[^/]+"
	}
	return regexQuote(s.Name)
}

// regexQuote escapes regex metacharacters in an element name.
func regexQuote(name string) string {
	var b strings.Builder
	for _, r := range name {
		if strings.ContainsRune(`\.+*?()|[]{}^$`, r) {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// intersectNames intersects two name patterns (for or-self steps):
// two literals must be equal; a wildcard adopts the other side.
// Returns the combined pattern and whether the intersection is
// non-empty.
func intersectNames(a, b string) (string, bool) {
	const wild = "[^/]+"
	switch {
	case a == wild:
		return b, true
	case b == wild:
		return a, true
	case a == b:
		return a, true
	default:
		return "", false
	}
}

// forwardRegex builds the pattern for a forward path per Table 1.
// The step list must be normalized. anchored selects '^/...' (path
// starts at the document root) versus '^.*/...' (unknown prefix);
// baseName optionally pins the segment just before the fragment (the
// previous PPF's prominent name pattern), strengthening unanchored
// patterns.
func forwardRegex(steps []*xpath.Step, anchored bool, baseName string) (string, error) {
	alts := []alt{{}}
	if !anchored {
		if baseName != "" {
			alts = []alt{{pre: "^.*/", head: baseName, post: ""}}
		} else {
			alts = []alt{{pre: "^.*", head: "", post: ""}}
		}
	} else {
		alts = []alt{{pre: "^", head: "", post: ""}}
	}
	for _, s := range steps {
		np := namePat(s)
		var next []alt
		for _, a := range alts {
			switch s.Axis {
			case xpath.Child:
				next = append(next, alt{pre: a.pre + a.head + a.post + "/", head: np, post: ""})
			case xpath.Descendant:
				next = append(next, alt{pre: a.pre + a.head + a.post + "/(.+/)?", head: np, post: ""})
			case xpath.DescendantOrSelf:
				// Descendant case.
				next = append(next, alt{pre: a.pre + a.head + a.post + "/(.+/)?", head: np, post: ""})
				// Self case: only when a head exists to constrain.
				if a.head != "" {
					if merged, ok := intersectNames(a.head, np); ok {
						next = append(next, alt{pre: a.pre, head: merged, post: a.post})
					}
				}
			default:
				return "", fmt.Errorf("core: axis %s inside a forward fragment", s.Axis)
			}
		}
		alts = dedupeAlts(next)
		if len(alts) == 0 {
			return "", fmt.Errorf("core: forward fragment can never match")
		}
	}
	pat := assemble(alts)
	tracePattern("forward", steps, anchored, baseName, pat)
	return pat, nil
}

// backwardRegex builds the pattern constraining the root-to-node path
// of the *previous* fragment's prominent element, per Table 1 row 4
// and Table 3(3). contextName is that element's name pattern; the
// backward steps walk up from it.
func backwardRegex(steps []*xpath.Step, contextName string) (string, error) {
	alts := []alt{{pre: "", head: contextName, post: "$"}}
	for _, s := range steps {
		np := namePat(s)
		var next []alt
		for _, a := range alts {
			switch s.Axis {
			case xpath.Parent:
				next = append(next, alt{pre: "", head: np, post: "/" + a.pre + a.head + a.post})
			case xpath.Ancestor:
				next = append(next, alt{pre: "", head: np, post: "/(.+/)?" + a.pre + a.head + a.post})
			case xpath.AncestorOrSelf:
				next = append(next, alt{pre: "", head: np, post: "/(.+/)?" + a.pre + a.head + a.post})
				if merged, ok := intersectNames(a.head, np); ok {
					next = append(next, alt{pre: a.pre, head: merged, post: a.post})
				}
			default:
				return "", fmt.Errorf("core: axis %s inside a backward fragment", s.Axis)
			}
		}
		alts = dedupeAlts(next)
		if len(alts) == 0 {
			return "", fmt.Errorf("core: backward fragment can never match")
		}
	}
	for i := range alts {
		alts[i].pre = "^.*/" + alts[i].pre
	}
	pat := assemble(alts)
	tracePattern("backward", steps, false, contextName, pat)
	return pat, nil
}

// forwardSuffixRegex builds the anchored pattern that the part of the
// current element's root path *below the previous prominent element*
// must match — the exact fragment-boundary check used when the
// deeper relation is recursive (I-P) and the full-path regex could
// align at the wrong depth. An empty suffix (the context itself) is
// admitted when or-self steps permit it; prevNamePat constrains that
// case.
func forwardSuffixRegex(steps []*xpath.Step, prevNamePat string) (string, error) {
	alts := []alt{{pre: "^", head: "", post: ""}}
	for _, s := range steps {
		np := namePat(s)
		var next []alt
		for _, a := range alts {
			boundary := a.head == "" // zero progress so far
			switch s.Axis {
			case xpath.Child:
				next = append(next, alt{pre: a.pre + a.head + a.post + "/", head: np})
			case xpath.Descendant:
				next = append(next, alt{pre: a.pre + a.head + a.post + "/(.+/)?", head: np})
			case xpath.DescendantOrSelf:
				next = append(next, alt{pre: a.pre + a.head + a.post + "/(.+/)?", head: np})
				if boundary {
					if _, ok := intersectNames(prevNamePat, np); ok {
						next = append(next, a)
					}
				} else if merged, ok := intersectNames(a.head, np); ok {
					next = append(next, alt{pre: a.pre, head: merged, post: a.post})
				}
			default:
				return "", fmt.Errorf("core: axis %s inside a forward fragment", s.Axis)
			}
		}
		alts = dedupeAlts(next)
		if len(alts) == 0 {
			return "", fmt.Errorf("core: forward fragment can never match")
		}
	}
	pat := assemble(alts)
	tracePattern("forward-suffix", steps, false, prevNamePat, pat)
	return pat, nil
}

// backwardSuffixRegex builds the anchored pattern that the part of
// the *previous* prominent element's root path below the current
// (ancestor) element must match. contextName is the previous
// element's name pattern.
func backwardSuffixRegex(steps []*xpath.Step, contextName string) (string, error) {
	alts := []alt{{pre: "", head: contextName, post: "$"}}
	for _, s := range steps {
		np := namePat(s)
		var next []alt
		for _, a := range alts {
			switch s.Axis {
			case xpath.Parent:
				next = append(next, alt{pre: "", head: np, post: "/" + a.pre + a.head + a.post})
			case xpath.Ancestor:
				next = append(next, alt{pre: "", head: np, post: "/(.+/)?" + a.pre + a.head + a.post})
			case xpath.AncestorOrSelf:
				next = append(next, alt{pre: "", head: np, post: "/(.+/)?" + a.pre + a.head + a.post})
				if merged, ok := intersectNames(a.head, np); ok {
					next = append(next, alt{pre: a.pre, head: merged, post: a.post})
				}
			default:
				return "", fmt.Errorf("core: axis %s inside a backward fragment", s.Axis)
			}
		}
		alts = dedupeAlts(next)
		if len(alts) == 0 {
			return "", fmt.Errorf("core: backward fragment can never match")
		}
	}
	// The suffix starts just below the topmost (current) element: drop
	// its own segment, keeping post (which already carries '$').
	suffix := make([]alt, 0, len(alts))
	for _, a := range alts {
		p := a.post
		if p == "$" {
			// Pure or-self: the current element IS the context; an empty
			// suffix.
			suffix = append(suffix, alt{pre: "^", head: "", post: "$"})
			continue
		}
		suffix = append(suffix, alt{pre: "^", head: "", post: p})
	}
	pat := assemble(dedupeAlts(suffix))
	tracePattern("backward-suffix", steps, false, contextName, pat)
	return pat, nil
}

func dedupeAlts(alts []alt) []alt {
	seen := map[alt]bool{}
	out := alts[:0]
	for _, a := range alts {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// assemble renders an alternative set as one pattern. Forward
// patterns get their trailing '$' here; backward alternatives carry
// it in post.
func assemble(alts []alt) string {
	parts := make([]string, len(alts))
	for i, a := range alts {
		p := a.pre + a.head + a.post
		if !strings.HasSuffix(p, "$") {
			p += "$"
		}
		parts[i] = p
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ")|(") + ")"
}
