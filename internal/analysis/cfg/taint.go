package cfg

import (
	"go/ast"
	"go/types"
)

// Value is a point in the four-element must-taint lattice. "Taint" is
// analyzer-defined: for ctxflow it means "is the function's context
// parameter", for sqltaint it means "derived from sqlast rendering".
//
//	  Mixed (⊤: differs across paths)
//	  /   \
//	Yes   No
//	  \   /
//	 Bottom (⊥: not yet reached)
type Value uint8

const (
	Bottom Value = iota
	Yes
	No
	Mixed
)

func (v Value) String() string {
	switch v {
	case Bottom:
		return "⊥"
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "mixed"
	}
}

// Join combines the values of two control-flow paths.
func Join(a, b Value) Value {
	switch {
	case a == b:
		return a
	case a == Bottom:
		return b
	case b == Bottom:
		return a
	default:
		return Mixed
	}
}

// A Classifier assigns lattice values to non-variable expressions.
// eval resolves subexpressions (including local variables) in the
// current environment; returning Bottom means "no opinion", which the
// solver interprets as No (untainted by default).
type Classifier func(e ast.Expr, eval func(ast.Expr) Value) Value

// Taint holds the flow-sensitive solution: for every block, the
// lattice value of each tracked variable at block entry.
type Taint struct {
	g        *Graph
	info     *types.Info
	classify Classifier
	reach    *Reach // for ClosureWritten only
	in       []map[*types.Var]Value
	seed     map[*types.Var]Value
}

// SolveTaint runs a forward dataflow over the graph. seed gives the
// entry values of parameters (untracked variables start at No);
// classify interprets leaf expressions. reach may be nil; when given,
// closure-written variables are pinned to Mixed.
func SolveTaint(g *Graph, info *types.Info, seed map[*types.Var]Value, reach *Reach, classify Classifier) *Taint {
	t := &Taint{g: g, info: info, classify: classify, reach: reach, seed: seed}
	n := len(g.Blocks)
	t.in = make([]map[*types.Var]Value, n)
	t.in[g.Entry.Index] = map[*types.Var]Value{}
	for v, val := range seed {
		t.in[g.Entry.Index][v] = val
	}
	work := []*Block{g.Entry}
	inWork := make([]bool, n)
	inWork[g.Entry.Index] = true
	out := make([]map[*types.Var]Value, n)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		if b != g.Entry {
			env := map[*types.Var]Value{}
			first := true
			for _, p := range b.Preds {
				po := out[p.Index]
				if po == nil {
					continue // predecessor not yet reached
				}
				if first {
					for v, val := range po {
						env[v] = val
					}
					first = false
					continue
				}
				for v, val := range po {
					env[v] = Join(env[v], val)
				}
				for v := range env {
					if _, ok := po[v]; !ok {
						// Not tracked on that path: untracked means No.
						env[v] = Join(env[v], No)
					}
				}
			}
			t.in[b.Index] = env
		}
		newOut := cloneEnv(t.in[b.Index])
		for _, node := range b.Nodes {
			t.transfer(node, newOut)
		}
		if !envEqual(newOut, out[b.Index]) {
			out[b.Index] = newOut
			for _, s := range b.Succs {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	return t
}

// EvalAt computes the lattice value of expression e at the program
// point just before stmt. Unreachable statements evaluate to Bottom.
func (t *Taint) EvalAt(stmt ast.Node, e ast.Expr) Value {
	b := t.g.BlockOf(stmt)
	if b == nil || t.in[b.Index] == nil {
		return Bottom
	}
	env := cloneEnv(t.in[b.Index])
	for _, node := range b.Nodes {
		if node == stmt {
			break
		}
		t.transfer(node, env)
	}
	return t.eval(e, env)
}

// At returns the lattice value of variable v just before stmt.
func (t *Taint) At(stmt ast.Node, v *types.Var) Value {
	b := t.g.BlockOf(stmt)
	if b == nil || t.in[b.Index] == nil {
		return Bottom
	}
	env := cloneEnv(t.in[b.Index])
	for _, node := range b.Nodes {
		if node == stmt {
			break
		}
		t.transfer(node, env)
	}
	return t.lookup(v, env)
}

func (t *Taint) lookup(v *types.Var, env map[*types.Var]Value) Value {
	if t.reach != nil && t.reach.ClosureWritten(v) {
		return Mixed
	}
	if val, ok := env[v]; ok {
		return val
	}
	return No
}

// eval resolves an expression to a lattice value in env: identifiers
// through the environment, parens/conversions transparently, anything
// else via the classifier.
func (t *Taint) eval(e ast.Expr, env map[*types.Var]Value) Value {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return t.eval(x.X, env)
	case *ast.Ident:
		if v, ok := t.info.Uses[x].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			// Local or package variable: classifier first (it may know
			// better, e.g. a sanctioned global), else the environment.
			if t.classify != nil {
				if val := t.classify(e, func(sub ast.Expr) Value { return t.eval(sub, env) }); val != Bottom {
					return val
				}
			}
			return t.lookup(v, env)
		}
	}
	if t.classify != nil {
		if val := t.classify(e, func(sub ast.Expr) Value { return t.eval(sub, env) }); val != Bottom {
			return val
		}
	}
	return No
}

// transfer updates env across one node: assignments bind LHS variables
// to the evaluated RHS.
func (t *Taint) transfer(n ast.Node, env map[*types.Var]Value) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		if len(x.Lhs) == len(x.Rhs) {
			// Evaluate all RHS first (simultaneous assignment).
			vals := make([]Value, len(x.Rhs))
			for i, rhs := range x.Rhs {
				vals[i] = t.eval(rhs, env)
			}
			for i, lhs := range x.Lhs {
				if v := t.assignable(lhs); v != nil {
					env[v] = vals[i]
				}
			}
			return
		}
		// Multi-value from a single call: classify the call once per
		// tuple slot via a synthetic eval of the call expression.
		if call, ok := singleCallRHS(x); ok {
			val := t.eval(call, env)
			for _, lhs := range x.Lhs {
				if v := t.assignable(lhs); v != nil {
					env[v] = val
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				v, _ := t.info.Defs[id].(*types.Var)
				if v == nil {
					continue
				}
				if i < len(vs.Values) {
					env[v] = t.eval(vs.Values[i], env)
				} else {
					env[v] = No // zero value
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if v := t.assignable(e); v != nil {
				env[v] = No
			}
		}
	case *ast.IncDecStmt:
		if v := t.assignable(x.X); v != nil {
			env[v] = No
		}
	}
}

func (t *Taint) assignable(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := t.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := t.info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

func cloneEnv(env map[*types.Var]Value) map[*types.Var]Value {
	c := make(map[*types.Var]Value, len(env))
	for v, val := range env {
		c[v] = val
	}
	return c
}

func envEqual(a, b map[*types.Var]Value) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for v, val := range a {
		if b[v] != val {
			return false
		}
	}
	return true
}
