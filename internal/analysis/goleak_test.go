package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GoLeak,
		"goleak/internal/engine", "goleak/ok")
}

// The real engine must satisfy its own invariant: its only fan-out
// (the morsel worker pool) joins through a WaitGroup.
func TestGoLeakEngineClean(t *testing.T) {
	expectClean(t, analysis.GoLeak, "repro/internal/engine")
}
