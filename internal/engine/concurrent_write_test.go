package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dewey"
)

// TestConcurrentWriterSnapshotIsolation is the regression test for
// the retired "externally serialized" contract: one writer commits
// batches while readers query without any coordination. Every reader
// must observe an atomic prefix of the commit history — a COUNT that
// is an exact multiple of the batch size, never a torn batch — and
// the lazy hash-index build (the old Table.hashMu race) must stay
// safe while the writer publishes new states. Run under -race in CI.
func TestConcurrentWriterSnapshotIsolation(t *testing.T) {
	db := NewDB()
	tb, err := db.CreateTable("T", Column{"id", TInt}, Column{"k", TInt}, Column{"text", TText})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateIndex("T_pk", "id"); err != nil {
		t.Fatal(err)
	}

	const (
		batchRows = 7
		batches   = 120
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Writer: commit batchRows rows per InsertBatch. Each batch is one
	// snapshot publish, so readers may see 0, 7, 14, ... rows — never
	// anything in between.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		id := int64(0)
		for b := 0; b < batches; b++ {
			rows := make([][]Value, batchRows)
			for i := range rows {
				id++
				rows[i] = []Value{NewInt(id), NewInt(id % 10), NewText(fmt.Sprint(id))}
			}
			if _, err := tb.InsertBatch(rows); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := int64(-1)
			for !stop.Load() {
				res, err := db.RunSQL("SELECT COUNT(*) FROM T")
				if err != nil {
					errs <- err
					return
				}
				n := res.Rows[0][0].I
				if n%batchRows != 0 {
					errs <- fmt.Errorf("reader saw %d rows: torn batch (batch size %d)", n, batchRows)
					return
				}
				if n < last {
					errs <- fmt.Errorf("reader saw count go backwards: %d after %d", n, last)
					return
				}
				last = n
				// Probe via the lazy hash path too (the old hashMu race):
				// an equality lookup on the unindexed column k forces a
				// hash build against whatever state this statement pinned.
				if r%2 == 0 {
					if _, err := db.RunSQL("SELECT COUNT(*) FROM T WHERE T.k = 3"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := db.RunSQL("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != batchRows*batches {
		t.Fatalf("final count = %d, want %d", got, batchRows*batches)
	}
}

// TestWriteBatchMultiTableAtomicity checks cross-table snapshot
// consistency: a WriteBatch commits matching rows to A and B in one
// publish, so no statement may ever see an A row without its B
// counterpart (the anti-join below must always be empty). Run under
// -race in CI.
func TestWriteBatchMultiTableAtomicity(t *testing.T) {
	db := NewDB()
	a, err := db.CreateTable("A", Column{"id", TInt})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("B", Column{"id", TInt})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := int64(1); i <= 400; i++ {
			batch := db.NewWriteBatch()
			if err := batch.Insert(a, []Value{NewInt(i)}); err != nil {
				errs <- err
				return
			}
			if err := batch.Insert(b, []Value{NewInt(i)}); err != nil {
				errs <- err
				return
			}
			if err := batch.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()

	const q = "SELECT COUNT(*) FROM A WHERE NOT EXISTS (SELECT NULL FROM B WHERE B.id = A.id)"
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, err := db.RunSQL(q)
				if err != nil {
					errs <- err
					return
				}
				if n := res.Rows[0][0].I; n != 0 {
					errs <- fmt.Errorf("statement saw %d A rows without B counterparts: cross-table tear", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentDDLAndReaders races CREATE INDEX against readers whose
// plans were compiled before the index existed: cached plans keep
// running against their pinned state, and re-planned statements may
// adopt the new index, but results never change. Run under -race.
func TestConcurrentDDLAndReaders(t *testing.T) {
	db := NewDB()
	tb, err := db.CreateTable("T", Column{"id", TInt}, Column{"dewey_pos", TBytes})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 500)
	for i := range rows {
		rows[i] = []Value{NewInt(int64(i)), NewBytes(dewey.New(1, i+1))}
	}
	if _, err := tb.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	want, err := db.RunSQL("SELECT COUNT(*) FROM T WHERE T.id = 250")
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < 12; i++ {
			if _, err := tb.CreateIndex(fmt.Sprintf("T_ix%d", i), "id"); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, err := db.RunSQL("SELECT COUNT(*) FROM T WHERE T.id = 250")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].I != want.Rows[0][0].I {
					errs <- fmt.Errorf("result changed under concurrent DDL: %d", res.Rows[0][0].I)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
