package pathre

import (
	"regexp"
	"testing"
)

// asciiOnly reports whether s stays inside printable ASCII plus
// newline — the alphabet on which pathre's byte-wise matcher and the
// stdlib's rune-wise matcher are comparable.
func asciiOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < 0x20 || c > 0x7e) && c != '\n' {
			return false
		}
	}
	return true
}

// FuzzPathPattern exercises Compile and MatchString on arbitrary
// pattern/input pairs. Compile must reject, never panic; matching
// must terminate. For ASCII pattern/input pairs the stdlib matcher
// (with (?s), since pathre's '.' is POSIX any-byte) is the oracle.
func FuzzPathPattern(f *testing.F) {
	seeds := [][2]string{
		{`^/A/B$`, "/A/B"},
		{`^/A/.*/F$`, "/A/B/C/E/F"},
		{`B/C`, "/A/B/C"},
		{`^(/A|/B)/C$`, "/B/C"},
		{`^[^/]+$`, "leaf"},
		{`^[a-c0-2]+$`, "ab12"},
		{`^[-a]$`, "-"},
		{`a+b?c*`, "aac"},
		{`(((`, ""},
		{`[z-a]`, ""},
		{`a**`, "aa"},
		{`^$`, ""},
		{``, "anything"},
		{`(a*)*b`, "aaab"},
		{`\(`, "("},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, pattern, input string) {
		re, err := Compile(pattern)
		if err != nil {
			return
		}
		got := re.MatchString(input)
		if !asciiOnly(pattern) || !asciiOnly(input) {
			return
		}
		std, err := regexp.Compile("(?s)" + pattern)
		if err != nil {
			// pathre's subset is slightly more permissive in spots the
			// stdlib rejects; nothing to compare against.
			return
		}
		if want := std.MatchString(input); got != want {
			t.Fatalf("MatchString(%q, %q) = %v, stdlib says %v", pattern, input, got, want)
		}
	})
}
