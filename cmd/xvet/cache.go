// Per-package analyzer result cache. The expensive part of an xvet
// run is parsing and type-checking; analyzer output for a package is a
// pure function of (analyzer set, toolchain, package sources, sources
// of its module-internal dependencies). The cache keys on exactly
// that, so a warm run skips loading unchanged packages entirely and
// touching one file invalidates only its package and the packages
// that (transitively) import it. Standard-library sources are assumed
// stable for a given toolchain version, which the key includes.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// cacheDirName lives under the module root (gitignored).
const cacheDirName = ".xvetcache"

// cacheEntry is one package's stored result.
type cacheEntry struct {
	Key   string     `json:"key"`
	Diags []jsonDiag `json:"diags"`
}

// pkgMeta is the cheap (ImportsOnly) view of one package: enough to
// hash its content and walk its module-internal dependency edges
// without type-checking anything.
type pkgMeta struct {
	contentHash string
	imports     []string // module-internal import paths, sorted
}

type resultCache struct {
	loader *analysis.Loader
	dir    string // <module>/.xvetcache
	salt   string // toolchain version + xvet binary signature + analyzer set

	metas    map[string]*pkgMeta
	keys     map[string]string
	visiting map[string]bool
}

// buildSig fingerprints the running xvet binary: its build info
// (module version, vcs revision, build flags) plus a hash of the
// executable's own bytes, which catches locally rebuilt binaries whose
// build info is unchanged. Keying the cache on it means editing an
// analyzer invalidates warm results even though no analyzed source
// changed — analyzer names alone cannot see a changed Run body.
// Overridable so tests can simulate a rebuilt binary.
var buildSig = binarySig

var (
	binarySigOnce sync.Once
	binarySigVal  string
)

func binarySig() string {
	binarySigOnce.Do(func() {
		h := sha256.New()
		if bi, ok := debug.ReadBuildInfo(); ok {
			fmt.Fprintln(h, bi.String())
		}
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				_, _ = h.Write(data)
			}
		}
		binarySigVal = hex.EncodeToString(h.Sum(nil))
	})
	return binarySigVal
}

func newResultCache(loader *analysis.Loader, analyzers []*analysis.Analyzer) (*resultCache, error) {
	h := sha256.New()
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, buildSig())
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name)
	}
	return &resultCache{
		loader:   loader,
		dir:      filepath.Join(loader.ModuleRoot, cacheDirName),
		salt:     hex.EncodeToString(h.Sum(nil)),
		metas:    map[string]*pkgMeta{},
		keys:     map[string]string{},
		visiting: map[string]bool{},
	}, nil
}

// get returns the cached diagnostics for the package if its key (own
// content + transitive module-internal dependency content + analyzer
// set) still matches the stored entry.
func (c *resultCache) get(importPath string) ([]jsonDiag, bool) {
	key, err := c.key(importPath)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(importPath))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Key != key {
		return nil, false
	}
	if e.Diags == nil {
		e.Diags = []jsonDiag{}
	}
	return e.Diags, true
}

// put stores the package's diagnostics under its current key.
func (c *resultCache) put(importPath string, diags []jsonDiag) error {
	key, err := c.key(importPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(cacheEntry{Key: key, Diags: diags})
	if err != nil {
		return err
	}
	return os.WriteFile(c.entryPath(importPath), data, 0o644)
}

func (c *resultCache) entryPath(importPath string) string {
	sum := sha256.Sum256([]byte(importPath))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// key computes the package's cache key, memoized: a hash over the
// salt, the package's own file names and contents, and the keys of
// every module-internal import (hence transitively their content).
func (c *resultCache) key(importPath string) (string, error) {
	if k, ok := c.keys[importPath]; ok {
		return k, nil
	}
	if c.visiting[importPath] {
		return "", fmt.Errorf("xvet: import cycle through %s", importPath)
	}
	c.visiting[importPath] = true
	defer delete(c.visiting, importPath)

	m, err := c.meta(importPath)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintln(h, c.salt)
	fmt.Fprintln(h, importPath)
	fmt.Fprintln(h, m.contentHash)
	for _, dep := range m.imports {
		dk, err := c.key(dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, dep, dk)
	}
	k := hex.EncodeToString(h.Sum(nil))
	c.keys[importPath] = k
	return k, nil
}

// meta reads the package directory with ImportsOnly parsing: the same
// file-selection rules as the loader (non-test .go files, sorted),
// hashing names and contents and collecting module-internal imports.
func (c *resultCache) meta(importPath string) (*pkgMeta, error) {
	if m, ok := c.metas[importPath]; ok {
		return m, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, c.loader.ModulePath), "/")
	dir := filepath.Join(c.loader.ModuleRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	h := sha256.New()
	fset := token.NewFileSet()
	depSet := map[string]bool{}
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(h, name, len(data))
		_, _ = h.Write(data)
		f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == c.loader.ModulePath || strings.HasPrefix(p, c.loader.ModulePath+"/") {
				depSet[p] = true
			}
		}
	}
	var imports []string
	for p := range depSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	m := &pkgMeta{contentHash: hex.EncodeToString(h.Sum(nil)), imports: imports}
	c.metas[importPath] = m
	return m, nil
}
