// Violation cases: operators writing counters directly instead of
// going through the OpStats mutators.
package engine

type execCtx struct {
	stats []OpStats
}

func (ec *execCtx) scan(op int, ids []int64) {
	st := &ec.stats[op]
	st.loops++ // want `direct write to OpStats field loops outside an OpStats method`
	for range ids {
		st.rowsOut += 1 // want `direct write to OpStats field rowsOut outside an OpStats method`
	}
	ec.stats[op].rowsOut = 0 // want `direct write to OpStats field rowsOut outside an OpStats method`
	leak := &st.loops        // want `direct write to OpStats field loops outside an OpStats method`
	_ = leak
}

// Method calls are the sanctioned path; reads of exported accessors
// are free.
func (ec *execCtx) ok(op int) int64 {
	st := &ec.stats[op]
	st.open()
	st.rowOut()
	return st.Loops()
}

// A different type with the same field names is not OpStats.
type rowCounter struct{ loops, rowsOut int64 }

func (ec *execCtx) other(c *rowCounter) {
	c.loops++
	c.rowsOut = 7
}
