// Seeded violations for the hotalloc analyzer. Regression note: this
// is the operator-tree PR's per-row allocation class — enumerate
// (an interface method) took a capturing yield closure per call, one
// heap allocation per join binding; the fix was access.go's
// forEachRow type-switch, which dispatches statically and keeps the
// closure on the stack.
package engine

type rowSource interface {
	enumerate(yield func(int) bool)
}

type plan struct {
	src     rowSource
	filters []func(int) bool
}

// A capturing closure handed to an interface method escapes per call.
func scanRows(p *plan, limit int) int {
	count := 0
	p.src.enumerate(func(v int) bool { // want `capturing closure passed to dynamic callee p\.src\.enumerate`
		count++
		return count < limit
	})
	return count
}

// Same escape through a local binding: reaching definitions tie the
// variable to the capturing literal.
func scanViaLocal(p *plan, limit int) int {
	count := 0
	yield := func(v int) bool {
		count++
		return count < limit
	}
	p.src.enumerate(yield) // want `yield binds a capturing closure`
	return count
}

// A func-typed field is a dynamic callee too.
type stepRunner struct {
	emit func(int) bool
}

func runStep(r *stepRunner, rows []int, sum *int) {
	for _, v := range rows {
		r.emit(v) // no finding here: the arg is not a closure...
	}
	cb := func(v int) bool { *sum += v; return true }
	apply(r, cb) // static callee: fine
	_ = cb
}

func apply(r *stepRunner, f func(int) bool) { r.emit(0) }

// Capturing closures stored from a loop body allocate per iteration.
func buildFilters(p *plan, cols []int) {
	for _, c := range cols {
		c := c
		p.filters = append(p.filters, func(v int) bool { // want `capturing closure allocated and stored every loop iteration`
			return v == c
		})
	}
}
