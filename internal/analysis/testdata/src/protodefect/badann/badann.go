// Package badann seeds malformed protocol annotations: a //guardedby:
// naming no sibling mutex and a //walorder:replay without a reason.
package badann

import "sync"

type c struct {
	mu sync.Mutex
	//guardedby:nosuch
	n int
}

//walorder:replay
func republish(x *c) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n++
}
