// Seeded violations for the sqltaint analyzer: strings reaching
// query execution that were not derived from sqlast rendering.
// Regression note: cmd/xsql's \explain REPL path feeds the user's
// typed SQL to sqlast.Parse — the one legitimate raw source — and
// carries an //xvet:ignore sqltaint directive; everything else must
// build a sqlast tree and Render it.
package a

import (
	"fmt"

	"repro/internal/sqlast"
)

// Non-constant concatenation splices fragments: tainted even though
// both halves look harmless.
func concat(table string) error {
	q := "SELECT id FROM " + table
	_, err := sqlast.Parse(q) // want `SQL text reaching sqlast\.Parse is not derived from sqlast rendering`
	return err
}

// fmt results are unknown call results: tainted.
func sprintf(table string) error {
	q := fmt.Sprintf("SELECT id FROM %s", table)
	_, err := sqlast.Parse(q) // want `SQL text reaching sqlast\.Parse is not derived from sqlast rendering`
	return err
}

// Dataflow, not syntax: the taint survives an intermediate rebinding.
func laundered(cond string) error {
	q := "SELECT n.id FROM nodes n"
	q = q + " WHERE " + cond
	final := q
	_, err := sqlast.Parse(final) // want `SQL text reaching sqlast\.Parse is not derived from sqlast rendering`
	return err
}

// Clean on one path, tainted on the other: still a finding (the
// lattice joins to Mixed, and only Yes passes).
func mixedPaths(raw string, useRaw bool) error {
	q := "SELECT 1"
	if useRaw {
		q = q + raw
	}
	_, err := sqlast.Parse(q) // want `SQL text reaching sqlast\.Parse is not derived from sqlast rendering`
	return err
}
