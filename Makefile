# make check mirrors .github/workflows/ci.yml locally.
GO ?= go

.PHONY: check build fmtcheck vet xvet transcheck plancheck protocheck test race chaos batch-smoke crash-smoke fuzz-smoke bench-smoke explain-smoke planquality-smoke

check: build fmtcheck vet xvet transcheck plancheck protocheck test race chaos batch-smoke crash-smoke planquality-smoke

build:
	$(GO) build ./...

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The custom invariant analyzers (rawsql, deweycmp, regexploop,
# errdrop, recoverguard, opstats, ctxflow, lockscope, sqltaint,
# hotalloc, goleak, syncerr, statflow, snapfreeze, guardedby,
# walorder, xvetignore); -novet because `make vet` already ran the
# standard passes. Results are cached per package under .xvetcache/
# (keyed on the xvet binary's own signature, so a rebuilt analyzer
# re-checks everything); pass -nocache to force a full re-check, or
# -timing for a per-analyzer wall-time summary.
xvet:
	$(GO) run ./cmd/xvet -novet ./...

# Static translation validation: every Table 1 pattern derivation —
# over the synthetic axis/shape matrix and over everything traced
# while translating the fig3 + XPathMark corpora — must be
# language-equivalent to a reference automaton built directly from
# the axis semantics (DESIGN.md section 6).
transcheck:
	$(GO) run ./cmd/xvet -transcheck

# Static plan verification: the fig3 + XPathMark corpora and a seeded
# random query matrix (2500 queries per workload, each compiled under
# both translators) are translated and compiled, and every compiled
# plan is certificate-checked against the logical form of its SQL
# statement; §4.5 path-filter omissions are re-justified independently
# (DESIGN.md section 10).
plancheck:
	$(GO) run ./cmd/xvet -plancheck

# Publication-protocol verification: the interprocedural analyzers
# (snapfreeze, guardedby, walorder) sweep the tree, the seeded-defect
# harness proves every protocol violation class is rejected with a
# call-path witness, and the golden call-graph dumps pin the commit
# protocol's graph shape (DESIGN.md sections 6 and 12).
protocheck:
	$(GO) run ./cmd/xvet -novet -only snapfreeze,guardedby,walorder ./...
	$(GO) test -count=1 -run 'TestProtocolMutations|TestSnapFreeze|TestWALOrder|TestGuardedBy|TestProtocolPackagesClean' ./internal/analysis/
	$(GO) test -count=1 ./internal/analysis/callgraph/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos arms the failpoints (engine/morsel-claim, engine/hash-build,
# engine/plancache-insert, engine/pattern-compile) and the budget
# matrix under -race: injected faults must unwind to typed errors with
# no goroutine leaks and no poisoned caches (DESIGN.md section 8).
chaos:
	$(GO) test -race -run 'TestChaos|TestBudget|TestRunContext|TestPreparedRunContext|TestConcurrentBudgeted' ./internal/engine/ ./internal/failpoint/
	$(GO) test -race -run 'TestVerifyPlan|TestMutationsRejected' ./internal/plancheck/

# batch-smoke checks batch-size invariance: every query in the
# engine's parallel matrix and the Figure 3 corpus must return
# byte-identical results, operator statistics, and governor errors at
# every batch capacity (including the degenerate 1), and a fault
# injected at the engine/batch-flush failpoint must unwind to a typed
# error with no goroutine leaks (DESIGN.md section 11).
batch-smoke:
	$(GO) test -race -count=1 -run 'TestBatchSizeInvariance|TestGovernorBatchInvariance|TestChaosBatchFlush|TestBatchSizeOptionPlumbs' ./internal/engine/
	$(GO) test -race -count=1 -run 'TestBatchSizeInvarianceOnFig3' ./internal/bench/

# crash-smoke is the kill-and-recover matrix: a persistent store is
# crashed at every durability failpoint (wal/append, wal/fsync,
# wal/checkpoint, engine/recovery-replay) plus at the file level (torn
# WAL tail, CRC bit flips), recovery is re-run, and the recovered
# database must answer the fig3 workload oracle-identically while
# concurrent readers only ever see whole-document snapshots — all
# under -race (DESIGN.md section 12).
crash-smoke:
	$(GO) test -race -count=1 -run 'TestCrashAtEverySite|TestCrashDuring|TestDoubleReplay|TestCreateIndexRecovery|TestConcurrentWriter|TestWriteBatchMulti|TestConcurrentDDL' ./internal/engine/
	$(GO) test -race -count=1 ./internal/wal/
	$(GO) test -race -count=1 -run 'TestCrashSmoke|TestConcurrentLoadAndFig3|TestMixedExperiment' ./internal/bench/

# fuzz-smoke gives each native fuzz target a short budget; regression
# inputs from past crashes live in each package's testdata/fuzz and
# also run under plain `go test`.
fuzz-smoke:
	$(GO) test -fuzz=FuzzXPathParse -fuzztime=10s ./internal/xpath/
	$(GO) test -fuzz=FuzzDeweyDecode -fuzztime=10s ./internal/dewey/
	$(GO) test -fuzz=FuzzPathPattern -fuzztime=10s ./internal/pathre/
	$(GO) test -fuzz=FuzzPathDFA -fuzztime=10s ./internal/pathre/

# bench-smoke runs a tiny Figure 3 pass in both execution modes
# (serial, then morsel-parallel) with oracle verification on: a fast
# end-to-end check that every measured configuration still returns the
# native evaluator's node sets.
bench-smoke:
	$(GO) run ./cmd/xbench -experiment fig3 -scale 0.02 -reps 1 -budget 30s
	$(GO) run ./cmd/xbench -experiment fig3 -scale 0.02 -reps 1 -budget 30s -parallel

# explain-smoke runs EXPLAIN ANALYZE over the Figure 3 query set on
# both workloads, asserting that every operator reports runtime stats
# and that no schema-aware UNION branch joins more relations than the
# Edge-like translation's widest branch.
explain-smoke:
	$(GO) run ./cmd/xbench -experiment explain -scale 0.02 -reps 1

# planquality-smoke compares synopsis-costed plans against the
# pre-synopsis heuristic planner on the fig3 corpus: after adaptive
# settling every operator's cardinality q-error must be at most 2 and
# no query's intermediate-result work may regress past the slack
# bound, with oracle verification on (DESIGN.md section 13).
planquality-smoke:
	$(GO) run ./cmd/xbench -experiment planquality -scale 0.02 -reps 1
