package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != 17 {
		t.Fatalf("default selection: got %d analyzers, err %v; want 17, nil", len(all), err)
	}
	some, err := selectAnalyzers("rawsql, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "rawsql" || some[1].Name != "errdrop" {
		t.Fatalf("subset selection wrong: %+v", some)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must error")
	}
	for _, name := range []string{"ctxflow", "lockscope", "sqltaint", "hotalloc", "goleak", "statflow", "snapfreeze", "guardedby", "walorder", "xvetignore"} {
		if _, err := selectAnalyzers(name); err != nil {
			t.Errorf("analyzer %s not registered: %v", name, err)
		}
	}
}

// writeTree materializes a file tree (paths relative to root).
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

const tmpGoMod = "module xvettmp\n\ngo 1.22\n"

// Exit status must distinguish findings (1) from load failures and
// internal errors (2), with 0 for a clean tree.
func TestExitCodes(t *testing.T) {
	var out, errw bytes.Buffer

	clean := t.TempDir()
	writeTree(t, clean, map[string]string{
		"go.mod": tmpGoMod,
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nfunc B() int { return 2 }\n",
	})
	if code := run(clean, []string{"-novet", "-nocache", "./..."}, &out, &errw); code != exitClean {
		t.Fatalf("clean tree: exit %d, want %d\nstdout: %s\nstderr: %s", code, exitClean, out.String(), errw.String())
	}

	// A goroutine leak inside a package whose import path ends in
	// internal/engine is a finding: exit 1.
	leaky := t.TempDir()
	writeTree(t, leaky, map[string]string{
		"go.mod":               tmpGoMod,
		"internal/engine/e.go": "package engine\n\nfunc spawn() {\n\tgo func() {\n\t\tfor {\n\t\t}\n\t}()\n}\n",
	})
	out.Reset()
	errw.Reset()
	if code := run(leaky, []string{"-novet", "-nocache", "./..."}, &out, &errw); code != exitFindings {
		t.Fatalf("leaky tree: exit %d, want %d\nstderr: %s", code, exitFindings, errw.String())
	}
	if !strings.Contains(out.String(), "goleak") {
		t.Fatalf("leaky tree output missing goleak diagnostic:\n%s", out.String())
	}

	// A type error makes the package unloadable: exit 2.
	broken := t.TempDir()
	writeTree(t, broken, map[string]string{
		"go.mod": tmpGoMod,
		"a/a.go": "package a\n\nvar x int = \"not an int\"\n",
	})
	out.Reset()
	errw.Reset()
	if code := run(broken, []string{"-novet", "-nocache", "./..."}, &out, &errw); code != exitInternal {
		t.Fatalf("broken tree: exit %d, want %d\nstderr: %s", code, exitInternal, errw.String())
	}

	// An unknown analyzer name is an internal error, not a finding.
	out.Reset()
	errw.Reset()
	if code := run(clean, []string{"-novet", "-only", "nosuch", "./..."}, &out, &errw); code != exitInternal {
		t.Fatalf("unknown analyzer: exit %d, want %d", code, exitInternal)
	}
}

// A warm run must answer every package from the cache without loading
// anything, and must be measurably faster than the cold run that
// populated it.
func TestCacheWarmFasterThanCold(t *testing.T) {
	root := t.TempDir()
	// A deliberately sizable package so the cold type-check dwarfs
	// the warm run's file hashing.
	var big strings.Builder
	big.WriteString("package big\n\nimport \"strings\"\n\n")
	for i := 0; i < 1200; i++ {
		fmt.Fprintf(&big, "func f%d(s string) string { return strings.TrimSpace(s) + %q }\n", i, fmt.Sprint(i))
	}
	writeTree(t, root, map[string]string{
		"go.mod":     tmpGoMod,
		"big/big.go": big.String(),
		"a/a.go":     "package a\n\nfunc A() int { return 1 }\n",
	})
	analyzers, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	start := time.Now()
	cold, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	coldDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Loaded != 2 || cold.Hits != 0 || cold.Findings != 0 {
		t.Fatalf("cold run: %+v, want 2 loaded, 0 hits, 0 findings", cold)
	}

	start = time.Now()
	warm, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	warmDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Loaded != 0 || warm.Hits != 2 {
		t.Fatalf("warm run: %+v, want 0 loaded, 2 hits", warm)
	}
	if warmDur >= coldDur {
		t.Errorf("warm run not faster than cold: warm %v, cold %v", warmDur, coldDur)
	}
	t.Logf("cold %v, warm %v", coldDur, warmDur)

	// -nocache bypasses the cache entirely.
	nocache, err := runAnalyzers(root, analyzers, []string{"./..."}, false, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if nocache.Hits != 0 || nocache.Loaded != 2 {
		t.Fatalf("-nocache run: %+v, want 2 loaded, 0 hits", nocache)
	}
}

// A rebuilt xvet binary must invalidate warm results even when no
// analyzed source changed: an analyzer's Run body can change without
// the analyzer set changing, and stale diagnostics are worse than a
// cold run. The binary signature is part of the cache salt; swapping
// it must force a full reload.
func TestCacheInvalidatedByBinaryChange(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": tmpGoMod,
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nfunc B() int { return 2 }\n",
	})
	analyzers, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	if _, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out); err != nil {
		t.Fatal(err)
	}
	warm, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != 2 || warm.Loaded != 0 {
		t.Fatalf("warm run before binary change: %+v, want 2 hits, 0 loaded", warm)
	}

	orig := buildSig
	buildSig = func() string { return "rebuilt-binary-signature" }
	defer func() { buildSig = orig }()

	after, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if after.Hits != 0 || after.Loaded != 2 {
		t.Fatalf("run under new binary signature: %+v, want 0 hits, 2 loaded", after)
	}

	// And the new signature's results are themselves cacheable.
	again, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if again.Hits != 2 || again.Loaded != 0 {
		t.Fatalf("warm run after binary change: %+v, want 2 hits, 0 loaded", again)
	}
}

// -timing must attribute wall time to every analyzer that ran, and a
// fully cached run must attribute nothing (its analyzers never ran).
func TestTimingAggregation(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod": tmpGoMod,
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
	})
	analyzers, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	cold, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Timing) != len(analyzers) {
		t.Fatalf("cold run timed %d analyzers, want %d", len(cold.Timing), len(analyzers))
	}
	for _, a := range analyzers {
		if _, ok := cold.Timing[a.Name]; !ok {
			t.Errorf("no timing entry for %s", a.Name)
		}
	}
	if err := reportTiming(cold, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "xvet: timing:") {
		t.Fatalf("human timing summary missing:\n%s", out.String())
	}
	out.Reset()
	if err := reportTiming(cold, true, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"millis"`) {
		t.Fatalf("JSON timing records missing:\n%s", out.String())
	}

	warm, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Timing) != 0 {
		t.Fatalf("fully cached run attributed timing: %v", warm.Timing)
	}
}

// The interprocedural analyzers must not make the edit loop sluggish:
// a warm sweep of this repository — the real tree, all analyzers —
// stays under five seconds.
func TestWarmSweepUnderFiveSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree sweep")
	}
	analyzers, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	// First sweep warms the cache (it may already be warm from a
	// previous xvet run; either way it is untimed).
	if _, err := runAnalyzers(".", analyzers, []string{"./..."}, false, true, io.Discard); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	warm, err := runAnalyzers(".", analyzers, []string{"./..."}, false, true, io.Discard)
	dur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Loaded != 0 {
		t.Fatalf("second sweep loaded %d packages, want 0 (all cached)", warm.Loaded)
	}
	if dur >= 5*time.Second {
		t.Errorf("warm sweep took %v, want < 5s", dur)
	}
	t.Logf("warm sweep: %v over %d packages", dur, warm.Hits)
}

// Touching one file invalidates only its own package and the packages
// that import it; unrelated packages still hit the cache. Cached
// diagnostics are replayed verbatim.
func TestCacheInvalidationIsPerPackage(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":               tmpGoMod,
		"a/a.go":               "package a\n\nfunc A() int { return 1 }\n",
		"b/b.go":               "package b\n\nfunc B() int { return 2 }\n",
		"c/c.go":               "package c\n\nimport \"xvettmp/a\"\n\nfunc C() int { return a.A() }\n",
		"internal/engine/e.go": "package engine\n\nfunc spawn() {\n\tgo func() {\n\t\tfor {\n\t\t}\n\t}()\n}\n",
	})
	analyzers, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	cold, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Loaded != 4 || cold.Findings != 1 {
		t.Fatalf("cold run: %+v, want 4 loaded, 1 finding", cold)
	}
	firstOut := out.String()

	out.Reset()
	warm, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Loaded != 0 || warm.Hits != 4 || warm.Findings != 1 {
		t.Fatalf("warm run: %+v, want 0 loaded, 4 hits, 1 finding", warm)
	}
	if out.String() != firstOut {
		t.Fatalf("cached diagnostics differ from original:\ncold: %s\nwarm: %s", firstOut, out.String())
	}

	// Touch a: a and its importer c must reload; b and the engine
	// package must still hit.
	if err := os.WriteFile(filepath.Join(root, "a", "a.go"),
		[]byte("package a\n\nfunc A() int { return 42 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	after, err := runAnalyzers(root, analyzers, []string{"./..."}, false, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if after.Loaded != 2 || after.Hits != 2 {
		t.Fatalf("after touching a: %+v, want 2 loaded (a, c), 2 hits (b, engine)", after)
	}
}
