package engine

import (
	"fmt"
	"testing"

	"repro/internal/dewey"
	"repro/internal/sqlast"
)

// statsDelta runs f and returns the plan-cache hit/miss deltas it
// produced.
func statsDelta(db *DB, f func()) (hits, misses uint64) {
	h0, m0 := db.PlanCacheStats()
	f()
	h1, m1 := db.PlanCacheStats()
	return h1 - h0, m1 - m0
}

func TestPlanCacheHitOnRepeat(t *testing.T) {
	db := fixtureDB(t)
	q := "SELECT F.id FROM F WHERE F.text = '2' ORDER BY F.id"
	hits, misses := statsDelta(db, func() {
		mustRun(t, db, q)
		mustRun(t, db, q)
		mustRun(t, db, q)
	})
	if misses != 1 || hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if db.PlanCacheSize() != 1 {
		t.Fatalf("PlanCacheSize = %d, want 1", db.PlanCacheSize())
	}
	// Semantically identical but differently written SQL normalizes to
	// the same rendered key.
	hits, misses = statsDelta(db, func() {
		mustRun(t, db, "select F.id from F where F.text = '2' order by F.id")
	})
	if hits != 1 || misses != 0 {
		t.Errorf("normalized rewrite: hits=%d misses=%d, want 1/0", hits, misses)
	}
}

func TestPlanCacheUnionCached(t *testing.T) {
	db := fixtureDB(t)
	q := "SELECT F.id AS v FROM F UNION SELECT G.id AS v FROM G ORDER BY v"
	var want, got *Result
	hits, misses := statsDelta(db, func() {
		want = mustRun(t, db, q)
		got = mustRun(t, db, q)
	})
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !equalResults(want, got) {
		t.Fatal("cached union plan returned different rows")
	}
}

// TestPlanCacheInvalidatedByInsert checks that mutating a touched
// table forces a re-plan and that the re-planned query sees the new
// row.
func TestPlanCacheInvalidatedByInsert(t *testing.T) {
	db := fixtureDB(t)
	q := "SELECT COUNT(*) FROM F"
	n := mustRun(t, db, q).Rows[0][0].I
	db.Table("F").MustInsert(NewInt(100), NewInt(6), NewBytes(dewey.New(1, 1, 2, 1, 9)), NewInt(6), NewText("x"))
	var got int64
	hits, misses := statsDelta(db, func() {
		got = mustRun(t, db, q).Rows[0][0].I
	})
	if got != n+1 {
		t.Fatalf("count after insert = %d, want %d", got, n+1)
	}
	if hits != 0 || misses != 1 {
		t.Errorf("post-insert lookup: hits=%d misses=%d, want 0/1", hits, misses)
	}
	// Unrelated tables keep their cached plans.
	qg := "SELECT COUNT(*) FROM G"
	mustRun(t, db, qg)
	db.Table("F").MustInsert(NewInt(101), NewInt(6), NewBytes(dewey.New(1, 1, 2, 1, 10)), NewInt(6), NewText("y"))
	hits, misses = statsDelta(db, func() { mustRun(t, db, qg) })
	if hits != 1 || misses != 0 {
		t.Errorf("unrelated table after insert: hits=%d misses=%d, want 1/0", hits, misses)
	}
}

// TestPlanCacheInvalidatedByCreateIndex checks that DDL on a touched
// table also invalidates (a new index can change the chosen plan).
func TestPlanCacheInvalidatedByCreateIndex(t *testing.T) {
	db := fixtureDB(t)
	q := "SELECT F.id FROM F WHERE F.text = '2'"
	mustRun(t, db, q)
	if _, err := db.Table("F").CreateIndex("F_text", "text"); err != nil {
		t.Fatal(err)
	}
	hits, misses := statsDelta(db, func() { mustRun(t, db, q) })
	if hits != 0 || misses != 1 {
		t.Errorf("post-DDL lookup: hits=%d misses=%d, want 0/1", hits, misses)
	}
}

// TestPlanCacheSubqueryTablesTracked checks that tables referenced
// only inside a correlated subquery also invalidate the outer plan.
func TestPlanCacheSubqueryTablesTracked(t *testing.T) {
	db := fixtureDB(t)
	q := "SELECT B.id FROM B WHERE EXISTS (SELECT NULL FROM G WHERE G.par = B.id AND G.id = 200) ORDER BY B.id"
	if n := len(mustRun(t, db, q).Rows); n != 0 {
		t.Fatalf("rows before insert = %d, want 0", n)
	}
	// The insert touches G, which appears only inside the subquery:
	// the cached outer plan must still be invalidated.
	db.Table("G").MustInsert(NewInt(200), NewInt(10), NewBytes(dewey.New(1, 2, 9)), NewInt(7))
	if n := len(mustRun(t, db, q).Rows); n != 1 {
		t.Fatalf("rows after subquery-table insert = %d, want 1", n)
	}
}

func TestPlanCacheLRUBound(t *testing.T) {
	db := fixtureDB(t)
	for i := 0; i < planCacheCap+50; i++ {
		mustRun(t, db, fmt.Sprintf("SELECT F.id FROM F WHERE F.id = %d", i))
	}
	if n := db.PlanCacheSize(); n != planCacheCap {
		t.Fatalf("PlanCacheSize = %d, want cap %d", n, planCacheCap)
	}
	// The most recent query must still be cached...
	hits, misses := statsDelta(db, func() {
		mustRun(t, db, fmt.Sprintf("SELECT F.id FROM F WHERE F.id = %d", planCacheCap+49))
	})
	if hits != 1 || misses != 0 {
		t.Errorf("MRU entry: hits=%d misses=%d, want 1/0", hits, misses)
	}
	// ...and the oldest evicted.
	hits, misses = statsDelta(db, func() {
		mustRun(t, db, "SELECT F.id FROM F WHERE F.id = 0")
	})
	if hits != 0 || misses != 1 {
		t.Errorf("evicted entry: hits=%d misses=%d, want 0/1", hits, misses)
	}
}

func TestPrepare(t *testing.T) {
	db := fixtureDB(t)
	p, err := db.Prepare("SELECT F.id FROM F ORDER BY F.id")
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	var got *Result
	hits, misses := statsDelta(db, func() {
		got, err = p.RunWithOptions(ExecOptions{Parallelism: 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 || misses != 0 {
		t.Errorf("prepared re-run: hits=%d misses=%d, want 1/0", hits, misses)
	}
	if !equalResults(want, got) {
		t.Fatal("prepared re-run returned different rows")
	}
	// A prepared statement stays correct across invalidation.
	db.Table("F").MustInsert(NewInt(300), NewInt(6), NewBytes(dewey.New(1, 1, 2, 1, 11)), NewInt(6), NewText("z"))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows)+1 {
		t.Fatalf("rows after insert = %d, want %d", len(res.Rows), len(want.Rows)+1)
	}
	if _, err := db.Prepare("SELECT bogus FROM"); err == nil {
		t.Error("Prepare accepted malformed SQL")
	}
}

// TestPlanCacheStaleReinsert is the regression test for the
// eviction/in-flight race: a plan compiled before a table mutation
// (e.g. one whose cache entry was evicted while its execution was
// still in flight) must not be re-inserted with stale table
// versions, where it would evict a good entry and serve only to be
// thrown away by the next lookup's staleness check.
func TestPlanCacheStaleReinsert(t *testing.T) {
	db := fixtureDB(t)
	q := "SELECT F.id FROM F WHERE F.text = '2' ORDER BY F.id"
	st, err := sqlast.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	key := sqlast.Render(st)
	// Compile (as an in-flight execution would have) before mutating.
	cs, err := compileStmt(db, st)
	if err != nil {
		t.Fatal(err)
	}
	// The mutation bumps F's version: cs is now stale.
	f := db.Table("F")
	if _, err := f.Insert([]Value{NewInt(999), NewInt(6), NewBytes(dewey.New(1, 1, 2, 1, 3)), NewInt(6), NewText("2")}); err != nil {
		t.Fatal(err)
	}
	if cs.fresh(db.loadSnap()) {
		t.Fatal("test setup: plan still fresh after Insert")
	}
	db.plans.put(key, cs, db.loadSnap())
	if got := db.plans.get(key, db.loadSnap()); got != nil {
		t.Fatal("stale plan was re-inserted and served")
	}
	if n := db.PlanCacheSize(); n != 0 {
		t.Fatalf("PlanCacheSize = %d after stale put, want 0", n)
	}
	// A fresh run re-plans, caches, and sees the inserted row.
	res := mustRun(t, db, q)
	found := false
	for _, r := range res.Rows {
		if r[0].I == 999 {
			found = true
		}
	}
	if !found {
		t.Error("re-planned query does not see the post-mutation row")
	}
	if n := db.PlanCacheSize(); n != 1 {
		t.Errorf("PlanCacheSize = %d after clean run, want 1", n)
	}
}
