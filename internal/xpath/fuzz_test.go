package xpath

import (
	"testing"
)

// FuzzXPathParse throws arbitrary source at the XPath parser. The
// parser must never panic: malformed input returns an error. When a
// parse succeeds, rendering the AST and re-parsing the rendering must
// succeed and reach a fixpoint (String is a syntactic normal form).
func FuzzXPathParse(f *testing.F) {
	seeds := []string{
		"/A/B/C",
		"//B//F",
		"/A/B[2]/C",
		"/child::A/descendant-or-self::node()/child::F",
		"/A/B[@id='x']/C",
		"/A/B[C/D]/E",
		"/A/*/C | //G",
		"/A/B[position()=2]",
		"/A/B[count(C) > 1]",
		"/A/B[contains(text(), 'v')]",
		"book/title",
		"/A/following-sibling::B",
		"/A/B[1+2*3]",
		"/A/B['quo''te']",
		"",
		"/",
		"//",
		"[",
		"/A[",
		"/A/B[@",
		"4",
		"'lit'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return
		}
		r1 := expr.String()
		expr2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, r1, err)
		}
		if r2 := expr2.String(); r2 != r1 {
			t.Fatalf("render not a fixpoint for %q: %q -> %q", src, r1, r2)
		}
	})
}
