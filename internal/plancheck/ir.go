// Package plancheck proves a compiled plan equivalent to the
// statement it came from. Both sides — the sqlast statement the
// translator produced and the decompiled shape of what the planner
// and physical lowering actually built (engine.StmtShape) — are
// extracted into a canonical relational-algebra normal form (SelIR)
// through a fixed set of verified rewrite rules: AND/OR flattening
// and commutative operand ordering, comparison orientation (a > b
// rewritten to b < a), function-name case folding, and
// content-addressed fingerprinting of correlated subplans. A
// certificate records the justification of every plan decision the
// normal form cannot express positionally: join binding order,
// access-path substitution (each index or hash access must be
// justified by a predicate of the statement plus index metadata),
// physical pipeline legality (DISTINCT/ORDER placement), and the
// Section 4.5 path-filter omissions taken at translation time. A
// mismatch anywhere is reported as a Finding carrying a minimal
// counterexample — the first conjunct, column, or operator token on
// which the two sides disagree.
package plancheck

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/sqlast"
)

// SelIR is the canonical normal form of one SELECT block. Two SELECT
// blocks are equivalent under the checker's rewrite rules iff their
// SelIRs are equal field by field (Preds as a multiset, which the
// sorted slice encodes).
type SelIR struct {
	Distinct  bool
	CountStar bool
	// Cols are the projected expressions in output order, canonical.
	Cols []string
	// ColNames are the projected column names in output order.
	ColNames []string
	// Tables are the "alias=table" bindings, sorted.
	Tables []string
	// Preds are the WHERE conjuncts, canonical and sorted (a
	// multiset: duplicates are preserved).
	Preds []string
	// Order are the ORDER BY keys in order, canonical, with " DESC"
	// appended for descending keys.
	Order []string

	// predExprs holds the normalized expression for each entry of
	// Preds (same order), for the regexp-equivalence fallback.
	predExprs []sqlast.Expr
}

// canonical serializes the IR deterministically. It is the input to
// Hash and the basis of subplan fingerprints.
func (ir *SelIR) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distinct=%v;countstar=%v;", ir.Distinct, ir.CountStar)
	fmt.Fprintf(&b, "cols=%s;", strings.Join(ir.Cols, "\x01"))
	fmt.Fprintf(&b, "names=%s;", strings.Join(ir.ColNames, "\x01"))
	fmt.Fprintf(&b, "tables=%s;", strings.Join(ir.Tables, "\x01"))
	fmt.Fprintf(&b, "preds=%s;", strings.Join(ir.Preds, "\x01"))
	fmt.Fprintf(&b, "order=%s", strings.Join(ir.Order, "\x01"))
	return b.String()
}

// Hash returns the normal-form hash: the final certificate step
// compares the two sides' hashes after all structural checks pass.
func (ir *SelIR) Hash() string { return fingerprint(ir.canonical()) }

// UnionIR is the canonical form of a UNION statement.
type UnionIR struct {
	Branches []*SelIR
	// OrderPos/OrderDesc are the union-level ORDER BY keys resolved
	// to projected column positions of the first branch.
	OrderPos  []int
	OrderDesc []bool
}

// StmtIR is the canonical form of a statement; exactly one of
// Select/Union is set.
type StmtIR struct {
	Select *SelIR
	Union  *UnionIR
}

// Hash returns the statement's normal-form hash.
func (s *StmtIR) Hash() string {
	if s.Select != nil {
		return s.Select.Hash()
	}
	var b strings.Builder
	for i, br := range s.Union.Branches {
		fmt.Fprintf(&b, "branch%d=%s;", i, br.canonical())
	}
	fmt.Fprintf(&b, "orderpos=%v;orderdesc=%v", s.Union.OrderPos, s.Union.OrderDesc)
	return fingerprint(b.String())
}

// fingerprint content-addresses a canonical string (FNV-1a 64).
func fingerprint(s string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// normalize rewrites an expression into the checker's canonical form
// using only equivalence-preserving rules:
//
//   - AND and OR chains are flattened, their operands normalized,
//     sorted by rendered text, and rebuilt left-associatively
//     (commutativity + associativity of the boolean connectives);
//   - = and <> sort their two operands by rendered text
//     (commutativity of equality);
//   - a > b becomes b < a and a >= b becomes b <= a (comparison
//     orientation);
//   - function names are folded to upper case, matching the planner.
//
// All other nodes are rebuilt structurally with normalized children.
func normalize(e sqlast.Expr) sqlast.Expr {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case sqlast.OpAnd, sqlast.OpOr:
			parts := flattenChain(x, x.Op)
			for i := range parts {
				parts[i] = normalize(parts[i])
			}
			sort.Slice(parts, func(i, j int) bool { return parts[i].String() < parts[j].String() })
			out := parts[0]
			for _, p := range parts[1:] {
				out = &sqlast.Binary{Op: x.Op, L: out, R: p}
			}
			return out
		}
		l, r := normalize(x.L), normalize(x.R)
		op := x.Op
		switch op {
		case sqlast.OpGt:
			op, l, r = sqlast.OpLt, r, l
		case sqlast.OpGe:
			op, l, r = sqlast.OpLe, r, l
		}
		if (op == sqlast.OpEq || op == sqlast.OpNe) && r.String() < l.String() {
			l, r = r, l
		}
		return &sqlast.Binary{Op: op, L: l, R: r}
	case *sqlast.Not:
		return &sqlast.Not{X: normalize(x.X)}
	case *sqlast.Between:
		return &sqlast.Between{X: normalize(x.X), Lo: normalize(x.Lo), Hi: normalize(x.Hi)}
	case *sqlast.IsNull:
		return &sqlast.IsNull{X: normalize(x.X), Negate: x.Negate}
	case *sqlast.Func:
		f := &sqlast.Func{Name: strings.ToUpper(x.Name)}
		for _, a := range x.Args {
			f.Args = append(f.Args, normalize(a))
		}
		return f
	}
	return e
}

// flattenChain collects the operands of a nested And/Or chain.
func flattenChain(e sqlast.Expr, op sqlast.BinOp) []sqlast.Expr {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == op {
		return append(flattenChain(b.L, op), flattenChain(b.R, op)...)
	}
	return []sqlast.Expr{e}
}

// flattenConjuncts splits a WHERE expression into its top-level AND
// conjuncts (nil yields none).
func flattenConjuncts(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	return flattenChain(e, sqlast.OpAnd)
}

// sortPreds normalizes a conjunct list into the sorted canonical
// multiset plus the parallel expression slice.
func sortPreds(conjuncts []sqlast.Expr) (texts []string, exprs []sqlast.Expr) {
	type pair struct {
		t string
		e sqlast.Expr
	}
	ps := make([]pair, len(conjuncts))
	for i, c := range conjuncts {
		n := normalize(c)
		ps[i] = pair{t: n.String(), e: n}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].t < ps[j].t })
	for _, p := range ps {
		texts = append(texts, p.t)
		exprs = append(exprs, p.e)
	}
	return texts, exprs
}
