package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/sqlast"
)

// TestRunContextCancel checks that cancelling the statement context
// stops serial and parallel execution with ctx.Err(), leaking no
// goroutines, independently of any wall-clock Timeout.
func TestRunContextCancel(t *testing.T) {
	db := bigDB(t)
	// A non-equi self-join: enough work that cancellation always
	// lands mid-execution.
	st, err := sqlast.Parse("SELECT COUNT(*) FROM item i, item j WHERE i.val < j.val")
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{0, 8} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		_, err := db.RunWithOptionsContext(ctx, st, ExecOptions{Parallelism: parallelism})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
		}
		waitGoroutines(t, before)
		// The next statement must run normally.
		if _, err := db.RunWithOptionsContext(context.Background(), st, ExecOptions{Parallelism: parallelism}); err != nil {
			t.Fatalf("parallelism %d: post-cancel run: %v", parallelism, err)
		}
	}
}

// TestRunContextDeadline checks that a context deadline behaves like
// Timeout, surfacing context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	db := bigDB(t)
	st, err := sqlast.Parse("SELECT COUNT(*) FROM item i, item j WHERE i.val < j.val")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err = db.RunWithOptionsContext(ctx, st, ExecOptions{Parallelism: 8})
	// The cancellation check sees ctx.Err(); the wall-clock check may
	// win the race and report ErrTimeout (the ctx deadline is merged
	// into the execCtx deadline). Either typed error is correct.
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want context.DeadlineExceeded or ErrTimeout", err)
	}
}

// TestPreparedRunContext checks the prepared-statement entry point
// honors cancellation too.
func TestPreparedRunContext(t *testing.T) {
	db := bigDB(t)
	p, err := db.Prepare("SELECT COUNT(*) FROM item i, item j WHERE i.val < j.val")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before execution starts
	if _, err := p.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := p.RunContext(context.Background()); err != nil {
		t.Fatalf("post-cancel run: %v", err)
	}
}

// waitGoroutines waits for the goroutine count to return to the
// baseline, failing after 2s of sustained growth.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
