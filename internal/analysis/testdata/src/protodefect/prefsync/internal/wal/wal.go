// Package wal is the miniature log the prefsync defect commits to.
package wal

import "os"

type Log struct {
	f    *os.File
	next uint64
}

func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f}, nil
}

func (l *Log) Append(p []byte) (uint64, error) {
	lsn := l.next
	l.next++
	_, err := l.f.Write(p)
	return lsn, err
}

func (l *Log) Sync() error { return l.f.Sync() }

func (l *Log) Commit(p []byte) (uint64, error) {
	lsn, err := l.Append(p)
	if err != nil {
		return 0, err
	}
	if err := l.Sync(); err != nil {
		return 0, err
	}
	return lsn, nil
}
