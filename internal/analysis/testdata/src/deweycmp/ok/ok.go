// Negative cases for the deweycmp analyzer: the sanctioned dewey
// comparators, nil emptiness tests, and comparisons of unrelated byte
// slices are not flagged.
package ok

import (
	"bytes"

	"repro/internal/dewey"
)

func sanctioned(a, b dewey.Pos) bool {
	if dewey.Compare(a, b) == 0 {
		return true
	}
	return dewey.IsDescendant(a, b) || dewey.IsFollowing(a, b)
}

func emptiness(a dewey.Pos) bool { return a == nil }

func plainBytes(x, y []byte) int { return bytes.Compare(x, y) }
