package staircase

import (
	"reflect"
	"testing"
)

func evalIDs(t *testing.T, d *Doc, q string) []int64 {
	t.Helper()
	ids, err := d.EvalString(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if ids == nil {
		ids = []int64{}
	}
	return ids
}

func TestPredicateValueKinds(t *testing.T) {
	d, _, _ := fixture(t)
	cases := map[string][]int64{
		// attribute set comparisons (kind 'a').
		"//D[@x = 4]":  {4},
		"//D[@x != 4]": {},
		"//D[@x >= 4]": {4},
		"//D[@x < 4]":  {},
		"//*[@x = 3]":  {1},
		// text() comparisons.
		"//F[text() = 2]": {8},
		"//F[text() > 5]": {10},
		// '.' self value.
		"//F[. = 7]": {10},
		// arithmetic on values.
		"//F[. * 2 = 14]":  {10},
		"//F[. div 2 = 1]": {8},
		"//F[. mod 2 = 1]": {10},
		"//F[. - 2 = 5]":   {10},
		// count over attributes.
		"//D[count(@x) = 1]": {4},
		"//D[count(@x) = 0]": {},
		// last() / position().
		"//E/F[last()]":         {10},
		"//E/F[position() = 1]": {8},
		// boolean connectives.
		"//F[. = 2 or . = 9]":  {8},
		"//F[. = 2 and . = 7]": {},
		"//F[not(. = 2)]":      {10},
		// literal predicates.
		"//F['yes']": {8, 10},
		"//F['']":    {},
		// union in predicate.
		"/A/B[C | G]": {2, 13},
		// node set vs node set.
		"//E[F != F]": {7},
		// absolute path in predicate.
		"//D[. != /A/B/C/E/F]": {4},
	}
	for q, want := range cases {
		got := evalIDs(t, d, q)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
}

func TestFollowingPrecedingUnionSemantics(t *testing.T) {
	d, ev, _ := fixture(t)
	// Multiple contexts: following of all C elements.
	for _, q := range []string{
		"//C/following::*",
		"//C/preceding::*",
		"//G/following::*",
		"//F/preceding::*",
	} {
		check(t, d, ev, q)
	}
}

func TestEvalErrors(t *testing.T) {
	d, _, _ := fixture(t)
	if _, err := d.EvalString("//F[foo(1)]"); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := d.EvalString("F/G"); err == nil {
		t.Error("relative top-level path should fail")
	}
	if _, err := d.EvalString("//F[1 | 2]"); err == nil {
		t.Error("union of non-paths should fail at parse")
	}
}

func TestRootAndMissingNames(t *testing.T) {
	d, _, _ := fixture(t)
	if got := evalIDs(t, d, "/"); !reflect.DeepEqual(got, []int64{1}) {
		t.Errorf("'/' = %v", got)
	}
	if got := evalIDs(t, d, "//nosuch"); len(got) != 0 {
		t.Errorf("//nosuch = %v", got)
	}
	if got := evalIDs(t, d, "/Z"); len(got) != 0 {
		t.Errorf("/Z = %v", got)
	}
}
