package xmltree

import (
	"strings"
	"testing"

	"repro/internal/dewey"
)

// paperDoc builds the document of the paper's Figure 1(b):
// A(B(C(D), C(E(F,F)), G), B(G(G))).
func paperDoc(t *testing.T) *Document {
	t.Helper()
	b := NewBuilder()
	b.Start("A").
		Start("B").
		Start("C").Start("D").End().End().
		Start("C").Start("E").Start("F").End().Start("F").End().End().End().
		Start("G").End().
		End().
		Start("B").
		Start("G").Start("G").End().End().
		End().
		End()
	doc, err := b.Doc()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBuilderPaperFigure1(t *testing.T) {
	doc := paperDoc(t)
	if doc.Len() != 12 {
		t.Fatalf("node count = %d, want 12", doc.Len())
	}
	want := []struct {
		id   int64
		pos  string
		name string
	}{
		{1, "1", "A"}, {2, "1.1", "B"}, {3, "1.1.1", "C"}, {4, "1.1.1.1", "D"},
		{5, "1.1.2", "C"}, {6, "1.1.2.1", "E"}, {7, "1.1.2.1.1", "F"},
		{8, "1.1.2.1.2", "F"}, {9, "1.1.3", "G"}, {10, "1.2", "B"},
		{11, "1.2.1", "G"}, {12, "1.2.1.1", "G"},
	}
	for _, w := range want {
		n := doc.NodeByID(w.id)
		if n == nil {
			t.Fatalf("node %d missing", w.id)
		}
		if n.Pos.String() != w.pos || n.Name != w.name {
			t.Errorf("node %d: pos=%s name=%s, want %s %s", w.id, n.Pos, n.Name, w.pos, w.name)
		}
	}
	// Paths.
	if doc.NodeByID(7).Path != "/A/B/C/E/F" {
		t.Errorf("path of node 7 = %s", doc.NodeByID(7).Path)
	}
	paths := doc.DistinctPaths()
	wantPaths := []string{"/A", "/A/B", "/A/B/C", "/A/B/C/D", "/A/B/C/E", "/A/B/C/E/F", "/A/B/G", "/A/B/G/G"}
	if len(paths) != len(wantPaths) {
		t.Fatalf("distinct paths = %v", paths)
	}
	for i := range paths {
		if paths[i] != wantPaths[i] {
			t.Errorf("path[%d] = %s, want %s", i, paths[i], wantPaths[i])
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<site><regions><africa><item id="item0" featured="yes"><name>Thing</name><payment>Cash</payment></item></africa></regions><people/></site>`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "site" {
		t.Fatalf("root = %s", doc.Root.Name)
	}
	var sb strings.Builder
	if err := doc.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if doc2.Len() != doc.Len() {
		t.Fatalf("round trip node count %d != %d", doc2.Len(), doc.Len())
	}
	item := doc.NodeByID(4)
	if item.Name != "item" {
		t.Fatalf("node 4 = %s", item.Name)
	}
	if v, ok := item.Attr("featured"); !ok || v != "yes" {
		t.Errorf("featured attr = %q, %v", v, ok)
	}
	if _, ok := item.Attr("missing"); ok {
		t.Error("missing attr reported present")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{``, `<a><b></a>`, `<a>`, `text only`} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestTextContent(t *testing.T) {
	doc, err := ParseString(`<a>one<b>two<c>three</c></b>four</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.TextContent(); got != "onetwothreefour" {
		t.Errorf("TextContent = %q", got)
	}
	// Text node path inherits the element path.
	for _, n := range doc.Nodes() {
		if n.Kind == Text && n.Value == "two" {
			if n.Path != "/a/b" {
				t.Errorf("text node path = %s", n.Path)
			}
		}
	}
}

func TestWhitespaceDropped(t *testing.T) {
	doc, err := ParseString("<a>\n  <b>x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Len() != 3 { // a, b, "x"
		t.Fatalf("node count = %d, want 3", doc.Len())
	}
}

func TestSortDocOrder(t *testing.T) {
	doc := paperDoc(t)
	nodes := []*Node{doc.NodeByID(9), doc.NodeByID(2), doc.NodeByID(9), doc.NodeByID(12)}
	sorted := SortDocOrder(nodes)
	if len(sorted) != 3 || sorted[0].ID != 2 || sorted[1].ID != 9 || sorted[2].ID != 12 {
		ids := []int64{}
		for _, n := range sorted {
			ids = append(ids, n.ID)
		}
		t.Fatalf("sorted ids = %v", ids)
	}
}

func TestIDsFollowDocumentOrder(t *testing.T) {
	doc := paperDoc(t)
	nodes := doc.Nodes()
	for i := 1; i < len(nodes); i++ {
		if dewey.Compare(nodes[i-1].Pos, nodes[i].Pos) >= 0 {
			t.Fatalf("node %d not before node %d in document order", nodes[i-1].ID, nodes[i].ID)
		}
	}
}

func TestBuilderMisusePanics(t *testing.T) {
	cases := []func(){
		func() { NewBuilder().End() },
		func() { NewBuilder().Text("x") },
		func() { NewBuilder().Start("a", "odd") },
		func() { NewBuilder().Start("a").End().Start("b") },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBuilderUnclosed(t *testing.T) {
	b := NewBuilder().Start("a")
	if _, err := b.Doc(); err == nil {
		t.Fatal("Doc with unclosed element should fail")
	}
	if _, err := NewBuilder().Doc(); err == nil {
		t.Fatal("Doc with no root should fail")
	}
}
