package pathre

// Builder assembles NFA programs directly from combinators, bypassing
// the pattern parser. transcheck uses it to build reference automata
// straight from XPath axis semantics, so that translator-emitted
// patterns can be checked for language equivalence against an
// construction that shares no string-assembly code with Table 1.
//
// Fragments are single-use: passing a Frag to two combinators aliases
// its dangling out-slots and corrupts the program.
type Builder struct {
	prog []inst
}

// A Frag is a partial program: an entry point plus dangling exits.
type Frag struct {
	start int
	out   []patchSlot
}

func (b *Builder) emit(in inst) int {
	b.prog = append(b.prog, in)
	return len(b.prog) - 1
}

// Byte matches exactly the byte c.
func (b *Builder) Byte(c byte) Frag {
	pc := b.emit(inst{op: opChar, c: c})
	return Frag{start: pc, out: []patchSlot{{pc: pc}}}
}

// Literal matches the bytes of s in sequence.
func (b *Builder) Literal(s string) Frag {
	if s == "" {
		return b.Empty()
	}
	frags := make([]Frag, len(s))
	for i := 0; i < len(s); i++ {
		frags[i] = b.Byte(s[i])
	}
	return b.Seq(frags...)
}

// AnyByte matches any single byte ('.').
func (b *Builder) AnyByte() Frag {
	pc := b.emit(inst{op: opAny})
	return Frag{start: pc, out: []patchSlot{{pc: pc}}}
}

// Class matches one byte against the listed bytes, or their
// complement when negated ("[...]" / "[^...]").
func (b *Builder) Class(negated bool, bytes ...byte) Frag {
	cl := &class{negated: negated}
	for _, c := range bytes {
		cl.add(c)
	}
	pc := b.emit(inst{op: opClass, class: cl})
	return Frag{start: pc, out: []patchSlot{{pc: pc}}}
}

// Empty matches the empty string.
func (b *Builder) Empty() Frag {
	pc := b.emit(inst{op: opJmp})
	return Frag{start: pc, out: []patchSlot{{pc: pc}}}
}

// Bol asserts beginning of input ('^').
func (b *Builder) Bol() Frag {
	pc := b.emit(inst{op: opBOL})
	return Frag{start: pc, out: []patchSlot{{pc: pc}}}
}

// Eol asserts end of input ('$').
func (b *Builder) Eol() Frag {
	pc := b.emit(inst{op: opEOL})
	return Frag{start: pc, out: []patchSlot{{pc: pc}}}
}

// Seq concatenates fragments left to right.
func (b *Builder) Seq(frags ...Frag) Frag {
	if len(frags) == 0 {
		return b.Empty()
	}
	cur := frags[0]
	for _, next := range frags[1:] {
		patch(b.prog, cur.out, next.start)
		cur = Frag{start: cur.start, out: next.out}
	}
	return cur
}

// Alt matches any one of the fragments.
func (b *Builder) Alt(frags ...Frag) Frag {
	if len(frags) == 0 {
		return b.Empty()
	}
	cur := frags[0]
	for _, right := range frags[1:] {
		pc := b.emit(inst{op: opSplit, x: cur.start, y: right.start})
		cur = Frag{start: pc, out: append(cur.out, right.out...)}
	}
	return cur
}

// Star matches f zero or more times.
func (b *Builder) Star(f Frag) Frag {
	pc := b.emit(inst{op: opSplit, x: f.start})
	patch(b.prog, f.out, pc)
	return Frag{start: pc, out: []patchSlot{{pc: pc, y: true}}}
}

// Plus matches f one or more times.
func (b *Builder) Plus(f Frag) Frag {
	pc := b.emit(inst{op: opSplit, x: f.start})
	patch(b.prog, f.out, pc)
	return Frag{start: f.start, out: []patchSlot{{pc: pc, y: true}}}
}

// Opt matches f zero or one time.
func (b *Builder) Opt(f Frag) Frag {
	pc := b.emit(inst{op: opSplit, x: f.start})
	return Frag{start: pc, out: append(f.out, patchSlot{pc: pc, y: true})}
}

// Compile seals the program rooted at f into a matchable Regexp.
// label stands in for the source pattern in String() and error
// messages; the fast-path analysis is skipped (the NFA is the ground
// truth being compared against, so it must run as an NFA).
func (b *Builder) Compile(f Frag, label string) *Regexp {
	pc := b.emit(inst{op: opMatch})
	patch(b.prog, f.out, pc)
	prog := make([]inst, len(b.prog))
	copy(prog, b.prog)
	return &Regexp{prog: prog, start: f.start, pattern: label}
}
