package engine

import (
	"math"

	"repro/internal/sqlast"
	"repro/internal/synopsis"
)

// The estimator: every cardinality and selectivity number the planner
// uses is derived here, from the snapshot's per-table synopsis when it
// can justify one and from the named defaults below when it cannot.
// Each estimate carries its provenance ("synopsis", "default" or
// "override"), recorded on the plan steps and exported through the
// plan shape so plancheck can discharge the estimate-provenance
// obligation. This file is the only place in the planner allowed to
// hold raw fractional selectivity constants (enforced by the statflow
// analyzer, internal/analysis/statflow.go).

// defaultFilterSelectivity is the fallback fraction of rows a single
// filtering conjunct keeps when the synopsis cannot estimate it — the
// classic System R guess, previously hard-coded in joinorder.go as
// "each filter keeps a tenth". The synopsis overrides it whenever the
// conjunct compares a column against literals the histogram covers.
const defaultFilterSelectivity = 0.1

// minSelectivity floors a table's combined filter selectivity so a
// pile of defaulted conjuncts cannot drive an estimate to zero.
const minSelectivity = 1e-4

// Estimate provenance values recorded in joinStep.estSource and
// exported as StepShape.EstSource.
const (
	// EstSynopsis marks an estimate derived from the snapshot's
	// synopsis (or index statistics pinned by the same snapshot).
	EstSynopsis = "synopsis"
	// EstDefault marks an estimate from the named default constants.
	EstDefault = "default"
	// EstOverride marks a cardinality injected by adaptive re-planning
	// from observed OpStats (plancache.go).
	EstOverride = "override"
)

// Adaptive re-planning bounds (used by plancache.go): a cached plan
// whose observed per-operator q-error exceeds replanQErrorThreshold is
// re-planned with observed cardinalities as overrides, at most
// maxAdaptiveReplans times per statement so estimation noise cannot
// cause plan flapping. The threshold matches the planquality
// experiment's quality bar: any estimate more than 2x off in either
// direction is corrected from observation on the next cache hit.
const (
	replanQErrorThreshold = 2.0
	maxAdaptiveReplans    = 2
)

// heuristicOnly reports whether synopsis-driven planning is disabled
// on this DB (the experiment baseline, SetHeuristicOnlyPlanning).
func (p *planner) heuristicOnly() bool { return p.db.heuristicPlans.Load() }

// SetHeuristicOnlyPlanning disables synopsis-backed estimation,
// synopsis filter omission, and adaptive re-planning, reverting the
// planner to the named defaults. It exists for the planquality
// experiment's baseline and must be set before statements are planned
// (cached plans are not invalidated by the flag).
func (db *DB) SetHeuristicOnlyPlanning(v bool) { db.heuristicPlans.Store(v) }

// tableSelectivity derives the fraction of the table's rows surviving
// its own single-table conjuncts, skipping the conjunct the chosen
// access path already absorbed (its rows are counted by the access
// estimate — applying its selectivity again would double-count). This
// replaces the old dynamic-sampling branch: the synopsis gives the
// same numbers the exact evaluation did for literal predicates,
// without touching rows. The second result reports whether any factor
// came from the synopsis.
func (p *planner) tableSelectivity(name string, t *Table, st *tableState, conjuncts []*conjunct, skip *conjunct, sc *scope) (float64, bool) {
	sel, synBacked := 1.0, false
	for _, c := range conjuncts {
		if c == skip || c.expr == nil || len(c.localRef) != 1 || !c.localRef[name] {
			continue
		}
		if !refsOnlyTable(c.expr, name, t) {
			continue
		}
		s, syn := p.conjunctSelectivity(c.expr, name, t, st, sc)
		sel *= s
		synBacked = synBacked || syn
	}
	if sel < minSelectivity {
		sel = minSelectivity
	}
	return sel, synBacked
}

// litOf extracts a literal operand's runtime value.
func litOf(e sqlast.Expr) (Value, bool) {
	switch x := e.(type) {
	case *sqlast.IntLit:
		return NewInt(x.Value), true
	case *sqlast.FloatLit:
		return NewFloat(x.Value), true
	case *sqlast.StrLit:
		return NewText(x.Value), true
	case *sqlast.BytesLit:
		return NewBytes(x.Value), true
	}
	return Null, false
}

// synEq estimates rows of the column equal to the literal.
func synEq(c synopsis.Col, v Value) (int64, bool) {
	switch v.Kind {
	case KInt, KBool:
		n, _ := c.EqInt(v.I)
		return n, true
	case KFloat:
		n, _ := c.EqFloat(v.F)
		return n, true
	case KText:
		n, _ := c.EqText(v.S)
		return n, true
	case KBytes:
		n, _ := c.EqBytes(v.B)
		return n, true
	}
	return 0, false
}

// conjunctSelectivity estimates the fraction of the table's rows one
// single-table conjunct keeps, consulting the synopsis for literal
// comparisons; the second result reports whether the synopsis (rather
// than the default) produced the number.
func (p *planner) conjunctSelectivity(e sqlast.Expr, name string, t *Table, st *tableState, sc *scope) (float64, bool) {
	if p.heuristicOnly() {
		return defaultFilterSelectivity, false
	}
	syn := st.syn
	rows := float64(syn.Rows())
	if rows == 0 {
		// Empty table: selectivity is moot, and exact.
		return 1, true
	}
	frac := func(n int64) float64 {
		f := float64(n) / rows
		if f > 1 {
			f = 1
		}
		return f
	}
	switch x := e.(type) {
	case *sqlast.Binary:
		col, lit := p.colOf(x.L, name, t, sc), sqlast.Expr(x.R)
		if col < 0 {
			col, lit = p.colOf(x.R, name, t, sc), x.L
		}
		if col < 0 {
			return defaultFilterSelectivity, false
		}
		v, ok := litOf(lit)
		if !ok {
			return defaultFilterSelectivity, false
		}
		cs := syn.Col(col)
		switch x.Op {
		case sqlast.OpEq:
			if n, ok := synEq(cs, v); ok {
				return frac(n), true
			}
		case sqlast.OpNe:
			if n, ok := synEq(cs, v); ok {
				return frac(cs.Count() - cs.Nulls() - n), true
			}
		case sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
			if v.Kind != KInt {
				return defaultFilterSelectivity, false
			}
			min, max, ok := cs.IntRange()
			if !ok {
				return defaultFilterSelectivity, false
			}
			lo, hi := min, max
			// Orient the comparison as 'col OP literal'.
			op := x.Op
			if p.colOf(x.L, name, t, sc) < 0 {
				op = flipOp(op)
			}
			switch op {
			case sqlast.OpLt:
				hi = v.I - 1
			case sqlast.OpLe:
				hi = v.I
			case sqlast.OpGt:
				lo = v.I + 1
			case sqlast.OpGe:
				lo = v.I
			}
			n, _ := cs.IntRangeCount(lo, hi)
			return frac(n), true
		}
		return defaultFilterSelectivity, false
	case *sqlast.Between:
		col := p.colOf(x.X, name, t, sc)
		if col < 0 {
			return defaultFilterSelectivity, false
		}
		lo, okL := litOf(x.Lo)
		hi, okH := litOf(x.Hi)
		if !okL || !okH || lo.Kind != KInt || hi.Kind != KInt {
			return defaultFilterSelectivity, false
		}
		n, _ := syn.Col(col).IntRangeCount(lo.I, hi.I)
		return frac(n), true
	case *sqlast.IsNull:
		col := p.colOf(x.X, name, t, sc)
		if col < 0 {
			return defaultFilterSelectivity, false
		}
		nulls := syn.Col(col).Nulls()
		if x.Negate {
			return frac(syn.Col(col).Count() - nulls), true
		}
		return frac(nulls), true
	case *sqlast.Not:
		inner, syn := p.conjunctSelectivity(x.X, name, t, st, sc)
		return 1 - inner, syn
	}
	return defaultFilterSelectivity, false
}

// accessEstimate estimates the rows an access path yields per binding
// of the already-bound tables, preferring synopsis statistics over the
// access path's own structural heuristic (accessPath.est). The planner
// never builds hash indexes at plan time anymore: equality fanout
// comes from the synopsis histogram.
func (p *planner) accessEstimate(a accessPath, st *tableState) (float64, bool) {
	if p.heuristicOnly() {
		return float64(a.est(st)), false
	}
	syn := st.syn
	rows := syn.Rows()
	avgFan := func(col int) (float64, bool) {
		c := syn.Col(col)
		d := c.Distinct()
		if d <= 0 {
			return float64(a.est(st)), false
		}
		f := float64(c.Count()-c.Nulls()) / float64(d)
		if f < 1 {
			f = 1
		}
		return f, true
	}
	switch x := a.(type) {
	case fullScan:
		return float64(rows), true
	case *indexEq:
		col := x.ix.Cols[0]
		// A literal key is a point estimate straight off the histogram.
		if len(x.keys) == 1 {
			if lit, ok := x.keys[0].(*clit); ok {
				if n, ok := synEq(syn.Col(col), lit.v); ok {
					return float64(n), true
				}
			}
		}
		return avgFan(col)
	case *hashEq:
		if lit, ok := x.key.(*clit); ok {
			if n, ok := synEq(syn.Col(x.col), lit.v); ok {
				return float64(n), true
			}
		}
		return avgFan(x.col)
	case *fatHash:
		return p.accessEstimate(x.h, st)
	case *indexRange:
		// Literal integer bounds are a histogram range count.
		loLit, okL := litIntBound(x.lo)
		hiLit, okH := litIntBound(x.hi)
		col := x.ix.Cols[0]
		if min, max, ok := syn.Col(col).IntRange(); ok && (okL || okH) {
			lo, hi := min, max
			if okL {
				lo = loLit
				if x.loStrict {
					lo++
				}
			}
			if okH {
				hi = hiLit
				if x.hiStrict {
					hi--
				}
			}
			n, _ := syn.Col(col).IntRangeCount(lo, hi)
			return float64(n), true
		}
		return float64(a.est(st)), false
	}
	return float64(a.est(st)), false
}

// litIntBound extracts a compiled literal integer range bound.
func litIntBound(e cexpr) (int64, bool) {
	lit, ok := e.(*clit)
	if !ok || lit.v.Kind != KInt {
		return 0, false
	}
	return lit.v.I, true
}

// omittedFilter is a residual conjunct the planner dropped because the
// synopsis proves it holds for every row of its table. The compiled
// form is kept only for the exported plan shape (plancheck re-justifies
// the omission from the evidence); it is never executed.
type omittedFilter struct {
	ce     cexpr
	src    string
	reason string // "not-null", "int-range", "empty-table"
	// Evidence pins the synopsis facts the decision used, re-checked
	// independently by plancheck against the live synopsis.
	rows, nulls int64
	min, max    int64
}

// proveRedundant decides whether the synopsis proves a single-table
// conjunct true for every row of the table — the engine-level
// §4.5-style omission beyond what the schema alone proves. Soundness
// rests on the snapshot protocol: the synopsis facts are exact for the
// pinned state, and any later insert publishes a new state that
// retires the plan (plancache freshness).
func (p *planner) proveRedundant(e sqlast.Expr, name string, t *Table, st *tableState, sc *scope) (omittedFilter, bool) {
	no := omittedFilter{}
	if p.heuristicOnly() {
		return no, false
	}
	syn := st.syn
	if syn.Rows() == 0 {
		// An empty pinned state satisfies any predicate vacuously; only
		// worth recording for recognizable single-column forms so the
		// shape stays explainable.
		switch e.(type) {
		case *sqlast.IsNull, *sqlast.Binary, *sqlast.Between:
			return omittedFilter{reason: "empty-table"}, true
		}
		return no, false
	}
	colFacts := func(colExpr sqlast.Expr) (col int, c synopsis.Col, ok bool) {
		col = p.colOf(colExpr, name, t, sc)
		if col < 0 {
			return 0, synopsis.Col{}, false
		}
		return col, syn.Col(col), true
	}
	switch x := e.(type) {
	case *sqlast.IsNull:
		if !x.Negate {
			return no, false
		}
		if _, c, ok := colFacts(x.X); ok && c.Nulls() == 0 {
			return omittedFilter{reason: "not-null", rows: syn.Rows(), nulls: 0}, true
		}
	case *sqlast.Binary:
		col, lit := sqlast.Expr(x.L), sqlast.Expr(x.R)
		op := x.Op
		if p.colOf(col, name, t, sc) < 0 {
			col, lit = x.R, x.L
			op = flipOp(op)
		}
		_, c, ok := colFacts(col)
		if !ok || c.Nulls() != 0 {
			// A NULL makes the comparison non-true for that row, so
			// min/max alone cannot prove the filter redundant.
			return no, false
		}
		v, ok := litOf(lit)
		if !ok || v.Kind != KInt || t.Cols[p.colOf(col, name, t, sc)].Type != TInt {
			return no, false
		}
		min, max, ok := c.IntRange()
		if !ok {
			return no, false
		}
		proved := false
		switch op {
		case sqlast.OpLt:
			proved = max < v.I
		case sqlast.OpLe:
			proved = max <= v.I
		case sqlast.OpGt:
			proved = min > v.I
		case sqlast.OpGe:
			proved = min >= v.I
		}
		if proved {
			return omittedFilter{reason: "int-range", rows: syn.Rows(), min: min, max: max}, true
		}
	case *sqlast.Between:
		colPos := p.colOf(x.X, name, t, sc)
		if colPos < 0 || t.Cols[colPos].Type != TInt {
			return no, false
		}
		c := syn.Col(colPos)
		if c.Nulls() != 0 {
			return no, false
		}
		lo, okL := litOf(x.Lo)
		hi, okH := litOf(x.Hi)
		if !okL || !okH || lo.Kind != KInt || hi.Kind != KInt {
			return no, false
		}
		min, max, ok := c.IntRange()
		if ok && lo.I <= min && max <= hi.I {
			return omittedFilter{reason: "int-range", rows: syn.Rows(), min: min, max: max}, true
		}
	}
	return no, false
}

// qError is the symmetric ratio error between an estimated and an
// observed cardinality, floored at one row each (the standard q-error
// metric; 1.0 is a perfect estimate).
func qError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return math.Inf(1)
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}
