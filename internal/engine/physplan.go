package engine

import (
	"fmt"
	"strings"
)

// The physical operator tree is the executable form of a compiled
// statement. The logical planner (plan.go) keeps producing selectPlan;
// the lowering pass below compiles each plan into operator nodes with
// stable ids, and both the serial executor (exec.go) and the morsel
// collector (parallel.go) drive the same tree. Every node owns one
// OpStats slot in the statement's stats frame (opstats.go), which is
// what EXPLAIN ANALYZE renders.

// opKind classifies a physical operator node.
type opKind int

const (
	opScan    opKind = iota // one joinStep's access path
	opFilter                // residual conjuncts of a step (or constant prefilter)
	opProject               // projection + ORDER BY key evaluation
	opCount                 // COUNT(*) aggregation (replaces opProject)
	opDedup                 // DISTINCT set (serial immediate or parallel deferred)
	opSort                  // top-level ORDER BY sort
	opUnion                 // UNION branch merge + duplicate elimination
	opSubplan               // correlated EXISTS / scalar subquery boundary
)

// String names the kind for structured reports (OpReport.Kind).
func (k opKind) String() string {
	switch k {
	case opScan:
		return "scan"
	case opFilter:
		return "filter"
	case opProject:
		return "project"
	case opCount:
		return "count"
	case opDedup:
		return "distinct"
	case opSort:
		return "sort"
	case opUnion:
		return "union"
	case opSubplan:
		return "subplan"
	}
	return "op?"
}

// opNode is one operator of the physical tree. id indexes the
// statement's stats frame; ids are dense and statement-global, so a
// single []OpStats covers the whole tree including nested subplans
// and union branches.
type opNode struct {
	id    int
	kind  opKind
	label string
	// est is the planner's cardinality estimate for this operator's
	// output per loop (scan: access-path rows, filter: rows surviving
	// the step's residuals), valid when hasEst is set. EXPLAIN renders
	// it as est_rows and EXPLAIN ANALYZE derives the per-operator
	// q-error against the observed OpStats.
	est    float64
	hasEst bool
	// sub lists the correlated subplans evaluated inside this
	// operator's expressions, in source order.
	sub []*subplanRef
}

// subplanRef ties a subplan boundary node to the lowered plan it
// executes, so the renderer can nest the subplan's own pipeline.
type subplanRef struct {
	node *opNode
	plan *selectPlan
}

// physSelect is the lowered pipeline of one selectPlan, in execution
// order: optional constant prefilter, then per-step scan (+ optional
// filter) pairs, then projection or COUNT(*), then DISTINCT and sort.
type physSelect struct {
	prefilter *opNode   // nil when the plan has no constant conjuncts
	scans     []*opNode // one per joinStep
	filters   []*opNode // parallel to scans; nil entries for filterless steps
	output    *opNode   // opProject, or opCount for COUNT(*) plans
	dedup     *opNode   // nil unless DISTINCT
	sort      *opNode   // nil unless ORDER BY
	ops       []*opNode // all of the above, in pipeline order
}

// physUnion is the lowered union-level machinery on top of the
// branches' own physSelects.
type physUnion struct {
	union *opNode
	sort  *opNode // nil when the union has no ORDER BY
}

// lowerer assigns statement-global operator ids during lowering.
type lowerer struct{ n int }

func (l *lowerer) node(kind opKind, label string) *opNode {
	n := &opNode{id: l.n, kind: kind, label: label}
	l.n++
	return n
}

// lowerStmt compiles the statement's logical plans into the physical
// operator tree and returns the number of operator nodes (the stats
// frame size). It runs exactly once per compiled statement, inside
// compileStmt, before the plan is published to the plan cache.
func lowerStmt(cs *compiledStmt) {
	l := &lowerer{}
	if cs.sel != nil {
		l.lowerSelect(cs.sel)
	} else {
		u := cs.union
		for _, branch := range u.branches {
			l.lowerSelect(branch)
		}
		u.phys = &physUnion{union: l.node(opUnion, "union distinct")}
		if len(u.orderPos) > 0 {
			keys := make([]string, len(u.orderPos))
			for i, pos := range u.orderPos {
				keys[i] = u.cols[pos]
				if u.orderDesc[i] {
					keys[i] += " DESC"
				}
			}
			u.phys.sort = l.node(opSort, "union sort: "+strings.Join(keys, ", "))
		}
	}
	cs.nOps = l.n
}

// lowerSelect builds the physSelect pipeline for one plan and
// recursively lowers every correlated subplan referenced by its
// expressions.
func (l *lowerer) lowerSelect(p *selectPlan) {
	ps := &physSelect{}
	p.phys = ps
	add := func(n *opNode) *opNode {
		ps.ops = append(ps.ops, n)
		return n
	}
	if len(p.preFilters) > 0 {
		ps.prefilter = add(l.node(opFilter, fmt.Sprintf("prefilter: %d conjunct(s)", len(p.preFilters))))
		l.attachSubplans(ps.prefilter, p.preFilters)
	}
	for _, s := range p.steps {
		scan := add(l.node(opScan, "scan "+s.name+": "+s.access.describe()))
		scan.est, scan.hasEst = s.estAccess, true
		ps.scans = append(ps.scans, scan)
		if len(s.filters) == 0 {
			// With no filter node the step's post-filter estimate (which
			// carries any re-planning override) belongs to the scan.
			scan.est = s.estRows
			ps.filters = append(ps.filters, nil)
			continue
		}
		f := add(l.node(opFilter, "filter "+s.name+": "+strings.Join(s.filterSrc, " AND ")))
		f.est, f.hasEst = s.estRows, true
		ps.filters = append(ps.filters, f)
		l.attachSubplans(f, s.filters)
	}
	if p.countStar {
		ps.output = add(l.node(opCount, "count(*)"))
	} else {
		ps.output = add(l.node(opProject, "project: "+strings.Join(p.colNames, ", ")))
		l.attachSubplans(ps.output, p.cols)
	}
	if len(p.orderBy) > 0 {
		keys := make([]string, len(p.orderBy))
		var keyExprs []cexpr
		for i, k := range p.orderBy {
			keys[i] = k.src
			if k.desc {
				keys[i] += " DESC"
			}
			keyExprs = append(keyExprs, k.x)
		}
		l.attachSubplans(ps.output, keyExprs)
		if p.distinct {
			ps.dedup = add(l.node(opDedup, "distinct"))
		}
		ps.sort = add(l.node(opSort, "sort: "+strings.Join(keys, ", ")))
		return
	}
	if p.distinct {
		ps.dedup = add(l.node(opDedup, "distinct"))
	}
}

// pipeline lists the plan's lowered operators in execution order as
// canonical tokens for the exported plan shape (plantrace.go):
// "prefilter", "scan <alias>", "filter <alias>", "project", "count",
// "distinct", "sort". The tokens are derived from the phys node
// identities, not from the plan's flags, so the shape reflects what
// the lowering actually emitted.
func (p *selectPlan) pipeline() []string {
	ps := p.phys
	if ps == nil {
		return nil
	}
	scanIdx := map[*opNode]int{}
	for i, n := range ps.scans {
		scanIdx[n] = i
	}
	filterIdx := map[*opNode]int{}
	for i, n := range ps.filters {
		if n != nil {
			filterIdx[n] = i
		}
	}
	out := make([]string, 0, len(ps.ops))
	for _, n := range ps.ops {
		switch {
		case n == ps.prefilter:
			out = append(out, "prefilter")
		case n.kind == opScan:
			out = append(out, "scan "+p.steps[scanIdx[n]].name)
		case n.kind == opFilter:
			out = append(out, "filter "+p.steps[filterIdx[n]].name)
		case n.kind == opProject:
			out = append(out, "project")
		case n.kind == opCount:
			out = append(out, "count")
		case n.kind == opDedup:
			out = append(out, "distinct")
		case n.kind == opSort:
			out = append(out, "sort")
		default:
			out = append(out, "op?")
		}
	}
	return out
}

// attachSubplans walks compiled expressions for correlated subqueries,
// creating a boundary node per subquery under owner and lowering each
// subplan's own pipeline.
func (l *lowerer) attachSubplans(owner *opNode, exprs []cexpr) {
	for _, e := range exprs {
		l.walkExpr(owner, e)
	}
}

func (l *lowerer) walkExpr(owner *opNode, e cexpr) {
	switch x := e.(type) {
	case *cbin:
		l.walkExpr(owner, x.l)
		l.walkExpr(owner, x.r)
	case *cnot:
		l.walkExpr(owner, x.x)
	case *cbetween:
		l.walkExpr(owner, x.x)
		l.walkExpr(owner, x.lo)
		l.walkExpr(owner, x.hi)
	case *cisnull:
		l.walkExpr(owner, x.x)
	case *cfunc:
		for _, a := range x.args {
			l.walkExpr(owner, a)
		}
	case *cexists:
		label := "exists subplan"
		if x.negate {
			label = "not-exists subplan"
		}
		x.node = l.node(opSubplan, label)
		owner.sub = append(owner.sub, &subplanRef{node: x.node, plan: x.plan})
		l.lowerSelect(x.plan)
	case *csubq:
		label := "scalar subplan"
		if x.plan.countStar {
			label = "count(*) subplan"
		}
		x.node = l.node(opSubplan, label)
		owner.sub = append(owner.sub, &subplanRef{node: x.node, plan: x.plan})
		l.lowerSelect(x.plan)
	}
}

// finalizeFrame derives the counters that the row loops deliberately
// do not maintain. A step's filter operator sits between its scan and
// the next pipeline stage, so its row flow is implied: rowsIn is the
// scan's rowsOut, and rowsOut is the next scan's loops (the filter
// rebinds the next step once per passing row), or the output
// operator's rowsIn for the last step. Reconstructing the flow here,
// once per execution and after the worker shards have merged, keeps
// two counter writes per candidate row out of the hottest loop.
func finalizeFrame(cs *compiledStmt, frame opFrame) {
	if cs.sel != nil {
		finalizeSelect(cs.sel, frame)
		return
	}
	for _, branch := range cs.union.branches {
		finalizeSelect(branch, frame)
	}
}

func finalizeSelect(p *selectPlan, frame opFrame) {
	ps := p.phys
	for i, f := range ps.filters {
		if f == nil {
			continue
		}
		var out int64
		if i+1 < len(ps.scans) {
			out = frame[ps.scans[i+1].id].loops
		} else {
			out = frame[ps.output.id].rowsIn
		}
		frame[f.id].setRowFlow(frame[ps.scans[i].id].rowsOut, out)
	}
	for _, n := range ps.ops {
		for _, ref := range n.sub {
			finalizeSelect(ref.plan, frame)
		}
	}
}

// renderCompiled renders the operator tree as one line per operator.
// With a nil frame it is the EXPLAIN form (plan shape only); with a
// stats frame it is the EXPLAIN ANALYZE form, each line annotated with
// the operator's merged counters.
func renderCompiled(cs *compiledStmt, frame opFrame) string {
	var b strings.Builder
	if cs.sel != nil {
		writeSelect(&b, cs.sel, frame, "")
	} else {
		u := cs.union
		for i, branch := range u.branches {
			fmt.Fprintf(&b, "union branch %d:\n", i+1)
			writeSelect(&b, branch, frame, "  ")
		}
		writeNode(&b, u.phys.union, frame, "")
		if u.phys.sort != nil {
			writeNode(&b, u.phys.sort, frame, "")
		}
	}
	return b.String()
}

// writeSelect renders one plan's pipeline, nesting each operator's
// correlated subplans under it.
func writeSelect(b *strings.Builder, p *selectPlan, frame opFrame, indent string) {
	for _, n := range p.phys.ops {
		writeNode(b, n, frame, indent)
		for _, ref := range n.sub {
			writeNode(b, ref.node, frame, indent+"  ")
			writeSelect(b, ref.plan, frame, indent+"    ")
		}
	}
}

func writeNode(b *strings.Builder, n *opNode, frame opFrame, indent string) {
	b.WriteString(indent)
	b.WriteString(n.label)
	if frame != nil {
		b.WriteString(" [")
		b.WriteString(frame[n.id].String())
		b.WriteString("]")
	}
	if n.hasEst {
		b.WriteString(" est_rows=")
		b.WriteString(formatEst(n.est))
		if frame != nil {
			if loops := frame[n.id].loops; loops > 0 {
				q := qError(n.est, float64(frame[n.id].rowsOut)/float64(loops))
				fmt.Fprintf(b, " q=%.2f", q)
			}
		}
	}
	b.WriteByte('\n')
}

// formatEst renders a cardinality estimate compactly: whole numbers
// without a fraction, everything else with two decimals.
func formatEst(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// walkOps visits every operator node of the compiled statement in
// render order (union branches, then union-level operators; subplan
// boundaries before their nested pipelines).
func walkOps(cs *compiledStmt, fn func(n *opNode)) {
	var walkSel func(p *selectPlan)
	walkSel = func(p *selectPlan) {
		for _, n := range p.phys.ops {
			fn(n)
			for _, ref := range n.sub {
				fn(ref.node)
				walkSel(ref.plan)
			}
		}
	}
	if cs.sel != nil {
		walkSel(cs.sel)
		return
	}
	for _, branch := range cs.union.branches {
		walkSel(branch)
	}
	fn(cs.union.phys.union)
	if cs.union.phys.sort != nil {
		fn(cs.union.phys.sort)
	}
}
