package engine

import (
	"math"

	"repro/internal/sqlast"
)

// maxDPTables bounds the exhaustive join-order search (2^n states).
const maxDPTables = 10

// chooseJoinOrder picks the binding order of the FROM tables. For up
// to maxDPTables it runs a Selinger-style dynamic program over table
// subsets minimizing the sum of estimated intermediate result sizes;
// beyond that it falls back to a greedy minimum-fanout order. Both
// use per-step access-path estimates scaled by single-table filter
// selectivities from the estimator (estimate.go) — synopsis-backed
// when the snapshot's statistics cover the predicate, the named
// defaults otherwise — with a heavy penalty for cross products.
// The returned method name ("single", "dp", "greedy") is recorded on
// the plan for the exported shape (plantrace.go).
func (p *planner) chooseJoinOrder(names []string, local map[string]*Table, conjuncts []*conjunct, sc *scope) ([]string, string) {
	n := len(names)
	if n <= 1 {
		return names, "single"
	}
	// fanout estimates one step's multiplier given the bound set.
	fanout := func(name string, bound map[string]bool, atStart bool) float64 {
		t := local[name]
		st := p.snap.stateOf(t)
		access, connected, src := p.bestAccess(name, t, conjuncts, bound, sc)
		e, _ := p.accessEstimate(access, st)
		sel, _ := p.tableSelectivity(name, t, st, conjuncts, src, sc)
		e *= sel
		// Observed cardinalities from adaptive re-planning trump the
		// synopsis — they already include join-predicate effects — but
		// only at the join position they were observed in (ovEst.after).
		if ov, ok := p.overrides[name]; ok && !p.heuristicOnly() && ov.after == boundKey(bound) {
			e = ov.rows
		}
		if e < 1 {
			e = 1
		}
		if !connected && !atStart {
			e *= 4096
		}
		return e
	}

	if n > maxDPTables {
		return p.greedyOrder(names, local, conjuncts, sc, fanout), "greedy"
	}

	type state struct {
		cost float64 // sum of intermediate sizes
		rows float64 // estimated rows after binding the subset
		last int     // last table bound (to reconstruct)
		prev int     // previous mask
	}
	size := 1 << n
	dp := make([]state, size)
	for i := range dp {
		dp[i] = state{cost: math.Inf(1)}
	}
	dp[0] = state{cost: 0, rows: 1, last: -1, prev: -1}
	boundOf := func(mask int) map[string]bool {
		b := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				b[names[i]] = true
			}
		}
		return b
	}
	for mask := 0; mask < size; mask++ {
		if math.IsInf(dp[mask].cost, 1) {
			continue
		}
		bound := boundOf(mask)
		for i := 0; i < n; i++ {
			bit := 1 << i
			if mask&bit != 0 {
				continue
			}
			f := fanout(names[i], bound, mask == 0)
			rows := dp[mask].rows * f
			if rows > 1e18 {
				rows = 1e18
			}
			cost := dp[mask].cost + rows
			next := mask | bit
			if cost < dp[next].cost {
				dp[next] = state{cost: cost, rows: rows, last: i, prev: mask}
			}
		}
	}
	out := make([]string, 0, n)
	for mask := size - 1; mask != 0; mask = dp[mask].prev {
		out = append(out, names[dp[mask].last])
	}
	// Reverse into binding order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, "dp"
}

// greedyOrder is the fallback for wide FROM lists: repeatedly bind
// the table with the smallest estimated fanout.
func (p *planner) greedyOrder(names []string, local map[string]*Table, conjuncts []*conjunct, sc *scope, fanout func(string, map[string]bool, bool) float64) []string {
	bound := map[string]bool{}
	remaining := append([]string(nil), names...)
	var out []string
	for len(remaining) > 0 {
		bestIdx := 0
		best := math.Inf(1)
		for i, name := range remaining {
			if f := fanout(name, bound, len(out) == 0); f < best {
				best = f
				bestIdx = i
			}
		}
		name := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		bound[name] = true
		out = append(out, name)
	}
	return out
}

// refsOnlyTable reports whether an expression references only columns
// of the given table (no other tables, no subqueries), so the
// estimator can treat it as a single-table filter.
func refsOnlyTable(e sqlast.Expr, name string, t *Table) bool {
	switch x := e.(type) {
	case *sqlast.Col:
		if x.Table != "" {
			return x.Table == name
		}
		return t.ColIndex(x.Column) >= 0
	case *sqlast.IntLit, *sqlast.FloatLit, *sqlast.StrLit, *sqlast.BytesLit, *sqlast.NullLit:
		return true
	case *sqlast.Binary:
		return refsOnlyTable(x.L, name, t) && refsOnlyTable(x.R, name, t)
	case *sqlast.Not:
		return refsOnlyTable(x.X, name, t)
	case *sqlast.Between:
		return refsOnlyTable(x.X, name, t) && refsOnlyTable(x.Lo, name, t) && refsOnlyTable(x.Hi, name, t)
	case *sqlast.IsNull:
		return refsOnlyTable(x.X, name, t)
	case *sqlast.Func:
		for _, a := range x.Args {
			if !refsOnlyTable(a, name, t) {
				return false
			}
		}
		return true
	default:
		// EXISTS / scalar subqueries: never sample.
		return false
	}
}
