package core

import "testing"

// TestPositionalAndLast exercises the position()/last() translation
// over sibling-count subqueries on both translators.
func TestPositionalAndLast(t *testing.T) {
	tr, st, ev := setup(t)
	trE, stE, _ := setupEdge(t)
	queries := []string{
		"/A/B/C[last()]",
		"/A/B/C[position() = last()]",
		"/A/B/C[position() < last()]",
		"/A/B/C[position() != last()]",
		"/A/B/C[last() = 2]",
		"/A/B/C[last() > 1]",
		"/A/B/C[2 = last()]",
		"/A/B/C[1]",
		"/A/B/C[2]",
		"/A/B/C[3]",
		"/A/B/C[position() >= 2]",
		"/A/B/C[position()]",
		"//E/F[last()]",
		"//E/F[position() = 1 or position() = last()]",
		"//B/G[last()]",
	}
	for _, q := range queries {
		check(t, tr, st, ev, q)
		checkEdge(t, trE, stE, ev, q)
	}
}

func TestPositionalStillUnsupportedOffChildAxis(t *testing.T) {
	tr, _, _ := setup(t)
	for _, q := range []string{
		"//F[last()]",        // descendant step
		"/A/B/*[last()]",     // wildcard
		"//F/ancestor::B[1]", // backward step
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("Translate(%q) should fail", q)
		}
	}
}

func TestSequentialPositionalRejected(t *testing.T) {
	tr, _, _ := setup(t)
	trE, _, _ := setupEdge(t)
	for _, q := range []string{
		"/A/B/C[D][1]",
		"/A/B/C[E][position() = last()]",
		"/A/B/C[D][not(last())]",
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("schema-aware Translate(%q) should fail (sequential positional)", q)
		}
		if _, err := trE.Translate(q); err == nil {
			t.Errorf("edge Translate(%q) should fail (sequential positional)", q)
		}
	}
	// Positional first, then a value predicate, is fine.
	if _, err := tr.Translate("/A/B/C[1][D]"); err != nil {
		t.Errorf("positional-first should translate: %v", err)
	}
}
