// Seeded violations for the rawsql analyzer: SQL text assembled with
// fmt verbs and string concatenation instead of the sqlast AST.
package a

import (
	"fmt"
	"strings"
)

func sprintfSQL(table string) string {
	return fmt.Sprintf("SELECT id FROM %s WHERE id = 1", table) // want `SQL assembled with fmt.Sprintf`
}

func fprintfSQL(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (id INT)", name) // want `SQL assembled with fmt.Fprintf`
	return b.String()
}

func concatSQL(table string) string {
	return "SELECT d.pos FROM " + table + " d ORDER BY d.pos" // want `SQL assembled by string concatenation`
}

func appendSQL(cond string) string {
	q := "SELECT n.id FROM nodes n"
	q += " WHERE n.kind = " + cond // want `SQL assembled by string concatenation`
	return q
}

// Plain prose through fmt is fine: no strong SQL shape.
func prose(n int) string {
	return fmt.Sprintf("%d row(s) inserted", n)
}
