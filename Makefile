# make check mirrors .github/workflows/ci.yml locally.
GO ?= go

.PHONY: check build fmtcheck vet xvet test race

check: build fmtcheck vet xvet test race

build:
	$(GO) build ./...

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The custom invariant analyzers (rawsql, deweycmp, regexploop,
# errdrop); -novet because `make vet` already ran the standard passes.
xvet:
	$(GO) run ./cmd/xvet -novet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
