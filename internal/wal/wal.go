// Package wal implements a write-ahead log: an append-only file of
// length-prefixed, CRC32C-framed records with fsync-on-commit
// durability. The engine logs every mutation (insert batch, create
// table/index) as one record before applying it, so a crash at any
// instant loses at most the uncommitted suffix; Open replays the
// surviving records and tolerates a torn or corrupt tail by
// truncating the log at the last valid frame — recovery never
// panics, it degrades to the longest valid prefix.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     length of the framed body (LSN + payload) = 8 + len(payload)
//	4       4     CRC32C (Castagnoli) of the framed body
//	8       8     LSN, a monotonically increasing record sequence number
//	16      n     payload (opaque to this package)
//
// The CRC covers the LSN so a frame cannot be relabeled to a
// different sequence position undetected, and the length field is
// validated both against the remaining file size and a sanity cap
// before the body is read, so a corrupt length cannot cause a huge
// allocation. LSNs survive checkpoints: a checkpoint records the LSN
// up to which its state is complete, and replay skips records at or
// below it, making re-replay idempotent.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/failpoint"
)

// headerSize is the fixed prefix of a frame: length + CRC.
const headerSize = 8

// lsnSize is the framed LSN field.
const lsnSize = 8

// MaxRecordSize caps one record's payload. A corrupt length field
// beyond the cap is treated like any other torn tail.
const MaxRecordSize = 1 << 30

// castagnoli is the CRC32C polynomial table, the checksum used by
// most production WALs (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed log record.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Log is an open write-ahead log. A Log is single-writer: callers
// serialize Append/Commit externally (the engine holds its writer
// lock across every commit).
type Log struct {
	//guardedby:caller(writeMu)
	f    *os.File
	path string
	//guardedby:caller(writeMu)
	next uint64 // LSN to assign to the next appended record
	//guardedby:caller(writeMu)
	buf []byte // frame assembly buffer, reused across appends
}

// Open opens (creating if absent) the log at path and replays every
// valid record through fn in LSN order. A torn or corrupt tail — a
// partial header, a length running past EOF or beyond MaxRecordSize,
// or a CRC mismatch — ends replay: the tail is discarded by
// truncating the file at the last valid frame, and the log is ready
// to append after it. Replay is sequential and stops with fn's error
// if fn fails (the file is not truncated in that case).
func Open(path string, fn func(rec Record) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, next: 1}
	valid, last, err := l.replay(fn)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if size > valid {
		// Torn or corrupt tail: drop it. The discarded bytes were never
		// acknowledged as committed (Commit returns only after fsync of
		// the full frame), so truncation loses no durable write.
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	l.next = last + 1
	return l, nil
}

// replay scans frames from the start of the file, calling fn per
// valid record. It returns the byte offset of the end of the last
// valid frame and the highest LSN seen.
func (l *Log) replay(fn func(rec Record) error) (valid int64, last uint64, err error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var hdr [headerSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			// EOF here is the clean end of the log; a partial header is a
			// torn tail. Both end replay at the current valid offset.
			return valid, last, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length < lsnSize || length > MaxRecordSize+lsnSize {
			return valid, last, nil // corrupt length: tail ends here
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(l.f, body); err != nil {
			return valid, last, nil // torn body
		}
		if crc32.Checksum(body, castagnoli) != crc {
			return valid, last, nil // bit rot or torn overwrite
		}
		lsn := binary.LittleEndian.Uint64(body[0:lsnSize])
		if fn != nil {
			if err := fn(Record{LSN: lsn, Payload: body[lsnSize:]}); err != nil {
				return 0, 0, err
			}
		}
		valid += int64(headerSize) + int64(length)
		if lsn > last {
			last = lsn
		}
	}
}

// Scan reads every record of the file at path in order, calling fn
// per record. Unlike Open it is read-only and strict: an invalid
// frame anywhere is an error, not a tolerated tail. It is the reader
// for checkpoint files, which are renamed into place atomically and
// therefore are never legitimately torn — corruption there means the
// storage lied, and recovery must say so rather than silently load a
// prefix of the database.
func Scan(path string, fn func(rec Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [headerSize]byte
	var body []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: partial frame header in %s", path)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length < lsnSize || length > MaxRecordSize+lsnSize {
			return fmt.Errorf("wal: corrupt frame length %d in %s", length, path)
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(f, body); err != nil {
			return fmt.Errorf("wal: truncated frame body in %s", path)
		}
		if crc32.Checksum(body, castagnoli) != crc {
			return fmt.Errorf("wal: frame checksum mismatch in %s", path)
		}
		if err := fn(Record{LSN: binary.LittleEndian.Uint64(body[0:lsnSize]), Payload: body[lsnSize:]}); err != nil {
			return err
		}
	}
}

// Append writes one record frame without syncing; the record is not
// durable until Sync returns. It returns the record's LSN.
func (l *Log) Append(payload []byte) (uint64, error) {
	if err := failpoint.Inject("wal/append"); err != nil {
		return 0, err
	}
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds maximum %d", len(payload), MaxRecordSize)
	}
	lsn := l.next
	length := lsnSize + len(payload)
	need := headerSize + length
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	frame := l.buf[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(length))
	binary.LittleEndian.PutUint64(frame[8:16], lsn)
	copy(frame[16:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[8:], castagnoli))
	if _, err := l.f.Write(frame); err != nil {
		return 0, err
	}
	l.next = lsn + 1
	return lsn, nil
}

// Sync makes every appended record durable (fsync). An error means
// the most recent appends may or may not survive a crash; the caller
// must not report them as committed.
func (l *Log) Sync() error {
	if err := failpoint.Inject("wal/fsync"); err != nil {
		return err
	}
	return l.f.Sync()
}

// Commit appends one record and syncs: the write-ahead contract's
// "durable before visible" step, one fsync per commit.
func (l *Log) Commit(payload []byte) (uint64, error) {
	lsn, err := l.Append(payload)
	if err != nil {
		return 0, err
	}
	if err := l.Sync(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// LastLSN returns the LSN of the most recently appended record (0 if
// none were ever appended).
func (l *Log) LastLSN() uint64 { return l.next - 1 }

// EnsureNext raises the next assigned LSN to at least lsn. Recovery
// calls this with baseLSN+1 after loading a checkpoint: the WAL file
// may be freshly reset (so its own replay saw no records), but new
// appends must still land above the checkpoint's base LSN or a later
// replay would skip them as already checkpointed.
func (l *Log) EnsureNext(lsn uint64) {
	if lsn > l.next {
		l.next = lsn
	}
}

// Reset truncates the log to empty after a checkpoint has captured
// its effects. LSNs keep counting from where they were, so records
// appended after the reset stay above the checkpoint's base LSN.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close syncs and closes the log file. The sync error (fsyncgate:
// a failed fsync may mean previously "written" pages were dropped)
// takes precedence over the close error.
func (l *Log) Close() error {
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }
