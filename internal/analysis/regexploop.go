package analysis

import (
	"go/ast"
	"strings"
)

// RegexpLoop flags regexp/pathre compilation on per-row paths. The
// REGEXP_LIKE hot loop of the executor must reuse matchers through
// the engine's patternCache (compilePattern in internal/engine/eval.go
// is the single sanctioned compilation site); compiling a pattern
// inside a loop body — or anywhere else in internal/engine — turns an
// O(1) cache hit into an O(pattern) NFA construction per row.
var RegexpLoop = &Analyzer{
	Name: "regexploop",
	Doc: "flag regexp.Compile/pathre.Compile inside loop bodies, and anywhere in " +
		"internal/engine outside compilePattern (the patternCache discipline)",
	Run: runRegexpLoop,
}

var compileFuncs = map[string]bool{
	"Compile": true, "MustCompile": true, "CompilePOSIX": true, "MustCompilePOSIX": true,
	// Determinizing a pattern into the engine's dense DFA is at least
	// as expensive as compiling it; it belongs in compilePattern next
	// to the NFA compile, never on a per-row path.
	"CompileDFA": true,
}

func runRegexpLoop(pass *Pass) error {
	path := pass.Pkg.Path()
	if strings.HasSuffix(path, "internal/pathre") {
		return nil // the matcher implementation compiles its own test subjects
	}
	inEngine := strings.HasSuffix(path, "internal/engine")
	pass.inspect(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !compileFuncs[sel.Sel.Name] {
			return true
		}
		from := pass.importedPkg(sel.X)
		if from != "regexp" && !strings.HasSuffix(from, "internal/pathre") {
			return true
		}
		base := sel.X.(*ast.Ident).Name
		switch {
		case inLoopBody(stack):
			pass.Reportf(call.Pos(),
				"%s.%s inside a loop; hoist it or go through the engine patternCache (compilePattern)",
				base, sel.Sel.Name)
		case inEngine && enclosingFuncName(stack) != "compilePattern":
			pass.Reportf(call.Pos(),
				"%s.%s in internal/engine outside compilePattern; per-row matching must use the patternCache",
				base, sel.Sel.Name)
		}
		return true
	})
	return nil
}
