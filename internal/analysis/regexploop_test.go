package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRegexpLoop(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RegexpLoop,
		"regexploop/a", "regexploop/ok", "regexploop/internal/engine")
}

// compilePattern in the real engine is the sanctioned compilation
// site: running regexploop over internal/engine must stay clean.
func TestRegexpLoopSanctionsPatternCache(t *testing.T) {
	expectClean(t, analysis.RegexpLoop, "repro/internal/engine", "repro/internal/core")
}
