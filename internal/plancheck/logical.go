package plancheck

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/sqlast"
)

// The logical extractor maps a sqlast statement into the canonical
// IR, replicating exactly the name-resolution semantics the engine's
// planner applies (qualified references walk the scope chain;
// unqualified references must be unique within the innermost scope
// that can bind them) so that both sides of the comparison qualify
// every column with the same alias.

// lscope is one level of the FROM-clause name environment.
type lscope struct {
	parent *lscope
	tables map[string]*engine.Table
	order  []string // aliases in FROM order
}

// resolve maps a column reference to its binding alias.
func (sc *lscope) resolve(c *sqlast.Col) (string, error) {
	if c.Table != "" {
		for s := sc; s != nil; s = s.parent {
			if t, ok := s.tables[c.Table]; ok {
				if t.ColIndex(c.Column) < 0 {
					return "", fmt.Errorf("column %s.%s does not exist", c.Table, c.Column)
				}
				return c.Table, nil
			}
		}
		return "", fmt.Errorf("unknown table alias %q", c.Table)
	}
	for s := sc; s != nil; s = s.parent {
		found := ""
		for _, alias := range s.order {
			if s.tables[alias].ColIndex(c.Column) >= 0 {
				if found != "" {
					return "", fmt.Errorf("ambiguous column %q", c.Column)
				}
				found = alias
			}
		}
		if found != "" {
			return found, nil
		}
	}
	return "", fmt.Errorf("unknown column %q", c.Column)
}

// LogicalIR extracts the canonical IR of a statement against the
// tables of db.
func LogicalIR(db *engine.DB, st sqlast.Statement) (*StmtIR, error) {
	switch s := st.(type) {
	case *sqlast.Select:
		ir, err := logicalSelect(db, s, nil)
		if err != nil {
			return nil, err
		}
		return &StmtIR{Select: ir}, nil
	case *sqlast.Union:
		u := &UnionIR{}
		for _, br := range s.Selects {
			ir, err := logicalSelect(db, br, nil)
			if err != nil {
				return nil, err
			}
			u.Branches = append(u.Branches, ir)
		}
		// Resolve union-level ORDER BY to first-branch column
		// positions, replicating the engine's rule.
		if len(s.Selects) > 0 {
			names := u.Branches[0].ColNames
			for _, k := range s.OrderBy {
				col, ok := k.Expr.(*sqlast.Col)
				if !ok {
					return nil, fmt.Errorf("UNION ORDER BY must reference an output column")
				}
				pos := -1
				for i, name := range names {
					if name == col.Column || name == col.String() {
						pos = i
						break
					}
				}
				if pos < 0 {
					return nil, fmt.Errorf("UNION ORDER BY column %q not in output", col)
				}
				u.OrderPos = append(u.OrderPos, pos)
				u.OrderDesc = append(u.OrderDesc, k.Desc)
			}
		}
		return &StmtIR{Union: u}, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", st)
}

// logicalSelect extracts one SELECT block under a parent scope (nil
// at top level).
func logicalSelect(db *engine.DB, sel *sqlast.Select, parent *lscope) (*SelIR, error) {
	sc := &lscope{parent: parent, tables: map[string]*engine.Table{}}
	ir := &SelIR{Distinct: sel.Distinct}
	for _, ref := range sel.From {
		t := db.Table(ref.Table)
		if t == nil {
			return nil, fmt.Errorf("unknown table %q", ref.Table)
		}
		name := ref.Name()
		if _, dup := sc.tables[name]; dup {
			return nil, fmt.Errorf("duplicate table alias %q", name)
		}
		sc.tables[name] = t
		sc.order = append(sc.order, name)
		ir.Tables = append(ir.Tables, name+"="+ref.Table)
	}
	sort.Strings(ir.Tables)

	// Projection, replicating the planner's COUNT(*) and column-name
	// rules.
	if len(sel.Cols) == 1 {
		if _, ok := sel.Cols[0].Expr.(*sqlast.CountStar); ok {
			ir.CountStar = true
			ir.ColNames = []string{"COUNT(*)"}
		}
	}
	if !ir.CountStar {
		for _, c := range sel.Cols {
			q, err := qualify(db, c.Expr, sc)
			if err != nil {
				return nil, err
			}
			ir.Cols = append(ir.Cols, normalize(q).String())
			name := c.Alias
			if name == "" {
				name = c.Expr.String()
			}
			ir.ColNames = append(ir.ColNames, name)
		}
	}

	var conjuncts []sqlast.Expr
	for _, c := range flattenConjuncts(sel.Where) {
		q, err := qualify(db, c, sc)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, q)
	}
	ir.Preds, ir.predExprs = sortPreds(conjuncts)

	for _, k := range sel.OrderBy {
		q, err := qualify(db, k.Expr, sc)
		if err != nil {
			return nil, err
		}
		ir.Order = append(ir.Order, orderText(normalize(q).String(), k.Desc))
	}
	return ir, nil
}

// qualify rewrites an expression with every column reference
// qualified by its resolved alias and every correlated subquery
// replaced by a marker pseudo-call carrying the content fingerprint
// of the subquery's own canonical IR. The markers make subplan
// references position-independent: the two sides may discover
// subplans in different orders and still compare equal.
func qualify(db *engine.DB, e sqlast.Expr, sc *lscope) (sqlast.Expr, error) {
	switch x := e.(type) {
	case *sqlast.Col:
		alias, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return sqlast.C(alias, x.Column), nil
	case *sqlast.Binary:
		l, err := qualify(db, x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := qualify(db, x.R, sc)
		if err != nil {
			return nil, err
		}
		return &sqlast.Binary{Op: x.Op, L: l, R: r}, nil
	case *sqlast.Not:
		inner, err := qualify(db, x.X, sc)
		if err != nil {
			return nil, err
		}
		return &sqlast.Not{X: inner}, nil
	case *sqlast.Between:
		bx, err := qualify(db, x.X, sc)
		if err != nil {
			return nil, err
		}
		lo, err := qualify(db, x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := qualify(db, x.Hi, sc)
		if err != nil {
			return nil, err
		}
		return &sqlast.Between{X: bx, Lo: lo, Hi: hi}, nil
	case *sqlast.IsNull:
		inner, err := qualify(db, x.X, sc)
		if err != nil {
			return nil, err
		}
		return &sqlast.IsNull{X: inner, Negate: x.Negate}, nil
	case *sqlast.Func:
		f := &sqlast.Func{Name: x.Name}
		for _, a := range x.Args {
			qa, err := qualify(db, a, sc)
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, qa)
		}
		return f, nil
	case *sqlast.Exists:
		sub, err := logicalSelect(db, x.Select, sc)
		if err != nil {
			return nil, err
		}
		kind, name := "exists", engine.MarkerExists
		if x.Negate {
			kind, name = "not-exists", engine.MarkerNotExists
		}
		return subplanMarker(name, kind, sub), nil
	case *sqlast.Subquery:
		sub, err := logicalSelect(db, x.Select, sc)
		if err != nil {
			return nil, err
		}
		kind := "scalar"
		if sub.CountStar {
			kind = "count"
		}
		return subplanMarker(engine.MarkerScalar, kind, sub), nil
	}
	return e, nil
}

// subplanMarker builds the canonical marker call for a subplan.
func subplanMarker(name, kind string, sub *SelIR) sqlast.Expr {
	fp := fingerprint(kind + "|" + sub.canonical())
	return &sqlast.Func{Name: name, Args: []sqlast.Expr{sqlast.Str(fp)}}
}

func orderText(key string, desc bool) string {
	if desc {
		return key + " DESC"
	}
	return key
}
