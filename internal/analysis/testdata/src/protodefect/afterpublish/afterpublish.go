// Package afterpublish seeds a write-after-publish protocol defect:
// the builder mutates the snapshot it already made visible.
package afterpublish

import "sync/atomic"

type snap struct{ seq int }

type DB struct {
	//walorder:publish
	snap atomic.Pointer[snap]
}

// Swap publishes first and patches the published value after.
func (db *DB) Swap(v int) {
	next := &snap{}
	db.snap.Store(next)
	next.seq = v
}
