package main

import "testing"

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != 6 {
		t.Fatalf("default selection: got %d analyzers, err %v; want 6, nil", len(all), err)
	}
	some, err := selectAnalyzers("rawsql, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "rawsql" || some[1].Name != "errdrop" {
		t.Fatalf("subset selection wrong: %+v", some)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must error")
	}
}

// The analyzer run path is exercised end to end against the real tree
// by internal/analysis's tests and by CI's `go run ./cmd/xvet ./...`.
