package plancheck

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/sqlast"
)

// Estimate-provenance obligations. The planner annotates every join
// step with a cardinality estimate (EstRows/EstSource) and may drop
// residual conjuncts its synopsis proves true for every row
// (StepShape.Omitted). The checker does not trust either annotation:
// the source must be one of the planner's three declared provenances,
// the estimate must be a usable number, and each omission is re-proved
// here with plancheck's own decision procedure from the recorded
// evidence — which is itself cross-checked against the live table
// synopsis, so a forged shape cannot smuggle a filter away.

// checkEstimates validates one step's estimate annotation and omitted
// filters, appending discharged obligations to cert.
func checkEstimates(db *engine.DB, s engine.StepShape, loc string, cert *Certificate) []Finding {
	var fs []Finding
	fail := func(format string, args ...any) {
		fs = append(fs, Finding{Rule: "estimate-provenance",
			Detail: fmt.Sprintf("%s: step %s: %s", loc, s.Alias, fmt.Sprintf(format, args...))})
	}
	switch s.EstSource {
	case engine.EstSynopsis, engine.EstDefault, engine.EstOverride:
	default:
		fail("unknown estimate source %q", s.EstSource)
	}
	if math.IsNaN(s.EstRows) || math.IsInf(s.EstRows, 0) || s.EstRows < 0 {
		fail("estimate %v is not a finite non-negative row count", s.EstRows)
	}
	if len(fs) == 0 {
		cert.step("estimate %s step %s: %.6g rows from %s", loc, s.Alias, s.EstRows, s.EstSource)
	}
	for _, o := range s.Omitted {
		if why := checkOmission(db, s, o); why != "" {
			fail("omitted %q: %s", o.Pred.Text(), why)
		} else {
			cert.step("omission %s step %s: %q proved by %s evidence", loc, s.Alias, o.Pred.Text(), o.Reason)
		}
	}
	return fs
}

// checkOmission re-derives one omitted filter's redundancy proof.
// Returns "" when the proof goes through, else the counterexample.
func checkOmission(db *engine.DB, s engine.StepShape, o engine.OmittedShape) string {
	t := db.Table(s.Table)
	if t == nil {
		return fmt.Sprintf("table %s does not exist", s.Table)
	}
	syn := t.Synopsis()
	if got := syn.Rows(); got != o.Rows {
		return fmt.Sprintf("evidence claims %d table rows, synopsis has %d", o.Rows, got)
	}

	switch o.Reason {
	case "empty-table":
		// Zero rows satisfy any predicate vacuously; the planner only
		// omits the recognizable single-column forms.
		if o.Rows != 0 {
			return fmt.Sprintf("empty-table evidence with %d rows", o.Rows)
		}
		switch o.Pred.Expr.(type) {
		case *sqlast.IsNull, *sqlast.Binary, *sqlast.Between:
			return ""
		}
		return "predicate form is not covered by the empty-table proof"

	case "not-null":
		isn, ok := o.Pred.Expr.(*sqlast.IsNull)
		if !ok || !isn.Negate {
			return "not-null evidence for a predicate that is not IS NOT NULL"
		}
		ci, why := omissionCol(isn.X, s, t)
		if why != "" {
			return why
		}
		if o.Nulls != 0 {
			return fmt.Sprintf("evidence claims %d NULLs, which does not prove IS NOT NULL", o.Nulls)
		}
		if n := syn.Col(ci).Nulls(); n != 0 {
			return fmt.Sprintf("synopsis counts %d NULLs in the column", n)
		}
		return ""

	case "int-range":
		colE, holds, why := intRangeGoal(o.Pred.Expr)
		if why != "" {
			return why
		}
		ci, why := omissionCol(colE, s, t)
		if why != "" {
			return why
		}
		if t.Cols[ci].Type != engine.TInt {
			// A mixed-type column's int range covers only its integer
			// values, so it cannot prove anything about the rest.
			return fmt.Sprintf("column %s is not INT-typed", t.Cols[ci].Name)
		}
		if n := syn.Col(ci).Nulls(); n != 0 || o.Nulls != 0 {
			return fmt.Sprintf("column has NULLs (evidence %d, synopsis %d); a NULL row fails the comparison", o.Nulls, n)
		}
		min, max, ok := syn.Col(ci).IntRange()
		if !ok {
			return "synopsis has no exact integer range for the column"
		}
		if min != o.Min || max != o.Max {
			return fmt.Sprintf("evidence claims range [%d,%d], synopsis has [%d,%d]", o.Min, o.Max, min, max)
		}
		if !holds(min, max) {
			return fmt.Sprintf("range [%d,%d] does not imply the predicate", min, max)
		}
		return ""
	}
	return fmt.Sprintf("unknown omission reason %q", o.Reason)
}

// intRangeGoal decomposes an int-range-omittable predicate into the
// column expression it constrains and the proof goal over the column's
// exact [min,max]: the goal holds exactly when every integer in the
// range satisfies the predicate.
func intRangeGoal(e sqlast.Expr) (colE sqlast.Expr, holds func(min, max int64) bool, why string) {
	switch x := e.(type) {
	case *sqlast.Binary:
		op, colSide, litSide := x.Op, x.L, x.R
		if _, ok := litSide.(*sqlast.IntLit); !ok {
			// 'lit op col' constrains col by the flipped operator.
			colSide, litSide = x.R, x.L
			op = flipCmp(op)
		}
		lit, ok := litSide.(*sqlast.IntLit)
		if !ok {
			return nil, nil, "comparison has no integer literal"
		}
		v := lit.Value
		switch op {
		case sqlast.OpLt:
			return colSide, func(_, max int64) bool { return max < v }, ""
		case sqlast.OpLe:
			return colSide, func(_, max int64) bool { return max <= v }, ""
		case sqlast.OpGt:
			return colSide, func(min, _ int64) bool { return min > v }, ""
		case sqlast.OpGe:
			return colSide, func(min, _ int64) bool { return min >= v }, ""
		}
		return nil, nil, fmt.Sprintf("operator %v is not covered by the int-range proof", op)
	case *sqlast.Between:
		lo, okL := x.Lo.(*sqlast.IntLit)
		hi, okH := x.Hi.(*sqlast.IntLit)
		if !okL || !okH {
			return nil, nil, "BETWEEN bounds are not integer literals"
		}
		return x.X, func(min, max int64) bool { return lo.Value <= min && max <= hi.Value }, ""
	}
	return nil, nil, "predicate form is not covered by the int-range proof"
}

// flipCmp mirrors a comparison across its operands: 'lit op col' holds
// iff 'col (flip op) lit' does.
func flipCmp(op sqlast.BinOp) sqlast.BinOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	}
	return op
}

// omissionCol resolves the column an omitted predicate constrains: it
// must be a bare column of the step's own table.
func omissionCol(e sqlast.Expr, s engine.StepShape, t *engine.Table) (int, string) {
	c, ok := e.(*sqlast.Col)
	if !ok {
		return -1, fmt.Sprintf("%s is not a bare column reference", e)
	}
	if c.Table != "" && c.Table != s.Alias {
		return -1, fmt.Sprintf("column %s does not belong to step alias %s", c, s.Alias)
	}
	ci := t.ColIndex(c.Column)
	if ci < 0 {
		return -1, fmt.Sprintf("table %s has no column %q", s.Table, c.Column)
	}
	return ci, ""
}
