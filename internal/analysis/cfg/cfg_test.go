package cfg_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

// checkSrc type-checks one synthetic file and returns its pieces.
func checkSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return fset, f, info
}

func funcNamed(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

func param(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	for _, field := range fd.Type.Params.List {
		for _, n := range field.Names {
			if n.Name == name {
				return info.Defs[n].(*types.Var)
			}
		}
	}
	t.Fatalf("no param %s", name)
	return nil
}

const branchSrc = `package p

func branchy(cond bool) int {
	x := 1
	if cond {
		x = 2
	} else {
		x = 3
	}
	return x
}

func loopy(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
		if total > 100 {
			break
		}
	}
	return total
}

func dead() int {
	return 1
	panic("unreachable") //nolint
}
`

// The if/else diamond: condition block, two arm blocks, a join.
func TestBranchStructure(t *testing.T) {
	_, f, _ := checkSrc(t, branchSrc)
	g := cfg.New("branchy", funcNamed(t, f, "branchy").Body)
	dump := g.Dump(nil)
	// Entry has two successors (the arms); both arms reach the return.
	var twoWay int
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 {
			twoWay++
		}
		if g.InLoop(b) {
			t.Errorf("branchy has no loop, but b%d is marked in-loop\n%s", b.Index, dump)
		}
	}
	if twoWay != 1 {
		t.Errorf("want exactly 1 two-way branch block, got %d\n%s", twoWay, dump)
	}
}

// Loop bodies (and the head they cycle through) are marked in-loop;
// code before and after the loop is not.
func TestLoopMarking(t *testing.T) {
	fset, f, _ := checkSrc(t, branchSrc)
	fd := funcNamed(t, f, "loopy")
	g := cfg.New("loopy", fd.Body)
	anyLoop := false
	for _, b := range g.Blocks {
		if g.InLoop(b) {
			anyLoop = true
		}
	}
	if !anyLoop {
		t.Fatalf("no block marked in-loop:\n%s", g.Dump(nil))
	}
	// The `total := 0` init statement is outside the loop.
	initStmt := fd.Body.List[0]
	b := g.BlockOf(initStmt)
	if b == nil || g.InLoop(b) {
		t.Errorf("init statement should be outside the loop (block %v)", b)
	}
	_ = fset
}

// Statements after a terminator are pruned as unreachable.
func TestUnreachablePruned(t *testing.T) {
	_, f, _ := checkSrc(t, branchSrc)
	fd := funcNamed(t, f, "dead")
	g := cfg.New("dead", fd.Body)
	panicStmt := fd.Body.List[1]
	if b := g.BlockOf(panicStmt); b != nil {
		t.Errorf("statement after return should be pruned, found in b%d", b.Index)
	}
}

const reachSrc = `package p

func flow(a int, cond bool) int {
	x := a
	if cond {
		x = 2
	}
	y := x
	return y
}
`

// Reaching definitions: at the final read both the initial binding
// and the branch assignment reach; before the branch only the first.
func TestReachingDefs(t *testing.T) {
	fset, f, info := checkSrc(t, reachSrc)
	fd := funcNamed(t, f, "flow")
	g := cfg.New("flow", fd.Body)
	reach := cfg.Reaching(g, info, []*types.Var{param(t, info, fd, "a")}, fd.Body)

	var xVar *types.Var
	for id, obj := range info.Defs {
		if id.Name == "x" {
			xVar, _ = obj.(*types.Var)
		}
	}
	if xVar == nil {
		t.Fatal("no x var")
	}
	assignY := fd.Body.List[2]
	defs := reach.At(assignY, xVar)
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs of x at y := x, got %d\n%s", len(defs), reach.Dump(fset))
	}
}

const taintSrc = `package p

func source() string { return "s" }
func sink() string   { return "t" }

func prop(p string, cond bool) (string, string, string) {
	a := p
	b := sink()
	c := p
	if cond {
		c = sink()
	}
	return a, b, c
}
`

// The taint lattice: parameter-derived values stay Yes, unknown call
// results are No, and a branch rebinding joins to Mixed.
func TestTaintLattice(t *testing.T) {
	_, f, info := checkSrc(t, taintSrc)
	fd := funcNamed(t, f, "prop")
	g := cfg.New("prop", fd.Body)
	p := param(t, info, fd, "p")
	reach := cfg.Reaching(g, info, []*types.Var{p}, fd.Body)
	taint := cfg.SolveTaint(g, info, map[*types.Var]cfg.Value{p: cfg.Yes}, reach,
		func(e ast.Expr, eval func(ast.Expr) cfg.Value) cfg.Value { return cfg.Bottom })

	ret := fd.Body.List[len(fd.Body.List)-1].(*ast.ReturnStmt)
	want := []cfg.Value{cfg.Yes, cfg.No, cfg.Mixed}
	for i, expr := range ret.Results {
		if got := taint.EvalAt(ret, expr); got != want[i] {
			t.Errorf("result %d: got %v, want %v", i, got, want[i])
		}
	}
}

// Vars written from inside closures are unreliable and pin to Mixed.
const closureSrc = `package p

func cl(p string, run func(func())) string {
	s := p
	run(func() { s = "other" })
	return s
}
`

func TestClosureWrittenMixed(t *testing.T) {
	_, f, info := checkSrc(t, closureSrc)
	fd := funcNamed(t, f, "cl")
	g := cfg.New("cl", fd.Body)
	p := param(t, info, fd, "p")
	reach := cfg.Reaching(g, info, []*types.Var{p}, fd.Body)
	taint := cfg.SolveTaint(g, info, map[*types.Var]cfg.Value{p: cfg.Yes}, reach,
		func(e ast.Expr, eval func(ast.Expr) cfg.Value) cfg.Value { return cfg.Bottom })
	ret := fd.Body.List[len(fd.Body.List)-1].(*ast.ReturnStmt)
	if got := taint.EvalAt(ret, ret.Results[0]); got != cfg.Mixed {
		t.Errorf("closure-written var: got %v, want Mixed", got)
	}
	var sVar *types.Var
	for id, obj := range info.Defs {
		if id.Name == "s" {
			sVar, _ = obj.(*types.Var)
		}
	}
	if sVar == nil || !reach.ClosureWritten(sVar) {
		t.Error("s should be marked closure-written")
	}
}

// Dump output is stable and mentions every block exactly once.
func TestDumpStable(t *testing.T) {
	_, f, _ := checkSrc(t, branchSrc)
	g := cfg.New("loopy", funcNamed(t, f, "loopy").Body)
	d1, d2 := g.Dump(nil), g.Dump(nil)
	if d1 != d2 {
		t.Error("Dump is not deterministic")
	}
	for _, b := range g.Blocks {
		if !strings.Contains(d1, "b"+itoa(b.Index)) {
			t.Errorf("dump missing block b%d", b.Index)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
