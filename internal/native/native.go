// Package native implements a direct, DOM-walking XPath evaluator
// over the in-memory document tree. In the reproduction it plays two
// roles: the stand-in for the commercial RDBMS's built-in XPath
// processor of Section 5.2, and the correctness oracle every
// SQL-based translator is differentially tested against.
//
// Supported: all 13 axes, name/wildcard/text()/node() tests,
// predicates with and/or/not, value and node-set comparisons,
// arithmetic, position(), last(), count(), positional predicates,
// absolute paths inside predicates, and path union.
//
// Value semantics: the string value of an element is the
// concatenation of its *direct* text children — the same value the
// shredded mappings store in their 'text' columns — so that all five
// evaluated systems implement one comparison semantics (see
// DESIGN.md).
package native

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Item is one member of an XPath node set: an element or text node,
// or an attribute of an element (Attr >= 0 indexes Node.Attrs).
type Item struct {
	Node *xmltree.Node
	Attr int
}

// IsAttr reports whether the item is an attribute.
func (it Item) IsAttr() bool { return it.Attr >= 0 }

// StringValue returns the item's comparison string.
func (it Item) StringValue() string {
	if it.IsAttr() {
		return it.Node.Attrs[it.Attr].Value
	}
	if it.Node.Kind == xmltree.Text {
		return it.Node.Value
	}
	var b strings.Builder
	for _, c := range it.Node.Children {
		if c.Kind == xmltree.Text {
			b.WriteString(c.Value)
		}
	}
	return b.String()
}

// Evaluator evaluates XPath expressions over one document.
type Evaluator struct {
	doc *xmltree.Document
}

// New returns an evaluator for the document.
func New(doc *xmltree.Document) *Evaluator { return &Evaluator{doc: doc} }

// Eval evaluates a parsed XPath expression (a path or a union) and
// returns the resulting items in document order, without duplicates.
func (ev *Evaluator) Eval(e xpath.Expr) ([]Item, error) {
	items, err := ev.eval(e)
	if err != nil {
		return nil, err
	}
	// The virtual root (nil node) is never a result.
	out := items[:0]
	for _, it := range items {
		if it.Node != nil {
			out = append(out, it)
		}
	}
	return out, nil
}

func (ev *Evaluator) eval(e xpath.Expr) ([]Item, error) {
	switch x := e.(type) {
	case *xpath.Path:
		return ev.evalPath(x, nil)
	case *xpath.Union:
		var all []Item
		for _, p := range x.Paths {
			items, err := ev.evalPath(p, nil)
			if err != nil {
				return nil, err
			}
			all = append(all, items...)
		}
		return sortDedupe(all), nil
	default:
		return nil, fmt.Errorf("native: expression %T is not a location path", e)
	}
}

// EvalString parses and evaluates an XPath expression.
func (ev *Evaluator) EvalString(src string) ([]Item, error) {
	e, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return ev.Eval(e)
}

// ElementIDs returns the ids of the elements selected by an
// expression; text nodes map to their id, attributes to their owner's
// id. This is the comparison key used by the differential tests.
func (ev *Evaluator) ElementIDs(src string) ([]int64, error) {
	items, err := ev.EvalString(src)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(items))
	var prev int64 = -1
	for _, it := range items {
		id := it.Node.ID
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out, nil
}

// evalPath evaluates a path from the given context items (nil means
// the path's own start: the virtual root for absolute paths, which is
// an error for relative paths at the top level).
func (ev *Evaluator) evalPath(p *xpath.Path, ctx []Item) ([]Item, error) {
	var cur []Item
	if p.Absolute {
		cur = []Item{{Node: nil, Attr: -1}} // virtual root above the document element
	} else {
		if ctx == nil {
			return nil, fmt.Errorf("native: relative path %q has no context", p)
		}
		cur = ctx
	}
	if p.Absolute && len(p.Steps) == 0 {
		// Bare '/': the document root element.
		return []Item{{Node: ev.doc.Root, Attr: -1}}, nil
	}
	for _, step := range p.Steps {
		next, err := ev.evalStep(step, cur)
		if err != nil {
			return nil, err
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur, nil
}

// evalStep applies one location step to every context item, applying
// the step's predicates per context node (with positions counted in
// axis order), then merges in document order.
func (ev *Evaluator) evalStep(step *xpath.Step, ctx []Item) ([]Item, error) {
	var all []Item
	for _, c := range ctx {
		cand := ev.axisNodes(step, c)
		for _, pred := range step.Predicates {
			kept := cand[:0:0]
			size := len(cand)
			for i, it := range cand {
				ok, err := ev.evalPredicate(pred, it, i+1, size)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, it)
				}
			}
			cand = kept
			if len(cand) == 0 {
				break
			}
		}
		all = append(all, cand...)
	}
	return sortDedupe(all), nil
}

// axisNodes returns the nodes selected by the step's axis and node
// test from one context item, in axis order (reverse axes yield
// reverse document order, as positional predicates require).
func (ev *Evaluator) axisNodes(step *xpath.Step, c Item) []Item {
	if c.IsAttr() {
		// Attributes have no children and serve only as terminal steps.
		if step.Axis == xpath.Self {
			return []Item{c}
		}
		return nil
	}
	n := c.Node
	var out []Item
	add := func(m *xmltree.Node) {
		if matches(step, m) {
			out = append(out, Item{Node: m, Attr: -1})
		}
	}
	switch step.Axis {
	case xpath.Attribute:
		if n == nil {
			return nil
		}
		for i, a := range n.Attrs {
			if step.Name == "" || a.Name == step.Name {
				out = append(out, Item{Node: n, Attr: i})
			}
		}
	case xpath.Self:
		if n == nil {
			return nil
		}
		add(n)
	case xpath.Child:
		for _, ch := range ev.children(n) {
			add(ch)
		}
	case xpath.Descendant, xpath.DescendantOrSelf:
		var walk func(m *xmltree.Node)
		walk = func(m *xmltree.Node) {
			add(m)
			for _, ch := range m.Children {
				walk(ch)
			}
		}
		if n == nil {
			// Every real node is a descendant of the virtual root; the
			// or-self case keeps the virtual root itself in the context,
			// so that '//*' includes the document element.
			if step.Axis == xpath.DescendantOrSelf && step.Test == xpath.AnyKindTest {
				out = append(out, Item{Node: nil, Attr: -1})
			}
			walk(ev.doc.Root)
		} else {
			if step.Axis == xpath.DescendantOrSelf {
				add(n)
			}
			for _, ch := range n.Children {
				walk(ch)
			}
		}
	case xpath.Parent:
		if n != nil && n.Parent != nil {
			add(n.Parent)
		}
	case xpath.Ancestor, xpath.AncestorOrSelf:
		if n == nil {
			return nil
		}
		if step.Axis == xpath.AncestorOrSelf {
			add(n)
		}
		for a := n.Parent; a != nil; a = a.Parent {
			add(a) // reverse document order: nearest ancestor first
		}
	case xpath.Following:
		if n == nil {
			return nil
		}
		for _, m := range ev.doc.Nodes() {
			if xmltree.DocOrderLess(n, m) && !isDescendantOf(m, n) {
				add(m)
			}
		}
	case xpath.Preceding:
		if n == nil {
			return nil
		}
		nodes := ev.doc.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			m := nodes[i]
			if xmltree.DocOrderLess(m, n) && !isAncestorOf(m, n) {
				add(m) // reverse document order
			}
		}
	case xpath.FollowingSibling:
		if n == nil || n.Parent == nil {
			return nil
		}
		past := false
		for _, s := range n.Parent.Children {
			if s == n {
				past = true
				continue
			}
			if past {
				add(s)
			}
		}
	case xpath.PrecedingSibling:
		if n == nil || n.Parent == nil {
			return nil
		}
		var before []*xmltree.Node
		for _, s := range n.Parent.Children {
			if s == n {
				break
			}
			before = append(before, s)
		}
		for i := len(before) - 1; i >= 0; i-- {
			add(before[i]) // reverse document order
		}
	}
	return out
}

// children returns the children of n, treating nil as the virtual
// root whose single child is the document element.
func (ev *Evaluator) children(n *xmltree.Node) []*xmltree.Node {
	if n == nil {
		return []*xmltree.Node{ev.doc.Root}
	}
	return n.Children
}

// matches applies the step's node test.
func matches(step *xpath.Step, m *xmltree.Node) bool {
	switch step.Test {
	case xpath.TextTest:
		return m.Kind == xmltree.Text
	case xpath.AnyKindTest:
		return true
	default:
		if m.Kind != xmltree.Element {
			return false
		}
		return step.Name == "" || m.Name == step.Name
	}
}

func isDescendantOf(m, n *xmltree.Node) bool {
	for a := m.Parent; a != nil; a = a.Parent {
		if a == n {
			return true
		}
	}
	return false
}

func isAncestorOf(m, n *xmltree.Node) bool { return isDescendantOf(n, m) }

// --- predicate evaluation ---

// value is the dynamic result of an XPath expression: a node set, a
// number, a string or a boolean.
type value struct {
	kind  byte // 'n' nodeset, 'f' number, 's' string, 'b' bool
	nodes []Item
	num   float64
	str   string
	b     bool
}

func (ev *Evaluator) evalPredicate(e xpath.Expr, it Item, pos, size int) (bool, error) {
	v, err := ev.evalExpr(e, it, pos, size)
	if err != nil {
		return false, err
	}
	// Per XPath 1.0, a predicate that evaluates to a number is
	// positional: [n] == [position()=n].
	if v.kind == 'f' {
		return float64(pos) == v.num, nil
	}
	return v.truth(), nil
}

func (v value) truth() bool {
	switch v.kind {
	case 'n':
		return len(v.nodes) > 0
	case 'f':
		return v.num != 0 && !math.IsNaN(v.num)
	case 's':
		return v.str != ""
	default:
		return v.b
	}
}

func (ev *Evaluator) evalExpr(e xpath.Expr, it Item, pos, size int) (value, error) {
	switch x := e.(type) {
	case *xpath.Literal:
		return value{kind: 's', str: x.Value}, nil
	case *xpath.Number:
		return value{kind: 'f', num: x.Value}, nil
	case *xpath.Path:
		var ctx []Item
		if !x.Absolute {
			ctx = []Item{it}
		}
		nodes, err := ev.evalPath(x, ctx)
		if err != nil {
			return value{}, err
		}
		return value{kind: 'n', nodes: nodes}, nil
	case *xpath.Union:
		var all []Item
		for _, p := range x.Paths {
			var ctx []Item
			if !p.Absolute {
				ctx = []Item{it}
			}
			nodes, err := ev.evalPath(p, ctx)
			if err != nil {
				return value{}, err
			}
			all = append(all, nodes...)
		}
		return value{kind: 'n', nodes: sortDedupe(all)}, nil
	case *xpath.Call:
		switch x.Name {
		case "position":
			return value{kind: 'f', num: float64(pos)}, nil
		case "last":
			return value{kind: 'f', num: float64(size)}, nil
		case "not":
			v, err := ev.evalExpr(x.Args[0], it, pos, size)
			if err != nil {
				return value{}, err
			}
			return value{kind: 'b', b: !v.truth()}, nil
		case "count":
			v, err := ev.evalExpr(x.Args[0], it, pos, size)
			if err != nil {
				return value{}, err
			}
			if v.kind != 'n' {
				return value{}, fmt.Errorf("native: count() needs a node set")
			}
			return value{kind: 'f', num: float64(len(v.nodes))}, nil
		}
		return value{}, fmt.Errorf("native: unsupported function %q", x.Name)
	case *xpath.Binary:
		if x.Op.Logical() {
			l, err := ev.evalExpr(x.L, it, pos, size)
			if err != nil {
				return value{}, err
			}
			if x.Op == xpath.OpAnd && !l.truth() {
				return value{kind: 'b', b: false}, nil
			}
			if x.Op == xpath.OpOr && l.truth() {
				return value{kind: 'b', b: true}, nil
			}
			r, err := ev.evalExpr(x.R, it, pos, size)
			if err != nil {
				return value{}, err
			}
			return value{kind: 'b', b: r.truth()}, nil
		}
		l, err := ev.evalExpr(x.L, it, pos, size)
		if err != nil {
			return value{}, err
		}
		r, err := ev.evalExpr(x.R, it, pos, size)
		if err != nil {
			return value{}, err
		}
		if x.Op.Comparison() {
			return value{kind: 'b', b: compare(x.Op, l, r)}, nil
		}
		// Arithmetic.
		lf, lok := l.number()
		rf, rok := r.number()
		if !lok || !rok {
			return value{kind: 'f', num: math.NaN()}, nil
		}
		var out float64
		switch x.Op {
		case xpath.OpAdd:
			out = lf + rf
		case xpath.OpSub:
			out = lf - rf
		case xpath.OpMul:
			out = lf * rf
		case xpath.OpDiv:
			out = lf / rf
		case xpath.OpMod:
			out = math.Mod(lf, rf)
		}
		return value{kind: 'f', num: out}, nil
	}
	return value{}, fmt.Errorf("native: cannot evaluate %T", e)
}

// number coerces to a number: node sets use their first item's string
// value, per XPath 1.0.
func (v value) number() (float64, bool) {
	switch v.kind {
	case 'f':
		return v.num, true
	case 's':
		f, err := strconv.ParseFloat(strings.TrimSpace(v.str), 64)
		return f, err == nil
	case 'n':
		if len(v.nodes) == 0 {
			return 0, false
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v.nodes[0].StringValue()), 64)
		return f, err == nil
	default:
		if v.b {
			return 1, true
		}
		return 0, true
	}
}

// compare implements XPath comparison semantics: node sets compare
// existentially; equality against a string compares string values;
// against a number compares numerically; relational operators always
// compare numerically.
func compare(op xpath.Op, l, r value) bool {
	// Node set vs node set.
	if l.kind == 'n' && r.kind == 'n' {
		for _, a := range l.nodes {
			for _, b := range r.nodes {
				if atomicCompare(op, a.StringValue(), b.StringValue()) {
					return true
				}
			}
		}
		return false
	}
	// Node set vs atomic.
	if l.kind == 'n' {
		for _, a := range l.nodes {
			if compareAtomWith(op, a.StringValue(), r) {
				return true
			}
		}
		return false
	}
	if r.kind == 'n' {
		flipped := flip(op)
		for _, b := range r.nodes {
			if compareAtomWith(flipped, b.StringValue(), l) {
				return true
			}
		}
		return false
	}
	// Atomic vs atomic.
	switch {
	case l.kind == 'f' || r.kind == 'f' || op != xpath.OpEq && op != xpath.OpNe:
		lf, lok := l.number()
		rf, rok := r.number()
		if !lok || !rok {
			return op == xpath.OpNe
		}
		return numCompare(op, lf, rf)
	default:
		return strCompare(op, l.asString(), r.asString())
	}
}

func (v value) asString() string {
	switch v.kind {
	case 's':
		return v.str
	case 'f':
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case 'b':
		if v.b {
			return "true"
		}
		return "false"
	default:
		if len(v.nodes) > 0 {
			return v.nodes[0].StringValue()
		}
		return ""
	}
}

func compareAtomWith(op xpath.Op, s string, atom value) bool {
	if atom.kind == 'f' || op != xpath.OpEq && op != xpath.OpNe {
		f, ok := value{kind: 's', str: s}.number()
		af, aok := atom.number()
		if !ok || !aok {
			return op == xpath.OpNe
		}
		return numCompare(op, f, af)
	}
	return strCompare(op, s, atom.asString())
}

func atomicCompare(op xpath.Op, a, b string) bool {
	if op == xpath.OpEq || op == xpath.OpNe {
		return strCompare(op, a, b)
	}
	af, aok := value{kind: 's', str: a}.number()
	bf, bok := value{kind: 's', str: b}.number()
	if !aok || !bok {
		return false
	}
	return numCompare(op, af, bf)
}

func numCompare(op xpath.Op, a, b float64) bool {
	switch op {
	case xpath.OpEq:
		return a == b
	case xpath.OpNe:
		return a != b
	case xpath.OpLt:
		return a < b
	case xpath.OpLe:
		return a <= b
	case xpath.OpGt:
		return a > b
	case xpath.OpGe:
		return a >= b
	}
	return false
}

func strCompare(op xpath.Op, a, b string) bool {
	switch op {
	case xpath.OpEq:
		return a == b
	case xpath.OpNe:
		return a != b
	}
	return false
}

func flip(op xpath.Op) xpath.Op {
	switch op {
	case xpath.OpLt:
		return xpath.OpGt
	case xpath.OpLe:
		return xpath.OpGe
	case xpath.OpGt:
		return xpath.OpLt
	case xpath.OpGe:
		return xpath.OpLe
	}
	return op
}

// sortDedupe sorts items in document order and removes duplicates.
func sortDedupe(items []Item) []Item {
	if len(items) < 2 {
		return items
	}
	// Sort by (node document order, attr index); the virtual root
	// (nil node) sorts first.
	less := func(a, b Item) bool {
		if a.Node != b.Node {
			if a.Node == nil {
				return true
			}
			if b.Node == nil {
				return false
			}
			return xmltree.DocOrderLess(a.Node, b.Node)
		}
		return a.Attr < b.Attr
	}
	sort.SliceStable(items, func(i, j int) bool { return less(items[i], items[j]) })
	out := items[:1]
	for _, it := range items[1:] {
		last := out[len(out)-1]
		if it.Node != last.Node || it.Attr != last.Attr {
			out = append(out, it)
		}
	}
	return out
}
