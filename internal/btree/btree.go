// Package btree implements an in-memory B+tree keyed by byte strings,
// used as the index structure for every relational index in the
// engine. Keys are arbitrary []byte (typically produced by package
// keyenc); each key maps to a set of row ids, so non-unique indexes
// are supported directly.
//
// The tree supports point lookups, ordered insertion and deletion,
// and forward range scans over [lo, hi) byte intervals — the access
// pattern behind the paper's composite (dewey_pos, path_id) index and
// the Dewey BETWEEN structural joins.
package btree

import "bytes"

// degree is the maximum number of children of an interior node. Leaf
// nodes hold up to degree-1 entries.
const degree = 64

// Tree is a B+tree from byte-string keys to lists of int64 values.
// The zero value is not usable; call New.
type Tree struct {
	root   node
	height int
	keys   int // number of distinct keys
	vals   int // number of (key, value) pairs
}

type node interface{}

type leaf struct {
	entries []entry
	next    *leaf
}

type entry struct {
	key  []byte
	vals []int64
}

type interior struct {
	// children[i] covers keys < keys[i] (for i < len(keys)) and
	// children[len(keys)] covers the rest.
	keys     [][]byte
	children []node
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 0}
}

// Len returns the number of distinct keys in the tree.
func (t *Tree) Len() int { return t.keys }

// Pairs returns the total number of (key, value) pairs.
func (t *Tree) Pairs() int { return t.vals }

// Insert adds value v under key. Duplicate keys accumulate values;
// duplicate (key, value) pairs are stored once.
func (t *Tree) Insert(key []byte, v int64) {
	k := make([]byte, len(key))
	copy(k, key)
	midKey, sibling := t.insert(t.root, t.height, k, v)
	if sibling != nil {
		t.root = &interior{keys: [][]byte{midKey}, children: []node{t.root, sibling}}
		t.height++
	}
}

// insert descends to the leaf, inserts, and propagates splits upward.
// It returns a non-nil sibling (and its separator key) if n split.
func (t *Tree) insert(n node, height int, key []byte, v int64) ([]byte, node) {
	if height == 0 {
		lf := n.(*leaf)
		i := searchEntries(lf.entries, key)
		if i < len(lf.entries) && bytes.Equal(lf.entries[i].key, key) {
			e := &lf.entries[i]
			for _, existing := range e.vals {
				if existing == v {
					return nil, nil
				}
			}
			e.vals = append(e.vals, v)
			t.vals++
			return nil, nil
		}
		lf.entries = append(lf.entries, entry{})
		copy(lf.entries[i+1:], lf.entries[i:])
		lf.entries[i] = entry{key: key, vals: []int64{v}}
		t.keys++
		t.vals++
		if len(lf.entries) < degree {
			return nil, nil
		}
		mid := len(lf.entries) / 2
		right := &leaf{entries: append([]entry(nil), lf.entries[mid:]...), next: lf.next}
		lf.entries = lf.entries[:mid:mid]
		lf.next = right
		return right.entries[0].key, right
	}

	in := n.(*interior)
	i := searchKeys(in.keys, key)
	midKey, sibling := t.insert(in.children[i], height-1, key, v)
	if sibling == nil {
		return nil, nil
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = midKey
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = sibling
	if len(in.children) <= degree {
		return nil, nil
	}
	mid := len(in.keys) / 2
	sepKey := in.keys[mid]
	right := &interior{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return sepKey, right
}

// searchEntries returns the first index i with entries[i].key >= key.
func searchEntries(entries []entry, key []byte) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchKeys returns the child index to descend into for key: the
// first i with key < keys[i], i.e. children[i] covers keys < keys[i].
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Get returns the values stored under key, or nil.
func (t *Tree) Get(key []byte) []int64 {
	lf, i := t.findLeaf(key)
	if i < len(lf.entries) && bytes.Equal(lf.entries[i].key, key) {
		return lf.entries[i].vals
	}
	return nil
}

// Delete removes value v from key, returning whether the pair existed.
// Underfull nodes are not rebalanced (deletions are rare in the
// workloads; lookups remain correct and space is reclaimed when the
// tree is rebuilt).
func (t *Tree) Delete(key []byte, v int64) bool {
	lf, i := t.findLeaf(key)
	if i >= len(lf.entries) || !bytes.Equal(lf.entries[i].key, key) {
		return false
	}
	e := &lf.entries[i]
	for j, existing := range e.vals {
		if existing == v {
			e.vals = append(e.vals[:j], e.vals[j+1:]...)
			t.vals--
			if len(e.vals) == 0 {
				lf.entries = append(lf.entries[:i], lf.entries[i+1:]...)
				t.keys--
			}
			return true
		}
	}
	return false
}

func (t *Tree) findLeaf(key []byte) (*leaf, int) {
	n := t.root
	for h := t.height; h > 0; h-- {
		in := n.(*interior)
		n = in.children[searchKeys(in.keys, key)]
	}
	lf := n.(*leaf)
	return lf, searchEntries(lf.entries, key)
}

// Scan calls fn for every (key, value) pair with lo <= key < hi in
// ascending key order, stopping early if fn returns false. A nil hi
// means "no upper bound"; a nil lo starts at the smallest key.
func (t *Tree) Scan(lo, hi []byte, fn func(key []byte, v int64) bool) {
	var lf *leaf
	var i int
	if lo == nil {
		n := t.root
		for h := t.height; h > 0; h-- {
			n = n.(*interior).children[0]
		}
		lf, i = n.(*leaf), 0
	} else {
		lf, i = t.findLeaf(lo)
	}
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			e := &lf.entries[i]
			if hi != nil && bytes.Compare(e.key, hi) >= 0 {
				return
			}
			for _, v := range e.vals {
				if !fn(e.key, v) {
					return
				}
			}
		}
		lf, i = lf.next, 0
	}
}

// ScanAll calls fn for every pair in ascending key order.
func (t *Tree) ScanAll(fn func(key []byte, v int64) bool) { t.Scan(nil, nil, fn) }

// Min returns the smallest key, or nil if the tree is empty.
func (t *Tree) Min() []byte {
	n := t.root
	for h := t.height; h > 0; h-- {
		n = n.(*interior).children[0]
	}
	lf := n.(*leaf)
	if len(lf.entries) == 0 {
		return nil
	}
	return lf.entries[0].key
}

// Height returns the tree height (0 for a single-leaf tree), exposed
// for tests and statistics.
func (t *Tree) Height() int { return t.height }
