// Batched-executor shapes: a yield closure handed to a batch
// enumerator (forEachBatch / yieldChunks / flushTail) is built once
// per step activation; building it inside a loop re-allocates it
// every turn — the batched successor of the per-row closure class.
package engine

type batchYield func(ids []int64) (bool, error)

func forEachBatch(ids []int64, batch int, yield batchYield) error {
	for len(ids) > 0 {
		n := batch
		if n > len(ids) {
			n = len(ids)
		}
		if ok, err := yield(ids[:n]); err != nil || !ok {
			return err
		}
		ids = ids[n:]
	}
	return nil
}

func yieldChunks(ids []int64, batch int, yield batchYield) error {
	return forEachBatch(ids, batch, yield)
}

// Built once per activation, reused for every batch: sanctioned.
func runStepHoisted(ids []int64, batch int, sum *int64) error {
	yield := func(b []int64) (bool, error) {
		for _, id := range b {
			*sum += id
		}
		return true, nil
	}
	return forEachBatch(ids, batch, yield)
}

// Rebuilt per morsel: one closure allocation per loop turn.
func runMorselsRebuilt(morsels [][]int64, batch int, sum *int64) error {
	for _, m := range morsels {
		err := forEachBatch(m, batch, func(b []int64) (bool, error) { // want `capturing yield closure built inside a loop and passed to forEachBatch`
			for _, id := range b {
				*sum += id
			}
			return true, nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Same rebuild through the chunking helper.
func chunkRebuilt(morsels [][]int64, batch int, sum *int64) error {
	for _, m := range morsels {
		if err := yieldChunks(m, batch, func(b []int64) (bool, error) { // want `capturing yield closure built inside a loop and passed to yieldChunks`
			*sum += int64(len(b))
			return true, nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// A non-capturing literal compiles to a static function value; no
// finding even inside the loop.
func nonCapturingInLoop(morsels [][]int64, batch int) error {
	for _, m := range morsels {
		if err := forEachBatch(m, batch, func(b []int64) (bool, error) { return true, nil }); err != nil {
			return err
		}
	}
	return nil
}
