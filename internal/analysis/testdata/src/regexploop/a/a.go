// Seeded violations for the regexploop analyzer: pattern compilation
// inside loop bodies.
package a

import (
	"regexp"

	"repro/internal/pathre"
)

func compileInFor(pats []string) int {
	n := 0
	for i := 0; i < len(pats); i++ {
		re := regexp.MustCompile(pats[i]) // want `regexp.MustCompile inside a loop`
		if re.MatchString("x") {
			n++
		}
	}
	return n
}

func compileInRange(pats, rows []string) (int, error) {
	n := 0
	for _, p := range pats {
		re, err := pathre.Compile(p) // want `pathre.Compile inside a loop`
		if err != nil {
			return 0, err
		}
		for _, r := range rows {
			if re.MatchString(r) {
				n++
			}
		}
	}
	return n, nil
}

func closureInLoop(pats []string) []func() *regexp.Regexp {
	var out []func() *regexp.Regexp
	for _, p := range pats {
		p := p
		out = append(out, func() *regexp.Regexp {
			return regexp.MustCompile(p) // want `regexp.MustCompile inside a loop`
		})
	}
	return out
}

// Determinizing into the engine's dense DFA is at least as expensive
// as compiling; per-row determinization is the same class of bug.
func determinizeInLoop(pats []string) (int, error) {
	n := 0
	for _, p := range pats {
		re, err := pathre.Compile(p) // want `pathre.Compile inside a loop`
		if err != nil {
			return 0, err
		}
		d, err := pathre.CompileDFA(re) // want `pathre.CompileDFA inside a loop`
		if err != nil {
			return 0, err
		}
		if d.MatchString("x") {
			n++
		}
	}
	return n, nil
}
