package dblp

import (
	"testing"

	"repro/internal/native"
	"repro/internal/schema"
)

func TestSchemaMarks(t *testing.T) {
	s := Schema()
	for _, name := range []string{"sub", "sup"} {
		if s.Node(name).Mark != schema.InfinitePaths {
			t.Errorf("%s should be I-P, got %s", name, s.Node(name).Mark)
		}
	}
	// i appears under title, sub and sup; sub/sup are recursive, so i
	// is downstream of a cycle: I-P.
	if s.Node("i").Mark != schema.InfinitePaths {
		t.Errorf("i should be I-P, got %s", s.Node("i").Mark)
	}
	// author appears under all three publication kinds: F-P.
	if got := s.Node("author"); got.Mark != schema.FinitePaths || len(got.RootPaths) != 3 {
		t.Errorf("author marking = %s with %d paths", got.Mark, len(got.RootPaths))
	}
	if s.Node("dblp").Mark != schema.UniquePath {
		t.Errorf("dblp should be U-P")
	}
}

func TestGenerateValidates(t *testing.T) {
	doc := MustGenerate(Config{Scale: 0.05, Seed: 3})
	if err := Schema().Validate(doc); err != nil {
		t.Fatalf("generated document violates schema: %v", err)
	}
	doc2 := MustGenerate(Config{Scale: 0.05, Seed: 3})
	if doc.Len() != doc2.Len() {
		t.Fatal("generation is not deterministic")
	}
}

func TestPlantedCardinalities(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	doc := MustGenerate(Config{Scale: 1, Seed: 11})
	ev := native.New(doc)
	count := func(q string) int {
		ids, err := ev.ElementIDs(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return len(ids)
	}
	// QD1: exactly 2 (paper: 2).
	if got := count(Queries[0].XPath); got != 2 {
		t.Errorf("QD1 = %d, want 2", got)
	}
	// QD4: exactly 1 (paper: 1).
	if got := count(Queries[3].XPath); got != 1 {
		t.Errorf("QD4 = %d, want 1", got)
	}
	// QD2 is a subset of all sup elements under inproceedings; both
	// positive and QD2 <= QD3-ish relation should hold.
	qd2, qd3 := count(Queries[1].XPath), count(Queries[2].XPath)
	if qd2 <= 0 || qd3 <= 0 {
		t.Errorf("QD2 = %d, QD3 = %d; both should be positive", qd2, qd3)
	}
	// QD5: a sizeable fraction of inproceedings share an author with a
	// book (paper: 12178 of ~240k; here scaled down).
	if got := count(Queries[4].XPath); got < 100 {
		t.Errorf("QD5 = %d, want >= 100", got)
	}
}

func TestAllQueriesRunOnSmallCorpus(t *testing.T) {
	doc := MustGenerate(Config{Scale: 0.05, Seed: 5})
	ev := native.New(doc)
	for _, q := range Queries {
		if _, err := ev.ElementIDs(q.XPath); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
	}
}
