package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDisabledInjectIsNil(t *testing.T) {
	Reset()
	if err := Inject("engine/never-armed"); err != nil {
		t.Fatalf("Inject on unarmed point = %v, want nil", err)
	}
}

func TestReturnAction(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	if err := Enable("t/return", Return(boom)); err != nil {
		t.Fatal(err)
	}
	if err := Inject("t/return"); !errors.Is(err, boom) {
		t.Fatalf("Inject = %v, want %v", err, boom)
	}
	// Other names stay unaffected.
	if err := Inject("t/other"); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
	Disable("t/return")
	if err := Inject("t/return"); err != nil {
		t.Fatalf("Inject after Disable = %v, want nil", err)
	}
}

func TestReturnNilDefaultsToErrInjected(t *testing.T) {
	defer Reset()
	if err := Enable("t/default", Return(nil)); err != nil {
		t.Fatal(err)
	}
	if err := Inject("t/default"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	if err := Enable("t/panic", Panic("kaboom")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicValue", r, r)
		}
		if pv.Name != "t/panic" || pv.Msg != "kaboom" {
			t.Fatalf("PanicValue = %+v", pv)
		}
	}()
	_ = Inject("t/panic")
	t.Fatal("Inject did not panic")
}

func TestSleepAction(t *testing.T) {
	defer Reset()
	if err := Enable("t/sleep", Sleep(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("t/sleep"); err != nil {
		t.Fatalf("Inject = %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Inject returned after %v, want >= 20ms", d)
	}
}

func TestTimesAndAfter(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	// Skip 2 hits, then fire exactly 2 times.
	if err := Enable("t/window", Return(boom).After(2).Times(2)); err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Inject("t/window") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (sequence %v)", i, got[i], want[i], got)
		}
	}
	if h := Hits("t/window"); h != 6 {
		t.Fatalf("Hits = %d, want 6", h)
	}
}

func TestRegistryBound(t *testing.T) {
	defer Reset()
	for i := 0; i < MaxActive; i++ {
		if err := Enable(fmt.Sprintf("t/bound-%d", i), Return(nil)); err != nil {
			t.Fatalf("Enable %d: %v", i, err)
		}
	}
	if err := Enable("t/overflow", Return(nil)); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("Enable beyond MaxActive = %v, want ErrRegistryFull", err)
	}
	// Re-arming an existing name is not growth and must succeed.
	if err := Enable("t/bound-0", Panic("x")); err != nil {
		t.Fatalf("re-Enable = %v", err)
	}
	if n := len(Active()); n != MaxActive {
		t.Fatalf("Active = %d names, want %d", n, MaxActive)
	}
	Reset()
	if n := len(Active()); n != 0 {
		t.Fatalf("Active after Reset = %d names, want 0", n)
	}
	if err := Inject("t/bound-1"); err != nil {
		t.Fatalf("Inject after Reset = %v, want nil", err)
	}
}

// TestConcurrentInject hammers one armed point and one unarmed point
// from many goroutines; run under -race in CI.
func TestConcurrentInject(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	if err := Enable("t/conc", Return(boom)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := Inject("t/conc"); !errors.Is(err, boom) {
					panic("armed point did not fire")
				}
				if err := Inject("t/conc-unarmed"); err != nil {
					panic("unarmed point fired")
				}
			}
		}()
	}
	wg.Wait()
	if h := Hits("t/conc"); h != 8000 {
		t.Fatalf("Hits = %d, want 8000", h)
	}
}
