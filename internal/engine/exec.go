package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/sqlast"
)

// Result is the outcome of executing a statement.
type Result struct {
	Cols []string
	Rows [][]Value
	// PeakMemBytes is the statement's peak accounted memory: the
	// high-water mark of materialized result rows, ORDER BY keys,
	// DISTINCT sets, per-morsel buffers and exec-time hash builds
	// (see the resource governor in govern.go).
	PeakMemBytes int64
}

// ExecOptions tune the execution of a single statement.
type ExecOptions struct {
	// Parallelism is the maximum number of worker goroutines the
	// morsel executor may use for the driving table of a top-level
	// SELECT. Values <= 1 select the serial executor. Nested
	// (correlated) subplans always run serially within the worker
	// that binds their outer row.
	Parallelism int
	// Timeout is a wall-clock budget; ErrTimeout reports an exceeded
	// budget (0 means no limit).
	Timeout time.Duration
	// MaxMemoryBytes bounds the bytes the statement may materialize
	// (result rows, ORDER BY keys, DISTINCT sets, per-morsel output
	// buffers, exec-time hash-join builds); ErrMemoryBudget reports
	// an overrun (0 means no limit).
	MaxMemoryBytes int64
	// MaxRows bounds the result rows the statement may materialize;
	// ErrRowBudget reports an overrun (0 means no limit). COUNT(*)
	// aggregation counts without materializing and is not bounded.
	MaxRows int64
}

// execCtx carries execution state shared across a statement run. Each
// parallel worker gets its own execCtx so the deadline tick counter
// stays unshared; the accountant and context are shared across
// workers.
type execCtx struct {
	db          *DB
	ctx         context.Context // nil when the statement has no context
	deadline    time.Time
	ticks       int
	parallelism int
	acct        *accountant
	sql         string // rendered statement text, for InternalError
}

// ErrTimeout is returned when a statement exceeds its deadline.
var ErrTimeout = errors.New("engine: statement timed out")

// checkDeadline is called periodically from the row loop. The check
// itself runs every 1024th call so hot loops pay one counter
// increment, not a clock read.
func (ec *execCtx) checkDeadline() error {
	if ec.deadline.IsZero() && ec.ctx == nil {
		return nil
	}
	ec.ticks++
	if ec.ticks&0x3FF != 0 {
		return nil
	}
	return ec.checkNow()
}

// checkNow checks cancellation and the deadline unconditionally.
// Phase boundaries (after a hash-join build, before fan-out) call it
// directly so a deadline that expired during a long build is
// observed before the next phase starts, regardless of the tick
// counter's position.
func (ec *execCtx) checkNow() error {
	if ec.ctx != nil {
		select {
		case <-ec.ctx.Done():
			return ec.ctx.Err()
		default:
		}
	}
	if !ec.deadline.IsZero() && time.Now().After(ec.deadline) {
		return ErrTimeout
	}
	return nil
}

// pattern returns a compiled matcher for a dynamic REGEXP_LIKE
// pattern (constant patterns are compiled at plan time).
func (ec *execCtx) pattern(pat string) (*matcher, error) { return compilePattern(pat) }

// Run plans and executes a SELECT or UNION statement.
func (db *DB) Run(st sqlast.Statement) (*Result, error) {
	return db.RunWithOptions(st, ExecOptions{})
}

// RunWithTimeout is Run with a wall-clock budget; it returns
// ErrTimeout when the budget is exceeded (0 means no limit).
func (db *DB) RunWithTimeout(st sqlast.Statement, timeout time.Duration) (*Result, error) {
	return db.RunWithOptions(st, ExecOptions{Timeout: timeout})
}

// RunWithOptions plans (through the prepared-plan cache) and executes
// a SELECT or UNION statement with the given options.
func (db *DB) RunWithOptions(st sqlast.Statement, opts ExecOptions) (*Result, error) {
	return db.RunWithOptionsContext(nil, st, opts)
}

// RunContext is Run honoring cancellation: execution stops with
// ctx.Err() soon after ctx is cancelled or its deadline passes.
func (db *DB) RunContext(ctx context.Context, st sqlast.Statement) (*Result, error) {
	return db.RunWithOptionsContext(ctx, st, ExecOptions{})
}

// RunWithOptionsContext plans (through the prepared-plan cache) and
// executes a SELECT or UNION statement with the given options,
// honoring ctx cancellation (nil means no context). It is the
// statement boundary: an internal panic anywhere in planning or
// execution returns as *InternalError instead of propagating.
func (db *DB) RunWithOptionsContext(ctx context.Context, st sqlast.Statement, opts ExecOptions) (res *Result, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return nil, err
	}
	return db.runCompiled(ctx, cs, opts, key)
}

// runCompiled executes an already-compiled statement. Callers must
// have deferred guardPanics; sql is the rendered statement text
// carried into worker-side InternalErrors.
func (db *DB) runCompiled(ctx context.Context, cs *compiledStmt, opts ExecOptions, sql string) (*Result, error) {
	ec := &execCtx{db: db, parallelism: opts.Parallelism, sql: sql,
		acct: newAccountant(opts.MaxMemoryBytes, opts.MaxRows)}
	if ctx != nil {
		ec.ctx = ctx
		if d, ok := ctx.Deadline(); ok {
			ec.deadline = d
		}
	}
	if opts.Timeout > 0 {
		if d := time.Now().Add(opts.Timeout); ec.deadline.IsZero() || d.Before(ec.deadline) {
			ec.deadline = d
		}
	}
	// An already-cancelled context (or spent deadline) fails before any
	// work: short statements would otherwise finish between periodic
	// checks and mask the cancellation.
	if err := ec.checkNow(); err != nil {
		return nil, err
	}
	var res *Result
	var err error
	if cs.sel != nil {
		res, err = ec.runTop(cs.sel)
	} else {
		res, err = ec.runUnion(cs.union)
	}
	// Record the peak even when the statement failed: a budget error is
	// exactly when the high-water mark matters.
	db.notePeakMemory(ec.acct.peakBytes())
	if err != nil {
		return nil, err
	}
	res.PeakMemBytes = ec.acct.peakBytes()
	return res, nil
}

// RunSQL parses and runs a statement given as text.
func (db *DB) RunSQL(src string) (*Result, error) {
	st, err := sqlast.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.Run(st)
}

// runUnion executes a compiled UNION: branches run in order (each
// branch through runTop, so morsel parallelism applies per branch),
// duplicate rows are dropped across branches, and the merged rows are
// ordered by the union-level ORDER BY.
func (ec *execCtx) runUnion(u *unionPlan) (*Result, error) {
	out := &Result{Cols: u.cols}
	seen := map[string]bool{}
	var rows []orderedRow
	for _, plan := range u.branches {
		res, err := ec.runTop(plan)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows {
			key := rowKey(r)
			if seen[key] {
				continue
			}
			// The union-level dedup set and merged buffer are additional
			// materialization on top of the (already accounted) branch
			// results.
			if err := ec.acct.growBytes(int64(len(key)) + mapEntryBytes); err != nil {
				return nil, err
			}
			seen[key] = true
			or := orderedRow{row: r}
			for _, pos := range u.orderPos {
				or.keys = append(or.keys, r[pos])
			}
			rows = append(rows, or)
		}
	}
	if len(u.orderPos) > 0 {
		sortRows(rows, u.orderDesc)
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
	}
	return out, nil
}

// runTop executes a plan as a top-level query: projection, DISTINCT,
// ORDER BY. When the execution options allow it and the driving table
// is large enough, row enumeration fans out over morsel workers.
func (ec *execCtx) runTop(plan *selectPlan) (*Result, error) {
	if ec.parallelism > 1 {
		rows, count, handled, err := ec.collectParallel(plan)
		if err != nil {
			return nil, err
		}
		if handled {
			return finishTop(plan, rows, count, true), nil
		}
	}
	if plan.countStar {
		n := int64(0)
		err := ec.runPlan(plan, env{}, func([]Value) (bool, error) {
			n++
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		return finishTop(plan, nil, n, false), nil
	}
	var rows []orderedRow
	var seen map[string]bool
	if plan.distinct {
		seen = map[string]bool{}
	}
	err := ec.runPlanOrdered(plan, env{}, func(row, keys []Value) (bool, error) {
		if plan.distinct {
			k := rowKey(row)
			if seen[k] {
				return true, nil
			}
			if err := ec.acct.growBytes(int64(len(k)) + mapEntryBytes); err != nil {
				return false, err
			}
			seen[k] = true
		}
		if err := ec.acct.addRow(rowMemBytes(row, keys)); err != nil {
			return false, err
		}
		rows = append(rows, orderedRow{row: row, keys: keys})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return finishTop(plan, rows, 0, false), nil
}

// finishTop applies DISTINCT (unless already applied during
// collection), the top-level sort, and assembles the Result. The
// parallel collector defers dedup to here so the surviving row for
// each distinct key is the first in merged (= serial) order.
func finishTop(plan *selectPlan, rows []orderedRow, count int64, dedup bool) *Result {
	out := &Result{Cols: plan.colNames}
	if plan.countStar {
		out.Rows = append(out.Rows, []Value{NewInt(count)})
		return out
	}
	if dedup && plan.distinct {
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			k := rowKey(r.row)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
		}
		rows = kept
	}
	if len(plan.orderBy) > 0 {
		desc := make([]bool, len(plan.orderBy))
		for i, k := range plan.orderBy {
			desc[i] = k.desc
		}
		sortRows(rows, desc)
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, r.row)
	}
	return out
}

// rowKey builds a distinct-set key for a projected row using the
// order-preserving keyenc encoding.
func rowKey(row []Value) string {
	var buf []byte
	for _, v := range row {
		buf = encodeValue(buf, v)
	}
	return string(buf)
}

// lessKeys compares two ORDER BY key vectors value by value. It is
// the general comparison path; sortRows prefers precomputed
// memcomparable keys when the key kinds allow it.
func lessKeys(a, b []Value, desc []bool) bool {
	for i := range a {
		cmp, ok := Compare(a[i], b[i])
		if !ok {
			// NULLs (and incomparables) sort first.
			an, bn := a[i].IsNull(), b[i].IsNull()
			if an == bn {
				continue
			}
			cmp = 1
			if an {
				cmp = -1
			}
		}
		if cmp == 0 {
			continue
		}
		if desc[i] {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// runPlan enumerates matching bindings and emits projected rows.
// The emit callback returns false to stop enumeration early.
func (ec *execCtx) runPlan(plan *selectPlan, e env, emit func(row []Value) (bool, error)) error {
	return ec.runPlanOrdered(plan, e, func(row, _ []Value) (bool, error) { return emit(row) })
}

// runPlanOrdered additionally evaluates ORDER BY keys per emitted row.
func (ec *execCtx) runPlanOrdered(plan *selectPlan, e env, emit func(row, keys []Value) (bool, error)) error {
	for _, f := range plan.preFilters {
		v, err := f.eval(ec, e)
		if err != nil {
			return err
		}
		if !v.Truth() {
			return nil
		}
	}
	r := &stepRunner{ec: ec, plan: plan, e: e, emit: emit}
	return r.run(0)
}

// stepRunner walks a plan's join steps recursively, binding one row
// per step. The morsel executor reuses it from step 1 after binding
// the driving row itself.
type stepRunner struct {
	ec   *execCtx
	plan *selectPlan
	e    env
	emit func(row, keys []Value) (bool, error)
	stop bool
}

// run enumerates the access path of the given step (projecting and
// emitting once all steps are bound).
func (r *stepRunner) run(step int) error {
	if step == len(r.plan.steps) {
		var row []Value
		if !r.plan.countStar {
			row = make([]Value, len(r.plan.cols))
			for i, c := range r.plan.cols {
				v, err := c.eval(r.ec, r.e)
				if err != nil {
					return err
				}
				row[i] = v
			}
		}
		var keys []Value
		if len(r.plan.orderBy) > 0 {
			keys = make([]Value, len(r.plan.orderBy))
			for i, k := range r.plan.orderBy {
				v, err := k.x.eval(r.ec, r.e)
				if err != nil {
					return err
				}
				keys[i] = v
			}
		}
		cont, err := r.emit(row, keys)
		if err != nil {
			return err
		}
		if !cont {
			r.stop = true
		}
		return nil
	}
	s := r.plan.steps[step]
	return forEachRow(r.ec, r.e, s, func(id int64) (bool, error) {
		if err := r.tryRow(step, id); err != nil {
			return false, err
		}
		return !r.stop, nil
	})
}

// tryRow binds one candidate row of a step, applies the step's
// residual filters, and recurses into the next step.
func (r *stepRunner) tryRow(step int, id int64) error {
	if err := r.ec.checkDeadline(); err != nil {
		return err
	}
	s := r.plan.steps[step]
	r.e[s.name] = s.table.Rows[id]
	defer delete(r.e, s.name)
	for _, f := range s.filters {
		v, err := f.eval(r.ec, r.e)
		if err != nil {
			return err
		}
		if !v.Truth() {
			return nil
		}
	}
	return r.run(step + 1)
}

// forEachRow enumerates the candidate row ids of one join step's
// access path under the current bindings, in the executor's canonical
// order. yield returns false to stop early. The morsel executor uses
// it to materialize the driving table's ids before partitioning.
func forEachRow(ec *execCtx, e env, s *joinStep, yield func(id int64) (bool, error)) error {
	switch a := s.access.(type) {
	case fullScan:
		for id := range s.table.Rows {
			cont, err := yield(int64(id))
			if err != nil || !cont {
				return err
			}
		}
	case *indexEq:
		var key []byte
		for _, kx := range a.keys {
			v, err := kx.eval(ec, e)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			key = encodeValue(key, v)
		}
		for _, id := range a.ix.Tree.Get(key) {
			cont, err := yield(id)
			if err != nil || !cont {
				return err
			}
		}
	case *indexPrefixes:
		v, err := a.x.eval(ec, e)
		if err != nil {
			return err
		}
		if v.Kind != KBytes {
			return nil
		}
		for k := 0; k <= len(v.B); k++ {
			// Prefix-match within a possibly composite index: scan the
			// interval covering exactly this first-component value.
			lo := encodeValue(nil, NewBytes(v.B[:k]))
			hi := append(append([]byte(nil), lo...), 0xFF)
			stop := false
			var scanErr error
			a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
				cont, err := yield(id)
				if err != nil {
					scanErr = err
					return false
				}
				stop = !cont
				return cont
			})
			if scanErr != nil || stop {
				return scanErr
			}
		}
	case *hashEq, *fatHash:
		h, ok := s.access.(*hashEq)
		if !ok {
			h = s.access.(*fatHash).h
		}
		v, err := h.key.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		key := string(encodeValue(nil, v))
		m, built, err := s.table.hashFor(h.col, ec.acct)
		if err != nil {
			return err
		}
		if built {
			// The build may have consumed a large slice of the deadline;
			// observe it before starting the probe phase instead of
			// waiting out the tick counter.
			if err := ec.checkNow(); err != nil {
				return err
			}
		}
		for _, id := range m[key] {
			cont, err := yield(id)
			if err != nil || !cont {
				return err
			}
		}
	case *indexRange:
		var lo, hi []byte
		if a.lo != nil {
			v, err := a.lo.eval(ec, e)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			lo = encodeValue(nil, v)
			if a.loStrict {
				lo = append(lo, 0xFF)
			}
		}
		if a.hi != nil {
			v, err := a.hi.eval(ec, e)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			hi = encodeValue(nil, v)
			if !a.hiStrict {
				hi = append(hi, 0xFF)
			}
		}
		var scanErr error
		a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
			cont, err := yield(id)
			if err != nil {
				scanErr = err
				return false
			}
			return cont
		})
		if scanErr != nil {
			return scanErr
		}
	default:
		return fmt.Errorf("engine: internal: unknown access path %T", s.access)
	}
	return nil
}

// equalResults reports whether two results hold the same multiset of
// rows in the same order; used by tests.
func equalResults(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !bytes.Equal([]byte(rowKey(a.Rows[i])), []byte(rowKey(b.Rows[i]))) {
			return false
		}
	}
	return true
}
