// A miniature of internal/synopsis with exported statistic fields
// (as a serialization change might introduce): the analyzer keeps the
// API boundary enforced even where the type system stops helping. The
// package itself may write its fields freely.
package synopsis

type Col struct {
	Count int64
	Nulls int64
}

func (c *Col) Add(isNull bool) {
	c.Count++
	if isNull {
		c.Nulls++
	}
}

type Table struct {
	NRows int64
	Cols  []Col
}

func (t *Table) AddRow() *Col {
	t.NRows = t.NRows + 1
	return &t.Cols[0]
}

func (t *Table) Rows() int64 { return t.NRows }
