// Violation cases: recover() anywhere else in the engine swallows
// panics mid-statement.
package engine

func runStatement() (err error) {
	defer func() {
		if r := recover(); r != nil { // want `recover\(\) in internal/engine outside guard.go`
			err = toInternal(r)
		}
	}()
	defer guardPanics(&err)
	return nil
}

func sneakyWorker(out chan<- error) {
	defer func() {
		out <- toInternal(recover()) // want `recover\(\) in internal/engine outside guard.go`
	}()
}

// recover shadowed by a local function is not the builtin.
func shadowed() {
	recover := func() any { return nil }
	_ = recover()
}
