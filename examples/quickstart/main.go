// Quickstart: define a schema, shred a document, and run XPath
// queries through the PPF-based translator — the end-to-end flow of
// the paper on a ten-line document.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/xrel"
)

// The schema of the paper's Figure 1(a), in the compact DSL.
const schemaSrc = `
!root A
A -> B @x
B -> C G
C -> D E
E -> F
G -> G
F #text
D #text
`

// The document of Figure 1(b), with values for the predicates.
const doc = `<A x="3">
  <B>
    <C><D>4</D></C>
    <C><E><F>2</F><F>7</F></E></C>
    <G/>
  </B>
  <B><G><G/></G></B>
</A>`

func main() {
	s, err := xrel.ParseCompactSchema(schemaSrc)
	if err != nil {
		log.Fatal(err)
	}
	store, err := xrel.Open(s)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.LoadXML(strings.NewReader(doc)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("storage layout:", strings.Join(store.TableSizes(), " "))
	fmt.Println("distinct root-to-node paths:", store.PathCount())
	fmt.Println()

	// The queries of the paper's Tables 3 and 5.
	for _, q := range []string{
		"/A[@x=3]/B/C//F",               // forward PPFs, Dewey descendant join
		"/A[@x=3]/B",                    // single child step: FK join
		"//F/parent::E/ancestor::B",     // backward PPF
		"/A/B[C/E/F=2]",                 // predicate with an EXISTS subselect
		"//F[parent::E or ancestor::G]", // Table 5-2: pure path filtering
	} {
		sql, err := store.Translate(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := store.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("XPath: %s\n", q)
		fmt.Printf("SQL:   %s\n", sql.Text)
		fmt.Printf("       (%d relation(s), %d select(s))\n", sql.Joins, sql.Selects)
		fmt.Printf("nodes:")
		for _, n := range res.Nodes {
			fmt.Printf(" id=%d@%s", n.ID, n.Dewey)
		}
		fmt.Printf("\n\n")
	}
}
