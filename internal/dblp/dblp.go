// Package dblp generates a deterministic DBLP-like bibliography
// corpus for the paper's Section 5 experiments. The structure mirrors
// what the QD1-QD5 queries touch: inproceedings, articles and books
// with author lists, years, and titles carrying nested sub/sup/i
// markup (a recursive — I-P — part of the schema).
package dblp

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Base counts at Scale=1. The real DBLP dump of the paper is ~130 MB;
// Scale=1 keeps the same structural mix at laptop-test size and the
// benchmark loads it at a larger scale.
const (
	baseInproceedings = 6000
	baseArticles      = 2500
	baseBooks         = 150
	baseAuthors       = 4000
)

// Config controls generation.
type Config struct {
	Scale float64
	Seed  int64
}

// Schema returns the DBLP schema graph. The sub/sup/i markup is
// mutually recursive, so those elements are I-P and exercise the
// translator's recursive-path regexes.
func Schema() *schema.Schema {
	b := schema.NewBuilder("dblp")
	b.Element("dblp", "inproceedings", "article", "book")
	for _, pub := range []string{"inproceedings", "article", "book"} {
		b.Element(pub, "author", "title", "year", "pages")
		b.Attrs(pub, "key")
	}
	b.Element("inproceedings", "booktitle")
	b.Element("article", "journal", "volume")
	b.Element("book", "publisher", "isbn")
	b.Element("title", "sub", "sup", "i")
	b.Element("sub", "sub", "sup", "i")
	b.Element("sup", "sub", "sup", "i")
	b.Element("i")
	b.Text("author", "title", "year", "pages", "booktitle", "journal",
		"volume", "publisher", "isbn", "sub", "sup", "i")
	return b.MustBuild()
}

type generator struct {
	b   *xmltree.Builder
	r   *rand.Rand
	cfg Config

	authors     []string
	bookAuthors map[string]bool
}

// Generate builds the corpus.
func Generate(cfg Config) (*xmltree.Document, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := &generator{
		b:           xmltree.NewBuilder(),
		r:           rand.New(rand.NewSource(cfg.Seed)),
		cfg:         cfg,
		bookAuthors: map[string]bool{},
	}
	nAuthors := scaled(baseAuthors, cfg.Scale)
	g.authors = make([]string, nAuthors)
	for i := range g.authors {
		g.authors[i] = fmt.Sprintf("%s %s. %s", firstNames[i%len(firstNames)],
			string(rune('A'+i%26)), lastNames[(i/3)%len(lastNames)])
	}
	b := g.b
	b.Start("dblp")
	// Books first so their author set is known when generating papers
	// (QD5 joins inproceedings authors against book authors).
	for i, n := 0, scaled(baseBooks, cfg.Scale); i < n; i++ {
		g.book(i)
	}
	for i, n := 0, scaled(baseInproceedings, cfg.Scale); i < n; i++ {
		g.inproceedings(i)
	}
	for i, n := 0, scaled(baseArticles, cfg.Scale); i < n; i++ {
		g.article(i)
	}
	b.End()
	return b.Doc()
}

// MustGenerate panics on error.
func MustGenerate(cfg Config) *xmltree.Document {
	doc, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return doc
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

var firstNames = []string{"Alan", "Grace", "Edsger", "Barbara", "Donald", "Ada", "John", "Leslie", "Tony", "Frances"}
var lastNames = []string{"Turner", "Hopper", "Knuth", "Liskov", "Lamport", "Gray", "Codd", "Dijkstra", "Hoare", "Allen"}
var topicWords = []string{"Efficient", "Scalable", "Adaptive", "Parallel", "Relational", "Streaming", "Indexed", "Holistic", "Recursive", "Optimal"}
var areaWords = []string{"XPath", "XML", "Query", "Join", "Index", "Storage", "Schema", "Path", "Tree", "Graph"}

func (g *generator) author() string { return g.authors[g.r.Intn(len(g.authors))] }

// title emits a title, possibly with sub/sup/i markup. forceDeepI
// plants the exact structure QD4 counts: an <i> whose parent is
// inside a <sub>, inside an article title.
func (g *generator) title(markup bool, forceDeepI bool) {
	b := g.b
	b.Start("title")
	b.Text(g.topic())
	if forceDeepI {
		// i / parent::* (sup) / parent::sub / ancestor::article
		b.Start("sub").Text("H").
			Start("sup").Text("2").
			Elem("i", "n").
			End().
			End()
		b.End()
		return
	}
	if markup {
		switch g.r.Intn(4) {
		case 0:
			b.Elem("sub", "2")
		case 1:
			b.Elem("sup", "n")
		case 2:
			b.Start("sub").Text("i").Elem("sup", "2").End()
		case 3:
			b.Elem("i", "k")
		}
		b.Text(g.topic())
	}
	b.End()
}

func (g *generator) topic() string {
	return topicWords[g.r.Intn(len(topicWords))] + " " + areaWords[g.r.Intn(len(areaWords))] + " Processing"
}

func (g *generator) year() string {
	return fmt.Sprintf("%d", 1988+g.r.Intn(16)) // 1988..2003
}

func (g *generator) book(i int) {
	b := g.b
	b.Start("book", "key", fmt.Sprintf("books/x/%d", i))
	for j, n := 0, 1+g.r.Intn(2); j < n; j++ {
		a := g.author()
		g.bookAuthors[a] = true
		b.Elem("author", a)
	}
	g.title(false, false)
	b.Elem("year", g.year())
	b.Elem("publisher", "Example Press")
	b.Elem("isbn", fmt.Sprintf("%d-%d", g.r.Intn(999), g.r.Intn(99999)))
	b.End()
}

func (g *generator) inproceedings(i int) {
	b := g.b
	b.Start("inproceedings", "key", fmt.Sprintf("conf/x/%d", i))
	nAuthors := 1 + g.r.Intn(3)
	for j := 0; j < nAuthors; j++ {
		name := g.author()
		// QD1: exactly two inproceedings titles have a preceding-sibling
		// author 'Harold G. Longbotham'.
		if (i == 10 || i == 2000%max(1, scaled(baseInproceedings, g.cfg.Scale))) && j == 0 {
			name = "Harold G. Longbotham"
		}
		b.Elem("author", name)
	}
	// ~10% of titles carry sup/sub markup (QD2/QD3 cardinalities).
	g.title(g.r.Intn(100) < 10, false)
	b.Elem("year", g.year())
	b.Elem("pages", fmt.Sprintf("%d-%d", 100+i%300, 110+i%300))
	b.Elem("booktitle", "Proc. of "+areaWords[g.r.Intn(len(areaWords))])
	b.End()
}

func (g *generator) article(i int) {
	b := g.b
	b.Start("article", "key", fmt.Sprintf("journals/x/%d", i))
	for j, n := 0, 1+g.r.Intn(2); j < n; j++ {
		b.Elem("author", g.author())
	}
	// QD4: exactly one article title contains the deep i-in-sup-in-sub.
	g.title(g.r.Intn(100) < 8, i == 42%max(1, scaled(baseArticles, g.cfg.Scale)))
	b.Elem("year", g.year())
	b.Elem("journal", "Journal of "+areaWords[g.r.Intn(len(areaWords))])
	b.Elem("volume", fmt.Sprintf("%d", 1+g.r.Intn(40)))
	b.End()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Queries is the paper's Table 7 query set.
var Queries = []struct {
	ID    string
	XPath string
}{
	{"QD1", "//inproceedings/title[preceding-sibling::author = 'Harold G. Longbotham']"},
	{"QD2", "/dblp/inproceedings[year>=1994]//sup"},
	{"QD3", "/dblp/inproceedings/title/sup"},
	{"QD4", "//i[parent::*/parent::sub/ancestor::article]"},
	{"QD5", "/dblp/inproceedings[author=/dblp/book/author]/title"},
}
