package dewey

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndOrdinals(t *testing.T) {
	cases := [][]int{
		{},
		{1},
		{1, 1, 2},
		{1, 2, 1, 1},
		{0},
		{MaxOrdinal},
		{1, MaxOrdinal, 3},
	}
	for _, ords := range cases {
		p := New(ords...)
		if !p.Valid() {
			t.Errorf("New(%v) produced invalid encoding %x", ords, []byte(p))
		}
		got, err := p.Ordinals()
		if err != nil {
			t.Fatalf("Ordinals(%v): %v", ords, err)
		}
		if len(ords) == 0 {
			if len(got) != 0 {
				t.Errorf("Ordinals of empty = %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, ords) {
			t.Errorf("round trip %v -> %v", ords, got)
		}
	}
}

func TestChildPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Child(MaxOrdinal+1) did not panic")
		}
	}()
	New(1).Child(MaxOrdinal + 1)
}

func TestLevelParentLocalOrder(t *testing.T) {
	p := New(1, 1, 2)
	if p.Level() != 3 {
		t.Errorf("Level = %d, want 3", p.Level())
	}
	if p.LocalOrder() != 2 {
		t.Errorf("LocalOrder = %d, want 2", p.LocalOrder())
	}
	par, ok := p.Parent()
	if !ok || par.String() != "1.1" {
		t.Errorf("Parent = %v, %v", par, ok)
	}
	root := New(1)
	gp, ok := root.Parent()
	if !ok || gp.Level() != 0 {
		t.Errorf("Parent of root = %v, %v; want empty", gp, ok)
	}
	if _, ok := (Pos{}).Parent(); ok {
		t.Error("Parent of empty should report false")
	}
	if (Pos{}).LocalOrder() != 0 {
		t.Error("LocalOrder of empty should be 0")
	}
}

func TestStringParse(t *testing.T) {
	for _, s := range []string{"", "1", "1.1.2", "0.5.8388607"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if s == "" {
			if p.Level() != 0 {
				t.Errorf("Parse empty gave level %d", p.Level())
			}
			continue
		}
		if p.String() != s {
			t.Errorf("Parse/String round trip %q -> %q", s, p.String())
		}
	}
	for _, s := range []string{"x", "1..2", "-1", "8388608"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestPaperFigure1Relationships(t *testing.T) {
	// The node ids and Dewey positions of the paper's Figure 1(c).
	nodes := map[int]Pos{
		1:  New(1),
		2:  New(1, 1),
		3:  New(1, 1, 1),
		4:  New(1, 1, 1, 1),
		5:  New(1, 1, 2),
		6:  New(1, 1, 2, 1),
		7:  New(1, 1, 2, 1, 1),
		8:  New(1, 1, 2, 1, 2),
		9:  New(1, 1, 3),
		10: New(1, 2),
		11: New(1, 2, 1),
		12: New(1, 2, 1, 1),
	}
	// Descendants of node 2 (B): 3,4,5,6,7,8,9.
	wantDesc := map[int]bool{3: true, 4: true, 5: true, 6: true, 7: true, 8: true, 9: true}
	for id, p := range nodes {
		got := IsDescendant(p, nodes[2])
		if got != wantDesc[id] {
			t.Errorf("IsDescendant(node %d, node 2) = %v, want %v", id, got, wantDesc[id])
		}
	}
	// Following nodes of node 5 (C at 1.1.2): 9, 10, 11, 12.
	wantFoll := map[int]bool{9: true, 10: true, 11: true, 12: true}
	for id, p := range nodes {
		got := IsFollowing(p, nodes[5])
		if got != wantFoll[id] {
			t.Errorf("IsFollowing(node %d, node 5) = %v, want %v", id, got, wantFoll[id])
		}
	}
	// Sibling relationships among 3, 5, 9 (children of 2).
	if !IsFollowingSibling(nodes[9], nodes[3]) || !IsPrecedingSibling(nodes[3], nodes[9]) {
		t.Error("sibling relationship between nodes 3 and 9 not detected")
	}
	if IsFollowingSibling(nodes[10], nodes[9]) {
		t.Error("nodes 9 and 10 have different parents; not siblings")
	}
	if !IsChild(nodes[4], nodes[3]) || IsChild(nodes[4], nodes[2]) {
		t.Error("IsChild misclassified grandchild")
	}
	if !IsAncestor(nodes[1], nodes[12]) {
		t.Error("root should be ancestor of node 12")
	}
	if !IsDescendantOrSelf(nodes[2], nodes[2]) || IsDescendant(nodes[2], nodes[2]) {
		t.Error("self handling wrong")
	}
}

func TestCommonAncestor(t *testing.T) {
	a := New(1, 1, 2, 1)
	b := New(1, 1, 3)
	if got := CommonAncestor(a, b); got.String() != "1.1" {
		t.Errorf("CommonAncestor = %v, want 1.1", got)
	}
	if got := CommonAncestor(a, New(2)); got.Level() != 0 {
		t.Errorf("CommonAncestor of disjoint trees = %v, want empty", got)
	}
	if got := CommonAncestor(a, a); !bytes.Equal(got, a) {
		t.Errorf("CommonAncestor(a,a) = %v", got)
	}
}

// randPos builds a random valid position of depth 1..6 with small
// ordinals plus occasional extreme ordinals.
func randPos(r *rand.Rand) Pos {
	depth := 1 + r.Intn(6)
	ords := make([]int, depth)
	for i := range ords {
		switch r.Intn(10) {
		case 0:
			ords[i] = MaxOrdinal
		case 1:
			ords[i] = r.Intn(1 << 16)
		default:
			ords[i] = 1 + r.Intn(5)
		}
	}
	return New(ords...)
}

// ordinalsRelation computes the axis relationship from the decoded
// ordinal vectors — the ground truth the lexicographic comparisons
// must agree with.
func ordinalsDescendant(n, m []int) bool {
	if len(n) <= len(m) {
		return false
	}
	for i := range m {
		if n[i] != m[i] {
			return false
		}
	}
	return true
}

func ordinalsDocLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func TestQuickAxisLemmas(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		n, m := randPos(r), randPos(r)
		no, _ := n.Ordinals()
		mo, _ := m.Ordinals()
		wantDesc := ordinalsDescendant(no, mo)
		if IsDescendant(n, m) != wantDesc {
			t.Logf("descendant mismatch: n=%v m=%v", n, m)
			return false
		}
		// following = after in document order and not a descendant.
		wantFoll := ordinalsDocLess(mo, no) && !wantDesc
		if IsFollowing(n, m) != wantFoll {
			t.Logf("following mismatch: n=%v m=%v", n, m)
			return false
		}
		if IsPreceding(n, m) != (ordinalsDocLess(no, mo) && !ordinalsDescendant(mo, no)) {
			t.Logf("preceding mismatch: n=%v m=%v", n, m)
			return false
		}
		// Document order must coincide with lexicographic order of encodings.
		if (Compare(n, m) < 0) != ordinalsDocLess(no, mo) && Compare(n, m) != 0 {
			t.Logf("order mismatch: n=%v m=%v", n, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDescendantLimitTight(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		m := randPos(r)
		lim := m.DescendantLimit()
		// Every child, even with the maximum ordinal, stays below the limit.
		c := m.Child(MaxOrdinal)
		if bytes.Compare(c, lim) >= 0 {
			return false
		}
		// A following sibling (if representable) exceeds the limit.
		if m.LocalOrder() < MaxOrdinal {
			par, _ := m.Parent()
			sib := par.Child(m.LocalOrder() + 1)
			if bytes.Compare(sib, lim) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidRejectsBadEncodings(t *testing.T) {
	if (Pos{0x01}).Valid() {
		t.Error("partial component should be invalid")
	}
	if (Pos{0x80, 0x00, 0x00}).Valid() {
		t.Error("component with high bit set should be invalid")
	}
	if _, err := (Pos{0x01}).Ordinals(); err == nil {
		t.Error("Ordinals of partial component should fail")
	}
	if s := (Pos{0x01}).String(); s == "" {
		t.Error("String of invalid encoding should still render")
	}
}
