package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dewey"
	"repro/internal/failpoint"
)

// The crash suite simulates kill -9 at the durability failpoints: a
// write fails at the armed site, the DB handle is abandoned without
// Close (no final fsync, exactly what a killed process leaves), and
// recovery reopens the directory from the surviving files. The
// recovered database must always be some atomic prefix of the commit
// history — for each site the tests pin down which prefix — and a
// second recovery over the same files must be byte-identical
// (idempotent replay).

var errCrash = errors.New("injected crash")

// seedPersistent creates a persistent DB in dir with a table, an
// index, and two committed batches; it returns the open handle.
func seedPersistent(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("T",
		Column{"id", TInt}, Column{"dewey_pos", TBytes}, Column{"text", TText})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateIndex("T_dp", "dewey_pos"); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		rows := make([][]Value, 10)
		for i := range rows {
			n := b*10 + i
			rows[i] = []Value{NewInt(int64(n)), NewBytes(dewey.New(1, b+1, i+1)), NewText(fmt.Sprint(n))}
		}
		if _, err := tb.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// dump renders the full content of table T in a canonical order.
func dump(t *testing.T, db *DB) string {
	t.Helper()
	res, err := db.RunSQL("SELECT T.id, T.text FROM T ORDER BY T.id")
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, r := range res.Rows {
		out += fmt.Sprintf("%d=%s;", r[0].I, r[1].S)
	}
	return out
}

// TestCrashAtEverySite arms each durability failpoint, drives a write
// into it, abandons the handle, and recovers. The recovered state
// must be exactly the pre-write state for failures before the WAL
// frame reaches the file (wal/append), and either pre- or post-write
// for failures after the bytes were written but before they were
// acknowledged (wal/fsync) — the write-ahead contract promises
// acknowledged-implies-present, not unacknowledged-implies-absent.
func TestCrashAtEverySite(t *testing.T) {
	newRow := [][]Value{{NewInt(100), NewBytes(dewey.New(1, 9, 1)), NewText("late")}}
	for _, tc := range []struct {
		site string
		// postOK: recovery may legitimately surface the failed write.
		postOK bool
	}{
		{site: "wal/append", postOK: false},
		{site: "wal/fsync", postOK: true},
	} {
		t.Run(tc.site, func(t *testing.T) {
			defer failpoint.Reset()
			dir := t.TempDir()
			db := seedPersistent(t, dir)
			pre := dump(t, db)

			if err := failpoint.Enable(tc.site, failpoint.Return(errCrash)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Table("T").InsertBatch(newRow); !errors.Is(err, errCrash) {
				t.Fatalf("insert at armed %s: err = %v, want injected crash", tc.site, err)
			}
			// The failed commit must not be visible in the live DB either.
			if got := dump(t, db); got != pre {
				t.Fatalf("failed commit leaked into the live snapshot:\n%s\nwant %s", got, pre)
			}
			failpoint.Reset()
			// Crash: abandon db without Close, recover from the files.
			re, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			got := dump(t, re)
			post := pre + "100=late;"
			switch {
			case got == pre: // clean pre-write recovery
			case tc.postOK && got == post: // unacknowledged write survived: allowed
			default:
				t.Fatalf("recovered state:\n%s\nwant pre %q%s", got, pre,
					map[bool]string{true: " or post " + post}[tc.postOK])
			}
			// The recovered DB accepts and persists new commits.
			if _, err := re.Table("T").InsertBatch([][]Value{
				{NewInt(200), NewBytes(dewey.New(1, 9, 2)), NewText("after")},
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashDuringCheckpoint arms the wal/checkpoint failpoint (after
// the temporary checkpoint is fully written, before the rename) and
// checks that recovery still sees every commit via the old
// checkpoint + full WAL, ignoring the leftover .tmp file.
func TestCrashDuringCheckpoint(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	db := seedPersistent(t, dir)
	pre := dump(t, db)

	if err := failpoint.Enable("wal/checkpoint", failpoint.Return(errCrash)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, errCrash) {
		t.Fatalf("checkpoint at armed site: err = %v, want injected crash", err)
	}
	failpoint.Reset()
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.tmp")); err != nil {
		t.Fatalf("crash window left no checkpoint.tmp: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := dump(t, re); got != pre {
		t.Fatalf("recovery after torn checkpoint:\n%s\nwant %s", got, pre)
	}
	// A later successful checkpoint replaces the file and empties the
	// WAL; recovery still sees everything.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || st.Size() != 0 {
		t.Fatalf("WAL after checkpoint: size=%v err=%v, want empty", st, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := dump(t, re2); got != pre {
		t.Fatalf("recovery from checkpoint alone:\n%s\nwant %s", got, pre)
	}
}

// TestCrashDuringRecoveryReplay arms the engine/recovery-replay
// failpoint so recovery itself dies mid-replay (a crash during crash
// recovery). Open must fail cleanly — no panic, no partially
// recovered handle — and a later unarmed Open succeeds in full.
func TestCrashDuringRecoveryReplay(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	db := seedPersistent(t, dir)
	pre := dump(t, db)

	if err := failpoint.Enable("engine/recovery-replay", failpoint.Return(errCrash)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, errCrash) {
		t.Fatalf("recovery at armed replay site: err = %v, want injected crash", err)
	}
	failpoint.Reset()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := dump(t, re); got != pre {
		t.Fatalf("recovery after interrupted recovery:\n%s\nwant %s", got, pre)
	}
}

// TestDoubleReplayIdempotence recovers the same directory twice (and
// once more after a checkpoint, so replay crosses the skip-by-LSN
// path) and requires identical state each time.
func TestDoubleReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	db := seedPersistent(t, dir)
	want := dump(t, db)
	// Abandon without Close: the WAL is already fsynced per commit.

	for i := 0; i < 2; i++ {
		re, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := dump(t, re); got != want {
			t.Fatalf("replay %d:\n%s\nwant %s", i+1, got, want)
		}
		// Abandon again, no Close.
		_ = re
	}

	// Checkpoint, then append one more commit; replay now mixes
	// checkpointed and post-checkpoint records.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Table("T").InsertBatch([][]Value{
		{NewInt(300), NewBytes(dewey.New(1, 9, 3)), NewText("tail")},
	}); err != nil {
		t.Fatal(err)
	}
	want = dump(t, re)
	for i := 0; i < 2; i++ {
		re2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := dump(t, re2); got != want {
			t.Fatalf("post-checkpoint replay %d:\n%s\nwant %s", i+1, got, want)
		}
	}
}

// TestCreateIndexRecovery re-proves the paper's Lemmas 1-2 against a
// recovered index: a CREATE INDEX logged to the WAL must rebuild on
// replay with the same order-preserving comparator, so Dewey range
// predicates (descendant-or-self = BETWEEN d(m) AND d(m)||0xFF,
// Lemma 1; the first key past d(m)||0xFF is outside the subtree,
// Lemma 2) select exactly the same nodes as before the crash.
func TestCreateIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("T", Column{"id", TInt}, Column{"dewey_pos", TBytes})
	if err != nil {
		t.Fatal(err)
	}
	// A two-level sibling-heavy shape with ordinals around the
	// component byte boundaries (0x7F/0x80, 0xFF/0x100), the
	// adversarial cases for comparator order (Section 4.2: encoded
	// Dewey order must equal document order for the lemmas to hold on
	// a B+tree scan).
	var rows [][]Value
	id := int64(0)
	for _, a := range []int{1, 2, 127, 128, 255, 256} {
		rows = append(rows, []Value{NewInt(id), NewBytes(dewey.New(1, a))})
		id++
		for _, b := range []int{1, 127, 128, 300} {
			rows = append(rows, []Value{NewInt(id), NewBytes(dewey.New(1, a, b))})
			id++
		}
	}
	if _, err := tb.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	// The index is created AFTER the rows exist, so recovery must
	// rebuild it from replayed rows, not replay it empty.
	if _, err := tb.CreateIndex("T_dp", "dewey_pos"); err != nil {
		t.Fatal(err)
	}
	// More rows after the index: replay must route them through the
	// recovered index too.
	var late [][]Value
	for _, a := range []int{1, 255} {
		late = append(late, []Value{NewInt(id), NewBytes(dewey.New(1, a, 500))})
		id++
	}
	if _, err := tb.InsertBatch(late); err != nil {
		t.Fatal(err)
	}

	// Components encode as fixed 3-byte big-endian ordinals:
	// d(1,2) = X'000001000002', d(1,128) = X'000001000080',
	// d(1,127)||0xFF = X'00000100007FFF'.
	queries := []string{
		// Lemma 1: descendant-or-self of /1/2 — the node + 4 children.
		"SELECT COUNT(*) FROM T WHERE T.dewey_pos BETWEEN X'000001000002' AND X'000001000002' || X'FF'",
		// The same range across the 0x7F/0x80 boundary, with the late
		// row: /1/128 + 4 children + (1,128,500)? (500 > 300, included).
		"SELECT T.id FROM T WHERE T.dewey_pos BETWEEN X'000001000080' AND X'000001000080' || X'FF' ORDER BY T.dewey_pos",
		// Lemma 2: everything following the /1/127 subtree — the
		// a in {128, 255, 256} subtrees (5 nodes each) + the late
		// (1,255,500) row; the late (1,1,500) row precedes.
		"SELECT COUNT(*) FROM T WHERE T.dewey_pos > X'00000100007F' || X'FF'",
		// Full ordered scan: document order end to end.
		"SELECT T.id FROM T ORDER BY T.dewey_pos",
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		if want[i], err = db.RunSQL(q); err != nil {
			t.Fatal(err)
		}
	}
	// Pin the pre-crash cardinalities so a wrong literal cannot make
	// the recovery comparison vacuously pass on empty ranges.
	for i, wantN := range []int64{5, 5, 16, int64(len(rows) + len(late))} {
		n := int64(len(want[i].Rows))
		if len(want[i].Rows) == 1 && len(want[i].Rows[0]) == 1 && want[i].Cols[0] == "COUNT(*)" {
			n = want[i].Rows[0][0].I
		}
		if n != wantN {
			t.Fatalf("query %d pre-crash cardinality = %d, want %d", i, n, wantN)
		}
	}

	// Crash (abandon) and recover.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rt := re.Table("T")
	if rt == nil {
		t.Fatal("table T missing after recovery")
	}
	ix := rt.FindIndex(rt.ColIndex("dewey_pos"))
	if ix == nil {
		t.Fatal("index T_dp missing after recovery")
	}
	if ix.Tree.Len() != len(rows)+len(late) {
		t.Fatalf("recovered index holds %d keys, want %d", ix.Tree.Len(), len(rows)+len(late))
	}
	for i, q := range queries {
		got, err := re.RunSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalResults(want[i], got) {
			t.Errorf("query %d (%s): recovered index disagrees with pre-crash result", i, q)
		}
	}
}
