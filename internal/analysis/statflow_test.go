package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestStatflow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Statflow,
		"statflow/internal/engine", "statflow/ok")
}

// The real planner must satisfy its own discipline: no synopsis field
// writes outside internal/synopsis, and no raw selectivity fractions
// outside estimate.go in the planner files.
func TestStatflowClean(t *testing.T) {
	expectClean(t, analysis.Statflow,
		"repro/internal/engine", "repro/internal/shred", "repro/internal/bench")
}
