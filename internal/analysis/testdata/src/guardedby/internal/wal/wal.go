// Package wal is a miniature externally-serialized log for the
// guardedby fixtures: its fields are //guardedby:caller(writeMu), so
// its own methods are exempt while cross-package callers must hold a
// writeMu.
package wal

type Log struct {
	//guardedby:caller(writeMu)
	next uint64
	//guardedby:caller(writeMu)
	buf []byte
}

func Open() *Log { return &Log{} }

// Append mutates caller-serialized state; legal here (own method),
// checked at every cross-package call site.
func (l *Log) Append(p []byte) uint64 {
	lsn := l.next
	l.next++
	l.buf = append(l.buf[:0], p...)
	return lsn
}

// LastLSN is read-only and free to call without the lock.
func (l *Log) LastLSN() uint64 { return l.next }
