package engine

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// This file is the engine's designated panic boundary: guardPanics
// below contains the package's only recover() call (enforced by the
// recoverguard analyzer in internal/analysis). Every statement entry
// point — RunWithOptionsContext, Prepared execution, and each morsel
// worker goroutine — defers it, so an internal panic in planning or
// execution surfaces to the caller as a typed *InternalError instead
// of crashing a serving process. Nothing else in the engine may
// recover: swallowing a panic anywhere but the statement boundary
// would hide corruption mid-pipeline.

// ErrInternal is the sentinel matched by errors.Is for panics
// converted at the statement boundary.
var ErrInternal = errors.New("engine: internal error")

// InternalError wraps a panic caught at a statement boundary. It
// carries the statement's SQL text and the goroutine stack at the
// panic site, so a serving process can log the offending query
// without dying.
type InternalError struct {
	// SQL is the rendered text of the statement that panicked.
	SQL string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("engine: internal error executing %q: %v", e.SQL, e.Panic)
}

// Unwrap makes errors.Is(err, ErrInternal) match.
func (e *InternalError) Unwrap() error { return ErrInternal }

// guardPanics converts a panic into *InternalError. It must be
// deferred with the statement's SQL text and the callee's named
// error result. A panic that is already a converted *InternalError
// (re-raised across layers) passes through unchanged.
func guardPanics(sql string, err *error) {
	r := recover()
	if r == nil {
		return
	}
	if ie, ok := r.(*InternalError); ok {
		*err = ie
		return
	}
	*err = &InternalError{SQL: sql, Panic: r, Stack: debug.Stack()}
}
