// Seeded violations for the deweycmp analyzer: raw byte comparisons
// of Dewey positions that bypass the Table 2 axis comparators.
package a

import (
	"bytes"

	"repro/internal/dewey"
)

func rawCompare(a, b dewey.Pos) int {
	return bytes.Compare(a, b) // want `bytes.Compare on dewey.Pos`
}

func rawEqual(a, b dewey.Pos) bool {
	return bytes.Equal(a, b) // want `bytes.Equal on dewey.Pos`
}

func rawPrefix(a, b dewey.Pos) bool {
	return bytes.HasPrefix(a, b) // want `bytes.HasPrefix on dewey.Pos`
}

func stringCompare(a, b dewey.Pos) bool {
	return string(a) < string(b) // want `direct < comparison of dewey.Pos`
}

func stringEqual(a, b dewey.Pos) bool {
	return string(a) == string(b) // want `direct == comparison of dewey.Pos`
}
